(** The Internet checksum (RFC 1071) used by IP, ICMP, and UDP. *)

val ones_complement_sum : bytes -> pos:int -> len:int -> int
(** 16-bit one's-complement sum of [len] bytes starting at [pos]; an odd
    trailing byte is padded with zero. The result is folded to 16 bits. *)

val checksum : bytes -> pos:int -> len:int -> int
(** The Internet checksum: one's complement of {!ones_complement_sum},
    as a 16-bit value. *)

val combine : int -> int -> int
(** One's-complement addition of two folded 16-bit partial sums, for
    incremental computation over discontiguous regions. *)

val finish : int -> int
(** Complement a combined partial sum into a checksum field value. *)

val ip_header_valid : bytes -> pos:int -> ihl:int -> bool
(** Verifies the header checksum of the IP header at [pos] whose header
    length is [ihl] 32-bit words. *)
