(* IPRewriter: flow-based address/port rewriting (NAT). A packet on input
   0 (the "forward" direction) is matched against the flow table; a new
   flow gets a mapping from the configured pattern, possibly allocating a
   source port from a range. Packets on input 1 (replies) are rewritten
   back through the reverse mapping. IP and transport checksums are kept
   correct.

   Configuration: "SADDR SPORT DADDR DPORT", each field an address /
   port / port range ("1024-65535") / "-" to leave the field alone, e.g.

     IPRewriter(18.26.4.24 1024-65535 - -)      // classic NAPT
*)

open Prelude
module Ip = Headers.Ip
module Udp = Headers.Udp
module Tcp = Headers.Tcp

type field = Keep | Set of int | Port_range of int * int

type flow = {
  f_saddr : Ipaddr.t;
  f_sport : int;
  f_daddr : Ipaddr.t;
  f_dport : int;
  f_proto : int;
}

let parse_field ~is_port s =
  let s = String.trim s in
  if String.equal s "-" then Some Keep
  else if is_port then begin
    match String.index_opt s '-' with
    | Some i -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          )
        with
        | Some lo, Some hi when 0 < lo && lo <= hi && hi < 65536 ->
            Some (Port_range (lo, hi))
        | _ -> None)
    | None -> (
        match int_of_string_opt s with
        | Some p when p >= 0 && p < 65536 -> Some (Set p)
        | _ -> None)
  end
  else Option.map (fun a -> Set a) (Ipaddr.of_string s)

class ip_rewriter name =
  object (self)
    inherit E.base name
    val mutable pat_saddr = Keep
    val mutable pat_sport = Keep
    val mutable pat_daddr = Keep
    val mutable pat_dport = Keep
    val mutable next_port = 0
    val forward : (flow, flow) Hashtbl.t = Hashtbl.create 64
    val reverse : (flow, flow) Hashtbl.t = Hashtbl.create 64
    val mutable drops = 0
    method class_name = "IPRewriter"
    method! port_count = "2/1-2"
    method! processing = "h/h"
    method! flow_code = "xy/xy"

    method! configure config =
      let parts =
        List.filter (( <> ) "") (String.split_on_char ' ' (String.trim config))
      in
      match parts with
      | [ sa; sp; da; dp ] -> (
          match
            ( parse_field ~is_port:false sa,
              parse_field ~is_port:true sp,
              parse_field ~is_port:false da,
              parse_field ~is_port:true dp )
          with
          | Some a, Some b, Some c, Some d ->
              pat_saddr <- a;
              pat_sport <- b;
              pat_daddr <- c;
              pat_dport <- d;
              (match b with Port_range (lo, _) -> next_port <- lo | _ -> ());
              Ok ()
          | _ -> Error "IPRewriter: bad pattern field")
      | _ -> Error "IPRewriter expects \"SADDR SPORT DADDR DPORT\""

    method private flow_of p =
      if
        Packet.length p >= Ip.min_header_length + 4
        && Ip.fragment_offset p = 0
        && (Ip.protocol p = Ip.proto_tcp || Ip.protocol p = Ip.proto_udp)
      then begin
        let l4 = Ip.header_length p in
        Some
          {
            f_saddr = Ip.src p;
            f_sport = Packet.get_u16 p l4;
            f_daddr = Ip.dst p;
            f_dport = Packet.get_u16 p (l4 + 2);
            f_proto = Ip.protocol p;
          }
      end
      else None

    method private apply_field field current ~alloc =
      match field with
      | Keep -> current
      | Set v -> v
      | Port_range (lo, hi) ->
          if alloc then begin
            let p = next_port in
            next_port <- (if next_port >= hi then lo else next_port + 1);
            p
          end
          else current

    method private fresh_mapping flow =
      let mapped =
        {
          flow with
          f_saddr = self#apply_field pat_saddr flow.f_saddr ~alloc:false;
          f_sport = self#apply_field pat_sport flow.f_sport ~alloc:true;
          f_daddr = self#apply_field pat_daddr flow.f_daddr ~alloc:false;
          f_dport = self#apply_field pat_dport flow.f_dport ~alloc:false;
        }
      in
      Hashtbl.replace forward flow mapped;
      (* the reply direction arrives with src/dst of the mapped flow
         swapped, and must be rewritten to the original, swapped *)
      let swap f =
        {
          f with
          f_saddr = f.f_daddr;
          f_sport = f.f_dport;
          f_daddr = f.f_saddr;
          f_dport = f.f_sport;
        }
      in
      Hashtbl.replace reverse (swap mapped) (swap flow);
      mapped

    method private rewrite p (target : flow) =
      let l4 = Ip.header_length p in
      Ip.set_src p target.f_saddr;
      Ip.set_dst p target.f_daddr;
      Packet.set_u16 p l4 target.f_sport;
      Packet.set_u16 p (l4 + 2) target.f_dport;
      Ip.update_checksum p;
      self#charge (Hooks.W_checksum (Packet.length p));
      if Ip.protocol p = Ip.proto_udp then Headers.L4.update_udp p ~ip_off:0
      else Headers.L4.update_tcp p ~ip_off:0;
      (Packet.anno p).Packet.dst_ip <- target.f_daddr

    method! push port p =
      match self#flow_of p with
      | None ->
          drops <- drops + 1;
          self#drop ~reason:"not a rewritable packet" p
      | Some flow ->
          if port = 0 then begin
            let mapped =
              match Hashtbl.find_opt forward flow with
              | Some m -> m
              | None -> self#fresh_mapping flow
            in
            self#rewrite p mapped;
            self#output 0 p
          end
          else begin
            match Hashtbl.find_opt reverse flow with
            | Some original ->
                self#rewrite p original;
                self#output (min 1 (self#noutputs - 1)) p
            | None ->
                drops <- drops + 1;
                self#drop ~reason:"no reverse mapping" p
          end

    method! stats = [ ("flows", Hashtbl.length forward); ("drops", drops) ]
  end

let register () =
  def "IPRewriter" ~ports:"2/1-2" ~processing:"h/h" ~flow:"xy/xy" (fun n ->
      (new ip_rewriter n :> E.t))
