module Router = Oclick_graph.Router
module Args = Oclick_lang.Args

type link = {
  lk_from_router : string;
  lk_from_device : string;
  lk_to_router : string;
  lk_to_device : string;
}

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let device_of_config config =
  match Args.split config with d :: _ -> d | [] -> ""

let find_device_element router ~prefix ~cls ~device =
  List.find_opt
    (fun i ->
      String.equal (Router.class_of router i) cls
      && String.length (Router.name router i) > String.length prefix
      && String.sub (Router.name router i) 0 (String.length prefix) = prefix
      && String.equal (device_of_config (Router.config router i)) device)
    (Router.indices router)

let combine routers ~links =
  match
    let combined = Router.copy (Router.of_ast_exn Oclick_lang.Ast.empty) in
    (* Copy every router in, prefixing element names. *)
    List.iter
      (fun (rname, r) ->
        if String.contains rname '/' then
          failf "router name %S may not contain '/'" rname;
        let map = Hashtbl.create 32 in
        List.iter
          (fun i ->
            let idx =
              Router.add_element combined
                ~name:(rname ^ "/" ^ Router.name r i)
                ~cls:(Router.class_of r i) ~config:(Router.config r i)
            in
            Hashtbl.replace map i idx)
          (Router.indices r);
        List.iter
          (fun (h : Router.hookup) ->
            Router.add_hookup combined
              {
                Router.from_idx = Hashtbl.find map h.from_idx;
                from_port = h.from_port;
                to_idx = Hashtbl.find map h.to_idx;
                to_port = h.to_port;
              })
          (Router.hookups r);
        List.iter (Router.add_requirement combined) (Router.requirements r))
      routers;
    (* Replace each link's ToDevice/PollDevice pair with a RouterLink. *)
    List.iteri
      (fun n lk ->
        let td =
          match
            find_device_element combined ~prefix:(lk.lk_from_router ^ "/")
              ~cls:"ToDevice" ~device:lk.lk_from_device
          with
          | Some i -> i
          | None ->
              failf "router %s has no ToDevice(%s)" lk.lk_from_router
                lk.lk_from_device
        in
        let pd =
          match
            find_device_element combined ~prefix:(lk.lk_to_router ^ "/")
              ~cls:"PollDevice" ~device:lk.lk_to_device
          with
          | Some i -> i
          | None ->
              failf "router %s has no PollDevice(%s)" lk.lk_to_router
                lk.lk_to_device
        in
        let feeders = Router.inputs_of combined td
        and consumers = Router.outputs_of combined pd in
        Router.remove_element combined td;
        Router.remove_element combined pd;
        let link =
          Router.add_element combined
            ~name:(Router.fresh_name combined (Printf.sprintf "link@%d" (n + 1)))
            ~cls:"RouterLink"
            ~config:
              (Printf.sprintf "%s, %s, %s, %s" lk.lk_from_router
                 lk.lk_from_device lk.lk_to_router lk.lk_to_device)
        in
        List.iter
          (fun (_, src, sport) ->
            Router.add_hookup combined
              { Router.from_idx = src; from_port = sport; to_idx = link; to_port = 0 })
          feeders;
        List.iter
          (fun (_, dst, dport) ->
            Router.add_hookup combined
              { Router.from_idx = link; from_port = 0; to_idx = dst; to_port = dport })
          consumers)
      links;
    combined
  with
  | combined -> Ok combined
  | exception Fail msg -> Error msg

(* Ownership of a combined element: its name prefix if it has one;
   otherwise (optimizers may have introduced unprefixed elements, e.g.
   ARP elimination's EtherEncap) the router whose elements it reaches
   without crossing a RouterLink. *)
let ownership combined =
  let max_idx = List.fold_left max 0 (Router.indices combined) in
  let owner : string option array = Array.make (max_idx + 1) None in
  let prefixed i =
    match String.index_opt (Router.name combined i) '/' with
    | Some k -> Some (String.sub (Router.name combined i) 0 k)
    | None -> None
  in
  List.iter (fun i -> owner.(i) <- prefixed i) (Router.indices combined);
  let is_link i = String.equal (Router.class_of combined i) "RouterLink" in
  let neighbors i =
    if is_link i then []
    else
      List.filter
        (fun j -> not (is_link j))
        (List.map (fun (_, j, _) -> j) (Router.outputs_of combined i)
        @ List.map (fun (_, j, _) -> j) (Router.inputs_of combined i))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        if owner.(i) = None && not (is_link i) then
          match List.find_map (fun j -> owner.(j)) (neighbors i) with
          | Some o ->
              owner.(i) <- Some o;
              changed := true
          | None -> ())
      (Router.indices combined)
  done;
  owner

let uncombine combined ~name =
  let prefix = name ^ "/" in
  let plen = String.length prefix in
  let owner = ownership combined in
  match
    let out = Router.of_ast_exn Oclick_lang.Ast.empty in
    let map = Hashtbl.create 32 in
    List.iter
      (fun i ->
        if owner.(i) = Some name then begin
          let full = Router.name combined i in
          let short =
            if String.length full > plen && String.sub full 0 plen = prefix
            then String.sub full plen (String.length full - plen)
            else full
          in
          let idx =
            Router.add_element out
              ~name:(Router.fresh_name out short)
              ~cls:(Router.class_of combined i)
              ~config:(Router.config combined i)
          in
          Hashtbl.replace map i idx
        end)
      (Router.indices combined);
    if Hashtbl.length map = 0 then failf "no elements belong to router %S" name;
    (* Internal connections copy over; RouterLink boundaries turn back
       into device elements. *)
    List.iter
      (fun (h : Router.hookup) ->
        match (Hashtbl.find_opt map h.from_idx, Hashtbl.find_opt map h.to_idx) with
        | Some f, Some t ->
            Router.add_hookup out
              { Router.from_idx = f; from_port = h.from_port; to_idx = t; to_port = h.to_port }
        | _ -> ())
      (Router.hookups combined);
    List.iter
      (fun i ->
        if String.equal (Router.class_of combined i) "RouterLink" then begin
          match Args.split (Router.config combined i) with
          | [ a; deva; b; devb ] ->
              if String.equal a name then begin
                (* Our side transmits: restore ToDevice. *)
                let td =
                  Router.add_element out
                    ~name:(Router.fresh_name out ("to_" ^ deva))
                    ~cls:"ToDevice" ~config:deva
                in
                List.iter
                  (fun (_, src, sport) ->
                    match Hashtbl.find_opt map src with
                    | Some f ->
                        Router.add_hookup out
                          { Router.from_idx = f; from_port = sport; to_idx = td; to_port = 0 }
                    | None -> ())
                  (Router.inputs_of combined i)
              end;
              if String.equal b name then begin
                let pd =
                  Router.add_element out
                    ~name:(Router.fresh_name out ("poll_" ^ devb))
                    ~cls:"PollDevice" ~config:devb
                in
                List.iter
                  (fun (_, dst, dport) ->
                    match Hashtbl.find_opt map dst with
                    | Some t ->
                        Router.add_hookup out
                          { Router.from_idx = pd; from_port = 0; to_idx = t; to_port = dport }
                    | None -> ())
                  (Router.outputs_of combined i)
              end
          | _ -> failf "RouterLink %s has a malformed configuration"
                   (Router.name combined i)
        end)
      (Router.indices combined);
    List.iter (Router.add_requirement out) (Router.requirements combined);
    out
  with
  | out -> Ok out
  | exception Fail msg -> Error msg
