(** The router driver: instantiates a configuration graph into live
    elements and schedules their tasks.

    This is the analogue of Click's kernel driver: it checks the
    configuration, resolves push/pull processing, constructs elements
    through the registry, wires their ports, and runs task elements
    (device polling, sources) round-robin — Click's "constantly-active
    kernel thread" (paper §3). *)

type t

val instantiate :
  ?hooks:Hooks.t ->
  ?devices:Netdevice.t list ->
  ?mangle:(Oclick_packet.Packet.t -> unit) ->
  ?quarantine:int ->
  ?batch:int ->
  ?pool:Oclick_packet.Packet.Pool.t ->
  ?compile:bool ->
  ?fuse:bool ->
  ?clock:(unit -> int) ->
  Oclick_graph.Router.t ->
  (t, string) result
(** Checks the graph against the registry's specifications, builds and
    configures every element, wires push outputs and pull inputs, and
    initializes the router. All configuration errors are reported
    together in the error string.

    [mangle] installs an in-flight fault injector applied to every packet
    transfer (see {!Element.base.set_mangle}); [quarantine] overrides the
    consecutive-fault quarantine threshold on every element.

    [batch] (default 1 = scalar) sets every element's preferred batch
    size: device and source task loops then move packets through the
    graph in arrays via the batched transfer path, which is
    semantics-preserving (identical per-reason drop totals and
    conservation balance). [pool] installs a recycling packet pool:
    sources allocate through it and every accounted drop is recycled
    after the drop hook has run — drop hooks must not retain packets
    when a pool is in use.

    [compile] (default false) runs the registered whole-graph datapath
    compiler over the instantiated router before returning: push
    connections become direct-call closures and fusable element chains
    collapse into per-packet functions (see {!Oclick_compile}), with
    semantics — outcome totals, drop reasons, conservation, observability
    ledgers — identical to the interpreted path. Errors if no compiler
    was registered ({!register_compiler}) or the compiler conservatively
    rejects the configuration.

    [fuse] (default false) additionally runs the cross-element FDD
    fusion pass inside the compiler: whole push regions of classifiers,
    paint writes/switches, header guards and route lookups collapse
    into one decision-diagram closure per region (see [Oclick_fdd]),
    again with observable behaviour identical by construction. [fuse]
    implies [compile].

    [clock] installs a nanosecond time source on every element
    ({!Element.base.set_clock}) — the aging clock for bounded element
    state ({!Aged_table}). Without it, state never ages (capacity
    bounds still apply). *)

val of_string :
  ?hooks:Hooks.t ->
  ?devices:Netdevice.t list ->
  ?mangle:(Oclick_packet.Packet.t -> unit) ->
  ?quarantine:int ->
  ?batch:int ->
  ?pool:Oclick_packet.Packet.Pool.t ->
  ?compile:bool ->
  ?fuse:bool ->
  ?clock:(unit -> int) ->
  string ->
  (t, string) result
(** Parse, flatten, instantiate. *)

val register_compiler : (fuse:bool -> t -> (unit, string) result) -> unit
(** Install the graph compiler invoked by [instantiate ~compile:true].
    Registered once, by {!Oclick_compile.register} — the indirection
    keeps this library from depending on the compiler that depends on
    it. *)

val element : t -> string -> Element.t option
val element_at : t -> int -> Element.t
val graph : t -> Oclick_graph.Router.t
val size : t -> int

val hooks : t -> Hooks.t
(** The hooks installed at instantiation (after any pool wrapping) — the
    exact record every element reports through. *)

val tasks : t -> Element.t array
(** The task elements in declaration order — the exact array the
    scheduler rounds iterate. Exposed so a sharding layer can split the
    schedule across domains; do not mutate. *)

val compile : ?fuse:bool -> t -> (unit, string) result
(** Run the registered whole-graph compiler over an already-instantiated
    router — equivalent to [instantiate ~compile:true] but deferred, so
    callers can finish per-element setup (hooks, pools) that the compiled
    closures must capture before compilation. [?fuse] as in
    {!instantiate}. *)

val run_tasks_once : t -> bool
(** One scheduler round over all task elements; [true] if any did work.
    Successive rounds rotate their starting task round-robin (round [k]
    starts at task [k mod n]), so no task monopolizes first position. *)

val run_task_array : Element.t array -> start:int -> bool
(** One containment-guarded round over an explicit task array, beginning
    at index [start mod n]: the schedule primitive underlying
    {!run_tasks_once}, exposed for per-shard schedulers that own a slice
    of {!tasks}. *)

val run : t -> rounds:int -> unit

val run_until_idle : ?max_rounds:int -> t -> bool
(** Runs until a full round does no work. Returns whether the router
    actually went idle: [false] means the bound (default 1_000_000
    rounds) was exhausted with work still pending — a livelock, an
    unbounded source, or genuinely unfinished work — in which case a
    warning is also emitted through {!Hooks.on_warn}. *)

val fault_report : t -> (string * int * bool) list
(** [(element name, faults contained, quarantined?)] for every element
    that faulted at least once. *)
