(** The [IPFilter]/[IPClassifier] expression language.

    Expressions describe IP packets whose header starts at data offset 0
    (the router strips the Ethernet header first). The supported grammar,
    a faithful subset of Click's:

    {v
    expr  := and ("or" | "||") and ...
    and   := unary ("and" | "&&") unary ...
    unary := ("not" | "!") unary | "(" expr ")" | test
    test  := "true" | "false" | "all"
           | [dir] "host" IPADDR
           | [dir] "net" PREFIX
           | ["ip"] "proto" PROTO
           | "tcp" | "udp" | "icmp"
           | [dir] [PROTO] "port" (PORT | PORT-PORT)
           | "icmp" "type" NUM
           | "ip" ("vers" | "hl" | "ttl" | "tos") NUM
           | "ip" "frag" | "ip" "unfrag"
           | "tcp" "opt" ("syn"|"ack"|"fin"|"rst")
    dir   := "src" | "dst" | "src" "or" "dst" | "src" "and" "dst"
    v}

    Port tests implicitly require an unfragmented packet with a 20-byte IP
    header, as in Click. Well-known port and protocol names are accepted;
    port ranges compile into O(log) masked tests. *)

val parse : string -> (Bexpr.t, string) result

val parse_ipfilter_config : string -> (Bexpr.rule list, string) result
(** [IPFilter] arguments: ["allow EXPR"], ["deny EXPR"], ["drop EXPR"], or
    ["N EXPR"] for an explicit output. [allow] means output 0; [deny] and
    [drop] discard. *)

val parse_ipclassifier_config : string -> (Bexpr.rule list, string) result
(** [IPClassifier] arguments are bare expressions (or ["-"]); argument [i]
    classifies to output [i]; unmatched packets are dropped. *)

val ipfilter_tree : string -> (Tree.t, string) result
val ipclassifier_tree : string -> (Tree.t, string) result
