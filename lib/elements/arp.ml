(* ARP handling: ARPQuerier encapsulates IP packets in Ethernet headers,
   resolving the next hop with real ARP queries; ARPResponder answers
   queries for the addresses it is configured with. *)

open Prelude
module Ether = Headers.Ether
module Arp = Headers.Arp

(* One pending packet is held per unresolved address, as in Click. *)
type arp_entry = {
  mutable ae_eth : Ethaddr.t option;
  mutable ae_pending : Packet.t option;
}

class arp_querier name =
  object (self)
    inherit E.base name
    val mutable my_ip = 0
    val mutable my_eth = Ethaddr.zero
    val table : (Ipaddr.t, arp_entry) Hashtbl.t = Hashtbl.create 64
    val mutable queries = 0
    val mutable responses = 0
    val mutable encapsulated = 0
    method class_name = "ARPQuerier"
    method! port_count = "2/1"
    method! processing = "h/h"
    (* IP packets arrive on 0, ARP responses on 1; both leave via 0. *)
    method! flow_code = "xy/x"

    method! configure config =
      match Args.split config with
      | [ ip; eth ] -> (
          match (Ipaddr.of_string ip, Ethaddr.of_string eth) with
          | Some ip, Some eth ->
              my_ip <- ip;
              my_eth <- eth;
              Ok ()
          | _ -> Error "ARPQuerier expects IP, ETH")
      | _ -> Error "ARPQuerier expects IP, ETH"

    method private entry ip =
      match Hashtbl.find_opt table ip with
      | Some e -> e
      | None ->
          let e = { ae_eth = None; ae_pending = None } in
          Hashtbl.add table ip e;
          e

    method private send_query target_ip =
      queries <- queries + 1;
      let q =
        Headers.Build.arp_query ~src_eth:my_eth ~src_ip:my_ip ~target_ip
      in
      self#spawn q;
      self#output 0 q

    method private encap_and_send p dst_eth =
      Ether.encap p ~dst:dst_eth ~src:my_eth ~ethertype:Ether.ethertype_ip;
      encapsulated <- encapsulated + 1;
      self#output 0 p

    method! push port p =
      if port = 0 then begin
        (* An IP packet: resolve the destination annotation. *)
        let dst = (Packet.anno p).Packet.dst_ip in
        let e = self#entry dst in
        match e.ae_eth with
        | Some eth -> self#encap_and_send p eth
        | None ->
            (match e.ae_pending with
            | Some old -> self#drop ~reason:"ARP resolution in progress" old
            | None -> ());
            e.ae_pending <- Some p;
            self#send_query dst
      end
      else begin
        (* An ARP response: learn, and release any held packet. *)
        responses <- responses + 1;
        (if
           Packet.length p >= Ether.header_length + Arp.packet_length
           && Arp.op ~off:Ether.header_length p = Arp.op_reply
         then begin
           let ip = Arp.sender_ip ~off:Ether.header_length p in
           let eth = Arp.sender_eth ~off:Ether.header_length p in
           let e = self#entry ip in
           e.ae_eth <- Some eth;
           match e.ae_pending with
           | Some held ->
               e.ae_pending <- None;
               self#encap_and_send held eth
           | None -> ()
         end);
        (* The response itself (or whatever malformed frame landed on the
           response port) is consumed here either way. *)
        self#drop ~reason:"ARP response consumed" p
      end

    method! push_batch port batch =
      if port <> 0 then
        (* ARP responses are rare control traffic: scalar loop. *)
        let f = self#push port in
        Array.iter (fun p -> self#guard f p) batch
      else begin
        (* Steady-state fast path: every destination already resolved.
           Encapsulate in place and forward the resolved prefix runs in
           batched transfers; unresolved or faulting packets fall back
           to the scalar path (query + hold). *)
        let n = Array.length batch in
        let m = ref 0 in
        let flush () =
          if !m > 0 then begin
            self#output_batch 0 (self#sub_batch batch !m);
            m := 0
          end
        in
        for i = 0 to n - 1 do
          let p = batch.(i) in
          if self#is_quarantined then begin
            flush ();
            self#drop ~reason:"quarantined element" p
          end
          else
            match
              let dst = (Packet.anno p).Packet.dst_ip in
              (self#entry dst).ae_eth
            with
            | Some eth -> (
                match
                  Ether.encap p ~dst:eth ~src:my_eth
                    ~ethertype:Ether.ethertype_ip
                with
                | () ->
                    encapsulated <- encapsulated + 1;
                    self#note_ok;
                    batch.(!m) <- p;
                    incr m
                | exception e when not (E.fatal e) ->
                    self#record_fault (Printexc.to_string e);
                    self#drop ~reason:"element fault" p)
            | None ->
                (* The held/query path transfers scalar packets of its
                   own, so flush the resolved run first to keep
                   downstream ordering intact. *)
                flush ();
                self#guard (self#push 0) p
            | exception e when not (E.fatal e) ->
                self#record_fault (Printexc.to_string e);
                self#drop ~reason:"element fault" p
        done;
        flush ()
      end

    method! stats =
      let pending =
        Hashtbl.fold
          (fun _ e acc -> if e.ae_pending <> None then acc + 1 else acc)
          table 0
      in
      [
        ("queries", queries);
        ("responses", responses);
        ("encapsulated", encapsulated);
        ("cached", Hashtbl.length table);
        ("pending", pending);
      ]
  end

class arp_responder name =
  object (self)
    inherit E.base name
    val mutable entries : (Ipaddr.t * Ipaddr.t * Ethaddr.t) list = []
    val mutable replies = 0
    method class_name = "ARPResponder"

    method! configure config =
      let parse_entry arg =
        let parts = List.filter (( <> ) "") (String.split_on_char ' ' arg) in
        match parts with
        | [ prefix; eth ] -> (
            match (Ipaddr.parse_prefix prefix, Ethaddr.of_string eth) with
            | Some (addr, mask), Some eth -> Some (addr land mask, mask, eth)
            | _ -> None)
        | _ -> None
      in
      let parsed = List.map parse_entry (Args.split config) in
      if parsed = [] || List.exists Option.is_none parsed then
        Error "ARPResponder expects entries of the form \"IP[/MASK] ETH\""
      else begin
        entries <- List.filter_map Fun.id parsed;
        Ok ()
      end

    method private lookup ip =
      List.find_map
        (fun (addr, mask, eth) ->
          if ip land mask = addr then Some eth else None)
        entries

    method! push _ p =
      if
        Packet.length p >= Ether.header_length + Arp.packet_length
        && Headers.Ether.ethertype p = Ether.ethertype_arp
        && Arp.op ~off:Ether.header_length p = Arp.op_request
      then begin
        let target = Arp.target_ip ~off:Ether.header_length p in
        match self#lookup target with
        | Some eth ->
            let reply =
              Headers.Build.arp_reply ~src_eth:eth ~src_ip:target
                ~dst_eth:(Arp.sender_eth ~off:Ether.header_length p)
                ~dst_ip:(Arp.sender_ip ~off:Ether.header_length p)
            in
            replies <- replies + 1;
            self#spawn reply;
            self#output 0 reply;
            self#drop ~reason:"ARP request consumed" p
        | None -> self#drop ~reason:"not my address" p
      end
      else self#drop ~reason:"not an ARP request" p

    method! stats = [ ("replies", replies) ]
  end

let register () =
  def "ARPQuerier" ~ports:"2/1" ~processing:"h/h" ~flow:"xy/x" (fun n ->
      (new arp_querier n :> E.t));
  def "ARPResponder" (fun n -> (new arp_responder n :> E.t))
