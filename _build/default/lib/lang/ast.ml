type element = { e_name : string; e_class : class_expr; e_config : string }
and class_expr = Cname of string | Ccompound of compound
and compound = { formals : string list; body : t }

and connection = {
  c_from : string;
  c_from_port : int;
  c_to : string;
  c_to_port : int;
}

and t = {
  elements : element list;
  connections : connection list;
  classes : (string * compound) list;
  requirements : string list;
}

let empty = { elements = []; connections = []; classes = []; requirements = [] }

let find_element t name =
  List.find_opt (fun e -> String.equal e.e_name name) t.elements

let class_name = function Cname n -> n | Ccompound _ -> "<compound>"
let element_names t = List.map (fun e -> e.e_name) t.elements
let declared_classes t = List.map fst t.classes

let used_classes t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      out := n :: !out
    end
  in
  let rec walk t =
    List.iter
      (fun e ->
        match e.e_class with
        | Cname n -> add n
        | Ccompound c -> walk c.body)
      t.elements;
    List.iter (fun (_, c) -> walk c.body) t.classes
  in
  walk t;
  List.rev !out

let rename_element t ~old_name ~new_name =
  let fix n = if String.equal n old_name then new_name else n in
  {
    t with
    elements =
      List.map
        (fun e ->
          if String.equal e.e_name old_name then { e with e_name = new_name }
          else e)
        t.elements;
    connections =
      List.map
        (fun c -> { c with c_from = fix c.c_from; c_to = fix c.c_to })
        t.connections;
  }

let remove_element t name =
  {
    t with
    elements = List.filter (fun e -> not (String.equal e.e_name name)) t.elements;
    connections =
      List.filter
        (fun c ->
          not (String.equal c.c_from name) && not (String.equal c.c_to name))
        t.connections;
  }

let add_element t e = { t with elements = t.elements @ [ e ] }
let add_connection t c = { t with connections = t.connections @ [ c ] }

let input_port_count t name =
  List.fold_left
    (fun acc c ->
      if String.equal c.c_to name then max acc (c.c_to_port + 1) else acc)
    0 t.connections

let output_port_count t name =
  List.fold_left
    (fun acc c ->
      if String.equal c.c_from name then max acc (c.c_from_port + 1) else acc)
    0 t.connections

let connections_to t name =
  List.filter (fun c -> String.equal c.c_to name) t.connections

let connections_from t name =
  List.filter (fun c -> String.equal c.c_from name) t.connections
