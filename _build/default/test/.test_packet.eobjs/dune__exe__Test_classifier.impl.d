test/test_classifier.ml: Alcotest List Oclick_classifier Oclick_packet Printf QCheck QCheck_alcotest Result String
