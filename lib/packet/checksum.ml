let fold16 sum =
  let s = (sum land 0xffff) + (sum lsr 16) in
  (s land 0xffff) + (s lsr 16)

(* Word-at-a-time inner loop: one bounds check at entry covers the whole
   region, then [Bytes.unsafe_get]-based 16-bit big-endian reads, unrolled
   four words (8 bytes) per iteration. Partial sums stay well below
   [max_int] for any realistic packet (len < 2^46 on 64-bit), so no
   intermediate folding is needed before the final [fold16]. *)
let ones_complement_sum buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum.ones_complement_sum";
  let u16 b i =
    (Char.code (Bytes.unsafe_get b i) lsl 8)
    lor Char.code (Bytes.unsafe_get b (i + 1))
  in
  let sum = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  while !i + 8 <= stop do
    let b = buf and o = !i in
    sum := !sum + u16 b o + u16 b (o + 2) + u16 b (o + 4) + u16 b (o + 6);
    i := o + 8
  done;
  while !i + 2 <= stop do
    sum := !sum + u16 buf !i;
    i := !i + 2
  done;
  if !i < stop then
    sum := !sum + (Char.code (Bytes.unsafe_get buf !i) lsl 8);
  fold16 !sum

let checksum buf ~pos ~len =
  lnot (ones_complement_sum buf ~pos ~len) land 0xffff

let combine a b = fold16 (a + b)
let finish sum = lnot sum land 0xffff

let ip_header_valid buf ~pos ~ihl =
  ihl >= 5
  && pos >= 0
  && pos + (ihl * 4) <= Bytes.length buf
  && checksum buf ~pos ~len:(ihl * 4) = 0
