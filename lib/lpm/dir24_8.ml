(* DIR-24-8 compressed multibit trie (Gupta/Lin/McKeown 1998, DPDK
   rte_lpm lineage). Stage 1 is a flat [2^stride1] int32 Bigarray; longer
   prefixes chain through 256-entry leaf blocks carved out of one
   growable int32 Bigarray slab. Both live off the OCaml heap: a
   million-route table costs the GC nothing.

   Entry encoding (31 bits, so it round-trips through int32 on 64-bit):
     0                                  empty
     bit 30 set                         leaf pointer; low 24 bits = block id
     otherwise                          terminal: bits 21..26 = owning
                                        prefix len, low 21 bits = nh + 1
   Storing the owning prefix length in every slot is what makes
   incremental add/remove cheap: an insert only overwrites slots whose
   owner is a shorter prefix, a remove repaints exactly its own slots
   with the next-best covering route. No rebuilds, ever. *)

open Bigarray

type slab = (int32, int32_elt, c_layout) Array1.t

let leaf_bit = 0x4000_0000
let block_mask = 0xff_ffff
let nh_mask = 0x1f_ffff
let max_nh = nh_mask - 1 (* nh stored as nh+1, so the top handle is reserved *)

let encode_terminal ~len ~nh = (len lsl 21) lor (nh + 1)
let decoded_len v = if v = 0 then -1 else (v lsr 21) land 0x3f
let is_leaf v = v land leaf_bit <> 0
let block_of v = v land block_mask

type t = {
  stride1 : int;
  shift1 : int; (* 32 - stride1 *)
  tbl1 : slab;
  mutable blocks : slab; (* nblocks * 256 entries *)
  mutable nblocks : int; (* ever-allocated blocks, including freed *)
  mutable free_blocks : int list;
  mutable live_blocks : int;
  (* Next-hop store: parallel int arrays indexed by handle. *)
  mutable nh_gw : int array;
  mutable nh_port : int array;
  mutable nh_used : int;
  mutable free_nh : int list;
  (* The route set itself, keyed (len lsl 32) lor addr -> nh handle.
     Source of truth for duplicate detection and covering-route search. *)
  routes : (int, int) Hashtbl.t;
  mutable nroutes : int;
  (* lookup_batch scratch: leaf-chases deferred from pass 1. *)
  mutable scratch_idx : int array;
  mutable scratch_ent : int array;
}

let create ?(stride1 = 24) () =
  if stride1 <> 24 && stride1 <> 16 && stride1 <> 8 then
    invalid_arg "Dir24_8.create: stride1 must be 8, 16 or 24";
  let tbl1 = Array1.create int32 c_layout (1 lsl stride1) in
  Array1.fill tbl1 0l;
  {
    stride1;
    shift1 = 32 - stride1;
    tbl1;
    blocks = Array1.create int32 c_layout 0;
    nblocks = 0;
    free_blocks = [];
    live_blocks = 0;
    nh_gw = Array.make 16 0;
    nh_port = Array.make 16 0;
    nh_used = 0;
    free_nh = [];
    routes = Hashtbl.create 256;
    nroutes = 0;
    scratch_idx = Array.make 64 0;
    scratch_ent = Array.make 64 0;
  }

let stride1 t = t.stride1
let nroutes t = t.nroutes
let leaf_blocks t = t.live_blocks

let memory_bytes t =
  ((Array1.dim t.tbl1 + Array1.dim t.blocks) * 4)
  + ((Array.length t.nh_gw + Array.length t.nh_port) * 8)

let route_key ~addr ~len = (len lsl 32) lor addr

let mask_addr addr len =
  if len = 0 then 0
  else addr land (0xffff_ffff lsl (32 - len)) land 0xffff_ffff

(* --- next-hop store --- *)

let alloc_nh t ~gw ~port =
  match t.free_nh with
  | h :: rest ->
    t.free_nh <- rest;
    t.nh_gw.(h) <- gw;
    t.nh_port.(h) <- port;
    h
  | [] ->
    if t.nh_used > max_nh then
      invalid_arg "Dir24_8.add: table full (2^21-2 routes)";
    if t.nh_used = Array.length t.nh_gw then begin
      let cap = 2 * Array.length t.nh_gw in
      let gw' = Array.make cap 0 and port' = Array.make cap 0 in
      Array.blit t.nh_gw 0 gw' 0 t.nh_used;
      Array.blit t.nh_port 0 port' 0 t.nh_used;
      t.nh_gw <- gw';
      t.nh_port <- port'
    end;
    let h = t.nh_used in
    t.nh_used <- t.nh_used + 1;
    t.nh_gw.(h) <- gw;
    t.nh_port.(h) <- port;
    h

let free_nh t h = t.free_nh <- h :: t.free_nh
let gw t h = t.nh_gw.(h)
let port t h = t.nh_port.(h)

(* --- leaf-block slab --- *)

let bget t b j = Int32.to_int (Array1.get t.blocks ((b * 256) + j))
let bset t b j x = Array1.set t.blocks ((b * 256) + j) (Int32.of_int x)

let alloc_block t ~fill =
  let id =
    match t.free_blocks with
    | h :: rest ->
      t.free_blocks <- rest;
      h
    | [] ->
      if t.nblocks * 256 = Array1.dim t.blocks then begin
        let cap = max 1024 (2 * Array1.dim t.blocks) in
        let b = Array1.create int32 c_layout cap in
        Array1.blit t.blocks (Array1.sub b 0 (Array1.dim t.blocks));
        t.blocks <- b
      end;
      let id = t.nblocks in
      t.nblocks <- t.nblocks + 1;
      id
  in
  Array1.fill (Array1.sub t.blocks (id * 256) 256) (Int32.of_int fill);
  t.live_blocks <- t.live_blocks + 1;
  id

let free_block t id =
  t.free_blocks <- id :: t.free_blocks;
  t.live_blocks <- t.live_blocks - 1

(* --- insert ---

   Both recursions below work over a "level view": [read]/[write] access
   the level's slot array (stage 1, or a 256-entry block), [base] is the
   number of address bits consumed before this level, [bits] the bits
   this level indexes. *)

(* Overwrite every slot whose owner is a strictly shorter prefix than
   [len], across the whole block [b] and any blocks nested under it.
   Used when an inserted route's range swallows a leaf pointer whole. *)
let rec paint_all_block t b ~len ~value =
  for j = 0 to 255 do
    let v = bget t b j in
    if is_leaf v then paint_all_block t (block_of v) ~len ~value
    else if decoded_len v < len then bset t b j value
  done

let rec paint t ~read ~write ~base ~bits ~addr ~len ~value =
  if len <= base + bits then begin
    (* The route's range spans 2^(base+bits-len) whole slots here. *)
    let lo = (addr lsr (32 - base - bits)) land ((1 lsl bits) - 1) in
    let n = 1 lsl (base + bits - len) in
    for i = lo to lo + n - 1 do
      let v = read i in
      if is_leaf v then paint_all_block t (block_of v) ~len ~value
      else if decoded_len v < len then write i value
    done
  end
  else begin
    (* Longer than this level resolves: descend into (or create) the one
       leaf block on the path. A displaced terminal becomes the new
       block's fill so its covered range keeps resolving to it. *)
    let i = (addr lsr (32 - base - bits)) land ((1 lsl bits) - 1) in
    let v = read i in
    let b =
      if is_leaf v then block_of v
      else begin
        let b = alloc_block t ~fill:v in
        write i (leaf_bit lor b);
        b
      end
    in
    paint t ~read:(bget t b) ~write:(bset t b) ~base:(base + bits) ~bits:8
      ~addr ~len ~value
  end

let add t ~addr ~len ~gw ~port =
  if len < 0 || len > 32 then invalid_arg "Dir24_8.add: len outside 0..32";
  if port < 0 then invalid_arg "Dir24_8.add: negative port";
  let addr = mask_addr addr len in
  let key = route_key ~addr ~len in
  if Hashtbl.mem t.routes key then `Duplicate
  else begin
    let nh = alloc_nh t ~gw ~port in
    Hashtbl.add t.routes key nh;
    t.nroutes <- t.nroutes + 1;
    paint t
      ~read:(fun i -> Int32.to_int (Array1.get t.tbl1 i))
      ~write:(fun i x -> Array1.set t.tbl1 i (Int32.of_int x))
      ~base:0 ~bits:t.stride1 ~addr ~len
      ~value:(encode_terminal ~len ~nh);
    `Added
  end

(* --- remove --- *)

(* Longest proper covering route of addr/len, as a terminal encoding
   (0 if none): scan len-1 down to 0 against the route set. *)
let covering_value t ~addr ~len =
  let rec go l =
    if l < 0 then 0
    else
      let a = mask_addr addr l in
      match Hashtbl.find_opt t.routes (route_key ~addr:a ~len:l) with
      | Some nh -> encode_terminal ~len:l ~nh
      | None -> go (l - 1)
  in
  go (len - 1)

(* Repaint slots owned by exactly [len] with [value], across block [b]
   and nested blocks; fold uniform all-terminal child blocks back into
   their parent slot as we return. *)
let rec unpaint_all_block t b ~len ~value =
  for j = 0 to 255 do
    let v = bget t b j in
    if is_leaf v then begin
      let bb = block_of v in
      unpaint_all_block t bb ~len ~value;
      try_fold t ~write:(bset t b) ~i:j ~b:bb
    end
    else if v <> 0 && decoded_len v = len then bset t b j value
  done

and try_fold t ~write ~i ~b =
  let first = bget t b 0 in
  if not (is_leaf first) then begin
    let uniform = ref true in
    let j = ref 1 in
    while !uniform && !j < 256 do
      if bget t b !j <> first then uniform := false;
      incr j
    done;
    if !uniform then begin
      write i first;
      free_block t b
    end
  end

let rec unpaint t ~read ~write ~base ~bits ~addr ~len ~value =
  if len <= base + bits then begin
    let lo = (addr lsr (32 - base - bits)) land ((1 lsl bits) - 1) in
    let n = 1 lsl (base + bits - len) in
    for i = lo to lo + n - 1 do
      let v = read i in
      if is_leaf v then begin
        let b = block_of v in
        unpaint_all_block t b ~len ~value;
        try_fold t ~write ~i ~b
      end
      else if v <> 0 && decoded_len v = len then write i value
    done
  end
  else begin
    let i = (addr lsr (32 - base - bits)) land ((1 lsl bits) - 1) in
    let v = read i in
    if is_leaf v then begin
      let b = block_of v in
      unpaint t ~read:(bget t b) ~write:(bset t b) ~base:(base + bits) ~bits:8
        ~addr ~len ~value;
      try_fold t ~write ~i ~b
    end
    (* A terminal here means the route's slots were never materialised at
       this depth — impossible for a live route, so nothing to undo. *)
  end

let remove t ~addr ~len =
  if len < 0 || len > 32 then false
  else
    let addr = mask_addr addr len in
    let key = route_key ~addr ~len in
    match Hashtbl.find_opt t.routes key with
    | None -> false
    | Some nh ->
      Hashtbl.remove t.routes key;
      t.nroutes <- t.nroutes - 1;
      let value = covering_value t ~addr ~len in
      unpaint t
        ~read:(fun i -> Int32.to_int (Array1.get t.tbl1 i))
        ~write:(fun i x -> Array1.set t.tbl1 i (Int32.of_int x))
        ~base:0 ~bits:t.stride1 ~addr ~len ~value;
      free_nh t nh;
      true

let iter_routes t f =
  Hashtbl.iter
    (fun key nh ->
      f ~addr:(key land 0xffff_ffff) ~len:(key lsr 32) ~gw:t.nh_gw.(nh)
        ~port:t.nh_port.(nh))
    t.routes

(* --- lookup --- *)

(* Packed result: (touches lsl 24) lor (nh + 1); low bits 0 on a miss. *)
let result_found r = r land block_mask <> 0
let result_nh r = (r land block_mask) - 1
let result_touches r = r lsr 24

let lookup t dst =
  let v = ref (Int32.to_int (Array1.get t.tbl1 (dst lsr t.shift1))) in
  let shift = ref t.shift1 in
  let touches = ref 1 in
  while is_leaf !v do
    shift := !shift - 8;
    v := bget t (block_of !v) ((dst lsr !shift) land 0xff);
    incr touches
  done;
  (!touches lsl 24) lor (!v land nh_mask)

let lookup_batch t dsts out n =
  if Array.length t.scratch_idx < n then begin
    t.scratch_idx <- Array.make n 0;
    t.scratch_ent <- Array.make n 0
  end;
  (* Pass 1: stream every stage-1 read back to back — independent loads
     the CPU overlaps — deferring the (rare) leaf-pointer chases. *)
  let pending = ref 0 in
  let touches = ref n in
  let shift1 = t.shift1 in
  for i = 0 to n - 1 do
    let v = Int32.to_int (Array1.unsafe_get t.tbl1 (dsts.(i) lsr shift1)) in
    if is_leaf v then begin
      t.scratch_idx.(!pending) <- i;
      t.scratch_ent.(!pending) <- v;
      incr pending
    end
    else out.(i) <- (v land nh_mask) - 1
  done;
  (* Pass 2: chase leaf chains only for the deferred entries. *)
  for k = 0 to !pending - 1 do
    let i = t.scratch_idx.(k) in
    let dst = dsts.(i) in
    let v = ref t.scratch_ent.(k) in
    let shift = ref shift1 in
    while is_leaf !v do
      shift := !shift - 8;
      v := bget t (block_of !v) ((dst lsr !shift) land 0xff);
      incr touches
    done;
    out.(i) <- (!v land nh_mask) - 1
  done;
  !touches
