lib/graph/check.ml: Array List Printf Router Spec
