exception Fail of string * int

type scope = {
  mutable elements : Ast.element list; (* reversed *)
  mutable connections : Ast.connection list; (* reversed *)
  mutable classes : (string * Ast.compound) list; (* reversed *)
  mutable requirements : string list; (* reversed *)
  in_compound : bool;
}

type state = { lx : Lexer.t; mutable anon_counter : int }

let fail st msg = raise (Fail (msg, Lexer.line st.lx))

let fresh_scope in_compound =
  { elements = []; connections = []; classes = []; requirements = []; in_compound }

let scope_to_config sc =
  {
    Ast.elements = List.rev sc.elements;
    connections = List.rev sc.connections;
    classes = List.rev sc.classes;
    requirements = List.rev sc.requirements;
  }

let declared sc name =
  List.exists (fun e -> String.equal e.Ast.e_name name) sc.elements

let declare st sc (e : Ast.element) =
  if declared sc e.e_name then
    fail st (Printf.sprintf "element %S redeclared" e.e_name)
  else sc.elements <- e :: sc.elements

let expect st tok =
  let got = Lexer.next st.lx in
  if got <> tok then
    fail st
      (Printf.sprintf "expected %s, got %s"
         (Lexer.token_to_string tok)
         (Lexer.token_to_string got))

let expect_ident st =
  match Lexer.next st.lx with
  | Lexer.Ident s -> s
  | tok -> fail st ("expected identifier, got " ^ Lexer.token_to_string tok)

(* Optional "( config )"; returns "" when absent. *)
let opt_config st =
  if Lexer.peek st.lx = Lexer.Lparen then begin
    ignore (Lexer.next st.lx);
    let cfg = Lexer.read_config st.lx in
    expect st Lexer.Rparen;
    cfg
  end
  else ""

(* Optional "[ port ]"; returns -1 when absent. *)
let opt_port st =
  if Lexer.peek st.lx = Lexer.Lbracket then begin
    ignore (Lexer.next st.lx);
    let s = expect_ident st in
    expect st Lexer.Rbracket;
    match int_of_string_opt s with
    | Some n when n >= 0 -> n
    | _ -> fail st (Printf.sprintf "bad port number %S" s)
  end
  else -1

let fresh_anon_name st class_name =
  st.anon_counter <- st.anon_counter + 1;
  Printf.sprintf "%s@%d" class_name st.anon_counter

let is_pseudo name = String.equal name "input" || String.equal name "output"

let rec parse_compound st =
  (* Called after '{'. Parses optional "$a, $b |" formals then statements
     up to the matching '}'. *)
  let formals =
    match Lexer.peek st.lx with
    | Lexer.Ident s when String.length s > 0 && s.[0] = '$' ->
        let rec loop acc =
          let name = expect_ident st in
          if String.length name = 0 || name.[0] <> '$' then
            fail st "compound formals must start with '$'";
          match Lexer.next st.lx with
          | Lexer.Comma -> loop (name :: acc)
          | Lexer.Bar -> List.rev (name :: acc)
          | tok ->
              fail st ("expected ',' or '|' after formal, got "
                      ^ Lexer.token_to_string tok)
        in
        loop []
    | _ -> []
  in
  let sc = fresh_scope true in
  parse_statements st sc ~stop:Lexer.Rbrace;
  expect st Lexer.Rbrace;
  { Ast.formals; body = scope_to_config sc }

(* A node of a connection chain: returns the element name to connect. *)
and parse_node st sc =
  match Lexer.next st.lx with
  | Lexer.Lbrace ->
      let compound = parse_compound st in
      let name = fresh_anon_name st "compound" in
      declare st sc
        { Ast.e_name = name; e_class = Ccompound compound; e_config = "" };
      name
  | Lexer.Ident first -> (
      match Lexer.peek st.lx with
      | Lexer.Comma | Lexer.Colon_colon ->
          (* declaration: names :: class (config) *)
          let rec names acc =
            match Lexer.next st.lx with
            | Lexer.Comma -> names (expect_ident st :: acc)
            | Lexer.Colon_colon -> List.rev acc
            | tok ->
                fail st ("expected ',' or '::', got " ^ Lexer.token_to_string tok)
          in
          let names = names [ first ] in
          let cls, config = parse_class_spec st in
          List.iter
            (fun n ->
              if is_pseudo n then fail st "cannot declare 'input' or 'output'";
              declare st sc { Ast.e_name = n; e_class = cls; e_config = config })
            names;
          (match names with
          | [ n ] -> n
          | _ :: _ :: _ when chain_continues st ->
              fail st "multi-element declaration cannot appear in a connection"
          | n :: _ -> n
          | [] -> assert false)
      | Lexer.Lparen ->
          (* anonymous element: ClassName(config) *)
          ignore (Lexer.next st.lx);
          let cfg = Lexer.read_config st.lx in
          expect st Lexer.Rparen;
          let name = fresh_anon_name st first in
          declare st sc
            { Ast.e_name = name; e_class = Cname first; e_config = cfg };
          name
      | _ ->
          if declared sc first then first
          else if is_pseudo first then
            if sc.in_compound then first
            else fail st (first ^ " used outside a compound element")
          else begin
            (* an undeclared identifier in a connection is an anonymous
               element of that class, as in Click *)
            let name = fresh_anon_name st first in
            declare st sc
              { Ast.e_name = name; e_class = Cname first; e_config = "" };
            name
          end)
  | tok -> fail st ("expected element, got " ^ Lexer.token_to_string tok)

and chain_continues st =
  match Lexer.peek st.lx with Lexer.Arrow | Lexer.Lbracket -> true | _ -> false

and parse_class_spec st =
  match Lexer.next st.lx with
  | Lexer.Lbrace ->
      let c = parse_compound st in
      (Ast.Ccompound c, "")
  | Lexer.Ident cls ->
      let cfg = opt_config st in
      (Ast.Cname cls, cfg)
  | tok -> fail st ("expected class, got " ^ Lexer.token_to_string tok)

and parse_chain st sc =
  let first = parse_node st sc in
  let rec loop from_name =
    let from_port = opt_port st in
    match Lexer.peek st.lx with
    | Lexer.Arrow ->
        ignore (Lexer.next st.lx);
        let to_port = opt_port st in
        let to_name = parse_node st sc in
        sc.connections <-
          {
            Ast.c_from = from_name;
            c_from_port = (if from_port < 0 then 0 else from_port);
            c_to = to_name;
            c_to_port = (if to_port < 0 then 0 else to_port);
          }
          :: sc.connections;
        loop to_name
    | _ ->
        if from_port >= 0 then
          fail st "dangling output port at end of connection"
  in
  loop first

and parse_statements st sc ~stop =
  let rec loop () =
    match Lexer.peek st.lx with
    | tok when tok = stop -> ()
    | Lexer.Eof ->
        if stop <> Lexer.Eof then fail st "unexpected end of input" else ()
    | Lexer.Semi ->
        ignore (Lexer.next st.lx);
        loop ()
    | Lexer.Ident "elementclass" ->
        ignore (Lexer.next st.lx);
        let name = expect_ident st in
        expect st Lexer.Lbrace;
        let compound = parse_compound st in
        if List.mem_assoc name sc.classes then
          fail st (Printf.sprintf "elementclass %S redefined" name);
        sc.classes <- (name, compound) :: sc.classes;
        loop ()
    | Lexer.Ident "require" ->
        ignore (Lexer.next st.lx);
        expect st Lexer.Lparen;
        let req = Lexer.read_config st.lx in
        expect st Lexer.Rparen;
        sc.requirements <- req :: sc.requirements;
        loop ()
    | _ ->
        parse_chain st sc;
        (match Lexer.peek st.lx with
        | tok when tok = stop -> ()
        | Lexer.Eof when stop = Lexer.Eof -> ()
        | _ -> expect st Lexer.Semi);
        loop ()
  in
  loop ()

let parse src =
  let st = { lx = Lexer.create src; anon_counter = 0 } in
  let sc = fresh_scope false in
  match parse_statements st sc ~stop:Lexer.Eof with
  | () -> Ok (scope_to_config sc)
  | exception Fail (msg, line) ->
      Error (Printf.sprintf "parse error, line %d: %s" line msg)
  | exception Lexer.Error (msg, line) ->
      Error (Printf.sprintf "lexical error, line %d: %s" line msg)

let parse_exn src =
  match parse src with Ok t -> t | Error msg -> failwith msg

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let source =
    if Archive.is_archive contents then
      match Archive.find (Archive.parse_exn contents) "config" with
      | Some body -> body
      | None -> contents
    else contents
  in
  parse source
