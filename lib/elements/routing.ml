(* LookupIPRoute: a static routing table with longest-prefix match.

   Configuration: one argument per route, "ADDR/MASK [GW] PORT", e.g.
   "18.26.4.0/24 1" or "0.0.0.0/0 18.26.4.1 1". The lookup reads the
   destination-address annotation (set by GetIPAddress) and, when the
   route has a gateway, rewrites the annotation so ARPQuerier resolves the
   gateway — exactly Click's LookupIPRoute/StaticIPLookup behaviour.

   Two backends share that contract:

   - [LookupIPRoute] / [StaticIPLookup] / [RadixIPLookup] run on the
     DIR-24-8 trie in [Oclick_lpm.Dir24_8]: 1-2 memory touches per
     lookup regardless of table size, off-heap storage, live add/remove
     through write handlers. Prefixes only (contiguous netmasks).
   - [LinearIPLookup] is the paper-era longest-prefix-sorted linear
     scan: O(table size), but it accepts non-contiguous netmasks and is
     the differential reference the trie is tested against.

   Duplicate routes (same ADDR/MASK declared twice) resolve
   first-declared-wins in both backends: the linear table got that from
   sort stability, the trie refuses re-insertion; [configure] makes it
   explicit by dropping later duplicates up front. *)

open Prelude

type route = { rt_addr : Ipaddr.t; rt_mask : Ipaddr.t; rt_gw : Ipaddr.t; rt_port : int }

let parse_route arg =
  let parts = List.filter (( <> ) "") (String.split_on_char ' ' arg) in
  match parts with
  | [ prefix; port ] -> (
      match (Ipaddr.parse_prefix prefix, Args.parse_int port) with
      | Some (addr, mask), Some port when port >= 0 ->
          Some { rt_addr = addr land mask; rt_mask = mask; rt_gw = 0; rt_port = port }
      | _ -> None)
  | [ prefix; gw; port ] -> (
      match
        (Ipaddr.parse_prefix prefix, Ipaddr.of_string gw, Args.parse_int port)
      with
      | Some (addr, mask), Some gw, Some port when port >= 0 ->
          Some { rt_addr = addr land mask; rt_mask = mask; rt_gw = gw; rt_port = port }
      | _ -> None)
  | _ -> None

(* Parse a whole config, making duplicate-prefix resolution explicit:
   the first declaration of an ADDR/MASK wins, later ones are dropped
   here so neither backend depends on incidental tie-breaking. *)
let parse_table cls config =
  let args = Args.split config in
  let parsed = List.map parse_route args in
  if List.exists Option.is_none parsed then
    Error (Printf.sprintf "%s: bad route (want ADDR/MASK [GW] PORT)" cls)
  else begin
    let seen = Hashtbl.create 64 in
    Ok
      (List.filter
         (fun r ->
           let key = (r.rt_mask lsl 32) lor r.rt_addr in
           if Hashtbl.mem seen key then false
           else begin
             Hashtbl.add seen key ();
             true
           end)
         (List.filter_map Fun.id parsed))
  end

(* The paper's implementation: longest prefix first, linear scan.
   W_lookup charges the number of entries scanned. *)
class linear_ip_lookup name =
  object (self)
    inherit E.base name
    val mutable routes : route array = [||]
    val mutable misses = 0
    val mutable port_scratch : int array = [||]
    method class_name = "LinearIPLookup"
    method! port_count = "1/-"
    method! processing = "h/h"

    method! configure config =
      match parse_table self#class_name config with
      | Error _ as e -> e
      | Ok rs ->
          (* Longest prefix first so a linear scan is longest-prefix
             match. *)
          let more_specific a b = Int.compare b.rt_mask a.rt_mask in
          routes <- Array.of_list (List.stable_sort more_specific rs);
          (* Live table swap: drop batch scratch sized for the old
             table's traffic so stale dimensions can't leak. *)
          port_scratch <- [||];
          Ok ()

    (* Per-packet scans return the matching index (-1 = miss) rather
       than an option of the route — the datapath stays allocation-free
       (no [Some]/tuple box per lookup). *)
    method private scan dst =
      let n = Array.length routes in
      let rec go i =
        if i >= n then -1
        else
          let r = routes.(i) in
          if dst land r.rt_mask = r.rt_addr then i else go (i + 1)
      in
      go 0

    method! push _ p =
      let dst = (Packet.anno p).Packet.dst_ip in
      match self#scan dst with
      | -1 ->
          if not self#lean_work then
            self#charge (Hooks.W_lookup (Array.length routes));
          misses <- misses + 1;
          self#drop ~reason:"no route" p
      | i ->
          let r = routes.(i) in
          if not self#lean_work then self#charge (Hooks.W_lookup (i + 1));
          if r.rt_gw <> 0 then (Packet.anno p).Packet.dst_ip <- r.rt_gw;
          if r.rt_port < self#noutputs then self#output r.rt_port p
          else self#drop ~reason:"route to unconnected port" p

    method! push_batch _ batch =
      (* Look the whole batch up first (one summed W_lookup charge —
         entries scanned is additive), rewriting gateway annotations as
         we go, then emit contiguous same-port runs as single
         transfers. *)
      let bn = Array.length batch in
      if Array.length port_scratch < bn then port_scratch <- Array.make bn 0;
      let ports = port_scratch in
      let n = Array.length routes in
      let scanned_total = ref 0 in
      for i = 0 to bn - 1 do
        let p = batch.(i) in
        if self#is_quarantined then begin
          self#drop ~reason:"quarantined element" p;
          ports.(i) <- consumed
        end
        else begin
          let dst = (Packet.anno p).Packet.dst_ip in
          match self#scan dst with
          | -1 ->
              scanned_total := !scanned_total + n;
              misses <- misses + 1;
              self#drop ~reason:"no route" p;
              ports.(i) <- consumed
          | j ->
              let r = routes.(j) in
              scanned_total := !scanned_total + j + 1;
              self#note_ok;
              if r.rt_gw <> 0 then (Packet.anno p).Packet.dst_ip <- r.rt_gw;
              ports.(i) <- r.rt_port
        end
      done;
      if !scanned_total > 0 then self#charge (Hooks.W_lookup !scanned_total);
      emit_runs self ports batch bn ~on_invalid:(fun p ->
          self#drop ~reason:"route to unconnected port" p)

    method! fuse ctx =
      (* The scalar push, with each route's output port resolved to its
         compiled connection up front. The W_lookup charge (identical
         scanned counts) is kept whenever the hooks might read it. *)
      let nout = self#noutputs in
      let outs = Array.init nout ctx.E.fc_out in
      let lean = ctx.E.fc_lean_work in
      Some
        (fun p ->
          let dst = (Packet.anno p).Packet.dst_ip in
          match self#scan dst with
          | -1 ->
              if not lean then
                self#charge (Hooks.W_lookup (Array.length routes));
              misses <- misses + 1;
              self#drop ~reason:"no route" p
          | i ->
              let r = routes.(i) in
              if not lean then self#charge (Hooks.W_lookup (i + 1));
              if r.rt_gw <> 0 then (Packet.anno p).Packet.dst_ip <- r.rt_gw;
              if r.rt_port < nout then outs.(r.rt_port) p
              else self#drop ~reason:"route to unconnected port" p)

    method! region_sem =
      (* The same scalar lookup as [fuse], as a fused-region leaf: the
         region's action dispatches on the returned port, so the closure
         only decides, rewrites the gateway annotation, and accounts
         misses/unconnected drops itself (returning -1 when the packet
         was consumed). Reads [routes] per call, so live adds/removes
         stay visible to fused graphs. *)
      Some
        (Region.Route
           {
             rt_make =
               (fun ~lean_work p ->
                 let dst = (Packet.anno p).Packet.dst_ip in
                 match self#scan dst with
                 | -1 ->
                     if not lean_work then
                       self#charge (Hooks.W_lookup (Array.length routes));
                     misses <- misses + 1;
                     self#drop ~reason:"no route" p;
                     -1
                 | i ->
                     let r = routes.(i) in
                     if not lean_work then self#charge (Hooks.W_lookup (i + 1));
                     if r.rt_gw <> 0 then
                       (Packet.anno p).Packet.dst_ip <- r.rt_gw;
                     if r.rt_port < self#noutputs then r.rt_port
                     else begin
                       self#drop ~reason:"route to unconnected port" p;
                       -1
                     end);
           })

    (* Live table updates, matching the trie backend's handlers. The
       sorted-array invariant (longest prefix first, declaration order
       within equal lengths) is maintained by inserting a live add after
       every existing route of greater-or-equal mask — a live add is
       "declared last", so first-declared-wins is preserved exactly as
       under [configure]. A removed prefix falls through to the next
       less-specific match (or a miss) on the very next lookup. *)
    method! write_handler handler value =
      match handler with
      | "add" -> (
          match parse_route value with
          | None ->
              Error
                (Printf.sprintf "%s: bad route (want ADDR/MASK [GW] PORT)"
                   self#class_name)
          | Some r ->
              if
                Array.exists
                  (fun q -> q.rt_addr = r.rt_addr && q.rt_mask = r.rt_mask)
                  routes
              then Error (Printf.sprintf "%s: duplicate route" self#class_name)
              else begin
                let n = Array.length routes in
                let pos = ref 0 in
                while !pos < n && routes.(!pos).rt_mask >= r.rt_mask do
                  incr pos
                done;
                routes <-
                  Array.concat
                    [
                      Array.sub routes 0 !pos;
                      [| r |];
                      Array.sub routes !pos (n - !pos);
                    ];
                (* Live table swap: as in [configure], drop batch scratch
                   so stale dimensions can't leak across the update. *)
                port_scratch <- [||];
                Ok ()
              end)
      | "remove" -> (
          match Ipaddr.parse_prefix value with
          | None ->
              Error
                (Printf.sprintf "%s: bad prefix (want ADDR/MASK)"
                   self#class_name)
          | Some (addr, mask) ->
              let addr = addr land mask in
              let keep =
                Array.of_seq
                  (Seq.filter
                     (fun q -> not (q.rt_addr = addr && q.rt_mask = mask))
                     (Array.to_seq routes))
              in
              if Array.length keep = Array.length routes then
                Error (Printf.sprintf "%s: no such route" self#class_name)
              else begin
                routes <- keep;
                port_scratch <- [||];
                Ok ()
              end)
      | h -> Error (Printf.sprintf "%s: no write handler %S" name h)

    method! stats = [ ("routes", Array.length routes); ("misses", misses) ]
  end

module Lpm = Oclick_lpm.Dir24_8

(* DIR-24-8 trie backend. W_lookup charges the trie's memory touches
   (1-2 at the production stride), so the obs ledger prices a lookup at
   what it actually costs instead of the linear scan length; the charge
   is a pure function of the destination address, hence identical across
   scalar / batch / compiled paths.

   Small tables get a 2^16 stage 1 (256 KB); at 65536 routes the table
   rebuilds itself at the full 2^24 stage 1 (64 MB, the DIR-24-8 layout
   proper), whether the routes arrived via [configure] or live [add]
   write handlers. *)
class trie_ip_lookup cls name =
  object (self)
    inherit E.base name
    val mutable trie = Lpm.create ~stride1:16 ()
    val mutable misses = 0
    val mutable port_scratch : int array = [||]
    val mutable dst_scratch : int array = [||]
    val mutable nh_scratch : int array = [||]
    method class_name = cls

    method! port_count = "1/-"
    method! processing = "h/h"

    method private prefix_len_of r =
      match Ipaddr.prefix_length_of_netmask r.rt_mask with
      | Some len -> Ok len
      | None -> Error (Printf.sprintf "%s: non-contiguous netmask" cls)

    method private upgrade_stride_if_needed =
      if Lpm.stride1 trie = 16 && Lpm.nroutes trie >= 65536 then begin
        let big = Lpm.create ~stride1:24 () in
        Lpm.iter_routes trie (fun ~addr ~len ~gw ~port ->
            ignore (Lpm.add big ~addr ~len ~gw ~port));
        trie <- big
      end

    method! configure config =
      match parse_table cls config with
      | Error _ as e -> e
      | Ok rs ->
          let rec lens acc = function
            | [] -> Ok (List.rev acc)
            | r :: rest -> (
                match self#prefix_len_of r with
                | Ok len -> lens ((r, len) :: acc) rest
                | Error _ as e -> e)
          in
          (match lens [] rs with
          | Error _ as e -> e
          | Ok routes ->
              let stride1 = if List.length routes >= 65536 then 24 else 16 in
              let t = Lpm.create ~stride1 () in
              List.iter
                (fun (r, len) ->
                  ignore
                    (Lpm.add t ~addr:r.rt_addr ~len ~gw:r.rt_gw ~port:r.rt_port))
                routes;
              trie <- t;
              (* Live table swap: drop scratch sized for the old table's
                 traffic so stale dimensions can't leak. *)
              port_scratch <- [||];
              dst_scratch <- [||];
              nh_scratch <- [||];
              Ok ())

    method! push _ p =
      let dst = (Packet.anno p).Packet.dst_ip land 0xffff_ffff in
      let r = Lpm.lookup trie dst in
      self#charge (Hooks.W_lookup (Lpm.result_touches r));
      if Lpm.result_found r then begin
        let nh = Lpm.result_nh r in
        let gw = Lpm.gw trie nh in
        if gw <> 0 then (Packet.anno p).Packet.dst_ip <- gw;
        let port = Lpm.port trie nh in
        if port < self#noutputs then self#output port p
        else self#drop ~reason:"route to unconnected port" p
      end
      else begin
        misses <- misses + 1;
        self#drop ~reason:"no route" p
      end

    method! push_batch _ batch =
      let bn = Array.length batch in
      if self#is_quarantined then
        (* The flag is stable for the duration of a batch, and the scalar
           path never reaches [push] (hence never charges W_lookup) when
           quarantined — so neither does this one. *)
        for i = 0 to bn - 1 do
          self#drop ~reason:"quarantined element" batch.(i)
        done
      else begin
        if Array.length port_scratch < bn then begin
          port_scratch <- Array.make bn 0;
          dst_scratch <- Array.make bn 0;
          nh_scratch <- Array.make bn 0
        end;
        let ports = port_scratch in
        for i = 0 to bn - 1 do
          dst_scratch.(i) <- (Packet.anno batch.(i)).Packet.dst_ip land 0xffff_ffff
        done;
        (* Two-pass batched walk: same results and touch counts as bn
           scalar lookups, charged as one summed W_lookup. *)
        let touches = Lpm.lookup_batch trie dst_scratch nh_scratch bn in
        for i = 0 to bn - 1 do
          let nh = nh_scratch.(i) in
          if nh < 0 then begin
            misses <- misses + 1;
            self#drop ~reason:"no route" batch.(i);
            ports.(i) <- consumed
          end
          else begin
            self#note_ok;
            let gw = Lpm.gw trie nh in
            if gw <> 0 then (Packet.anno batch.(i)).Packet.dst_ip <- gw;
            ports.(i) <- Lpm.port trie nh
          end
        done;
        if touches > 0 then self#charge (Hooks.W_lookup touches);
        emit_runs self ports batch bn ~on_invalid:(fun p ->
            self#drop ~reason:"route to unconnected port" p)
      end

    method! fuse ctx =
      (* The compiled decision closure: the fused body calls the trie
         directly, with output ports pre-resolved to compiled
         connections. The closure captures the element (not the trie
         binding), so live adds/removes — and even a stride upgrade that
         rebinds [trie] — stay visible to compiled graphs. *)
      let nout = self#noutputs in
      let outs = Array.init nout ctx.E.fc_out in
      let lean = ctx.E.fc_lean_work in
      Some
        (fun p ->
          let dst = (Packet.anno p).Packet.dst_ip land 0xffff_ffff in
          let r = Lpm.lookup trie dst in
          if not lean then self#charge (Hooks.W_lookup (Lpm.result_touches r));
          if Lpm.result_found r then begin
            let nh = Lpm.result_nh r in
            let gw = Lpm.gw trie nh in
            if gw <> 0 then (Packet.anno p).Packet.dst_ip <- gw;
            let port = Lpm.port trie nh in
            if port < nout then outs.(port) p
            else self#drop ~reason:"route to unconnected port" p
          end
          else begin
            misses <- misses + 1;
            self#drop ~reason:"no route" p
          end)

    method! region_sem =
      (* As [fuse], but as a fused-region leaf: decide, rewrite the
         gateway annotation, account misses and unconnected drops,
         return the port (-1 when consumed). Captures the element, not
         the trie binding, so live adds/removes and stride upgrades stay
         visible. *)
      Some
        (Region.Route
           {
             rt_make =
               (fun ~lean_work p ->
                 let dst = (Packet.anno p).Packet.dst_ip land 0xffff_ffff in
                 let r = Lpm.lookup trie dst in
                 if not lean_work then
                   self#charge (Hooks.W_lookup (Lpm.result_touches r));
                 if Lpm.result_found r then begin
                   let nh = Lpm.result_nh r in
                   let gw = Lpm.gw trie nh in
                   if gw <> 0 then (Packet.anno p).Packet.dst_ip <- gw;
                   let port = Lpm.port trie nh in
                   if port < self#noutputs then port
                   else begin
                     self#drop ~reason:"route to unconnected port" p;
                     -1
                   end
                 end
                 else begin
                   misses <- misses + 1;
                   self#drop ~reason:"no route" p;
                   -1
                 end);
           })

    (* Live table updates, Click-handler style:
         write rt.add "18.26.4.0/24 [GW] PORT"
         write rt.remove "18.26.4.0/24"
       Lookups between calls see a consistent table (each add/remove is
       a complete incremental trie update). *)
    method! write_handler handler value =
      match handler with
      | "add" -> (
          match parse_route value with
          | None ->
              Error (Printf.sprintf "%s: bad route (want ADDR/MASK [GW] PORT)" cls)
          | Some r -> (
              match self#prefix_len_of r with
              | Error _ as e -> e
              | Ok len -> (
                  match
                    Lpm.add trie ~addr:r.rt_addr ~len ~gw:r.rt_gw ~port:r.rt_port
                  with
                  | `Duplicate ->
                      Error (Printf.sprintf "%s: duplicate route" cls)
                  | `Added ->
                      self#upgrade_stride_if_needed;
                      (* Live table swap: as in [configure], drop batch
                         scratch so dimensions sized for the old table
                         can't leak across the update. *)
                      port_scratch <- [||];
                      dst_scratch <- [||];
                      nh_scratch <- [||];
                      Ok ())))
      | "remove" -> (
          match Ipaddr.parse_prefix value with
          | None -> Error (Printf.sprintf "%s: bad prefix (want ADDR/MASK)" cls)
          | Some (addr, mask) -> (
              match Ipaddr.prefix_length_of_netmask mask with
              | None -> Error (Printf.sprintf "%s: non-contiguous netmask" cls)
              | Some len ->
                  if Lpm.remove trie ~addr:(addr land mask) ~len then begin
                    (* A removed prefix must fall through to the next
                       less-specific route (or a clean miss) immediately;
                       dropping the scratch arrays guarantees no batch
                       path can resurrect ports computed against the old
                       table. *)
                    port_scratch <- [||];
                    dst_scratch <- [||];
                    nh_scratch <- [||];
                    Ok ()
                  end
                  else Error (Printf.sprintf "%s: no such route" cls)))
      | h -> Error (Printf.sprintf "%s: no write handler %S" name h)

    method! stats =
      [
        ("routes", Lpm.nroutes trie);
        ("misses", misses);
        ("trie_bytes", Lpm.memory_bytes trie);
        ("leaf_blocks", Lpm.leaf_blocks trie);
      ]
  end

let register () =
  def "LookupIPRoute" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new trie_ip_lookup "LookupIPRoute" n :> E.t));
  def "StaticIPLookup" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new trie_ip_lookup "StaticIPLookup" n :> E.t));
  def "RadixIPLookup" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new trie_ip_lookup "RadixIPLookup" n :> E.t));
  def "LinearIPLookup" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new linear_ip_lookup n :> E.t))
