lib/optim/align.ml: Array List Oclick_graph Oclick_lang Printf String
