lib/hw/pci.ml: Array Engine List Queue
