(** Emits Click-language text from an AST.

    The output is canonical (declarations first, then connections) and
    round-trips through {!Parser.parse}. The optimizers rely on this to
    write arbitrarily transformed graphs back out (paper §5.2). *)

val to_string : Ast.t -> string

val element_to_string : Ast.element -> string
(** One declaration, without the trailing newline. *)

val connection_to_string : Ast.connection -> string

val html_of_config : Ast.t -> string
(** The [click-pretty] rendering: a standalone HTML page listing
    declarations and connections with intra-document links. *)

val dot_of_config : Ast.t -> string
(** A Graphviz rendering of the configuration graph: one record-shaped
    node per element (name, class, configuration), port-labelled edges. *)
