lib/optim/align.mli: Oclick_graph
