type member = { m_name : string; m_body : string }
type t = member list

let magic = "!<oclick archive>"

let is_archive s =
  String.length s >= String.length magic
  && String.sub s 0 (String.length magic) = magic

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "--- file:%s bytes:%d\n" m.m_name
           (String.length m.m_body));
      Buffer.add_string buf m.m_body;
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let parse s =
  if not (is_archive s) then Error "not an oclick archive"
  else begin
    let len = String.length s in
    let line_end from = match String.index_from_opt s from '\n' with
      | Some i -> i
      | None -> len
    in
    let rec members pos acc =
      if pos >= len then Ok (List.rev acc)
      else begin
        let eol = line_end pos in
        let header = String.sub s pos (eol - pos) in
        if String.trim header = "" then members (eol + 1) acc
        else
          match Scanf.sscanf_opt header "--- file:%s@ bytes:%d"
                  (fun name bytes -> (name, bytes))
          with
          | None -> Error (Printf.sprintf "bad archive header %S" header)
          | Some (name, bytes) ->
              let body_start = eol + 1 in
              if body_start + bytes > len then
                Error (Printf.sprintf "archive member %S truncated" name)
              else
                let body = String.sub s body_start bytes in
                (* skip the newline after the body *)
                members (body_start + bytes + 1)
                  ({ m_name = name; m_body = body } :: acc)
      end
    in
    members (line_end 0 + 1) []
  end

let parse_exn s =
  match parse s with Ok t -> t | Error msg -> failwith msg

let find t name =
  List.find_map
    (fun m -> if String.equal m.m_name name then Some m.m_body else None)
    t

let add t ~name ~body =
  let t = List.filter (fun m -> not (String.equal m.m_name name)) t in
  t @ [ { m_name = name; m_body = body } ]

let of_config cfg = [ { m_name = "config"; m_body = cfg } ]
let config t = match find t "config" with Some c -> c | None -> ""
let with_config t cfg = add t ~name:"config" ~body:cfg
