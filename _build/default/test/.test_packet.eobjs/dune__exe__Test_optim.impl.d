test/test_optim.ml: Alcotest List Oclick Oclick_elements Oclick_graph Oclick_lang Oclick_optim Oclick_packet Oclick_runtime Option Printf QCheck QCheck_alcotest Result String
