bin/click_xform.ml: Arg Cmdliner Oclick_optim Printf Term Tool_common
