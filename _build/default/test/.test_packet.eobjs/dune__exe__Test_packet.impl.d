test/test_packet.ml: Alcotest Bytes Char Gen List Oclick_packet QCheck QCheck_alcotest String
