lib/optim/mkmindriver.mli: Oclick_graph
