type init_ctx = {
  ic_graph : Oclick_graph.Router.t;
  ic_element : int -> t;
  ic_find : string -> t option;
  ic_device : string -> Netdevice.t option;
  ic_index : int;
}

(* Context handed to [fuse] by the graph compiler: [fc_out port] is the
   compiled connection closure for this element's output [port] — calling
   it is exactly [output port p] on the compiled path. [fc_lean_work]
   tells the element whether the installed hooks ignore work charges, so
   a fused body may specialize the charge away. *)
and fuse_ctx = {
  fc_out : int -> Oclick_packet.Packet.t -> unit;
  fc_lean_work : bool;
}

and t = <
  name : string;
  class_name : string;
  port_count : string;
  processing : string;
  flow_code : string;
  code_class : string;
  set_code_class : string -> unit;
  direct_dispatch : bool;
  set_direct_dispatch : bool -> unit;
  configure : string -> (unit, string) result;
  initialize : init_ctx -> (unit, string) result;
  index : int;
  set_index : int -> unit;
  set_hooks : Hooks.t -> unit;
  set_nports : inputs:int -> outputs:int -> unit;
  ninputs : int;
  noutputs : int;
  connect_output : int -> t -> int -> unit;
  connect_input : int -> t -> int -> unit;
  push : int -> Oclick_packet.Packet.t -> unit;
  pull : int -> Oclick_packet.Packet.t option;
  push_batch : int -> Oclick_packet.Packet.t array -> unit;
  pull_batch : int -> Oclick_packet.Packet.t array -> int;
  output : int -> Oclick_packet.Packet.t -> unit;
  input_pull : int -> Oclick_packet.Packet.t option;
  batch_size : int;
  set_batch_size : int -> unit;
  set_pool : Oclick_packet.Packet.Pool.t option -> unit;
  fuse : fuse_ctx -> (Oclick_packet.Packet.t -> unit) option;
  region_sem : Region.sem option;
  set_fused :
    out:(Oclick_packet.Packet.t -> unit) array ->
    out_batch:(Oclick_packet.Packet.t array -> unit) array ->
    unit;
  degrade_cells : bool ref * int ref;
  mangle_fn : (Oclick_packet.Packet.t -> unit) option;
  wants_task : bool;
  run_task : bool;
  stats : (string * int) list;
  read_handler : string -> string option;
  write_handler : string -> string -> (unit, string) result;
  is_quarantined : bool;
  fault_count : int;
  set_quarantine_threshold : int -> unit;
  set_mangle : (Oclick_packet.Packet.t -> unit) option -> unit;
  set_clock : (unit -> int) -> unit;
  record_fault : string -> unit;
  drop : reason:string -> Oclick_packet.Packet.t -> unit;
  note_ok : unit >

(* Exceptions the degradation layer must never swallow. *)
let fatal = function
  | Out_of_memory | Stack_overflow | Sys.Break -> true
  | _ -> false

(* Verdict of a simple_action element's in-place fast path. All three
   constructors are immediates, so elements whose action mutates the
   packet in place (the common case on the forwarding path) report
   keep/drop without boxing a [Packet.t option] per packet. [V_defer]
   (the default) routes through the option-returning [action], for
   elements that may substitute a different packet. *)
type verdict = V_keep | V_drop | V_defer

(* Shared fill value for scratch batch arrays; never read before a real
   packet is written over it. *)
let placeholder = lazy (Oclick_packet.Packet.create 0)
let force_scratch_placeholder () = ignore (Lazy.force placeholder)

class virtual base (name : string) =
  object (self)
    val mutable index = -1
    val mutable hooks = Hooks.null

    (* Leanness of the installed hooks, cached once in [set_hooks] so the
       inner transfer paths pay a single branch instead of re-reading the
       hook record (and allocating a transfer report) per packet. *)
    val mutable lean_transfer = true
    val mutable lean_transfer_batch = true
    val mutable lean_work = true
    val mutable out_targets : (t * int) option array = [||]
    val mutable in_targets : (t * int) option array = [||]

    (* Compiled connection closures, one per output port, installed by the
       graph compiler (lib/compile). Empty = interpreted dispatch. *)
    val mutable fused_out : (Oclick_packet.Packet.t -> unit) array = [||]

    val mutable fused_out_batch :
        (Oclick_packet.Packet.t array -> unit) array = [||]

    val mutable direct_dispatch = false
    val mutable code_class_override : string option = None
    val mutable quarantine_threshold = 8
    val mutable fault_count = 0

    (* Refs (not mutable fields) so compiled connection closures can read
       and clear them without a method dispatch per packet. *)
    val consecutive_faults = ref 0
    val quarantined = ref false
    val mutable mangle : (Oclick_packet.Packet.t -> unit) option = None

    (* Nanosecond time source for aging element state (Aged_table);
       installed by the driver. Default never advances, so state never
       ages unless a clock is provided. *)
    val mutable clock : unit -> int = fun () -> 0
    val mutable batch_size = 1
    val mutable pool : Oclick_packet.Packet.Pool.t option = None
    val mutable scratch_arr : Oclick_packet.Packet.t array = [||]
    method name = name
    method virtual class_name : string

    method code_class =
      match code_class_override with
      | Some c -> c
      | None -> self#class_name

    method set_code_class c = code_class_override <- Some c
    method direct_dispatch = direct_dispatch
    method set_direct_dispatch b = direct_dispatch <- b
    method port_count = "1/1"
    method processing = "a/a"
    method flow_code = "x/x"

    method configure config : (unit, string) result =
      if String.trim config = "" then Ok ()
      else
        Error
          (Printf.sprintf "%s: class %s takes no configuration" name
             self#class_name)

    method initialize (_ctx : init_ctx) : (unit, string) result = Ok ()
    method index = index
    method set_index i = index <- i

    method set_hooks h =
      hooks <- h;
      lean_transfer <- h.Hooks.on_transfer == Hooks.null.Hooks.on_transfer;
      lean_transfer_batch <-
        h.Hooks.on_transfer_batch == Hooks.null.Hooks.on_transfer_batch;
      lean_work <- h.Hooks.on_work == Hooks.null.Hooks.on_work

    method set_nports ~inputs ~outputs =
      in_targets <- Array.make inputs None;
      out_targets <- Array.make outputs None

    method ninputs = Array.length in_targets
    method noutputs = Array.length out_targets

    method connect_output port (dst : t) dst_port =
      if port < 0 || port >= Array.length out_targets then
        invalid_arg (name ^ ": connect_output port out of range");
      out_targets.(port) <- Some (dst, dst_port)

    method connect_input port (src : t) src_port =
      if port < 0 || port >= Array.length in_targets then
        invalid_arg (name ^ ": connect_input port out of range");
      in_targets.(port) <- Some (src, src_port)

    method push (_port : int) (p : Oclick_packet.Packet.t) =
      self#drop ~reason:"push to non-push element" p

    method pull (_port : int) : Oclick_packet.Packet.t option = None

    (** {2 Batched transfer path} *)

    method batch_size = batch_size
    method set_batch_size n = batch_size <- max 1 n
    method set_pool p = pool <- p

    (* Pool-aware allocation for source elements: recycled buffer when a
       pool is installed, fresh packet otherwise. *)
    method private alloc ?headroom len =
      match pool with
      | Some pl -> Oclick_packet.Packet.Pool.alloc pl ?headroom len
      | None -> Oclick_packet.Packet.create ?headroom len

    method private recycle p =
      match pool with
      | Some pl -> Oclick_packet.Packet.Pool.recycle pl p
      | None -> ()

    (* Run [f p] under the same per-packet fault containment the scalar
       transfer path provides, but from the receiving side: push_batch
       implementations run inside the destination element, so they must
       contain their own per-packet faults (the caller has already handed
       the whole batch over). Reason strings match the scalar path
       exactly, so per-reason drop totals are batch-invariant; only the
       reporting element differs (the destination rather than the
       source). *)
    method private guard (f : Oclick_packet.Packet.t -> unit) p =
      if !quarantined then self#drop ~reason:"quarantined element" p
      else
        match f p with
        | () -> consecutive_faults := 0
        | exception e when not (fatal e) ->
            self#record_fault (Printexc.to_string e);
            self#drop ~reason:"element fault" p

    (* Reuse the batch array for a shorter prefix without copying when
       nothing was filtered out. *)
    method private sub_batch (batch : Oclick_packet.Packet.t array) m =
      if m = Array.length batch then batch else Array.sub batch 0 m

    (* A per-element reusable batch array (grow-only), so task loops
       don't allocate one per scheduler round. *)
    method private scratch n =
      if Array.length scratch_arr < n then
        scratch_arr <- Array.make n (Lazy.force placeholder);
      scratch_arr

    method push_batch port (batch : Oclick_packet.Packet.t array) =
      (* Compatibility default: every element class works under batching
         unmodified by looping the scalar [push]. Hot elements override
         this with loops that hoist dispatch, hook reporting, and config
         lookups out of the per-packet body. *)
      let f = self#push port in
      for i = 0 to Array.length batch - 1 do
        self#guard f batch.(i)
      done

    method pull_batch port (dst : Oclick_packet.Packet.t array) =
      (* Fill-style: write up to [Array.length dst] packets into [dst]
         from the front, return how many. Default loops the scalar
         [pull]; stops at the first refusal or contained fault. *)
      let n = Array.length dst in
      let i = ref 0 in
      let eos = ref false in
      while (not !eos) && !i < n do
        match self#pull port with
        | Some p ->
            dst.(!i) <- p;
            incr i;
            consecutive_faults := 0
        | None -> eos := true
        | exception e when not (fatal e) ->
            self#record_fault (Printexc.to_string e);
            eos := true
      done;
      !i

    method wants_task = false
    method run_task = false
    method stats : (string * int) list = []

    method read_handler handler =
      match handler with
      | "name" -> Some name
      | "class" -> Some self#class_name
      | h -> Option.map string_of_int (List.assoc_opt h self#stats)

    method write_handler handler (_value : string) : (unit, string) result =
      Error (Printf.sprintf "%s: no write handler %S" name handler)

    (** {2 Degradation layer} *)

    method is_quarantined = !quarantined
    method fault_count = fault_count
    method set_quarantine_threshold n = quarantine_threshold <- n
    method set_mangle f = mangle <- f
    method mangle_fn = mangle
    method set_clock f = clock <- f
    method note_ok = consecutive_faults := 0

    (* The degradation state as raw cells, for the graph compiler: the
       quarantine flag (read per packet) and the consecutive-fault counter
       (cleared per successful delivery). *)
    method degrade_cells = (quarantined, consecutive_faults)

    method record_fault reason =
      fault_count <- fault_count + 1;
      incr consecutive_faults;
      hooks.Hooks.on_fault ~idx:index ~cls:self#class_name ~reason;
      if
        quarantine_threshold > 0
        && !consecutive_faults >= quarantine_threshold
        && not !quarantined
      then begin
        quarantined := true;
        hooks.Hooks.on_warn ~src:name
          (Printf.sprintf "quarantined after %d consecutive faults (last: %s)"
             !consecutive_faults reason)
      end

    method fuse (_ : fuse_ctx) : (Oclick_packet.Packet.t -> unit) option =
      None

    method region_sem : Region.sem option = None

    method set_fused ~out ~out_batch =
      fused_out <- out;
      fused_out_batch <- out_batch

    method output port p =
      if port >= 0 && port < Array.length fused_out then fused_out.(port) p
      else
        match
          if port >= 0 && port < Array.length out_targets then
            out_targets.(port)
          else None
        with
      | Some (dst, dst_port) ->
          (match mangle with Some f -> f p | None -> ());
          if dst#is_quarantined then
            self#drop ~reason:"quarantined element" p
          else begin
            if not lean_transfer then
              hooks.Hooks.on_transfer
                {
                  Hooks.tr_src_idx = index;
                  tr_src_class = self#code_class;
                  tr_src_port = port;
                  tr_dst_idx = dst#index;
                  tr_dst_class = dst#class_name;
                  tr_dst_port = dst_port;
                  tr_direct = direct_dispatch;
                  tr_pull = false;
                }
                p;
            match dst#push dst_port p with
            | () -> dst#note_ok
            | exception e when not (fatal e) ->
                (* The packet died inside [dst], and the transfer into it
                   was already reported, so the drop must be accounted to
                   [dst]: that keeps per-element packet books balanced and
                   matches the batched path, where push_batch's own guard
                   (running inside the destination) records the drop. *)
                dst#record_fault (Printexc.to_string e);
                dst#drop ~reason:"element fault" p
          end
      | None ->
          self#drop ~reason:(Printf.sprintf "unconnected output %d" port) p

    method input_pull port =
      match
        if port >= 0 && port < Array.length in_targets then in_targets.(port)
        else None
      with
      | Some (src, src_port) -> (
          if src#is_quarantined then None
          else
            match src#pull src_port with
            | Some p as result ->
                src#note_ok;
                (* Report only pulls that move a packet: idle polling is part
                   of the scheduler loop, not per-packet cost (the paper's
                   cycle counters bracket packet-processing code). *)
                if not lean_transfer then
                  hooks.Hooks.on_transfer
                    {
                      Hooks.tr_src_idx = index;
                      tr_src_class = self#code_class;
                      tr_src_port = port;
                      tr_dst_idx = src#index;
                      tr_dst_class = src#class_name;
                      tr_dst_port = src_port;
                      tr_direct = direct_dispatch;
                      tr_pull = true;
                    }
                    p;
                result
            | None -> None
            | exception e when not (fatal e) ->
                src#record_fault (Printexc.to_string e);
                None)
      | None -> None

    method output_batch port (batch : Oclick_packet.Packet.t array) =
      let n = Array.length batch in
      if n = 1 then self#output port batch.(0)
      else if n > 0 then
        if port >= 0 && port < Array.length fused_out_batch then
          fused_out_batch.(port) batch
        else
        match
          if port >= 0 && port < Array.length out_targets then
            out_targets.(port)
          else None
        with
        | Some (dst, dst_port) -> (
            (match mangle with
            | Some f ->
                for i = 0 to n - 1 do
                  f batch.(i)
                done
            | None -> ());
            if dst#is_quarantined then
              for i = 0 to n - 1 do
                self#drop ~reason:"quarantined element" batch.(i)
              done
            else begin
              if not lean_transfer_batch then
                hooks.Hooks.on_transfer_batch
                  {
                    Hooks.tr_src_idx = index;
                    tr_src_class = self#code_class;
                    tr_src_port = port;
                    tr_dst_idx = dst#index;
                    tr_dst_class = dst#class_name;
                    tr_dst_port = dst_port;
                    tr_direct = direct_dispatch;
                    tr_pull = false;
                  }
                  batch n;
              match dst#push_batch dst_port batch with
              | () -> dst#note_ok
              | exception e when not (fatal e) ->
                  (* push_batch implementations contain their own
                     per-packet faults; an escape means we no longer know
                     which packets were consumed, so account the whole
                     batch as faulted rather than leak it from the
                     conservation ledger. The drops belong to [dst] (the
                     element the packets already transferred into), same
                     as the scalar path. *)
                  dst#record_fault (Printexc.to_string e);
                  for i = 0 to n - 1 do
                    dst#drop ~reason:"element fault" batch.(i)
                  done
            end)
        | None ->
            for i = 0 to n - 1 do
              self#drop
                ~reason:(Printf.sprintf "unconnected output %d" port)
                batch.(i)
            done

    method input_pull_batch port (dst : Oclick_packet.Packet.t array) =
      if Array.length dst = 1 then (
        match self#input_pull port with
        | Some p ->
            dst.(0) <- p;
            1
        | None -> 0)
      else
        match
          if port >= 0 && port < Array.length in_targets then in_targets.(port)
          else None
        with
        | Some (src, src_port) ->
            if src#is_quarantined then 0
            else
              let n =
                (* pull_batch implementations contain their own faults
                   (the base default does); a defensive catch here keeps
                   an escape from killing the pulling element's task. *)
                match src#pull_batch src_port dst with
                | n -> n
                | exception e when not (fatal e) ->
                    src#record_fault (Printexc.to_string e);
                    0
              in
              if n > 0 then begin
                src#note_ok;
                if not lean_transfer_batch then
                  hooks.Hooks.on_transfer_batch
                    {
                      Hooks.tr_src_idx = index;
                      tr_src_class = self#code_class;
                      tr_src_port = port;
                      tr_dst_idx = src#index;
                      tr_dst_class = src#class_name;
                      tr_dst_port = src_port;
                      tr_direct = direct_dispatch;
                      tr_pull = true;
                    }
                    dst n
              end;
              n
        | None -> 0

    method charge w = hooks.Hooks.on_work ~idx:index ~cls:self#class_name w

    (* Whether [charge] would reach a real hook: per-packet charge sites
       guard on this so the [Hooks.work] constructor isn't boxed just to
       feed a null hook. *)
    method lean_work = lean_work

    method drop ~reason p =
      hooks.Hooks.on_drop ~idx:index ~cls:self#class_name ~reason p

    method spawn p = hooks.Hooks.on_spawn ~idx:index ~cls:self#class_name p
  end

class virtual simple_action (name : string) =
  object (self)
    inherit base name

    method virtual private action
        : Oclick_packet.Packet.t -> Oclick_packet.Packet.t option

    (* In-place fast path: an element whose action never substitutes a
       different packet overrides this with its real body (mutating [p]
       and answering [V_keep]/[V_drop]) and leaves [action] delegating to
       it, so every transfer path below checks the unboxed verdict first
       and only falls back to the allocating [action] on [V_defer]. *)
    method private inplace (_ : Oclick_packet.Packet.t) : verdict = V_defer

    (* The delegation body for in-place elements' [action]: boxes the
       verdict only for callers that need the option form. *)
    method private action_of_inplace p =
      match self#inplace p with
      | V_keep -> Some p
      | V_drop -> None
      | V_defer -> invalid_arg (name ^ ": inplace deferred to itself")

    method! push _ p =
      match self#inplace p with
      | V_keep -> self#output 0 p
      | V_drop -> ()
      | V_defer -> (
          match self#action p with Some p -> self#output 0 p | None -> ())

    method! pull _ =
      match self#input_pull 0 with
      | Some p as r -> (
          match self#inplace p with
          | V_keep -> r
          | V_drop -> None
          | V_defer -> self#action p)
      | None -> None

    method! push_batch _ batch =
      (* Generic batched fast path for every simple_action element:
         apply [action] to each packet, compacting survivors in place,
         then forward the whole surviving prefix in one transfer. The
         batch array is scratch — callers must not rely on its contents
         after push_batch returns. *)
      let n = Array.length batch in
      let m = ref 0 in
      for i = 0 to n - 1 do
        let p = batch.(i) in
        if !quarantined then self#drop ~reason:"quarantined element" p
        else
          match self#inplace p with
          | V_keep ->
              batch.(!m) <- p;
              incr m;
              consecutive_faults := 0
          | V_drop -> consecutive_faults := 0
          | V_defer -> (
              match self#action p with
              | Some q ->
                  batch.(!m) <- q;
                  incr m;
                  consecutive_faults := 0
              | None -> consecutive_faults := 0
              | exception e when not (fatal e) ->
                  self#record_fault (Printexc.to_string e);
                  self#drop ~reason:"element fault" p)
          | exception e when not (fatal e) ->
              self#record_fault (Printexc.to_string e);
              self#drop ~reason:"element fault" p
      done;
      if !m > 0 then self#output_batch 0 (self#sub_batch batch !m)

    method! fuse ctx =
      (* The generic fused body for every simple_action element: exactly
         [push], with the downstream transfer already resolved to the
         compiled connection closure. *)
      let k = ctx.fc_out 0 in
      Some
        (fun p ->
          match self#inplace p with
          | V_keep -> k p
          | V_drop -> ()
          | V_defer -> (
              match self#action p with Some q -> k q | None -> ()))
  end

let configure_error msg = Error msg
