(** Boolean-expression front-end IR for classifiers.

    Both the raw [Classifier] pattern language and the [IPFilter] expression
    language compile to this IR, which is then lowered into a shared
    decision-tree DAG ({!compile_rules}). *)

type test = { t_offset : int; t_mask : int; t_value : int }
(** Compare the masked big-endian 32-bit word at a 4-aligned byte offset. *)

type t =
  | True
  | False
  | Test of test
  | And of t * t
  | Or of t * t
  | Not of t

val conj : t list -> t
val disj : t list -> t

val tests_of_bytes : offset:int -> value:string -> mask:string -> t
(** Byte-level constraint: packet bytes starting at [offset] must equal
    [value] under [mask] (strings of equal length, raw bytes). Lowered to a
    conjunction of word-aligned {!test}s, one per touched 32-bit word. *)

val test_u8 : offset:int -> ?mask:int -> int -> t
val test_u16 : offset:int -> ?mask:int -> int -> t
val test_u32 : offset:int -> ?mask:int -> int -> t
(** Convenience wrappers over {!tests_of_bytes} for common field widths. *)

type rule = { r_expr : t; r_output : int }

val compile_rules : ?noutputs:int -> rule list -> Tree.t
(** First matching rule wins; packets matching no rule go to {!Tree.drop}.
    Identical (expression, continuation) pairs share decision-tree nodes,
    so the result is a DAG. [noutputs] defaults to the largest output
    mentioned plus one. *)
