lib/elements/trace_io.ml: Args Buffer E List Oclick_packet Packet Prelude
