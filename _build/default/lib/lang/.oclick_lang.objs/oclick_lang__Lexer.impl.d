lib/lang/lexer.ml: Buffer Printf String
