lib/core/ip_router.mli: Oclick_graph Oclick_packet
