(* Quickstart: write a configuration in the Click language, install it in
   the user-level driver, feed it packets, and read element statistics.

   Run with:  dune exec examples/quickstart.exe *)

module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Driver = Oclick_runtime.Driver
module Netdevice = Oclick_runtime.Netdevice

let config =
  {|
// Count UDP packets; everything else is discarded.
pd :: PollDevice(net0);
cl :: IPClassifier(udp, -);
pd -> Strip(14) -> CheckIPHeader() -> cl;
cl [0] -> udp_count :: Counter -> q :: Queue(64) -> td :: ToDevice(net1);
cl [1] -> Discard;
|}

let () =
  (* 1. Make the element library available (Click links its elements
     statically; we register them). *)
  Oclick_elements.register_all ();
  (* 2. Devices are provided by the embedder; here, in-memory queues. *)
  let net0 = new Netdevice.queue_device "net0" () in
  let net1 = new Netdevice.queue_device "net1" () in
  let driver =
    match
      Driver.of_string
        ~devices:[ (net0 :> Netdevice.t); (net1 :> Netdevice.t) ]
        config
    with
    | Ok d -> d
    | Error e -> failwith e
  in
  (* 3. Inject traffic: 5 UDP packets and 3 ICMP echoes. *)
  let src_ip = Ipaddr.of_string_exn "192.168.0.1"
  and dst_ip = Ipaddr.of_string_exn "192.168.0.2" in
  for _ = 1 to 5 do
    net0#inject (Headers.Build.udp ~src_ip ~dst_ip ())
  done;
  for _ = 1 to 3 do
    net0#inject (Headers.Build.icmp_echo ~src_ip ~dst_ip ())
  done;
  (* 4. Run the router's tasks until everything drains. *)
  let (_ : bool) = Driver.run_until_idle driver in
  (* 5. Inspect the results. *)
  let stats name =
    match Driver.element driver name with
    | Some e -> e#stats
    | None -> failwith ("no element " ^ name)
  in
  Printf.printf "udp_count: %d packets, %d bytes\n"
    (List.assoc "packets" (stats "udp_count"))
    (List.assoc "bytes" (stats "udp_count"));
  Printf.printf "transmitted on net1: %d frames\n" net1#tx_count;
  assert (List.assoc "packets" (stats "udp_count") = 5);
  assert (net1#tx_count = 5);
  print_endline "quickstart OK"
