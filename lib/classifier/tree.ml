type target = Node of int | Leaf of int

let drop = -1

type node = { offset : int; mask : int; value : int; yes : target; no : target }
type t = { nodes : node array; root : target; noutputs : int }

let leaf_tree output noutputs = { nodes = [||]; root = Leaf output; noutputs }

let safe_length t =
  Array.fold_left (fun acc n -> max acc (n.offset + 4)) 0 t.nodes

let node_count t = Array.length t.nodes

let depth t =
  (* The tree is a DAG; memoize longest path per node. *)
  let memo = Array.make (Array.length t.nodes) (-1) in
  let rec go = function
    | Leaf _ -> 0
    | Node i ->
        if memo.(i) >= 0 then memo.(i)
        else begin
          (* Mark to catch cycles (malformed trees). *)
          memo.(i) <- 0;
          let d = 1 + max (go t.nodes.(i).yes) (go t.nodes.(i).no) in
          memo.(i) <- d;
          d
        end
  in
  go t.root

let classify_read_count t ~read =
  let rec go target count =
    match target with
    | Leaf k -> (k, count)
    | Node i ->
        let n = t.nodes.(i) in
        if read n.offset land n.mask = n.value then go n.yes (count + 1)
        else go n.no (count + 1)
  in
  go t.root 0

let classify_read t ~read = fst (classify_read_count t ~read)

let packet_read p off =
  let len = Oclick_packet.Packet.length p in
  if off + 4 <= len then Oclick_packet.Packet.get_u32 p off
  else begin
    let byte i =
      if i < len then Oclick_packet.Packet.get_u8 p i else 0
    in
    (byte off lsl 24) lor (byte (off + 1) lsl 16)
    lor (byte (off + 2) lsl 8)
    lor byte (off + 3)
  end

let classify t p = classify_read t ~read:(packet_read p)
let classify_count t p = classify_read_count t ~read:(packet_read p)

(* Packed-result walk for per-packet datapaths: a top-level recursion
   over the packet directly (no [read] closure, no inner [go] closure,
   no result tuple), so classifying a packet allocates nothing. The
   visited count saturates at [packed_visited_max] — far beyond any
   real tree's depth. *)
let packed_visited_bits = 20
let packed_visited_max = (1 lsl packed_visited_bits) - 1

let rec walk_packet t p target count =
  match target with
  | Leaf k -> ((k + 1) lsl packed_visited_bits) lor count
  | Node i ->
      let n = t.nodes.(i) in
      let count = if count < packed_visited_max then count + 1 else count in
      if packet_read p n.offset land n.mask = n.value then
        walk_packet t p n.yes count
      else walk_packet t p n.no count

let classify_packed t p = walk_packet t p t.root 0
let packed_output v = (v asr packed_visited_bits) - 1
let packed_visited v = v land packed_visited_max

let target_to_string = function
  | Node i -> string_of_int i
  | Leaf k -> if k = drop then "[drop]" else Printf.sprintf "[%d]" k

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "outputs %d root %s\n" t.noutputs
       (target_to_string t.root));
  Array.iteri
    (fun i n ->
      Buffer.add_string buf
        (Printf.sprintf "%d: off %d mask 0x%08x value 0x%08x yes %s no %s\n" i
           n.offset n.mask n.value (target_to_string n.yes)
           (target_to_string n.no)))
    t.nodes;
  Buffer.contents buf

let target_of_string s =
  let s = String.trim s in
  if String.equal s "[drop]" then Some (Leaf drop)
  else if String.length s >= 2 && s.[0] = '[' && s.[String.length s - 1] = ']'
  then
    match int_of_string_opt (String.sub s 1 (String.length s - 2)) with
    | Some k when k >= 0 -> Some (Leaf k)
    | _ -> None
  else
    match int_of_string_opt s with
    | Some i when i >= 0 -> Some (Node i)
    | _ -> None

let of_string s =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' s)
  in
  match lines with
  | [] -> Error "empty tree dump"
  | header :: rest -> (
      match
        Scanf.sscanf_opt header "outputs %d root %s" (fun n r -> (n, r))
      with
      | None -> Error (Printf.sprintf "bad tree header %S" header)
      | Some (noutputs, root_s) -> (
          match target_of_string root_s with
          | None -> Error (Printf.sprintf "bad root target %S" root_s)
          | Some root -> (
              let parse_line l =
                (* Scanf's %x rejects the 0x prefix, so read hex as %s. *)
                match
                  Scanf.sscanf_opt l "%d: off %d mask %s value %s yes %s no %s"
                    (fun i off mask value yes no ->
                      (i, off, mask, value, yes, no))
                with
                | Some (i, off, mask_s, value_s, yes, no) -> (
                    match (int_of_string_opt mask_s, int_of_string_opt value_s)
                    with
                    | Some mask, Some value ->
                        Some (i, off, mask, value, yes, no)
                    | _ -> None)
                | None -> None
              in
              let rec build acc expected = function
                | [] -> Ok (List.rev acc)
                | l :: rest -> (
                    match parse_line l with
                    | None -> Error (Printf.sprintf "bad tree line %S" l)
                    | Some (i, off, mask, value, yes_s, no_s) ->
                        if i <> expected then
                          Error (Printf.sprintf "node %d out of order" i)
                        else (
                          match
                            (target_of_string yes_s, target_of_string no_s)
                          with
                          | Some yes, Some no ->
                              build
                                ({ offset = off; mask; value; yes; no } :: acc)
                                (expected + 1) rest
                          | _ -> Error (Printf.sprintf "bad targets in %S" l)))
              in
              match build [] 0 rest with
              | Error e -> Error e
              | Ok nodes ->
                  Ok { nodes = Array.of_list nodes; root; noutputs })))

let renumber t =
  let order = Hashtbl.create 16 in
  let nodes = ref [] in
  let next = ref 0 in
  let rec visit = function
    | Leaf k -> Leaf k
    | Node i -> (
        match Hashtbl.find_opt order i with
        | Some j -> Node j
        | None ->
            let j = !next in
            incr next;
            Hashtbl.add order i j;
            (* Reserve the slot, then fill after visiting children so the
               preorder indices are stable. *)
            let n = t.nodes.(i) in
            let cell = ref n in
            nodes := (j, cell) :: !nodes;
            let yes = visit n.yes in
            let no = visit n.no in
            cell := { n with yes; no };
            Node j)
  in
  let root = visit t.root in
  let arr = Array.make !next { offset = 0; mask = 0; value = 0; yes = root; no = root } in
  List.iter (fun (j, cell) -> arr.(j) <- !cell) !nodes;
  { nodes = arr; root; noutputs = t.noutputs }

let equal a b =
  let a = renumber a and b = renumber b in
  a.root = b.root && a.noutputs = b.noutputs && a.nodes = b.nodes
