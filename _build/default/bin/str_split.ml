(* A tiny substring splitter (the str library is avoided on purpose). *)

let split_on_substring s sep =
  let seplen = String.length sep in
  if seplen = 0 then invalid_arg "split_on_substring";
  let rec go start acc =
    let rec find i =
      if i + seplen > String.length s then None
      else if String.sub s i seplen = sep then Some i
      else find (i + 1)
    in
    match find start with
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
    | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
  in
  go 0 []
