lib/lang/args.mli:
