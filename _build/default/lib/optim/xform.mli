(** [click-xform]: pattern-replacement optimization of router graphs
    (paper §6.2).

    Patterns and replacements are configuration fragments written as
    compound elements in the Click language. A pattern matches a subgraph
    when corresponding elements have the same classes and configurations
    (pattern configurations may contain [$variables], which bind
    consistently across the whole pattern) and are connected the same way;
    connections into or out of the matched subgraph may occur only where
    the pattern's [input]/[output] pseudo-elements allow. Matching is a
    backtracking subgraph-isomorphism search in the style of Ullmann's
    algorithm, with candidate filtering and adjacency consistency
    propagation.

    A patterns file is a Click configuration containing [elementclass]
    pairs named [<Name>Pattern] and [<Name>Replacement]:

    {v
    elementclass StripTwicePattern { $a, $b |
      input -> Strip($a) -> Strip($b) -> output;
    }
    elementclass StripTwiceReplacement { $a, $b |
      input -> Strip2@x :: Strip2($a, $b) -> output;
    }
    v} *)

type pair = {
  xf_name : string;
  xf_formals : string list;
  xf_pattern : Oclick_lang.Ast.t;  (** flattened pattern body *)
  xf_replacement : Oclick_lang.Ast.t;
}

val parse_patterns : string -> (pair list, string) result
(** Parse a patterns file; every [...Pattern] class must have a matching
    [...Replacement] class. *)

val run :
  patterns:pair list ->
  ?max_replacements:int ->
  Oclick_graph.Router.t ->
  (Oclick_graph.Router.t * int, string) result
(** Applies every pattern repeatedly until no occurrences remain (or the
    replacement cap, default 10_000, is hit). Returns the transformed
    graph and the number of replacements performed. The input graph is
    not modified. *)

(** Exposed for tests. *)
module Internal : sig
  val match_config_arg :
    bindings:(string * string) list ->
    pattern:string ->
    subject:string ->
    (string * string) list option
end
