bin/oclick_run.ml: Arg Cmdliner Fun List Oclick_graph Oclick_lang Oclick_runtime Printf String Term Tool_common
