examples/multirouter.ml: List Oclick Oclick_elements Oclick_graph Oclick_lang Oclick_optim Oclick_packet Printf String
