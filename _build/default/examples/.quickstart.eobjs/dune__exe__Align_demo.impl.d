examples/align_demo.ml: List Oclick_elements Oclick_graph Oclick_lang Oclick_optim Printf
