(** The simulated evaluation testbed (paper §8.1).

    Assembles a router (the real element graph, instantiated in the real
    runtime with cycle-charging hooks), one simulated NIC per interface on
    shared PCI buses, and one host per link. Runs traffic for a measured
    window after a warmup (ARP resolves during warmup), and reports
    forwarding rate, per-packet CPU time by category (Fig. 8), packet
    outcomes (Fig. 11), and microarchitectural counters (§8.2). *)

type port_spec = {
  ps_device : string;
  ps_router_ip : Oclick_packet.Ipaddr.t;
  ps_router_eth : Oclick_packet.Ethaddr.t;
  ps_host_ip : Oclick_packet.Ipaddr.t;
  ps_host_eth : Oclick_packet.Ethaddr.t;
}

val standard_ports : int -> port_spec list
(** Interface [i] is [eth<i>], router 10.0.[i].1, host 10.0.[i].2 —
    matching [Oclick.Ip_router.standard_interfaces]. *)

type flow = { fl_src : int; fl_dst : int }
(** A traffic flow from the host on port [fl_src] to the host on port
    [fl_dst]. *)

val standard_flows : Platform.t -> flow list
(** P0-style: 4 source links feed 4 destination links; two-port
    platforms run one flow each way (§8.5). *)

type outcome_counts = {
  oc_sent : int;  (** UDP delivered to destination hosts *)
  oc_fifo_overflow : int;
  oc_missed_frame : int;
  oc_queue_drop : int;
  oc_element_fault : int;
      (** packets dropped because an element raised or was quarantined *)
  oc_other_drop : int;
}

type conservation = {
  cv_births : int;  (** host frames sent + in-router packet spawns *)
  cv_deliveries : int;  (** frames received by hosts, parseable or not *)
  cv_nic_drops : int;  (** FIFO overflows + missed frames *)
  cv_hook_drops : int;  (** drops accounted through [Hooks.on_drop] *)
  cv_residual : int;  (** still buffered in NICs / queues at run end *)
}
(** The packet-conservation ledger: [run] checks
    [cv_births = cv_deliveries + cv_nic_drops + cv_hook_drops +
     cv_residual] after the drain phase and returns [Error] on a leak. *)

type result = {
  r_offered_pps : float;  (** measured input rate *)
  r_forwarded_pps : float;
  r_outcomes : outcome_counts;  (** measurement window only *)
  r_receive_ns : float;  (** per forwarded packet, Fig. 8 *)
  r_forward_ns : float;
  r_transmit_ns : float;
  r_total_ns : float;
  r_model_ns : float;
      (** absolute modeled CPU ns accumulated from the warmup boundary
          to the end of the drain — the aggregate the per-element [obs]
          columns must sum to exactly *)
  r_instructions : float;  (** retired per forwarded packet, §8.2 *)
  r_cache_misses : float;  (** per forwarded packet, §8.2 *)
  r_btb_mispredicts : float;  (** per forwarded packet *)
  r_pci_utilization : float;  (** busiest bus, 0..1 *)
  r_cpu_utilization : float;
  r_code_footprint : int;  (** bytes of element code (i-cache model) *)
  r_drop_reasons : (string * int) list;
      (** window drops by reason, sorted by reason *)
  r_fault_counts : (string * int) list;
      (** faults the injector generated, by kind; [[]] without a plan *)
  r_element_faults : (string * int) list;
      (** exceptions caught at element boundaries, by element class *)
  r_warnings : string list;  (** quarantine / convergence warnings *)
  r_outcomes_total : outcome_counts;
      (** whole run including warmup and drain — the drain-complete
          totals differential tests compare *)
  r_drop_reasons_total : (string * int) list;
  r_conservation : conservation;
  r_route_tables : (string * (string * int) list) list;
      (** per routing-table element (graph order): its stats — [routes],
          [misses], and for the trie backend [trie_bytes] and
          [leaf_blocks] *)
}

val run :
  ?duration_ms:int ->
  ?warmup_ms:int ->
  ?drain_ms:int ->
  ?ports:port_spec list ->
  ?flows:flow list ->
  ?payload_len:int ->
  ?fault:Oclick_fault.Plan.t ->
  ?batch:int ->
  ?compile:bool ->
  ?fuse:bool ->
  ?obs:Oclick_obs.t ->
  ?domains:int ->
  ?ring_capacity:int ->
  ?partition_weights:int array ->
  ?workload:Host.workload ->
  platform:Platform.t ->
  graph:Oclick_graph.Router.t ->
  input_pps:int ->
  unit ->
  (result, string) Stdlib.result
(** [input_pps] is aggregate over all flows. [workload] (default
    [Host.Uniform]) selects the traffic shape every host generates —
    the adversarial generators ([Scan], [Arp_storm], [Burst]) drive the
    overload experiments. The driver is instantiated with the simulated
    clock, so age-bounded element state (ARP cache, rewriter flow
    tables) expires in simulated time. Defaults: 60 ms measured
    after 30 ms warmup, then a 10 ms drain with traffic stopped so
    in-flight packets reach a terminal outcome before the conservation
    check. [batch] is the transfer batch size handed to
    [Driver.instantiate] (default 1 = scalar push/pull throughout).
    [compile] runs the registered whole-graph datapath compiler over the
    instantiated router (see [Driver.instantiate]); the cost hooks see
    the identical per-hop event sequence, so attribution and ledgers are
    unchanged. [fuse] additionally runs the cross-element FDD fusion
    pass inside compilation (implies [compile]); ledgers are again
    identical by construction. [fault] installs a fault-injection plan: hosts mangle the
    traffic they generate (deterministically, per-host streams), NICs
    and PCI buses honour the plan's stall windows, and elements run
    under the plan's quarantine threshold.

    [obs] installs the per-element observability layer: counters and
    trace via wrapped hooks, and simulated-nanosecond cost attribution
    mirroring every aggregate charge (element transfers and work to the
    element whose code runs; NIC CPU work to the corresponding
    PollDevice/FromDevice/ToDevice element). The accumulator is reset at
    the start of the run and again at the warmup boundary, so its
    columns cover measurement plus drain — the same window as the
    aggregate [r_*_ns] accumulators — and never leak across consecutive
    runs reusing one accumulator.

    [domains] (default 1) simulates a multicore CPU: the graph is
    partitioned at Queue boundaries exactly as the real multi-domain
    runner partitions it ({!Oclick_parallel.Partition}), and each shard
    runs its own scheduler loop whose simulated clock advances only by
    the cycles that shard consumed — [domains] CPUs progressing
    concurrently in simulated time. [r_cpu_utilization] then reports the
    busiest simulated CPU. Outcome totals, drop reasons, and the
    conservation ledger are computed exactly as for one domain, so
    differential comparisons across domain counts are direct.
    [ring_capacity] and [partition_weights] forward to
    {!Oclick_parallel.Partition.compute}: the former sizes inserted cut
    Queues, the latter supplies measured per-element costs (e.g.
    {!Oclick_obs.cost_weights} from a single-domain profiling run of the
    same graph) so the shard balance follows observed cycles — the
    obs→placement feedback loop the tuner closes. *)

val mlffr :
  ?ports:port_spec list ->
  ?flows:flow list ->
  ?loss_tolerance:float ->
  ?domains:int ->
  platform:Platform.t ->
  graph:Oclick_graph.Router.t ->
  unit ->
  (int, string) Stdlib.result
(** Maximum loss-free forwarding rate, by binary search over input rates
    (default loss tolerance 0.2%). *)
