(* Combination elements (paper §6.2, Fig. 4/6).

   These fuse runs of general-purpose elements into one specialized
   element: fewer packet transfers and specialized code. Router designers
   are discouraged from using them directly — click-xform's patterns
   introduce them automatically (see lib/optim/patterns.ml). *)

open Prelude
module Ip = Headers.Ip

(* IPInputCombo(COLOR, BADADDRS) =
     Paint(COLOR) -> Strip(14) -> CheckIPHeader(BADADDRS) ->
     GetIPAddress(16).
   Output 0: valid IP packets; output 1 (optional): header rejects. *)
class ip_input_combo name =
  object (self)
    inherit E.base name
    val mutable color = 0
    val mutable bad_src : Ipaddr.t list = []
    val mutable drops = 0
    method class_name = "IPInputCombo"
    method! port_count = "1/1-2"
    method! processing = "h/h"

    method! configure config =
      match Args.split config with
      | color_s :: rest -> (
          match (Args.parse_int color_s, rest) with
          | Some c, [] when c >= 0 ->
              color <- c;
              Ok ()
          | Some c, [ addrs ] when c >= 0 -> (
              let parts =
                List.filter (( <> ) "") (String.split_on_char ' ' addrs)
              in
              let parsed = List.map Ipaddr.of_string parts in
              if List.exists Option.is_none parsed then
                Error "IPInputCombo: bad address list"
              else begin
                color <- c;
                bad_src <- List.filter_map Fun.id parsed;
                Ok ()
              end)
          | _ -> Error "IPInputCombo expects COLOR [, BADADDRS]")
      | [] -> Error "IPInputCombo expects COLOR [, BADADDRS]"

    method private header_ok p =
      Packet.length p >= Ip.min_header_length
      && Ip.version p = 4
      && Ip.header_length p >= Ip.min_header_length
      && Ip.header_length p <= Packet.length p
      && Ip.total_length p >= Ip.header_length p
      && Ip.total_length p <= Packet.length p
      && begin
           self#charge (Hooks.W_checksum (Ip.header_length p));
           Ip.checksum_valid p
         end
      && not (List.mem (Ip.src p) bad_src)

    method! push _ p =
      let anno = Packet.anno p in
      anno.Packet.paint <- color;
      if Packet.length p < 14 then self#drop ~reason:"no link header" p
      else begin
        Packet.pull p 14;
        if self#header_ok p then begin
          let excess = Packet.length p - Ip.total_length p in
          if excess > 0 then Packet.take p excess;
          anno.Packet.dst_ip <- Packet.get_u32 p 16;
          self#output 0 p
        end
        else begin
          drops <- drops + 1;
          if self#noutputs > 1 then self#output 1 p
          else self#drop ~reason:"bad IP header" p
        end
      end

    method! region_sem =
      (* The combo behaves as one guard: paint, pull the link header
         (hence the 14-byte shift for hoisted downstream tests), check,
         trim padding (hence the barrier), extract the address. Failures
         divert through output 1 / accounted drops, exactly as [push]. *)
      Some
        (Region.Guard
           {
             gd_shift = 14;
             gd_barrier = true;
             gd_run =
               (fun p ->
                 let anno = Packet.anno p in
                 anno.Packet.paint <- color;
                 if Packet.length p < 14 then begin
                   self#drop ~reason:"no link header" p;
                   false
                 end
                 else begin
                   Packet.pull p 14;
                   if self#header_ok p then begin
                     let excess = Packet.length p - Ip.total_length p in
                     if excess > 0 then Packet.take p excess;
                     anno.Packet.dst_ip <- Packet.get_u32 p 16;
                     true
                   end
                   else begin
                     drops <- drops + 1;
                     if self#noutputs > 1 then self#output 1 p
                     else self#drop ~reason:"bad IP header" p;
                     false
                   end
                 end);
           })

    method! stats = [ ("drops", drops) ]
  end

(* IPOutputCombo(COLOR, IP) =
     DropBroadcasts -> CheckPaint(COLOR) -> IPGWOptions(IP) ->
     FixIPSrc(IP) -> DecIPTTL.
   Outputs: 0 forward, 1 redirect clone, 2 bad options, 3 TTL expired. *)
class ip_output_combo name =
  object (self)
    inherit E.base name
    val mutable color = 0
    val mutable my_addr = 0
    val mutable drops = 0
    method class_name = "IPOutputCombo"
    method! port_count = "1/1-4"
    method! processing = "h/h"

    method! configure config =
      match Args.split config with
      | [ color_s; addr_s ] -> (
          match (Args.parse_int color_s, Ipaddr.of_string addr_s) with
          | Some c, Some a when c >= 0 ->
              color <- c;
              my_addr <- a;
              Ok ()
          | _ -> Error "IPOutputCombo expects COLOR, IP")
      | _ -> Error "IPOutputCombo expects COLOR, IP"

    method private options_ok p =
      let hl = Ip.header_length p in
      let rec scan off =
        if off >= hl then true
        else
          match Packet.get_u8 p off with
          | 0 -> true
          | 1 -> scan (off + 1)
          | 7 | 68 ->
              let optlen = if off + 1 < hl then Packet.get_u8 p (off + 1) else 0 in
              if optlen < 2 || off + optlen > hl then false
              else begin
                self#charge (Hooks.W_custom ("ip-option", optlen));
                scan (off + optlen)
              end
          | _ -> false
      in
      hl = Ip.min_header_length || scan Ip.min_header_length

    method private reject port reason p =
      drops <- drops + 1;
      if port < self#noutputs then self#output port p
      else self#drop ~reason p

    method! push _ p =
      let anno = Packet.anno p in
      match anno.Packet.link_type with
      | Packet.Broadcast | Packet.Multicast ->
          self#drop ~reason:"link-level broadcast" p
      | Packet.To_host | Packet.To_other ->
          if anno.Packet.paint = color && self#noutputs > 1 then begin
            let c = Packet.clone p in
            self#spawn c;
            self#output 1 c
          end;
          if not (self#options_ok p) then self#reject 2 "bad IP options" p
          else begin
            if anno.Packet.fix_ip_src then begin
              anno.Packet.fix_ip_src <- false;
              Ip.set_src p my_addr;
              self#charge (Hooks.W_checksum (Ip.header_length p));
              Ip.update_checksum p
            end;
            if Ip.ttl p <= 1 then self#reject 3 "TTL expired" p
            else begin
              Ip.decrement_ttl p;
              self#output 0 p
            end
          end

    method! region_sem =
      (* Barrier: the source rewrite and TTL decrement change header
         bytes, so no downstream tree test may be hoisted above this
         stage. Rejects divert through side outputs / accounted drops,
         exactly as [push]. *)
      Some
        (Region.Guard
           {
             gd_shift = 0;
             gd_barrier = true;
             gd_run =
               (fun p ->
                 let anno = Packet.anno p in
                 match anno.Packet.link_type with
                 | Packet.Broadcast | Packet.Multicast ->
                     self#drop ~reason:"link-level broadcast" p;
                     false
                 | Packet.To_host | Packet.To_other ->
                     if anno.Packet.paint = color && self#noutputs > 1 then begin
                       let c = Packet.clone p in
                       self#spawn c;
                       self#output 1 c
                     end;
                     if not (self#options_ok p) then begin
                       self#reject 2 "bad IP options" p;
                       false
                     end
                     else begin
                       if anno.Packet.fix_ip_src then begin
                         anno.Packet.fix_ip_src <- false;
                         Ip.set_src p my_addr;
                         self#charge (Hooks.W_checksum (Ip.header_length p));
                         Ip.update_checksum p
                       end;
                       if Ip.ttl p <= 1 then begin
                         self#reject 3 "TTL expired" p;
                         false
                       end
                       else begin
                         Ip.decrement_ttl p;
                         true
                       end
                     end);
           })

    method! stats = [ ("rejects", drops) ]
  end

let register () =
  def "IPInputCombo" ~ports:"1/1-2" ~processing:"h/h" (fun n ->
      (new ip_input_combo n :> E.t));
  def "IPOutputCombo" ~ports:"1/1-4" ~processing:"h/h" (fun n ->
      (new ip_output_combo n :> E.t))
