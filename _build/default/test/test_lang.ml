(* Tests for the Click configuration language: lexer, parser, printer,
   argument handling, compound-element flattening, archives. *)

module Ast = Oclick_lang.Ast
module Parser = Oclick_lang.Parser
module Printer = Oclick_lang.Printer
module Flatten = Oclick_lang.Flatten
module Args = Oclick_lang.Args
module Archive = Oclick_lang.Archive

let parse_ok src =
  match Parser.parse src with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse failed: %s" e

let parse_err src =
  match Parser.parse src with
  | Ok _ -> Alcotest.failf "expected parse error for %S" src
  | Error e -> e

let check = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* --- parsing ------------------------------------------------------------ *)

let test_declaration () =
  let t = parse_ok "q :: Queue(64);" in
  check "one element" 1 (List.length t.Ast.elements);
  let e = List.hd t.Ast.elements in
  check_str "name" "q" e.Ast.e_name;
  check_str "class" "Queue" (Ast.class_name e.Ast.e_class);
  check_str "config" "64" e.Ast.e_config

let test_multi_declaration () =
  let t = parse_ok "a, b, c :: Counter;" in
  check "three elements" 3 (List.length t.Ast.elements);
  check_bool "names" true
    (Ast.element_names t = [ "a"; "b"; "c" ])

let test_connection_ports () =
  let t = parse_ok "a :: Tee(2); b :: Counter; c :: Counter; a [1] -> b; a -> [0] c;" in
  match t.Ast.connections with
  | [ c1; c2 ] ->
      check "c1 from port" 1 c1.Ast.c_from_port;
      check_str "c1 to" "b" c1.Ast.c_to;
      check "c2 from port" 0 c2.Ast.c_from_port;
      check_str "c2 to" "c" c2.Ast.c_to
  | l -> Alcotest.failf "expected 2 connections, got %d" (List.length l)

let test_chain_with_inline () =
  let t = parse_ok "Idle -> Queue(8) -> Discard;" in
  check "three anonymous" 3 (List.length t.Ast.elements);
  check "two connections" 2 (List.length t.Ast.connections);
  check_bool "queue has config" true
    (List.exists
       (fun (e : Ast.element) ->
         Ast.class_name e.e_class = "Queue" && e.e_config = "8")
       t.Ast.elements)

let test_inline_declaration_in_chain () =
  let t = parse_ok "src :: Idle -> mid :: Counter -> Discard;" in
  check_bool "mid declared" true (Ast.find_element t "mid" <> None);
  check "connections" 2 (List.length t.Ast.connections)

let test_config_with_commas_and_parens () =
  let t = parse_ok {|c :: Classifier(12/0806 20/0001, 12/0800, -);|} in
  let e = Option.get (Ast.find_element t "c") in
  check "args" 3 (List.length (Args.split e.Ast.e_config))

let test_config_with_quotes () =
  let t = parse_ok {|p :: Print("hello, world (really)");|} in
  let e = Option.get (Ast.find_element t "p") in
  check_str "quoted config" {|"hello, world (really)"|} e.Ast.e_config

let test_comments () =
  let t =
    parse_ok
      "// line comment\n/* block\ncomment */ q :: Queue; # hash comment\n"
  in
  check "one element" 1 (List.length t.Ast.elements)

let test_elementclass_parsed () =
  let t =
    parse_ok
      "elementclass Pair { input -> Counter -> output; } p :: Pair;"
  in
  check "one class" 1 (List.length t.Ast.classes);
  check_bool "class name" true (List.mem_assoc "Pair" t.Ast.classes)

let test_requirements () =
  let t = parse_ok "require(fastclassifier);\nq :: Queue;" in
  check_bool "requirement" true (t.Ast.requirements = [ "fastclassifier" ])

let test_parse_errors () =
  let has_line e = String.length e > 0 && String.contains e ':' in
  check_bool "redeclaration" true (has_line (parse_err "a :: Queue; a :: Tee;"));
  check_bool "missing semicolon between stmts keeps going or errors" true
    (has_line (parse_err "a :: ;"));
  check_bool "unterminated config" true (has_line (parse_err "a :: Queue(64"));
  check_bool "dangling arrow" true (has_line (parse_err "a :: Queue; a ->"));
  check_bool "input outside compound" true
    (has_line (parse_err "input -> Discard;"));
  check_bool "bad port" true (has_line (parse_err "a :: Tee; a [x] -> a;"));
  check_bool "unterminated comment" true (has_line (parse_err "/* foo"))

let test_pseudo_only_in_compound () =
  let t = parse_ok "elementclass F { input -> output; } f :: F;" in
  check "no top-level elements besides f" 1 (List.length t.Ast.elements)

(* --- printer round trip --------------------------------------------------- *)

let roundtrip src =
  let t = parse_ok src in
  let printed = Printer.to_string t in
  let t2 = parse_ok printed in
  check_str "round trip is a fixpoint" printed (Printer.to_string t2)

let test_roundtrip_simple () = roundtrip "a :: Queue(64); Idle -> a -> Discard;"

let test_roundtrip_ip_router () =
  roundtrip (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 4))

let test_roundtrip_compound () =
  roundtrip
    "elementclass G { $a | input -> Strip($a) -> output; } g :: G(14); \
     Idle -> g -> Discard;"

let test_html () =
  let t = parse_ok "a :: Queue(64); Idle -> a -> Discard;" in
  let html = Printer.html_of_config t in
  check_bool "mentions element" true
    (String.length html > 0
    && (let re = "Queue" in
        let rec find i =
          i + String.length re <= String.length html
          && (String.sub html i (String.length re) = re || find (i + 1))
        in
        find 0))

(* --- argument handling ----------------------------------------------------- *)

let test_args_split () =
  Alcotest.(check (list string))
    "basic" [ "a"; "b"; "c" ]
    (Args.split "a, b, c");
  Alcotest.(check (list string)) "empty" [] (Args.split "   ");
  Alcotest.(check (list string))
    "nested parens" [ "f(1, 2)"; "g" ]
    (Args.split "f(1, 2), g");
  Alcotest.(check (list string))
    "quoted comma" [ {|"a, b"|}; "c" ]
    (Args.split {|"a, b", c|});
  Alcotest.(check (list string))
    "brackets" [ "x[1, 2]"; "y" ]
    (Args.split "x[1, 2], y");
  Alcotest.(check (list string))
    "trailing empty arg" [ "a"; "" ] (Args.split "a, ")

let test_args_unsplit () =
  check_str "inverse" "a, b" (Args.unsplit (Args.split "a,   b"))

let test_args_substitute () =
  let bindings = [ ("$ip", "10.0.0.1"); ("$n", "7") ] in
  check_str "plain" "10.0.0.1 x 7" (Args.substitute bindings "$ip x $n");
  check_str "braced" "10.0.0.17" (Args.substitute bindings "${ip}7");
  check_str "word boundary" "$ipx" (Args.substitute bindings "$ipx");
  check_str "unknown kept" "$zz" (Args.substitute bindings "$zz");
  check_str "dollar alone" "$" (Args.substitute bindings "$")

let test_args_keyword () =
  check_bool "keyword" true (Args.keyword "LIMIT 5" = Some ("LIMIT", "5"));
  check_bool "bare keyword" true (Args.keyword "ACTIVE" = Some ("ACTIVE", ""));
  check_bool "not keyword" true (Args.keyword "limit 5" = None);
  check_bool "number" true (Args.keyword "64" = None)

(* --- flattening -------------------------------------------------------------- *)

let flatten_ok src =
  match Flatten.flatten (parse_ok src) with
  | Ok t -> t
  | Error e -> Alcotest.failf "flatten failed: %s" e

let test_flatten_simple () =
  let t =
    flatten_ok
      "elementclass P { input -> c :: Counter -> output; } p :: P; Idle -> \
       p -> Discard;"
  in
  check_bool "no classes left" true (t.Ast.classes = []);
  check_bool "renamed member" true (Ast.find_element t "p/c" <> None);
  check "connections" 2 (List.length t.Ast.connections)

let test_flatten_params () =
  let t =
    flatten_ok
      "elementclass S { $n | input -> s :: Strip($n) -> output; } x :: \
       S(14); Idle -> x -> Discard;"
  in
  let e = Option.get (Ast.find_element t "x/s") in
  check_str "substituted" "14" e.Ast.e_config

let test_flatten_default_param () =
  let t =
    flatten_ok
      "elementclass S { $n | input -> s :: CheckIPHeader($n) -> output; } \
       x :: S; Idle -> x -> Discard;"
  in
  let e = Option.get (Ast.find_element t "x/s") in
  check_str "empty default" "" e.Ast.e_config

let test_flatten_nested () =
  let t =
    flatten_ok
      "elementclass A { input -> Counter -> output; } elementclass B { \
       input -> a :: A -> output; } b :: B; Idle -> b -> Discard;"
  in
  check_bool "deep rename" true
    (List.exists
       (fun (e : Ast.element) ->
         String.length e.e_name > 4 && String.sub e.e_name 0 4 = "b/a/")
       t.Ast.elements)

let test_flatten_multiport () =
  let t =
    flatten_ok
      "elementclass Two { input [0] -> t0 :: Counter -> [0] output; input \
       [1] -> t1 :: Counter -> [1] output; } w :: Two; i0 :: Idle; i1 :: \
       Idle; i0 -> w; i1 -> [1] w; w -> Discard; w [1] -> Discard;"
  in
  (* i0 -> w/t0, i1 -> w/t1 *)
  check_bool "port 0 splice" true
    (List.exists
       (fun (c : Ast.connection) -> c.c_from = "i0" && c.c_to = "w/t0")
       t.Ast.connections);
  check_bool "port 1 splice" true
    (List.exists
       (fun (c : Ast.connection) -> c.c_from = "i1" && c.c_to = "w/t1")
       t.Ast.connections)

let test_flatten_passthrough () =
  let t =
    flatten_ok
      "elementclass Wire { input -> output; } w :: Wire; a :: Idle; a -> w \
       -> Discard;"
  in
  check_bool "direct splice" true
    (List.exists
       (fun (c : Ast.connection) ->
         c.c_from = "a" && String.length c.c_to >= 7
         && String.sub c.c_to 0 7 = "Discard")
       t.Ast.connections)

let test_flatten_recursive_error () =
  match
    Flatten.flatten
      (parse_ok "elementclass R { input -> r :: R -> output; } x :: R; Idle -> x -> Discard;")
  with
  | Ok _ -> Alcotest.fail "recursive class must fail"
  | Error _ -> ()

let test_flatten_bad_port () =
  match
    Flatten.flatten
      (parse_ok
         "elementclass O { input -> output; } o :: O; Idle -> o; o -> \
          Discard; o [1] -> Discard;")
  with
  | Ok _ -> Alcotest.fail "unknown compound port must fail"
  | Error _ -> ()

let test_flatten_too_many_args () =
  match
    Flatten.flatten
      (parse_ok
         "elementclass S { $n | input -> Strip($n) -> output; } s :: S(1, \
          2); Idle -> s -> Discard;")
  with
  | Ok _ -> Alcotest.fail "too many arguments must fail"
  | Error _ -> ()

let test_flatten_anonymous_compound () =
  let t = flatten_ok "x :: { input -> Counter -> output }; Idle -> x -> Discard;" in
  check_bool "compound expanded" true
    (List.exists
       (fun (e : Ast.element) -> Ast.class_name e.e_class = "Counter")
       t.Ast.elements)

(* --- archives ------------------------------------------------------------------ *)

let test_archive_roundtrip () =
  let a =
    Archive.of_config "q :: Queue;"
    |> Archive.add ~name:"gen.ml" ~body:"let x = 1\nlet y = 2\n"
    |> Archive.add ~name:"notes" ~body:"--- file:tricky bytes:99\n"
  in
  let s = Archive.to_string a in
  check_bool "is archive" true (Archive.is_archive s);
  let b = Archive.parse_exn s in
  check_str "config" "q :: Queue;" (Archive.config b);
  check_str "member" "let x = 1\nlet y = 2\n" (Option.get (Archive.find b "gen.ml"));
  check_str "tricky member survives" "--- file:tricky bytes:99\n"
    (Option.get (Archive.find b "notes"))

let test_archive_replace () =
  let a = Archive.of_config "a;" in
  let a = Archive.with_config a "b :: Queue;" in
  check_str "replaced" "b :: Queue;" (Archive.config a);
  check "single member" 1 (List.length a)

let test_archive_errors () =
  check_bool "not archive" true (Result.is_error (Archive.parse "hello"));
  let truncated = Archive.magic ^ "\n--- file:x bytes:100\nshort\n" in
  check_bool "truncated member" true (Result.is_error (Archive.parse truncated))

let test_parse_file_archive () =
  let a = Archive.of_config "q :: Queue(9);" in
  let path = Filename.temp_file "oclick" ".click" in
  let oc = open_out path in
  output_string oc (Archive.to_string a);
  close_out oc;
  (match Parser.parse_file path with
  | Ok t -> check "element from archive config" 1 (List.length t.Ast.elements)
  | Error e -> Alcotest.failf "parse_file: %s" e);
  Sys.remove path

(* --- properties ------------------------------------------------------------------ *)

(* Random small configurations: declarations plus a chain. *)
let config_gen =
  QCheck.Gen.(
    let name i = Printf.sprintf "e%d" i in
    let cls = oneofl [ "Queue"; "Counter"; "Tee"; "Strip" ] in
    let decl i =
      map (fun c -> Printf.sprintf "%s :: %s(%d);" (name i) c i) cls
    in
    let* n = int_range 2 6 in
    let* decls = flatten_l (List.init n decl) in
    let conns =
      List.init (n - 1) (fun i ->
          Printf.sprintf "%s -> %s;" (name i) (name (i + 1)))
    in
    return (String.concat "\n" (decls @ conns)))

let prop_parse_print_roundtrip =
  QCheck.Test.make ~name:"parse/print round trip" ~count:100
    (QCheck.make config_gen)
    (fun src ->
      match Parser.parse src with
      | Error _ -> false
      | Ok t -> (
          let printed = Printer.to_string t in
          match Parser.parse printed with
          | Error _ -> false
          | Ok t2 -> Printer.to_string t2 = printed))

let prop_parser_total =
  (* The parser is total: random input yields Ok or Error, never an
     exception. *)
  QCheck.Test.make ~name:"parser never raises" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 80))
    (fun s ->
      match Parser.parse s with Ok _ | Error _ -> true)

let prop_parser_total_clicky =
  (* Same, over strings biased toward Click tokens. *)
  QCheck.Test.make ~name:"parser never raises (click-ish)" ~count:500
    (QCheck.make
       QCheck.Gen.(
         let tok =
           oneofl
             [ "a"; "b"; "::"; "->"; "["; "]"; "("; ")"; "{"; "}"; ";"; ",";
               "|"; "Queue"; "input"; "output"; "elementclass"; "$x"; "1";
               "//x\n"; "/*"; "*/" ]
         in
         map (String.concat " ") (list_size (int_range 0 25) tok)))
    (fun s ->
      match Parser.parse s with Ok _ | Error _ -> true)

let prop_flatten_idempotent =
  QCheck.Test.make ~name:"flatten is idempotent" ~count:100
    (QCheck.make config_gen)
    (fun src ->
      match Parser.parse src with
      | Error _ -> false
      | Ok t -> (
          match Flatten.flatten t with
          | Error _ -> false
          | Ok once -> (
              match Flatten.flatten once with
              | Error _ -> false
              | Ok twice -> Printer.to_string once = Printer.to_string twice)))

let test_dot_output () =
  let t = parse_ok "a :: Queue(64); Idle -> a -> Discard;" in
  let dot = Printer.dot_of_config t in
  check_bool "digraph" true
    (String.length dot > 8 && String.sub dot 0 8 = "digraph ");
  check_bool "has edge" true (String.contains dot '>')

let prop_split_unsplit =
  QCheck.Test.make ~name:"split(unsplit(split x)) = split x" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 40))
    (fun s ->
      (* avoid unbalanced quoting/parens in random strings *)
      QCheck.assume
        (not (String.exists (fun c -> c = '"' || c = '(' || c = ')' || c = '[' || c = ']' || c = '{' || c = '}') s));
      let args = Args.split s in
      Args.split (Args.unsplit args) = args)

let () =
  Alcotest.run "lang"
    [
      ( "parser",
        [
          Alcotest.test_case "declaration" `Quick test_declaration;
          Alcotest.test_case "multi declaration" `Quick test_multi_declaration;
          Alcotest.test_case "connection ports" `Quick test_connection_ports;
          Alcotest.test_case "inline chain" `Quick test_chain_with_inline;
          Alcotest.test_case "inline declaration" `Quick
            test_inline_declaration_in_chain;
          Alcotest.test_case "config commas/parens" `Quick
            test_config_with_commas_and_parens;
          Alcotest.test_case "config quotes" `Quick test_config_with_quotes;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "elementclass" `Quick test_elementclass_parsed;
          Alcotest.test_case "requirements" `Quick test_requirements;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pseudo elements" `Quick
            test_pseudo_only_in_compound;
        ] );
      ( "printer",
        [
          Alcotest.test_case "round trip simple" `Quick test_roundtrip_simple;
          Alcotest.test_case "round trip IP router" `Quick
            test_roundtrip_ip_router;
          Alcotest.test_case "round trip compound" `Quick
            test_roundtrip_compound;
          Alcotest.test_case "html" `Quick test_html;
          Alcotest.test_case "dot" `Quick test_dot_output;
        ] );
      ( "args",
        [
          Alcotest.test_case "split" `Quick test_args_split;
          Alcotest.test_case "unsplit" `Quick test_args_unsplit;
          Alcotest.test_case "substitute" `Quick test_args_substitute;
          Alcotest.test_case "keyword" `Quick test_args_keyword;
        ] );
      ( "flatten",
        [
          Alcotest.test_case "simple" `Quick test_flatten_simple;
          Alcotest.test_case "params" `Quick test_flatten_params;
          Alcotest.test_case "default param" `Quick test_flatten_default_param;
          Alcotest.test_case "nested" `Quick test_flatten_nested;
          Alcotest.test_case "multi port" `Quick test_flatten_multiport;
          Alcotest.test_case "passthrough" `Quick test_flatten_passthrough;
          Alcotest.test_case "recursive error" `Quick
            test_flatten_recursive_error;
          Alcotest.test_case "bad port" `Quick test_flatten_bad_port;
          Alcotest.test_case "too many args" `Quick test_flatten_too_many_args;
          Alcotest.test_case "anonymous compound" `Quick
            test_flatten_anonymous_compound;
        ] );
      ( "archive",
        [
          Alcotest.test_case "round trip" `Quick test_archive_roundtrip;
          Alcotest.test_case "replace" `Quick test_archive_replace;
          Alcotest.test_case "errors" `Quick test_archive_errors;
          Alcotest.test_case "parse_file" `Quick test_parse_file_archive;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_parse_print_roundtrip;
            prop_split_unsplit;
            prop_parser_total;
            prop_parser_total_clicky;
            prop_flatten_idempotent;
          ] );
    ]
