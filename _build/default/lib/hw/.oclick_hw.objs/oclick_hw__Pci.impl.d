lib/hw/pci.ml: Array Engine Queue
