bin/click_devirtualize.ml: Arg Cmdliner List Oclick_optim Printf Term Tool_common
