lib/runtime/driver.ml: Array Element Hashtbl Hooks List Netdevice Oclick_graph Option Printexc Printf Registry String
