(* The benchmark harness: regenerates every table and figure from the
   paper's evaluation (see DESIGN.md's per-experiment index).

   Run everything:        dune exec bench/main.exe
   Run one section:       dune exec bench/main.exe -- fig9 fig12
   List the sections:     dune exec bench/main.exe -- --list
   Machine-readable out:  dune exec bench/main.exe -- batch --json
                          (writes BENCH_<section>.json per supporting
                          section, in the current directory)
   Quick smoke run:       dune exec bench/main.exe -- batch --smoke *)

let sections =
  [
    ("dispatch", Figures.dispatch);
    ("firewall", Figures.firewall);
    ("fig8", Figures.fig8);
    ("fig9", Figures.fig9);
    ("fig10", Figures.fig10);
    ("fig11", Figures.fig11);
    ("fig12", Figures.fig12);
    ("fig13", Figures.fig13);
    ("xform-scale", Figures.xform_scale);
    ("lookup", Figures.lookup_scaling);
    ("ablation", Figures.devirtualize_ablation);
    ("micro", Micro.run);
    ("batch", Batch.run);
    ("compile", Compile.run);
    ("obs", Obs.run);
    ("parallel", Parallel.run);
    ("overload", Overload.run);
    ("lpm", Lpm.run);
    ("fdd", Fdd.run);
    ("zerocopy", Membench.run);
    ("tune", Tune.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (function
        | "--json" ->
            Common.json := true;
            false
        | "--smoke" ->
            Common.smoke := true;
            false
        | _ -> true)
      args
  in
  match args with
  | [ "--list" ] -> List.iter (fun (n, _) -> print_endline n) sections
  | [] ->
      print_endline
        "oclick benchmark harness: reproducing the evaluation of \"Programming \
         Language Optimizations for Modular Router Configurations\" (ASPLOS 2002)";
      List.iter (fun (_, f) -> f ()) sections
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n sections with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown section %S (try --list)\n" n;
              exit 1)
        names
