lib/elements/ip.ml: Args E Ethaddr Fun Headers Hooks Ipaddr List Option Packet Prelude Printf String
