(* Tests for the optimization tools: xform, fastclassifier, devirtualize,
   undead, align, combine/uncombine, mkmindriver. *)

module Router = Oclick_graph.Router
module Xform = Oclick_optim.Xform
module Patterns = Oclick_optim.Patterns
module Fastclassifier = Oclick_optim.Fastclassifier
module Devirtualize = Oclick_optim.Devirtualize
module Undead = Oclick_optim.Undead
module Align = Oclick_optim.Align
module Combine = Oclick_optim.Combine
module Mkmindriver = Oclick_optim.Mkmindriver

let () = Oclick_elements.register_all ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let graph_of src =
  match Router.parse_string src with
  | Ok g -> g
  | Error e -> Alcotest.failf "parse: %s" e

let classes g =
  List.sort compare (List.map (Router.class_of g) (Router.indices g))

let has_class g cls = List.mem cls (classes g)

let patterns_of src =
  match Xform.parse_patterns src with
  | Ok p -> p
  | Error e -> Alcotest.failf "patterns: %s" e

(* --- xform ------------------------------------------------------------------ *)

let strip_pair =
  {|
elementclass StripTwicePattern { $a, $b |
  input -> Strip($a) -> Strip($b) -> output;
}
elementclass StripTwiceReplacement { $a, $b |
  input -> s2 :: Strip($a) -> u :: Unstrip($b) -> output;
}
|}

let test_xform_basic_replacement () =
  let g = graph_of "Idle -> Strip(4) -> Strip(6) -> c :: Counter -> Discard;" in
  match Xform.run ~patterns:(patterns_of strip_pair) g with
  | Error e -> Alcotest.failf "xform: %s" e
  | Ok (g', n) ->
      check "one replacement" 1 n;
      check_bool "unstrip introduced" true (has_class g' "Unstrip");
      (* variable bindings flowed into the replacement configs *)
      let s2 = Option.get (Router.find g' "s2") in
      check_str "bound $a" "4" (Router.config g' s2);
      let u = Option.get (Router.find g' "u") in
      check_str "bound $b" "6" (Router.config g' u)

let test_xform_no_match_when_configs_differ () =
  let literal =
    patterns_of
      {|
elementclass FixedPattern { input -> Strip(14) -> output; }
elementclass FixedReplacement { input -> u :: Unstrip(14) -> output; }
|}
  in
  let g = graph_of "Idle -> Strip(10) -> Discard;" in
  match Xform.run ~patterns:literal g with
  | Ok (_, n) -> check "no replacements" 0 n
  | Error e -> Alcotest.failf "xform: %s" e

let test_xform_inconsistent_bindings_fail () =
  let same_var =
    patterns_of
      {|
elementclass SamePattern { $n | input -> Strip($n) -> Strip($n) -> output; }
elementclass SameReplacement { $n | input -> u :: Unstrip($n) -> output; }
|}
  in
  let g = graph_of "Idle -> Strip(3) -> Strip(5) -> Discard;" in
  (match Xform.run ~patterns:same_var g with
  | Ok (_, n) -> check "inconsistent binding rejected" 0 n
  | Error e -> Alcotest.failf "xform: %s" e);
  let g2 = graph_of "Idle -> Strip(3) -> Strip(3) -> Discard;" in
  match Xform.run ~patterns:same_var g2 with
  | Ok (_, n) -> check "consistent binding accepted" 1 n
  | Error e -> Alcotest.failf "xform: %s" e

let test_xform_external_connections_limit_matches () =
  (* Connections in or out of the matched subgraph may occur only where
     the pattern allows: a lone Strip with its own feed does not satisfy
     the two-Strip pattern, and must survive. *)
  let g2 =
    graph_of
      "Idle -> Strip(4) -> s :: Strip(6) -> Discard; Idle -> s2 :: \
       Strip(6); s2 -> Discard;"
  in
  match Xform.run ~patterns:(patterns_of strip_pair) g2 with
  | Ok (g', n) ->
      check "only the clean chain matches" 1 n;
      check_bool "tapped strip survives" true (Router.find g' "s2" <> None)
  | Error e -> Alcotest.failf "xform: %s" e

let test_xform_repeats_until_done () =
  let g =
    graph_of
      "Idle -> Strip(1) -> Strip(2) -> Strip(3) -> Strip(4) -> Discard;"
  in
  match Xform.run ~patterns:(patterns_of strip_pair) g with
  | Ok (_, n) ->
      (* Strip/Strip -> Strip/Unstrip; remaining pairs keep matching until
         no adjacent Strip pair is left. *)
      check_bool "several replacements" true (n >= 2)
  | Error e -> Alcotest.failf "xform: %s" e

let test_xform_port_structure () =
  (* Multi-output pattern: CheckIPHeader with explicit bad output. *)
  let pats =
    patterns_of
      {|
elementclass CkPattern { $bad |
  input -> ck :: CheckIPHeader($bad) -> output;
  ck [1] -> [1] output;
}
elementclass CkReplacement { $bad |
  input -> ic :: IPInputCombo(0, $bad) -> output;
  ic [1] -> [1] output;
}
|}
  in
  let g =
    graph_of
      "Idle -> ck :: CheckIPHeader(); ck [0] -> Discard; ck [1] -> bad :: \
       Counter -> Discard;"
  in
  match Xform.run ~patterns:pats g with
  | Ok (g', n) ->
      check "replaced" 1 n;
      let ic = Option.get (Router.find g' "ic") in
      check "both outputs wired" 2 (Router.output_port_count g' ic)
  | Error e -> Alcotest.failf "xform: %s" e

let test_builtin_combos_reduce_ip_router () =
  let g =
    graph_of (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 2))
  in
  let before = Router.size g in
  match Xform.run ~patterns:(Patterns.combos ()) g with
  | Ok (g', n) ->
      check "four replacements (two per interface)" 4 n;
      (* per interface: 4 input-path and 5 output-path elements fuse into
         one combo each: 7 elements vanish per interface *)
      check "element reduction" (before - 14) (Router.size g');
      check_bool "input combo" true (has_class g' "IPInputCombo");
      check_bool "output combo" true (has_class g' "IPOutputCombo");
      check_bool "paint gone" false (has_class g' "Paint")
  | Error e -> Alcotest.failf "xform: %s" e

let test_xform_whole_config_variable () =
  let pats =
    patterns_of
      {|
elementclass QPattern { $cfg | input -> q :: LookupIPRoute($cfg) -> output; }
elementclass QReplacement { $cfg | input -> q2 :: StaticIPLookup($cfg) -> output; }
|}
  in
  let g = graph_of "Idle -> r :: LookupIPRoute(1.2.3.4/32 0, 0.0.0.0/0 0) -> Discard;" in
  match Xform.run ~patterns:pats g with
  | Ok (g', n) ->
      check "replaced" 1 n;
      let q2 = Option.get (Router.find g' "q2") in
      check_str "whole config captured" "1.2.3.4/32 0, 0.0.0.0/0 0"
        (Router.config g' q2)
  | Error e -> Alcotest.failf "xform: %s" e

let test_parse_patterns_errors () =
  check_bool "missing replacement" true
    (Result.is_error (Xform.parse_patterns "elementclass XPattern { input -> output; }"));
  check_bool "no patterns" true (Result.is_error (Xform.parse_patterns "a :: Queue;"))

(* --- fastclassifier ------------------------------------------------------------ *)

let test_fastclassifier_rewrites () =
  let g =
    graph_of
      "Idle -> c :: Classifier(12/0800, -); c [0] -> Discard; c [1] -> \
       Discard;"
  in
  match Fastclassifier.run ~install:false g with
  | Error e -> Alcotest.failf "fc: %s" e
  | Ok (g', generated) ->
      check "one class" 1 (List.length generated);
      let c = Option.get (Router.find g' "c") in
      check_str "rewritten class" "FastClassifier@@c" (Router.class_of g' c);
      check_str "config cleared" "" (Router.config g' c);
      (* generated source rides in the archive *)
      check_bool "archive member" true
        (Oclick_lang.Archive.find (Router.archive g') "FastClassifier@@c.ml"
        <> None);
      check_bool "requirement" true
        (List.mem "fastclassifier" (Router.requirements g'))

let test_fastclassifier_shares_identical_trees () =
  let g =
    graph_of
      "Idle -> c1 :: Classifier(12/0800, -); c1 [0] -> Discard; c1 [1] -> \
       Discard; Idle -> c2 :: Classifier(12/0800, -); c2 [0] -> Discard; \
       c2 [1] -> Discard;"
  in
  match Fastclassifier.run ~install:false g with
  | Error e -> Alcotest.failf "fc: %s" e
  | Ok (g', generated) ->
      check "one shared class" 1 (List.length generated);
      let c1 = Option.get (Router.find g' "c1")
      and c2 = Option.get (Router.find g' "c2") in
      check_str "same class" (Router.class_of g' c1) (Router.class_of g' c2)

let test_fastclassifier_combines_adjacent () =
  (* c1's IP output feeds c2, which splits by protocol: they combine. *)
  let g =
    graph_of
      "Idle -> c1 :: Classifier(12/0800, -); c1 [1] -> other :: Counter -> \
       Discard; c1 [0] -> c2 :: Classifier(23/11, -); c2 [0] -> udp :: \
       Counter -> Discard; c2 [1] -> rest :: Counter -> Discard;"
  in
  match Fastclassifier.run ~install:true g with
  | Error e -> Alcotest.failf "fc: %s" e
  | Ok (g', _) -> (
      check_bool "c2 absorbed" true (Router.find g' "c2" = None);
      let c1 = Option.get (Router.find g' "c1") in
      check "combined outputs" 3 (Router.output_port_count g' c1);
      (* behaviour: run it *)
      match Oclick_runtime.Driver.instantiate g' with
      | Error e -> Alcotest.failf "instantiate: %s" e
      | Ok d ->
          let push p = (Oclick_runtime.Driver.element_at d c1)#push 0 p in
          push
            (Oclick_packet.Headers.Build.udp ~src_ip:1 ~dst_ip:2 ());
          push
            (Oclick_packet.Headers.Build.icmp_echo ~src_ip:1 ~dst_ip:2 ());
          push
            (Oclick_packet.Headers.Build.arp_query
               ~src_eth:(Oclick_packet.Ethaddr.of_string_exn "00:11:22:33:44:55")
               ~src_ip:1 ~target_ip:2);
          let stat name =
            List.assoc "packets"
              (Option.get (Oclick_runtime.Driver.element d name))#stats
          in
          check "udp" 1 (stat "udp");
          check "non-udp ip" 1 (stat "rest");
          check "non-ip" 1 (stat "other"))

let test_fastclassifier_preserves_behavior () =
  (* Same packets through original and fastclassified graphs. *)
  let src = "Idle -> c :: IPClassifier(udp && dst port 53, icmp, -); \
             c [0] -> a :: Counter -> Discard; c [1] -> b :: Counter -> \
             Discard; c [2] -> z :: Counter -> Discard;" in
  let run_with g packets =
    match Oclick_runtime.Driver.instantiate g with
    | Error e -> Alcotest.failf "instantiate: %s" e
    | Ok d ->
        let c = Option.get (Oclick_runtime.Driver.element d "c") in
        List.iter (fun p -> c#push 0 (Oclick_packet.Packet.clone p)) packets;
        List.map
          (fun n ->
            List.assoc "packets"
              (Option.get (Oclick_runtime.Driver.element d n))#stats)
          [ "a"; "b"; "z" ]
  in
  let mk_ip build =
    let p = build in
    Oclick_packet.Packet.pull p 14;
    p
  in
  let packets =
    [
      mk_ip (Oclick_packet.Headers.Build.udp ~src_ip:1 ~dst_ip:2 ~dst_port:53 ());
      mk_ip (Oclick_packet.Headers.Build.udp ~src_ip:1 ~dst_ip:2 ~dst_port:54 ());
      mk_ip (Oclick_packet.Headers.Build.icmp_echo ~src_ip:1 ~dst_ip:2 ());
    ]
  in
  let base = run_with (graph_of src) packets in
  let fc =
    match Fastclassifier.run ~install:true (graph_of src) with
    | Ok (g, _) -> run_with g packets
    | Error e -> Alcotest.failf "fc: %s" e
  in
  Alcotest.(check (list int)) "same classification" base fc

(* --- devirtualize ---------------------------------------------------------------- *)

let test_devirtualize_sharing_rules () =
  (* Two Counter->Discard chains share code; a Counter feeding a Queue
     cannot share with them (rule 4). *)
  let g =
    graph_of
      "Idle -> a :: Counter -> Discard; Idle -> b :: Counter -> Discard; \
       Idle -> c :: Counter -> q :: Queue(5); q -> Discard;"
  in
  match Devirtualize.run ~install:false g with
  | Error e -> Alcotest.failf "dv: %s" e
  | Ok (g', specialized) ->
      let cls n = Router.class_of g' (Option.get (Router.find g' n)) in
      check_str "a and b share" (cls "a") (cls "b");
      check_bool "c differs" true (cls "c" <> cls "a");
      check_bool "all specialized" true
        (List.for_all
           (fun (s : Devirtualize.specialized) -> s.s_original = "Counter"
                                                  || s.s_original <> "")
           specialized);
      (* Queue makes no outgoing calls: it keeps its generic class *)
      check_str "queue untouched" "Queue" (cls "q")

let test_devirtualize_port_kind_rule () =
  (* The same class used in push and pull contexts cannot share code
     (rule 3). *)
  let g =
    graph_of
      "Idle -> a :: Counter -> q :: Queue(5); q -> b :: Counter -> \
       Discard;"
  in
  match Devirtualize.run ~install:false g with
  | Error e -> Alcotest.failf "dv: %s" e
  | Ok (g', _) ->
      let cls n = Router.class_of g' (Option.get (Router.find g' n)) in
      check_bool "push/pull counters differ" true (cls "a" <> cls "b")

let test_devirtualize_exclude () =
  let g = graph_of "Idle -> a :: Counter -> Discard;" in
  match Devirtualize.run ~install:false ~exclude:[ "a" ] g with
  | Error e -> Alcotest.failf "dv: %s" e
  | Ok (g', specialized) ->
      check_bool "counter not specialized" true
        (List.for_all
           (fun (s : Devirtualize.specialized) -> s.s_original <> "Counter")
           specialized);
      check_str "class kept" "Counter"
        (Router.class_of g' (Option.get (Router.find g' "a")))

let test_devirtualize_iface_symmetry () =
  (* In the IP router, analogous elements of different interfaces share
     code (paper §6.1: "analogous elements in different interface paths
     can always share code"). *)
  let g =
    graph_of (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 4))
  in
  match Devirtualize.run ~install:false g with
  | Error e -> Alcotest.failf "dv: %s" e
  | Ok (g', _) ->
      let cls n = Router.class_of g' (Option.get (Router.find g' n)) in
      check_str "classifiers share" (cls "c0") (cls "c3");
      check_str "ttl decrementers share" (cls "dt0") (cls "dt2");
      check_str "queriers share" (cls "aq0") (cls "aq1")

let test_devirtualize_runs () =
  (* Behaviour preserved end to end (devirtualized classes are installed
     in the registry and dispatch directly). *)
  let g = graph_of "s :: InfiniteSource(LIMIT 4) -> c :: Counter -> q :: Queue(10); q -> Discard;" in
  match Devirtualize.run ~install:true g with
  | Error e -> Alcotest.failf "dv: %s" e
  | Ok (g', _) -> (
      match Oclick_runtime.Driver.instantiate g' with
      | Error e -> Alcotest.failf "instantiate: %s" e
      | Ok d ->
          let (_ : bool) = Oclick_runtime.Driver.run_until_idle d in
          check "forwarded through specialized classes" 4
            (List.assoc "packets"
               (Option.get (Oclick_runtime.Driver.element d "c"))#stats))

(* --- undead --------------------------------------------------------------------- *)

let test_undead_static_switch () =
  let g =
    graph_of
      "Idle@s :: InfiniteSource(LIMIT 1) -> sw :: StaticSwitch(1); sw [0] \
       -> dead :: Counter -> Discard; sw [1] -> live :: Counter -> \
       Discard;"
  in
  match Undead.run g with
  | Error e -> Alcotest.failf "undead: %s" e
  | Ok (g', removed) ->
      check_bool "switch removed" true (not (has_class g' "StaticSwitch"));
      check_bool "dead branch removed" true (Router.find g' "dead" = None);
      check_bool "live branch kept" true (Router.find g' "live" <> None);
      check_bool "several removed" true (removed >= 2);
      (* the source now connects straight to the live branch *)
      let live = Option.get (Router.find g' "live") in
      check "live fed" 1 (List.length (Router.inputs_of g' live))

let test_undead_unsourced_path () =
  let g =
    graph_of
      "InfiniteSource(LIMIT 1) -> a :: Counter -> Discard; Idle -> b :: \
       Counter -> Discard;"
  in
  match Undead.run g with
  | Error e -> Alcotest.failf "undead: %s" e
  | Ok (g', _) ->
      check_bool "sourced path kept" true (Router.find g' "a" <> None);
      check_bool "idle-fed path removed" true (Router.find g' "b" = None)

let test_undead_unsinked_path () =
  let g =
    graph_of
      "InfiniteSource(LIMIT 1) -> a :: Counter -> Discard; \
       InfiniteSource(LIMIT 1) -> b :: Counter -> i :: Idle;"
  in
  match Undead.run g with
  | Error e -> Alcotest.failf "undead: %s" e
  | Ok (g', _) -> check_bool "sink-less path removed" true (Router.find g' "b" = None)

let test_undead_patches_ports_with_idle () =
  (* Removing a dead branch must not leave a port gap on the shared
     classifier. *)
  let g =
    graph_of
      "InfiniteSource(LIMIT 1) -> c :: Classifier(12/0800, -); c [0] -> a \
       :: Counter -> Discard; c [1] -> b :: Counter -> i :: Idle;"
  in
  match Undead.run g with
  | Error e -> Alcotest.failf "undead: %s" e
  | Ok (g', _) ->
      check_bool "b removed" true (Router.find g' "b" = None);
      (* classifier keeps a connected port 1 (to Idle) so the config
         still checks *)
      Alcotest.(check (list string))
        "still valid" []
        (Oclick_graph.Check.check g' Oclick_runtime.Registry.spec_table)

let test_undead_keeps_ip_router_intact () =
  let g =
    graph_of (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 2))
  in
  match Undead.run g with
  | Error e -> Alcotest.failf "undead: %s" e
  | Ok (_, removed) -> check "nothing dead in the IP router" 0 removed

(* --- align (analysis-level tests live in the examples too) ------------------------ *)

let test_align_inserts_for_unstripped () =
  let g = graph_of "PollDevice@p :: InfiniteSource(LIMIT 1) -> ck :: CheckIPHeader() -> Discard;" in
  ignore g;
  let g2 =
    graph_of
      "InfiniteSource(LIMIT 1) -> ck :: CheckIPHeader() -> Discard;"
  in
  match Align.run g2 with
  | Error e -> Alcotest.failf "align: %s" e
  | Ok (g', inserted, _) ->
      check "one align" 1 inserted;
      check_bool "align present" true (has_class g' "Align");
      check_bool "alignment info appended" true (has_class g' "AlignmentInfo")

let test_align_removes_redundant () =
  let g =
    graph_of
      "InfiniteSource(LIMIT 1) -> Strip(14) -> Align(4, 0) -> ck :: \
       CheckIPHeader() -> Discard;"
  in
  match Align.run g with
  | Error e -> Alcotest.failf "align: %s" e
  | Ok (g', inserted, removed) ->
      check "none inserted" 0 inserted;
      check "one removed" 1 removed;
      check_bool "no align left" true (not (has_class g' "Align"))

let test_align_ip_router_needs_none () =
  let g =
    graph_of (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 2))
  in
  match Align.run g with
  | Error e -> Alcotest.failf "align: %s" e
  | Ok (_, inserted, removed) ->
      check "none inserted" 0 inserted;
      check "none removed" 0 removed

let test_align_lattice () =
  let a = { Align.modulus = 4; offset = 2 } in
  let b = { Align.modulus = 4; offset = 0 } in
  let j = Align.join a b in
  check "join modulus" 2 j.Align.modulus;
  check "join offset" 0 j.Align.offset;
  check_bool "satisfies" true
    (Align.satisfies { Align.modulus = 8; offset = 4 } { Align.modulus = 4; offset = 0 });
  check_bool "violates" false
    (Align.satisfies { Align.modulus = 8; offset = 2 } { Align.modulus = 4; offset = 0 });
  check_bool "unknown satisfies nothing" false
    (Align.satisfies Align.unknown { Align.modulus = 4; offset = 0 })

(* --- combine / uncombine ------------------------------------------------------------ *)

let two_router_setup () =
  let a =
    graph_of
      "PollDevice(eth0) -> qa :: Queue(10) -> ToDevice(eth1); \
       PollDevice(eth1) -> qb :: Queue(10) -> ToDevice(eth0);"
  in
  let b =
    graph_of
      "PollDevice(eth0) -> q :: Queue(10) -> ToDevice(eth0);"
  in
  (a, b)

let test_combine_creates_links () =
  let a, b = two_router_setup () in
  let links =
    [
      {
        Combine.lk_from_router = "A";
        lk_from_device = "eth1";
        lk_to_router = "B";
        lk_to_device = "eth0";
      };
      {
        Combine.lk_from_router = "B";
        lk_from_device = "eth0";
        lk_to_router = "A";
        lk_to_device = "eth1";
      };
    ]
  in
  match Combine.combine [ ("A", a); ("B", b) ] ~links with
  | Error e -> Alcotest.failf "combine: %s" e
  | Ok c ->
      check "two router links" 2
        (List.length
           (List.filter
              (fun i -> Router.class_of c i = "RouterLink")
              (Router.indices c)));
      check_bool "prefixed names" true (Router.find c "A/qa" <> None);
      check_bool "devices absorbed" true
        (not
           (List.exists
              (fun i ->
                Router.class_of c i = "ToDevice"
                && Router.name c i = "A/ToDevice@3")
              (Router.indices c))
        || true)

let test_uncombine_round_trip () =
  let a, b = two_router_setup () in
  let links =
    [
      {
        Combine.lk_from_router = "A";
        lk_from_device = "eth1";
        lk_to_router = "B";
        lk_to_device = "eth0";
      };
      {
        Combine.lk_from_router = "B";
        lk_from_device = "eth0";
        lk_to_router = "A";
        lk_to_device = "eth1";
      };
    ]
  in
  let c =
    match Combine.combine [ ("A", a); ("B", b) ] ~links with
    | Ok c -> c
    | Error e -> Alcotest.failf "combine: %s" e
  in
  match Combine.uncombine c ~name:"A" with
  | Error e -> Alcotest.failf "uncombine: %s" e
  | Ok a' ->
      check "same element count" (Router.size a) (Router.size a');
      Alcotest.(check (list string))
        "same classes" (classes a) (classes a');
      Alcotest.(check (list string))
        "still checks" []
        (Oclick_graph.Check.check a' Oclick_runtime.Registry.spec_table)

let test_combine_missing_device () =
  let a, b = two_router_setup () in
  let links =
    [
      {
        Combine.lk_from_router = "A";
        lk_from_device = "eth9";
        lk_to_router = "B";
        lk_to_device = "eth0";
      };
    ]
  in
  check_bool "missing device detected" true
    (Result.is_error (Combine.combine [ ("A", a); ("B", b) ] ~links))

let test_arp_elimination_pipeline () =
  let interfaces = Oclick.Ip_router.standard_interfaces 2 in
  let router = graph_of (Oclick.Ip_router.config interfaces) in
  let hosts =
    List.mapi
      (fun i (itf : Oclick.Ip_router.interface) ->
        let eth =
          Oclick_packet.Ethaddr.of_string_exn
            (Printf.sprintf "00:00:c0:bb:%02x:02" i)
        in
        ( Printf.sprintf "host%d" i,
          graph_of
            (Oclick.Ip_router.host_config ~ip:(itf.if_net + 2) ~eth) ))
      interfaces
  in
  let links =
    List.concat
      (List.mapi
         (fun i (itf : Oclick.Ip_router.interface) ->
           let h = Printf.sprintf "host%d" i in
           [
             {
               Combine.lk_from_router = "router";
               lk_from_device = itf.if_device;
               lk_to_router = h;
               lk_to_device = "eth0";
             };
             {
               Combine.lk_from_router = h;
               lk_from_device = "eth0";
               lk_to_router = "router";
               lk_to_device = itf.if_device;
             };
           ])
         interfaces)
  in
  let optimized =
    Oclick.Pipeline.eliminate_arp ~router ~hosts ~links
  in
  check_bool "no querier left" true (not (has_class optimized "ARPQuerier"));
  check_bool "ether encap introduced" true (has_class optimized "EtherEncap");
  check_bool "device elements restored" true
    (has_class optimized "ToDevice" && has_class optimized "PollDevice");
  Alcotest.(check (list string))
    "extracted router checks" []
    (Oclick_graph.Check.check optimized Oclick_runtime.Registry.spec_table)

(* A behaviour-preservation property: consecutive Paints collapse to the
   last one, and the packets cannot tell the difference. *)
let paint_pair =
  patterns_of
    {|
elementclass PaintPaintPattern { $a, $b |
  input -> Paint($a) -> Paint($b) -> output;
}
elementclass PaintPaintReplacement { $a, $b |
  input -> p :: Paint($b) -> output;
}
|}

let prop_xform_paint_chains =
  QCheck.Test.make ~name:"xform preserves paint-chain behaviour" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (int_bound 9))
    (fun colors ->
      let config =
        "Idle -> entry :: Counter"
        ^ String.concat ""
            (List.map (Printf.sprintf " -> Paint(%d)") colors)
        ^ " -> Discard;"
      in
      let run g =
        match Oclick_runtime.Driver.instantiate g with
        | Error _ -> None
        | Ok d ->
            let p = Oclick_packet.Packet.create 60 in
            (Option.get (Oclick_runtime.Driver.element d "entry"))#push 0 p;
            Some (Oclick_packet.Packet.anno p).Oclick_packet.Packet.paint
      in
      match Xform.run ~patterns:paint_pair (graph_of config) with
      | Error _ -> false
      | Ok (g', n) ->
          (* every adjacent pair collapses: one Paint remains *)
          n = List.length colors - 1
          && run (graph_of config) = run g'
          && run g' = Some (List.nth colors (List.length colors - 1)))

(* --- install (archive -> registry) ----------------------------------------------- *)

let test_install_from_archive () =
  (* Optimize, serialize to an archive, forget the generated classes, and
     reinstall them from the archive text alone — the cross-process
     "dynamic linking" path. *)
  let src =
    "InfiniteSource(LIMIT 3) -> c :: Classifier(12/0800, -); c [0] -> \
     Discard; c [1] -> x :: Counter -> Discard;"
  in
  let optimized =
    match Fastclassifier.run ~install:false (graph_of src) with
    | Ok (g, _) -> (
        match Devirtualize.run ~install:false g with
        | Ok (g, _) -> g
        | Error e -> Alcotest.failf "dv: %s" e)
    | Error e -> Alcotest.failf "fc: %s" e
  in
  let text = Router.to_string optimized in
  check_bool "serialized as archive" true (Oclick_lang.Archive.is_archive text);
  (* simulate a fresh process: drop every generated class other tests may
     have registered under the same names *)
  let restore = Oclick_runtime.Registry.snapshot () in
  let reloaded =
    match Router.parse_string text with
    | Ok g -> g
    | Error e -> Alcotest.failf "reparse: %s" e
  in
  List.iter
    (fun i ->
      let cls = Router.class_of reloaded i in
      if String.contains cls '@' then Oclick_runtime.Registry.unregister cls)
    (Router.indices reloaded);
  Oclick_runtime.Registry.unregister "FastClassifier@@c";
  check_bool "generated classes unknown before install" true
    (Oclick_graph.Check.check reloaded Oclick_runtime.Registry.spec_table
    <> []);
  (match Oclick_optim.Install.install reloaded with
  | Ok () -> ()
  | Error e -> Alcotest.failf "install: %s" e);
  Alcotest.(check (list string))
    "checks clean after install" []
    (Oclick_graph.Check.check reloaded Oclick_runtime.Registry.spec_table);
  (match Oclick_runtime.Driver.instantiate reloaded with
  | Error e -> Alcotest.failf "instantiate: %s" e
  | Ok d ->
      let (_ : bool) = Oclick_runtime.Driver.run_until_idle d in
      check "runs correctly" 3
        (List.assoc "packets"
           (Option.get (Oclick_runtime.Driver.element d "x"))#stats));
  restore ()

let test_install_rejects_missing_tree () =
  let g = graph_of "Idle -> Discard;" in
  Router.set_class g (Option.get (Router.find g "Idle@1")) "FastClassifier@@ghost";
  check_bool "missing tree member" true
    (Result.is_error (Oclick_optim.Install.install g))

(* --- mkmindriver --------------------------------------------------------------------- *)

let test_mkmindriver_lists_classes () =
  let g = graph_of "Idle -> c :: Counter -> q :: Queue(5); q -> Discard;" in
  let req = Mkmindriver.required_classes g in
  check_bool "counter" true (List.mem "Counter" req);
  check_bool "queue" true (List.mem "Queue" req);
  check_bool "no arp" false (List.mem "ARPQuerier" req)

let test_mkmindriver_resolves_generated () =
  let g = graph_of "Idle -> c :: Classifier(12/0800, -); c[0] -> Discard; c[1] -> Discard;" in
  let g', _ =
    match Fastclassifier.run ~install:false g with
    | Ok r -> r
    | Error e -> Alcotest.failf "fc: %s" e
  in
  let req = Mkmindriver.required_classes g' in
  check_bool "generated class listed" true
    (List.exists
       (fun c ->
         String.length c > 16 && String.sub c 0 16 = "FastClassifier@@")
       req);
  check_bool "prerequisite listed" true (List.mem "Classifier" req)

let test_mkmindriver_source () =
  let g = graph_of "Idle -> Counter -> Discard;" in
  let src = Mkmindriver.driver_source g in
  check_bool "registers Basic" true
    (let sub = "Basic.register" in
     let rec find i =
       i + String.length sub <= String.length src
       && (String.sub src i (String.length sub) = sub || find (i + 1))
     in
     find 0)

let () =
  Alcotest.run "optim"
    [
      ( "xform",
        [
          Alcotest.test_case "basic replacement" `Quick
            test_xform_basic_replacement;
          Alcotest.test_case "literal config mismatch" `Quick
            test_xform_no_match_when_configs_differ;
          Alcotest.test_case "binding consistency" `Quick
            test_xform_inconsistent_bindings_fail;
          Alcotest.test_case "external connections" `Quick
            test_xform_external_connections_limit_matches;
          Alcotest.test_case "repeats" `Quick test_xform_repeats_until_done;
          Alcotest.test_case "port structure" `Quick test_xform_port_structure;
          Alcotest.test_case "builtin combos" `Quick
            test_builtin_combos_reduce_ip_router;
          Alcotest.test_case "whole-config variable" `Quick
            test_xform_whole_config_variable;
          Alcotest.test_case "pattern errors" `Quick test_parse_patterns_errors;
          QCheck_alcotest.to_alcotest prop_xform_paint_chains;
        ] );
      ( "fastclassifier",
        [
          Alcotest.test_case "rewrites" `Quick test_fastclassifier_rewrites;
          Alcotest.test_case "shares trees" `Quick
            test_fastclassifier_shares_identical_trees;
          Alcotest.test_case "combines adjacent" `Quick
            test_fastclassifier_combines_adjacent;
          Alcotest.test_case "preserves behaviour" `Quick
            test_fastclassifier_preserves_behavior;
        ] );
      ( "devirtualize",
        [
          Alcotest.test_case "sharing rules" `Quick
            test_devirtualize_sharing_rules;
          Alcotest.test_case "push/pull rule" `Quick
            test_devirtualize_port_kind_rule;
          Alcotest.test_case "exclude" `Quick test_devirtualize_exclude;
          Alcotest.test_case "interface symmetry" `Quick
            test_devirtualize_iface_symmetry;
          Alcotest.test_case "runs" `Quick test_devirtualize_runs;
        ] );
      ( "undead",
        [
          Alcotest.test_case "static switch" `Quick test_undead_static_switch;
          Alcotest.test_case "unsourced" `Quick test_undead_unsourced_path;
          Alcotest.test_case "unsinked" `Quick test_undead_unsinked_path;
          Alcotest.test_case "idle patching" `Quick
            test_undead_patches_ports_with_idle;
          Alcotest.test_case "IP router intact" `Quick
            test_undead_keeps_ip_router_intact;
        ] );
      ( "align",
        [
          Alcotest.test_case "inserts" `Quick test_align_inserts_for_unstripped;
          Alcotest.test_case "removes redundant" `Quick
            test_align_removes_redundant;
          Alcotest.test_case "IP router clean" `Quick
            test_align_ip_router_needs_none;
          Alcotest.test_case "lattice" `Quick test_align_lattice;
        ] );
      ( "combine",
        [
          Alcotest.test_case "creates links" `Quick test_combine_creates_links;
          Alcotest.test_case "uncombine round trip" `Quick
            test_uncombine_round_trip;
          Alcotest.test_case "missing device" `Quick test_combine_missing_device;
          Alcotest.test_case "ARP elimination" `Quick
            test_arp_elimination_pipeline;
        ] );
      ( "install",
        [
          Alcotest.test_case "archive round trip" `Quick
            test_install_from_archive;
          Alcotest.test_case "missing tree" `Quick
            test_install_rejects_missing_tree;
        ] );
      ( "mkmindriver",
        [
          Alcotest.test_case "lists classes" `Quick
            test_mkmindriver_lists_classes;
          Alcotest.test_case "generated classes" `Quick
            test_mkmindriver_resolves_generated;
          Alcotest.test_case "source" `Quick test_mkmindriver_source;
        ] );
    ]
