module Router = Oclick_graph.Router
module Args = Oclick_lang.Args

type alignment = { modulus : int; offset : int }

let unknown = { modulus = 1; offset = 0 }
let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let normalize a =
  if a.modulus <= 1 then unknown
  else { a with offset = ((a.offset mod a.modulus) + a.modulus) mod a.modulus }

let join a b =
  let a = normalize a and b = normalize b in
  if a = b then a
  else begin
    let g = gcd (gcd a.modulus b.modulus) (abs (a.offset - b.offset)) in
    if g <= 1 then unknown else normalize { modulus = g; offset = a.offset }
  end

let satisfies have want =
  want.modulus = 1
  || (have.modulus mod want.modulus = 0
     && (have.offset - want.offset) mod want.modulus = 0)

let source_alignment = { modulus = 4; offset = 2 }

(* --- per-class behaviour (built into the tool, as the paper admits) --- *)

type requirement = No_req | Want of alignment | Want_known of int

let requirement_of_class cls =
  match cls with
  | "CheckIPHeader" | "GetIPAddress" | "IPGWOptions" | "FixIPSrc" | "DecIPTTL"
  | "IPFragmenter" | "ICMPError" | "IPFilter" | "IPClassifier"
  | "IPOutputCombo" | "LookupIPRoute" | "LinearIPLookup" ->
      Want { modulus = 4; offset = 0 }
  | "IPInputCombo" -> Want { modulus = 4; offset = 2 }
  | "Classifier" -> Want_known 4
  | _ -> No_req

let requirement_satisfied have = function
  | No_req -> true
  | Want w -> satisfies have w
  | Want_known m -> have.modulus mod m = 0

let alignment_of_requirement = function
  | No_req -> None
  | Want w -> Some w
  | Want_known m -> Some { modulus = m; offset = 0 }

let ip_aligned = { modulus = 4; offset = 0 }

(* Elements that create packets emit this alignment regardless of input.
   Devices emit link-layer frames at (4,2) so the IP header lands
   word-aligned after Strip(14); ICMPError manufactures bare IP packets,
   already word-aligned. *)
let emits_of_class cls =
  match cls with
  | "PollDevice" | "FromDevice" | "InfiniteSource" | "UDPSource" ->
      Some source_alignment
  | "ICMPError" -> Some ip_aligned
  | _ -> None

let first_int config =
  match Args.split config with
  | a :: _ -> Args.parse_int a
  | [] -> None

let transform cls config input =
  match cls with
  | "Strip" -> (
      match first_int config with
      | Some n -> normalize { input with offset = input.offset + n }
      | None -> input)
  | "Unstrip" -> (
      match first_int config with
      | Some n -> normalize { input with offset = input.offset - n }
      | None -> input)
  | "EtherEncap" | "ARPQuerier" ->
      normalize { input with offset = input.offset - 14 }
  | "IPInputCombo" -> normalize { input with offset = input.offset + 14 }
  | "Align" -> (
      match Args.split config with
      | [ m; o ] -> (
          match (Args.parse_int m, Args.parse_int o) with
          | Some m, Some o when m > 0 -> normalize { modulus = m; offset = o }
          | _ -> input)
      | _ -> input)
  | "IPFragmenter" ->
      (* Fragments are freshly allocated word-aligned; pass-through
         packets keep their alignment. *)
      join input ip_aligned
  | _ -> input

(* --- the data-flow analysis ------------------------------------------- *)

(* None = bottom: no packet can arrive. *)
let analyze_opt router =
  let max_idx = List.fold_left max 0 (Router.indices router) in
  let input_al : alignment option array = Array.make (max_idx + 1) None in
  let output_al : alignment option array = Array.make (max_idx + 1) None in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 100 do
    changed := false;
    incr rounds;
    List.iter
      (fun i ->
        let cls = Router.class_of router i in
        let from_input =
          match input_al.(i) with
          | None -> None
          | Some a -> Some (transform cls (Router.config router i) a)
        in
        let out =
          match (from_input, emits_of_class cls) with
          | None, e -> e
          | f, None -> f
          | Some f, Some e -> Some (join f e)
        in
        if out <> output_al.(i) then begin
          output_al.(i) <- out;
          changed := true
        end;
        (* Propagate to successors' inputs. *)
        match out with
        | None -> ()
        | Some a ->
            List.iter
              (fun (_, j, _) ->
                let updated =
                  match input_al.(j) with None -> a | Some b -> join a b
                in
                if Some updated <> input_al.(j) then begin
                  input_al.(j) <- Some updated;
                  changed := true
                end)
              (Router.outputs_of router i))
      (Router.indices router)
  done;
  input_al

let analyze router =
  let input_al = analyze_opt router in
  List.filter_map
    (fun i ->
      match input_al.(i) with Some a -> Some (i, a) | None -> None)
    (Router.indices router)

(* --- the tool ----------------------------------------------------------- *)

let splice_out router i =
  let ins = Router.inputs_of router i and outs = Router.outputs_of router i in
  List.iter
    (fun (_, src, sport) ->
      List.iter
        (fun (_, dst, dport) ->
          Router.add_hookup router
            {
              Router.from_idx = src;
              from_port = sport;
              to_idx = dst;
              to_port = dport;
            })
        outs)
    ins;
  Router.remove_element router i

let run source =
  let router = Router.copy source in
  (* Drop any previous AlignmentInfo; we append a fresh one. *)
  List.iter
    (fun i ->
      if String.equal (Router.class_of router i) "AlignmentInfo" then
        Router.remove_element router i)
    (Router.indices router);
  (* 1. Remove redundant existing Aligns. *)
  let input_al = analyze_opt router in
  let removed = ref 0 in
  List.iter
    (fun i ->
      if String.equal (Router.class_of router i) "Align" then begin
        match (input_al.(i), Args.split (Router.config router i)) with
        | Some have, [ m; o ] -> (
            match (Args.parse_int m, Args.parse_int o) with
            | Some m, Some o
              when m > 0 && satisfies have { modulus = m; offset = o } ->
                splice_out router i;
                incr removed
            | _ -> ())
        | _ -> ()
      end)
    (Router.indices router);
  (* 2. Insert Aligns where requirements are not met. *)
  let input_al = analyze_opt router in
  let inserted = ref 0 in
  List.iter
    (fun i ->
      let req = requirement_of_class (Router.class_of router i) in
      match (input_al.(i), alignment_of_requirement req) with
      | Some have, Some want when not (requirement_satisfied have req) ->
          List.iter
            (fun (port, src, sport) ->
              let a =
                Router.add_element router
                  ~name:(Router.fresh_name router "Align@align")
                  ~cls:"Align"
                  ~config:(Printf.sprintf "%d, %d" want.modulus want.offset)
              in
              Router.remove_hookup router
                {
                  Router.from_idx = src;
                  from_port = sport;
                  to_idx = i;
                  to_port = port;
                };
              Router.add_hookup router
                { Router.from_idx = src; from_port = sport; to_idx = a; to_port = 0 };
              Router.add_hookup router
                { Router.from_idx = a; from_port = 0; to_idx = i; to_port = port };
              incr inserted)
            (Router.inputs_of router i)
      | _ -> ())
    (Router.indices router);
  (* 3. Record the final analysis in an AlignmentInfo element. *)
  let final = analyze router in
  let config =
    String.concat ", "
      (List.map
         (fun (i, a) ->
           Printf.sprintf "%s %d %d" (Router.name router i) a.modulus a.offset)
         final)
  in
  ignore
    (Router.add_element router
       ~name:(Router.fresh_name router "AlignmentInfo@align")
       ~cls:"AlignmentInfo" ~config);
  Ok (router, !inserted, !removed)
