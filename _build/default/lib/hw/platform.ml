type nic_kind = Tulip_100 | Pro1000

type t = {
  p_name : string;
  p_cpu_mhz : int;
  p_pci_mhz : int;
  p_pci_bits : int;
  p_pci_buses : int;
  p_nic : nic_kind;
  p_nports : int;
  p_link_mbps : int;
  p_cpu_scale : float;
}

let p0 =
  {
    p_name = "P0";
    p_cpu_mhz = 700;
    p_pci_mhz = 33;
    p_pci_bits = 32;
    p_pci_buses = 2;
    p_nic = Tulip_100;
    p_nports = 8;
    p_link_mbps = 100;
    p_cpu_scale = 1.0;
  }

let p1 =
  {
    p_name = "P1";
    p_cpu_mhz = 800;
    p_pci_mhz = 33;
    p_pci_bits = 32;
    p_pci_buses = 1;
    p_nic = Pro1000;
    p_nports = 2;
    p_link_mbps = 1000;
    p_cpu_scale = 1.0;
  }

let p2 = { p1 with p_name = "P2"; p_pci_mhz = 66; p_pci_bits = 64 }

let p3 =
  {
    p2 with
    p_name = "P3";
    p_cpu_mhz = 1600;
    (* The Athlon MP retires the same work in fewer effective cycles than
       a P-III at equal clock (wider core); the paper observes P3 ~2x P2
       on Base with 2x the clock, so scale stays 1. *)
    p_cpu_scale = 1.0;
  }

let all = [ p0; p1; p2; p3 ]

let ns_of_cycles p cycles =
  int_of_float
    (float_of_int cycles *. p.p_cpu_scale *. 1000.0 /. float_of_int p.p_cpu_mhz)

let pci_bytes_per_sec p = p.p_pci_mhz * 1_000_000 * (p.p_pci_bits / 8)

let wire_ns_per_frame p ~frame_bytes =
  (* Frame + 4-byte CRC, padded to Ethernet's 64-byte minimum, plus the
     8-byte preamble and 12-byte inter-frame gap: the paper's 64-byte test
     packets fit 148,800 to the second on 100 Mbit links (§8.1). *)
  let framed = max (frame_bytes + 4) 64 in
  let bits = (framed + 8 + 12) * 8 in
  bits * 1000 / p.p_link_mbps

let max_host_rate_pps p =
  match p.p_nic with Tulip_100 -> 147_900 | Pro1000 -> 1_000_000
