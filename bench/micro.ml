(* Real wall-clock microbenchmarks (Bechamel): the classification and
   dispatch effects the paper measures, observed natively in OCaml rather
   than through the cycle model. *)

open Bechamel
open Toolkit
module Tree = Oclick_classifier.Tree
module Compile = Oclick_classifier.Compile
module Optimize = Oclick_classifier.Optimize
module Packet = Oclick_packet.Packet

let firewall_tree () =
  match Oclick_classifier.Filter.ipfilter_tree Figures.firewall_rules with
  | Ok t -> Optimize.optimize t
  | Error e -> failwith e

let arp_tree () =
  match
    Oclick_classifier.Pattern.tree_of_config
      "12/0806 20/0001, 12/0806 20/0002, 12/0800, -"
  with
  | Ok t -> Optimize.optimize t
  | Error e -> failwith e

let tests () =
  let fw = firewall_tree () in
  let dns5 = Figures.dns5_packet () in
  let fw_compiled = Compile.compile_packet fw in
  let arp = arp_tree () in
  let udp = Oclick_packet.Headers.Build.udp ~src_ip:1 ~dst_ip:2 () in
  let arp_compiled = Compile.compile_packet arp in
  (* Dispatch: a push through the element framework's port indirection
     (the "virtual call") vs a pre-resolved closure (devirtualized). The
     hooked variant installs a live on_transfer callback — the lean
     variants above it show what hoisting the hook field reads out of
     the transfer path buys when hooks are null. *)
  Oclick_elements.register_all ();
  Oclick_compile.register ();
  let make_driver ?hooks ?(compile = false) () =
    match
      Oclick_runtime.Driver.of_string ?hooks ~compile
        "Idle -> c :: Counter -> c2 :: Counter -> Discard;"
    with
    | Ok d -> d
    | Error e -> failwith e
  in
  let driver = make_driver () in
  let c = Option.get (Oclick_runtime.Driver.element driver "c") in
  let c2 = Option.get (Oclick_runtime.Driver.element driver "c2") in
  let direct = fun p -> c2#push 0 p in
  let transfers = ref 0 in
  let hooked_hooks =
    {
      Oclick_runtime.Hooks.null with
      Oclick_runtime.Hooks.on_transfer = (fun _ _ -> incr transfers);
    }
  in
  let hooked = make_driver ~hooks:hooked_hooks () in
  let hc = Option.get (Oclick_runtime.Driver.element hooked "c") in
  let fused = make_driver ~compile:true () in
  let fc = Option.get (Oclick_runtime.Driver.element fused "c") in
  let small = Packet.create 60 in
  [
    Test.make ~name:"classifier/interp/firewall-DNS5"
      (Staged.stage (fun () -> Tree.classify fw dns5));
    Test.make ~name:"classifier/compiled/firewall-DNS5"
      (Staged.stage (fun () -> fw_compiled dns5));
    Test.make ~name:"classifier/interp/arp-classifier"
      (Staged.stage (fun () -> Tree.classify arp udp));
    Test.make ~name:"classifier/compiled/arp-classifier"
      (Staged.stage (fun () -> arp_compiled udp));
    Test.make ~name:"dispatch/port-indirection"
      (Staged.stage (fun () -> c#output 0 small));
    Test.make ~name:"dispatch/port-indirection-hooked"
      (Staged.stage (fun () -> hc#output 0 small));
    Test.make ~name:"dispatch/compiled-fused"
      (Staged.stage (fun () -> fc#output 0 small));
    Test.make ~name:"dispatch/direct-closure"
      (Staged.stage (fun () -> direct small));
    Test.make ~name:"tools/parse+flatten IP router"
      (Staged.stage
         (let cfg =
            Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 8)
          in
          fun () -> Oclick_graph.Router.parse_string cfg));
  ]

let run () =
  Common.section "Microbenchmarks (real time, Bechamel)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"oclick" ~fmt:"%s %s" (tests ()))
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> Printf.printf "%-45s %10.1f ns/run\n" name est
      | _ -> Printf.printf "%-45s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()
