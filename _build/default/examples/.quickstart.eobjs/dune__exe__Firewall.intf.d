examples/firewall.mli:
