lib/runtime/element.mli: Hooks Netdevice Oclick_graph Oclick_packet
