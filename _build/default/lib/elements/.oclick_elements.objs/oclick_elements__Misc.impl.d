lib/elements/misc.ml: Args E Hooks Packet Prelude
