(** Execute a partitioned router across real OCaml domains.

    One domain per shard: shard 0 runs on the calling domain, shards
    1..N-1 on spawned domains. Every element is touched by exactly one
    domain — the partition guarantees cross-shard traffic only crosses at
    cut Queues, whose storage is switched to a lock-free SPSC ring
    ({!Oclick_runtime.Spsc}) with the push half (and its drop accounting)
    executing on the producing domain and the pull half on the consuming
    one.

    Observability stays per-domain: [hooks_for shard] supplies the hook
    record for every element of that shard (a cut Queue reports through
    its {e producer} shard's hooks, since that is where its counters
    mutate), so each domain writes only its own ledger; merge them after
    the run ({!Oclick_obs.merge_into}). Packet pools are likewise
    per-domain ({!Oclick_packet.Packet.Pool} is single-domain-owned).

    Ordering guarantee: packets that traverse the same cut ring stay in
    order (SPSC is FIFO), so per-flow order is preserved; packets of
    different flows on different shards may interleave differently than
    a single-domain run. Outcome totals, drop reasons, and conservation
    ledgers are identical at loss-free rates. *)

type t

val create :
  ?hooks_for:(int -> Oclick_runtime.Hooks.t) ->
  ?devices:Oclick_runtime.Netdevice.t list ->
  ?batch:int ->
  ?pool:bool ->
  ?pool_capacity:int ->
  ?pool_buf_size:int ->
  ?pool_slab:bool ->
  ?compile:bool ->
  ?fuse:bool ->
  ?ring_capacity:int ->
  ?weights:int array ->
  ?clock:(unit -> int) ->
  domains:int ->
  Oclick_graph.Router.t ->
  (t, string) result
(** Partition, instantiate, and prepare the graph for [domains] domains.

    [domains = 1] degenerates to a plain {!Oclick_runtime.Driver}
    instantiation (same hooks, pool, batch, and compile plumbing), so
    results are byte-identical to the unsharded driver.

    For [domains > 1]: the transformed graph is instantiated, every
    element gets its shard's hooks and pool, cut Queues are switched to
    ring mode, and — last, so compiled closures capture the final hooks —
    the whole-graph compiler runs if [compile] is set. [fuse]
    additionally runs the cross-element FDD fusion pass inside each
    shard's compilation (see [Oclick_fdd]; implies [compile]). [pool]
    (default false) gives each domain a private recycling pool of
    [pool_capacity] packets backed by an off-heap buffer arena of
    [pool_buf_size]-byte buffers (see {!Oclick_packet.Packet.Pool});
    [pool_slab:false] keeps the pools on the heap-[Bytes]
    representation. Packets crossing cut rings carry their off-heap
    payload with them — the handoff moves descriptors only.

    [weights] forwards measured per-element costs to
    {!Partition.compute}, so the LPT balance places shards by observed
    cycles instead of element counts (see [oclick-run
    --profile-partition]). *)

type report = {
  rp_converged : bool;
      (** clean quiesce: no abort, no stalled domain *)
  rp_stalled : int list;
      (** domains the watchdog marked stalled (no heartbeat) *)
  rp_leaked : int list;
      (** stalled domains that never returned from their wedged call —
          their domains are leaked (joining would hang) and their
          inbound rings could not be drained *)
  rp_drained : int;
      (** packets drained from stalled shards' inbound rings into
          accounted drops (reason ["stalled domain drained"]) *)
  rp_pressure : int array;
      (** per-domain count of backpressure activations (outbound cut
          ring pressure forced the shard's batch down to 1) *)
}

val run_until_idle_report : ?max_rounds:int -> ?watchdog_ms:int -> t -> report
(** Run every shard's task schedule until the whole router quiesces:
    each domain rotates over its own tasks ({!Oclick_runtime.Driver.run_task_array});
    a domain that stays idle long enough votes quiet, and when all
    domains are quiet and every cut ring is empty the run stops.

    [max_rounds] (default 1_000_000) bounds the number of {e working}
    rounds per domain; exhausting it — or stalling with packets parked in
    a ring nobody drains — aborts the run with a warning through shard
    0's hooks. The stranded-ring abort is wall-clock gated to twice the
    watchdog deadline: a wedged domain looks exactly like stranded ring
    traffic to its peers, and the watchdog must get to diagnose (and
    quarantine) it before the abort fires. Assumes monotone sources (once a task goes idle with
    empty inputs it stays idle), which holds for every source element in
    the tree.

    Overload protection, for [domains > 1]:

    {ul
    {- {b Watchdog}: every domain heartbeats once per scheduler
       iteration; the calling thread supervises. A domain whose
       heartbeat sits still for [watchdog_ms] (default 1000) of wall
       time is marked stalled: the healthy domains stop waiting for it,
       its inbound cut rings are drained to accounted drops after the
       run (reason ["stalled domain drained"]), and the run reports
       degraded ([rp_stalled]) instead of hanging. A stalled domain
       whose wedged element call eventually returns exits cleanly and is
       joined; one that never returns is leaked ([rp_leaked]) and its
       rings are left untouched.}
    {- {b Backpressure}: each domain samples its outbound cut rings;
       sustained occupancy above 7/8 of capacity shrinks the shard's
       effective batch to 1 and yields until the consumer drains below
       half — the receive-livelock rule: stop amplifying work that will
       only become tail drops ([rp_pressure]).}}

    May be called again after it returns; domains are respawned per
    call. *)

val run_until_idle : ?max_rounds:int -> ?watchdog_ms:int -> t -> bool
(** [run_until_idle t = (run_until_idle_report t).rp_converged]. *)

val driver : t -> Oclick_runtime.Driver.t
(** The underlying single instantiation (element lookup, stats, faults).
    Only safe to inspect while no run is in progress. *)

val partition : t -> Partition.t
val domains : t -> int

val pool_stats : t -> Oclick_packet.Packet.Pool.stats array
(** Per-domain pool statistics; empty if [pool] was not requested. *)
