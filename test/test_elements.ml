(* Per-element behaviour tests, driven through small configurations in the
   real runtime. *)

module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr
module Driver = Oclick_runtime.Driver
module Netdevice = Oclick_runtime.Netdevice

let () = Oclick_elements.register_all ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Build a driver for a test configuration. Tests push packets straight
   into named elements, so any element whose required input ports are not
   connected gets an [Idle] feed — the test jig standing in for the rest
   of a router. *)
let driver ?(devices = []) config =
  let graph =
    match Oclick_graph.Router.parse_string config with
    | Ok g -> g
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let module R = Oclick_graph.Router in
  List.iter
    (fun i ->
      if R.input_port_count graph i = 0 then begin
        match Oclick_runtime.Registry.spec (R.class_of graph i) with
        | Some spec -> (
            match Oclick_graph.Spec.parse_port_counts spec.Oclick_graph.Spec.s_ports with
            | Some (ins, _) when ins.Oclick_graph.Spec.lo >= 1 ->
                let idle =
                  R.add_element graph
                    ~name:(R.fresh_name graph "Idle@jig")
                    ~cls:"Idle" ~config:""
                in
                R.add_hookup graph
                  { R.from_idx = idle; from_port = 0; to_idx = i; to_port = 0 }
            | _ -> ())
        | None -> ()
      end)
    (R.indices graph);
  match Driver.instantiate ~devices graph with
  | Ok d -> d
  | Error e -> Alcotest.failf "instantiate: %s" e

let push_into d name p =
  match Driver.element d name with
  | Some e -> e#push 0 p
  | None -> Alcotest.failf "no element %s" name

let stat d name key =
  match Driver.element d name with
  | Some e -> (
      match List.assoc_opt key e#stats with
      | Some v -> v
      | None -> Alcotest.failf "element %s has no stat %s" name key)
  | None -> Alcotest.failf "no element %s" name

let udp ?(ttl = 64) ?(dst = "10.0.1.2") () =
  Headers.Build.udp ~src_ip:(Ipaddr.of_string_exn "10.0.0.2")
    ~dst_ip:(Ipaddr.of_string_exn dst) ~ttl ()

let bare_ip ?ttl ?dst () =
  let p = udp ?ttl ?dst () in
  Packet.pull p 14;
  p

(* --- basic elements ------------------------------------------------------- *)

let test_counter () =
  let d = driver "c :: Counter -> sink :: Counter -> Discard;" in
  push_into d "c" (udp ());
  push_into d "c" (udp ());
  check "packets" 2 (stat d "c" "packets");
  check "bytes" 112 (stat d "c" "bytes");
  check "passed through" 2 (stat d "sink" "packets")

let test_tee () =
  let d =
    driver
      "t :: Tee(3); t [0] -> c0 :: Counter -> Discard; t [1] -> c1 :: \
       Counter -> Discard; t [2] -> c2 :: Counter -> Discard;"
  in
  push_into d "t" (udp ());
  check "out0" 1 (stat d "c0" "packets");
  check "out1" 1 (stat d "c1" "packets");
  check "out2" 1 (stat d "c2" "packets")

let test_static_switch () =
  let d =
    driver
      "s :: StaticSwitch(1); s [0] -> c0 :: Counter -> Discard; s [1] -> c1 \
       :: Counter -> Discard;"
  in
  push_into d "s" (udp ());
  check "dead branch" 0 (stat d "c0" "packets");
  check "live branch" 1 (stat d "c1" "packets")

let test_paint_switch () =
  let d =
    driver
      "p :: Paint(1) -> s :: PaintSwitch; s [0] -> c0 :: Counter -> \
       Discard; s [1] -> c1 :: Counter -> Discard;"
  in
  push_into d "p" (udp ());
  check "painted to 1" 1 (stat d "c1" "packets");
  check "not 0" 0 (stat d "c0" "packets")

let test_queue_capacity_and_drops () =
  let d = driver "q :: Queue(2); src :: Idle -> q -> Discard;" in
  push_into d "q" (udp ());
  push_into d "q" (udp ());
  push_into d "q" (udp ());
  check "length capped" 2 (stat d "q" "length");
  check "drop counted" 1 (stat d "q" "drops");
  check "highwater" 2 (stat d "q" "highwater");
  (* draining: the pull side *)
  let q = Option.get (Driver.element d "q") in
  check_bool "pull yields" true (q#pull 0 <> None);
  check "length after pull" 1 (stat d "q" "length")

let test_queue_fifo_order () =
  let d = driver "q :: Queue(10); Idle -> q -> Discard;" in
  let p1 = udp () and p2 = udp () in
  Packet.set_u8 p1 0 1;
  Packet.set_u8 p2 0 2;
  push_into d "q" p1;
  push_into d "q" p2;
  let q = Option.get (Driver.element d "q") in
  check "first out" 1 (Packet.get_u8 (Option.get (q#pull 0)) 0);
  check "second out" 2 (Packet.get_u8 (Option.get (q#pull 0)) 0)

let test_red_drops_when_full () =
  let d =
    driver
      "r :: RED(1, 3, 1.0) -> q :: Queue(100); Idle -> r; q -> Discard;"
  in
  for _ = 1 to 50 do
    push_into d "r" (udp ())
  done;
  check_bool "some RED drops" true (stat d "r" "drops" > 0);
  check_bool "queue saw packets" true (stat d "q" "length" > 0)

let test_red_requires_queue () =
  match Driver.of_string "r :: RED(1, 2, 0.5); Idle -> r -> Discard;" with
  | Ok _ -> Alcotest.fail "RED without a Queue must fail to initialize"
  | Error e ->
      check_bool "error mentions queue" true
        (String.length e > 0)

(* --- IP path elements -------------------------------------------------------- *)

let test_strip_and_check () =
  let d =
    driver
      "s :: Strip(14) -> ck :: CheckIPHeader() -> c :: Counter -> Discard;"
  in
  push_into d "s" (udp ());
  check "valid forwarded" 1 (stat d "c" "packets");
  (* a corrupted checksum is dropped *)
  let bad = udp () in
  Packet.set_u8 bad 22 0x77;
  push_into d "s" bad;
  check "bad dropped" 1 (stat d "c" "packets");
  check "drop counted" 1 (stat d "ck" "drops")

let test_check_ip_header_bad_output () =
  let d =
    driver
      "ck :: CheckIPHeader(); ck [0] -> good :: Counter -> Discard; ck [1] \
       -> bad :: Counter -> Discard;"
  in
  push_into d "ck" (bare_ip ());
  let short = Packet.of_string "tiny" in
  push_into d "ck" short;
  check "good" 1 (stat d "good" "packets");
  check "bad to port 1" 1 (stat d "bad" "packets")

let test_check_ip_header_bad_src () =
  let d =
    driver
      "ck :: CheckIPHeader(10.0.0.2 1.1.1.1) -> c :: Counter -> Discard;"
  in
  push_into d "ck" (bare_ip ()) (* src 10.0.0.2 is on the bad list *);
  check "bad source dropped" 0 (stat d "c" "packets")

let test_check_ip_header_trims_padding () =
  let d = driver "ck :: CheckIPHeader() -> c :: Counter -> Discard;" in
  let p = bare_ip () in
  Packet.put p 6 (* simulated link padding *);
  push_into d "ck" p;
  check "trimmed to IP length" 42 (Packet.length p)

let test_get_ip_address () =
  let d = driver "g :: GetIPAddress(16) -> c :: Counter -> Discard;" in
  let p = bare_ip ~dst:"1.2.3.4" () in
  push_into d "g" p;
  check "dst annotation" 0x01020304 (Packet.anno p).Packet.dst_ip

let test_dec_ip_ttl () =
  let d =
    driver
      "t :: DecIPTTL; t [0] -> c :: Counter -> Discard; t [1] -> x :: \
       Counter -> Discard;"
  in
  let p = bare_ip ~ttl:64 () in
  push_into d "t" p;
  check "decremented" 63 (Headers.Ip.ttl p);
  check_bool "checksum ok" true (Headers.Ip.checksum_valid p);
  push_into d "t" (bare_ip ~ttl:1 ());
  check "expired to port 1" 1 (stat d "x" "packets");
  check "normal to port 0" 1 (stat d "c" "packets")

let test_drop_broadcasts () =
  let d = driver "b :: DropBroadcasts -> c :: Counter -> Discard;" in
  let p = bare_ip () in
  (Packet.anno p).Packet.link_type <- Packet.Broadcast;
  push_into d "b" p;
  check "broadcast dropped" 0 (stat d "c" "packets");
  let q = bare_ip () in
  push_into d "b" q;
  check "unicast passes" 1 (stat d "c" "packets");
  check "drop stat" 1 (stat d "b" "drops")

let test_check_paint_tee () =
  let d =
    driver
      "p :: Paint(3) -> cp :: CheckPaint(3); cp [0] -> c :: Counter -> \
       Discard; cp [1] -> r :: Counter -> Discard;"
  in
  push_into d "p" (bare_ip ());
  check "original forwarded" 1 (stat d "c" "packets");
  check "clone to redirect path" 1 (stat d "r" "packets");
  (* a different paint does not tee *)
  let d2 =
    driver
      "p :: Paint(1) -> cp :: CheckPaint(3); cp [0] -> c :: Counter -> \
       Discard; cp [1] -> r :: Counter -> Discard;"
  in
  push_into d2 "p" (bare_ip ());
  check "no clone" 0 (stat d2 "r" "packets")

let test_fix_ip_src () =
  let d = driver "f :: FixIPSrc(9.9.9.9) -> c :: Counter -> Discard;" in
  let p = bare_ip () in
  (Packet.anno p).Packet.fix_ip_src <- true;
  push_into d "f" p;
  check "source rewritten" (Ipaddr.of_string_exn "9.9.9.9") (Headers.Ip.src p);
  check_bool "checksum ok" true (Headers.Ip.checksum_valid p);
  check_bool "annotation cleared" false (Packet.anno p).Packet.fix_ip_src;
  (* without the annotation nothing changes *)
  let q = bare_ip () in
  push_into d "f" q;
  check "source kept" (Ipaddr.of_string_exn "10.0.0.2") (Headers.Ip.src q)

let test_ip_gw_options () =
  let d =
    driver
      "g :: IPGWOptions(9.9.9.9); g [0] -> c :: Counter -> Discard; g [1] \
       -> bad :: Counter -> Discard;"
  in
  push_into d "g" (bare_ip ());
  check "plain header passes" 1 (stat d "c" "packets");
  (* a header with an unknown option (type 0x94) is a parameter problem *)
  let p = Packet.create 24 in
  Packet.set_u8 p 0 0x46 (* ihl 6 *);
  Headers.Ip.set_total_length p 24;
  Headers.Ip.set_ttl p 64;
  Headers.Ip.set_protocol p 17;
  Packet.set_u8 p 20 0x94;
  Headers.Ip.update_checksum p;
  push_into d "g" p;
  check "bad option to port 1" 1 (stat d "bad" "packets")

let test_ip_fragmenter () =
  let d =
    driver
      "f :: IPFragmenter(576); f [0] -> c :: Counter -> Discard; f [1] -> \
       big :: Counter -> Discard;"
  in
  (* a 1200-byte IP packet fragments into three pieces under MTU 576 *)
  let payload = 1180 in
  let p = Packet.create (20 + payload) in
  Headers.Ip.write_header p ~src:1 ~dst:2 ~protocol:17
    ~total_length:(20 + payload) ();
  push_into d "f" p;
  check "fragments" 3 (stat d "f" "fragments");
  check "fragments forwarded" 3 (stat d "c" "packets");
  (* DF packets go to the error output instead *)
  let q = Packet.create (20 + payload) in
  Headers.Ip.write_header q ~src:1 ~dst:2 ~protocol:17
    ~total_length:(20 + payload) ();
  Headers.Ip.set_flags_fragment q ~df:true ~mf:false ~frag:0;
  Headers.Ip.update_checksum q;
  push_into d "f" q;
  check "df to port 1" 1 (stat d "big" "packets");
  (* small packets pass untouched *)
  push_into d "f" (bare_ip ());
  check "small passes" 4 (stat d "c" "packets")

let test_fragment_payload_reassembles () =
  (* Concatenating fragment payloads in offset order rebuilds the datagram. *)
  let collected = ref [] in
  let d =
    driver "f :: IPFragmenter(100) -> c :: Counter -> q :: Queue(50); Idle -> f; q -> Discard;"
  in
  let payload = String.init 300 (fun i -> Char.chr (i mod 256)) in
  let p = Packet.of_string (String.make 20 '\000' ^ payload) in
  Headers.Ip.write_header p ~src:1 ~dst:2 ~protocol:17 ~total_length:320 ();
  push_into d "f" p;
  let q = Option.get (Driver.element d "q") in
  let rec drain () =
    match q#pull 0 with
    | Some frag ->
        collected :=
          ( Headers.Ip.fragment_offset frag * 8,
            Packet.get_string frag ~pos:(Headers.Ip.header_length frag)
              ~len:(Packet.length frag - Headers.Ip.header_length frag) )
          :: !collected;
        drain ()
    | None -> ()
  in
  drain ();
  let sorted = List.sort compare !collected in
  let rebuilt = String.concat "" (List.map snd sorted) in
  Alcotest.(check string) "payload reassembles" payload rebuilt;
  (* (100 - 20) & ~7 = 80-byte chunks: 80 + 80 + 80 + 60 *)
  check "fragment count" 4 (List.length sorted)

let test_icmp_error () =
  let d = driver "e :: ICMPError(10.0.0.1, timeexceeded) -> c :: Counter -> q :: Queue(5); Idle -> e; q -> Discard;" in
  let p = bare_ip ~dst:"7.7.7.7" () in
  push_into d "e" p;
  check "error sent" 1 (stat d "e" "sent");
  let q = Option.get (Driver.element d "q") in
  let e = Option.get (q#pull 0) in
  check "icmp proto" 1 (Headers.Ip.protocol e);
  check "type" 11 (Headers.Icmp.icmp_type ~off:20 e);
  check "addressed to source" (Ipaddr.of_string_exn "10.0.0.2")
    (Headers.Ip.dst e);
  check_bool "fix-src annotation" true (Packet.anno e).Packet.fix_ip_src;
  check "dst annotation set" (Ipaddr.of_string_exn "10.0.0.2")
    (Packet.anno e).Packet.dst_ip;
  (* no ICMP errors about ICMP errors *)
  push_into d "e" (Packet.clone e);
  check "no error about error" 1 (stat d "e" "sent")

let test_ether_encap () =
  let d =
    driver
      "e :: EtherEncap(0800, 00:00:c0:00:00:01, 00:00:c0:00:00:02) -> c :: \
       Counter -> Discard;"
  in
  let p = bare_ip () in
  let before = Packet.length p in
  push_into d "e" p;
  check "header added" (before + 14) (Packet.length p);
  check "ethertype" 0x800 (Headers.Ether.ethertype p)

(* --- routing ------------------------------------------------------------------ *)

let test_lookup_ip_route () =
  let d =
    driver
      "rt :: LookupIPRoute(10.0.0.1/32 0, 10.0.0.0/24 1, 0.0.0.0/0 \
       10.0.0.100 2); rt [0] -> self :: Counter -> Discard; rt [1] -> net \
       :: Counter -> Discard; rt [2] -> def :: Counter -> Discard;"
  in
  let route dst =
    let p = bare_ip () in
    (Packet.anno p).Packet.dst_ip <- Ipaddr.of_string_exn dst;
    push_into d "rt" p;
    p
  in
  ignore (route "10.0.0.1");
  check "host route" 1 (stat d "self" "packets");
  ignore (route "10.0.0.77");
  check "net route" 1 (stat d "net" "packets");
  let p = route "99.99.99.99" in
  check "default route" 1 (stat d "def" "packets");
  check "gateway rewrote annotation" (Ipaddr.of_string_exn "10.0.0.100")
    (Packet.anno p).Packet.dst_ip

let test_lookup_longest_prefix () =
  let d =
    driver
      "rt :: LookupIPRoute(10.0.0.0/8 0, 10.0.4.0/24 1); rt [0] -> a :: \
       Counter -> Discard; rt [1] -> b :: Counter -> Discard;"
  in
  let p = bare_ip () in
  (Packet.anno p).Packet.dst_ip <- Ipaddr.of_string_exn "10.0.4.9";
  push_into d "rt" p;
  check "longest prefix wins" 1 (stat d "b" "packets")

let test_lookup_no_route_drops () =
  let d =
    driver "rt :: LookupIPRoute(10.0.0.0/8 0); rt [0] -> Discard;"
  in
  let p = bare_ip () in
  (Packet.anno p).Packet.dst_ip <- Ipaddr.of_string_exn "192.168.0.1";
  push_into d "rt" p;
  check "miss counted" 1 (stat d "rt" "misses")

(* --- ARP ---------------------------------------------------------------------- *)

let test_arp_querier_resolves () =
  let d =
    driver
      "aq :: ARPQuerier(10.0.0.1, 00:00:c0:00:00:01) -> q :: Queue(10); \
       Idle -> aq; Idle -> [1] aq; q -> Discard;"
  in
  let p = bare_ip () in
  (Packet.anno p).Packet.dst_ip <- Ipaddr.of_string_exn "10.0.0.2";
  push_into d "aq" p;
  check "query emitted" 1 (stat d "aq" "queries");
  let q = Option.get (Driver.element d "q") in
  let query = Option.get (q#pull 0) in
  check "is arp" 0x806 (Headers.Ether.ethertype query);
  (* answer it *)
  let reply =
    Headers.Build.arp_reply
      ~src_eth:(Ethaddr.of_string_exn "00:00:c0:bb:00:02")
      ~src_ip:(Ipaddr.of_string_exn "10.0.0.2")
      ~dst_eth:(Headers.Arp.sender_eth ~off:14 query)
      ~dst_ip:(Headers.Arp.sender_ip ~off:14 query)
  in
  (Option.get (Driver.element d "aq"))#push 1 reply;
  check "held packet released" 1 (stat d "aq" "encapsulated");
  let sent = Option.get (q#pull 0) in
  check "encapsulated as IP" 0x800 (Headers.Ether.ethertype sent);
  Alcotest.(check string)
    "dst mac" "00:00:c0:bb:00:02"
    (Ethaddr.to_string (Headers.Ether.dst sent));
  (* second packet needs no query *)
  let p2 = bare_ip () in
  (Packet.anno p2).Packet.dst_ip <- Ipaddr.of_string_exn "10.0.0.2";
  push_into d "aq" p2;
  check "no extra query" 1 (stat d "aq" "queries");
  check "cached encap" 2 (stat d "aq" "encapsulated")

let test_arp_querier_holds_fifo () =
  let d =
    driver
      "aq :: ARPQuerier(10.0.0.1, 00:00:c0:00:00:01) -> q :: Queue(10); \
       Idle -> aq; Idle -> [1] aq; q -> Discard;"
  in
  let send () =
    let p = bare_ip () in
    (Packet.anno p).Packet.dst_ip <- Ipaddr.of_string_exn "10.0.0.2";
    push_into d "aq" p
  in
  send ();
  send () (* held behind the first; the repeat query is rate-limited *);
  check "one query" 1 (stat d "aq" "queries");
  check "repeat suppressed" 1 (stat d "aq" "suppressed");
  check "both held" 2 (stat d "aq" "pending")

let test_arp_responder () =
  let d =
    driver
      "ar :: ARPResponder(10.0.0.1 00:00:c0:00:00:01) -> q :: Queue(5); \
       Idle -> ar; q -> Discard;"
  in
  let query =
    Headers.Build.arp_query
      ~src_eth:(Ethaddr.of_string_exn "00:00:c0:bb:00:02")
      ~src_ip:(Ipaddr.of_string_exn "10.0.0.2")
      ~target_ip:(Ipaddr.of_string_exn "10.0.0.1")
  in
  push_into d "ar" query;
  check "reply" 1 (stat d "ar" "replies");
  let q = Option.get (Driver.element d "q") in
  let reply = Option.get (q#pull 0) in
  check "op reply" 2 (Headers.Arp.op ~off:14 reply);
  Alcotest.(check string)
    "advertises our mac" "00:00:c0:00:00:01"
    (Ethaddr.to_string (Headers.Arp.sender_eth ~off:14 reply));
  (* not our address: ignored *)
  let other =
    Headers.Build.arp_query
      ~src_eth:(Ethaddr.of_string_exn "00:00:c0:bb:00:02")
      ~src_ip:(Ipaddr.of_string_exn "10.0.0.2")
      ~target_ip:(Ipaddr.of_string_exn "10.0.0.99")
  in
  push_into d "ar" other;
  check "still one reply" 1 (stat d "ar" "replies")

(* --- classifiers as elements ---------------------------------------------------- *)

let test_classifier_element () =
  let d =
    driver
      "c :: Classifier(12/0806, 12/0800, -); c [0] -> arp :: Counter -> \
       Discard; c [1] -> ip :: Counter -> Discard; c [2] -> other :: \
       Counter -> Discard;"
  in
  push_into d "c" (udp ());
  push_into d "c"
    (Headers.Build.arp_query
       ~src_eth:(Ethaddr.of_string_exn "00:11:22:33:44:55")
       ~src_ip:1 ~target_ip:2);
  check "ip" 1 (stat d "ip" "packets");
  check "arp" 1 (stat d "arp" "packets");
  check "other" 0 (stat d "other" "packets")

let test_ipclassifier_element () =
  let d =
    driver
      "c :: IPClassifier(udp && dst port 53, -); c [0] -> dns :: Counter -> \
       Discard; c [1] -> rest :: Counter -> Discard;"
  in
  let p = bare_ip () in
  push_into d "c" p;
  check "non-dns" 1 (stat d "rest" "packets")

let test_ipfilter_element_drops () =
  let d =
    driver "f :: IPFilter(deny udp, allow all) -> c :: Counter -> Discard;"
  in
  push_into d "f" (bare_ip ());
  check "udp denied" 0 (stat d "c" "packets");
  let icmp = Headers.Build.icmp_echo ~src_ip:1 ~dst_ip:2 () in
  Packet.pull icmp 14;
  push_into d "f" icmp;
  check "icmp allowed" 1 (stat d "c" "packets")

let test_bad_classifier_config_rejected () =
  match Driver.of_string "c :: Classifier(zz/08); c -> Discard;" with
  | Ok _ -> Alcotest.fail "bad classifier config must fail"
  | Error _ -> ()

(* --- combos behave like the chains they replace ---------------------------------- *)

let test_ip_input_combo_equivalence () =
  let chain =
    driver
      "p :: Paint(2) -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> \
       c :: Counter -> Discard;"
  in
  let combo =
    driver "ic :: IPInputCombo(2) -> c :: Counter -> Discard;"
  in
  let p1 = udp () and p2 = udp () in
  push_into chain "p" p1;
  push_into combo "ic" p2;
  check "both forward" (stat chain "c" "packets") (stat combo "c" "packets");
  Alcotest.(check string) "same bytes" (Packet.to_string p1) (Packet.to_string p2);
  check "same paint" (Packet.anno p1).Packet.paint (Packet.anno p2).Packet.paint;
  check "same dst anno" (Packet.anno p1).Packet.dst_ip (Packet.anno p2).Packet.dst_ip

let test_ip_output_combo_equivalence () =
  let mk () =
    let p = bare_ip ~ttl:9 () in
    (Packet.anno p).Packet.paint <- 4;
    p
  in
  let chain =
    driver
      "db :: DropBroadcasts -> cp :: CheckPaint(4) -> IPGWOptions(9.9.9.9) \
       -> FixIPSrc(9.9.9.9) -> dt :: DecIPTTL -> c :: Counter -> Discard; \
       cp [1] -> r1 :: Counter -> Discard; dt [1] -> e1 :: Counter -> \
       Discard;"
  in
  let combo =
    driver
      "oc :: IPOutputCombo(4, 9.9.9.9); oc [0] -> c :: Counter -> Discard; \
       oc [1] -> r1 :: Counter -> Discard; oc [2] -> b :: Counter -> \
       Discard; oc [3] -> e1 :: Counter -> Discard;"
  in
  let p1 = mk () and p2 = mk () in
  push_into chain "db" p1;
  push_into combo "oc" p2;
  Alcotest.(check string) "same bytes" (Packet.to_string p1) (Packet.to_string p2);
  check "both forwarded" (stat chain "c" "packets") (stat combo "c" "packets");
  check "both teed the redirect clone" (stat chain "r1" "packets")
    (stat combo "r1" "packets");
  (* TTL-expired path *)
  let e1 = bare_ip ~ttl:1 () and e2 = bare_ip ~ttl:1 () in
  push_into chain "db" e1;
  push_into combo "oc" e2;
  check "both expired" (stat chain "e1" "packets") (stat combo "e1" "packets")

(* --- alignment / misc -------------------------------------------------------------- *)

let test_align_element () =
  let d = driver "a :: Align(4, 0) -> c :: Counter -> Discard;" in
  let p = bare_ip () in
  Packet.realign p ~modulus:4 ~offset:2;
  push_into d "a" p;
  check "aligned" 0 (Packet.data_offset p mod 4);
  check "copy counted" 1 (stat d "a" "copies");
  (* already-aligned packets are not copied *)
  let q = bare_ip () in
  Packet.realign q ~modulus:4 ~offset:0;
  push_into d "a" q;
  check "no extra copy" 1 (stat d "a" "copies")

let test_simple_action_pull_context () =
  (* The one-port pass-through elements are written with simple_action
     and must work when *pulled* through, not just pushed (e.g. between a
     scheduler and ToDevice). *)
  let d =
    driver
      "Idle -> q :: Queue(10); q -> Paint(5) -> Strip(14) -> \
       CheckIPHeader() -> dt :: DecIPTTL -> c :: Counter; c -> Idle@sink :: \
       Idle;"
  in
  push_into d "q" (udp ~ttl:9 ());
  (* pull the packet through the whole chain from the far end *)
  let c = Option.get (Driver.element d "c") in
  match c#pull 0 with
  | Some p ->
      check "painted" 5 (Packet.anno p).Packet.paint;
      check "stripped + ttl decremented" 8 (Headers.Ip.ttl p);
      check_bool "checksum" true (Headers.Ip.checksum_valid p);
      check "counter saw it" 1 (stat d "c" "packets")
  | None -> Alcotest.fail "pull chain yielded nothing"

let test_devices_round_trip () =
  let dev0 = new Netdevice.queue_device "in0" () in
  let dev1 = new Netdevice.queue_device "out0" () in
  let d =
    driver
      ~devices:[ (dev0 :> Netdevice.t); (dev1 :> Netdevice.t) ]
      "PollDevice(in0) -> q :: Queue(10) -> ToDevice(out0);"
  in
  for _ = 1 to 5 do
    dev0#inject (udp ())
  done;
  let (_ : bool) = Driver.run_until_idle d in
  check "all forwarded" 5 dev1#tx_count

let test_missing_device_fails () =
  match Driver.of_string "PollDevice(nope) -> Queue(5) -> Discard;" with
  | Ok _ -> Alcotest.fail "missing device must fail"
  | Error e -> check_bool "mentions device" true (String.length e > 0)

let test_infinite_source_limit () =
  let d =
    driver "s :: InfiniteSource(LENGTH 60, LIMIT 7, BURST 3) -> c :: Counter -> Discard;"
  in
  let (_ : bool) = Driver.run_until_idle d in
  check "limited" 7 (stat d "c" "packets")

let test_udp_source () =
  (* q drains into Idle (which never pulls) so the packets stay
     inspectable after the run. *)
  let d =
    driver
      "s :: UDPSource(SRCIP 10.0.0.2, DSTIP 10.0.1.2, LIMIT 2) -> c :: \
       Counter -> q :: Queue(5); q -> Idle;"
  in
  let (_ : bool) = Driver.run_until_idle d in
  check "sent" 2 (stat d "c" "packets");
  let q = Option.get (Driver.element d "q") in
  let p = Option.get (q#pull 0) in
  check_bool "well formed" true (Headers.Ip.checksum_valid ~off:14 p)

let () =
  Alcotest.run "elements"
    [
      ( "basic",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "tee" `Quick test_tee;
          Alcotest.test_case "static switch" `Quick test_static_switch;
          Alcotest.test_case "paint switch" `Quick test_paint_switch;
          Alcotest.test_case "queue capacity" `Quick
            test_queue_capacity_and_drops;
          Alcotest.test_case "queue order" `Quick test_queue_fifo_order;
          Alcotest.test_case "red drops" `Quick test_red_drops_when_full;
          Alcotest.test_case "red needs queue" `Quick test_red_requires_queue;
        ] );
      ( "ip",
        [
          Alcotest.test_case "strip+check" `Quick test_strip_and_check;
          Alcotest.test_case "check bad output" `Quick
            test_check_ip_header_bad_output;
          Alcotest.test_case "check bad src" `Quick test_check_ip_header_bad_src;
          Alcotest.test_case "check trims padding" `Quick
            test_check_ip_header_trims_padding;
          Alcotest.test_case "get ip address" `Quick test_get_ip_address;
          Alcotest.test_case "dec ttl" `Quick test_dec_ip_ttl;
          Alcotest.test_case "drop broadcasts" `Quick test_drop_broadcasts;
          Alcotest.test_case "check paint" `Quick test_check_paint_tee;
          Alcotest.test_case "fix ip src" `Quick test_fix_ip_src;
          Alcotest.test_case "gw options" `Quick test_ip_gw_options;
          Alcotest.test_case "fragmenter" `Quick test_ip_fragmenter;
          Alcotest.test_case "fragment payload" `Quick
            test_fragment_payload_reassembles;
          Alcotest.test_case "icmp error" `Quick test_icmp_error;
          Alcotest.test_case "ether encap" `Quick test_ether_encap;
        ] );
      ( "routing",
        [
          Alcotest.test_case "lookup" `Quick test_lookup_ip_route;
          Alcotest.test_case "longest prefix" `Quick test_lookup_longest_prefix;
          Alcotest.test_case "no route" `Quick test_lookup_no_route_drops;
        ] );
      ( "arp",
        [
          Alcotest.test_case "querier resolves" `Quick
            test_arp_querier_resolves;
          Alcotest.test_case "querier holds fifo" `Quick
            test_arp_querier_holds_fifo;
          Alcotest.test_case "responder" `Quick test_arp_responder;
        ] );
      ( "classify",
        [
          Alcotest.test_case "classifier" `Quick test_classifier_element;
          Alcotest.test_case "ipclassifier" `Quick test_ipclassifier_element;
          Alcotest.test_case "ipfilter" `Quick test_ipfilter_element_drops;
          Alcotest.test_case "bad config" `Quick
            test_bad_classifier_config_rejected;
        ] );
      ( "combos",
        [
          Alcotest.test_case "input combo" `Quick
            test_ip_input_combo_equivalence;
          Alcotest.test_case "output combo" `Quick
            test_ip_output_combo_equivalence;
        ] );
      ( "misc",
        [
          Alcotest.test_case "align" `Quick test_align_element;
          Alcotest.test_case "simple_action pull" `Quick
            test_simple_action_pull_context;
          Alcotest.test_case "devices" `Quick test_devices_round_trip;
          Alcotest.test_case "missing device" `Quick test_missing_device_fails;
          Alcotest.test_case "infinite source" `Quick
            test_infinite_source_limit;
          Alcotest.test_case "udp source" `Quick test_udp_source;
        ] );
    ]
