bin/oclick_run.ml: Arg Cmdliner Fun Hashtbl List Oclick_fault Oclick_graph Oclick_lang Oclick_runtime Option Printf String Term Tool_common
