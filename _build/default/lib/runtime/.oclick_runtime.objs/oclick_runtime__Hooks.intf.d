lib/runtime/hooks.mli: Oclick_packet
