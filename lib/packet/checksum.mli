(** The Internet checksum (RFC 1071) used by IP, ICMP, and UDP.

    Both storage classes of the packet layer are served: GC-managed
    [bytes] buffers and off-heap bigstring slabs (the [_big] variants).
    All loops consume 8 bytes per iteration through unsafe fixed-width
    word loads under a single hoisted bounds check. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val ones_complement_sum : bytes -> pos:int -> len:int -> int
(** 16-bit one's-complement sum of [len] bytes starting at [pos]; an odd
    trailing byte is padded with zero. The result is folded to 16 bits. *)

val ones_complement_sum_big : bigstring -> pos:int -> len:int -> int
(** {!ones_complement_sum} over an off-heap buffer. *)

val checksum : bytes -> pos:int -> len:int -> int
(** The Internet checksum: one's complement of {!ones_complement_sum},
    as a 16-bit value. *)

val checksum_big : bigstring -> pos:int -> len:int -> int
(** {!checksum} over an off-heap buffer. *)

val combine : int -> int -> int
(** One's-complement addition of two folded 16-bit partial sums, for
    incremental computation over discontiguous regions. *)

val finish : int -> int
(** Complement a combined partial sum into a checksum field value. *)

val ip_header_valid : bytes -> pos:int -> ihl:int -> bool
(** Verifies the header checksum of the IP header at [pos] whose header
    length is [ihl] 32-bit words. *)
