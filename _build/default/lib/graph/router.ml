module Ast = Oclick_lang.Ast
module Archive = Oclick_lang.Archive

type element = {
  mutable el_name : string;
  mutable el_class : string;
  mutable el_config : string;
  mutable el_live : bool;
}

type hookup = { from_idx : int; from_port : int; to_idx : int; to_port : int }

type t = {
  mutable elements : element array;
  mutable count : int;
  index : (string, int) Hashtbl.t;
  mutable hookup_list : hookup list; (* reversed insertion order *)
  mutable requirements : string list;
  mutable archive_members : Archive.t;
  mutable adj_dirty : bool;
  mutable out_adj : (int * int * int) list array;
  mutable in_adj : (int * int * int) list array;
}

let create () =
  {
    elements = Array.make 16 { el_name = ""; el_class = ""; el_config = ""; el_live = false };
    count = 0;
    index = Hashtbl.create 64;
    hookup_list = [];
    requirements = [];
    archive_members = [];
    adj_dirty = true;
    out_adj = [||];
    in_adj = [||];
  }

let size t =
  let n = ref 0 in
  for i = 0 to t.count - 1 do
    if t.elements.(i).el_live then incr n
  done;
  !n

let indices t =
  let acc = ref [] in
  for i = t.count - 1 downto 0 do
    if t.elements.(i).el_live then acc := i :: !acc
  done;
  !acc

let check_idx t i =
  if i < 0 || i >= t.count || not t.elements.(i).el_live then
    invalid_arg (Printf.sprintf "Router: dead or invalid element index %d" i)

let name t i =
  check_idx t i;
  t.elements.(i).el_name

let class_of t i =
  check_idx t i;
  t.elements.(i).el_class

let config t i =
  check_idx t i;
  t.elements.(i).el_config

let set_class t i c =
  check_idx t i;
  t.elements.(i).el_class <- c

let set_config t i c =
  check_idx t i;
  t.elements.(i).el_config <- c

let find t n = Hashtbl.find_opt t.index n
let is_live t i = i >= 0 && i < t.count && t.elements.(i).el_live

let add_element t ~name ~cls ~config =
  if Hashtbl.mem t.index name then
    invalid_arg (Printf.sprintf "Router.add_element: name %S taken" name);
  if t.count = Array.length t.elements then begin
    let bigger = Array.make (2 * t.count) t.elements.(0) in
    Array.blit t.elements 0 bigger 0 t.count;
    t.elements <- bigger
  end;
  t.elements.(t.count) <-
    { el_name = name; el_class = cls; el_config = config; el_live = true };
  Hashtbl.replace t.index name t.count;
  t.count <- t.count + 1;
  t.adj_dirty <- true;
  t.count - 1

let fresh_name t base =
  if not (Hashtbl.mem t.index base) then base
  else begin
    let rec try_n n =
      let candidate = Printf.sprintf "%s@%d" base n in
      if Hashtbl.mem t.index candidate then try_n (n + 1) else candidate
    in
    try_n 1
  end

let remove_element t i =
  check_idx t i;
  Hashtbl.remove t.index t.elements.(i).el_name;
  t.elements.(i).el_live <- false;
  t.hookup_list <-
    List.filter (fun h -> h.from_idx <> i && h.to_idx <> i) t.hookup_list;
  t.adj_dirty <- true

let hookups t = List.rev t.hookup_list

let add_hookup t h =
  check_idx t h.from_idx;
  check_idx t h.to_idx;
  if h.from_port < 0 || h.to_port < 0 then invalid_arg "Router.add_hookup";
  t.hookup_list <- h :: t.hookup_list;
  t.adj_dirty <- true

let remove_hookup t h =
  let rec drop_first = function
    | [] -> []
    | x :: rest -> if x = h then rest else x :: drop_first rest
  in
  t.hookup_list <- drop_first t.hookup_list;
  t.adj_dirty <- true

let ensure_adj t =
  if t.adj_dirty then begin
    let out_adj = Array.make (max t.count 1) [] in
    let in_adj = Array.make (max t.count 1) [] in
    List.iter
      (fun h ->
        out_adj.(h.from_idx) <-
          (h.from_port, h.to_idx, h.to_port) :: out_adj.(h.from_idx);
        in_adj.(h.to_idx) <-
          (h.to_port, h.from_idx, h.from_port) :: in_adj.(h.to_idx))
      t.hookup_list;
    let by_port (p1, _, _) (p2, _, _) = Int.compare p1 p2 in
    Array.iteri (fun i l -> out_adj.(i) <- List.stable_sort by_port l) out_adj;
    Array.iteri (fun i l -> in_adj.(i) <- List.stable_sort by_port l) in_adj;
    t.out_adj <- out_adj;
    t.in_adj <- in_adj;
    t.adj_dirty <- false
  end

let outputs_of t i =
  check_idx t i;
  ensure_adj t;
  t.out_adj.(i)

let inputs_of t i =
  check_idx t i;
  ensure_adj t;
  t.in_adj.(i)

let output_port_count t i =
  List.fold_left (fun acc (p, _, _) -> max acc (p + 1)) 0 (outputs_of t i)

let input_port_count t i =
  List.fold_left (fun acc (p, _, _) -> max acc (p + 1)) 0 (inputs_of t i)

let requirements t = List.rev t.requirements

let add_requirement t r =
  if not (List.mem r t.requirements) then
    t.requirements <- r :: t.requirements

let archive t = t.archive_members

let set_archive_member t ~name ~body =
  t.archive_members <- Archive.add t.archive_members ~name ~body

let of_ast (ast : Ast.t) =
  let t = create () in
  let compound =
    List.find_opt
      (fun (e : Ast.element) ->
        match e.e_class with Ast.Ccompound _ -> true | Ast.Cname _ -> false)
      ast.elements
  in
  match (compound, ast.classes) with
  | Some e, _ ->
      Error
        (Printf.sprintf "element %s has a compound class; flatten first"
           e.e_name)
  | None, _ :: _ -> Error "configuration has elementclass definitions; flatten first"
  | None, [] -> (
      List.iter
        (fun (e : Ast.element) ->
          ignore
            (add_element t ~name:e.e_name
               ~cls:(Ast.class_name e.e_class)
               ~config:e.e_config))
        ast.elements;
      let missing = ref None in
      List.iter
        (fun (c : Ast.connection) ->
          match (find t c.c_from, find t c.c_to) with
          | Some f, Some x ->
              add_hookup t
                {
                  from_idx = f;
                  from_port = c.c_from_port;
                  to_idx = x;
                  to_port = c.c_to_port;
                }
          | None, _ -> if !missing = None then missing := Some c.c_from
          | _, None -> if !missing = None then missing := Some c.c_to)
        ast.connections;
      List.iter (add_requirement t) ast.requirements;
      match !missing with
      | Some n -> Error (Printf.sprintf "connection references unknown element %S" n)
      | None -> Ok t)

let of_ast_exn ast =
  match of_ast ast with Ok t -> t | Error msg -> failwith msg

let to_ast t =
  let elements =
    List.map
      (fun i ->
        {
          Ast.e_name = name t i;
          e_class = Ast.Cname (class_of t i);
          e_config = config t i;
        })
      (indices t)
  in
  let connections =
    List.map
      (fun h ->
        {
          Ast.c_from = name t h.from_idx;
          c_from_port = h.from_port;
          c_to = name t h.to_idx;
          c_to_port = h.to_port;
        })
      (hookups t)
  in
  { Ast.elements; connections; classes = []; requirements = requirements t }

let parse_string s =
  let members, source =
    if Archive.is_archive s then
      match Archive.parse s with
      | Ok m -> (m, Archive.config m)
      | Error e -> ([], s ^ e) (* force a parse error below with context *)
    else ([], s)
  in
  match Oclick_lang.Parser.parse source with
  | Error e -> Error e
  | Ok ast -> (
      match Oclick_lang.Flatten.flatten ast with
      | Error e -> Error e
      | Ok flat -> (
          match of_ast flat with
          | Error e -> Error e
          | Ok t ->
              List.iter
                (fun (m : Archive.member) ->
                  if not (String.equal m.m_name "config") then
                    set_archive_member t ~name:m.m_name ~body:m.m_body)
                members;
              Ok t))

let to_string t =
  let cfg = Oclick_lang.Printer.to_string (to_ast t) in
  match t.archive_members with
  | [] -> cfg
  | members -> Archive.to_string (Archive.with_config members cfg)

let copy t =
  let t' = create () in
  List.iter
    (fun i ->
      ignore
        (add_element t' ~name:(name t i) ~cls:(class_of t i)
           ~config:(config t i)))
    (indices t);
  (* Indices may differ if the source had dead slots; remap by name. *)
  List.iter
    (fun h ->
      match
        (find t' (name t h.from_idx), find t' (name t h.to_idx))
      with
      | Some f, Some x ->
          add_hookup t'
            { from_idx = f; from_port = h.from_port; to_idx = x; to_port = h.to_port }
      | _ -> assert false)
    (hookups t);
  List.iter (add_requirement t') (requirements t);
  t'.archive_members <- t.archive_members;
  t'
