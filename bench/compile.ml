(* Interpreted vs compiled datapath on the Fig. 8 forwarding path.

   Like the batch section, this measures real wall-clock throughput of
   the user-level driver rather than modeled cycles: the full IP router
   graph forwarding UDP between two attached queue devices. The
   interpreted variants run the stock push path (per-hop port lookup,
   method dispatch, hook bookkeeping); the compiled variants run the
   same instantiated graph after the whole-graph datapath compiler
   (lib/compile) has replaced each connection with a direct closure and
   fused the single-in/single-out runs. Both execute identical element
   semantics over identical traffic, so the ratio isolates the dispatch
   overhead the compiler removes — scalar and at batch 32 with the
   recycling pool, plus a classifier-heavy chain where the compiled
   decision trees matter most. *)

module Driver = Oclick_runtime.Driver
module Netdevice = Oclick_runtime.Netdevice
module Packet = Oclick_packet.Packet
module Pool = Oclick_packet.Packet.Pool
module Headers = Oclick_packet.Headers
module Ethaddr = Oclick_packet.Ethaddr
module Ipaddr = Oclick_packet.Ipaddr

let () = Oclick_compile.register ()

let n_ifaces = 2
let burst = 256

type rig = {
  rg_driver : Driver.t;
  rg_devs : Netdevice.queue_device array;
  rg_pool : Pool.t option;
}

let make_rig ~graph ~batch ~pool ~compile =
  let devs =
    Array.init n_ifaces (fun i ->
        new Netdevice.queue_device (Printf.sprintf "eth%d" i) ())
  in
  let devices =
    Array.to_list (Array.map (fun d -> (d :> Netdevice.t)) devs)
  in
  let pool = if pool then Some (Pool.create ~capacity:4096 ()) else None in
  match Driver.instantiate ~devices ~batch ?pool ~compile graph with
  | Ok d -> { rg_driver = d; rg_devs = devs; rg_pool = pool }
  | Error e -> failwith ("compile bench: " ^ e)

(* The one traffic flow: host on eth0 sends UDP to the host on eth1. *)
let template =
  Headers.Build.udp
    ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
    ~dst_eth:(Ethaddr.of_string_exn "00:00:c0:00:00:01")
    ~src_ip:(Ipaddr.of_octets 10 0 0 2)
    ~dst_ip:(Ipaddr.of_octets 10 0 1 2)
    ~ttl:64 ()

let answer_arp (dev : Netdevice.queue_device) host_eth =
  match dev#collect with
  | Some q when Headers.Ether.ethertype q = 0x806 ->
      dev#inject
        (Headers.Build.arp_reply ~src_eth:host_eth
           ~src_ip:(Headers.Arp.target_ip ~off:14 q)
           ~dst_eth:(Headers.Arp.sender_eth ~off:14 q)
           ~dst_ip:(Headers.Arp.sender_ip ~off:14 q))
  | Some _ -> failwith "compile bench: expected an ARP query"
  | None -> failwith "compile bench: no ARP query emitted"

(* Resolve the router's ARP for the flow's next hop before measuring.
   The classifier chain forwards frames verbatim, so its priming packet
   arrives directly. *)
let prime ~arp rig =
  rig.rg_devs.(0)#inject (Packet.clone template);
  ignore (Driver.run_until_idle rig.rg_driver);
  if arp then begin
    answer_arp rig.rg_devs.(1) (Ethaddr.of_string_exn "00:00:c0:bb:01:02");
    ignore (Driver.run_until_idle rig.rg_driver)
  end;
  let rec drain n =
    match rig.rg_devs.(1)#collect with Some _ -> drain (n + 1) | None -> n
  in
  if drain 0 < 1 then failwith "compile bench: priming forward failed"

let run_burst rig =
  let len = Packet.length template in
  for _ = 1 to burst do
    let p =
      match rig.rg_pool with
      | Some pool -> Pool.alloc pool len
      | None -> Packet.create len
    in
    Packet.blit ~src:template ~src_pos:0 ~dst:p ~dst_pos:0 ~len;
    rig.rg_devs.(0)#inject p
  done;
  ignore (Driver.run_until_idle rig.rg_driver);
  let rec drain n =
    match rig.rg_devs.(1)#collect with
    | Some p ->
        (match rig.rg_pool with
        | Some pool -> Pool.recycle pool p
        | None -> ());
        drain (n + 1)
    | None -> n
  in
  drain 0

(* Best-of-[reps] wall-clock measurement (Common.best_of_windows): each
   repetition injects and forwards the full packet budget, and the
   fastest repetition is reported. *)
let run_mode ~graph ~arp ~batch ~pool ~compile ~packets =
  let rig = make_rig ~graph ~batch ~pool ~compile in
  prime ~arp rig;
  let bursts = max 1 (packets / burst) in
  let reps = if !Common.smoke then 1 else 3 in
  for _ = 1 to max 1 (bursts / 10) do
    ignore (run_burst rig)
  done;
  let w =
    Common.best_of_windows ~reps (fun () ->
        let forwarded = ref 0 in
        for _ = 1 to bursts do
          forwarded := !forwarded + run_burst rig
        done;
        !forwarded)
  in
  (w.Common.w_forwarded, bursts * burst, w.Common.w_seconds, w.Common.w_pps)

(* A classifier-heavy straight-line config: twelve Classifier stages
   each re-matching a header byte of the template flow (ethertype,
   IP version/IHL, TTL, protocol), fall-through to Discard. Every
   stage is single-in/single-out on the hot path, so the compiled
   variant fuses the whole chain behind compiled decision trees. *)
let classifier_graph =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let patterns = [| "12/0800"; "14/45"; "22/40"; "23/11" |] in
  let n = 12 in
  add "pd :: PollDevice(eth0);\n";
  add "outq :: Queue(200);\n";
  add "td :: ToDevice(eth1);\n";
  for i = 0 to n - 1 do
    add "k%d :: Classifier(%s, -);\n" i patterns.(i mod Array.length patterns)
  done;
  add "pd -> k0;\n";
  for i = 0 to n - 2 do
    add "k%d [0] -> k%d;\n" i (i + 1);
    add "k%d [1] -> Discard;\n" i
  done;
  add "k%d [0] -> outq -> td;\n" (n - 1);
  add "k%d [1] -> Discard;\n" (n - 1);
  Oclick.Ip_router.graph (Buffer.contents buf)

let variant_json ~name ~batch ~pool ~compile (fwd, off, dt, pps) =
  Common.J_obj
    [
      ("name", Common.J_string name);
      ("batch", Common.J_int batch);
      ("pool", Common.J_bool pool);
      ("compiled", Common.J_bool compile);
      ("offered", Common.J_int off);
      ("forwarded", Common.J_int fwd);
      ("seconds", Common.J_float dt);
      ("pps", Common.J_float pps);
    ]

let print_variant name (fwd, _off, dt, pps) =
  Printf.printf "%-30s %12d %12.1f %10.3f\n" name fwd (Common.kpps pps) dt

let run () =
  Common.section "compile: interpreted vs compiled datapath (wall clock)";
  let packets = if !Common.smoke then 2_048 else 262_144 in
  let batch_size = 32 in
  let ip = Common.base_graph n_ifaces in
  Printf.printf
    "IP router (%d interfaces), one UDP flow, %d packets per variant\n\n"
    n_ifaces packets;
  let is_s = run_mode ~graph:ip ~arp:true ~batch:1 ~pool:false ~compile:false
      ~packets
  and cp_s = run_mode ~graph:ip ~arp:true ~batch:1 ~pool:false ~compile:true
      ~packets
  and is_b = run_mode ~graph:ip ~arp:true ~batch:batch_size ~pool:true
      ~compile:false ~packets
  and cp_b = run_mode ~graph:ip ~arp:true ~batch:batch_size ~pool:true
      ~compile:true ~packets
  in
  let kf_i = run_mode ~graph:classifier_graph ~arp:false ~batch:1 ~pool:false
      ~compile:false ~packets
  and kf_c = run_mode ~graph:classifier_graph ~arp:false ~batch:1 ~pool:false
      ~compile:true ~packets
  in
  let pps (_, _, _, v) = v in
  let speedup_scalar = pps cp_s /. pps is_s in
  let speedup_batch = pps cp_b /. pps is_b in
  let speedup_classifier = pps kf_c /. pps kf_i in
  Printf.printf "%-30s %12s %12s %10s\n" "variant" "forwarded" "kpkts/s"
    "time s";
  print_variant "ip/interpreted scalar" is_s;
  print_variant "ip/compiled scalar" cp_s;
  print_variant
    (Printf.sprintf "ip/interpreted batch %d+pool" batch_size)
    is_b;
  print_variant (Printf.sprintf "ip/compiled batch %d+pool" batch_size) cp_b;
  print_variant "classifier12/interpreted" kf_i;
  print_variant "classifier12/compiled" kf_c;
  Printf.printf
    "\nspeedup: scalar %.2fx, batch %.2fx, classifier chain %.2fx\n"
    speedup_scalar speedup_batch speedup_classifier;
  Common.write_json ~section:"compile"
    (Common.J_obj
       [
         ("section", Common.J_string "compile");
         ("interfaces", Common.J_int n_ifaces);
         ("burst", Common.J_int burst);
         ("smoke", Common.J_bool !Common.smoke);
         ( "variants",
           Common.J_list
             [
               variant_json ~name:"ip/interpreted-scalar" ~batch:1 ~pool:false
                 ~compile:false is_s;
               variant_json ~name:"ip/compiled-scalar" ~batch:1 ~pool:false
                 ~compile:true cp_s;
               variant_json ~name:"ip/interpreted-batch" ~batch:batch_size
                 ~pool:true ~compile:false is_b;
               variant_json ~name:"ip/compiled-batch" ~batch:batch_size
                 ~pool:true ~compile:true cp_b;
               variant_json ~name:"classifier12/interpreted" ~batch:1
                 ~pool:false ~compile:false kf_i;
               variant_json ~name:"classifier12/compiled" ~batch:1 ~pool:false
                 ~compile:true kf_c;
             ] );
         ("speedup_scalar", Common.J_float speedup_scalar);
         ("speedup_batch", Common.J_float speedup_batch);
         ("speedup_classifier", Common.J_float speedup_classifier);
       ])
