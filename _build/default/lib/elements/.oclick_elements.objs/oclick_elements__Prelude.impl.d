lib/elements/prelude.ml: Hashtbl List Oclick_graph Oclick_lang Oclick_packet Oclick_runtime
