(* Tests for the extended element library: schedulers, switches,
   encapsulation, and host-side elements. *)

module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr
module Driver = Oclick_runtime.Driver

let () = Oclick_elements.register_all ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let driver config =
  match Driver.of_string config with
  | Ok d -> d
  | Error e -> Alcotest.failf "instantiate: %s" e

let push_into d name p = (Option.get (Driver.element d name))#push 0 p
let pull_from d name = (Option.get (Driver.element d name))#pull 0

let stat d name key =
  List.assoc key (Option.get (Driver.element d name))#stats

let marked n =
  let p = Packet.create 60 in
  Packet.set_u8 p 0 n;
  p

let mark p = Packet.get_u8 p 0

(* --- schedulers ------------------------------------------------------------ *)

let test_prio_sched () =
  let d =
    driver
      "hi :: Queue(10); lo :: Queue(10); Idle -> hi; Idle -> lo; hi -> ps \
       :: PrioSched; lo -> [1] ps; ps -> Idle;"
  in
  push_into d "lo" (marked 2);
  push_into d "hi" (marked 1);
  push_into d "lo" (marked 3);
  (* priority: the high queue drains first, regardless of arrival order *)
  check "high first" 1 (mark (Option.get (pull_from d "ps")));
  check "then low" 2 (mark (Option.get (pull_from d "ps")));
  check "low again" 3 (mark (Option.get (pull_from d "ps")));
  check_bool "then empty" true (pull_from d "ps" = None)

let test_round_robin_sched () =
  let d =
    driver
      "a :: Queue(10); b :: Queue(10); Idle -> a; Idle -> b; a -> rr :: \
       RoundRobinSched; b -> [1] rr; rr -> Idle;"
  in
  push_into d "a" (marked 1);
  push_into d "a" (marked 2);
  push_into d "b" (marked 3);
  check "first from a" 1 (mark (Option.get (pull_from d "rr")));
  check "then b" 3 (mark (Option.get (pull_from d "rr")));
  check "back to a" 2 (mark (Option.get (pull_from d "rr")));
  (* an empty input is skipped, not returned as None *)
  push_into d "b" (marked 4);
  check "skips empty a" 4 (mark (Option.get (pull_from d "rr")))

let test_round_robin_switch () =
  let d =
    driver
      "Idle -> sw :: RoundRobinSwitch; sw [0] -> a :: Counter -> Discard; \
       sw [1] -> b :: Counter -> Discard; sw [2] -> c :: Counter -> Discard;"
  in
  for _ = 1 to 7 do
    push_into d "sw" (marked 0)
  done;
  check "a" 3 (stat d "a" "packets");
  check "b" 2 (stat d "b" "packets");
  check "c" 2 (stat d "c" "packets")

let test_hash_switch_flow_affinity () =
  let d =
    driver
      "Idle -> hs :: HashSwitch(26, 8); hs [0] -> a :: Counter -> Discard; \
       hs [1] -> b :: Counter -> Discard;"
  in
  (* same addresses -> same output, every time *)
  let flow () =
    Headers.Build.udp ~src_ip:0x0a000001 ~dst_ip:0x0a000102 ()
  in
  for _ = 1 to 10 do
    push_into d "hs" (flow ())
  done;
  let a = stat d "a" "packets" and b = stat d "b" "packets" in
  check_bool "one path only" true ((a = 10 && b = 0) || (a = 0 && b = 10))

let test_front_drop_queue () =
  let d = driver "Idle -> q :: FrontDropQueue(2); q -> Idle;" in
  push_into d "q" (marked 1);
  push_into d "q" (marked 2);
  push_into d "q" (marked 3) (* drops packet 1, the oldest *);
  check "drops" 1 (stat d "q" "drops");
  check "oldest went" 2 (mark (Option.get (pull_from d "q")));
  check "newest kept" 3 (mark (Option.get (pull_from d "q")))

(* --- filters and encapsulation ----------------------------------------------- *)

let test_check_length () =
  let d =
    driver
      "Idle -> cl :: CheckLength(100); cl [0] -> ok :: Counter -> Discard; \
       cl [1] -> big :: Counter -> Discard;"
  in
  push_into d "cl" (Packet.create 100);
  push_into d "cl" (Packet.create 101);
  check "ok" 1 (stat d "ok" "packets");
  check "big" 1 (stat d "big" "packets")

let test_ip_encap () =
  let d = driver "Idle -> e :: IPEncap(4, 1.2.3.4, 5.6.7.8) -> c :: Counter -> Discard;" in
  let p = Packet.of_string "payload!" in
  push_into d "e" p;
  check "length" 28 (Packet.length p);
  check "proto" 4 (Headers.Ip.protocol p);
  check "src" 0x01020304 (Headers.Ip.src p);
  check "dst" 0x05060708 (Headers.Ip.dst p);
  check "total length" 28 (Headers.Ip.total_length p);
  check_bool "checksum" true (Headers.Ip.checksum_valid p);
  check "dst annotation" 0x05060708 (Packet.anno p).Packet.dst_ip;
  (* idents increment *)
  let q = Packet.of_string "x" in
  push_into d "e" q;
  check "ident advanced" (Headers.Ip.ident p + 1) (Headers.Ip.ident q)

let test_udp_ip_encap () =
  let d =
    driver
      "Idle -> e :: UDPIPEncap(10.0.0.1, 1111, 10.0.0.2, 2222) -> c :: \
       Counter -> Discard;"
  in
  let p = Packet.of_string "hello" in
  push_into d "e" p;
  check "length" (20 + 8 + 5) (Packet.length p);
  check "proto udp" 17 (Headers.Ip.protocol p);
  check "sport" 1111 (Headers.Udp.src_port ~off:20 p);
  check "dport" 2222 (Headers.Udp.dst_port ~off:20 p);
  check "udp len" 13 (Headers.Udp.udp_length ~off:20 p);
  check_bool "ip checksum" true (Headers.Ip.checksum_valid p)

let test_ether_mirror () =
  let d = driver "Idle -> m :: EtherMirror -> c :: Counter -> Discard;" in
  let p =
    Headers.Build.udp
      ~src_eth:(Ethaddr.of_string_exn "00:00:00:00:00:01")
      ~dst_eth:(Ethaddr.of_string_exn "00:00:00:00:00:02")
      ~src_ip:1 ~dst_ip:2 ()
  in
  push_into d "m" p;
  Alcotest.(check string)
    "src<->dst" "00:00:00:00:00:02"
    (Ethaddr.to_string (Headers.Ether.src p))

let test_icmp_ping_responder () =
  let d =
    driver
      "Idle -> pr :: ICMPPingResponder; pr [0] -> c :: Counter -> Discard; \
       pr [1] -> rest :: Counter -> Discard;"
  in
  let echo = Headers.Build.icmp_echo ~src_ip:0x0a000002 ~dst_ip:0x0a000001 () in
  Packet.pull echo 14;
  push_into d "pr" echo;
  check "replied" 1 (stat d "pr" "replies");
  check "reply type" 0 (Headers.Icmp.icmp_type ~off:20 echo);
  check "addressed back" 0x0a000002 (Headers.Ip.dst echo);
  check_bool "ip checksum" true (Headers.Ip.checksum_valid echo);
  check_bool "icmp checksum" true
    (Packet.checksum echo ~pos:20 ~len:(Packet.length echo - 20) = 0);
  (* non-echo traffic takes output 1 *)
  let udp = Headers.Build.udp ~src_ip:1 ~dst_ip:2 () in
  Packet.pull udp 14;
  push_into d "pr" udp;
  check "passed through" 1 (stat d "rest" "packets")

let test_host_ether_filter () =
  let d =
    driver
      "Idle -> f :: HostEtherFilter(00:00:c0:00:00:01); f [0] -> mine :: \
       Counter -> Discard; f [1] -> other :: Counter -> Discard;"
  in
  let to_eth e =
    Headers.Build.udp ~dst_eth:(Ethaddr.of_string_exn e) ~src_ip:1 ~dst_ip:2 ()
  in
  push_into d "f" (to_eth "00:00:c0:00:00:01");
  push_into d "f" (to_eth "00:00:c0:00:00:99");
  push_into d "f" (to_eth "ff:ff:ff:ff:ff:ff");
  check "for us + broadcast" 2 (stat d "mine" "packets");
  check "foreign" 1 (stat d "other" "packets")

(* --- a composed scenario: QoS-ish dual queue --------------------------------- *)

let test_priority_forwarding_pipeline () =
  (* Classify ICMP as high priority; UDP low; drain by priority. *)
  let d =
    driver
      "Idle -> cl :: IPClassifier(icmp, -); cl [0] -> hi :: Queue(10); cl \
       [1] -> lo :: Queue(10); hi -> ps :: PrioSched; lo -> [1] ps; ps -> \
       Idle;"
  in
  let udp = Headers.Build.udp ~src_ip:1 ~dst_ip:2 () in
  Packet.pull udp 14;
  let icmp = Headers.Build.icmp_echo ~src_ip:1 ~dst_ip:2 () in
  Packet.pull icmp 14;
  push_into d "cl" udp;
  push_into d "cl" icmp;
  let first = Option.get (pull_from d "ps") in
  check "icmp drained first" 1 (Headers.Ip.protocol first)

(* --- radix route lookup --------------------------------------------------------- *)

let route_anno d name dst =
  let p = Packet.create 60 in
  (Packet.anno p).Packet.dst_ip <- dst;
  push_into d name p;
  p

let test_radix_lookup () =
  let routes =
    "10.0.0.1/32 0, 10.0.0.0/24 1, 10.0.0.0/8 2, 0.0.0.0/0 10.9.9.9 3"
  in
  let d =
    driver
      (Printf.sprintf
         "Idle -> rt :: RadixIPLookup(%s); rt [0] -> a :: Counter -> \
          Discard; rt [1] -> b :: Counter -> Discard; rt [2] -> c :: \
          Counter -> Discard; rt [3] -> e :: Counter -> Discard;"
         routes)
  in
  ignore (route_anno d "rt" (Ipaddr.of_string_exn "10.0.0.1"));
  check "host" 1 (stat d "a" "packets");
  ignore (route_anno d "rt" (Ipaddr.of_string_exn "10.0.0.200"));
  check "/24" 1 (stat d "b" "packets");
  ignore (route_anno d "rt" (Ipaddr.of_string_exn "10.77.0.1"));
  check "/8" 1 (stat d "c" "packets");
  let p = route_anno d "rt" (Ipaddr.of_string_exn "99.0.0.1") in
  check "default" 1 (stat d "e" "packets");
  check "gateway annotation" (Ipaddr.of_string_exn "10.9.9.9")
    (Packet.anno p).Packet.dst_ip

let prop_radix_equals_linear =
  (* The trie and the linear scan implement the same longest-prefix
     semantics, for any contiguous-mask table. *)
  QCheck.Test.make ~name:"radix = linear lookup" ~count:100
    QCheck.(
      pair
        (list_of_size
           (Gen.int_range 1 12)
           (pair (int_bound 0xffffff) (int_range 0 32)))
        (small_list (int_bound 0xffffff)))
    (fun (routes, probes) ->
      QCheck.assume (routes <> []);
      let route_str =
        String.concat ", "
          (List.mapi
             (fun i (addr, len) ->
               Printf.sprintf "%s/%d %d"
                 (Ipaddr.to_string (addr * 257))
                 len (i mod 4))
             routes)
      in
      let mk cls =
        driver
          (Printf.sprintf
             "Idle -> rt :: %s(%s); rt [0] -> o0 :: Counter -> Discard; rt \
              [1] -> o1 :: Counter -> Discard; rt [2] -> o2 :: Counter -> \
              Discard; rt [3] -> o3 :: Counter -> Discard;"
             cls route_str)
      in
      let dl = mk "LinearIPLookup" and dr = mk "RadixIPLookup" in
      List.for_all
        (fun probe ->
          let dst = probe * 65521 land 0xffffffff in
          ignore (route_anno dl "rt" dst);
          ignore (route_anno dr "rt" dst);
          List.for_all
            (fun o -> stat dl "rt" "misses" = stat dr "rt" "misses"
                      && stat dl o "packets" = stat dr o "packets")
            [ "o0"; "o1"; "o2"; "o3" ])
        probes)

(* --- L4 checksums ----------------------------------------------------------------- *)

let test_l4_checksums () =
  let p = Headers.Build.udp ~src_ip:0x0a000001 ~dst_ip:0x0a000002 () in
  Packet.pull p 14;
  Headers.L4.update_udp p ~ip_off:0;
  check_bool "udp valid after update" true (Headers.L4.udp_valid p ~ip_off:0);
  Packet.set_u8 p 30 0x55 (* corrupt payload *);
  check_bool "udp invalid after corruption" false
    (Headers.L4.udp_valid p ~ip_off:0);
  let t =
    Headers.Build.tcp ~src_ip:1 ~dst_ip:2 ~src_port:80 ~dst_port:8080 ()
  in
  Packet.pull t 14;
  Headers.L4.update_tcp t ~ip_off:0;
  check_bool "tcp valid after update" true (Headers.L4.tcp_valid t ~ip_off:0);
  (* zero UDP checksum counts as valid (optional in IPv4) *)
  let z = Headers.Build.udp ~src_ip:1 ~dst_ip:2 () in
  Packet.pull z 14;
  check_bool "zero udp checksum ok" true (Headers.L4.udp_valid z ~ip_off:0)

(* --- IPRewriter -------------------------------------------------------------------- *)

let nat_driver () =
  driver
    "Idle -> rw :: IPRewriter(18.26.4.24 5000-5002 - -); Idle -> [1] rw; \
     rw [0] -> out :: Counter -> Discard; rw [1] -> back :: Counter -> \
     Discard;"

let private_udp ?(sport = 1234) () =
  let p =
    Headers.Build.udp ~src_ip:(Ipaddr.of_string_exn "192.168.0.5")
      ~dst_ip:(Ipaddr.of_string_exn "8.8.8.8") ~src_port:sport ~dst_port:53 ()
  in
  Packet.pull p 14;
  Headers.L4.update_udp p ~ip_off:0;
  p

let test_rewriter_forward () =
  let d = nat_driver () in
  let p = private_udp () in
  push_into d "rw" p;
  check "source rewritten" (Ipaddr.of_string_exn "18.26.4.24")
    (Headers.Ip.src p);
  check "port allocated" 5000 (Headers.Udp.src_port ~off:20 p);
  check "destination kept" (Ipaddr.of_string_exn "8.8.8.8") (Headers.Ip.dst p);
  check_bool "ip checksum" true (Headers.Ip.checksum_valid p);
  check_bool "udp checksum" true (Headers.L4.udp_valid p ~ip_off:0);
  check "one flow" 1 (stat d "rw" "flows");
  (* same flow reuses the mapping *)
  let q = private_udp () in
  push_into d "rw" q;
  check "same port" 5000 (Headers.Udp.src_port ~off:20 q);
  check "still one flow" 1 (stat d "rw" "flows");
  (* a different flow allocates the next port *)
  let r = private_udp ~sport:4321 () in
  push_into d "rw" r;
  check "next port" 5001 (Headers.Udp.src_port ~off:20 r);
  check "two flows" 2 (stat d "rw" "flows")

let test_rewriter_reply () =
  let d = nat_driver () in
  push_into d "rw" (private_udp ());
  (* a reply from 8.8.8.8 to the public address/port *)
  let reply =
    Headers.Build.udp ~src_ip:(Ipaddr.of_string_exn "8.8.8.8")
      ~dst_ip:(Ipaddr.of_string_exn "18.26.4.24") ~src_port:53 ~dst_port:5000
      ()
  in
  Packet.pull reply 14;
  Headers.L4.update_udp reply ~ip_off:0;
  (Option.get (Driver.element d "rw"))#push 1 reply;
  check "translated back to private host"
    (Ipaddr.of_string_exn "192.168.0.5")
    (Headers.Ip.dst reply);
  check "original port restored" 1234 (Headers.Udp.dst_port ~off:20 reply);
  check_bool "checksums" true
    (Headers.Ip.checksum_valid reply && Headers.L4.udp_valid reply ~ip_off:0);
  check "reply output" 1 (stat d "back" "packets")

let test_rewriter_drops_unknown_reply () =
  let d = nat_driver () in
  let stray =
    Headers.Build.udp ~src_ip:(Ipaddr.of_string_exn "8.8.8.8")
      ~dst_ip:(Ipaddr.of_string_exn "18.26.4.24") ~src_port:53 ~dst_port:5000
      ()
  in
  Packet.pull stray 14;
  (Option.get (Driver.element d "rw"))#push 1 stray;
  check "stray dropped" 0 (stat d "back" "packets");
  check_bool "drop counted" true (stat d "rw" "drops" > 0)

let test_rewriter_ignores_icmp () =
  let d = nat_driver () in
  let icmp = Headers.Build.icmp_echo ~src_ip:1 ~dst_ip:2 () in
  Packet.pull icmp 14;
  push_into d "rw" icmp;
  check "not forwarded" 0 (stat d "out" "packets")

(* --- trace replay / capture ------------------------------------------------------- *)

let test_trace_format_roundtrip () =
  let p1 = Headers.Build.udp ~src_ip:1 ~dst_ip:2 ()
  and p2 = Headers.Build.icmp_echo ~src_ip:3 ~dst_ip:4 () in
  let text = Oclick_packet.Trace.to_string [ (100, p1); (250, p2) ] in
  match Oclick_packet.Trace.of_string text with
  | Error e -> Alcotest.failf "trace parse: %s" e
  | Ok [ (t1, q1); (t2, q2) ] ->
      check "ts1" 100 t1;
      check "ts2" 250 t2;
      Alcotest.(check string) "bytes 1" (Packet.to_string p1) (Packet.to_string q1);
      Alcotest.(check string) "bytes 2" (Packet.to_string p2) (Packet.to_string q2)
  | Ok l -> Alcotest.failf "expected 2 packets, got %d" (List.length l)

let test_trace_errors () =
  check_bool "bad hex" true
    (Result.is_error (Oclick_packet.Trace.of_string "5 zz"));
  check_bool "bad timestamp" true
    (Result.is_error (Oclick_packet.Trace.of_string "x 00ff"));
  check_bool "comments fine" true
    (Oclick_packet.Trace.of_string "# hi\n\n" = Ok [])

let test_trace_replay_capture () =
  (* Replay a trace through a filter, capture the survivors, and read the
     capture back. *)
  let in_path = Filename.temp_file "oclick" ".trace"
  and out_path = Filename.temp_file "oclick" ".trace" in
  let mk_ip dst =
    let p = Headers.Build.udp ~src_ip:7 ~dst_ip:dst () in
    Packet.pull p 14;
    p
  in
  let oc = open_out in_path in
  output_string oc
    (Oclick_packet.Trace.to_string
       [ (1, mk_ip 0x0a000001); (2, mk_ip 0x0b000001); (3, mk_ip 0x0a000002) ]);
  close_out oc;
  let d =
    driver
      (Printf.sprintf
         "FromTrace(%s) -> f :: IPFilter(allow dst net 10.0.0.0/8, deny \
          all) -> ToTrace(%s) -> c :: Counter -> Discard;"
         in_path out_path)
  in
  let (_ : bool) = Driver.run_until_idle d in
  check "only 10/8 packets survive" 2 (stat d "c" "packets");
  let ic = open_in_bin out_path in
  let captured = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Oclick_packet.Trace.of_string captured with
  | Ok l -> check "capture has both" 2 (List.length l)
  | Error e -> Alcotest.failf "capture parse: %s" e);
  Sys.remove in_path;
  Sys.remove out_path

let prop_rewriter_checksums =
  (* For any flow, rewritten packets carry valid IP and UDP checksums and
     the reply direction restores the original endpoints exactly. *)
  QCheck.Test.make ~name:"IPRewriter keeps checksums valid" ~count:100
    QCheck.(
      quad (int_bound 0xffffff) (int_bound 0xffff) (int_bound 0xffffff)
        (int_bound 0xffff))
    (fun (srcn, sport, dstn, dport) ->
      QCheck.assume (sport > 0 && dport > 0);
      let d = nat_driver () in
      let src_ip = 0x0a000000 lor (srcn land 0xffffff)
      and dst_ip = 0x08000000 lor (dstn land 0xffffff) in
      let p =
        Headers.Build.udp ~src_ip ~dst_ip ~src_port:sport ~dst_port:dport ()
      in
      Packet.pull p 14;
      Headers.L4.update_udp p ~ip_off:0;
      push_into d "rw" p;
      let forward_ok =
        Headers.Ip.checksum_valid p
        && Headers.L4.udp_valid p ~ip_off:0
        && Headers.Ip.src p = Ipaddr.of_string_exn "18.26.4.24"
        && Headers.Ip.dst p = dst_ip
      in
      (* reply comes back to the mapped endpoint *)
      let mapped_port = Headers.Udp.src_port ~off:20 p in
      let reply =
        Headers.Build.udp ~src_ip:dst_ip
          ~dst_ip:(Ipaddr.of_string_exn "18.26.4.24")
          ~src_port:dport ~dst_port:mapped_port ()
      in
      Packet.pull reply 14;
      Headers.L4.update_udp reply ~ip_off:0;
      (Option.get (Driver.element d "rw"))#push 1 reply;
      forward_ok
      && Headers.Ip.checksum_valid reply
      && Headers.L4.udp_valid reply ~ip_off:0
      && Headers.Ip.dst reply = src_ip
      && Headers.Udp.dst_port ~off:20 reply = sport
      && Headers.Ip.src reply = dst_ip)

let () =
  Alcotest.run "extras"
    [
      ( "schedulers",
        [
          Alcotest.test_case "prio" `Quick test_prio_sched;
          Alcotest.test_case "round robin" `Quick test_round_robin_sched;
        ] );
      ( "switches",
        [
          Alcotest.test_case "round robin switch" `Quick
            test_round_robin_switch;
          Alcotest.test_case "hash switch" `Quick
            test_hash_switch_flow_affinity;
          Alcotest.test_case "front drop queue" `Quick test_front_drop_queue;
        ] );
      ( "encap",
        [
          Alcotest.test_case "check length" `Quick test_check_length;
          Alcotest.test_case "ip encap" `Quick test_ip_encap;
          Alcotest.test_case "udp/ip encap" `Quick test_udp_ip_encap;
          Alcotest.test_case "ether mirror" `Quick test_ether_mirror;
        ] );
      ( "host",
        [
          Alcotest.test_case "ping responder" `Quick test_icmp_ping_responder;
          Alcotest.test_case "ether filter" `Quick test_host_ether_filter;
        ] );
      ( "composition",
        [
          Alcotest.test_case "priority pipeline" `Quick
            test_priority_forwarding_pipeline;
        ] );
      ( "routing",
        [
          Alcotest.test_case "radix lookup" `Quick test_radix_lookup;
          QCheck_alcotest.to_alcotest prop_radix_equals_linear;
        ] );
      ("l4", [ Alcotest.test_case "checksums" `Quick test_l4_checksums ]);
      ( "rewriter",
        [
          Alcotest.test_case "forward" `Quick test_rewriter_forward;
          Alcotest.test_case "reply" `Quick test_rewriter_reply;
          Alcotest.test_case "unknown reply" `Quick
            test_rewriter_drops_unknown_reply;
          Alcotest.test_case "non-rewritable" `Quick test_rewriter_ignores_icmp;
          QCheck_alcotest.to_alcotest prop_rewriter_checksums;
        ] );
      ( "trace",
        [
          Alcotest.test_case "format round trip" `Quick
            test_trace_format_roundtrip;
          Alcotest.test_case "format errors" `Quick test_trace_errors;
          Alcotest.test_case "replay and capture" `Quick
            test_trace_replay_capture;
        ] );
    ]
