lib/elements/extras.ml: Args E Ethaddr Headers Hooks Ipaddr Packet Prelude Queue String
