lib/hw/testbed.ml: Array Btb Cost_model Engine Hashtbl Host List Nic Oclick_fault Oclick_graph Oclick_packet Oclick_runtime Option Pci Platform Printf String
