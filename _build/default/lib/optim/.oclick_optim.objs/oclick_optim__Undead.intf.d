lib/optim/undead.mli: Oclick_graph
