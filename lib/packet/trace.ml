let header = "# oclick trace v1"

let hex_chars = "0123456789abcdef"

(* Render straight into the caller's buffer: two table lookups per byte,
   no per-byte [Printf.sprintf] closure or intermediate string list. *)
let add_hex_of_packet buf p =
  for i = 0 to Packet.length p - 1 do
    let b = Packet.get_u8 p i in
    Buffer.add_char buf hex_chars.[b lsr 4];
    Buffer.add_char buf hex_chars.[b land 0xf]
  done

let append_packet buf ts p =
  Buffer.add_string buf (string_of_int ts);
  Buffer.add_char buf ' ';
  add_hex_of_packet buf p;
  Buffer.add_char buf '\n'

let to_string packets =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter (fun (ts, p) -> append_packet buf ts p) packets;
  Buffer.contents buf

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Decode straight into the buffer the packet will own — one allocation
   and zero copies ([Packet.grab] takes ownership), with the default
   head/tailroom decoded around so replaying elements can still push
   link headers without reallocating. *)
let packet_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else begin
    let room = Packet.default_headroom in
    let data = Bytes.make (room + (n / 2) + room) '\000' in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      match (hex_digit s.[2 * i], hex_digit s.[(2 * i) + 1]) with
      | Some hi, Some lo ->
          Bytes.unsafe_set data (room + i) (Char.unsafe_chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then begin
      let p = Packet.grab ~headroom:room data in
      Packet.take p room;
      Some p
    end
    else None
  end

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1) acc rest
        else begin
          match String.index_opt line ' ' with
          | None -> Error (Printf.sprintf "trace line %d: missing timestamp" lineno)
          | Some sp -> (
              let ts_s = String.sub line 0 sp
              and hex = String.sub line (sp + 1) (String.length line - sp - 1) in
              match (int_of_string_opt ts_s, packet_of_hex (String.trim hex)) with
              | Some ts, Some p ->
                  (Packet.anno p).Packet.timestamp_ns <- ts;
                  go (lineno + 1) ((ts, p) :: acc) rest
              | None, _ ->
                  Error (Printf.sprintf "trace line %d: bad timestamp %S" lineno ts_s)
              | _, None ->
                  Error (Printf.sprintf "trace line %d: bad hex data" lineno))
        end
  in
  go 1 [] lines
