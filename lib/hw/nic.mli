(** The simulated network controller (DEC 21140 Tulip model, §8.1/§8.4).

    Receive side: frames arrive from the wire into an on-card FIFO; a DMA
    engine fetches a descriptor over PCI and, if one is ready, copies the
    frame into the host RX ring. A frame whose descriptor is not ready
    after two tries is dropped as a {e missed frame} (flushed with no
    further PCI impact); a frame arriving to a full FIFO is a {e FIFO
    overflow}, the cheapest possible drop. The CPU ([PollDevice]) takes
    frames from the RX ring, implicitly refilling descriptors.

    Transmit side: the CPU ([ToDevice]) appends to the TX ring; the card
    DMAs each frame over PCI and puts it on the wire at link speed; the
    descriptor frees on transmit completion.

    The same model serves the Pro/1000 with gigabit wire speed. *)

type outcomes = {
  mutable o_wire_rx : int;  (** frames offered by the attached host *)
  mutable o_fifo_overflow : int;
  mutable o_missed_frame : int;
  mutable o_rx_dma : int;  (** frames that reached the RX ring *)
  mutable o_tx_sent : int;  (** frames put on the wire *)
}

class tulip :
  engine:Engine.t
  -> pci:Pci.t
  -> platform:Platform.t
  -> name:string
  -> ?bus_id:int (* the card's arbitration identity on its bus *)
  -> ?rx_ring:int (* default 32 *)
  -> ?tx_ring:int (* default 32 *)
  -> ?fifo_bytes:int (* default 4096 *)
  -> ?dma_stall:(int * int) list
     (* injected DMA-stall windows, (start_ns, len_ns): both DMA engines
        freeze inside a window — FIFO-overflow bursts on receive, ring
        backlog on transmit *)
  -> deliver:(Oclick_packet.Packet.t -> unit)
  -> on_cpu_rx:(unit -> unit)
  -> on_cpu_tx:(unit -> unit)
  -> unit
  -> object
       inherit Oclick_runtime.Netdevice.t
       method wire_arrive : Oclick_packet.Packet.t -> unit
       (** A frame arrives from the attached host's wire. *)

       method outcomes : outcomes

       method buffered : int
       (** Frames currently held on card or in the DMA rings — the NIC's
           contribution to the conservation ledger's residual term. *)
     end
