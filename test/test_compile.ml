(* Tests for the whole-graph datapath compiler (lib/compile): the
   compiled router must be observationally identical to the interpreted
   one — same emitted frames, same drop reasons, same contained faults,
   same conservation ledger, and the same per-element observability
   ledger under the testbed's stateful cost model — across batch sizes
   and under seeded fault injection. Plus the conservative-rejection
   and installation-stats surface. *)

module Fault = Oclick_fault
module Driver = Oclick_runtime.Driver
module Hooks = Oclick_runtime.Hooks
module Netdevice = Oclick_runtime.Netdevice
module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform
module Obs = Oclick_obs

let () = Oclick_elements.register_all ()
let () = Oclick_compile.register ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let batches = [ 1; 8; 32 ]

let ip_router_graph ?(n = 2) () =
  Oclick.Ip_router.graph
    (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces n))

(* --- pure-runtime fuzz differential ----------------------------------- *)

(* A deterministic traffic script, seeded like test_fault's fuzz rounds:
   a mix of injector-mangled UDP and raw random bytes, with interleaved
   scheduling points. The same script replays against the interpreted
   and the compiled instantiation of the same graph. *)
type step = Inject of int * Packet.t | RunOnce

let make_script seed =
  let plan =
    match
      Fault.Plan.parse ~seed
        "ttl0=0.15,badcksum=0.15,badlen=0.1,runt=0.1,corrupt=0.3,truncate=0.2"
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  let inj = Fault.Injector.create plan in
  let rng = Fault.Injector.stream inj "fuzz-bytes" in
  let steps = ref [] in
  for _ = 1 to 40 do
    let iface = Fault.Rng.int rng 2 in
    let p =
      if Fault.Rng.coin rng 0.3 then begin
        let len = 1 + Fault.Rng.int rng 200 in
        let p = Packet.create len in
        for i = 0 to len - 1 do
          Packet.set_u8 p i (Fault.Rng.int rng 256)
        done;
        p
      end
      else begin
        let dst_ip =
          if Fault.Rng.coin rng 0.5 then "10.0.1.2" else "10.0.0.2"
        in
        let p =
          Headers.Build.udp
            ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
            ~dst_eth:
              (Ethaddr.of_string_exn
                 (Printf.sprintf "00:00:c0:00:%02x:01" iface))
            ~src_ip:(Ipaddr.of_octets 10 0 iface 2)
            ~dst_ip:(Ipaddr.of_string_exn dst_ip)
            ()
        in
        Fault.Injector.mangle_tx inj ~stream:"fuzz-tx" p;
        Fault.Injector.mangle_wire inj ~stream:"fuzz-tx" p;
        p
      end
    in
    steps := Inject (iface, p) :: !steps;
    if Fault.Rng.coin rng 0.25 then steps := RunOnce :: !steps
  done;
  List.rev !steps

type outcome = {
  o_emitted : string list array;  (** raw frames per device, in order *)
  o_drops : (string * int) list;
  o_spawns : int;
  o_faults : int;
  o_residual : int;
  o_injected : int;
}

let frame_bytes p = Packet.to_string p

let play ~batch ~compile script =
  let drops = Hashtbl.create 8 and spawns = ref 0 and faults = ref 0 in
  let hooks =
    {
      Hooks.null with
      Hooks.on_drop =
        (fun ~idx:_ ~cls:_ ~reason _ ->
          Hashtbl.replace drops reason
            (1 + Option.value ~default:0 (Hashtbl.find_opt drops reason)));
      on_spawn = (fun ~idx:_ ~cls:_ _ -> incr spawns);
      on_fault = (fun ~idx:_ ~cls:_ ~reason:_ -> incr faults);
    }
  in
  let devs =
    Array.init 2 (fun i ->
        new Netdevice.queue_device (Printf.sprintf "eth%d" i) ())
  in
  let devices =
    Array.to_list (Array.map (fun d -> (d :> Netdevice.t)) devs)
  in
  let d =
    match
      Driver.instantiate ~hooks ~devices ~batch ~compile
        (ip_router_graph ())
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "instantiate (compile=%b): %s" compile e
  in
  let injected = ref 0 in
  List.iter
    (function
      | Inject (iface, p) ->
          incr injected;
          devs.(iface)#inject (Packet.clone p)
      | RunOnce -> ignore (Driver.run_tasks_once d))
    script;
  check_bool "router goes idle" true (Driver.run_until_idle d);
  let emitted =
    Array.map
      (fun (dev : Netdevice.queue_device) ->
        let rec drain acc =
          match dev#collect with
          | Some p -> drain (frame_bytes p :: acc)
          | None -> List.rev acc
        in
        drain [])
      devs
  in
  let residual = ref 0 in
  for i = 0 to Driver.size d - 1 do
    List.iter
      (fun (k, v) ->
        if k = "length" || k = "pending" then residual := !residual + v)
      (Driver.element_at d i)#stats
  done;
  {
    o_emitted = emitted;
    o_drops =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) drops []);
    o_spawns = !spawns;
    o_faults = !faults;
    o_residual = !residual;
    o_injected = !injected;
  }

let check_outcomes_equal ~ctx a b =
  let label s = Printf.sprintf "%s: %s" ctx s in
  Alcotest.(check (list (pair string int))) (label "drop reasons") a.o_drops
    b.o_drops;
  check (label "spawns") a.o_spawns b.o_spawns;
  check (label "contained faults") a.o_faults b.o_faults;
  check (label "residual") a.o_residual b.o_residual;
  Array.iteri
    (fun i frames ->
      Alcotest.(check (list string))
        (label (Printf.sprintf "frames out eth%d" i))
        frames b.o_emitted.(i))
    a.o_emitted;
  (* both sides individually conserve packets *)
  List.iter
    (fun (o : outcome) ->
      let births = o.o_injected + o.o_spawns in
      let drops = List.fold_left (fun a (_, n) -> a + n) 0 o.o_drops in
      let emitted =
        Array.fold_left (fun a l -> a + List.length l) 0 o.o_emitted
      in
      check (label "conservation") births (emitted + drops + o.o_residual))
    [ a; b ]

let test_fuzz_differential () =
  List.iter
    (fun batch ->
      for seed = 1 to 8 do
        let script = make_script seed in
        let interp = play ~batch ~compile:false script in
        let compiled = play ~batch ~compile:true script in
        check_outcomes_equal
          ~ctx:(Printf.sprintf "seed %d batch %d" seed batch)
          interp compiled
      done)
    batches

(* --- testbed differential under seeded faults -------------------------- *)

let testbed_plan =
  "seed=42,corrupt=0.01,truncate=0.005,ttl0=0.02,badcksum=0.03,badlen=0.01,\
   runt=0.01,nic-stall=eth1@35000:2000,pci-stall=0@40000:1000"

let testbed_run ?obs ~batch ~compile () =
  let plan =
    match Fault.Plan.parse testbed_plan with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  match
    Testbed.run ~duration_ms:20 ~warmup_ms:10 ~batch ~compile ?obs
      ~platform:Platform.p0
      ~graph:(ip_router_graph ~n:8 ())
      ~fault:plan ~input_pps:100_000 ()
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "testbed (compile=%b): %s" compile e

(* The compiled path reports the identical per-hop event sequence to the
   cost hooks, so the *entire* result record — forwarding rate, modeled
   per-packet nanoseconds, outcome totals, drop reasons, fault counts,
   conservation ledger — must be equal, not merely close. *)
let test_testbed_differential_under_faults () =
  List.iter
    (fun batch ->
      let a = testbed_run ~batch ~compile:false () in
      let b = testbed_run ~batch ~compile:true () in
      check_bool
        (Printf.sprintf "batch %d: identical testbed results" batch)
        true (a = b);
      check_bool
        (Printf.sprintf "batch %d: faults were injected" batch)
        true
        (b.Testbed.r_fault_counts <> []))
    batches

(* --- observability-ledger equality ------------------------------------- *)

let test_obs_ledger_equality () =
  List.iter
    (fun batch ->
      let obs_i = Obs.create () and obs_c = Obs.create () in
      let ri = testbed_run ~obs:obs_i ~batch ~compile:false () in
      let rc = testbed_run ~obs:obs_c ~batch ~compile:true () in
      let ctx = Printf.sprintf "batch %d" batch in
      check_bool (ctx ^ ": results equal") true (ri = rc);
      check
        (ctx ^ ": total attributed sim ns")
        (Obs.total_sim_ns obs_i) (Obs.total_sim_ns obs_c);
      check_bool
        (ctx ^ ": per-element snapshots equal")
        true
        (Obs.snapshot obs_i = Obs.snapshot obs_c);
      check_bool (ctx ^ ": ledger is non-trivial") true
        (Obs.total_sim_ns obs_i > 0))
    batches

(* --- conservative rejection and stats ---------------------------------- *)

let test_self_loop_rejected () =
  match
    Driver.of_string ~compile:true
      "InfiniteSource(LIMIT 1) -> t :: Tee(2) -> Discard; t [1] -> t;"
  with
  | Ok _ -> Alcotest.fail "self-loop config must not compile"
  | Error e ->
      let mem sub =
        let n = String.length sub and m = String.length e in
        let rec go i = i + n <= m && (String.sub e i n = sub || go (i + 1)) in
        go 0
      in
      check_bool "names the offending element" true (mem "t: self-loop");
      check_bool "one-line diagnostic" true (not (String.contains e '\n'))

let test_install_stats () =
  let devices =
    List.init 2 (fun i ->
        (new Netdevice.queue_device (Printf.sprintf "eth%d" i) ()
          :> Netdevice.t))
  in
  match Driver.instantiate ~devices (ip_router_graph ()) with
  | Error e -> Alcotest.failf "instantiate: %s" e
  | Ok d -> (
      match Oclick_compile.install d with
      | Error e -> Alcotest.failf "install: %s" e
      | Ok st ->
          check_bool "wired connections" true (st.Oclick_compile.st_connections > 0);
          check_bool "fused a chain" true (st.Oclick_compile.st_fused > 0);
          (* the ICMPError back edges keep some dynamic fallbacks alive *)
          check_bool "fallbacks counted" true
            (st.Oclick_compile.st_fallbacks >= 0))

let () =
  Alcotest.run "compile"
    [
      ( "differential",
        [
          Alcotest.test_case "pure-runtime fuzz" `Quick test_fuzz_differential;
          Alcotest.test_case "testbed under faults" `Quick
            test_testbed_differential_under_faults;
          Alcotest.test_case "obs ledger equality" `Quick
            test_obs_ledger_equality;
        ] );
      ( "surface",
        [
          Alcotest.test_case "self-loop rejected" `Quick
            test_self_loop_rejected;
          Alcotest.test_case "install stats" `Quick test_install_stats;
        ] );
    ]
