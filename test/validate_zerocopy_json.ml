(* Schema validation for the zero-copy memory benchmark's JSON, used by
   the @zerocopy-smoke alias: reads BENCH_zerocopy.json (path argument,
   or stdin) and checks the shape the plotting/CI side depends on — all
   three variants present and loss-free, the slab variant actually
   carrying every frame off-heap, its minor-heap allocation per
   forwarded packet under the near-zero ceiling, and the slab-over-scalar
   speedup bar cleared. Wall-clock ratios on a smoke budget are a single
   short unwarmed window, so the bar is 1x there (no regression); full
   runs must clear the 1.3x acceptance bar. The allocation ceiling is
   budget-independent — descriptor recycling allocates nothing per
   packet regardless of how many packets flow — so it is enforced on
   both. Exits 1 with a one-line diagnostic on the first violation. *)

module Json = Oclick_obs.Json

(* The slab path's steady-state allocation budget, in minor-heap words
   per forwarded packet, end to end through the interpreted fig8 graph.
   The packet layer itself is exactly zero (off-heap payload, free-list
   recycling, closure-free accessors — enforced separately below); the
   residue is per-batch interpreter bookkeeping (work-charge boxes,
   flush closures) that amortizes below one word per packet at batch
   32. The scalar baseline runs ~50 words per packet (fresh buffer +
   descriptor per allocation), so the ceiling cleanly separates the
   recycling path from the allocating one. *)
let slab_words_ceiling = 8.0

(* The isolated packet-layer lifecycle (pool alloc, blit, word reads,
   checksum, recycle) must allocate nothing at all; anything above
   rounding noise means a box crept back into the representation. *)
let packet_layer_ceiling = 0.5

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit 1)
    fmt

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let number label = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> die "%s: not a number" label

let get label obj field =
  match Json.member field obj with
  | Some v -> v
  | None -> die "%s: missing %S" label field

let bool_field label obj field =
  match get label obj field with
  | Json.Bool b -> b
  | _ -> die "%s: %S is not a bool" label field

let check_variant ~label v =
  let name =
    match get label v "name" with
    | Json.String s -> s
    | _ -> die "%s: variant name is not a string" label
  in
  let label = Printf.sprintf "%s/%s" label name in
  let offered = number label (get label v "offered") in
  let forwarded = number label (get label v "forwarded") in
  if forwarded < 1.0 then die "%s: nothing forwarded" label;
  if forwarded <> offered then
    die "%s: lossy run (%.0f/%.0f)" label forwarded offered;
  if number label (get label v "pps") <= 0.0 then
    die "%s: non-positive packet rate" label;
  if number label (get label v "minor_words_per_packet") < 0.0 then
    die "%s: negative allocation rate" label;
  let slab = bool_field label v "slab" in
  if slab && not (bool_field label v "pool") then
    die "%s: slab variant without a pool" label;
  if slab then begin
    (* The whole point: every frame of the slab variant must have been
       carried off-heap end to end. *)
    let frac = number label (get label v "off_heap_fraction") in
    if frac < 1.0 then
      die "%s: only %.1f%% of frames stayed off-heap" label (100.0 *. frac)
  end;
  name

let () =
  let input =
    if Array.length Sys.argv > 1 then (
      let ic = open_in Sys.argv.(1) in
      let s = read_all ic in
      close_in ic;
      s)
    else read_all stdin
  in
  let doc =
    match Json.of_string input with
    | Ok v -> v
    | Error e -> die "not valid JSON: %s" e
  in
  (match Json.member "section" doc with
  | Some (Json.String "zerocopy") -> ()
  | _ -> die "missing section=\"zerocopy\"");
  let smoke = bool_field "doc" doc "smoke" in
  let names =
    match get "doc" doc "variants" with
    | Json.List vs -> List.map (check_variant ~label:"variant") vs
    | _ -> die "variants is not a list"
  in
  List.iter
    (fun want ->
      if not (List.mem want names) then die "missing variant %S" want)
    [ "scalar"; "batch 32 + heap pool"; "batch 32 + slab pool" ];
  let words = number "doc" (get "doc" doc "slab_minor_words_per_packet") in
  if words > slab_words_ceiling then
    die "slab path allocates %.1f minor words/packet (ceiling %.0f)" words
      slab_words_ceiling;
  let layer = number "doc" (get "doc" doc "packet_layer_words_slab") in
  if layer > packet_layer_ceiling then
    die "packet layer allocates %.2f minor words/packet (ceiling %.1f)" layer
      packet_layer_ceiling;
  let speedup = number "doc" (get "doc" doc "speedup_vs_scalar") in
  let bar = if smoke then 1.0 else 1.3 in
  if speedup < bar then
    die "slab speedup %.2fx vs scalar below the %.1fx bar" speedup bar;
  print_endline "ok"
