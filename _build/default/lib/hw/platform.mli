(** The evaluation hardware platforms (paper §8.1, §8.5). *)

type nic_kind = Tulip_100 | Pro1000
(** DEC 21140 Tulip 100 Mbit/s, or Intel Pro/1000 F gigabit. The Pro/1000
    requires programmed-I/O instructions per batch of packets (§8.5). *)

type t = {
  p_name : string;
  p_cpu_mhz : int;
  p_pci_mhz : int;  (** 33 or 66 *)
  p_pci_bits : int;  (** 32 or 64 *)
  p_pci_buses : int;  (** independent PCI buses *)
  p_nic : nic_kind;
  p_nports : int;  (** router network interfaces *)
  p_link_mbps : int;
  p_cpu_scale : float;
      (** relative cycles-per-instruction factor vs. the P-III (P3's
          Athlon executes the same work in fewer effective cycles) *)
}

val p0 : t
(** 700 MHz P-III, 8 Tulips on two 32/33 buses — §8.1's router host. *)

val p1 : t
(** 800 MHz P-III, 2 Pro/1000s, 32-bit/33 MHz PCI. *)

val p2 : t
(** As P1 with 64-bit/66 MHz PCI. *)

val p3 : t
(** 1.6 GHz Athlon MP, 64-bit/66 MHz PCI. *)

val all : t list
val ns_of_cycles : t -> int -> int
val pci_bytes_per_sec : t -> int
val wire_ns_per_frame : t -> frame_bytes:int -> int
(** Time on the wire including preamble and inter-frame gap (§8.1). *)

val max_host_rate_pps : t -> int
(** What one source host can generate (147,900 64-byte pps on the Tulip
    testbed; a million on the gigabit hosts). *)
