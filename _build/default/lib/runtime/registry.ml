type constructor = string -> Element.t

type entry = { spec : Oclick_graph.Spec.t; ctor : constructor }

let table : (string, entry) Hashtbl.t = Hashtbl.create 64

let register ?(replace = false) ~spec cls ctor =
  if (not replace) && Hashtbl.mem table cls then
    invalid_arg (Printf.sprintf "Registry.register: class %S exists" cls);
  Hashtbl.replace table cls { spec; ctor }

let unregister cls = Hashtbl.remove table cls
let find cls = Option.map (fun e -> e.ctor) (Hashtbl.find_opt table cls)
let spec cls = Option.map (fun e -> e.spec) (Hashtbl.find_opt table cls)
let spec_table = spec

let all_classes () =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])

let snapshot () =
  let saved = Hashtbl.copy table in
  fun () ->
    Hashtbl.reset table;
    Hashtbl.iter (Hashtbl.replace table) saved
