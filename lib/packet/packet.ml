type anno = {
  mutable paint : int;
  mutable dst_ip : Ipaddr.t;
  mutable fix_ip_src : bool;
  mutable device : int;
  mutable timestamp_ns : int;
  mutable link_type : link_type;
}

and link_type = To_host | Broadcast | Multicast | To_other

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Unsafe fixed-width word loads/stores: compiler primitives compiling to
   single (unaligned-capable) native memory instructions. All bounds
   checking is hoisted to one range check per accessor call; the 16-bit
   primitives are native-endian, converted to network order with a
   register byte swap. *)
external bs_get16u : bigstring -> int -> int = "%caml_bigstring_get16u"
external bs_set16u : bigstring -> int -> int -> unit = "%caml_bigstring_set16u"
external by_get16u : bytes -> int -> int = "%caml_bytes_get16u"
external by_set16u : bytes -> int -> int -> unit = "%caml_bytes_set16u"
external st_get16u : string -> int -> int = "%caml_string_get16u"
external swap16 : int -> int = "%bswap16"

let[@inline] to_be16 v = if Sys.big_endian then v else swap16 v

let empty_big : bigstring =
  Bigarray.(Array1.create char c_layout 0)

let empty_bytes = Bytes.create 0

(* --- buffer arena -------------------------------------------------------

   A pool's packet payloads live in one off-heap slab (a Bigarray char
   array) carved into fixed-size buffers. The GC never traces or moves
   payload bytes; a packet is just a descriptor pointing into the slab.

   The slot free list is a Treiber stack over slot indices, packed with a
   version tag into a single atomic int so concurrent pop/push from
   different domains are ABA-safe. The owning pool's domain is the common
   caller, but [clone] may allocate a slot from — and descriptor
   finalizers may free a slot back to — any domain, which is what makes
   cross-domain packet handoff copy-free: the descriptor crosses the ring,
   the payload bytes never move, and the slot eventually returns to its
   owning arena no matter which pool recycled the descriptor. *)
module Arena = struct
  let idx_bits = 25 (* up to ~33M slots per arena *)
  let idx_mask = (1 lsl idx_bits) - 1

  type t = {
    slab : bigstring;
    buf_size : int;
    nbufs : int;
    next : int array; (* successor slot+1 in the free stack; 0 = end *)
    top : int Atomic.t; (* (version lsl idx_bits) lor (slot+1); low = 0 empty *)
    free_count : int Atomic.t;
  }

  let create ~buf_size ~nbufs =
    if buf_size <= 0 || nbufs <= 0 || nbufs >= idx_mask then
      invalid_arg "Packet.Arena.create";
    let slab = Bigarray.(Array1.create char c_layout (buf_size * nbufs)) in
    let next = Array.init nbufs (fun i -> if i + 1 < nbufs then i + 2 else 0) in
    {
      slab;
      buf_size;
      nbufs;
      next;
      top = Atomic.make 1 (* version 0, head = slot 0 *);
      free_count = Atomic.make nbufs;
    }

  let rec alloc_slot a =
    let cur = Atomic.get a.top in
    let idx1 = cur land idx_mask in
    if idx1 = 0 then -1
    else
      let slot = idx1 - 1 in
      let nxt = a.next.(slot) in
      let ver = ((cur lsr idx_bits) + 1) land idx_mask in
      if Atomic.compare_and_set a.top cur ((ver lsl idx_bits) lor nxt) then begin
        Atomic.decr a.free_count;
        slot
      end
      else alloc_slot a

  let rec free_slot a slot =
    let cur = Atomic.get a.top in
    a.next.(slot) <- cur land idx_mask;
    let ver = ((cur lsr idx_bits) + 1) land idx_mask in
    if Atomic.compare_and_set a.top cur ((ver lsl idx_bits) lor (slot + 1))
    then Atomic.incr a.free_count
    else free_slot a slot

  let free_slots a = Atomic.get a.free_count
end

(* The packet descriptor. Exactly one representation is active:
   - off-heap: [big] is the arena slab, [base] this packet's buffer
     offset within it, [arena] the slot's owner (for freeing);
   - heap fallback: [buf] is a GC-managed Bytes buffer.
   [cap] is the buffer capacity in both cases, and [head]/[len] delimit
   the live data window within the buffer. *)
type t = {
  mutable big : bigstring;
  mutable base : int;
  mutable cap : int;
  mutable buf : bytes;
  mutable off_heap : bool;
  mutable arena : Arena.t option;
  mutable has_fin : bool;
  mutable head : int;
  mutable len : int;
  mutable in_pool : bool;
  mutable id : int;
  anno : anno;
}

(* Packet identities are process-global serial numbers: every packet that
   comes into existence — created, cloned, or reused from a pool — gets a
   fresh one, so a trace can follow an individual packet even when its
   buffer is recycled. The counter is atomic so packets born on different
   domains (the sharded datapath) still get distinct identities. *)
let id_counter = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add id_counter 1 + 1

let fresh_anno () =
  {
    paint = -1;
    dst_ip = 0;
    fix_ip_src = false;
    device = -1;
    timestamp_ns = 0;
    link_type = To_host;
  }

let default_headroom = 34

(* --- cross-store blits -------------------------------------------------- *)

(* All [blit_*] helpers assume ranges already validated by the caller. *)

let blit_big_to_bytes (src : bigstring) srcoff dst dstoff len =
  let i = ref 0 in
  while !i + 2 <= len do
    by_set16u dst (dstoff + !i) (bs_get16u src (srcoff + !i));
    i := !i + 2
  done;
  if !i < len then
    Bytes.unsafe_set dst (dstoff + !i)
      (Bigarray.Array1.unsafe_get src (srcoff + !i))

let blit_bytes_to_big src srcoff (dst : bigstring) dstoff len =
  let i = ref 0 in
  while !i + 2 <= len do
    bs_set16u dst (dstoff + !i) (by_get16u src (srcoff + !i));
    i := !i + 2
  done;
  if !i < len then
    Bigarray.Array1.unsafe_set dst (dstoff + !i)
      (Bytes.unsafe_get src (srcoff + !i))

let blit_string_to_big src srcoff (dst : bigstring) dstoff len =
  let i = ref 0 in
  while !i + 2 <= len do
    bs_set16u dst (dstoff + !i) (st_get16u src (srcoff + !i));
    i := !i + 2
  done;
  if !i < len then
    Bigarray.Array1.unsafe_set dst (dstoff + !i)
      (String.unsafe_get src (srcoff + !i))

(* Slab-to-slab copy: a single memmove (overlap-safe), not a byte loop. *)
let blit_big_to_big (src : bigstring) srcoff (dst : bigstring) dstoff len =
  if len > 0 then
    Bigarray.Array1.(blit (sub src srcoff len) (sub dst dstoff len))

let fill_zero_big (big : bigstring) off len =
  let stop = off + len in
  let i = ref off in
  while !i + 2 <= stop do
    bs_set16u big !i 0;
    i := !i + 2
  done;
  if !i < stop then Bigarray.Array1.unsafe_set big !i '\000'

(* --- slot lifecycle ----------------------------------------------------- *)

(* Give an off-heap descriptor's slot back to its owning arena and drop
   to the (empty) heap representation. Safe from any domain. *)
let release_slot p =
  if p.off_heap then begin
    (match p.arena with
    | Some a -> Arena.free_slot a (p.base / a.Arena.buf_size)
    | None -> ());
    p.off_heap <- false;
    p.big <- empty_big;
    p.base <- 0;
    p.arena <- None
  end

(* Descriptors that die unrecycled (dropped on the floor, or still live
   when their pool is abandoned) must not leak their arena slot: a
   one-time finalizer frees the slot if the descriptor is still off-heap
   at collection. Freeing is an atomic push, so it is safe from whichever
   domain runs the GC. Descriptors whose slot was already released (grow
   or realign demoted them to heap Bytes) are off_heap = false and the
   finalizer is a no-op. *)
let slot_finaliser p =
  if p.off_heap then
    match p.arena with
    | Some a -> Arena.free_slot a (p.base / a.Arena.buf_size)
    | None -> ()

let attach_fin p =
  if not p.has_fin then begin
    p.has_fin <- true;
    Gc.finalise slot_finaliser p
  end

(* --- constructors ------------------------------------------------------- *)

let create ?(headroom = default_headroom) ?(tailroom = default_headroom) len =
  if len < 0 || headroom < 0 || tailroom < 0 then invalid_arg "Packet.create";
  let total = headroom + len + tailroom in
  {
    big = empty_big;
    base = 0;
    cap = total;
    buf = Bytes.make total '\000';
    off_heap = false;
    arena = None;
    has_fin = false;
    head = headroom;
    len;
    in_pool = false;
    id = fresh_id ();
    anno = fresh_anno ();
  }

(* One allocation and one payload copy: the buffer is created uninitialized,
   the head/tail scratch regions zeroed, and the payload blitted once. *)
let of_window ?(headroom = default_headroom) ?(tailroom = default_headroom)
    ~len blit_payload =
  if headroom < 0 || tailroom < 0 then invalid_arg "Packet.of_bytes";
  let total = headroom + len + tailroom in
  let buf = Bytes.create total in
  Bytes.fill buf 0 headroom '\000';
  blit_payload buf headroom;
  Bytes.fill buf (headroom + len) tailroom '\000';
  {
    big = empty_big;
    base = 0;
    cap = total;
    buf;
    off_heap = false;
    arena = None;
    has_fin = false;
    head = headroom;
    len;
    in_pool = false;
    id = fresh_id ();
    anno = fresh_anno ();
  }

let of_bytes ?headroom ?tailroom data =
  let len = Bytes.length data in
  of_window ?headroom ?tailroom ~len (fun buf off -> Bytes.blit data 0 buf off len)

let of_string ?headroom ?tailroom s =
  let len = String.length s in
  of_window ?headroom ?tailroom ~len (fun buf off ->
      Bytes.blit_string s 0 buf off len)

let grab ?(headroom = 0) data =
  if headroom < 0 || headroom > Bytes.length data then invalid_arg "Packet.grab";
  {
    big = empty_big;
    base = 0;
    cap = Bytes.length data;
    buf = data;
    off_heap = false;
    arena = None;
    has_fin = false;
    head = headroom;
    len = Bytes.length data - headroom;
    in_pool = false;
    id = fresh_id ();
    anno = fresh_anno ();
  }

let length p = p.len
let anno p = p.anno
let id p = p.id
let is_off_heap p = p.off_heap
let headroom p = p.head
let tailroom p = p.cap - p.head - p.len
let data_offset p = if p.off_heap then p.base + p.head else p.head

let clone p =
  let used = p.head + p.len in
  let cloned_anno p = { p.anno with paint = p.anno.paint } in
  if p.off_heap then begin
    (* Prefer a sibling slot in the same arena: descriptor plus one
       slab-to-slab memmove of the used region. [alloc_slot] is safe
       from any domain, so cloning a packet in flight across a ring cut
       needs no coordination with the arena's owning pool. *)
    match p.arena with
    | Some a -> (
        match Arena.alloc_slot a with
        | -1 ->
            (* Arena exhausted: degrade to a heap-Bytes clone. *)
            let buf = Bytes.make p.cap '\000' in
            blit_big_to_bytes p.big p.base buf 0 used;
            {
              big = empty_big;
              base = 0;
              cap = p.cap;
              buf;
              off_heap = false;
              arena = None;
              has_fin = false;
              head = p.head;
              len = p.len;
              in_pool = false;
              id = fresh_id ();
              anno = cloned_anno p;
            }
        | slot ->
            let base = slot * a.Arena.buf_size in
            blit_big_to_big p.big p.base a.Arena.slab base used;
            let q =
              {
                big = a.Arena.slab;
                base;
                cap = a.Arena.buf_size;
                buf = empty_bytes;
                off_heap = true;
                arena = Some a;
                has_fin = false;
                head = p.head;
                len = p.len;
                in_pool = false;
                id = fresh_id ();
                anno = cloned_anno p;
              }
            in
            attach_fin q;
            q)
    | None -> assert false
  end
  else
    {
      big = empty_big;
      base = 0;
      cap = p.cap;
      buf = Bytes.copy p.buf;
      off_heap = false;
      arena = None;
      has_fin = false;
      head = p.head;
      len = p.len;
      in_pool = false;
      id = fresh_id ();
      anno = cloned_anno p;
    }

(* --- window adjustment --------------------------------------------------- *)

let grow p ~extra_head ~extra_tail =
  (* Preserve the data window and add room at both ends: shift within the
     slab buffer when the new layout still fits its capacity, otherwise
     reallocate as heap Bytes (the slab-upgrade path never grows a slot;
     oversized packets demote to the GC'd representation). *)
  let total = extra_head + p.len + extra_tail in
  if p.off_heap && total <= p.cap then begin
    blit_big_to_big p.big (p.base + p.head) p.big (p.base + extra_head) p.len;
    p.head <- extra_head
  end
  else begin
    let buf = Bytes.make total '\000' in
    if p.off_heap then
      blit_big_to_bytes p.big (p.base + p.head) buf extra_head p.len
    else Bytes.blit p.buf p.head buf extra_head p.len;
    release_slot p;
    p.buf <- buf;
    p.cap <- total;
    p.head <- extra_head
  end

let push p n =
  if n < 0 then invalid_arg "Packet.push";
  if n > p.head then grow p ~extra_head:(n + default_headroom) ~extra_tail:(tailroom p);
  p.head <- p.head - n;
  p.len <- p.len + n

let pull p n =
  if n < 0 || n > p.len then invalid_arg "Packet.pull";
  p.head <- p.head + n;
  p.len <- p.len - n

let put p n =
  if n < 0 then invalid_arg "Packet.put";
  if n > tailroom p then grow p ~extra_head:p.head ~extra_tail:(n + default_headroom);
  if p.off_heap then fill_zero_big p.big (p.base + p.head + p.len) n
  else Bytes.fill p.buf (p.head + p.len) n '\000';
  p.len <- p.len + n

let take p n =
  if n < 0 || n > p.len then invalid_arg "Packet.take";
  p.len <- p.len - n

(* --- data access --------------------------------------------------------- *)

let check p pos width =
  if pos < 0 || pos + width > p.len then
    invalid_arg
      (Printf.sprintf "Packet: access at %d width %d beyond length %d" pos
         width p.len)

let get_u8 p pos =
  check p pos 1;
  if p.off_heap then
    Char.code (Bigarray.Array1.unsafe_get p.big (p.base + p.head + pos))
  else Char.code (Bytes.unsafe_get p.buf (p.head + pos))

let set_u8 p pos v =
  check p pos 1;
  let c = Char.unsafe_chr (v land 0xff) in
  if p.off_heap then Bigarray.Array1.unsafe_set p.big (p.base + p.head + pos) c
  else Bytes.unsafe_set p.buf (p.head + pos) c

let get_u16 p pos =
  check p pos 2;
  if p.off_heap then to_be16 (bs_get16u p.big (p.base + p.head + pos))
  else to_be16 (by_get16u p.buf (p.head + pos))

let set_u16 p pos v =
  check p pos 2;
  if p.off_heap then bs_set16u p.big (p.base + p.head + pos) (to_be16 v)
  else by_set16u p.buf (p.head + pos) (to_be16 v)

let get_u32 p pos =
  check p pos 4;
  if p.off_heap then begin
    let o = p.base + p.head + pos in
    (to_be16 (bs_get16u p.big o) lsl 16) lor to_be16 (bs_get16u p.big (o + 2))
  end
  else begin
    let o = p.head + pos in
    (to_be16 (by_get16u p.buf o) lsl 16) lor to_be16 (by_get16u p.buf (o + 2))
  end

let set_u32 p pos v =
  check p pos 4;
  let hi = to_be16 ((v lsr 16) land 0xffff) and lo = to_be16 (v land 0xffff) in
  if p.off_heap then begin
    let o = p.base + p.head + pos in
    bs_set16u p.big o hi;
    bs_set16u p.big (o + 2) lo
  end
  else begin
    let o = p.head + pos in
    by_set16u p.buf o hi;
    by_set16u p.buf (o + 2) lo
  end

let get_string p ~pos ~len =
  check p pos len;
  if p.off_heap then begin
    let b = Bytes.create len in
    blit_big_to_bytes p.big (p.base + p.head + pos) b 0 len;
    Bytes.unsafe_to_string b
  end
  else Bytes.sub_string p.buf (p.head + pos) len

let set_string p ~pos s =
  check p pos (String.length s);
  if p.off_heap then
    blit_string_to_big s 0 p.big (p.base + p.head + pos) (String.length s)
  else Bytes.blit_string s 0 p.buf (p.head + pos) (String.length s)

let to_string p = get_string p ~pos:0 ~len:p.len

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 then invalid_arg "Packet.blit";
  check src src_pos len;
  check dst dst_pos len;
  let so = src.head + src_pos and dof = dst.head + dst_pos in
  match (src.off_heap, dst.off_heap) with
  | true, true -> blit_big_to_big src.big (src.base + so) dst.big (dst.base + dof) len
  | true, false -> blit_big_to_bytes src.big (src.base + so) dst.buf dof len
  | false, true -> blit_bytes_to_big src.buf so dst.big (dst.base + dof) len
  | false, false -> Bytes.blit src.buf so dst.buf dof len

let ones_complement_sum p ~pos ~len =
  check p pos len;
  if p.off_heap then
    Checksum.ones_complement_sum_big p.big ~pos:(p.base + p.head + pos) ~len
  else Checksum.ones_complement_sum p.buf ~pos:(p.head + pos) ~len

let checksum p ~pos ~len =
  check p pos len;
  if p.off_heap then
    Checksum.checksum_big p.big ~pos:(p.base + p.head + pos) ~len
  else Checksum.checksum p.buf ~pos:(p.head + pos) ~len

let alignment p = data_offset p mod 4

let realign p ~modulus ~offset =
  if modulus <= 0 || offset < 0 || offset >= modulus then
    invalid_arg "Packet.realign";
  if data_offset p mod modulus <> offset then begin
    (* Copy into a fresh heap buffer whose head satisfies the constraint
       and keeps the default headroom available. (A slab slot's base
       offset is fixed, so realignment demotes to the Bytes fallback.) *)
    let head = ((default_headroom / modulus) + 1) * modulus + offset in
    let buf = Bytes.make (head + p.len + default_headroom) '\000' in
    if p.off_heap then
      blit_big_to_bytes p.big (p.base + p.head) buf head p.len
    else Bytes.blit p.buf p.head buf head p.len;
    release_slot p;
    p.buf <- buf;
    p.cap <- Bytes.length buf;
    p.head <- head
  end

module Pool = struct
  type packet = t

  type t = {
    free : packet array; (* descriptor free list; [0, nfree) live *)
    mutable nfree : int;
    capacity : int;
    arena : Arena.t option;
    buf_size : int;
    placeholder : packet; (* fills unused [free] cells *)
    mutable owner : int; (* owning domain id; -1 = unclaimed *)
    mutable allocs : int;
    mutable reuses : int;
    mutable recycles : int;
    mutable rejected : int;
    mutable heap_bufs : int;
  }

  type stats = {
    st_allocs : int;
    st_reuses : int;
    st_recycles : int;
    st_rejected : int;
    st_free : int;
    st_slab_free : int;
    st_heap_bufs : int;
  }

  let default_buf_size = 2048

  (* A pool is single-domain-owned: the descriptor free list is a plain
     array stack and [alloc]/[recycle] mutate it without synchronization,
     so a packet recycled by one domain must never be resurrected by
     another. The pool claims the domain that first touches it (normally
     its creator); [detach] hands an untouched pool to whichever domain
     uses it next. The claim is checked with [assert] on every hot-path
     operation, so debug builds catch cross-domain aliasing at the exact
     faulty call while release builds compiled with [-noassert] pay
     nothing. (The *arena slot* free list, by contrast, is lock-free:
     packets recycled into a different domain's pool keep their slot, and
     slots freed by finalizers or clone fallbacks return to the owning
     arena atomically.) *)
  let create ?(capacity = 1024) ?(buf_size = default_buf_size) ?slab_bufs
      ?(slab = true) () =
    if capacity < 0 || buf_size < 16 then invalid_arg "Packet.Pool.create";
    let slab_bufs =
      match slab_bufs with Some n -> n | None -> max capacity 1
    in
    if slab_bufs < 0 || slab_bufs >= Arena.idx_mask then
      invalid_arg "Packet.Pool.create";
    let arena =
      if slab && slab_bufs > 0 then
        Some (Arena.create ~buf_size ~nbufs:slab_bufs)
      else None
    in
    let placeholder = create 0 in
    {
      free = Array.make capacity placeholder;
      nfree = 0;
      capacity;
      arena;
      buf_size;
      placeholder;
      owner = (Domain.self () :> int);
      allocs = 0;
      reuses = 0;
      recycles = 0;
      rejected = 0;
      heap_bufs = 0;
    }

  let detach pool = pool.owner <- -1

  let owned_by_caller pool =
    let self = (Domain.self () :> int) in
    if pool.owner = -1 then pool.owner <- self;
    pool.owner = self

  let reset_anno a =
    a.paint <- -1;
    a.dst_ip <- 0;
    a.fix_ip_src <- false;
    a.device <- -1;
    a.timestamp_ns <- 0;
    a.link_type <- To_host

  (* Re-zero only the data window on reuse — headroom/tailroom are
     scratch space whose contents [push]/[put] manage themselves, exactly
     as for a fresh [create]. Safe because [clone] never shares buffers:
     a recycled packet's storage has no other live referent. *)
  let zero_window p =
    if p.off_heap then fill_zero_big p.big (p.base + p.head) p.len
    else Bytes.fill p.buf p.head p.len '\000'

  let reset p ~headroom ~len =
    p.head <- headroom;
    p.len <- len;
    p.in_pool <- false;
    p.id <- fresh_id ();
    reset_anno p.anno

  (* Point a descriptor at storage of capacity >= need: a slot in this
     pool's arena when the request fits the slab buffer class and a slot
     is free, else a fresh heap Bytes buffer (already zeroed). Returns
     whether the slab path was taken. *)
  let acquire_storage pool p need =
    let slotted =
      need <= pool.buf_size
      &&
      match pool.arena with
      | Some a -> (
          match Arena.alloc_slot a with
          | -1 -> false
          | slot ->
              p.big <- a.Arena.slab;
              p.base <- slot * a.Arena.buf_size;
              p.cap <- a.Arena.buf_size;
              p.buf <- empty_bytes;
              p.off_heap <- true;
              p.arena <- Some a;
              attach_fin p;
              true)
      | None -> false
    in
    if not slotted then begin
      pool.heap_bufs <- pool.heap_bufs + 1;
      p.big <- empty_big;
      p.base <- 0;
      p.buf <- Bytes.make need '\000';
      p.cap <- need;
      p.off_heap <- false;
      p.arena <- None
    end;
    slotted

  let fresh_descriptor () =
    {
      big = empty_big;
      base = 0;
      cap = 0;
      buf = empty_bytes;
      off_heap = false;
      arena = None;
      has_fin = false;
      head = 0;
      len = 0;
      in_pool = false;
      id = fresh_id ();
      anno = fresh_anno ();
    }

  let alloc pool ?(headroom = default_headroom) ?(tailroom = default_headroom)
      len =
    if len < 0 || headroom < 0 || tailroom < 0 then
      invalid_arg "Packet.Pool.alloc";
    assert (owned_by_caller pool);
    let need = headroom + len + tailroom in
    if pool.nfree = 0 then begin
      pool.allocs <- pool.allocs + 1;
      let p = fresh_descriptor () in
      let slotted = acquire_storage pool p need in
      reset p ~headroom ~len;
      if slotted then zero_window p;
      p
    end
    else begin
      pool.nfree <- pool.nfree - 1;
      let p = pool.free.(pool.nfree) in
      pool.free.(pool.nfree) <- pool.placeholder;
      pool.reuses <- pool.reuses + 1;
      if p.cap >= need then begin
        reset p ~headroom ~len;
        zero_window p
      end
      else begin
        (* Too small for this request: swap the storage out. An off-heap
           slot goes back to its owning arena (wherever that is), then
           the descriptor re-acquires from this pool. *)
        release_slot p;
        let slotted = acquire_storage pool p need in
        reset p ~headroom ~len;
        if slotted then zero_window p
      end;
      p
    end

  (* No copy on recycle: the descriptor (slot and all) is pushed onto the
     free list by index; payload bytes stay where they are. A packet that
     crossed domains keeps its foreign arena slot — the slot simply
     circulates through this pool from now on. *)
  let recycle pool p =
    assert (owned_by_caller pool);
    (* Guard against double-recycle: a packet already on the free list is
       left alone, so recycling from both a drop hook and a transmit path
       can never corrupt the pool. *)
    if p.in_pool then pool.rejected <- pool.rejected + 1
    else if pool.nfree < pool.capacity then begin
      p.in_pool <- true;
      pool.recycles <- pool.recycles + 1;
      pool.free.(pool.nfree) <- p;
      pool.nfree <- pool.nfree + 1
    end
    else begin
      (* Pool full: the packet is dead by contract, so its slot can go
         straight back to the arena rather than waiting for the GC
         finalizer to find the descriptor. *)
      release_slot p;
      pool.rejected <- pool.rejected + 1
    end

  let stats pool =
    {
      st_allocs = pool.allocs;
      st_reuses = pool.reuses;
      st_recycles = pool.recycles;
      st_rejected = pool.rejected;
      st_free = pool.nfree;
      st_slab_free =
        (match pool.arena with Some a -> Arena.free_slots a | None -> 0);
      st_heap_bufs = pool.heap_bufs;
    }
end
