(* Per-element attribution of the forwarding path: where the cycles go,
   element by element, and how the answer shifts (a) between the scalar
   and the batched transfer path and (b) as the optimizer passes rewrite
   the graph. This is the observability layer driving the same question
   the paper's evaluation answers with per-element breakdowns: not just
   *how much* faster, but *which element* got cheaper.

   Emits BENCH_obs.json under --json: one record per scenario with the
   aggregate and the per-element rows, so the attribution shift is
   machine-checkable. *)

module Obs = Oclick_obs
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform

let mhz = float_of_int Platform.p0.Platform.p_cpu_mhz

type scenario = {
  sc_name : string;
  sc_graph : Oclick_graph.Router.t;
  sc_batch : int;
}

let scenarios () =
  let base = Common.base_graph 8 in
  let opt =
    Oclick.Pipeline.devirtualize
      (Oclick.Pipeline.fastclassify (Common.base_graph 8))
  in
  [
    { sc_name = "ip-router scalar"; sc_graph = base; sc_batch = 1 };
    { sc_name = "ip-router batch-32"; sc_graph = base; sc_batch = 32 };
    {
      sc_name = "ip-router fastclassifier+devirtualize";
      sc_graph = opt;
      sc_batch = 1;
    };
    {
      sc_name = "ip-router fastclassifier+devirtualize batch-32";
      sc_graph = opt;
      sc_batch = 32;
    };
  ]

let measure sc =
  let duration_ms, warmup_ms = if !Common.smoke then (8, 4) else (60, 30) in
  let obs = Obs.create () in
  let r =
    match
      Testbed.run ~duration_ms ~warmup_ms ~batch:sc.sc_batch ~obs
        ~platform:Platform.p0 ~graph:sc.sc_graph ~input_pps:200_000 ()
    with
    | Ok r -> r
    | Error e -> failwith ("obs bench: " ^ e)
  in
  let total = Obs.total_sim_ns obs in
  let aggregate = int_of_float r.Testbed.r_model_ns in
  if abs (total - aggregate) > 1 then
    failwith
      (Printf.sprintf
         "obs bench: %s: per-element total %d ns disagrees with aggregate %d \
          ns"
         sc.sc_name total aggregate);
  (obs, r)

let element_json (s : Obs.stats) =
  Common.J_obj
    [
      ("name", Common.J_string s.Obs.s_name);
      ("class", Common.J_string s.Obs.s_class);
      ("in", Common.J_int s.Obs.s_in);
      ("out", Common.J_int s.Obs.s_out);
      ("drops", Common.J_int s.Obs.s_drops);
      ("batches", Common.J_int s.Obs.s_batches);
      ("sim_ns", Common.J_int s.Obs.s_sim_ns);
    ]

let run () =
  Common.section "per-element attribution (observability layer)";
  let results =
    List.map
      (fun sc ->
        let obs, r = measure sc in
        Common.subsection sc.sc_name;
        Common.row "%.0f pps forwarded, %.0f ns/packet\n"
          r.Testbed.r_forwarded_pps r.Testbed.r_total_ns;
        print_string (Obs.Report.table (Obs.Report.Sim mhz) obs);
        (sc, Obs.snapshot obs, Obs.total_sim_ns obs, r))
      (scenarios ())
  in
  Common.write_json ~section:"obs"
    (Common.J_obj
       [
         ("section", Common.J_string "obs");
         ("cpu_mhz", Common.J_float mhz);
         ( "scenarios",
           Common.J_list
             (List.map
                (fun (sc, stats, total_ns, (r : Testbed.result)) ->
                  Common.J_obj
                    [
                      ("name", Common.J_string sc.sc_name);
                      ("batch", Common.J_int sc.sc_batch);
                      ("aggregate_ns", Common.J_int total_ns);
                      ("ns_per_packet", Common.J_float r.Testbed.r_total_ns);
                      ("forwarded_pps", Common.J_float r.Testbed.r_forwarded_pps);
                      ( "elements",
                        Common.J_list
                          (List.filter_map
                             (fun (s : Obs.stats) ->
                               if
                                 s.Obs.s_sim_ns > 0 || s.Obs.s_in > 0
                                 || s.Obs.s_out > 0 || s.Obs.s_drops > 0
                               then Some (element_json s)
                               else None)
                             stats) );
                    ])
                results) );
       ])
