lib/packet/headers.ml: Checksum Ethaddr Packet
