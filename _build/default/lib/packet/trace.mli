(** A simple text format for packet traces.

    One packet per line: a decimal timestamp in nanoseconds, a space, and
    the frame bytes in lowercase hex. Lines starting with ['#'] are
    comments. Used by the [FromTrace]/[ToTrace] elements and by tests to
    feed recorded traffic through configurations. *)

val header : string
(** The ["# oclick trace v1"] first line {!to_string} emits. *)

val to_string : (int * Packet.t) list -> string
(** Serialize [(timestamp_ns, packet)] pairs. *)

val of_string : string -> ((int * Packet.t) list, string) result
(** Parse a trace; packets are created with default headroom. *)

val append_packet : Buffer.t -> int -> Packet.t -> unit
(** Emit one trace line into a buffer (streaming writers). *)
