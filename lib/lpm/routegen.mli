(** Deterministic synthetic routing tables with a realistic (BGP-like)
    prefix-length distribution: mostly /24s, deaggregated /22-/23s, a
    body of /16-/21s, a thin short-prefix tail, and a default route.
    Seeded — the same seed reproduces the same table and probe stream
    everywhere. *)

type route = { addr : int; len : int; gw : int; port : int }

val generate :
  ?seed:int -> ?default_route:bool -> n:int -> nports:int -> unit -> route array
(** [generate ~n ~nports ()] — [n] distinct routes with ports in
    [0..nports-1], ~30% carrying a gateway. First octets avoid 10/8 so
    generated tables never shadow the testbed's interface routes.
    [default_route] (default true) makes route 0 a 0.0.0.0/0. *)

val probe_dsts : ?seed:int -> routes:route array -> n:int -> unit -> int array
(** [n] lookup targets: 80% inside some route's range (random host
    bits), 20% uniform (may miss). *)

val route_to_string : route -> string
(** ["a.b.c.d/len [gw] port"] — the [LookupIPRoute] config syntax. *)

val to_config : route array -> string
(** Comma-separated {!route_to_string}s, i.e. a full config string. *)
