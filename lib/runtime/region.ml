(* Declarative classification semantics an element may expose for
   cross-element match-action fusion (lib/fdd). See region.mli. *)

module Tree = Oclick_classifier.Tree
module Packet = Oclick_packet.Packet

type sem =
  | Classify of {
      cl_tree : Tree.t;
      cl_charge : int -> unit;
      cl_invalid : Packet.t -> unit;
    }
  | Set_paint of int
  | Paint_switch of { ps_invalid : Packet.t -> unit }
  | Guard of {
      gd_shift : int;
      gd_barrier : bool;
      gd_run : Packet.t -> bool;
    }
  | Mutate of (Packet.t -> unit)
  | Route of { rt_make : lean_work:bool -> Packet.t -> int }
