(* Tests for the fault-injection subsystem: plan parsing, RNG
   determinism, the degradation layer (contained faults, quarantine),
   fuzzed traffic through the full IP router with packet-conservation
   checks, and testbed-level determinism and differential runs. *)

module Fault = Oclick_fault
module Driver = Oclick_runtime.Driver
module Hooks = Oclick_runtime.Hooks
module Registry = Oclick_runtime.Registry
module Netdevice = Oclick_runtime.Netdevice
module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform

let () = Oclick_elements.register_all ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- plan parsing ----------------------------------------------------------- *)

let test_plan_parse_round_trip () =
  let spec =
    "seed=42,corrupt=0.01,truncate=0.005,ttl0=0.01,badcksum=0.02,badlen=0.01,\
     runt=0.01,nic-stall=eth1@5000:200,pci-stall=0@100:50,quarantine=4"
  in
  match Fault.Plan.parse spec with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok p -> (
      check "seed" 42 p.Fault.Plan.p_seed;
      check "quarantine" 4 p.Fault.Plan.p_quarantine;
      Alcotest.(check (float 0.)) "corrupt" 0.01 p.Fault.Plan.p_corrupt;
      (match p.Fault.Plan.p_nic_stall with
      | [ w ] ->
          check_str "dev" "eth1" w.Fault.Plan.w_dev;
          check "start ns" 5_000_000 w.Fault.Plan.w_start_ns;
          check "len ns" 200_000 w.Fault.Plan.w_len_ns
      | _ -> Alcotest.fail "expected one nic-stall window");
      (* to_string reparses to the same plan *)
      match Fault.Plan.parse (Fault.Plan.to_string p) with
      | Ok p' -> check_bool "round trip" true (p = p')
      | Error e -> Alcotest.failf "reparse: %s" e)

let test_plan_parse_errors () =
  let bad spec =
    check_bool
      (Printf.sprintf "rejects %S" spec)
      true
      (Result.is_error (Fault.Plan.parse spec))
  in
  bad "corrupt=1.5";
  bad "corrupt=zero";
  bad "nosuchkey=1";
  bad "nic-stall=eth0";
  bad "nic-stall=@5:5";
  bad "corrupt";
  bad "quarantine=-1";
  (* at most one generation fault per packet: cumulative probability
     over the generation faults must not exceed one *)
  bad "ttl0=0.5,badcksum=0.4,runt=0.2"

let test_plan_empty_and_seed_override () =
  (match Fault.Plan.parse "" with
  | Ok p ->
      check_bool "empty spec is the null plan" true (Fault.Plan.is_null p)
  | Error e -> Alcotest.failf "empty: %s" e);
  match Fault.Plan.parse ~seed:99 "seed=7,corrupt=0.1" with
  | Ok p -> check "?seed wins" 99 p.Fault.Plan.p_seed
  | Error e -> Alcotest.failf "seed: %s" e

(* --- rng --------------------------------------------------------------------- *)

let draws rng n = List.init n (fun _ -> Fault.Rng.bits rng)

let test_rng_deterministic () =
  let a = Fault.Rng.create ~seed:123 and b = Fault.Rng.create ~seed:123 in
  Alcotest.(check (list int)) "same seed, same stream" (draws a 50) (draws b 50);
  let c = Fault.Rng.create ~seed:124 in
  check_bool "nearby seed differs" true
    (draws (Fault.Rng.create ~seed:123) 10 <> draws c 10)

let test_rng_split_stable () =
  (* A child stream's identity depends on the parent's seed and the
     label, not on how much the parent has been drawn from. *)
  let p1 = Fault.Rng.create ~seed:5 in
  let early = Fault.Rng.split p1 "tx:eth0" in
  let p2 = Fault.Rng.create ~seed:5 in
  let _ = draws p2 1000 in
  let late = Fault.Rng.split p2 "tx:eth0" in
  Alcotest.(check (list int))
    "split ignores draw position" (draws early 20) (draws late 20);
  let other = Fault.Rng.split (Fault.Rng.create ~seed:5) "tx:eth1" in
  check_bool "labels separate streams" true
    (draws (Fault.Rng.split (Fault.Rng.create ~seed:5) "tx:eth0") 10
    <> draws other 10)

let test_rng_bounds () =
  let rng = Fault.Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Fault.Rng.int rng 7 in
    check_bool "int in range" true (v >= 0 && v < 7);
    let f = Fault.Rng.float rng in
    check_bool "float in range" true (f >= 0. && f < 1.)
  done

(* --- degradation: contained faults and quarantine ----------------------------- *)

(* An element whose push always raises. *)
let register_faulty () =
  let restore = Registry.snapshot () in
  Registry.register
    ~spec:(Oclick_graph.Spec.make ~ports:"1/1" "Test@Faulty")
    "Test@Faulty"
    (fun name ->
      (object
         inherit Oclick_runtime.Element.base name
         method class_name = "Test@Faulty"
         method! push _ _ = failwith "injected element bug"
       end
        :> Oclick_runtime.Element.t));
  restore

let test_faulty_element_is_contained_then_quarantined () =
  let restore = register_faulty () in
  Fun.protect ~finally:restore @@ fun () ->
  let drops = Hashtbl.create 4 and faults = ref 0 and warns = ref [] in
  let hooks =
    {
      Hooks.null with
      Hooks.on_drop =
        (fun ~idx:_ ~cls:_ ~reason _ ->
          Hashtbl.replace drops reason
            (1 + Option.value ~default:0 (Hashtbl.find_opt drops reason)));
      on_fault = (fun ~idx:_ ~cls:_ ~reason:_ -> incr faults);
      on_warn = (fun ~src msg -> warns := (src, msg) :: !warns);
    }
  in
  match
    Driver.of_string ~hooks
      "InfiniteSource(LIMIT 20) -> f :: Test@Faulty -> Discard;"
  with
  | Error e -> Alcotest.failf "instantiate: %s" e
  | Ok d ->
      check_bool "run converges despite faults" true (Driver.run_until_idle d);
      (* default threshold 8: the first 8 pushes fault, the remaining 12
         are dropped without touching the quarantined element *)
      check "faults contained" 8 !faults;
      check "fault drops" 8
        (Option.value ~default:0 (Hashtbl.find_opt drops "element fault"));
      check "quarantine drops" 12
        (Option.value ~default:0
           (Hashtbl.find_opt drops "quarantined element"));
      (match Driver.fault_report d with
      | [ (name, n, quarantined) ] ->
          check_str "faulty element" "f" name;
          check "fault count" 8 n;
          check_bool "quarantined" true quarantined
      | r -> Alcotest.failf "unexpected fault report (%d entries)" (List.length r));
      check_bool "quarantine warned" true
        (List.exists
           (fun (src, msg) ->
             src = "f"
             && String.length msg >= 11
             && String.sub msg 0 11 = "quarantined")
           !warns)

let test_quarantine_threshold_override () =
  let restore = register_faulty () in
  Fun.protect ~finally:restore @@ fun () ->
  match
    Driver.of_string ~quarantine:2
      "InfiniteSource(LIMIT 10) -> f :: Test@Faulty -> Discard;"
  with
  | Error e -> Alcotest.failf "instantiate: %s" e
  | Ok d -> (
      check_bool "converges" true (Driver.run_until_idle d);
      match Driver.fault_report d with
      | [ (_, n, quarantined) ] ->
          check "quarantined after 2" 2 n;
          check_bool "quarantined" true quarantined
      | _ -> Alcotest.fail "expected one faulting element")

let test_run_until_idle_reports_non_convergence () =
  let warned = ref false in
  let hooks =
    { Hooks.null with Hooks.on_warn = (fun ~src:_ _ -> warned := true) }
  in
  match Driver.of_string ~hooks "InfiniteSource -> Discard;" with
  | Error e -> Alcotest.failf "instantiate: %s" e
  | Ok d ->
      check_bool "unbounded source does not converge" false
        (Driver.run_until_idle ~max_rounds:100 d);
      check_bool "non-convergence warned" true !warned

(* --- fuzz: mangled packets through the full IP router -------------------------- *)

let ip_router_graph ?(n = 2) () =
  Oclick.Ip_router.graph
    (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces n))

let host_udp ~src_if ~dst_ip =
  Headers.Build.udp
    ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
    ~dst_eth:
      (Ethaddr.of_string_exn (Printf.sprintf "00:00:c0:00:%02x:01" src_if))
    ~src_ip:(Ipaddr.of_octets 10 0 src_if 2)
    ~dst_ip:(Ipaddr.of_string_exn dst_ip)
    ()

(* One seeded fuzz round: feed a mix of injector-mangled UDP and pure
   random bytes into both interfaces, drive the router to idle, and
   check that every packet is accounted for — no exception escapes, no
   packet leaks. *)
let fuzz_round seed =
  let plan =
    match
      Fault.Plan.parse ~seed
        "ttl0=0.15,badcksum=0.15,badlen=0.1,runt=0.1,corrupt=0.3,truncate=0.2"
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  let inj = Fault.Injector.create plan in
  let rng = Fault.Injector.stream inj "fuzz-bytes" in
  let drops = ref 0 and spawns = ref 0 in
  let hooks =
    {
      Hooks.null with
      Hooks.on_drop = (fun ~idx:_ ~cls:_ ~reason:_ _ -> incr drops);
      on_spawn = (fun ~idx:_ ~cls:_ _ -> incr spawns);
    }
  in
  let devs =
    Array.init 2 (fun i ->
        new Netdevice.queue_device (Printf.sprintf "eth%d" i) ())
  in
  let devices = Array.to_list (Array.map (fun d -> (d :> Netdevice.t)) devs) in
  let d =
    match Driver.instantiate ~hooks ~devices (ip_router_graph ()) with
    | Ok d -> d
    | Error e -> Alcotest.failf "instantiate: %s" e
  in
  let injected = ref 0 in
  for _ = 1 to 40 do
    let iface = Fault.Rng.int rng 2 in
    let p =
      if Fault.Rng.coin rng 0.3 then begin
        (* pure garbage of random length *)
        let len = 1 + Fault.Rng.int rng 200 in
        let p = Packet.create len in
        for i = 0 to len - 1 do
          Packet.set_u8 p i (Fault.Rng.int rng 256)
        done;
        p
      end
      else begin
        let dst_ip = if Fault.Rng.coin rng 0.5 then "10.0.1.2" else "10.0.0.2" in
        let p = host_udp ~src_if:iface ~dst_ip in
        Fault.Injector.mangle_tx inj ~stream:"fuzz-tx" p;
        Fault.Injector.mangle_wire inj ~stream:"fuzz-tx" p;
        p
      end
    in
    incr injected;
    devs.(iface)#inject p;
    (* interleave running with injection, like a live router *)
    if Fault.Rng.coin rng 0.25 then ignore (Driver.run_tasks_once d)
  done;
  check_bool "router goes idle" true (Driver.run_until_idle d);
  let collected = ref 0 in
  Array.iter
    (fun dev ->
      let rec drain () =
        match dev#collect with
        | Some _ ->
            incr collected;
            drain ()
        | None -> ()
      in
      drain ())
    devs;
  let residual = ref 0 in
  for i = 0 to Driver.size d - 1 do
    List.iter
      (fun (k, v) ->
        if k = "length" || k = "pending" then residual := !residual + v)
      (Driver.element_at d i)#stats
  done;
  let births = !injected + !spawns in
  let deaths = !collected + !drops + !residual in
  if births <> deaths then
    Alcotest.failf
      "seed %d: conservation violated: %d injected + %d spawned <> %d \
       emitted + %d dropped + %d residual"
      seed !injected !spawns !collected !drops !residual

let test_fuzz_conservation () =
  for seed = 1 to 25 do
    fuzz_round seed
  done

(* --- testbed fault runs --------------------------------------------------------- *)

let testbed_plan =
  "seed=42,corrupt=0.01,truncate=0.005,ttl0=0.02,badcksum=0.03,badlen=0.01,\
   runt=0.01,nic-stall=eth1@35000:2000,pci-stall=0@40000:1000"

let testbed_run ?(plan = testbed_plan) graph =
  let plan =
    match Fault.Plan.parse plan with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  match
    Testbed.run ~duration_ms:20 ~warmup_ms:10 ~platform:Platform.p0 ~graph
      ~fault:plan ~input_pps:100_000 ()
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "testbed: %s" e

let base_graph () =
  Oclick.Ip_router.graph
    (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 8))

let test_testbed_fault_run_completes () =
  let r = testbed_run (base_graph ()) in
  check_bool "still forwards" true (r.Testbed.r_forwarded_pps > 0.);
  check_bool "faults were injected" true (r.Testbed.r_fault_counts <> []);
  List.iter
    (fun kind ->
      check_bool
        (Printf.sprintf "injected %s faults" kind)
        true
        (List.mem_assoc kind r.Testbed.r_fault_counts))
    [ "corrupt"; "ttl0"; "badcksum" ];
  (* the conservation ledger balanced, or run would have returned Error *)
  let c = r.Testbed.r_conservation in
  check "ledger balances" c.Testbed.cv_births
    (c.Testbed.cv_deliveries + c.Testbed.cv_nic_drops + c.Testbed.cv_hook_drops
   + c.Testbed.cv_residual);
  check_bool "mangled traffic is dropped with reasons" true
    (r.Testbed.r_drop_reasons_total <> [])

let test_testbed_fault_run_deterministic () =
  let a = testbed_run (base_graph ()) and b = testbed_run (base_graph ()) in
  check_bool "identical results for identical seeds" true (a = b);
  (* a different seed produces a different fault schedule (later
     settings win, so append) *)
  let c = testbed_run ~plan:(testbed_plan ^ ",seed=43") (base_graph ()) in
  check_bool "different seed differs" true
    (c.Testbed.r_fault_counts <> a.Testbed.r_fault_counts
    || c.Testbed.r_outcomes_total <> a.Testbed.r_outcomes_total)

(* Satellite: the optimized pipeline must agree with the unoptimized
   configuration packet-for-packet under the same fault seed. Compared
   on drain-complete totals: at a non-overload rate every packet
   reaches a terminal outcome, so the totals are timing-independent. *)
let test_testbed_differential_under_faults () =
  let base = base_graph () in
  let all = Oclick.Pipeline.optimize Oclick.Pipeline.All (base_graph ()) in
  let rb = testbed_run base and ra = testbed_run all in
  check "same deliveries" rb.Testbed.r_outcomes_total.Testbed.oc_sent
    ra.Testbed.r_outcomes_total.Testbed.oc_sent;
  check "same element faults"
    rb.Testbed.r_outcomes_total.Testbed.oc_element_fault
    ra.Testbed.r_outcomes_total.Testbed.oc_element_fault;
  check "same injected faults" 0
    (compare rb.Testbed.r_fault_counts ra.Testbed.r_fault_counts);
  let total_drops (r : Testbed.result) =
    List.fold_left (fun a (_, n) -> a + n) 0 r.Testbed.r_drop_reasons_total
    + r.Testbed.r_outcomes_total.Testbed.oc_fifo_overflow
    + r.Testbed.r_outcomes_total.Testbed.oc_missed_frame
  in
  check "same total drops" (total_drops rb) (total_drops ra)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "round trip" `Quick test_plan_parse_round_trip;
          Alcotest.test_case "errors" `Quick test_plan_parse_errors;
          Alcotest.test_case "empty and seed" `Quick
            test_plan_empty_and_seed_override;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split stable" `Quick test_rng_split_stable;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "contained and quarantined" `Quick
            test_faulty_element_is_contained_then_quarantined;
          Alcotest.test_case "threshold override" `Quick
            test_quarantine_threshold_override;
          Alcotest.test_case "non-convergence reported" `Quick
            test_run_until_idle_reports_non_convergence;
        ] );
      ("fuzz", [ Alcotest.test_case "conservation" `Quick test_fuzz_conservation ]);
      ( "testbed",
        [
          Alcotest.test_case "fault run completes" `Quick
            test_testbed_fault_run_completes;
          Alcotest.test_case "deterministic" `Quick
            test_testbed_fault_run_deterministic;
          Alcotest.test_case "differential under faults" `Quick
            test_testbed_differential_under_faults;
        ] );
    ]
