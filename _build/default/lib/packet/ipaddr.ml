type t = int

let of_octets a b c d =
  if a < 0 || a > 255 || b < 0 || b > 255 || c < 0 || c > 255 || d < 0 || d > 255
  then invalid_arg "Ipaddr.of_octets"
  else (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 && x <> "" -> Some v
        | _ -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
      | _ -> None)
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ipaddr.of_string_exn: %S" s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d"
    ((t lsr 24) land 0xff)
    ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff)
    (t land 0xff)

let netmask_of_prefix_length n =
  if n < 0 || n > 32 then invalid_arg "Ipaddr.netmask_of_prefix_length"
  else if n = 0 then 0
  else 0xffff_ffff lxor ((1 lsl (32 - n)) - 1)

let prefix_length_of_netmask m =
  let rec scan n =
    if n > 32 then None
    else if netmask_of_prefix_length n = m then Some n
    else scan (n + 1)
  in
  scan 0

let in_subnet addr ~net ~mask = addr land mask = net land mask
let broadcast = 0xffff_ffff
let is_multicast t = t land 0xf000_0000 = 0xe000_0000

let parse_prefix s =
  match String.index_opt s '/' with
  | None -> (
      match of_string s with
      | Some a -> Some (a, broadcast)
      | None -> None)
  | Some i -> (
      let addr = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match of_string addr with
      | None -> None
      | Some a -> (
          match int_of_string_opt rest with
          | Some n when n >= 0 && n <= 32 ->
              Some (a, netmask_of_prefix_length n)
          | _ -> (
              match of_string rest with
              | Some m -> Some (a, m)
              | None -> None)))

let compare = Int.compare
let equal = Int.equal
let pp fmt t = Format.pp_print_string fmt (to_string t)
