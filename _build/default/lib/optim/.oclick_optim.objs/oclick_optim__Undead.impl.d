lib/optim/undead.ml: Array Hashtbl List Oclick_graph Oclick_lang String
