lib/elements/basic.ml: Args Array E Hashtbl Hooks List Oclick_graph Packet Prelude Printf Queue Registry Spec String
