lib/hw/btb.ml: Hashtbl
