(* click-uncombine: extract one router from a combined configuration. *)

open Cmdliner

let run name input =
  let source = Tool_common.read_input input in
  let router = Tool_common.parse_router source in
  match Oclick_optim.Combine.uncombine router ~name with
  | Error e -> Tool_common.die "%s" e
  | Ok extracted -> Tool_common.output_router extracted

let name_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "n"; "name" ] ~docv:"NAME" ~doc:"Router to extract.")

let () =
  Tool_common.run_tool "click-uncombine"
    "Extract one router from a combined configuration."
    Term.(const run $ name_arg $ Tool_common.input_arg)
