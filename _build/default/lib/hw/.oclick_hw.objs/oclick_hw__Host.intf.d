lib/hw/host.mli: Engine Oclick_packet Platform
