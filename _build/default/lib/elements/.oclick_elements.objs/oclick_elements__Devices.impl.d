lib/elements/devices.ml: Args E Ethaddr Hashtbl Headers Ipaddr Netdevice Packet Prelude Printf
