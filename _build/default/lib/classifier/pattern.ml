let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* A hex string with '?' wildcards becomes (value bytes, mask bytes). *)
let parse_hex_masked s =
  let n = String.length s in
  if n = 0 || n mod 2 <> 0 then None
  else begin
    let value = Bytes.make (n / 2) '\000' in
    let mask = Bytes.make (n / 2) '\000' in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      let nib j c =
        match c with
        | '?' -> ()
        | c -> (
            match hex_digit c with
            | Some v ->
                let shift = if j = 0 then 4 else 0 in
                Bytes.set value i
                  (Char.chr (Char.code (Bytes.get value i) lor (v lsl shift)));
                Bytes.set mask i
                  (Char.chr (Char.code (Bytes.get mask i) lor (0xf lsl shift)))
            | None -> ok := false)
      in
      nib 0 s.[2 * i];
      nib 1 s.[(2 * i) + 1]
    done;
    if !ok then Some (Bytes.to_string value, Bytes.to_string mask) else None
  end

let parse_clause clause =
  let negated = String.length clause > 0 && clause.[0] = '!' in
  let body =
    if negated then String.sub clause 1 (String.length clause - 1) else clause
  in
  match String.index_opt body '/' with
  | None -> Error (Printf.sprintf "bad classifier clause %S" clause)
  | Some i -> (
      let off_s = String.sub body 0 i in
      let rest = String.sub body (i + 1) (String.length body - i - 1) in
      let value_s, mask_s =
        match String.index_opt rest '%' with
        | None -> (rest, None)
        | Some j ->
            ( String.sub rest 0 j,
              Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
      in
      match int_of_string_opt off_s with
      | None -> Error (Printf.sprintf "bad offset in clause %S" clause)
      | Some offset when offset >= 0 -> (
          match parse_hex_masked value_s with
          | None -> Error (Printf.sprintf "bad hex value in clause %S" clause)
          | Some (value, wildcard_mask) -> (
              let mask_result =
                match mask_s with
                | None -> Ok wildcard_mask
                | Some ms -> (
                    match parse_hex_masked ms with
                    | Some (m, _) when String.length m = String.length value ->
                        (* an explicit mask combines with '?' wildcards *)
                        Ok
                          (String.init (String.length m) (fun i ->
                               Char.chr
                                 (Char.code m.[i]
                                 land Char.code wildcard_mask.[i])))
                    | _ -> Error (Printf.sprintf "bad mask in clause %S" clause))
              in
              match mask_result with
              | Error e -> Error e
              | Ok mask ->
                  let expr = Bexpr.tests_of_bytes ~offset ~value ~mask in
                  Ok (if negated then Bexpr.Not expr else expr)))
      | Some _ -> Error (Printf.sprintf "negative offset in clause %S" clause))

let parse_pattern arg =
  let arg = String.trim arg in
  if String.equal arg "-" then Ok Bexpr.True
  else begin
    let clauses =
      List.filter (fun s -> s <> "") (String.split_on_char ' ' arg)
    in
    let rec go acc = function
      | [] -> Ok (Bexpr.conj (List.rev acc))
      | c :: rest -> (
          match parse_clause c with
          | Ok e -> go (e :: acc) rest
          | Error e -> Error e)
    in
    if clauses = [] then Error "empty classifier pattern" else go [] clauses
  end

let parse_config config =
  let args = Oclick_lang.Args.split config in
  if args = [] then Error "Classifier needs at least one pattern"
  else begin
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | arg :: rest -> (
          match parse_pattern arg with
          | Ok expr -> go (i + 1) ({ Bexpr.r_expr = expr; r_output = i } :: acc) rest
          | Error e -> Error e)
    in
    go 0 [] args
  end

let tree_of_config config =
  match parse_config config with
  | Error e -> Error e
  | Ok rules ->
      Ok (Bexpr.compile_rules ~noutputs:(List.length rules) rules)
