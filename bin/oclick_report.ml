(* oclick-report: run a configuration in the simulated testbed and print
   the paper-style per-element cost breakdown — each element's packet
   counts and its share of modeled CPU time, sorted by cost with percent
   of total. With --passes, the breakdown is printed before and after
   each optimizer pass (click-xform, click-fastclassifier,
   click-devirtualize, applied cumulatively), which is exactly how the
   paper explains where each optimization saves its cycles.

   The testbed attaches one simulated NIC/host pair per device element,
   with the standard eth<i>/10.0.<i>.x addressing (the same assumption
   the bench figures make), so configurations built like the examples/
   IP routers measure end to end. *)

open Cmdliner
module Obs = Oclick_obs
module Json = Oclick_obs.Json
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform
module Router = Oclick_graph.Router
module Partition = Oclick_parallel.Partition

let device_count router =
  let names = ref [] in
  List.iter
    (fun i ->
      match Router.class_of router i with
      | "PollDevice" | "FromDevice" | "ToDevice" -> (
          match Oclick_lang.Args.split (Router.config router i) with
          | d :: _ when not (List.mem d !names) -> names := d :: !names
          | _ -> ())
      | _ -> ())
    (Router.indices router);
  List.length !names

let () = Oclick_compile.register ()

(* Each pass is (label, graph, compile?, fuse?): the tool-chain passes
   rewrite the graph source-to-source; the "compiled" pass keeps the
   fully optimized graph and additionally runs the whole-graph datapath
   compiler at instantiation; the final "fused" pass adds the
   cross-element FDD fusion inside that compilation. Attribution is
   printable before and after every pass because the compiled and fused
   paths report the identical per-hop events. *)
let passes_of router =
  let xf = Oclick.Pipeline.transform router in
  let fc = Oclick.Pipeline.fastclassify xf in
  let dv = Oclick.Pipeline.devirtualize fc in
  [
    ("unoptimized", router, false, false);
    ("after click-xform", xf, false, false);
    ("after click-fastclassifier", fc, false, false);
    ("after click-devirtualize", dv, false, false);
    ("compiled", dv, true, false);
    ("fused", dv, true, true);
  ]

let measure ~platform ~batch ~domains ~input_pps ~duration_ms ~warmup_ms obs
    (graph, compile, fuse) =
  match
    Testbed.run ~duration_ms ~warmup_ms ~batch ~compile ~fuse ~obs ~domains
      ~platform ~graph ~input_pps ()
  with
  | Ok r -> r
  | Error e -> Tool_common.die "%s" e

(* The regions the FDD pass fused in the most recent compilation: what
   collapsed into each single decision-diagram dispatch. Per-hop ledgers
   are replayed exactly even inside fused regions, so this is
   informational, not a caveat on the numbers. *)
let fused_regions_json ~fuse =
  let regions =
    if not fuse then []
    else
      match Oclick_compile.last_stats () with
      | Some st -> st.Oclick_compile.st_regions
      | None -> []
  in
  Json.List
    (List.map
       (fun (r : Oclick_fdd.region) ->
         Json.Obj
           [
             ("entry", Json.String r.Oclick_fdd.rg_entry);
             ( "members",
               Json.List
                 (List.map (fun m -> Json.String m) r.Oclick_fdd.rg_members) );
             ("nodes", Json.Int r.Oclick_fdd.rg_nodes);
             ("actions", Json.Int r.Oclick_fdd.rg_actions);
           ])
       regions)

(* --- partition summary (--shards) -------------------------------------- *)

(* Ring depth a cut Queue would run with: inserted stages carry their
   capacity in the config; pre-existing Queues default to 1000. *)
let ring_depth graph idx =
  match Oclick_lang.Args.split (Router.config graph idx) with
  | c :: _ -> ( match int_of_string_opt c with Some n -> n | None -> 1000)
  | [] -> 1000

let shards_table ~domains router =
  match Partition.compute ~domains router with
  | Error e -> Tool_common.die "%s" e
  | Ok p ->
      let g = p.Partition.pt_graph in
      let counts = Partition.shard_counts p in
      Printf.printf "partition: %d domain%s, %d elements (%d inserted)\n"
        domains
        (if domains = 1 then "" else "s")
        (List.length (Router.indices g))
        (2 * List.length p.Partition.pt_inserted);
      Array.iteri
        (fun s n -> Printf.printf "  shard %d: %d elements\n" s n)
        counts;
      (match p.Partition.pt_cuts with
      | [] -> Printf.printf "cut queues: none\n"
      | cuts ->
          Printf.printf "cut queues (%d):\n" (List.length cuts);
          List.iter
            (fun (c : Partition.cut) ->
              Printf.printf "  %s: shard %d -> shard %d, ring %d%s\n"
                c.Partition.cut_queue_name c.cut_from_shard c.cut_to_shard
                (ring_depth g c.cut_queue)
                (if c.cut_inserted then ", inserted" else ""))
            cuts);
      print_newline ()

let shards_json ~domains router =
  match Partition.compute ~domains router with
  | Error e -> Tool_common.die "%s" e
  | Ok p ->
      let g = p.Partition.pt_graph in
      Json.Obj
        [
          ("domains", Json.Int domains);
          ("elements", Json.Int (List.length (Router.indices g)));
          ("inserted", Json.Int (2 * List.length p.Partition.pt_inserted));
          ( "shard_sizes",
            Json.List
              (Array.to_list
                 (Array.map (fun n -> Json.Int n) (Partition.shard_counts p)))
          );
          ( "cuts",
            Json.List
              (List.map
                 (fun (c : Partition.cut) ->
                   Json.Obj
                     [
                       ("queue", Json.String c.Partition.cut_queue_name);
                       ("from_shard", Json.Int c.cut_from_shard);
                       ("to_shard", Json.Int c.cut_to_shard);
                       ("ring", Json.Int (ring_depth g c.cut_queue));
                       ("inserted", Json.Bool c.cut_inserted);
                     ])
                 p.Partition.pt_cuts) );
        ]

(* The per-element columns must sum to the cost model's aggregate
   exactly: any difference means a transfer was double- or
   under-charged somewhere. Refuse to print numbers that disagree. *)
let aggregate_check obs (r : Testbed.result) =
  let total = Obs.total_sim_ns obs in
  let aggregate = int_of_float r.Testbed.r_model_ns in
  if abs (total - aggregate) > 1 then
    Tool_common.die
      "per-element attribution (%d ns) disagrees with the testbed aggregate \
       (%d ns)"
      total aggregate;
  aggregate

(* A run is degraded when the testbed had to intervene to finish it:
   quarantined/faulting elements or convergence warnings (stalled
   domains, drained rings). The ledger still balances — degraded means
   "completed with accounted losses", never "numbers are suspect". *)
let degraded (r : Testbed.result) =
  r.Testbed.r_warnings <> [] || r.Testbed.r_element_faults <> []

(* Route-table elements (anything exposing a "routes" stat): name plus
   stats, so table growth — routes, misses, trie memory — is observable
   like every other element stat. *)
let route_tables_json (r : Testbed.result) =
  Json.List
    (List.map
       (fun (name, stats) ->
         Json.Obj
           (("name", Json.String name)
           :: List.map (fun (k, v) -> (k, Json.Int v)) stats))
       r.Testbed.r_route_tables)

let pass_json ~label ~mhz ~fuse ?top obs (r : Testbed.result) =
  let aggregate = aggregate_check obs r in
  match Obs.Report.json ?top (Obs.Report.Sim mhz) obs with
  | Json.Obj kvs ->
      Json.Obj
        (("pass", Json.String label)
        :: ("aggregate_ns", Json.Int aggregate)
        :: ("forwarded_pps", Json.Float r.Testbed.r_forwarded_pps)
        :: ("ns_per_packet", Json.Float r.Testbed.r_total_ns)
        :: ("degraded", Json.Bool (degraded r))
        :: ( "warnings",
             Json.List
               (List.map (fun w -> Json.String w) r.Testbed.r_warnings) )
        :: ("route_tables", route_tables_json r)
        :: ("fused_regions", fused_regions_json ~fuse)
        :: kvs)
  | v -> v

let run json passes batch domains shards top input_pps duration_ms warmup_ms
    input =
  (match top with
  | Some n when n < 1 ->
      Tool_common.die "bad --top %d (must be at least 1)" n
  | _ -> ());
  if batch < 1 then Tool_common.die "bad --batch %d (must be at least 1)" batch;
  if domains < 1 then
    Tool_common.die "bad --domains %d (must be at least 1)" domains;
  if input_pps < 1 then
    Tool_common.die "bad --input-pps %d (must be at least 1)" input_pps;
  if duration_ms < 1 || warmup_ms < 0 then
    Tool_common.die "bad measurement window (%d ms after %d ms warmup)"
      duration_ms warmup_ms;
  let source = Tool_common.read_input input in
  let router = Tool_common.parse_router source in
  let ndev = device_count router in
  if ndev < 1 then
    Tool_common.die
      "configuration has no device elements (PollDevice/FromDevice/ToDevice)";
  let platform = { Platform.p0 with Platform.p_nports = ndev } in
  let mhz = float_of_int platform.Platform.p_cpu_mhz in
  let obs = Obs.create () in
  let variants =
    if passes then passes_of router
    else [ ("unoptimized", router, false, false) ]
  in
  let measure =
    measure ~platform ~batch ~domains ~input_pps ~duration_ms ~warmup_ms obs
  in
  if json then begin
    let reports =
      List.map
        (fun (label, graph, compile, fuse) ->
          pass_json ~label ~mhz ~fuse ?top obs (measure (graph, compile, fuse)))
        variants
    in
    let header =
      [
        ("tool", Json.String "oclick-report");
        ("cpu_mhz", Json.Float mhz);
        ("ports", Json.Int ndev);
        ("batch", Json.Int batch);
        ("domains", Json.Int domains);
        ("input_pps", Json.Int input_pps);
        ("duration_ms", Json.Int duration_ms);
      ]
    in
    let header =
      if shards then header @ [ ("partition", shards_json ~domains router) ]
      else header
    in
    let body =
      match reports with
      | [ Json.Obj kvs ] when not passes -> kvs
      | rs -> [ ("passes", Json.List rs) ]
    in
    print_endline (Json.to_string (Json.Obj (header @ body)))
  end
  else begin
    if shards then shards_table ~domains router;
    List.iter
      (fun (label, graph, compile, fuse) ->
        let r = measure (graph, compile, fuse) in
        let aggregate = aggregate_check obs r in
        Printf.printf
          "%s: %d ports, batch %d, %d pps offered — %.0f pps forwarded, \
           %.0f ns/packet\n"
          label ndev batch input_pps r.Testbed.r_forwarded_pps
          r.Testbed.r_total_ns;
        if degraded r then begin
          Printf.printf "degraded run:\n";
          List.iter (fun w -> Printf.printf "  %s\n" w) r.Testbed.r_warnings;
          List.iter
            (fun (name, n) ->
              Printf.printf "  element %s: %d fault%s contained\n" name n
                (if n = 1 then "" else "s"))
            r.Testbed.r_element_faults
        end;
        (if fuse then
           match Oclick_compile.last_stats () with
           | Some st when st.Oclick_compile.st_regions <> [] ->
               let rs = st.Oclick_compile.st_regions in
               Printf.printf "fused regions (%d):\n" (List.length rs);
               List.iter
                 (fun (rg : Oclick_fdd.region) ->
                   Printf.printf "  %s + [%s]: %d nodes, %d actions\n"
                     rg.Oclick_fdd.rg_entry
                     (String.concat ", " rg.Oclick_fdd.rg_members)
                     rg.Oclick_fdd.rg_nodes rg.Oclick_fdd.rg_actions)
                 rs
           | _ -> ());
        print_string (Obs.Report.table ?top (Obs.Report.Sim mhz) obs);
        Printf.printf "aggregate (cost model): %d ns — matches per-element \
                       total\n\n"
          aggregate)
      variants
  end

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the breakdown as JSON on standard output.")

let passes_arg =
  Arg.(
    value & flag
    & info [ "passes" ]
        ~doc:
          "Report before and after each optimizer pass: unoptimized, then \
           cumulatively click-xform, click-fastclassifier, \
           click-devirtualize, the whole-graph compiled datapath, and \
           finally cross-element FDD fusion (with its fused regions).")

let batch_arg =
  Arg.(
    value & opt int 1
    & info [ "batch" ] ~docv:"N"
        ~doc:"Transfer batch size handed to the driver (default 1, scalar).")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Simulate an $(docv)-CPU router: the graph is partitioned at \
           Queue boundaries exactly as the multi-domain runner partitions \
           it, and each shard's scheduler advances its own simulated \
           clock. CPU utilization then reports the busiest simulated \
           CPU.")

let shards_arg =
  Arg.(
    value & flag
    & info [ "shards" ]
        ~doc:
          "Print the partition before measuring: elements per shard, and \
           each cut Queue with its producer and consumer shards and ring \
           depth. With $(b,--json), adds a $(b,partition) object to the \
           report.")

let top_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "top" ] ~docv:"N"
        ~doc:
          "Keep only the $(docv) most expensive elements in each \
           breakdown; the rest collapse into one aggregate \
           $(b,(other: n)) row, so totals (and the JSON cost-sum \
           invariant) are unchanged.")

let input_pps_arg =
  Arg.(
    value & opt int 200_000
    & info [ "input-pps" ] ~docv:"PPS"
        ~doc:"Offered load, aggregate over all flows.")

let duration_arg =
  Arg.(
    value & opt int 40
    & info [ "duration-ms" ] ~docv:"MS" ~doc:"Measurement window length.")

let warmup_arg =
  Arg.(
    value & opt int 20
    & info [ "warmup-ms" ] ~docv:"MS"
        ~doc:"Warmup before the window (ARP resolves here).")

let () =
  Tool_common.run_tool "oclick-report"
    "Per-element cost breakdown of a configuration in the simulated testbed."
    Term.(
      const run $ json_arg $ passes_arg $ batch_arg $ domains_arg $ shards_arg
      $ top_arg $ input_pps_arg $ duration_arg $ warmup_arg
      $ Tool_common.input_arg)
