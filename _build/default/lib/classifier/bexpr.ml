type test = { t_offset : int; t_mask : int; t_value : int }

type t =
  | True
  | False
  | Test of test
  | And of t * t
  | Or of t * t
  | Not of t

let conj = function
  | [] -> True
  | x :: rest -> List.fold_left (fun a b -> And (a, b)) x rest

let disj = function
  | [] -> False
  | x :: rest -> List.fold_left (fun a b -> Or (a, b)) x rest

let tests_of_bytes ~offset ~value ~mask =
  if String.length value <> String.length mask then
    invalid_arg "Bexpr.tests_of_bytes: value/mask length mismatch";
  (* Group byte constraints into aligned 32-bit words. *)
  let words = Hashtbl.create 4 in
  String.iteri
    (fun i mbyte ->
      let m = Char.code mbyte in
      if m <> 0 then begin
        let v = Char.code value.[i] land m in
        let byte_off = offset + i in
        let word_off = byte_off - (byte_off mod 4) in
        let shift = 8 * (3 - (byte_off mod 4)) in
        let wm, wv =
          match Hashtbl.find_opt words word_off with
          | Some x -> x
          | None -> (0, 0)
        in
        Hashtbl.replace words word_off
          (wm lor (m lsl shift), wv lor (v lsl shift))
      end)
    mask;
  let tests =
    Hashtbl.fold
      (fun off (m, v) acc ->
        Test { t_offset = off; t_mask = m; t_value = v } :: acc)
      words []
  in
  let by_offset a b =
    match (a, b) with
    | Test x, Test y -> Int.compare x.t_offset y.t_offset
    | _ -> 0
  in
  conj (List.sort by_offset tests)

let bytes_of_int width v =
  String.init width (fun i -> Char.chr ((v lsr (8 * (width - 1 - i))) land 0xff))

let test_width width ~offset ?mask v =
  let mask = match mask with Some m -> m | None -> (1 lsl (8 * width)) - 1 in
  tests_of_bytes ~offset ~value:(bytes_of_int width v)
    ~mask:(bytes_of_int width mask)

let test_u8 = test_width 1
let test_u16 = test_width 2
let test_u32 = test_width 4

type rule = { r_expr : t; r_output : int }

let compile_rules ?noutputs rules =
  let noutputs =
    match noutputs with
    | Some n -> n
    | None ->
        List.fold_left (fun acc r -> max acc (r.r_output + 1)) 0 rules
  in
  let nodes = ref [] in
  let nnodes = ref 0 in
  let memo : (test * Tree.target * Tree.target, Tree.target) Hashtbl.t =
    Hashtbl.create 64
  in
  let mk_node test ~yes ~no =
    if yes = no then yes
    else
      match Hashtbl.find_opt memo (test, yes, no) with
      | Some target -> target
      | None ->
          let i = !nnodes in
          incr nnodes;
          nodes :=
            {
              Tree.offset = test.t_offset;
              mask = test.t_mask;
              value = test.t_value;
              yes;
              no;
            }
            :: !nodes;
          let target = Tree.Node i in
          Hashtbl.add memo (test, yes, no) target;
          target
  in
  (* Continuation-style lowering; sharing comes from mk_node's memo table. *)
  let rec emit expr ~yes ~no =
    match expr with
    | True -> yes
    | False -> no
    | Test test -> mk_node test ~yes ~no
    | And (a, b) -> emit a ~yes:(emit b ~yes ~no) ~no
    | Or (a, b) -> emit a ~yes ~no:(emit b ~yes ~no)
    | Not a -> emit a ~yes:no ~no:yes
  in
  let root =
    List.fold_right
      (fun rule next -> emit rule.r_expr ~yes:(Tree.Leaf rule.r_output) ~no:next)
      rules (Tree.Leaf Tree.drop)
  in
  let arr = Array.of_list (List.rev !nodes) in
  Tree.renumber { Tree.nodes = arr; root; noutputs }
