(** Declarative classification semantics for cross-element fusion.

    An element may expose, through {!Element.base.region_sem}, a
    description of what its push path {e means} in match-action terms.
    The FDD fusion pass ([lib/fdd], run by {!Oclick_compile} under
    [~fuse:true]) walks a push region over these descriptions and
    collapses the whole cascade — classifier trees, paint writes and
    switches, header guards, a route lookup — into one forwarding
    decision diagram evaluated as a single compiled closure.

    The contract mirrors {!Element.base.fuse}: every closure carried
    here must have exactly the semantics of the element's [push]
    (charges, drop reasons, annotation writes), because the fused path
    is required to replay the interpreted run's observable behaviour —
    outcome totals, per-hop obs ledgers, drop reasons — byte for byte.
    Elements whose push path cannot be described this way simply keep
    the default ([None]) and end the region; fusion never changes
    semantics, only the decision-evaluation path. *)

module Tree = Oclick_classifier.Tree
module Packet = Oclick_packet.Packet

type sem =
  | Classify of {
      cl_tree : Tree.t;  (** the optimized decision tree the push walks *)
      cl_charge : int -> unit;
          (** charge classification work for [visited] nodes — same hook
              and work constructor the interpreted push uses *)
      cl_invalid : Packet.t -> unit;
          (** sink for packets classified to a leaf with no output
              (drop accounting identical to the interpreted push) *)
    }
      (** The element routes by a pure decision tree over packet bytes:
          leaf [k] in [0..noutputs) continues on output [k]; any other
          leaf goes to [cl_invalid]. *)
  | Set_paint of int
      (** Writes the paint annotation, then continues on output 0. *)
  | Paint_switch of { ps_invalid : Packet.t -> unit }
      (** Routes by the paint annotation: paint [c] in [0..noutputs)
          continues on output [c], anything else goes to [ps_invalid].
          Folded only when the paint value is statically known on the
          path (a dominating {!Set_paint}); otherwise the region ends
          before this element. *)
  | Guard of {
      gd_shift : int;
          (** bytes pulled from the packet front when the guard passes
              (e.g. Strip); downstream tree offsets are translated by
              this amount *)
      gd_barrier : bool;
          (** the element may rewrite packet bytes or lengths in ways
              offset translation cannot express (e.g. CheckIPHeader's
              padding trim): no further tree tests may be hoisted above
              it, though non-test actions still fuse *)
      gd_run : Packet.t -> bool;
          (** the element's push effect; [false] means the packet was
              consumed or diverted (dropped with the element's own
              reason, or sent down a side output through the compiled
              connections) and the fused action stops *)
    }
      (** A pass/divert stage that continues on output 0 when [gd_run]
          returns true. *)
  | Mutate of (Packet.t -> unit)
      (** An unconditional effect (annotation writes, clone-and-tee side
          outputs) that always continues on output 0. *)
  | Route of { rt_make : lean_work:bool -> Packet.t -> int }
      (** A route lookup as a fused leaf action: [rt_make ~lean_work]
          builds the lookup closure once per region; per packet it
          performs the lookup — charging work unless [lean_work],
          rewriting the gateway annotation, accounting misses and
          unconnected-port drops itself — and returns the output port,
          or [-1] when it consumed the packet. *)
