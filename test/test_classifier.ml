(* Tests for the classification engine: raw patterns, the IPFilter
   language, decision-tree semantics, tree optimization, compiled
   classification, and the dump format. *)

module Tree = Oclick_classifier.Tree
module Bexpr = Oclick_classifier.Bexpr
module Pattern = Oclick_classifier.Pattern
module Filter = Oclick_classifier.Filter
module Optimize = Oclick_classifier.Optimize
module Compile = Oclick_classifier.Compile
module Codegen = Oclick_classifier.Codegen
module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tree_of_pattern cfg =
  match Pattern.tree_of_config cfg with
  | Ok t -> t
  | Error e -> Alcotest.failf "pattern %S: %s" cfg e

let tree_of_filter cfg =
  match Filter.ipclassifier_tree cfg with
  | Ok t -> t
  | Error e -> Alcotest.failf "filter %S: %s" cfg e

let udp ?(src = "1.2.3.4") ?(dst = "10.0.1.2") ?(dst_port = 1234) () =
  Headers.Build.udp ~src_ip:(Ipaddr.of_string_exn src)
    ~dst_ip:(Ipaddr.of_string_exn dst) ~dst_port ()

let ip_packet p =
  Packet.pull p 14;
  p

(* --- raw Classifier patterns ------------------------------------------------ *)

let test_pattern_ethertype () =
  let t = tree_of_pattern "12/0806 20/0001, 12/0806 20/0002, 12/0800, -" in
  check "udp -> 2" 2 (Tree.classify t (udp ()));
  let q =
    Headers.Build.arp_query
      ~src_eth:(Oclick_packet.Ethaddr.of_string_exn "00:11:22:33:44:55")
      ~src_ip:1 ~target_ip:2
  in
  check "arp query -> 0" 0 (Tree.classify t q);
  let r =
    Headers.Build.arp_reply
      ~src_eth:(Oclick_packet.Ethaddr.of_string_exn "00:11:22:33:44:55")
      ~src_ip:1
      ~dst_eth:(Oclick_packet.Ethaddr.of_string_exn "00:11:22:33:44:66")
      ~dst_ip:2
  in
  check "arp reply -> 1" 1 (Tree.classify t r)

let test_pattern_wildcard_nibbles () =
  let t = tree_of_pattern "12/08??, -" in
  check "0800 matches" 0 (Tree.classify t (udp ()));
  let p = udp () in
  Packet.set_u16 p 12 0x08ff;
  check "08ff matches" 0 (Tree.classify t p);
  Packet.set_u16 p 12 0x0906;
  check "0906 misses" 1 (Tree.classify t p)

let test_pattern_explicit_mask () =
  let t = tree_of_pattern "14/40%F0, -" in
  (* byte 14 is the IP version/hl byte: 0x45 & 0xF0 = 0x40 *)
  check "version nibble" 0 (Tree.classify t (udp ()))

let test_pattern_negation () =
  let t = tree_of_pattern "!12/0800, -" in
  check "udp misses negated" 1 (Tree.classify t (udp ()));
  let q =
    Headers.Build.arp_query
      ~src_eth:(Oclick_packet.Ethaddr.of_string_exn "00:11:22:33:44:55")
      ~src_ip:1 ~target_ip:2
  in
  check "arp matches negated" 0 (Tree.classify t q)

let test_pattern_multiple_clauses () =
  let t = tree_of_pattern "12/0800 23/11, 12/0800, -" in
  check "udp is proto 17" 0 (Tree.classify t (udp ()));
  let icmp =
    Headers.Build.icmp_echo ~src_ip:1 ~dst_ip:2 ()
  in
  check "icmp falls to plain ip" 1 (Tree.classify t icmp)

let test_pattern_short_packet () =
  let t = tree_of_pattern "60/ff, -" in
  (* reads beyond a 56-byte packet see zeros *)
  check "zero-padded read" 1 (Tree.classify t (udp ()))

let test_pattern_errors () =
  check_bool "bad hex" true (Result.is_error (Pattern.tree_of_config "12/08g0"));
  check_bool "no slash" true (Result.is_error (Pattern.tree_of_config "1208"));
  check_bool "odd nibbles" true (Result.is_error (Pattern.tree_of_config "12/080"));
  check_bool "empty" true (Result.is_error (Pattern.tree_of_config ""))

(* --- the IPFilter language --------------------------------------------------- *)

let classify_ip t ~mk = Tree.classify t (ip_packet (mk ()))

let test_filter_proto () =
  let t = tree_of_filter "udp, tcp, icmp, -" in
  check "udp" 0 (classify_ip t ~mk:udp);
  check "tcp" 1
    (Tree.classify t
       (ip_packet (Headers.Build.tcp ~src_ip:1 ~dst_ip:2 ~src_port:9 ~dst_port:80 ())));
  check "icmp" 2
    (Tree.classify t (ip_packet (Headers.Build.icmp_echo ~src_ip:1 ~dst_ip:2 ())))

let test_filter_host_dir () =
  let t =
    tree_of_filter
      "src host 1.2.3.4, dst host 1.2.3.4, host 5.6.7.8, -"
  in
  check "src" 0 (classify_ip t ~mk:(fun () -> udp ~src:"1.2.3.4" ~dst:"9.9.9.9" ()));
  check "dst" 1 (classify_ip t ~mk:(fun () -> udp ~src:"9.9.9.9" ~dst:"1.2.3.4" ()));
  check "either (src)" 2
    (classify_ip t ~mk:(fun () -> udp ~src:"5.6.7.8" ~dst:"9.9.9.9" ()));
  check "either (dst)" 2
    (classify_ip t ~mk:(fun () -> udp ~src:"9.9.9.9" ~dst:"5.6.7.8" ()));
  check "neither" 3 (classify_ip t ~mk:(fun () -> udp ~src:"9.9.9.9" ~dst:"8.8.8.8" ()))

let test_filter_net () =
  let t = tree_of_filter "src net 10.0.0.0/8, -" in
  check "in net" 0 (classify_ip t ~mk:(fun () -> udp ~src:"10.200.1.1" ()));
  check "out of net" 1 (classify_ip t ~mk:(fun () -> udp ~src:"11.0.0.1" ()))

let test_filter_port () =
  let t = tree_of_filter "udp && dst port 53, udp && src port 53, -" in
  check "dst 53" 0 (classify_ip t ~mk:(fun () -> udp ~dst_port:53 ()));
  check "other port" 2 (classify_ip t ~mk:(fun () -> udp ~dst_port:54 ()))

let test_filter_port_range () =
  let t = tree_of_filter "udp && dst port 1024-65535, -" in
  check "below range" 1 (classify_ip t ~mk:(fun () -> udp ~dst_port:1023 ()));
  check "range start" 0 (classify_ip t ~mk:(fun () -> udp ~dst_port:1024 ()));
  check "inside" 0 (classify_ip t ~mk:(fun () -> udp ~dst_port:30000 ()));
  check "range end" 0 (classify_ip t ~mk:(fun () -> udp ~dst_port:65535 ()))

let prop_port_range_membership =
  QCheck.Test.make ~name:"port range = membership" ~count:200
    QCheck.(triple (int_bound 0xffff) (int_bound 0xffff) (int_bound 0xffff))
    (fun (a, b, probe) ->
      let lo = min a b and hi = max a b in
      match
        Filter.ipclassifier_tree
          (Printf.sprintf "udp && dst port %d-%d, -" lo hi)
      with
      | Error _ -> false
      | Ok t ->
          let p = ip_packet (udp ~dst_port:probe ()) in
          let expected = if probe >= lo && probe <= hi then 0 else 1 in
          Tree.classify t p = expected)

let test_filter_port_names () =
  let t = tree_of_filter "tcp && dst port www, -" in
  check "www = 80" 0
    (Tree.classify t
       (ip_packet (Headers.Build.tcp ~src_ip:1 ~dst_ip:2 ~src_port:9 ~dst_port:80 ())))

let test_filter_fragment_guard () =
  (* Port tests must not match fragments (their transport header is
     elsewhere). *)
  let t = tree_of_filter "udp && dst port 1234, -" in
  let p = ip_packet (udp ()) in
  check "unfragmented matches" 0 (Tree.classify t p);
  Headers.Ip.set_flags_fragment p ~df:false ~mf:false ~frag:10;
  Headers.Ip.update_checksum p;
  check "fragment does not match port" 1 (Tree.classify t p)

let test_filter_boolean_ops () =
  let t = tree_of_filter "udp and not dst host 9.9.9.9, -" in
  check "udp other host" 0 (classify_ip t ~mk:udp);
  check "udp excluded host" 1
    (classify_ip t ~mk:(fun () -> udp ~dst:"9.9.9.9" ()));
  let t2 = tree_of_filter "(tcp || udp) && dst net 10.0.0.0/8, -" in
  check "parens" 0 (classify_ip t2 ~mk:udp)

let test_filter_icmp_type () =
  let t = tree_of_filter "icmp type 8, icmp, -" in
  check "echo request" 0
    (Tree.classify t (ip_packet (Headers.Build.icmp_echo ~src_ip:1 ~dst_ip:2 ())));
  let reply = ip_packet (Headers.Build.icmp_echo ~src_ip:1 ~dst_ip:2 ()) in
  Headers.Icmp.set_type ~off:20 reply 0;
  check "other icmp" 1 (Tree.classify t reply)

let test_filter_tcp_opt () =
  let t = tree_of_filter "tcp opt syn, tcp, -" in
  let syn = ip_packet (Headers.Build.tcp ~src_ip:1 ~dst_ip:2 ~src_port:1 ~dst_port:2 ()) in
  check "syn" 0 (Tree.classify t syn);
  let ack =
    ip_packet
      (Headers.Build.tcp ~src_ip:1 ~dst_ip:2 ~src_port:1 ~dst_port:2
         ~flags:Headers.Tcp.flag_ack ())
  in
  check "plain ack" 1 (Tree.classify t ack)

let test_filter_ip_fields () =
  let t = tree_of_filter "ip ttl 64, -" in
  check "ttl 64" 0 (classify_ip t ~mk:udp);
  let t2 = tree_of_filter "ip vers 4, -" in
  check "version" 0 (classify_ip t2 ~mk:udp)

let test_ipfilter_actions () =
  match Filter.parse_ipfilter_config "allow udp, deny tcp, 3 icmp, deny all" with
  | Error e -> Alcotest.failf "ipfilter config: %s" e
  | Ok rules ->
      Alcotest.(check (list int))
        "outputs" [ 0; Tree.drop; 3; Tree.drop ]
        (List.map (fun (r : Bexpr.rule) -> r.r_output) rules)

let test_filter_errors () =
  check_bool "unknown word" true (Result.is_error (Filter.parse "frobnicate"));
  check_bool "trailing" true (Result.is_error (Filter.parse "udp udp"));
  check_bool "unclosed paren" true (Result.is_error (Filter.parse "(udp"));
  check_bool "bad ip" true (Result.is_error (Filter.parse "host 1.2.3"));
  check_bool "bad port" true (Result.is_error (Filter.parse "dst port 99999"))

(* --- trees ------------------------------------------------------------------- *)

let test_tree_depth_count () =
  let t = tree_of_pattern "12/0806 20/0001, 12/0806 20/0002, 12/0800, -" in
  check_bool "depth positive" true (Tree.depth t > 0);
  check_bool "nodes at least depth" true (Tree.node_count t >= Tree.depth t);
  check "safe length" 24 (Tree.safe_length t)

let test_tree_dump_roundtrip () =
  let t = Optimize.optimize (tree_of_pattern "12/0806 20/0001, 12/0800, -") in
  match Tree.of_string (Tree.to_string t) with
  | Ok t2 -> check_bool "equal" true (Tree.equal t t2)
  | Error e -> Alcotest.failf "dump parse: %s" e

let test_tree_dump_errors () =
  check_bool "garbage" true (Result.is_error (Tree.of_string "what"));
  check_bool "bad node line" true
    (Result.is_error (Tree.of_string "outputs 2 root 0\nnonsense"))

let test_leaf_tree () =
  let t = Tree.leaf_tree 1 2 in
  check "constant" 1 (Tree.classify t (udp ()));
  check "no nodes" 0 (Tree.node_count t)

(* --- optimization ------------------------------------------------------------ *)

let random_packet_gen =
  QCheck.Gen.(
    map
      (fun (bytes, len) ->
        let p = Packet.create (24 + (len mod 40)) in
        List.iteri
          (fun i b -> if i < Packet.length p then Packet.set_u8 p i b)
          bytes;
        p)
      (pair (list_size (int_range 24 64) (int_bound 255)) small_nat))

let patterns_gen =
  QCheck.Gen.(
    let clause =
      let* off = int_range 0 20 in
      let* v = int_bound 255 in
      return (Printf.sprintf "%d/%02x" off v)
    in
    let pattern =
      let* n = int_range 1 3 in
      let* cs = list_repeat n clause in
      let* neg = bool in
      return ((if neg then "!" else "") ^ String.concat " " cs)
    in
    let* n = int_range 1 5 in
    let* ps = list_repeat n pattern in
    return (String.concat ", " (ps @ [ "-" ])))

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"optimize preserves classification" ~count:300
    (QCheck.make
       QCheck.Gen.(pair patterns_gen random_packet_gen))
    (fun (cfg, p) ->
      match Pattern.tree_of_config cfg with
      | Error _ -> QCheck.assume_fail ()
      | Ok t ->
          let ot = Optimize.optimize t in
          Tree.classify t p = Tree.classify ot p)

let prop_compile_matches_interpreter =
  QCheck.Test.make ~name:"compiled = interpreted" ~count:300
    (QCheck.make QCheck.Gen.(pair patterns_gen random_packet_gen))
    (fun (cfg, p) ->
      match Pattern.tree_of_config cfg with
      | Error _ -> QCheck.assume_fail ()
      | Ok t ->
          let t = Optimize.optimize t in
          Compile.compile_packet t p = Tree.classify t p)

(* Truncated packets: every classification backend — the tree
   interpreter, the reader-compiled form (fast_classifier) and the
   closure backend behind --compile/--fuse — must resolve out-of-bounds
   field reads identically (zero fill) with identical visited counts,
   and optimization must not change the answer even when some tested
   fields lie wholly or partly beyond the packet. *)
let truncated_packet_gen =
  QCheck.Gen.(
    map
      (fun (bytes, len) ->
        let p = Packet.create len in
        List.iteri (fun i b -> if i < len then Packet.set_u8 p i b) bytes;
        p)
      (pair (list_size (return 28) (int_bound 255)) (int_bound 27)))

let prop_truncated_backends_agree =
  QCheck.Test.make ~name:"truncated packets: interp = compiled = closures"
    ~count:500
    (QCheck.make QCheck.Gen.(pair patterns_gen truncated_packet_gen))
    (fun (cfg, p) ->
      match Pattern.tree_of_config cfg with
      | Error _ -> QCheck.assume_fail ()
      | Ok t ->
          let backends_agree t =
            let out_i, vis_i = Tree.classify_count t p in
            let out_c, vis_c =
              Compile.compile_count t ~read:(Tree.packet_read p)
            in
            let seen = ref None in
            let run =
              Codegen.closures t ~leaf:(fun k ->
                  fun _p visited -> seen := Some (k, visited))
            in
            run p;
            out_i = out_c && vis_i = vis_c && !seen = Some (out_i, vis_i)
          in
          let ot = Optimize.optimize t in
          backends_agree t && backends_agree ot
          && Tree.classify t p = Tree.classify ot p)

let prop_optimize_preserves_shape =
  QCheck.Test.make ~name:"optimize preserves outputs and renumbers densely"
    ~count:100 (QCheck.make patterns_gen)
    (fun cfg ->
      match Pattern.tree_of_config cfg with
      | Error _ -> QCheck.assume_fail ()
      | Ok t ->
          let ot = Optimize.optimize t in
          ot.Tree.noutputs = t.Tree.noutputs
          && Tree.equal ot (Tree.renumber ot))

let test_optimize_removes_dominated () =
  (* The same test twice in a row: the second instance must disappear. *)
  let t = tree_of_pattern "12/0800 12/0800, -" in
  let ot = Optimize.optimize t in
  check "single node" 1 (Tree.node_count ot)

let test_optimize_contradiction () =
  (* 12/08 and 12/09 cannot both hold: output 0 is unreachable via an
     always-false path and the tree shrinks. *)
  let t = tree_of_pattern "12/08 12/09, -" in
  let ot = Optimize.optimize t in
  check "contradiction eliminated" 0 (Tree.node_count ot);
  check "always output 1" 1 (Tree.classify ot (udp ()))

let test_optimize_shares_subtrees () =
  let t =
    tree_of_pattern "12/0800 20/0001, 12/0806 20/0001, -"
  in
  let ot = Optimize.optimize t in
  check_bool "shared" true (Tree.node_count ot <= Tree.node_count t)

let test_compose () =
  (* Upstream picks IP vs rest; downstream splits IP by protocol. *)
  let t1 = tree_of_pattern "12/0800, -" in
  let t2 = tree_of_pattern "23/11, -" in
  let composed =
    Optimize.compose t1 ~output:0 t2
      ~remap_upper:(fun o -> o - 1) (* old output 1 -> 0 *)
      ~remap_lower:(fun o -> o + 1) (* t2 outputs -> 1, 2 *)
      ~noutputs:3
  in
  check "udp" 1 (Tree.classify composed (udp ()));
  check "non-ip" 0
    (Tree.classify composed
       (Headers.Build.arp_query
          ~src_eth:(Oclick_packet.Ethaddr.of_string_exn "00:11:22:33:44:55")
          ~src_ip:1 ~target_ip:2));
  let icmp = Headers.Build.icmp_echo ~src_ip:1 ~dst_ip:2 () in
  check "ip non-udp" 2 (Tree.classify composed icmp)

(* --- the DNS-5 firewall (paper §4) ------------------------------------------- *)

let firewall_rules =
  "deny ip frag, deny src net 127.0.0.0/8, deny src net 10.0.0.0/8, deny \
   src net 172.16.0.0/12, allow dst host 192.168.1.2 && tcp dst port 25, \
   allow src host 192.168.1.2 && tcp src port 25 && tcp opt ack, allow src \
   net 192.168.1.0/24 && tcp dst port 80, allow dst net 192.168.1.0/24 && \
   tcp src port 80 && tcp opt ack, deny tcp dst port 23, deny tcp dst port \
   111, allow dst host 192.168.1.2 && tcp dst port 22, allow icmp type 8, \
   allow icmp type 0, deny udp dst port 69, deny udp dst port 2049, allow \
   dst host 192.168.1.3 && udp dst port 53, deny all"

let test_firewall_dns5 () =
  let t =
    match Filter.ipfilter_tree firewall_rules with
    | Ok t -> Optimize.optimize t
    | Error e -> Alcotest.failf "firewall: %s" e
  in
  let dns5 =
    ip_packet (udp ~src:"204.152.184.134" ~dst:"192.168.1.3" ~dst_port:53 ())
  in
  check "dns5 allowed" 0 (Tree.classify t dns5);
  let out, visited = Tree.classify_count t dns5 in
  check "same out" 0 out;
  check_bool "long traversal" true (visited >= 8);
  (* the default deny *)
  check "random udp denied" Tree.drop
    (Tree.classify t (ip_packet (udp ~dst:"8.8.8.8" ())));
  (* spoofed source denied early *)
  let spoofed = ip_packet (udp ~src:"10.1.1.1" ~dst:"192.168.1.3" ~dst_port:53 ()) in
  check "spoof denied" Tree.drop (Tree.classify t spoofed);
  (* smtp to bastion allowed *)
  let smtp =
    ip_packet
      (Headers.Build.tcp ~src_ip:(Ipaddr.of_string_exn "4.4.4.4")
         ~dst_ip:(Ipaddr.of_string_exn "192.168.1.2") ~src_port:999
         ~dst_port:25 ())
  in
  check "smtp allowed" 0 (Tree.classify t smtp)

let () =
  Alcotest.run "classifier"
    [
      ( "patterns",
        [
          Alcotest.test_case "ethertype" `Quick test_pattern_ethertype;
          Alcotest.test_case "wildcard nibbles" `Quick
            test_pattern_wildcard_nibbles;
          Alcotest.test_case "explicit mask" `Quick test_pattern_explicit_mask;
          Alcotest.test_case "negation" `Quick test_pattern_negation;
          Alcotest.test_case "multiple clauses" `Quick
            test_pattern_multiple_clauses;
          Alcotest.test_case "short packet" `Quick test_pattern_short_packet;
          Alcotest.test_case "errors" `Quick test_pattern_errors;
        ] );
      ( "filter",
        [
          Alcotest.test_case "proto" `Quick test_filter_proto;
          Alcotest.test_case "host directions" `Quick test_filter_host_dir;
          Alcotest.test_case "net" `Quick test_filter_net;
          Alcotest.test_case "port" `Quick test_filter_port;
          Alcotest.test_case "port names" `Quick test_filter_port_names;
          Alcotest.test_case "port range" `Quick test_filter_port_range;
          QCheck_alcotest.to_alcotest prop_port_range_membership;
          Alcotest.test_case "fragment guard" `Quick
            test_filter_fragment_guard;
          Alcotest.test_case "boolean ops" `Quick test_filter_boolean_ops;
          Alcotest.test_case "icmp type" `Quick test_filter_icmp_type;
          Alcotest.test_case "tcp opt" `Quick test_filter_tcp_opt;
          Alcotest.test_case "ip fields" `Quick test_filter_ip_fields;
          Alcotest.test_case "actions" `Quick test_ipfilter_actions;
          Alcotest.test_case "errors" `Quick test_filter_errors;
        ] );
      ( "tree",
        [
          Alcotest.test_case "depth/count" `Quick test_tree_depth_count;
          Alcotest.test_case "dump round trip" `Quick test_tree_dump_roundtrip;
          Alcotest.test_case "dump errors" `Quick test_tree_dump_errors;
          Alcotest.test_case "leaf tree" `Quick test_leaf_tree;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "dominated" `Quick test_optimize_removes_dominated;
          Alcotest.test_case "contradiction" `Quick test_optimize_contradiction;
          Alcotest.test_case "sharing" `Quick test_optimize_shares_subtrees;
          Alcotest.test_case "compose" `Quick test_compose;
        ] );
      ("firewall", [ Alcotest.test_case "DNS-5" `Quick test_firewall_dns5 ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_optimize_preserves_semantics;
            prop_compile_matches_interpreter;
            prop_truncated_backends_agree;
            prop_optimize_preserves_shape;
          ] );
    ]
