module Hooks = Oclick_runtime.Hooks

type category = Receive | Forward | Transmit

(* 112 ns main-memory fetch at 700 MHz (paper §8.2). *)
let memory_fetch_cycles = 78

(* Packet-transfer costs (paper §3): a correctly predicted virtual call
   takes about 7 cycles; mispredicted calls take dozens; devirtualized
   calls are conventional direct calls. *)
let direct_call_cycles = 3
let predicted_call_cycles = 7
let mispredicted_call_cycles = 42

(* Per-packet cost, in cycles, of each element class's code. Calibrated so
   that the Figure 1 router under the paper's workload costs ~1160 cycles
   (1657 ns at 700 MHz) on its forwarding path, 701 ns in receive-device
   and 547 ns in transmit-device interactions (Fig. 8). *)
let class_base_cycles = function
  | "PollDevice" | "FromDevice" -> 412 (* + 1 structural miss = 701 ns *)
  | "ToDevice" -> 305 (* + 1 structural miss = 547 ns *)
  | "Classifier" | "IPClassifier" | "IPFilter" -> 26 (* + per-node work *)
  | "FastClassifier" -> 14 (* + per-node work *)
  | "Paint" -> 16
  | "Strip" -> 16
  | "Unstrip" -> 16
  | "CheckIPHeader" -> 125 (* + checksum work *)
  | "GetIPAddress" -> 16
  | "SetIPAddress" -> 14
  | "LookupIPRoute" | "StaticIPLookup" | "LinearIPLookup" ->
      90 (* + per-entry / per-touch work *)
  | "DropBroadcasts" -> 14
  | "CheckPaint" | "PaintTee" -> 22
  | "IPGWOptions" -> 34
  | "FixIPSrc" -> 14
  | "DecIPTTL" -> 42
  | "IPFragmenter" -> 28
  | "ARPQuerier" -> 52 (* table lookup + header write *)
  | "ARPResponder" -> 60
  | "EtherEncap" -> 30
  | "ICMPError" -> 220
  | "Queue" -> 38 (* each enqueue or dequeue entry *)
  | "Unqueue" -> 22 (* dequeue + push handoff, no device I/O *)
  | "RED" -> 60
  | "Counter" -> 14
  | "Tee" -> 30
  | "StaticSwitch" -> 10
  | "PaintSwitch" -> 12
  | "Discard" -> 8
  | "Idle" -> 4
  | "Print" -> 120
  | "RouterLink" -> 8
  | "Align" -> 30 (* + copy work *)
  | "AlignmentInfo" -> 0
  | "IPInputCombo" -> 95 (* fused Paint/Strip/CheckIPHeader/GetIPAddress *)
  | "IPOutputCombo" -> 80 (* fused output-path elements *)
  | "InfiniteSource" | "UDPSource" | "RatedSource" -> 90
  | _ -> 40 (* unknown classes get a generic element cost *)

(* Classes written with Click's [simple_action] sugar share one dispatch
   site in Element::push, so they fight over a single BTB entry — the
   paper's §3 footnote. A forwarding path that chains several of them
   mispredicts on every hop, which is precisely the overlap between what
   click-xform removes and what click-devirtualize fixes. *)
let uses_simple_action = function
  | "Paint" | "Strip" | "Unstrip" | "GetIPAddress" | "SetIPAddress"
  | "DropBroadcasts" | "FixIPSrc" | "Counter" ->
      true
  | _ -> false

(* Rough hot-path code footprint per code class, bytes, for the L1i
   model. The whole Figure 1 router fits comfortably in the 16 KB L1i
   (the paper measures zero i-cache misses, §8.2); only heavy code
   duplication — e.g. devirtualizing every element of a large
   configuration — overflows it. *)
let class_code_bytes = function
  | "PollDevice" | "FromDevice" | "ToDevice" -> 1200
  | "CheckIPHeader" | "LookupIPRoute" | "StaticIPLookup" | "LinearIPLookup"
  | "ICMPError" ->
      800
  | "Classifier" | "IPClassifier" | "IPFilter" -> 900
  | "ARPQuerier" -> 700
  | "IPInputCombo" | "IPOutputCombo" -> 1000
  | "Queue" -> 500
  | "Unqueue" -> 300
  | "FastClassifier" -> 300
  | _ -> 400

(* Devirtualize@@Orig@@N and FastClassifier@@name resolve to a base class
   for costing; the specialized copy still occupies its own i-cache
   space. *)
let rec strip_generated cls =
  let starts p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  if starts "FastClassifier@@" cls then "FastClassifier"
  else if starts "Devirtualize@@" cls then begin
    (* Devirtualize@@ORIG@@N; ORIG may itself contain "@@" *)
    let body = String.sub cls 14 (String.length cls - 14) in
    let rec last_sep i best =
      if i + 2 > String.length body then best
      else if String.sub body i 2 = "@@" then last_sep (i + 1) (Some i)
      else last_sep (i + 1) best
    in
    match last_sep 0 None with
    | Some i when i > 0 -> strip_generated (String.sub body 0 i)
    | _ -> cls
  end
  else cls

type t = {
  btb : Btb.t;
  l1i_bytes : int;
  code_classes : (string, unit) Hashtbl.t;
  mutable footprint : int;
}

let create ?(l1i_bytes = 16 * 1024) () =
  {
    btb = Btb.create ();
    l1i_bytes;
    code_classes = Hashtbl.create 32;
    footprint = 0;
  }

let btb t = t.btb

let note_code_class t cls =
  if not (Hashtbl.mem t.code_classes cls) then begin
    Hashtbl.replace t.code_classes cls ();
    t.footprint <- t.footprint + class_code_bytes (strip_generated cls)
  end

let code_footprint_bytes t = t.footprint

(* When the configuration's code exceeds L1i, every element entry risks an
   instruction fetch from L2; charge proportionally to the overflow. *)
let icache_penalty t =
  if t.footprint <= t.l1i_bytes then 0
  else
    let overflow = t.footprint - t.l1i_bytes in
    min memory_fetch_cycles (overflow * 48 / t.l1i_bytes)

let element_cycles t ~cls =
  class_base_cycles (strip_generated cls) + icache_penalty t

let transfer_cycles t (tr : Hooks.transfer) =
  if tr.Hooks.tr_direct then direct_call_cycles
  else begin
    let site =
      if uses_simple_action (strip_generated tr.tr_src_class) then
        ("simple_action", 0, false)
      else (tr.tr_src_class, tr.tr_src_port, tr.tr_pull)
    in
    if Btb.access t.btb ~site ~target:tr.tr_dst_idx then predicted_call_cycles
    else mispredicted_call_cycles
  end

let work_cycles = function
  | Hooks.W_classify_interp nodes -> 16 * nodes
  | Hooks.W_classify_compiled nodes -> 6 * nodes
  | Hooks.W_checksum bytes -> bytes
  | Hooks.W_copy bytes -> 20 + (bytes / 2)
  | Hooks.W_lookup entries -> 4 * entries
  | Hooks.W_queue -> 8
  | Hooks.W_custom (_, n) -> n

let category_of_class cls =
  match strip_generated cls with
  | "PollDevice" | "FromDevice" -> Receive
  | "ToDevice" -> Transmit
  | _ -> Forward

let structural_miss_cycles = function
  | Receive -> memory_fetch_cycles (* RX descriptor fetch *)
  | Forward -> 2 * memory_fetch_cycles (* Ethernet + IP header fetches *)
  | Transmit -> memory_fetch_cycles (* TX descriptor cleanup *)

let instructions_of_class cls = class_base_cycles (strip_generated cls)
