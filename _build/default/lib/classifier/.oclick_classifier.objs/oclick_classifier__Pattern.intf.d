lib/classifier/pattern.mli: Bexpr Tree
