lib/packet/headers.mli: Ethaddr Ipaddr Packet
