(* Compiled vs FDD-fused datapath on a cascaded-classifier config.

   The whole-graph compiler (bench/compile.ml) already removes dispatch
   overhead: every stage of a classifier cascade runs as a compiled
   decision tree behind a direct-call connection. What it cannot remove
   is the cascade itself — twelve stages re-testing the same header
   bytes still walk twelve trees per packet. The FDD pass collapses the
   whole region into one forwarding decision diagram, so tests repeated
   across stages are decided once and shared subtrees are hash-consed:
   the per-packet cost drops from (stages x tests) to the number of
   *distinct* tests, plus one cheap per-member bookkeeping op each.

   Both variants run identical element semantics over identical traffic
   through the same instantiated graph, so the ratio isolates exactly
   what fusion removes. The IP-router rows are the honest context: its
   regions are short (classifier + route + combo), so fusion there is
   roughly neutral on wall clock — the cascade is where the paper-style
   win lives. *)

module Driver = Oclick_runtime.Driver
module Netdevice = Oclick_runtime.Netdevice
module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ethaddr = Oclick_packet.Ethaddr
module Ipaddr = Oclick_packet.Ipaddr
module Fdd = Oclick_fdd

let () = Oclick_compile.register ()

let n_ifaces = 2
let burst = 256
let stages = 12

type rig = {
  rg_driver : Driver.t;
  rg_devs : Netdevice.queue_device array;
}

let make_rig ~graph ~batch ~compile ~fuse =
  let devs =
    Array.init n_ifaces (fun i ->
        new Netdevice.queue_device (Printf.sprintf "eth%d" i) ())
  in
  let devices =
    Array.to_list (Array.map (fun d -> (d :> Netdevice.t)) devs)
  in
  match Driver.instantiate ~devices ~batch ~compile ~fuse graph with
  | Ok d -> { rg_driver = d; rg_devs = devs }
  | Error e -> failwith ("fdd bench: " ^ e)

(* The one traffic flow: host on eth0 sends UDP to the host on eth1. *)
let template =
  Headers.Build.udp
    ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
    ~dst_eth:(Ethaddr.of_string_exn "00:00:c0:00:00:01")
    ~src_ip:(Ipaddr.of_octets 10 0 0 2)
    ~dst_ip:(Ipaddr.of_octets 10 0 1 2)
    ~ttl:64 ()

let answer_arp (dev : Netdevice.queue_device) host_eth =
  match dev#collect with
  | Some q when Headers.Ether.ethertype q = 0x806 ->
      dev#inject
        (Headers.Build.arp_reply ~src_eth:host_eth
           ~src_ip:(Headers.Arp.target_ip ~off:14 q)
           ~dst_eth:(Headers.Arp.sender_eth ~off:14 q)
           ~dst_ip:(Headers.Arp.sender_ip ~off:14 q))
  | Some _ -> failwith "fdd bench: expected an ARP query"
  | None -> failwith "fdd bench: no ARP query emitted"

let prime ~arp rig =
  rig.rg_devs.(0)#inject (Packet.clone template);
  ignore (Driver.run_until_idle rig.rg_driver);
  if arp then begin
    answer_arp rig.rg_devs.(1) (Ethaddr.of_string_exn "00:00:c0:bb:01:02");
    ignore (Driver.run_until_idle rig.rg_driver)
  end;
  let rec drain n =
    match rig.rg_devs.(1)#collect with Some _ -> drain (n + 1) | None -> n
  in
  if drain 0 < 1 then failwith "fdd bench: priming forward failed"

let run_burst rig =
  let len = Packet.length template in
  for _ = 1 to burst do
    let p = Packet.create len in
    Packet.blit ~src:template ~src_pos:0 ~dst:p ~dst_pos:0 ~len;
    rig.rg_devs.(0)#inject p
  done;
  ignore (Driver.run_until_idle rig.rg_driver);
  let rec drain n =
    match rig.rg_devs.(1)#collect with
    | Some _ -> drain (n + 1)
    | None -> n
  in
  drain 0

(* Best-of-[reps] wall-clock measurement (Common.best_of_windows), as in
   bench/compile.ml: the fastest repetition is the quantity the
   compiled/fused ratio needs. *)
let run_mode ~graph ~arp ~batch ~compile ~fuse ~packets =
  let rig = make_rig ~graph ~batch ~compile ~fuse in
  let regions =
    if fuse then
      match Oclick_compile.last_stats () with
      | Some st -> st.Oclick_compile.st_regions
      | None -> []
    else []
  in
  prime ~arp rig;
  let bursts = max 1 (packets / burst) in
  let reps = if !Common.smoke then 1 else 3 in
  for _ = 1 to max 1 (bursts / 10) do
    ignore (run_burst rig)
  done;
  let w =
    Common.best_of_windows ~reps (fun () ->
        let forwarded = ref 0 in
        for _ = 1 to bursts do
          forwarded := !forwarded + run_burst rig
        done;
        !forwarded)
  in
  ((w.Common.w_forwarded, bursts * burst, w.Common.w_seconds, w.Common.w_pps),
   regions)

(* The cascade: [stages] identical Classifier stages, each re-matching
   the flow's ethertype, IP version/IHL, TTL, protocol, and both
   addresses — six word tests per stage, all redundant after the first
   stage. The compiled path walks stages x 6 tests per packet; the FDD
   decides each distinct test once, so the fused diagram is one stage
   deep regardless of cascade length. Fall-throughs go to Discard, so
   the region has real multi-exit structure, not a straight line. *)
let stage_pattern =
  "12/0800 14/45 22/40 23/11 26/0a000002 30/0a000102"

let cascade_graph =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "pd :: PollDevice(eth0);\n";
  add "outq :: Queue(200);\n";
  add "td :: ToDevice(eth1);\n";
  for i = 0 to stages - 1 do
    add "k%d :: Classifier(%s, -);\n" i stage_pattern
  done;
  add "pd -> k0;\n";
  for i = 0 to stages - 2 do
    add "k%d [0] -> k%d;\n" i (i + 1);
    add "k%d [1] -> Discard;\n" i
  done;
  add "k%d [0] -> outq -> td;\n" (stages - 1);
  add "k%d [1] -> Discard;\n" (stages - 1);
  Oclick.Ip_router.graph (Buffer.contents buf)

let variant_json ~name ~batch ~fuse (fwd, off, dt, pps) =
  Common.J_obj
    [
      ("name", Common.J_string name);
      ("batch", Common.J_int batch);
      ("compiled", Common.J_bool true);
      ("fused", Common.J_bool fuse);
      ("offered", Common.J_int off);
      ("forwarded", Common.J_int fwd);
      ("seconds", Common.J_float dt);
      ("pps", Common.J_float pps);
    ]

let region_json (r : Fdd.region) =
  Common.J_obj
    [
      ("entry", Common.J_string r.Fdd.rg_entry);
      ( "members",
        Common.J_list
          (List.map (fun m -> Common.J_string m) r.Fdd.rg_members) );
      ("nodes", Common.J_int r.Fdd.rg_nodes);
      ("actions", Common.J_int r.Fdd.rg_actions);
    ]

let print_variant name (fwd, _off, dt, pps) =
  Printf.printf "%-34s %12d %12.1f %10.3f\n" name fwd (Common.kpps pps) dt

let run () =
  Common.section "fdd: compiled vs FDD-fused datapath (wall clock)";
  let packets = if !Common.smoke then 2_048 else 262_144 in
  let batch_size = 32 in
  Printf.printf
    "classifier cascade (%d stages, %d tests each), one UDP flow, %d \
     packets per variant\n\n"
    stages 6 packets;
  let kc_s, _ =
    run_mode ~graph:cascade_graph ~arp:false ~batch:1 ~compile:true
      ~fuse:false ~packets
  in
  let kf_s, cascade_regions =
    run_mode ~graph:cascade_graph ~arp:false ~batch:1 ~compile:false
      ~fuse:true ~packets
  in
  let kc_b, _ =
    run_mode ~graph:cascade_graph ~arp:false ~batch:batch_size ~compile:true
      ~fuse:false ~packets
  in
  let kf_b, _ =
    run_mode ~graph:cascade_graph ~arp:false ~batch:batch_size ~compile:false
      ~fuse:true ~packets
  in
  let ip = Common.base_graph n_ifaces in
  let ip_c, _ =
    run_mode ~graph:ip ~arp:true ~batch:1 ~compile:true ~fuse:false ~packets
  in
  let ip_f, ip_regions =
    run_mode ~graph:ip ~arp:true ~batch:1 ~compile:false ~fuse:true ~packets
  in
  let pps (_, _, _, v) = v in
  let speedup_scalar = pps kf_s /. pps kc_s in
  let speedup_batch = pps kf_b /. pps kc_b in
  let speedup_ip = pps ip_f /. pps ip_c in
  Printf.printf "%-34s %12s %12s %10s\n" "variant" "forwarded" "kpkts/s"
    "time s";
  print_variant "cascade12/compiled scalar" kc_s;
  print_variant "cascade12/fused scalar" kf_s;
  print_variant
    (Printf.sprintf "cascade12/compiled batch %d" batch_size)
    kc_b;
  print_variant (Printf.sprintf "cascade12/fused batch %d" batch_size) kf_b;
  print_variant "ip/compiled scalar" ip_c;
  print_variant "ip/fused scalar" ip_f;
  (match cascade_regions with
  | [] -> Printf.printf "\n(no fused region formed on the cascade!)\n"
  | rs ->
      Printf.printf "\nfused regions (cascade):\n";
      List.iter
        (fun (r : Fdd.region) ->
          Printf.printf "  %s + %d members: %d nodes, %d actions\n"
            r.Fdd.rg_entry
            (List.length r.Fdd.rg_members)
            r.Fdd.rg_nodes r.Fdd.rg_actions)
        rs);
  Printf.printf
    "\nspeedup over compiled: cascade scalar %.2fx, cascade batch %.2fx, \
     ip router %.2fx\n"
    speedup_scalar speedup_batch speedup_ip;
  Common.write_json ~section:"fdd"
    (Common.J_obj
       [
         ("section", Common.J_string "fdd");
         ("stages", Common.J_int stages);
         ("burst", Common.J_int burst);
         ("smoke", Common.J_bool !Common.smoke);
         ( "variants",
           Common.J_list
             [
               variant_json ~name:"cascade12/compiled-scalar" ~batch:1
                 ~fuse:false kc_s;
               variant_json ~name:"cascade12/fused-scalar" ~batch:1 ~fuse:true
                 kf_s;
               variant_json ~name:"cascade12/compiled-batch" ~batch:batch_size
                 ~fuse:false kc_b;
               variant_json ~name:"cascade12/fused-batch" ~batch:batch_size
                 ~fuse:true kf_b;
               variant_json ~name:"ip/compiled-scalar" ~batch:1 ~fuse:false
                 ip_c;
               variant_json ~name:"ip/fused-scalar" ~batch:1 ~fuse:true ip_f;
             ] );
         ("cascade_regions", Common.J_list (List.map region_json cascade_regions));
         ("ip_regions", Common.J_list (List.map region_json ip_regions));
         ("speedup_cascade_scalar", Common.J_float speedup_scalar);
         ("speedup_cascade_batch", Common.J_float speedup_batch);
         ("speedup_ip", Common.J_float speedup_ip);
       ])
