lib/optim/combine.mli: Oclick_graph
