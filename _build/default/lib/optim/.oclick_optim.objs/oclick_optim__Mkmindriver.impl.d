lib/optim/mkmindriver.ml: Buffer Hashtbl List Oclick_graph Printf String
