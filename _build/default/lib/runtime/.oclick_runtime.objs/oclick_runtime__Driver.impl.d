lib/runtime/driver.ml: Array Element Hashtbl Hooks List Netdevice Oclick_graph Option Printf Registry String
