bin/click_flatten.ml: Cmdliner Oclick_graph Oclick_lang Term Tool_common
