module Router = Oclick_graph.Router
module Tree = Oclick_classifier.Tree
module Optimize = Oclick_classifier.Optimize

type generated = { g_class : string; g_tree : Tree.t; g_source : string }

let tree_of_element router i =
  let cls = Router.class_of router i and cfg = Router.config router i in
  match cls with
  | "Classifier" -> Some (Oclick_classifier.Pattern.tree_of_config cfg)
  | "IPClassifier" -> Some (Oclick_classifier.Filter.ipclassifier_tree cfg)
  | "IPFilter" -> Some (Oclick_classifier.Filter.ipfilter_tree cfg)
  | _ -> None

exception Fail of string

(* Combine c1[k] -> c2 when both are raw Classifiers and c2's only input
   is that connection: the trees compose into one (paper: "combines
   adjacent Classifiers to improve optimization possibilities"). *)
let combine_adjacent router trees =
  let find_combinable () =
    List.find_map
      (fun i ->
        if String.equal (Router.class_of router i) "Classifier" then
          List.find_map
            (fun (port, j, _jport) ->
              if
                String.equal (Router.class_of router j) "Classifier"
                && i <> j
                && List.length (Router.inputs_of router j) = 1
              then Some (i, port, j)
              else None)
            (Router.outputs_of router i)
        else None)
      (Router.indices router)
  in
  let rec loop () =
    match find_combinable () with
    | None -> ()
    | Some (i, k, j) ->
        let t1 : Tree.t = Hashtbl.find trees i
        and t2 : Tree.t = Hashtbl.find trees j in
        let n1 = t1.Tree.noutputs and n2 = t2.Tree.noutputs in
        (* Combined outputs: t1's outputs with k removed, then t2's. *)
        let remap_upper o = if o < k then o else o - 1 in
        let remap_lower o = n1 - 1 + o in
        let combined =
          Optimize.compose t1 ~output:k t2 ~remap_upper ~remap_lower
            ~noutputs:(n1 - 1 + n2)
        in
        (* Rewire: outputs of i other than k shift down; j's outputs are
           appended after them. *)
        let outs_i = Router.outputs_of router i
        and outs_j = Router.outputs_of router j in
        List.iter
          (fun (p, d, dp) ->
            Router.remove_hookup router
              { Router.from_idx = i; from_port = p; to_idx = d; to_port = dp })
          outs_i;
        Router.remove_element router j;
        List.iter
          (fun (p, d, dp) ->
            if d <> j && p <> k then
              Router.add_hookup router
                {
                  Router.from_idx = i;
                  from_port = remap_upper p;
                  to_idx = d;
                  to_port = dp;
                })
          outs_i;
        List.iter
          (fun (p, d, dp) ->
            Router.add_hookup router
              {
                Router.from_idx = i;
                from_port = remap_lower p;
                to_idx = d;
                to_port = dp;
              })
          outs_j;
        Hashtbl.replace trees i combined;
        Hashtbl.remove trees j;
        (* The combined element is a plain Classifier no more; mark its
           config as synthetic. *)
        Router.set_config router i
          (Router.config router i ^ " /* combined */");
        loop ()
  in
  loop ()

let run ?(install = true) source =
  let router = Router.copy source in
  (* 1. Build every classifier's decision tree (the harness step). *)
  let trees : (int, Tree.t) Hashtbl.t = Hashtbl.create 8 in
  match
    List.iter
      (fun i ->
        match tree_of_element router i with
        | None -> ()
        | Some (Error e) ->
            raise (Fail (Printf.sprintf "%s: %s" (Router.name router i) e))
        | Some (Ok t) -> Hashtbl.replace trees i t)
      (Router.indices router)
  with
  | exception Fail msg -> Error msg
  | () ->
      if Hashtbl.length trees = 0 then Ok (router, [])
      else begin
        (* 2. Combine adjacent Classifiers. *)
        combine_adjacent router trees;
        (* 3. Optimize; round-trip each tree through the dump format, as
           the real tool parses Click's human-readable tree output. *)
        let items =
          List.filter_map
            (fun i ->
              match Hashtbl.find_opt trees i with
              | None -> None
              | Some t ->
                  let t = Optimize.optimize t in
                  let dumped = Tree.to_string t in
                  let t =
                    match Tree.of_string dumped with
                    | Ok t -> t
                    | Error e ->
                        failwith ("fastclassifier: dump round-trip failed: " ^ e)
                  in
                  Some (i, t))
            (Router.indices router)
        in
        (* 4. One generated class per distinct tree. *)
        let by_dump : (string, generated) Hashtbl.t = Hashtbl.create 8 in
        let generated = ref [] in
        let out =
          List.map
            (fun (i, t) ->
              let key = Tree.to_string (Tree.renumber t) in
              let g =
                match Hashtbl.find_opt by_dump key with
                | Some g -> g
                | None ->
                    let cls =
                      Printf.sprintf "FastClassifier@@%s" (Router.name router i)
                    in
                    let source =
                      Oclick_classifier.Codegen.ocaml_source ~class_name:cls
                        ~original_config:(Router.config router i) t
                    in
                    let g = { g_class = cls; g_tree = t; g_source = source } in
                    Hashtbl.replace by_dump key g;
                    generated := g :: !generated;
                    g
              in
              (i, g))
            items
        in
        (* 5. Rewrite the configuration and attach the generated code. *)
        List.iter
          (fun (i, g) ->
            Router.set_class router i g.g_class;
            Router.set_config router i "")
          out;
        List.iter
          (fun g ->
            Router.set_archive_member router
              ~name:(Printf.sprintf "%s.ml" g.g_class)
              ~body:g.g_source;
            (* The tree dump also rides in the archive so a later process
               (click-check, the driver) can install the class — the
               machine-readable half of the generated code. *)
            Router.set_archive_member router
              ~name:(Printf.sprintf "%s.tree" g.g_class)
              ~body:(Tree.to_string g.g_tree);
            if install then
              Oclick_elements.register_fast_classifier ~class_name:g.g_class
                g.g_tree)
          (List.rev !generated);
        if !generated <> [] then Router.add_requirement router "fastclassifier";
        Ok (router, List.rev !generated)
      end
