module Graph = Oclick_graph

type t = {
  graph : Graph.Router.t;
  elements : Element.t array;
  by_name : (string, Element.t) Hashtbl.t;
  tasks : Element.t array;
  hooks : Hooks.t;
  mutable rr : int;
      (* Round-robin rotation offset: each call to [run_tasks_once] starts
         the task sweep one position later, so no element is permanently
         favored by declaration order. *)
}

(* The graph compiler is a higher layer (lib/compile depends on this
   library), so it reaches instantiate through a registration point:
   [Oclick_compile.register ()] installs it, [?compile] invokes it. *)
let compiler : (fuse:bool -> t -> (unit, string) result) option ref = ref None
let register_compiler f = compiler := Some f

let compile_installed ?(fuse = false) t =
  match !compiler with
  | None ->
      Error
        "compile: no graph compiler registered (call Oclick_compile.register)"
  | Some f -> (
      match f ~fuse t with
      | Ok () -> Ok t
      | Error e -> Error ("compile: " ^ e))

let instantiate ?(hooks = Hooks.null) ?(devices = []) ?mangle ?quarantine
    ?(batch = 1) ?pool ?(compile = false) ?(fuse = false) ?clock source_graph =
  (* With a pool installed, every accounted drop is also a recycling
     opportunity: the packet is dead once reported. The user's drop hook
     runs first and must not retain the packet. *)
  let hooks =
    match pool with
    | None -> hooks
    | Some pl ->
        let user_on_drop = hooks.Hooks.on_drop in
        {
          hooks with
          Hooks.on_drop =
            (fun ~idx ~cls ~reason p ->
              user_on_drop ~idx ~cls ~reason p;
              Oclick_packet.Packet.Pool.recycle pl p);
        }
  in
  (* Normalize so element indices are dense and in declaration order. *)
  let graph = Graph.Router.of_ast_exn (Graph.Router.to_ast source_graph) in
  let errors = Graph.Check.check graph Registry.spec_table in
  if errors <> [] then Error (String.concat "\n" errors)
  else begin
    match Graph.Check.resolve_processing graph Registry.spec_table with
    | Error msgs -> Error (String.concat "\n" msgs)
    | Ok resolved -> (
        let indices = Graph.Router.indices graph in
        let n = List.length indices in
        let elements = Array.make n None in
        let errors = ref [] in
        let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
        List.iter
          (fun i ->
            let cls = Graph.Router.class_of graph i in
            match Registry.find cls with
            | None -> err "%s: unknown element class %S" (Graph.Router.name graph i) cls
            | Some ctor ->
                let e = ctor (Graph.Router.name graph i) in
                e#set_index i;
                e#set_hooks hooks;
                e#set_mangle mangle;
                e#set_batch_size batch;
                e#set_pool pool;
                (match clock with Some c -> e#set_clock c | None -> ());
                (match quarantine with
                | Some n -> e#set_quarantine_threshold n
                | None -> ());
                elements.(i) <- Some e)
          indices;
        if !errors <> [] then Error (String.concat "\n" (List.rev !errors))
        else begin
          let elements = Array.map Option.get elements in
          let by_name = Hashtbl.create n in
          Array.iter (fun e -> Hashtbl.replace by_name e#name e) elements;
          (* Configure. *)
          Array.iteri
            (fun i e ->
              match e#configure (Graph.Router.config graph i) with
              | Ok () -> ()
              | Error msg -> err "%s: %s" e#name msg)
            elements;
          (* Ports and wiring. *)
          Array.iteri
            (fun i e ->
              e#set_nports
                ~inputs:(Graph.Router.input_port_count graph i)
                ~outputs:(Graph.Router.output_port_count graph i))
            elements;
          List.iter
            (fun (h : Graph.Router.hookup) ->
              let kind =
                resolved.Graph.Check.output_kind.(h.from_idx).(h.from_port)
              in
              match kind with
              | Graph.Spec.Push | Graph.Spec.Agnostic ->
                  elements.(h.from_idx)#connect_output h.from_port
                    elements.(h.to_idx) h.to_port
              | Graph.Spec.Pull ->
                  elements.(h.to_idx)#connect_input h.to_port
                    elements.(h.from_idx) h.from_port)
            (Graph.Router.hookups graph);
          (* Initialize. *)
          let device_table = Hashtbl.create 8 in
          List.iter
            (fun (d : Netdevice.t) -> Hashtbl.replace device_table d#device_name d)
            devices;
          Array.iteri
            (fun i e ->
              let ctx =
                {
                  Element.ic_graph = graph;
                  ic_element = (fun j -> elements.(j));
                  ic_find = Hashtbl.find_opt by_name;
                  ic_device = Hashtbl.find_opt device_table;
                  ic_index = i;
                }
              in
              match e#initialize ctx with
              | Ok () -> ()
              | Error msg -> err "%s: %s" e#name msg)
            elements;
          if !errors <> [] then Error (String.concat "\n" (List.rev !errors))
          else begin
            let tasks =
              Array.of_list
                (List.filter (fun e -> e#wants_task) (Array.to_list elements))
            in
            let t = { graph; elements; by_name; tasks; hooks; rr = 0 } in
            if compile || fuse then compile_installed ~fuse t else Ok t
          end
        end)
  end

let of_string ?hooks ?devices ?mangle ?quarantine ?batch ?pool ?compile ?fuse
    ?clock source =
  match Graph.Router.parse_string source with
  | Error e -> Error e
  | Ok graph ->
      instantiate ?hooks ?devices ?mangle ?quarantine ?batch ?pool ?compile
        ?fuse ?clock graph

let element t name = Hashtbl.find_opt t.by_name name
let element_at t i = t.elements.(i)
let graph t = t.graph
let size t = Array.length t.elements
let hooks t = t.hooks

let tasks t = t.tasks
let compile ?fuse t = Result.map (fun _ -> ()) (compile_installed ?fuse t)

let run_task_array tasks ~start =
  let n = Array.length tasks in
  let any = ref false in
  for i = 0 to n - 1 do
    let e = tasks.((start + i) mod n) in
    if not e#is_quarantined then
      match e#run_task with
      | did -> if did then any := true
      | exception e' when not (Element.fatal e') ->
          e#record_fault (Printexc.to_string e');
          any := true
  done;
  !any

let run_tasks_once t =
  let n = Array.length t.tasks in
  if n = 0 then false
  else begin
    let any = run_task_array t.tasks ~start:t.rr in
    t.rr <- (t.rr + 1) mod n;
    any
  end

let run t ~rounds =
  for _ = 1 to rounds do
    ignore (run_tasks_once t)
  done

let run_until_idle ?(max_rounds = 1_000_000) t =
  let rec loop n = if n > 0 && run_tasks_once t then loop (n - 1) else n > 0 in
  let converged = loop max_rounds in
  if not converged then
    t.hooks.Hooks.on_warn ~src:"driver"
      (Printf.sprintf
         "run_until_idle: still busy after %d rounds (possible livelock)"
         max_rounds);
  converged

let fault_report t =
  Array.to_list t.elements
  |> List.filter_map (fun e ->
         if e#fault_count > 0 then
           Some (e#name, e#fault_count, e#is_quarantined)
         else None)
