(* Basic traffic-handling elements: sinks, switches, queues, RED. *)

open Prelude

(* Discard: a sink. With a push input it just counts; with a pull input it
   runs as a task, actively pulling packets (as in Click). *)
class discard name =
  object (self)
    inherit E.base name
    val mutable count = 0
    val mutable pull_mode = false
    method class_name = "Discard"
    method! port_count = "1/0"
    method! processing = "a/a"

    method! initialize ctx =
      (* Pull mode iff the upstream output resolved to pull: detect from the
         graph by asking whether our input peer is a pull output. *)
      let graph = ctx.E.ic_graph in
      (match Oclick_graph.Check.resolve_processing graph Registry.spec_table with
      | Ok r ->
          let kinds = r.Oclick_graph.Check.input_kind.(ctx.E.ic_index) in
          if Array.length kinds > 0 && kinds.(0) = Spec.Pull then
            pull_mode <- true
      | Error _ -> ());
      Ok ()

    method! push _ p =
      count <- count + 1;
      self#drop ~reason:"discarded" p

    method! wants_task = pull_mode

    method! run_task =
      match self#input_pull 0 with
      | Some p ->
          count <- count + 1;
          self#drop ~reason:"discarded" p;
          true
      | None -> false

    method! push_batch _ batch =
      let n = Array.length batch in
      count <- count + n;
      for i = 0 to n - 1 do
        self#drop ~reason:"discarded" batch.(i)
      done

    method! fuse _ =
      Some
        (fun p ->
          count <- count + 1;
          self#drop ~reason:"discarded" p)

    method! stats = [ ("count", count) ]
  end

class idle name =
  object (self)
    inherit E.base name
    method class_name = "Idle"
    method! port_count = "-/-"
    method! processing = "a/a"
    method! push _ p = self#drop ~reason:"discarded" p
    method! pull _ = None
    method! configure _ = Ok ()
  end

class counter name =
  object (self)
    inherit E.base name
    val mutable packets = 0
    val mutable bytes = 0
    method class_name = "Counter"

    method! push _ p =
      packets <- packets + 1;
      bytes <- bytes + Packet.length p;
      self#output 0 p

    method! pull _ =
      match self#input_pull 0 with
      | Some p ->
          packets <- packets + 1;
          bytes <- bytes + Packet.length p;
          Some p
      | None -> None

    method! push_batch _ batch =
      let n = Array.length batch in
      packets <- packets + n;
      for i = 0 to n - 1 do
        bytes <- bytes + Packet.length batch.(i)
      done;
      self#output_batch 0 batch

    method! fuse ctx =
      let k = ctx.E.fc_out 0 in
      Some
        (fun p ->
          packets <- packets + 1;
          bytes <- bytes + Packet.length p;
          k p)

    method! stats = [ ("packets", packets); ("bytes", bytes) ]

    method! write_handler handler _value =
      match handler with
      | "reset" ->
          packets <- 0;
          bytes <- 0;
          Ok ()
      | h -> Error (Printf.sprintf "Counter: no write handler %S" h)
  end

(* Tee: clones to outputs 1..n-1, sends the original to output 0. *)
class tee name =
  object (self)
    inherit E.base name
    val mutable configured_n = -1
    method class_name = "Tee"
    method! port_count = "1/1-"
    method! processing = "h/h"

    method! configure config =
      match Args.split config with
      | [] -> Ok ()
      | [ n ] -> (
          match Args.parse_int n with
          | Some k when k >= 1 ->
              configured_n <- k;
              Ok ()
          | _ -> Error (Printf.sprintf "bad Tee output count %S" n))
      | _ -> Error "Tee takes at most one argument"

    method! push _ p =
      for port = 1 to self#noutputs - 1 do
        let c = Packet.clone p in
        self#spawn c;
        self#output port c
      done;
      self#output 0 p
  end

class static_switch name =
  object (self)
    inherit E.base name
    val mutable target = 0
    method class_name = "StaticSwitch"
    method! port_count = "1/-"
    method! processing = "h/h"

    method! configure config =
      match Args.parse_int config with
      | Some k -> Ok (target <- k)
      | None -> Error "StaticSwitch expects an output number"

    method! push _ p =
      if target >= 0 && target < self#noutputs then self#output target p
      else self#drop ~reason:"switched off" p
  end

(* PaintSwitch: route by the paint annotation. *)
class paint_switch name =
  object (self)
    inherit E.base name
    method class_name = "PaintSwitch"
    method! port_count = "1/-"
    method! processing = "h/h"
    method! configure _ = Ok ()

    method! push _ p =
      let paint = (Packet.anno p).Packet.paint in
      if paint >= 0 && paint < self#noutputs then self#output paint p
      else self#drop ~reason:"no output for paint" p

    method! region_sem =
      (* Folded by the fusion pass only under a dominating Paint, where
         the output is a compile-time constant. *)
      Some
        (Region.Paint_switch
           {
             ps_invalid = (fun p -> self#drop ~reason:"no output for paint" p);
           })
  end

class print name =
  object (self)
    inherit E.base name
    val mutable label = ""
    val mutable limit = 8 (* bytes of payload to show *)
    val mutable printed = 0
    method class_name = "Print"

    method! configure config =
      match Args.split config with
      | [] -> Ok ()
      | [ l ] ->
          label <- l;
          Ok ()
      | [ l; n ] -> (
          label <- l;
          match Args.parse_int n with
          | Some k when k >= 0 ->
              limit <- k;
              Ok ()
          | _ -> Error "bad Print byte count")
      | _ -> Error "Print takes LABEL and optional byte count"

    method private show p =
      printed <- printed + 1;
      let n = min limit (Packet.length p) in
      let hex =
        String.concat " "
          (List.init n (fun i -> Printf.sprintf "%02x" (Packet.get_u8 p i)))
      in
      Printf.printf "%s: %4d | %s\n" label (Packet.length p) hex

    method! push _ p =
      self#show p;
      self#output 0 p

    method! pull _ =
      match self#input_pull 0 with
      | Some p ->
          self#show p;
          Some p
      | None -> None

    method! stats = [ ("printed", printed) ]
  end

class queue name =
  object (self)
    inherit E.base name
    val q : Packet.t Fifo.t = Fifo.create ()

    (* Ring mode: when the sharded runtime cuts the graph at this queue,
       the storage is swapped (via the "spsc" write handler, before any
       traffic) for a lock-free SPSC ring so the push half can run on the
       producing domain and the pull half on the consuming one. In ring
       mode the pull side stays hands-off of this element's mutable
       counters and hooks — those belong to the producer's domain — so
       the W_queue charge and highwater tracking happen on push only. *)
    val mutable ring : Packet.t Spsc.t option = None
    val mutable capacity = 1000
    val mutable drops = 0
    val mutable highwater = 0

    (* Admission control: RED-style early drop at the queue itself,
       evaluated on the enqueue (producer) side — so under multicore
       sharding the early drop, like all this element's counters, runs
       and is accounted on the producing domain. Off by default. *)
    val mutable early : (int * int * float) option = None
    val mutable early_avg = 0.0
    val mutable early_drops = 0
    val early_rng = ref 0
    method class_name = "Queue"
    method! processing = "h/l"

    method private parse_early value =
      match
        List.filter (( <> ) "") (String.split_on_char ' ' (String.trim value))
      with
      | [ mn; mx; p ] -> (
          match (Args.parse_int mn, Args.parse_int mx, float_of_string_opt p)
          with
          | Some mn, Some mx, Some p
            when 0 <= mn && mn < mx && p >= 0.0 && p <= 1.0 ->
              Ok (Some (mn, mx, p))
          | _ -> Error "bad EARLY MIN MAX P (0 <= MIN < MAX, 0 <= P <= 1)")
      | _ -> Error "EARLY expects \"MIN MAX P\""

    method! configure config =
      early_rng := lcg_seed_of_name name;
      let positional, keywords = parse_positional_and_keywords config in
      let cap_ok =
        match positional with
        | [] -> Ok ()
        | [ n ] -> (
            match Args.parse_int n with
            | Some c when c > 0 ->
                capacity <- c;
                Ok ()
            | _ -> Error (Printf.sprintf "bad Queue capacity %S" n))
        | _ -> Error "Queue takes at most one capacity argument"
      in
      match cap_ok with
      | Error _ as e -> e
      | Ok () ->
          List.fold_left
            (fun acc (k, v) ->
              match acc with
              | Error _ -> acc
              | Ok () -> (
                  match k with
                  | "EARLY" ->
                      Result.map (fun e -> early <- e) (self#parse_early v)
                  | _ -> Error (Printf.sprintf "Queue: unknown keyword %s" k)))
            (Ok ()) keywords

    method private early_dropped p =
      match early with
      | None -> false
      | Some (min_thresh, max_thresh, max_p) ->
          let len =
            match ring with
            | Some r -> Spsc.length r
            | None -> Fifo.length q
          in
          let w = 0.25 in
          early_avg <- ((1.0 -. w) *. early_avg) +. (w *. float_of_int len);
          let doomed =
            if early_avg < float_of_int min_thresh then false
            else if early_avg >= float_of_int max_thresh then true
            else
              let fraction =
                (early_avg -. float_of_int min_thresh)
                /. float_of_int (max_thresh - min_thresh)
              in
              lcg_float early_rng < max_p *. fraction
          in
          if doomed then begin
            early_drops <- early_drops + 1;
            drops <- drops + 1;
            self#drop ~reason:"early drop" p
          end;
          doomed

    method private enqueue p =
      if not (self#early_dropped p) then
        match ring with
        | Some r ->
            if Spsc.push r p then highwater <- max highwater (Spsc.length r)
            else begin
              drops <- drops + 1;
              self#drop ~reason:"queue full" p
            end
        | None ->
            if Fifo.length q >= capacity then begin
              drops <- drops + 1;
              self#drop ~reason:"queue full" p
            end
            else begin
              Fifo.add q ~cap:capacity p;
              highwater <- max highwater (Fifo.length q)
            end

    method! push _ p =
      self#charge Hooks.W_queue;
      self#enqueue p

    method! pull _ =
      match ring with
      | Some r -> Spsc.pop r
      | None ->
          self#charge Hooks.W_queue;
          Fifo.take_opt q

    method! push_batch _ batch =
      (* Hoisted batch enqueue: one W_queue charge per packet is folded
         into a single charge for the whole batch (the amortization the
         batched path models), the capacity headroom is computed once,
         and the overflow tail is dropped without re-testing per
         packet. *)
      let n = Array.length batch in
      self#charge Hooks.W_queue;
      match ring with
      | Some _ ->
          for i = 0 to n - 1 do
            self#enqueue batch.(i)
          done
      | None when early <> None ->
          (* Early drop samples the occupancy per packet, so the bulk
             headroom shortcut below doesn't apply. *)
          for i = 0 to n - 1 do
            self#enqueue batch.(i)
          done
      | None ->
          let room = capacity - Fifo.length q in
          let accept = if room < n then max room 0 else n in
          for i = 0 to accept - 1 do
            Fifo.add q ~cap:capacity batch.(i)
          done;
          highwater <- max highwater (Fifo.length q);
          for i = accept to n - 1 do
            drops <- drops + 1;
            self#drop ~reason:"queue full" batch.(i)
          done

    method! fuse ctx =
      (* The enqueue half of push, verbatim; the work charge disappears
         entirely when the hooks ignore it. *)
      let lean = ctx.E.fc_lean_work in
      Some
        (fun p ->
          if not lean then self#charge Hooks.W_queue;
          self#enqueue p)

    method! pull_batch _ dst =
      match ring with
      | Some r ->
          (* Batch drain: one pair of atomic index operations moves the
             whole run of descriptors across the domain cut. *)
          Spsc.pop_into r dst (Array.length dst)
      | None ->
          let want = min (Array.length dst) (Fifo.length q) in
          if want > 0 then begin
            self#charge Hooks.W_queue;
            for i = 0 to want - 1 do
              dst.(i) <- Fifo.take q
            done
          end;
          want

    method! stats =
      let base =
        [
          ( "length",
            match ring with
            | Some r -> Spsc.length r
            | None -> Fifo.length q );
          ("capacity", capacity);
          ("drops", drops);
          ("early_drops", early_drops);
          ("highwater", highwater);
        ]
      in
      match ring with
      | Some r -> base @ [ ("ring", Spsc.capacity r) ]
      | None -> base

    method! write_handler handler value =
      match handler with
      | "capacity" -> (
          match Args.parse_int value with
          | Some c when c > 0 ->
              capacity <- c;
              Ok ()
          | _ -> Error "capacity must be a positive integer")
      | "spsc" -> (
          (* Switch to ring mode. Setup-time only: any packets already
             buffered move into the ring, which must be able to hold
             them. *)
          match Args.parse_int value with
          | Some c when c > 0 ->
              let r =
                Spsc.create ~dummy:(Packet.create ~headroom:0 ~tailroom:0 0) c
              in
              let overflow = ref false in
              Fifo.iter
                (fun p -> if not (Spsc.push r p) then overflow := true)
                q;
              if !overflow then Error "spsc: buffered packets exceed ring capacity"
              else begin
                Fifo.clear q;
                capacity <- c;
                ring <- Some r;
                Ok ()
              end
          | _ -> Error "spsc capacity must be a positive integer")
      | "early" ->
          if String.trim value = "off" then begin
            early <- None;
            Ok ()
          end
          else Result.map (fun e -> early <- e) (self#parse_early value)
      | "reset_counts" ->
          drops <- 0;
          early_drops <- 0;
          highwater <-
            (match ring with
            | Some r -> Spsc.length r
            | None -> Fifo.length q);
          Ok ()
      | h -> Error (Printf.sprintf "Queue: no write handler %S" h)
  end

(* Unqueue: a pull-to-push conduit — a scheduled task that pulls up to
   BURST packets from its input and pushes them downstream. The sharding
   pass inserts Queue→Unqueue pairs to create scheduling boundaries on
   push paths that had none (the click-combine trick), so a private
   upstream region and the shared core can run on different domains. *)
class unqueue name =
  object (self)
    inherit E.base name
    val mutable burst = 8
    val mutable moved = 0
    method class_name = "Unqueue"
    method! port_count = "1/1"
    method! processing = "l/h"

    method! configure config =
      match Args.split config with
      | [] -> Ok ()
      | [ b ] -> (
          match Args.parse_int b with
          | Some n when n > 0 ->
              burst <- n;
              Ok ()
          | _ -> Error (Printf.sprintf "bad Unqueue burst %S" b))
      | _ -> Error "Unqueue takes at most one argument"

    method! wants_task = true

    method! run_task =
      if self#batch_size <= 1 then
        let rec loop i did =
          if i >= burst then did
          else
            match self#input_pull 0 with
            | None -> did
            | Some p ->
                moved <- moved + 1;
                self#output 0 p;
                loop (i + 1) true
        in
        loop 0 false
      else begin
        (* Batch mode: one upstream pull request, one downstream
           transfer, sized by the smaller of burst and batch. *)
        let want = min burst self#batch_size in
        let buf = self#scratch self#batch_size in
        let dst = if want = Array.length buf then buf else Array.sub buf 0 want in
        let got = self#input_pull_batch 0 dst in
        if got = 0 then false
        else begin
          moved <- moved + got;
          self#output_batch 0 (self#sub_batch dst got);
          true
        end
      end

    method! stats = [ ("moved", moved) ]
  end

(* RED dropping ahead of a Queue. Like Click, the element locates its
   downstream Queue(s) at initialization time and computes the EWMA of
   their total length on each packet. *)
class red name =
  object (self)
    inherit E.base name
    val mutable min_thresh = 5
    val mutable max_thresh = 50
    val mutable max_p = 0.02
    val mutable avg = 0.0
    val mutable drops = 0
    val mutable queues : E.t list = []
    val rng = ref 0
    method class_name = "RED"
    method! processing = "a/a"

    method! configure config =
      rng := lcg_seed_of_name name;
      match Args.split config with
      | [ mn; mx; p ] -> (
          match (Args.parse_int mn, Args.parse_int mx, float_of_string_opt p)
          with
          | Some mn, Some mx, Some p when 0 <= mn && mn <= mx && p >= 0.0 ->
              min_thresh <- mn;
              max_thresh <- mx;
              max_p <- p;
              Ok ()
          | _ -> Error "RED expects MIN_THRESH, MAX_THRESH, MAX_P")
      | [] -> Ok ()
      | _ -> Error "RED expects MIN_THRESH, MAX_THRESH, MAX_P"

    method! initialize ctx =
      (* Breadth-first search downstream for Queue elements. *)
      let graph = ctx.E.ic_graph in
      let seen = Hashtbl.create 16 in
      let rec bfs frontier acc =
        match frontier with
        | [] -> acc
        | i :: rest ->
            if Hashtbl.mem seen i then bfs rest acc
            else begin
              Hashtbl.add seen i ();
              let e = ctx.E.ic_element i in
              if String.equal e#class_name "Queue" && i <> ctx.E.ic_index then
                bfs rest (e :: acc)
              else
                let next =
                  List.map (fun (_, j, _) -> j) (Oclick_graph.Router.outputs_of graph i)
                in
                bfs (next @ rest) acc
            end
      in
      queues <- bfs [ ctx.E.ic_index ] [];
      if queues = [] then Error "RED found no downstream Queue" else Ok ()

    method private queue_length =
      List.fold_left
        (fun acc q ->
          match List.assoc_opt "length" q#stats with
          | Some n -> acc + n
          | None -> acc)
        0 queues

    method private should_drop =
      let w = 0.25 in
      avg <- ((1.0 -. w) *. avg) +. (w *. float_of_int self#queue_length);
      if avg < float_of_int min_thresh then false
      else if avg >= float_of_int max_thresh then true
      else begin
        let fraction =
          (avg -. float_of_int min_thresh)
          /. float_of_int (max_thresh - min_thresh)
        in
        lcg_float rng < max_p *. fraction
      end

    method! push _ p =
      if self#should_drop then begin
        drops <- drops + 1;
        self#drop ~reason:"RED early drop" p
      end
      else self#output 0 p

    method! stats = [ ("drops", drops) ]
  end

let register () =
  def "Discard" ~ports:"1/0" ~processing:"a/a" (fun n -> (new discard n :> E.t));
  def "Idle" ~ports:"-/-" ~processing:"a/a" (fun n -> (new idle n :> E.t));
  def "Counter" (fun n -> (new counter n :> E.t));
  def "Tee" ~ports:"1/1-" ~processing:"h/h" (fun n -> (new tee n :> E.t));
  def "StaticSwitch" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new static_switch n :> E.t));
  def "PaintSwitch" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new paint_switch n :> E.t));
  def "Print" (fun n -> (new print n :> E.t));
  def "Queue" ~ports:"1/1" ~processing:"h/l" (fun n -> (new queue n :> E.t));
  def "Unqueue" ~ports:"1/1" ~processing:"l/h" (fun n ->
      (new unqueue n :> E.t));
  def "RED" (fun n -> (new red n :> E.t))
