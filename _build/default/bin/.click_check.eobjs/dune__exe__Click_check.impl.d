bin/click_check.ml: Cmdliner List Oclick_graph Oclick_runtime Printf Term Tool_common
