(* Tests for the driver and scheduler, and end-to-end IP router behaviour
   in the pure runtime. *)

module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr
module Driver = Oclick_runtime.Driver
module Netdevice = Oclick_runtime.Netdevice
module Hooks = Oclick_runtime.Hooks
module Registry = Oclick_runtime.Registry

let () = Oclick_elements.register_all ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- instantiation ------------------------------------------------------- *)

let test_instantiate_reports_all_errors () =
  match
    Driver.of_string "a :: Zorp; b :: Queue(nonsense); a -> b; b -> Discard;"
  with
  | Ok _ -> Alcotest.fail "must fail"
  | Error e ->
      (* both the unknown class and (after it is fixed) config errors are
         reported with element names *)
      check_bool "mentions Zorp" true
        (let has sub s =
           let rec find i =
             i + String.length sub <= String.length s
             && (String.sub s i (String.length sub) = sub || find (i + 1))
           in
           find 0
         in
         has "Zorp" e)

let test_instantiate_rejects_conflict () =
  (* Two queues in a row: q1's pull output feeds q2's push input. *)
  match
    Driver.of_string
      "Idle -> q1 :: Queue(5) -> q2 :: Queue(5); q2 -> pullsink :: Discard;"
  with
  | Ok _ -> Alcotest.fail "pull->push conflict must fail"
  | Error _ -> ()

let test_element_lookup () =
  let d =
    match Driver.of_string "Idle -> c :: Counter -> Discard;" with
    | Ok d -> d
    | Error e -> Alcotest.failf "%s" e
  in
  check_bool "found" true (Driver.element d "c" <> None);
  check_bool "missing" true (Driver.element d "zzz" = None);
  check "size" 3 (Driver.size d)

(* --- hooks ------------------------------------------------------------------ *)

let test_hooks_see_transfers_and_work () =
  let transfers = ref [] and works = ref [] and drops = ref 0 in
  let hooks =
    {
      Hooks.on_transfer = (fun tr _p -> transfers := tr :: !transfers);
      on_transfer_batch =
        (fun tr _batch n ->
          for _ = 1 to n do
            transfers := tr :: !transfers
          done);
      on_work = (fun ~idx:_ ~cls w -> works := (cls, w) :: !works);
      on_drop = (fun ~idx:_ ~cls:_ ~reason:_ _ -> incr drops);
      on_spawn = (fun ~idx:_ ~cls:_ _ -> ());
      on_fault = (fun ~idx:_ ~cls:_ ~reason:_ -> ());
      on_warn = (fun ~src:_ _ -> ());
    }
  in
  let graph =
    match
      Oclick_graph.Router.parse_string
        "src :: Idle; src -> ck :: CheckIPHeader() -> q :: Queue(1); q -> \
         Discard;"
    with
    | Ok g -> g
    | Error e -> Alcotest.failf "%s" e
  in
  let d =
    match Driver.instantiate ~hooks graph with
    | Ok d -> d
    | Error e -> Alcotest.failf "%s" e
  in
  let p = Headers.Build.udp ~src_ip:1 ~dst_ip:2 () in
  Packet.pull p 14;
  (Option.get (Driver.element d "ck"))#push 0 p;
  (* ck -> q transfer observed *)
  check_bool "transfer observed" true
    (List.exists
       (fun (tr : Hooks.transfer) -> tr.tr_dst_class = "Queue")
       !transfers);
  check_bool "checksum work observed" true
    (List.exists
       (fun (cls, w) ->
         cls = "CheckIPHeader"
         && match w with Hooks.W_checksum _ -> true | _ -> false)
       !works);
  (* overflow the 1-slot queue: a drop is reported *)
  let p2 = Headers.Build.udp ~src_ip:1 ~dst_ip:2 () in
  Packet.pull p2 14;
  (Option.get (Driver.element d "ck"))#push 0 p2;
  check "queue drop reported" 1 !drops

let test_pull_hook_only_on_packets () =
  let pulls = ref 0 in
  let hooks =
    {
      Hooks.null with
      Hooks.on_transfer =
        (fun tr _p -> if tr.Hooks.tr_pull then incr pulls);
    }
  in
  let graph =
    match
      Oclick_graph.Router.parse_string
        "Idle -> q :: Queue(5); q -> d :: Discard;"
    with
    | Ok g -> g
    | Error e -> Alcotest.failf "%s" e
  in
  let d =
    match Driver.instantiate ~hooks graph with
    | Ok d -> d
    | Error e -> Alcotest.failf "%s" e
  in
  (* discard (pull mode) polls an empty queue: no pull transfers *)
  ignore (Driver.run_tasks_once d);
  check "idle pulls unreported" 0 !pulls;
  (Option.get (Driver.element d "q"))#push 0 (Packet.create 10);
  ignore (Driver.run_tasks_once d);
  check "real pull reported" 1 !pulls

(* --- scheduling ---------------------------------------------------------------- *)

let test_run_until_idle_terminates () =
  let d =
    match
      Driver.of_string
        "InfiniteSource(LIMIT 25, BURST 4) -> q :: Queue(100); q -> c :: \
         Counter; c -> Discard;"
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "%s" e
  in
  check_bool "converged" true (Driver.run_until_idle d);
  check "all packets drained" 25
    (List.assoc "packets" (Option.get (Driver.element d "c"))#stats)

let test_scheduler_round_robin () =
  let d =
    match
      Driver.of_string
        "s1 :: InfiniteSource(LIMIT 3) -> c1 :: Counter -> Discard; s2 :: \
         InfiniteSource(LIMIT 3) -> c2 :: Counter -> Discard;"
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "%s" e
  in
  ignore (Driver.run_tasks_once d);
  (* one round: each source pushed one burst *)
  let stat name =
    List.assoc "packets" (Option.get (Driver.element d name))#stats
  in
  check "s1 ran" 1 (stat "c1");
  check "s2 ran" 1 (stat "c2");
  check_bool "converged" true (Driver.run_until_idle d);
  check "s1 done" 3 (stat "c1");
  check "s2 done" 3 (stat "c2")

(* --- the Figure 1 router, end to end -------------------------------------------- *)

type rig = {
  rig_driver : Driver.t;
  rig_devs : Netdevice.queue_device array;
}

let make_rig ?(n = 2) ?hooks ?batch ?pool graph =
  let devs =
    Array.init n (fun i -> new Netdevice.queue_device (Printf.sprintf "eth%d" i) ())
  in
  let devices = Array.to_list (Array.map (fun d -> (d :> Netdevice.t)) devs) in
  match Driver.instantiate ?hooks ~devices ?batch ?pool graph with
  | Ok d -> { rig_driver = d; rig_devs = devs }
  | Error e -> Alcotest.failf "instantiate: %s" e

let ip_router_graph ?(n = 2) () =
  Oclick.Ip_router.graph
    (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces n))

let host_udp ?(ttl = 64) ~src_if ~dst_ip () =
  Headers.Build.udp
    ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
    ~dst_eth:(Ethaddr.of_string_exn (Printf.sprintf "00:00:c0:00:%02x:01" src_if))
    ~src_ip:(Ipaddr.of_octets 10 0 src_if 2)
    ~dst_ip:(Ipaddr.of_string_exn dst_ip)
    ~ttl ()

(* Answer the ARP query the router emits on [dev] with [host_eth]. *)
let answer_arp rig dev_idx host_eth =
  let dev = rig.rig_devs.(dev_idx) in
  match dev#collect with
  | Some q when Headers.Ether.ethertype q = 0x806 ->
      let reply =
        Headers.Build.arp_reply ~src_eth:host_eth
          ~src_ip:(Headers.Arp.target_ip ~off:14 q)
          ~dst_eth:(Headers.Arp.sender_eth ~off:14 q)
          ~dst_ip:(Headers.Arp.sender_ip ~off:14 q)
      in
      dev#inject reply
  | Some _ -> Alcotest.fail "expected an ARP query"
  | None -> Alcotest.fail "no ARP query emitted"

let forward_one rig =
  let host1 = Ethaddr.of_string_exn "00:00:c0:bb:01:02" in
  rig.rig_devs.(0)#inject (host_udp ~src_if:0 ~dst_ip:"10.0.1.2" ());
  Driver.run rig.rig_driver ~rounds:20;
  answer_arp rig 1 host1;
  Driver.run rig.rig_driver ~rounds:20;
  rig.rig_devs.(1)#collect

let test_router_forwards () =
  let rig = make_rig (ip_router_graph ()) in
  match forward_one rig with
  | Some f ->
      check "ip ethertype" 0x800 (Headers.Ether.ethertype f);
      check "ttl decremented" 63 (Headers.Ip.ttl ~off:14 f);
      check_bool "checksum valid" true (Headers.Ip.checksum_valid ~off:14 f);
      Alcotest.(check string)
        "destination mac" "00:00:c0:bb:01:02"
        (Ethaddr.to_string (Headers.Ether.dst f))
  | None -> Alcotest.fail "packet not forwarded"

let test_router_answers_arp () =
  let rig = make_rig (ip_router_graph ()) in
  let query =
    Headers.Build.arp_query
      ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
      ~src_ip:(Ipaddr.of_string_exn "10.0.0.2")
      ~target_ip:(Ipaddr.of_string_exn "10.0.0.1")
  in
  rig.rig_devs.(0)#inject query;
  Driver.run rig.rig_driver ~rounds:20;
  match rig.rig_devs.(0)#collect with
  | Some r ->
      check "arp reply" 0x806 (Headers.Ether.ethertype r);
      check "op" 2 (Headers.Arp.op ~off:14 r)
  | None -> Alcotest.fail "no ARP reply"

let test_router_ttl_expiry_generates_icmp () =
  let rig = make_rig (ip_router_graph ()) in
  (* Resolve ARP back toward the source first (the ICMP error goes back
     out interface 0). *)
  rig.rig_devs.(0)#inject (host_udp ~src_if:0 ~dst_ip:"10.0.1.2" ~ttl:1 ());
  Driver.run rig.rig_driver ~rounds:20;
  answer_arp rig 0 (Ethaddr.of_string_exn "00:00:c0:aa:00:02");
  Driver.run rig.rig_driver ~rounds:20;
  match rig.rig_devs.(0)#collect with
  | Some e ->
      check "ip frame" 0x800 (Headers.Ether.ethertype e);
      check "icmp" 1 (Headers.Ip.protocol ~off:14 e);
      check "time exceeded" 11 (Headers.Icmp.icmp_type ~off:34 e);
      (* FixIPSrc stamped the outgoing interface's address *)
      check "source is router" (Ipaddr.of_string_exn "10.0.0.1")
        (Headers.Ip.src ~off:14 e)
  | None -> Alcotest.fail "no ICMP error emitted"

let test_router_drops_link_broadcast_ip () =
  let rig = make_rig (ip_router_graph ()) in
  let p = host_udp ~src_if:0 ~dst_ip:"10.0.1.2" () in
  Headers.Ether.set_dst p Ethaddr.broadcast;
  rig.rig_devs.(0)#inject p;
  Driver.run rig.rig_driver ~rounds:30;
  check_bool "nothing forwarded" true (rig.rig_devs.(1)#collect = None)

let test_router_fragments_large_packet () =
  let rig = make_rig (ip_router_graph ()) in
  (* ARP-resolve first with a small packet. *)
  (match forward_one rig with
  | Some _ -> ()
  | None -> Alcotest.fail "setup forward failed");
  let big =
    Headers.Build.udp
      ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
      ~dst_eth:(Ethaddr.of_string_exn "00:00:c0:00:00:01")
      ~src_ip:(Ipaddr.of_octets 10 0 0 2)
      ~dst_ip:(Ipaddr.of_string_exn "10.0.1.2")
      ~payload_len:2000 ()
  in
  rig.rig_devs.(0)#inject big;
  Driver.run rig.rig_driver ~rounds:40;
  let rec collect acc =
    match rig.rig_devs.(1)#collect with
    | Some f -> collect (f :: acc)
    | None -> acc
  in
  let frags = collect [] in
  check "two fragments" 2 (List.length frags);
  check_bool "one has MF" true
    (List.exists (fun f -> Headers.Ip.more_fragments ~off:14 f) frags)

let test_router_multi_interface () =
  let rig = make_rig ~n:4 (ip_router_graph ~n:4 ()) in
  (* iface 2 -> iface 3 *)
  rig.rig_devs.(2)#inject
    (Headers.Build.udp
       ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:02:02")
       ~dst_eth:(Ethaddr.of_string_exn "00:00:c0:00:02:01")
       ~src_ip:(Ipaddr.of_octets 10 0 2 2)
       ~dst_ip:(Ipaddr.of_octets 10 0 3 2)
       ());
  Driver.run rig.rig_driver ~rounds:20;
  answer_arp rig 3 (Ethaddr.of_string_exn "00:00:c0:bb:03:02");
  Driver.run rig.rig_driver ~rounds:20;
  check_bool "forwarded out iface 3" true (rig.rig_devs.(3)#collect <> None);
  check_bool "nothing on iface 1" true (rig.rig_devs.(1)#collect = None)

(* --- batched vs scalar differential -------------------------------------------- *)

(* The batched transfer path must be semantics-preserving: the same
   traffic through the same router yields identical forwarded counts and
   identical per-reason drop totals whatever the batch size (and whether
   or not a recycling pool is installed). The traffic mix is a seeded
   deterministic fuzz over the interesting paths: valid forwards, bad IP
   checksums, TTL expiry (spawns ICMP back out the ingress), unroutable
   destinations, and link-layer broadcasts. *)

let mixed_traffic seed k =
  let state = ref (seed land 0x3fffffff) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    !state
  in
  List.init k (fun _ ->
      match next () mod 8 with
      | 0 ->
          (* corrupt the IP header checksum: CheckIPHeader drops it *)
          let p = host_udp ~src_if:0 ~dst_ip:"10.0.1.2" () in
          Packet.set_u8 p 24 (Packet.get_u8 p 24 lxor 0xff);
          p
      | 1 -> host_udp ~src_if:0 ~dst_ip:"10.0.1.2" ~ttl:1 ()
      | 2 -> host_udp ~src_if:0 ~dst_ip:"192.168.9.9" ()
      | 3 ->
          let p = host_udp ~src_if:0 ~dst_ip:"10.0.1.2" () in
          Headers.Ether.set_dst p Ethaddr.broadcast;
          p
      | _ -> host_udp ~src_if:0 ~dst_ip:"10.0.1.2" ())

(* Run [k] fuzzed packets through the two-interface router and return
   (forwarded out eth1, returned to eth0, sorted per-reason drops). *)
let run_differential_variant ~batch ~pool ~seed ~k =
  let drops : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let hooks =
    {
      Hooks.null with
      Hooks.on_drop =
        (fun ~idx:_ ~cls:_ ~reason _ ->
          match Hashtbl.find_opt drops reason with
          | Some r -> incr r
          | None -> Hashtbl.replace drops reason (ref 1));
    }
  in
  let pool = if pool then Some (Packet.Pool.create ()) else None in
  let rig = make_rig ~hooks ~batch ?pool (ip_router_graph ()) in
  (* Resolve ARP in both directions before the measured traffic: forward
     flow out eth1, ICMP errors back out eth0. *)
  rig.rig_devs.(0)#inject (host_udp ~src_if:0 ~dst_ip:"10.0.1.2" ());
  ignore (Driver.run_until_idle rig.rig_driver);
  answer_arp rig 1 (Ethaddr.of_string_exn "00:00:c0:bb:01:02");
  ignore (Driver.run_until_idle rig.rig_driver);
  rig.rig_devs.(0)#inject (host_udp ~src_if:0 ~dst_ip:"10.0.1.2" ~ttl:1 ());
  ignore (Driver.run_until_idle rig.rig_driver);
  answer_arp rig 0 (Ethaddr.of_string_exn "00:00:c0:aa:00:02");
  ignore (Driver.run_until_idle rig.rig_driver);
  let rec drain dev n =
    match dev#collect with Some _ -> drain dev (n + 1) | None -> n
  in
  ignore (drain rig.rig_devs.(0) 0);
  ignore (drain rig.rig_devs.(1) 0);
  Hashtbl.reset drops;
  List.iter rig.rig_devs.(0)#inject (mixed_traffic seed k);
  ignore (Driver.run_until_idle rig.rig_driver);
  let forwarded = drain rig.rig_devs.(1) 0
  and returned = drain rig.rig_devs.(0) 0 in
  let drop_list =
    Hashtbl.fold (fun r n acc -> (r, !n) :: acc) drops [] |> List.sort compare
  in
  (forwarded, returned, drop_list)

let test_batch_differential () =
  let k = 200 in
  List.iter
    (fun seed ->
      let scalar = run_differential_variant ~batch:1 ~pool:false ~seed ~k in
      let _, _, scalar_drops = scalar in
      check_bool "fuzz exercised drop paths" true
        (List.mem_assoc "no route" scalar_drops
        && List.length scalar_drops >= 3);
      List.iter
        (fun (batch, pool) ->
          let name fmt =
            Printf.sprintf fmt seed batch (if pool then "+pool" else "")
          in
          let forwarded, returned, drops =
            run_differential_variant ~batch ~pool ~seed ~k
          in
          let s_fwd, s_ret, s_drops = scalar in
          check (name "seed %d batch %d%s: forwarded") s_fwd forwarded;
          check (name "seed %d batch %d%s: returned") s_ret returned;
          Alcotest.(check (list (pair string int)))
            (name "seed %d batch %d%s: drop reasons")
            s_drops drops)
        [ (4, false); (8, true); (32, true) ])
    [ 7; 42; 1234 ]

(* The same invariant end to end through the simulated testbed, under a
   seeded fault-injection plan: whole-run outcome totals, per-reason drop
   totals, and the packet-conservation ledger must not depend on the
   batch size. Rates stay well below saturation so no outcome depends on
   queue timing. *)
let test_testbed_batch_differential () =
  let module Testbed = Oclick_hw.Testbed in
  let module Platform = Oclick_hw.Platform in
  let graph = ip_router_graph ~n:8 () in
  List.iter
    (fun seed ->
      let fault =
        match
          Oclick_fault.Plan.parse
            (Printf.sprintf
               "seed=%d,corrupt=0.02,ttl0=0.02,badcksum=0.03,badlen=0.01,\
                truncate=0.01"
               seed)
        with
        | Ok p -> p
        | Error e -> Alcotest.failf "plan: %s" e
      in
      let run batch =
        match
          Testbed.run ~duration_ms:20 ~warmup_ms:10 ~batch
            ~platform:Platform.p0 ~graph ~fault ~input_pps:20_000 ()
        with
        | Ok r -> r
        | Error e -> Alcotest.failf "testbed (batch %d): %s" batch e
      in
      let scalar = run 1 and batched = run 32 in
      let name s = Printf.sprintf "seed %d: %s" seed s in
      check_bool
        (name "outcome totals identical")
        true
        (scalar.Testbed.r_outcomes_total = batched.Testbed.r_outcomes_total);
      Alcotest.(check (list (pair string int)))
        (name "drop reasons identical")
        scalar.Testbed.r_drop_reasons_total batched.Testbed.r_drop_reasons_total;
      check_bool
        (name "conservation ledgers identical")
        true
        (scalar.Testbed.r_conservation = batched.Testbed.r_conservation);
      check_bool (name "faults were injected") true
        (scalar.Testbed.r_fault_counts <> []);
      check_bool (name "traffic flowed") true
        (scalar.Testbed.r_outcomes_total.Testbed.oc_sent > 0))
    [ 3; 42; 77 ]

(* --- handlers ----------------------------------------------------------------- *)

let test_read_handlers () =
  let d =
    match Driver.of_string "Idle -> c :: Counter -> Discard;" with
    | Ok d -> d
    | Error e -> Alcotest.failf "%s" e
  in
  let c = Option.get (Driver.element d "c") in
  c#push 0 (Packet.create 10);
  Alcotest.(check (option string)) "stat handler" (Some "1")
    (c#read_handler "packets");
  Alcotest.(check (option string)) "class handler" (Some "Counter")
    (c#read_handler "class");
  Alcotest.(check (option string)) "name handler" (Some "c")
    (c#read_handler "name");
  Alcotest.(check (option string)) "unknown handler" None
    (c#read_handler "zzz")

let test_write_handlers () =
  let d =
    match
      Driver.of_string
        "s :: InfiniteSource(LIMIT 100, BURST 10) -> q :: Queue(4); q -> \
         Discard;"
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "%s" e
  in
  let q = Option.get (Driver.element d "q")
  and s = Option.get (Driver.element d "s") in
  (* live reconfiguration: grow the queue, pause the source *)
  check_bool "capacity write" true (q#write_handler "capacity" "2" = Ok ());
  ignore (Driver.run_tasks_once d);
  (* a 10-packet burst hit a 2-slot queue (the Discard task drains some) *)
  check_bool "capacity honoured" true (List.assoc "length" q#stats <= 2);
  check_bool "overflow dropped" true (List.assoc "drops" q#stats >= 7);
  check_bool "pause source" true (s#write_handler "active" "false" = Ok ());
  let before = List.assoc "sent" s#stats in
  ignore (Driver.run_tasks_once d);
  check "source paused" before (List.assoc "sent" s#stats);
  check_bool "counter reset" true
    ((Option.get (Driver.element d "q"))#write_handler "reset_counts" "" = Ok ());
  check "drops cleared" 0 (List.assoc "drops" q#stats);
  check_bool "unknown write rejected" true
    (Result.is_error (q#write_handler "nope" "1"))

(* --- registry ---------------------------------------------------------------- *)

let test_registry_snapshot () =
  let restore = Registry.snapshot () in
  Registry.register ~spec:(Oclick_graph.Spec.make "Test@Snapshot")
    "Test@Snapshot" (fun _ -> assert false);
  check_bool "registered" true (Registry.spec "Test@Snapshot" <> None);
  restore ();
  check_bool "gone after restore" true (Registry.spec "Test@Snapshot" = None)

let test_registry_duplicate () =
  Alcotest.check_raises "duplicate registration"
    (Invalid_argument "Registry.register: class \"Discard\" exists")
    (fun () ->
      Registry.register ~spec:(Oclick_graph.Spec.make "Discard") "Discard"
        (fun _ -> assert false))

let () =
  Alcotest.run "runtime"
    [
      ( "instantiate",
        [
          Alcotest.test_case "reports errors" `Quick
            test_instantiate_reports_all_errors;
          Alcotest.test_case "processing conflict" `Quick
            test_instantiate_rejects_conflict;
          Alcotest.test_case "lookup" `Quick test_element_lookup;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "transfers and work" `Quick
            test_hooks_see_transfers_and_work;
          Alcotest.test_case "pull reporting" `Quick
            test_pull_hook_only_on_packets;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "terminates" `Quick test_run_until_idle_terminates;
          Alcotest.test_case "round robin" `Quick test_scheduler_round_robin;
        ] );
      ( "ip-router",
        [
          Alcotest.test_case "forwards" `Quick test_router_forwards;
          Alcotest.test_case "answers ARP" `Quick test_router_answers_arp;
          Alcotest.test_case "TTL expiry ICMP" `Quick
            test_router_ttl_expiry_generates_icmp;
          Alcotest.test_case "drops broadcast" `Quick
            test_router_drops_link_broadcast_ip;
          Alcotest.test_case "fragments" `Quick
            test_router_fragments_large_packet;
          Alcotest.test_case "multi interface" `Quick
            test_router_multi_interface;
        ] );
      ( "batch-differential",
        [
          Alcotest.test_case "pure runtime" `Quick test_batch_differential;
          Alcotest.test_case "testbed under faults" `Quick
            test_testbed_batch_differential;
        ] );
      ( "handlers",
        [
          Alcotest.test_case "read" `Quick test_read_handlers;
          Alcotest.test_case "write" `Quick test_write_handlers;
        ] );
      ( "registry",
        [
          Alcotest.test_case "snapshot" `Quick test_registry_snapshot;
          Alcotest.test_case "duplicate" `Quick test_registry_duplicate;
        ] );
    ]
