lib/packet/ipaddr.ml: Format Int Printf String
