let fold_constants (t : Tree.t) =
  let resolved = Array.make (Array.length t.nodes) None in
  let rec resolve target =
    match target with
    | Tree.Leaf _ -> target
    | Tree.Node i -> (
        match resolved.(i) with
        | Some r -> r
        | None ->
            let n = t.nodes.(i) in
            let r =
              if n.mask = 0 then
                (* (word land 0) = value: constant outcome *)
                if n.value = 0 then resolve n.yes else resolve n.no
              else if n.yes = n.no then resolve n.yes
              else target
            in
            resolved.(i) <- Some r;
            r)
  in
  let nodes =
    Array.map
      (fun (n : Tree.node) -> { n with Tree.yes = resolve n.yes; no = resolve n.no })
      t.nodes
  in
  Tree.renumber { t with Tree.nodes; root = resolve t.root }

module Fact = struct
  (* Known facts about (offset, mask) words along a path. *)
  type t = {
    equal : (int * int, int) Hashtbl.t; (* (off,mask) -> known value *)
    not_equal : (int * int, int list) Hashtbl.t;
  }

  let create () = { equal = Hashtbl.create 8; not_equal = Hashtbl.create 8 }

  (* A canonical value of the fact set, for memoization. This must be a
     full structural key, not a hash — [Hashtbl.hash] truncates deep
     values and colliding fingerprints would merge distinct contexts. *)
  let fingerprint f =
    let eq = Hashtbl.fold (fun k v acc -> (k, v) :: acc) f.equal [] in
    let ne =
      Hashtbl.fold
        (fun k v acc -> (k, List.sort compare v) :: acc)
        f.not_equal []
    in
    (List.sort compare eq, List.sort compare ne)

  (* The outcome of a test given current facts, if determined. *)
  let outcome f ~offset ~mask ~value =
    match Hashtbl.find_opt f.equal (offset, mask) with
    | Some v -> Some (v = value)
    | None -> (
        match Hashtbl.find_opt f.not_equal (offset, mask) with
        | Some vs when List.mem value vs -> Some false
        | _ -> None)

  let with_equal f ~offset ~mask ~value body =
    Hashtbl.add f.equal (offset, mask) value;
    let r = body () in
    Hashtbl.remove f.equal (offset, mask);
    r

  let with_not_equal f ~offset ~mask ~value body =
    let old = Option.value ~default:[] (Hashtbl.find_opt f.not_equal (offset, mask)) in
    Hashtbl.replace f.not_equal (offset, mask) (value :: old);
    let r = body () in
    if old = [] then Hashtbl.remove f.not_equal (offset, mask)
    else Hashtbl.replace f.not_equal (offset, mask) old;
    r
end

let memo_budget = 200_000

let eliminate_dominated (t : Tree.t) =
  (* Rebuild the tree path-sensitively. Nodes are emitted into a fresh
     array; (source node, fact fingerprint) pairs are memoized to keep the
     DAG shape and bound the work. *)
  let facts = Fact.create () in
  let out_nodes = ref [] in
  let out_count = ref 0 in
  let memo : ( int
               * (((int * int) * int) list * ((int * int) * int list) list),
               Tree.target )
             Hashtbl.t =
    Hashtbl.create 64
  in
  let exception Too_big in
  let rec build target =
    match target with
    | Tree.Leaf _ -> target
    | Tree.Node i -> (
        let n = t.nodes.(i) in
        match Fact.outcome facts ~offset:n.offset ~mask:n.mask ~value:n.value with
        | Some true -> build n.yes
        | Some false -> build n.no
        | None -> (
            let fp = Fact.fingerprint facts in
            match Hashtbl.find_opt memo (i, fp) with
            | Some r -> r
            | None ->
                if Hashtbl.length memo > memo_budget then raise Too_big;
                let yes =
                  Fact.with_equal facts ~offset:n.offset ~mask:n.mask
                    ~value:n.value (fun () -> build n.yes)
                in
                let no =
                  Fact.with_not_equal facts ~offset:n.offset ~mask:n.mask
                    ~value:n.value (fun () -> build n.no)
                in
                let r =
                  if yes = no then yes
                  else begin
                    let j = !out_count in
                    incr out_count;
                    out_nodes := { n with Tree.yes; no } :: !out_nodes;
                    Tree.Node j
                  end
                in
                Hashtbl.add memo (i, fp) r;
                r))
  in
  match build t.root with
  | root ->
      Tree.renumber
        {
          Tree.nodes = Array.of_list (List.rev !out_nodes);
          root;
          noutputs = t.noutputs;
        }
  | exception Too_big -> t

let share_subtrees (t : Tree.t) =
  (* Bottom-up hash-consing over the DAG. *)
  let canon : (int, Tree.target) Hashtbl.t = Hashtbl.create 64 in
  let interned : (int * int * int * Tree.target * Tree.target, Tree.target) Hashtbl.t =
    Hashtbl.create 64
  in
  let out_nodes = ref [] in
  let out_count = ref 0 in
  let rec go target =
    match target with
    | Tree.Leaf _ -> target
    | Tree.Node i -> (
        match Hashtbl.find_opt canon i with
        | Some r -> r
        | None ->
            let n = t.nodes.(i) in
            let yes = go n.yes and no = go n.no in
            let r =
              if yes = no then yes
              else begin
                let key = (n.offset, n.mask, n.value, yes, no) in
                match Hashtbl.find_opt interned key with
                | Some r -> r
                | None ->
                    let j = !out_count in
                    incr out_count;
                    out_nodes := { n with Tree.yes; no } :: !out_nodes;
                    let r = Tree.Node j in
                    Hashtbl.add interned key r;
                    r
              end
            in
            Hashtbl.add canon i r;
            r)
  in
  let root = go t.root in
  Tree.renumber
    { Tree.nodes = Array.of_list (List.rev !out_nodes); root; noutputs = t.noutputs }

let one_round t = share_subtrees (eliminate_dominated (fold_constants t))

let optimize t =
  let rec fix t n =
    let t' = one_round t in
    if n = 0 || Tree.node_count t' = Tree.node_count t then t' else fix t' (n - 1)
  in
  fix t 8

let compose (t1 : Tree.t) ~output (t2 : Tree.t) ~remap_upper ~remap_lower
    ~noutputs =
  let remap f k = if k = Tree.drop then Tree.drop else f k in
  let n1 = Array.length t1.nodes in
  let shift_target2 = function
    | Tree.Node i -> Tree.Node (i + n1)
    | Tree.Leaf k -> Tree.Leaf (remap remap_lower k)
  in
  let root2 = shift_target2 t2.root in
  let map_target1 = function
    | Tree.Node i -> Tree.Node i
    | Tree.Leaf k -> if k = output then root2 else Tree.Leaf (remap remap_upper k)
  in
  let nodes1 =
    Array.map
      (fun (n : Tree.node) ->
        { n with Tree.yes = map_target1 n.yes; no = map_target1 n.no })
      t1.nodes
  in
  let nodes2 =
    Array.map
      (fun (n : Tree.node) ->
        { n with Tree.yes = shift_target2 n.yes; no = shift_target2 n.no })
      t2.nodes
  in
  Tree.renumber
    {
      Tree.nodes = Array.append nodes1 nodes2;
      root = map_target1 t1.root;
      noutputs;
    }
