(** Fixed-capacity FIFO over a flat circular array — the single-domain
    packet buffer used by the Queue element's non-ring mode and the test
    netdevice. Unlike [Stdlib.Queue] (one cons cell per [add]),
    steady-state enqueue/dequeue allocates nothing: the slot array is
    created lazily from the first added element (no placeholder value
    needed) and grows geometrically up to the capacity bound. Dequeued
    slots retain a stale reference until overwritten. Not thread-safe;
    cross-domain handoff is {!Spsc}'s job. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> cap:int -> 'a -> unit
(** Append. [cap] is the caller's current capacity bound: the slot array
    grows to it on demand. Raises [Invalid_argument] when [length t >=
    cap] — callers test-and-drop before enqueueing. *)

val take : 'a t -> 'a
(** Remove and return the oldest element. Raises [Invalid_argument] when
    empty. *)

val take_opt : 'a t -> 'a option
val iter : ('a -> unit) -> 'a t -> unit

val clear : 'a t -> unit
(** Empty the FIFO (stale references remain in the slots until
    overwritten). *)
