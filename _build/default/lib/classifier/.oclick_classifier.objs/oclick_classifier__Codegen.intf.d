lib/classifier/codegen.mli: Tree
