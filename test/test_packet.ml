(* Tests for the packet library: buffers, headers, checksums, addresses. *)

module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Checksum = Oclick_packet.Checksum
module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- addresses --------------------------------------------------------- *)

let test_ipaddr_parse () =
  check "10.0.0.1" 0x0a000001 (Ipaddr.of_string_exn "10.0.0.1");
  check "255.255.255.255" 0xffffffff (Ipaddr.of_string_exn "255.255.255.255");
  check "0.0.0.0" 0 (Ipaddr.of_string_exn "0.0.0.0");
  check_bool "reject short" true (Ipaddr.of_string "10.0.0" = None);
  check_bool "reject big octet" true (Ipaddr.of_string "10.0.0.256" = None);
  check_bool "reject text" true (Ipaddr.of_string "ten.0.0.1" = None);
  check_bool "reject empty octet" true (Ipaddr.of_string "10..0.1" = None)

let test_ipaddr_print () =
  check_str "round trip" "192.168.1.77"
    (Ipaddr.to_string (Ipaddr.of_string_exn "192.168.1.77"))

let test_netmask () =
  check "/24" 0xffffff00 (Ipaddr.netmask_of_prefix_length 24);
  check "/0" 0 (Ipaddr.netmask_of_prefix_length 0);
  check "/32" 0xffffffff (Ipaddr.netmask_of_prefix_length 32);
  check_bool "inverse 24" true
    (Ipaddr.prefix_length_of_netmask 0xffffff00 = Some 24);
  check_bool "non contiguous" true
    (Ipaddr.prefix_length_of_netmask 0xff00ff00 = None)

let test_prefix_parse () =
  (match Ipaddr.parse_prefix "10.0.0.0/8" with
  | Some (a, m) ->
      check "addr" 0x0a000000 a;
      check "mask" 0xff000000 m
  | None -> Alcotest.fail "10.0.0.0/8 should parse");
  (match Ipaddr.parse_prefix "10.0.0.0/255.0.0.0" with
  | Some (_, m) -> check "explicit mask" 0xff000000 m
  | None -> Alcotest.fail "explicit mask should parse");
  match Ipaddr.parse_prefix "10.1.2.3" with
  | Some (_, m) -> check "host mask" 0xffffffff m
  | None -> Alcotest.fail "bare address should parse"

let test_in_subnet () =
  let net = Ipaddr.of_string_exn "10.0.4.0"
  and mask = Ipaddr.netmask_of_prefix_length 24 in
  check_bool "inside" true
    (Ipaddr.in_subnet (Ipaddr.of_string_exn "10.0.4.77") ~net ~mask);
  check_bool "outside" false
    (Ipaddr.in_subnet (Ipaddr.of_string_exn "10.0.5.77") ~net ~mask)

let test_multicast () =
  check_bool "224.0.0.1" true (Ipaddr.is_multicast (Ipaddr.of_string_exn "224.0.0.1"));
  check_bool "239.1.2.3" true (Ipaddr.is_multicast (Ipaddr.of_string_exn "239.1.2.3"));
  check_bool "10.0.0.1" false (Ipaddr.is_multicast (Ipaddr.of_string_exn "10.0.0.1"))

let test_ethaddr () =
  let a = Ethaddr.of_string_exn "00:e0:98:09:ab:af" in
  check_str "round trip" "00:e0:98:09:ab:af" (Ethaddr.to_string a);
  check_bool "broadcast" true (Ethaddr.is_broadcast Ethaddr.broadcast);
  check_bool "not broadcast" false (Ethaddr.is_broadcast a);
  check_bool "group bit" true
    (Ethaddr.is_group (Ethaddr.of_string_exn "01:00:5e:00:00:01"));
  check_bool "unicast" false (Ethaddr.is_group a);
  check_bool "reject 5 parts" true (Ethaddr.of_string "00:11:22:33:44" = None);
  check_bool "reject text" true (Ethaddr.of_string "zz:11:22:33:44:55" = None)

(* --- packet buffers ----------------------------------------------------- *)

let test_create () =
  let p = Packet.create 64 in
  check "length" 64 (Packet.length p);
  check "byte zero" 0 (Packet.get_u8 p 0);
  check "byte last" 0 (Packet.get_u8 p 63)

let test_push_pull () =
  let p = Packet.of_string "abcdef" in
  Packet.pull p 2;
  check "after pull" 4 (Packet.length p);
  check_str "data" "cdef" (Packet.to_string p);
  Packet.push p 2;
  check "after push" 6 (Packet.length p);
  (* pushed bytes are whatever was there; the window is restored *)
  check_str "tail intact" "cdef" (Packet.get_string p ~pos:2 ~len:4)

let test_push_beyond_headroom () =
  let p = Packet.of_string ~headroom:2 "xy" in
  Packet.push p 40 (* must reallocate *);
  check "grown" 42 (Packet.length p);
  check_str "tail survives" "xy" (Packet.get_string p ~pos:40 ~len:2)

let test_put_take () =
  let p = Packet.of_string "ab" in
  Packet.put p 3;
  check "put" 5 (Packet.length p);
  check "zero filled" 0 (Packet.get_u8 p 4);
  Packet.take p 4;
  check "take" 1 (Packet.length p);
  check_str "left" "a" (Packet.to_string p)

let test_bounds () =
  let p = Packet.create 4 in
  Alcotest.check_raises "read past end"
    (Invalid_argument "Packet: access at 2 width 4 beyond length 4")
    (fun () -> ignore (Packet.get_u32 p 2));
  Alcotest.check_raises "pull too much"
    (Invalid_argument "Packet.pull") (fun () -> Packet.pull p 5)

let test_u16_u32 () =
  let p = Packet.create 8 in
  Packet.set_u16 p 0 0xbeef;
  check "u16" 0xbeef (Packet.get_u16 p 0);
  check "high byte" 0xbe (Packet.get_u8 p 0);
  Packet.set_u32 p 4 0xdeadbeef;
  check "u32" 0xdeadbeef (Packet.get_u32 p 4);
  check "u32 low byte" 0xef (Packet.get_u8 p 7)

let test_clone_independent () =
  let p = Packet.of_string "hello" in
  (Packet.anno p).Packet.paint <- 7;
  let q = Packet.clone p in
  Packet.set_u8 q 0 Char.(code 'H');
  (Packet.anno q).Packet.paint <- 9;
  check_str "original data" "hello" (Packet.to_string p);
  check "original paint" 7 (Packet.anno p).Packet.paint;
  check "clone paint" 9 (Packet.anno q).Packet.paint

let test_realign () =
  let p = Packet.of_string "0123456789abcdef" in
  Packet.realign p ~modulus:4 ~offset:1;
  check "alignment" 1 (Packet.data_offset p mod 4);
  check_str "data preserved" "0123456789abcdef" (Packet.to_string p);
  Packet.realign p ~modulus:4 ~offset:0;
  check "realigned" 0 (Packet.data_offset p mod 4);
  check_str "data still preserved" "0123456789abcdef" (Packet.to_string p)

(* --- checksum ------------------------------------------------------------ *)

let test_checksum_rfc1071 () =
  (* The classic example from RFC 1071 §3. *)
  let data = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  let sum = Checksum.ones_complement_sum data ~pos:0 ~len:8 in
  check "rfc1071 sum" 0xddf2 sum

let test_checksum_odd () =
  let data = Bytes.of_string "\x01\x02\x03" in
  (* 0102 + 0300 = 0402 *)
  check "odd pad" 0x0402 (Checksum.ones_complement_sum data ~pos:0 ~len:3)

let test_checksum_verify () =
  let p = Packet.create 20 in
  Headers.Ip.write_header p ~src:0x0a000001 ~dst:0x0a000002 ~protocol:17
    ~total_length:20 ();
  check_bool "fresh header valid" true (Headers.Ip.checksum_valid p);
  Packet.set_u8 p 8 7 (* corrupt the TTL *);
  check_bool "corrupt header invalid" false (Headers.Ip.checksum_valid p)

let test_checksum_combine () =
  let data = Bytes.of_string "\x12\x34\x56\x78" in
  let whole = Checksum.ones_complement_sum data ~pos:0 ~len:4 in
  let a = Checksum.ones_complement_sum data ~pos:0 ~len:2
  and b = Checksum.ones_complement_sum data ~pos:2 ~len:2 in
  check "combine" whole (Checksum.combine a b)

(* --- packet pool --------------------------------------------------------- *)

let test_pool_alloc_fresh () =
  let pool = Packet.Pool.create () in
  let p = Packet.Pool.alloc pool 64 in
  check "length" 64 (Packet.length p);
  check "zeroed" 0 (Packet.get_u8 p 63);
  let st = Packet.Pool.stats pool in
  check "allocs" 1 st.Packet.Pool.st_allocs;
  check "reuses" 0 st.Packet.Pool.st_reuses;
  check "free" 0 st.Packet.Pool.st_free

let test_pool_recycle_reuse () =
  let pool = Packet.Pool.create () in
  let p = Packet.Pool.alloc pool 32 in
  Packet.set_u8 p 0 0xff;
  Packet.Pool.recycle pool p;
  check "free after recycle" 1 (Packet.Pool.stats pool).Packet.Pool.st_free;
  let q = Packet.Pool.alloc pool 32 in
  check "reuses" 1 (Packet.Pool.stats pool).Packet.Pool.st_reuses;
  check "length" 32 (Packet.length q);
  (* the data window is re-zeroed on reuse, like a fresh create *)
  check "rezeroed" 0 (Packet.get_u8 q 0);
  check "free drained" 0 (Packet.Pool.stats pool).Packet.Pool.st_free

let test_pool_double_recycle_is_noop () =
  let pool = Packet.Pool.create () in
  let p = Packet.Pool.alloc pool 16 in
  Packet.Pool.recycle pool p;
  Packet.Pool.recycle pool p;
  let st = Packet.Pool.stats pool in
  check "only one free entry" 1 st.Packet.Pool.st_free;
  check "second recycle rejected" 1 st.Packet.Pool.st_rejected

let test_pool_capacity_bound () =
  let pool = Packet.Pool.create ~capacity:1 () in
  let p = Packet.Pool.alloc pool 16 and q = Packet.Pool.alloc pool 16 in
  Packet.Pool.recycle pool p;
  Packet.Pool.recycle pool q;
  let st = Packet.Pool.stats pool in
  check "capacity respected" 1 st.Packet.Pool.st_free;
  check "overflow rejected" 1 st.Packet.Pool.st_rejected

let test_pool_copy_on_recycle () =
  (* A clone taken before recycling must not observe the buffer being
     reused: clone deep-copies, so no live packet shares a recycled
     buffer (the copy-on-recycle policy). *)
  let pool = Packet.Pool.create () in
  let p = Packet.Pool.alloc pool 8 in
  Packet.set_u8 p 0 0xaa;
  let held = Packet.clone p in
  Packet.Pool.recycle pool p;
  let q = Packet.Pool.alloc pool 8 in
  Packet.set_u8 q 0 0x55;
  check "held clone unaffected" 0xaa (Packet.get_u8 held 0)

let test_pool_grows_small_buffer () =
  let pool = Packet.Pool.create () in
  let p = Packet.Pool.alloc pool 8 in
  Packet.Pool.recycle pool p;
  let q = Packet.Pool.alloc pool 512 in
  check "reused and grown" 512 (Packet.length q);
  check "grown buffer zeroed" 0 (Packet.get_u8 q 511);
  check "still counts as reuse" 1
    (Packet.Pool.stats pool).Packet.Pool.st_reuses

(* --- headers ------------------------------------------------------------- *)

let test_ether_encap () =
  let p = Packet.of_string "payload" in
  let src = Ethaddr.of_string_exn "00:00:c0:00:00:01"
  and dst = Ethaddr.of_string_exn "00:00:c0:00:00:02" in
  Headers.Ether.encap p ~dst ~src ~ethertype:0x0800;
  check "length" (7 + 14) (Packet.length p);
  check "ethertype" 0x0800 (Headers.Ether.ethertype p);
  check_bool "dst" true (Ethaddr.equal dst (Headers.Ether.dst p));
  check_bool "src" true (Ethaddr.equal src (Headers.Ether.src p))

let test_ip_fields () =
  let p = Packet.create 20 in
  Headers.Ip.write_header p ~src:1 ~dst:2 ~protocol:6 ~total_length:20
    ~ttl:9 ~tos:3 ~ident:77 ();
  check "version" 4 (Headers.Ip.version p);
  check "hl" 20 (Headers.Ip.header_length p);
  check "ttl" 9 (Headers.Ip.ttl p);
  check "tos" 3 (Headers.Ip.tos p);
  check "ident" 77 (Headers.Ip.ident p);
  check "proto" 6 (Headers.Ip.protocol p);
  check "src" 1 (Headers.Ip.src p);
  check "dst" 2 (Headers.Ip.dst p);
  check_bool "df" false (Headers.Ip.dont_fragment p)

let test_decrement_ttl_checksum () =
  let p = Packet.create 20 in
  Headers.Ip.write_header p ~src:0xc0a80101 ~dst:0x08080808 ~protocol:17
    ~total_length:20 ~ttl:64 ();
  for expected = 63 downto 1 do
    Headers.Ip.decrement_ttl p;
    Alcotest.(check int) "ttl" expected (Headers.Ip.ttl p);
    Alcotest.(check bool) "incremental checksum stays valid" true
      (Headers.Ip.checksum_valid p)
  done

let test_fragment_fields () =
  let p = Packet.create 20 in
  Headers.Ip.write_header p ~src:1 ~dst:2 ~protocol:17 ~total_length:20 ();
  Headers.Ip.set_flags_fragment p ~df:true ~mf:false ~frag:0;
  check_bool "df set" true (Headers.Ip.dont_fragment p);
  Headers.Ip.set_flags_fragment p ~df:false ~mf:true ~frag:185;
  check_bool "mf set" true (Headers.Ip.more_fragments p);
  check "frag offset" 185 (Headers.Ip.fragment_offset p)

let test_build_udp_is_64_bytes () =
  (* 14 ether + 20 IP + 8 UDP + 14 payload = 56 in memory; the wire adds
     the 4-byte CRC and pads to Ethernet's 64-byte minimum (paper §8.1:
     "Each 64-byte UDP packet includes Ethernet, IP, and UDP headers as
     well as 14 bytes of data and the 4-byte Ethernet CRC"). *)
  let p = Headers.Build.udp ~src_ip:1 ~dst_ip:2 () in
  check "frame bytes (sans CRC)" 56 (Packet.length p);
  check "ethertype" 0x0800 (Headers.Ether.ethertype p);
  check_bool "ip valid" true (Headers.Ip.checksum_valid ~off:14 p);
  check "udp dst port" 1234 (Headers.Udp.dst_port ~off:34 p)

let test_build_arp () =
  let src_eth = Ethaddr.of_string_exn "00:11:22:33:44:55" in
  let q = Headers.Build.arp_query ~src_eth ~src_ip:0x0a000001 ~target_ip:0x0a000002 in
  check "ethertype" 0x0806 (Headers.Ether.ethertype q);
  check_bool "to broadcast" true
    (Ethaddr.is_broadcast (Headers.Ether.dst q));
  check "op" 1 (Headers.Arp.op ~off:14 q);
  check "target" 0x0a000002 (Headers.Arp.target_ip ~off:14 q);
  let r =
    Headers.Build.arp_reply ~src_eth ~src_ip:0x0a000002
      ~dst_eth:(Ethaddr.of_string_exn "00:11:22:33:44:66")
      ~dst_ip:0x0a000001
  in
  check "reply op" 2 (Headers.Arp.op ~off:14 r);
  check "sender ip" 0x0a000002 (Headers.Arp.sender_ip ~off:14 r)

let test_tcp_flags () =
  let p =
    Headers.Build.tcp ~src_ip:1 ~dst_ip:2 ~src_port:5 ~dst_port:80
      ~flags:Headers.Tcp.(flag_syn lor flag_ack) ()
  in
  let off = 34 in
  check "flags" 0x12 (Headers.Tcp.flags ~off p);
  check "dst port" 80 (Headers.Tcp.dst_port ~off p)

(* --- properties ----------------------------------------------------------- *)

let prop_pull_push_inverse =
  QCheck.Test.make ~name:"pull then push restores the window"
    ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 1 64)) (int_bound 63))
    (fun (data, n) ->
      QCheck.assume (String.length data > 0);
      let n = n mod String.length data in
      let p = Packet.of_string data in
      Packet.pull p n;
      Packet.push p n;
      Packet.to_string p = data)

let prop_checksum_update_valid =
  QCheck.Test.make ~name:"update_checksum always validates" ~count:200
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (a, b, c, d) ->
      let p = Packet.create 20 in
      Headers.Ip.write_header p
        ~src:(a * 7919 mod 0xffffffff)
        ~dst:(b * 104729 mod 0xffffffff)
        ~protocol:(c mod 256) ~total_length:20 ~ttl:(1 + (d mod 255)) ();
      Headers.Ip.checksum_valid p)

let prop_realign_preserves_data =
  QCheck.Test.make ~name:"realign preserves data" ~count:200
    QCheck.(triple (string_of_size (Gen.int_range 0 128)) (int_range 1 8)
              small_nat)
    (fun (data, modulus, off) ->
      let p = Packet.of_string data in
      Packet.realign p ~modulus ~offset:(off mod modulus);
      Packet.data_offset p mod modulus = off mod modulus
      && Packet.to_string p = data)

(* Reference for the word-at-a-time checksum: the textbook byte-pair sum
   with end-around carry folding, no unrolling, no unsafe accesses. *)
let naive_ones_complement_sum buf ~pos ~len =
  let sum = ref 0 in
  let i = ref pos in
  while !i + 2 <= pos + len do
    sum :=
      !sum
      + ((Char.code (Bytes.get buf !i) lsl 8)
        lor Char.code (Bytes.get buf (!i + 1)));
    i := !i + 2
  done;
  if !i < pos + len then
    sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  let s = ref !sum in
  while !s > 0xffff do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  !s

let prop_checksum_matches_naive =
  QCheck.Test.make ~name:"word-at-a-time checksum = naive reference"
    ~count:500
    QCheck.(
      triple (string_of_size (Gen.int_range 0 256)) small_nat small_nat)
    (fun (data, a, b) ->
      let buf = Bytes.of_string data in
      let n = Bytes.length buf in
      let pos = if n = 0 then 0 else a mod (n + 1) in
      let len = min (b mod 300) (n - pos) in
      Checksum.ones_complement_sum buf ~pos ~len
      = naive_ones_complement_sum buf ~pos ~len)

let test_checksum_bounds () =
  let buf = Bytes.create 8 in
  Alcotest.check_raises "negative pos"
    (Invalid_argument "Checksum.ones_complement_sum") (fun () ->
      ignore (Checksum.ones_complement_sum buf ~pos:(-1) ~len:2));
  Alcotest.check_raises "len past end"
    (Invalid_argument "Checksum.ones_complement_sum") (fun () ->
      ignore (Checksum.ones_complement_sum buf ~pos:4 ~len:5))

let prop_u32_byte_consistency =
  QCheck.Test.make ~name:"u32 equals its four bytes" ~count:200
    QCheck.(int_bound 0xffffff)
    (fun v ->
      let v = v * 251 land 0xffffffff in
      let p = Packet.create 4 in
      Packet.set_u32 p 0 v;
      Packet.get_u32 p 0 = v
      && Packet.get_u8 p 0 = (v lsr 24) land 0xff
      && Packet.get_u8 p 3 = v land 0xff)

(* --- window edges, both representations ---------------------------------- *)

(* The same logical packet built two ways: heap [Bytes] and off-heap
   slab slot. Window adjustment must be observationally identical on
   both — a slab packet that outgrows its slot silently demotes to the
   heap representation without changing any visible behaviour. *)

let heap_packet ?headroom ?tailroom data =
  Packet.of_string ?headroom ?tailroom data

let slab_packet ?headroom ?tailroom data =
  let pool = Packet.Pool.create ~capacity:4 () in
  let p = Packet.Pool.alloc pool ?headroom ?tailroom (String.length data) in
  Packet.set_string p ~pos:0 data;
  p

let test_slab_push_demotes () =
  let p = slab_packet ~headroom:2 "xy" in
  check_bool "starts off-heap" true (Packet.is_off_heap p);
  Packet.push p 40 (* beyond slab headroom: must demote, not corrupt *);
  check_bool "demoted to heap" false (Packet.is_off_heap p);
  check "grown" 42 (Packet.length p);
  check_str "tail survives" "xy" (Packet.get_string p ~pos:40 ~len:2)

let test_slab_put_demotes () =
  let p = slab_packet "ab" in
  (* A slab slot is Pool.default_buf_size bytes; extending past the
     whole slot forces the Bytes fallback. *)
  let n = Packet.Pool.default_buf_size + 8 in
  Packet.put p n;
  check_bool "demoted to heap" false (Packet.is_off_heap p);
  check "extended" (2 + n) (Packet.length p);
  check_str "head survives" "ab" (Packet.get_string p ~pos:0 ~len:2);
  check "zero filled first" 0 (Packet.get_u8 p 2);
  check "zero filled last" 0 (Packet.get_u8 p (1 + n))

let test_slab_exact_edges_stay_off_heap () =
  let p = slab_packet ~headroom:8 "data" in
  Packet.push p 8 (* exactly the headroom: in-place, no growth *);
  check_bool "off-heap after exact push" true (Packet.is_off_heap p);
  check "headroom exhausted" 0 (Packet.headroom p);
  let t = Packet.tailroom p in
  Packet.put p t (* exactly the tailroom: fills the slot in place *);
  check_bool "off-heap after exact put" true (Packet.is_off_heap p);
  check "tailroom exhausted" 0 (Packet.tailroom p);
  check_str "data intact at window head" "data"
    (Packet.get_string p ~pos:8 ~len:4)

let test_window_edge_bounds_both () =
  let run label p =
    let len = Packet.length p in
    check (label ^ ": last byte readable") 0x64 (Packet.get_u8 p (len - 1));
    Alcotest.check_raises
      (label ^ ": one past end raises")
      (Invalid_argument
         (Printf.sprintf "Packet: access at %d width 1 beyond length %d" len
            len))
      (fun () -> ignore (Packet.get_u8 p len));
    Alcotest.check_raises
      (label ^ ": pull past window raises")
      (Invalid_argument "Packet.pull")
      (fun () -> Packet.pull p (len + 1));
    Alcotest.check_raises
      (label ^ ": take past window raises")
      (Invalid_argument "Packet.take")
      (fun () -> Packet.take p (len + 1));
    Packet.pull p len;
    check (label ^ ": pulled to empty") 0 (Packet.length p);
    Packet.push p len;
    check (label ^ ": pushed back") len (Packet.length p);
    check_str (label ^ ": window restored") "abcd" (Packet.to_string p)
  in
  run "heap" (heap_packet "abcd");
  run "slab" (slab_packet "abcd")

(* Drive both representations through the same sequence of window ops,
   overwriting each pushed (uninitialized) region with a deterministic
   pattern so content comparison stays meaningful, and require identical
   geometry and bytes at every step. *)
let apply_window_op p code =
  let len = Packet.length p in
  match code mod 4 with
  | 0 ->
      let n = code mod 24 in
      Packet.push p n;
      for i = 0 to n - 1 do
        Packet.set_u8 p i ((code + i) land 0xff)
      done
  | 1 -> if len > 0 then Packet.pull p (code mod len)
  | 2 -> Packet.put p (code mod 24)
  | _ -> if len > 0 then Packet.take p (code mod len)

let prop_slab_heap_identical =
  QCheck.Test.make ~name:"slab and heap windows behave identically"
    ~count:300
    QCheck.(pair (string_of_size (Gen.int_range 1 48)) (small_list small_nat))
    (fun (data, ops) ->
      let h = heap_packet ~headroom:4 ~tailroom:4 data in
      let s = slab_packet ~headroom:4 data in
      List.iter
        (fun c ->
          apply_window_op h c;
          apply_window_op s c)
        ops;
      Packet.length h = Packet.length s
      && Packet.to_string h = Packet.to_string s)

let prop_slab_demotion_preserves_window =
  QCheck.Test.make ~name:"demotion preserves the data window" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 1 64)) (int_range 1 96))
    (fun (data, n) ->
      let p = slab_packet ~headroom:0 data in
      Packet.push p n (* headroom 0: any positive push demotes *);
      Packet.pull p n;
      (not (Packet.is_off_heap p)) && Packet.to_string p = data)

let () =
  Alcotest.run "packet"
    [
      ( "ipaddr",
        [
          Alcotest.test_case "parse" `Quick test_ipaddr_parse;
          Alcotest.test_case "print" `Quick test_ipaddr_print;
          Alcotest.test_case "netmask" `Quick test_netmask;
          Alcotest.test_case "prefix" `Quick test_prefix_parse;
          Alcotest.test_case "in_subnet" `Quick test_in_subnet;
          Alcotest.test_case "multicast" `Quick test_multicast;
        ] );
      ("ethaddr", [ Alcotest.test_case "basics" `Quick test_ethaddr ]);
      ( "buffer",
        [
          Alcotest.test_case "create" `Quick test_create;
          Alcotest.test_case "push/pull" `Quick test_push_pull;
          Alcotest.test_case "push beyond headroom" `Quick
            test_push_beyond_headroom;
          Alcotest.test_case "put/take" `Quick test_put_take;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "u16/u32" `Quick test_u16_u32;
          Alcotest.test_case "clone" `Quick test_clone_independent;
          Alcotest.test_case "realign" `Quick test_realign;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "rfc1071" `Quick test_checksum_rfc1071;
          Alcotest.test_case "odd length" `Quick test_checksum_odd;
          Alcotest.test_case "verify" `Quick test_checksum_verify;
          Alcotest.test_case "combine" `Quick test_checksum_combine;
          Alcotest.test_case "bounds" `Quick test_checksum_bounds;
        ] );
      ( "pool",
        [
          Alcotest.test_case "alloc fresh" `Quick test_pool_alloc_fresh;
          Alcotest.test_case "recycle reuse" `Quick test_pool_recycle_reuse;
          Alcotest.test_case "double recycle" `Quick
            test_pool_double_recycle_is_noop;
          Alcotest.test_case "capacity bound" `Quick test_pool_capacity_bound;
          Alcotest.test_case "copy on recycle" `Quick
            test_pool_copy_on_recycle;
          Alcotest.test_case "grows small buffer" `Quick
            test_pool_grows_small_buffer;
        ] );
      ( "window-edges",
        [
          Alcotest.test_case "slab push demotes" `Quick test_slab_push_demotes;
          Alcotest.test_case "slab put demotes" `Quick test_slab_put_demotes;
          Alcotest.test_case "exact edges stay off-heap" `Quick
            test_slab_exact_edges_stay_off_heap;
          Alcotest.test_case "bounds, both representations" `Quick
            test_window_edge_bounds_both;
        ] );
      ( "headers",
        [
          Alcotest.test_case "ether encap" `Quick test_ether_encap;
          Alcotest.test_case "ip fields" `Quick test_ip_fields;
          Alcotest.test_case "dec ttl checksum" `Quick
            test_decrement_ttl_checksum;
          Alcotest.test_case "fragment fields" `Quick test_fragment_fields;
          Alcotest.test_case "build udp" `Quick test_build_udp_is_64_bytes;
          Alcotest.test_case "build arp" `Quick test_build_arp;
          Alcotest.test_case "tcp flags" `Quick test_tcp_flags;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pull_push_inverse;
            prop_checksum_update_valid;
            prop_checksum_matches_naive;
            prop_realign_preserves_data;
            prop_u32_byte_consistency;
            prop_slab_heap_identical;
            prop_slab_demotion_preserves_window;
          ] );
    ]
