lib/elements/classify.ml: E Hooks Oclick_classifier Prelude
