(* Tests for the multicore datapath: the SPSC ring, the graph
   partitioner's invariants over every example configuration, scheduler
   rotation, per-domain pool ownership, the real multi-domain runner's
   differential against the single-domain driver, and the simulated
   testbed's multi-CPU differential. *)

module Spsc = Oclick_runtime.Spsc
module Driver = Oclick_runtime.Driver
module Router = Oclick_graph.Router
module Partition = Oclick_parallel.Partition
module Runner = Oclick_parallel.Runner
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform
module Packet = Oclick_packet.Packet
module Pool = Oclick_packet.Packet.Pool

let () = Oclick_elements.register_all ()
let () = Oclick_compile.register ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- SPSC ring ---------------------------------------------------------- *)

let test_spsc_fifo () =
  let r = Spsc.create ~dummy:0 5 in
  check "capacity as requested" 5 (Spsc.capacity r);
  check_bool "starts empty" true (Spsc.is_empty r);
  for i = 1 to 5 do
    check_bool "push accepted" true (Spsc.push r i)
  done;
  check_bool "push refused at capacity" false (Spsc.push r 6);
  check "length full" 5 (Spsc.length r);
  check "fifo pop" 1 (Option.get (Spsc.pop r));
  check_bool "slot freed" true (Spsc.push r 6);
  List.iter
    (fun expect -> check "fifo order" expect (Option.get (Spsc.pop r)))
    [ 2; 3; 4; 5; 6 ];
  check_bool "pop on empty" true (Spsc.pop r = None);
  check_bool "invalid capacity" true
    (try
       ignore (Spsc.create ~dummy:0 0);
       false
     with Invalid_argument _ -> true)

let test_spsc_cross_domain () =
  let n = 100_000 in
  let r = Spsc.create ~dummy:0 1024 in
  let consumer =
    Domain.spawn (fun () ->
        let sum = ref 0 and got = ref 0 in
        while !got < n do
          match Spsc.pop r with
          | Some v ->
              (* FIFO across domains: values arrive in push order. *)
              assert (v = !got + 1);
              sum := !sum + v;
              incr got
          | None -> Domain.cpu_relax ()
        done;
        !sum)
  in
  for i = 1 to n do
    while not (Spsc.push r i) do
      Domain.cpu_relax ()
    done
  done;
  check "sum across domains" (n * (n + 1) / 2) (Domain.join consumer)

(* --- partition invariants over the example configurations --------------- *)

let example_configs () =
  (* cwd is test/ under `dune runtest`, the workspace root under
     `dune exec test/test_parallel.exe`. *)
  let dir =
    if Sys.file_exists "../examples/configs" then "../examples/configs"
    else "examples/configs"
  in
  Sys.readdir dir
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".click")
  |> List.sort compare
  |> List.map (fun f ->
         let ic = open_in_bin (Filename.concat dir f) in
         let len = in_channel_length ic in
         let s = really_input_string ic len in
         close_in ic;
         (f, s))

let parse_exn name src =
  match Router.parse_string src with
  | Ok g -> g
  | Error e -> Alcotest.failf "%s: %s" name e

(* Every element lands in exactly one shard, and cross-shard hookups only
   enter Queue-class elements — the one place a cut is semantically
   transparent. *)
let check_partition name domains (p : Partition.t) =
  let g = p.Partition.pt_graph in
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun shard members ->
      List.iter
        (fun i ->
          if Hashtbl.mem seen i then
            Alcotest.failf "%s domains=%d: element %d in two shards" name
              domains i;
          Hashtbl.replace seen i shard)
        members)
    p.Partition.pt_shards;
  List.iter
    (fun i ->
      match Hashtbl.find_opt seen i with
      | None ->
          Alcotest.failf "%s domains=%d: element %d (%s) in no shard" name
            domains i (Router.name g i)
      | Some shard ->
          if shard <> p.Partition.pt_shard_of.(i) then
            Alcotest.failf "%s domains=%d: shard_of disagrees at %d" name
              domains i)
    (Router.indices g);
  List.iter
    (fun (h : Router.hookup) ->
      let sf = p.Partition.pt_shard_of.(h.Router.from_idx)
      and st = p.Partition.pt_shard_of.(h.Router.to_idx) in
      if sf <> st && Router.class_of g h.Router.to_idx <> "Queue" then
        Alcotest.failf
          "%s domains=%d: cross-shard hookup %s -> %s enters a %s" name
          domains
          (Router.name g h.Router.from_idx)
          (Router.name g h.Router.to_idx)
          (Router.class_of g h.Router.to_idx))
    (Router.hookups g);
  (* Every reported cut is a Queue whose producer shard differs. *)
  List.iter
    (fun (c : Partition.cut) ->
      if Router.class_of g c.Partition.cut_queue <> "Queue" then
        Alcotest.failf "%s domains=%d: cut %s is not a Queue" name domains
          c.Partition.cut_queue_name;
      if c.cut_from_shard = c.cut_to_shard then
        Alcotest.failf "%s domains=%d: cut %s does not cross shards" name
          domains c.Partition.cut_queue_name)
    p.Partition.pt_cuts

let test_partition_examples () =
  let configs = example_configs () in
  check_bool "found example configs" true (configs <> []);
  List.iter
    (fun (name, src) ->
      List.iter
        (fun domains ->
          match Partition.compute ~domains (parse_exn name src) with
          | Error e -> Alcotest.failf "%s domains=%d: %s" name domains e
          | Ok p -> check_partition name domains p)
        [ 1; 2; 3; 4 ])
    configs

let test_partition_trivial () =
  List.iter
    (fun (name, src) ->
      let g = parse_exn name src in
      let before = Router.to_string g in
      match Partition.compute ~domains:1 g with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok p ->
          check_bool (name ^ " no cuts") true (p.Partition.pt_cuts = []);
          check_bool (name ^ " nothing inserted") true
            (p.Partition.pt_inserted = []);
          check_bool (name ^ " all elements in shard 0") true
            (Array.for_all (fun s -> s = 0) p.Partition.pt_shard_of);
          Alcotest.(check string)
            (name ^ " graph unchanged")
            before
            (Router.to_string p.Partition.pt_graph))
    (example_configs ())

(* --- weighted partitions ------------------------------------------------- *)

(* A deterministic, heavily skewed weight vector: every element gets a
   distinct moderate cost, every seventh a dominating one — the shape a
   measured ledger takes when one element class is far hotter than the
   rest. *)
let skewed_weights g =
  let n = List.length (Router.indices g) in
  Array.init n (fun i ->
      1 + (i * 37 mod 97) + if i mod 7 = 0 then 5_000 else 0)

(* Cost-weighted partitions must respect exactly the invariants the
   unweighted ones do: weights move elements between shards, never
   across anything but a Queue boundary. *)
let test_partition_weighted_invariants () =
  List.iter
    (fun (name, src) ->
      let g = parse_exn name src in
      let weights = skewed_weights g in
      List.iter
        (fun domains ->
          match Partition.compute ~weights ~domains g with
          | Error e -> Alcotest.failf "%s domains=%d: %s" name domains e
          | Ok p -> check_partition name domains p)
        [ 2; 3; 4 ])
    (example_configs ())

(* Identical weight inputs give byte-identical partitions: the rewritten
   graph prints the same, and every element lands in the same shard. *)
let test_partition_weighted_determinism () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun domains ->
          let run () =
            let g = parse_exn name src in
            let weights = skewed_weights g in
            match Partition.compute ~weights ~domains g with
            | Error e -> Alcotest.failf "%s domains=%d: %s" name domains e
            | Ok p ->
                ( Router.to_string p.Partition.pt_graph,
                  Array.to_list p.Partition.pt_shard_of,
                  Array.to_list (Partition.shard_weights ~weights p) )
          in
          let s1, shard1, w1 = run () in
          let s2, shard2, w2 = run () in
          Alcotest.(check string)
            (Printf.sprintf "%s domains=%d graph bytes" name domains)
            s1 s2;
          Alcotest.(check (list int))
            (Printf.sprintf "%s domains=%d shard_of" name domains)
            shard1 shard2;
          Alcotest.(check (list int))
            (Printf.sprintf "%s domains=%d shard weights" name domains)
            w1 w2)
        [ 2; 4 ])
    (example_configs ())

(* No cost is lost or invented by placement: the per-shard weights sum
   to the whole graph's measured weight plus one unit per inserted ring
   stage (inserted stages are not in the measured ledger, so they cost
   the floor weight of 1). *)
let test_partition_weight_accounting () =
  List.iter
    (fun (name, src) ->
      let g = parse_exn name src in
      let weights = skewed_weights g in
      List.iter
        (fun domains ->
          match Partition.compute ~weights ~domains g with
          | Error e -> Alcotest.failf "%s domains=%d: %s" name domains e
          | Ok p ->
              let total =
                Array.fold_left ( + ) 0 (Partition.shard_weights ~weights p)
              in
              let expected =
                Array.fold_left ( + ) 0 weights
                + (2 * List.length p.Partition.pt_inserted)
              in
              check
                (Printf.sprintf "%s domains=%d weight accounting" name domains)
                expected total)
        [ 2; 3; 4 ])
    (example_configs ())

(* Four parallel chains with equal element counts, one hiding all the
   cost: static LPT balances counts and pairs the hot chain with a cold
   one; weighted LPT isolates it. Evaluated under the measured weights,
   the weighted placement's busiest shard must never exceed static's. *)
let test_partition_weighted_balance () =
  let src =
    String.concat "\n"
      (List.init 4 (fun i ->
           Printf.sprintf
             "s%d :: InfiniteSource(LIMIT 10) -> c%d :: Counter -> q%d :: \
              Queue(100) -> d%d :: Discard;"
             i i i i))
  in
  let g = parse_exn "balance" src in
  let n = List.length (Router.indices g) in
  let weights = Array.make n 1 in
  (* Chain 0's counter carries the load. Declaration order: s0 c0 q0 d0
     s1 c1 ... — index 1 is c0. *)
  weights.(1) <- 10_000;
  List.iter
    (fun domains ->
      let busiest p =
        Array.fold_left max 0 (Partition.shard_weights ~weights p)
      in
      let static =
        match Partition.compute ~domains g with
        | Ok p -> busiest p
        | Error e -> Alcotest.failf "static domains=%d: %s" domains e
      in
      let weighted =
        match Partition.compute ~weights ~domains g with
        | Ok p -> busiest p
        | Error e -> Alcotest.failf "weighted domains=%d: %s" domains e
      in
      check_bool
        (Printf.sprintf "weighted busiest <= static busiest (domains=%d)"
           domains)
        true (weighted <= static))
    [ 2; 3; 4 ]

(* --- scheduler rotation -------------------------------------------------- *)

(* Three sources compete for a one-slot queue; the test pops the winner
   between rounds. Rotation means round k starts at task (k mod 3), so
   the winners cycle through the sources — without it, the first source
   would win every round. Packet lengths identify the winner. *)
let test_rotation_fairness () =
  let d =
    match
      Driver.of_string
        "s0 :: InfiniteSource(LIMIT 3, LENGTH 60) -> q :: Queue(1);\n\
         s1 :: InfiniteSource(LIMIT 3, LENGTH 61) -> q;\n\
         s2 :: InfiniteSource(LIMIT 3, LENGTH 62) -> q;\n\
         q -> Idle;"
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "%s" e
  in
  let q = Option.get (Driver.element d "q") in
  let winners =
    List.init 3 (fun _ ->
        ignore (Driver.run_tasks_once d);
        match q#pull 0 with
        | Some p -> Packet.length p
        | None -> Alcotest.fail "queue empty after a round")
  in
  Alcotest.(check (list int)) "each source wins a round" [ 60; 61; 62 ] winners

(* --- pool ownership ------------------------------------------------------ *)

(* With assertions compiled in (the default build), a pool claimed by one
   domain refuses service from another until it is detached. *)
let asserts_enabled () =
  let hit = ref false in
  (try assert (hit := true; true) with _ -> ());
  !hit

let test_pool_domain_ownership () =
  let pool = Pool.create ~capacity:8 () in
  Pool.recycle pool (Packet.create 32);
  (* claimed by this domain *)
  if asserts_enabled () then begin
    let raised =
      Domain.join
        (Domain.spawn (fun () ->
             try
               ignore (Pool.alloc pool 32);
               false
             with Assert_failure _ -> true))
    in
    check_bool "foreign domain refused" true raised
  end;
  (* detach hands the idle pool to the next domain that touches it *)
  Pool.detach pool;
  let ok =
    Domain.join
      (Domain.spawn (fun () ->
           let p = Pool.alloc pool 32 in
           Packet.length p = 32))
  in
  check_bool "detached pool adopted" true ok

(* --- multi-domain runner differential ------------------------------------ *)

let runner_config =
  "s0 :: InfiniteSource(LIMIT 500) -> c0 :: Counter -> all :: Counter;\n\
   s1 :: InfiniteSource(LIMIT 400) -> c1 :: Counter -> all;\n\
   s2 :: InfiniteSource(LIMIT 300) -> c2 :: Counter -> all;\n\
   all -> q :: Queue(2000) -> d :: Discard;"

(* Totals that must be invariant across domain counts at loss-free ring
   sizing: per-source counters and final deliveries. *)
let runner_totals ~domains ~batch ~pool ~compile () =
  let g = parse_exn "runner" runner_config in
  match
    Runner.create ~ring_capacity:4096 ~batch ~pool ~compile ~domains g
  with
  | Error e -> Alcotest.failf "runner domains=%d: %s" domains e
  | Ok r ->
      check_bool
        (Printf.sprintf "domains=%d converged" domains)
        true
        (Runner.run_until_idle r);
      let drv = Runner.driver r in
      let stat name key =
        List.assoc key (Option.get (Driver.element drv name))#stats
      in
      let drops = ref 0 in
      for i = 0 to Driver.size drv - 1 do
        match List.assoc_opt "drops" (Driver.element_at drv i)#stats with
        | Some n -> drops := !drops + n
        | None -> ()
      done;
      ( stat "c0" "packets",
        stat "c1" "packets",
        stat "c2" "packets",
        stat "all" "packets",
        stat "d" "count",
        !drops )

let test_runner_differential () =
  List.iter
    (fun (batch, pool, compile) ->
      let reference = runner_totals ~domains:1 ~batch ~pool ~compile () in
      let c0, c1, c2, all, delivered, drops = reference in
      check "reference delivery" 1200 delivered;
      check "reference drops" 0 drops;
      ignore (c0, c1, c2, all);
      List.iter
        (fun domains ->
          let got = runner_totals ~domains ~batch ~pool ~compile () in
          check_bool
            (Printf.sprintf "domains=%d totals (batch=%d pool=%b compile=%b)"
               domains batch pool compile)
            true
            (got = reference))
        [ 2; 3; 4 ])
    [ (1, false, false); (8, true, false); (1, false, true); (8, true, true) ]

(* Undersized rings drop under the unpaced burst, but never leak: the
   delivered plus dropped totals still account for every packet born. *)
let test_runner_conservation_under_ring_pressure () =
  let g = parse_exn "runner" runner_config in
  match Runner.create ~ring_capacity:16 ~domains:3 g with
  | Error e -> Alcotest.failf "%s" e
  | Ok r ->
      check_bool "converged" true (Runner.run_until_idle r);
      let drv = Runner.driver r in
      let delivered =
        List.assoc "count" (Option.get (Driver.element drv "d"))#stats
      in
      let drops = ref 0 in
      for i = 0 to Driver.size drv - 1 do
        match List.assoc_opt "drops" (Driver.element_at drv i)#stats with
        | Some n -> drops := !drops + n
        | None -> ()
      done;
      check "conservation" 1200 (delivered + !drops)

(* --- simulated testbed differential -------------------------------------- *)

let graph8 =
  Oclick.Ip_router.graph
    (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 8))

let platform8 = { Platform.p2 with Platform.p_nports = 8 }

let flows8 =
  List.init 8 (fun i -> { Testbed.fl_src = i; Testbed.fl_dst = (i + 4) mod 8 })

let run_tb ~domains input_pps =
  match
    Testbed.run ~duration_ms:10 ~warmup_ms:5 ~platform:platform8 ~graph:graph8
      ~flows:flows8 ~domains ~batch:32 ~compile:true ~input_pps ()
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "testbed domains=%d: %s" domains e

let test_testbed_differential () =
  (* 60k pps aggregate is far below single-CPU saturation: loss-free, so
     every domain count must produce identical outcome totals. *)
  let reference = run_tb ~domains:1 60_000 in
  check_bool "reference delivered traffic" true
    (reference.Testbed.r_outcomes_total.Testbed.oc_sent > 0);
  List.iter
    (fun domains ->
      let r = run_tb ~domains 60_000 in
      check_bool
        (Printf.sprintf "domains=%d outcome totals" domains)
        true
        (r.Testbed.r_outcomes_total = reference.Testbed.r_outcomes_total);
      check_bool
        (Printf.sprintf "domains=%d drop reasons" domains)
        true
        (r.Testbed.r_drop_reasons_total
        = reference.Testbed.r_drop_reasons_total))
    [ 2; 4 ]

let test_testbed_scaling () =
  (* Overloaded, the 4-CPU partition must forward well beyond one CPU. *)
  let r1 = run_tb ~domains:1 2_000_000 in
  let r4 = run_tb ~domains:4 2_000_000 in
  check_bool "4 domains beat 1 under overload" true
    (r4.Testbed.r_forwarded_pps > 1.3 *. r1.Testbed.r_forwarded_pps)

let () =
  Alcotest.run "parallel"
    [
      ( "spsc",
        [
          Alcotest.test_case "fifo and capacity" `Quick test_spsc_fifo;
          Alcotest.test_case "cross domain" `Quick test_spsc_cross_domain;
        ] );
      ( "partition",
        [
          Alcotest.test_case "example invariants" `Quick
            test_partition_examples;
          Alcotest.test_case "trivial at one domain" `Quick
            test_partition_trivial;
          Alcotest.test_case "weighted invariants" `Quick
            test_partition_weighted_invariants;
          Alcotest.test_case "weighted determinism" `Quick
            test_partition_weighted_determinism;
          Alcotest.test_case "weight accounting" `Quick
            test_partition_weight_accounting;
          Alcotest.test_case "weighted balance" `Quick
            test_partition_weighted_balance;
        ] );
      ( "scheduler",
        [ Alcotest.test_case "rotation" `Quick test_rotation_fairness ] );
      ( "pool",
        [
          Alcotest.test_case "domain ownership" `Quick
            test_pool_domain_ownership;
        ] );
      ( "runner",
        [
          Alcotest.test_case "differential" `Quick test_runner_differential;
          Alcotest.test_case "ring-pressure conservation" `Quick
            test_runner_conservation_under_ring_pressure;
        ] );
      ( "testbed",
        [
          Alcotest.test_case "differential" `Quick test_testbed_differential;
          Alcotest.test_case "scaling" `Quick test_testbed_scaling;
        ] );
    ]
