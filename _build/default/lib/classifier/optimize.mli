(** Decision-tree optimizations (paper §3: "an extensive set of decision
    tree optimizations, similar to BPF+'s").

    The passes:
    - {b constant folding}: tests with mask 0 always succeed or fail;
    - {b dominated-test elimination}: a test whose outcome is implied by
      tests on the path from the root is bypassed (path-sensitive, with
      both equality and inequality facts, as in BPF+ redundant-predicate
      elimination);
    - {b common-subtree sharing}: structurally identical subtrees are
      merged bottom-up (hash-consing);
    - {b dead-node elimination}: unreachable nodes are collected and the
      tree renumbered. *)

val fold_constants : Tree.t -> Tree.t
val eliminate_dominated : Tree.t -> Tree.t
val share_subtrees : Tree.t -> Tree.t

val optimize : Tree.t -> Tree.t
(** The full pipeline, iterated to a fixpoint. *)

val compose : Tree.t -> output:int -> Tree.t ->
  remap_upper:(int -> int) -> remap_lower:(int -> int) -> noutputs:int ->
  Tree.t
(** [compose t1 ~output:k t2 ...] grafts [t2] onto every [Leaf k] of [t1] —
    the "combine adjacent Classifiers" step of [click-fastclassifier].
    Other leaves [j] of [t1] become [remap_upper j]; leaves [j] of [t2]
    become [remap_lower j]; {!Tree.drop} is preserved by both remaps. *)
