bin/click_undead.ml: Cmdliner Oclick_optim Printf Term Tool_common
