bin/str_split.ml: List String
