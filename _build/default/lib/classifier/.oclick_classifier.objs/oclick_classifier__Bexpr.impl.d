lib/classifier/bexpr.ml: Array Char Hashtbl Int List String Tree
