(* Scheduling, switching, and encapsulation elements beyond the Figure 1
   router's needs — the rest of a practical Click element library. *)

open Prelude
module Ip = Headers.Ip
module Ether = Headers.Ether
module Icmp = Headers.Icmp
module Udp = Headers.Udp

(* PrioSched: a pull scheduler; input 0 has strict priority. *)
class prio_sched name =
  object (self)
    inherit E.base name
    method class_name = "PrioSched"
    method! port_count = "-/1"
    method! processing = "l/l"

    method! pull _ =
      let rec try_input i =
        if i >= self#ninputs then None
        else
          match self#input_pull i with
          | Some p -> Some p
          | None -> try_input (i + 1)
      in
      try_input 0
  end

(* RoundRobinSched: a pull scheduler that rotates among its inputs. *)
class round_robin_sched name =
  object (self)
    inherit E.base name
    val mutable next = 0
    method class_name = "RoundRobinSched"
    method! port_count = "-/1"
    method! processing = "l/l"

    method! pull _ =
      let n = self#ninputs in
      let rec try_from k =
        if k >= n then None
        else
          let i = (next + k) mod n in
          match self#input_pull i with
          | Some p ->
              next <- (i + 1) mod n;
              Some p
          | None -> try_from (k + 1)
      in
      if n = 0 then None else try_from 0
  end

(* RoundRobinSwitch: pushes successive packets to successive outputs. *)
class round_robin_switch name =
  object (self)
    inherit E.base name
    val mutable next = 0
    method class_name = "RoundRobinSwitch"
    method! port_count = "1/1-"
    method! processing = "h/h"

    method! push _ p =
      let n = self#noutputs in
      if n = 0 then self#drop ~reason:"no outputs" p
      else begin
        let out = next mod n in
        next <- (next + 1) mod n;
        self#output out p
      end
  end

(* HashSwitch(OFFSET, LENGTH): route by a hash of packet bytes, so one
   flow always takes one path. *)
class hash_switch name =
  object (self)
    inherit E.base name
    val mutable offset = 0
    val mutable length = 4
    method class_name = "HashSwitch"
    method! port_count = "1/1-"
    method! processing = "h/h"

    method! configure config =
      match Args.split config with
      | [ o; l ] -> (
          match (Args.parse_int o, Args.parse_int l) with
          | Some o, Some l when o >= 0 && l > 0 ->
              offset <- o;
              length <- l;
              Ok ()
          | _ -> Error "HashSwitch expects OFFSET, LENGTH")
      | _ -> Error "HashSwitch expects OFFSET, LENGTH"

    method! push _ p =
      let n = self#noutputs in
      if n = 0 then self#drop ~reason:"no outputs" p
      else begin
        let h = ref 5381 in
        for i = offset to min (offset + length) (Packet.length p) - 1 do
          h := ((!h lsl 5) + !h + Packet.get_u8 p i) land 0x3fffffff
        done;
        self#output (!h mod n) p
      end
  end

(* FrontDropQueue: like Queue, but a full queue drops its *oldest* packet
   to admit the new one — fresher data wins. *)
class front_drop_queue name =
  object (self)
    inherit E.base name
    val q : Packet.t Queue.t = Queue.create ()
    val mutable capacity = 1000
    val mutable drops = 0
    method class_name = "FrontDropQueue"
    method! processing = "h/l"

    method! configure config =
      match Args.split config with
      | [] -> Ok ()
      | [ n ] -> (
          match Args.parse_int n with
          | Some c when c > 0 ->
              capacity <- c;
              Ok ()
          | _ -> Error "bad FrontDropQueue capacity")
      | _ -> Error "FrontDropQueue takes at most one argument"

    method! push _ p =
      self#charge Hooks.W_queue;
      if Queue.length q >= capacity then begin
        let old = Queue.pop q in
        drops <- drops + 1;
        self#drop ~reason:"queue full" old
      end;
      Queue.add p q

    method! pull _ =
      self#charge Hooks.W_queue;
      Queue.take_opt q

    method! stats =
      [ ("length", Queue.length q); ("capacity", capacity); ("drops", drops) ]
  end

(* CheckLength(MAX): packets longer than MAX leave via output 1 (or are
   dropped). *)
class check_length name =
  object (self)
    inherit E.base name
    val mutable max_len = 1500
    method class_name = "CheckLength"
    method! port_count = "1/1-2"
    method! processing = "a/ah"

    method! configure config =
      match Args.parse_int config with
      | Some n when n >= 0 -> Ok (max_len <- n)
      | _ -> Error "CheckLength expects a maximum length"

    method private route p =
      if Packet.length p <= max_len then Some p
      else begin
        if self#noutputs > 1 then self#output 1 p
        else self#drop ~reason:"too long" p;
        None
      end

    method! push _ p =
      match self#route p with Some p -> self#output 0 p | None -> ()

    method! pull _ =
      match self#input_pull 0 with
      | Some p -> self#route p
      | None -> None
  end

(* IPEncap(PROTO, SRC, DST): prepend a fresh IP header. *)
class ip_encap name =
  object (self)
    inherit E.simple_action name
    val mutable proto = 4
    val mutable src = 0
    val mutable dst = 0
    val mutable ident = 0
    method class_name = "IPEncap"

    method! configure config =
      match Args.split config with
      | [ proto_s; src_s; dst_s ] -> (
          match
            (Args.parse_int proto_s, Ipaddr.of_string src_s, Ipaddr.of_string dst_s)
          with
          | Some pr, Some s, Some d when pr >= 0 && pr <= 255 ->
              proto <- pr;
              src <- s;
              dst <- d;
              Ok ()
          | _ -> Error "IPEncap expects PROTO, SRC, DST")
      | _ -> Error "IPEncap expects PROTO, SRC, DST"

    method private action p =
      Packet.push p Ip.min_header_length;
      Ip.write_header p ~src ~dst ~protocol:proto
        ~total_length:(Packet.length p) ~ident ();
      ident <- (ident + 1) land 0xffff;
      (Packet.anno p).Packet.dst_ip <- dst;
      self#charge (Hooks.W_checksum Ip.min_header_length);
      Some p
  end

(* UDPIPEncap(SRC, SPORT, DST, DPORT): prepend UDP and IP headers. *)
class udp_ip_encap name =
  object (self)
    inherit E.simple_action name
    val mutable src = 0
    val mutable sport = 0
    val mutable dst = 0
    val mutable dport = 0
    val mutable ident = 0
    method class_name = "UDPIPEncap"

    method! configure config =
      match Args.split config with
      | [ src_s; sport_s; dst_s; dport_s ] -> (
          match
            ( Ipaddr.of_string src_s,
              Args.parse_int sport_s,
              Ipaddr.of_string dst_s,
              Args.parse_int dport_s )
          with
          | Some s, Some sp, Some d, Some dp
            when sp >= 0 && sp < 65536 && dp >= 0 && dp < 65536 ->
              src <- s;
              sport <- sp;
              dst <- d;
              dport <- dp;
              Ok ()
          | _ -> Error "UDPIPEncap expects SRC, SPORT, DST, DPORT")
      | _ -> Error "UDPIPEncap expects SRC, SPORT, DST, DPORT"

    method private action p =
      let payload = Packet.length p in
      Packet.push p Udp.header_length;
      Udp.set_src_port p sport;
      Udp.set_dst_port p dport;
      Udp.set_udp_length p (Udp.header_length + payload);
      Packet.set_u16 p 6 0 (* checksum optional in IPv4 *);
      Packet.push p Ip.min_header_length;
      Ip.write_header p ~src ~dst ~protocol:Ip.proto_udp
        ~total_length:(Packet.length p) ~ident ();
      ident <- (ident + 1) land 0xffff;
      (Packet.anno p).Packet.dst_ip <- dst;
      self#charge (Hooks.W_checksum Ip.min_header_length);
      Some p
  end

(* EtherMirror: swap the Ethernet source and destination. *)
class ether_mirror name =
  object (self)
    inherit E.simple_action name
    method class_name = "EtherMirror"

    method private action p =
      if Packet.length p >= Ether.header_length then begin
        let d = Ether.dst p and s = Ether.src p in
        Ether.set_dst p s;
        Ether.set_src p d;
        Some p
      end
      else begin
        self#drop ~reason:"no link header" p;
        None
      end
  end

(* ICMPPingResponder: answer ICMP echo requests (packets start at the IP
   header); everything else passes to output 1 or is dropped. *)
class icmp_ping_responder name =
  object (self)
    inherit E.base name
    val mutable replies = 0
    method class_name = "ICMPPingResponder"
    method! port_count = "1/1-2"
    method! processing = "h/h"

    method private is_echo_request p =
      Packet.length p >= Ip.min_header_length + 8
      && Ip.protocol p = Ip.proto_icmp
      && Ip.fragment_offset p = 0
      && Icmp.icmp_type ~off:(Ip.header_length p) p = Icmp.type_echo

    method! push _ p =
      if self#is_echo_request p then begin
        let hl = Ip.header_length p in
        let s = Ip.src p and d = Ip.dst p in
        Ip.set_src p d;
        Ip.set_dst p s;
        Ip.set_ttl p 64;
        Ip.update_checksum p;
        Icmp.set_type ~off:hl p Icmp.type_echo_reply;
        Icmp.update_checksum ~off:hl p ~len:(Packet.length p - hl);
        (Packet.anno p).Packet.dst_ip <- s;
        self#charge (Hooks.W_checksum (Packet.length p));
        replies <- replies + 1;
        self#output 0 p
      end
      else if self#noutputs > 1 then self#output 1 p
      else self#drop ~reason:"not an echo request" p

    method! stats = [ ("replies", replies) ]
  end

(* HostEtherFilter(ETH): keep frames addressed to us (or broadcast /
   multicast); others leave via output 1 or are dropped. *)
class host_ether_filter name =
  object (self)
    inherit E.base name
    val mutable my_eth = Ethaddr.zero
    val mutable dropped = 0
    method class_name = "HostEtherFilter"
    method! port_count = "1/1-2"
    method! processing = "h/h"

    method! configure config =
      match Ethaddr.of_string (String.trim config) with
      | Some e -> Ok (my_eth <- e)
      | None -> Error "HostEtherFilter expects an Ethernet address"

    method! push _ p =
      if Packet.length p < Ether.header_length then
        self#drop ~reason:"no link header" p
      else begin
        let d = Ether.dst p in
        if Ethaddr.equal d my_eth || Ethaddr.is_broadcast d || Ethaddr.is_group d
        then self#output 0 p
        else begin
          dropped <- dropped + 1;
          if self#noutputs > 1 then self#output 1 p
          else self#drop ~reason:"not for this host" p
        end
      end

    method! stats = [ ("filtered", dropped) ]
  end

let register () =
  def "PrioSched" ~ports:"-/1" ~processing:"l/l" (fun n ->
      (new prio_sched n :> E.t));
  def "RoundRobinSched" ~ports:"-/1" ~processing:"l/l" (fun n ->
      (new round_robin_sched n :> E.t));
  def "RoundRobinSwitch" ~ports:"1/1-" ~processing:"h/h" (fun n ->
      (new round_robin_switch n :> E.t));
  def "HashSwitch" ~ports:"1/1-" ~processing:"h/h" (fun n ->
      (new hash_switch n :> E.t));
  def "FrontDropQueue" ~ports:"1/1" ~processing:"h/l" (fun n ->
      (new front_drop_queue n :> E.t));
  def "CheckLength" ~ports:"1/1-2" ~processing:"a/ah" (fun n ->
      (new check_length n :> E.t));
  def "IPEncap" (fun n -> (new ip_encap n :> E.t));
  def "UDPIPEncap" (fun n -> (new udp_ip_encap n :> E.t));
  def "EtherMirror" (fun n -> (new ether_mirror n :> E.t));
  def "ICMPPingResponder" ~ports:"1/1-2" ~processing:"h/h" (fun n ->
      (new icmp_ping_responder n :> E.t));
  def "HostEtherFilter" ~ports:"1/1-2" ~processing:"h/h" (fun n ->
      (new host_ether_filter n :> E.t))
