(* Profile-guided autotuning: oclick-tune's search against the
   single-knob baseline sweep, and measured-cost partition placement
   against static LPT.

   Part one runs the tuner end to end on two config x workload cells
   (the two-interface IP router under uniform load, and a cascaded
   classifier under bursty load). Each cell first profiles the graph
   single-domain to get measured per-element costs, prunes the mode
   axis by region shares exactly as oclick-tune does, then evaluates
   every single-knob default (the all-defaults config plus each
   one-flag-at-a-time variation) and runs the seeded search with those
   defaults as extra starts — so the tuned result is ≥ the best
   default by construction, and the JSON records by how much.

   Part two is the obs→placement feedback loop in isolation, on a
   config built to fool element counting: four source chains with
   identical element counts, one of which hides a 64-pattern
   classifier whose fall-through traffic walks every test. Static LPT
   (weight 1 per element) cannot see the skew; LPT over profiled
   costs puts the hot chain on its own shard. The JSON records the
   busiest-shard measured cost under both placements (the @tune-smoke
   bar: measured < static) and the end-to-end simulated CPU
   utilization of both at the same offered load.

   Everything runs in the simulated testbed, so every number here is
   deterministic. *)

module Tune = Oclick_tune
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform
module Host = Oclick_hw.Host
module Partition = Oclick_parallel.Partition

let seed = 1

let fail fmt = Printf.ksprintf failwith fmt

let ok label = function Ok v -> v | Error e -> fail "tune bench: %s: %s" label e

(* --- part one: tuned vs single-knob defaults ---------------------------- *)

(* A six-stage classifier cascade eth0→eth1 (each stage re-matching a
   header word of the flow, fall-through to Discard) plus a plain
   return path, so both directions of the two-port testbed flow
   forward. The cascade is one multi-element push region — the case
   where the mode axis (compile/fuse) has something to collapse. *)
let cascade_stages = 6

let cascade_graph =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let patterns = [| "12/0800"; "14/45" |] in
  add "pd0 :: PollDevice(eth0);\n";
  add "outq :: Queue(200);\n";
  add "td0 :: ToDevice(eth1);\n";
  for i = 0 to cascade_stages - 1 do
    add "k%d :: Classifier(%s, -);\n" i patterns.(i mod Array.length patterns)
  done;
  add "pd0 -> k0;\n";
  for i = 0 to cascade_stages - 2 do
    add "k%d [0] -> k%d;\n" i (i + 1);
    add "k%d [1] -> Discard;\n" i
  done;
  add "k%d [0] -> outq -> td0;\n" (cascade_stages - 1);
  add "k%d [1] -> Discard;\n" (cascade_stages - 1);
  add "pd1 :: PollDevice(eth1) -> rq :: Queue(200) -> td1 :: ToDevice(eth0);\n";
  Oclick.Ip_router.graph (Buffer.contents buf)

type cell = {
  cl_name : string;
  cl_platform : Platform.t;
  cl_graph : Oclick_graph.Router.t;
  cl_workload : Host.workload;
  cl_workload_name : string;
  cl_input_pps : int;
}

let cells =
  [
    {
      cl_name = "ip2/uniform";
      cl_platform = Platform.p2;
      cl_graph = Common.base_graph 2;
      cl_workload = Host.Uniform;
      cl_workload_name = "uniform";
      cl_input_pps = 700_000;
    };
    {
      cl_name = "cascade6/burst";
      cl_platform = Platform.p2;
      cl_graph = cascade_graph;
      cl_workload = Host.Burst (64, 1.5);
      cl_workload_name = "burst:64:1.5";
      cl_input_pps = 600_000;
    };
  ]

type cell_result = {
  cr_cell : cell;
  cr_budget : int;
  cr_tuned : Tune.tuned;
  cr_best_default : Tune.config * Tune.score;
  cr_defaults : (Tune.config * Tune.score) list;
  cr_fusion_worthwhile : bool;
}

let run_cell ~budget ~duration_ms ~warmup_ms ~drain_ms cell =
  (* Profile single-domain, prune the mode axis by measured region
     shares — the same pre-pass oclick-tune runs. *)
  let weights =
    ok (cell.cl_name ^ "/profile")
      (Tune.profile ~duration_ms ~warmup_ms ~drain_ms
         ~workload:cell.cl_workload ~platform:cell.cl_platform
         ~graph:cell.cl_graph ~input_pps:cell.cl_input_pps ())
  in
  let shares =
    ok (cell.cl_name ^ "/regions") (Tune.region_shares ~weights cell.cl_graph)
  in
  let worthwhile = Tune.fusion_worthwhile shares in
  let space =
    if worthwhile then Tune.default_space
    else { Tune.default_space with Tune.s_modes = [ Tune.Interpreted ] }
  in
  let objective =
    Tune.objective ~duration_ms ~warmup_ms ~drain_ms
      ~workload:cell.cl_workload ~weights ~platform:cell.cl_platform
      ~graph:cell.cl_graph ~input_pps:cell.cl_input_pps ()
  in
  let defaults =
    List.map
      (fun c -> (c, ok (cell.cl_name ^ "/default") (Tune.eval objective c)))
      (Tune.single_knob_defaults space)
  in
  let best_default =
    match defaults with
    | [] -> fail "tune bench: %s: no single-knob defaults" cell.cl_name
    | first :: rest ->
        List.fold_left
          (fun (bc, bs) (c, s) ->
            if Tune.better s bs then (c, s) else (bc, bs))
          first rest
  in
  let tuned =
    ok (cell.cl_name ^ "/search")
      (Tune.search ~seed ~budget
         ~extra_starts:(List.map fst defaults)
         objective space)
  in
  {
    cr_cell = cell;
    cr_budget = budget;
    cr_tuned = tuned;
    cr_best_default = best_default;
    cr_defaults = defaults;
    cr_fusion_worthwhile = worthwhile;
  }

let score_json (s : Tune.score) =
  [
    ("pps", Common.J_float s.Tune.sc_pps);
    ("ns_per_pkt", Common.J_float s.Tune.sc_ns);
  ]

let cell_json r =
  let t = r.cr_tuned in
  let bd_c, bd_s = r.cr_best_default in
  Common.J_obj
    [
      ("name", Common.J_string r.cr_cell.cl_name);
      ("platform", Common.J_string r.cr_cell.cl_platform.Platform.p_name);
      ("workload", Common.J_string r.cr_cell.cl_workload_name);
      ("input_pps", Common.J_int r.cr_cell.cl_input_pps);
      ("seed", Common.J_int seed);
      ("budget", Common.J_int r.cr_budget);
      ("evals", Common.J_int t.Tune.t_evals);
      ("points", Common.J_int t.Tune.t_points);
      ("exhaustive", Common.J_bool t.Tune.t_exhaustive);
      ("fusion_worthwhile", Common.J_bool r.cr_fusion_worthwhile);
      ( "tuned",
        Common.J_obj
          (("config", Common.J_string (Tune.describe t.Tune.t_config))
           :: score_json t.Tune.t_score
          @ [ ("command", Common.J_string (Tune.command_line t.Tune.t_config)) ])
      );
      ( "best_default",
        Common.J_obj
          (("config", Common.J_string (Tune.describe bd_c)) :: score_json bd_s)
      );
      ( "defaults",
        Common.J_list
          (List.map
             (fun (c, s) ->
               Common.J_obj
                 (("config", Common.J_string (Tune.describe c))
                 :: score_json s))
             r.cr_defaults) );
      ( "improvement",
        Common.J_float
          (if bd_s.Tune.sc_pps > 0.0 then
             t.Tune.t_score.Tune.sc_pps /. bd_s.Tune.sc_pps
           else 1.0) );
    ]

(* --- part two: measured-cost placement vs static LPT -------------------- *)

(* Four source chains with identical element counts — PollDevice,
   Classifier, shared Discard, Queue, ToDevice — so static LPT sees
   four interchangeable regions. Chain 0's classifier carries [junk]
   never-matching patterns at one header word; its fall-through
   traffic walks a test per pattern, so the chain costs several times
   its siblings in measured cycles while counting the same. All junk
   outputs collapse onto one Discard per chain to keep the counts
   aligned. *)
let skew_ports = 8
let skew_domains = 4
let skew_platform = { Platform.p2 with Platform.p_nports = skew_ports }

let skew_graph =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let chain i ~junk =
    add "pd%d :: PollDevice(eth%d);\n" i i;
    add "dd%d :: Discard;\n" i;
    let pats =
      String.concat ", "
        (List.init junk (fun j -> Printf.sprintf "12/99%02x" j) @ [ "-" ])
    in
    add "k%d :: Classifier(%s);\n" i pats;
    add "q%d :: Queue(200);\n" i;
    add "td%d :: ToDevice(eth%d);\n" i (i + skew_ports / 2);
    add "pd%d -> k%d;\n" i i;
    for j = 0 to junk - 1 do
      add "k%d [%d] -> dd%d;\n" i j i
    done;
    add "k%d [%d] -> q%d -> td%d;\n" i junk i i
  in
  chain 0 ~junk:64;
  for i = 1 to (skew_ports / 2) - 1 do
    chain i ~junk:4
  done;
  Oclick.Ip_router.graph (Buffer.contents buf)

type placement_result = {
  pl_weights : int array;
  pl_static_busiest : int;
  pl_measured_busiest : int;
  pl_static_util : float;
  pl_measured_util : float;
  pl_regions : int;
}

let busiest a = Array.fold_left max 0 a

let run_placement ~duration_ms ~warmup_ms ~drain_ms ~input_pps =
  let graph = skew_graph in
  let weights =
    ok "placement/profile"
      (Tune.profile ~duration_ms ~warmup_ms ~drain_ms ~platform:skew_platform
         ~graph ~input_pps ())
  in
  let static = ok "placement/static" (Partition.compute ~domains:skew_domains graph) in
  let measured =
    ok "placement/measured"
      (Partition.compute ~weights ~domains:skew_domains graph)
  in
  let regions = ok "placement/regions" (Partition.regions graph) in
  let util partition_weights =
    let r =
      ok "placement/testbed"
        (Testbed.run ~duration_ms ~warmup_ms ~drain_ms
           ~domains:skew_domains ?partition_weights ~platform:skew_platform
           ~graph ~input_pps ())
    in
    r.Testbed.r_cpu_utilization
  in
  {
    pl_weights = weights;
    pl_static_busiest = busiest (Partition.shard_weights ~weights static);
    pl_measured_busiest = busiest (Partition.shard_weights ~weights measured);
    pl_static_util = util None;
    pl_measured_util = util (Some weights);
    pl_regions = List.length regions;
  }

let placement_json ~input_pps p =
  Common.J_obj
    [
      ("graph", Common.J_string "skew4");
      ("platform", Common.J_string skew_platform.Platform.p_name);
      ("ports", Common.J_int skew_ports);
      ("domains", Common.J_int skew_domains);
      ("input_pps", Common.J_int input_pps);
      ("regions", Common.J_int p.pl_regions);
      ("static_busiest_cost", Common.J_int p.pl_static_busiest);
      ("measured_busiest_cost", Common.J_int p.pl_measured_busiest);
      ( "reduction",
        Common.J_float
          (1.0
          -. float_of_int p.pl_measured_busiest
             /. float_of_int (max 1 p.pl_static_busiest)) );
      ("static_cpu_utilization", Common.J_float p.pl_static_util);
      ("measured_cpu_utilization", Common.J_float p.pl_measured_util);
    ]

(* --- the section -------------------------------------------------------- *)

let run () =
  Common.section
    "tune: profile-guided autotuning and measured-cost placement";
  let budget = if !Common.smoke then 24 else 48 in
  let duration_ms, warmup_ms, drain_ms =
    if !Common.smoke then (8, 4, 4) else (30, 15, 10)
  in
  Printf.printf
    "seeded search (seed %d, budget %d) vs the single-knob default sweep\n\n"
    seed budget;
  let results =
    List.map (run_cell ~budget ~duration_ms ~warmup_ms ~drain_ms) cells
  in
  Printf.printf "%-16s %-44s %12s %10s\n" "cell" "config" "fwd pps" "ns/pkt";
  List.iter
    (fun r ->
      let bd_c, bd_s = r.cr_best_default in
      let t = r.cr_tuned in
      Printf.printf "%-16s %-44s %12.0f %10.0f\n" r.cr_cell.cl_name
        ("default: " ^ Tune.describe bd_c)
        bd_s.Tune.sc_pps bd_s.Tune.sc_ns;
      Printf.printf "%-16s %-44s %12.0f %10.0f\n" ""
        ("tuned:   " ^ Tune.describe t.Tune.t_config)
        t.Tune.t_score.Tune.sc_pps t.Tune.t_score.Tune.sc_ns;
      Printf.printf "%-16s %d/%d evaluations over %d points%s\n\n" ""
        t.Tune.t_evals t.Tune.t_budget t.Tune.t_points
        (if t.Tune.t_exhaustive then " (exhaustive)" else ""))
    results;
  let placement_pps = 400_000 in
  let placement =
    run_placement ~duration_ms ~warmup_ms ~drain_ms ~input_pps:placement_pps
  in
  Printf.printf
    "placement (skew config, %d regions, %d domains): busiest shard cost \
     %d static -> %d measured (%.0f%% less); cpu utilization %.2f -> %.2f\n"
    placement.pl_regions skew_domains placement.pl_static_busiest
    placement.pl_measured_busiest
    (100.0
    *. (1.0
       -. float_of_int placement.pl_measured_busiest
          /. float_of_int (max 1 placement.pl_static_busiest)))
    placement.pl_static_util placement.pl_measured_util;
  Common.write_json ~section:"tune"
    (Common.J_obj
       [
         ("section", Common.J_string "tune");
         ("smoke", Common.J_bool !Common.smoke);
         ("seed", Common.J_int seed);
         ("budget", Common.J_int budget);
         ("cells", Common.J_list (List.map cell_json results));
         ("placement", placement_json ~input_pps:placement_pps placement);
       ])
