examples/nat_gateway.ml: List Oclick_elements Oclick_packet Oclick_runtime Printf
