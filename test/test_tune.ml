(* Tests for the profile-guided autotuner: seeded search determinism,
   the single-knob-defaults floor, lossless replay of tuned
   configurations through the simulated testbed, Queue annotation, the
   measurement feedback helpers, and clean diagnostics on degenerate
   knob spaces. *)

module Tune = Oclick_tune
module Router = Oclick_graph.Router
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform

let () = Oclick_elements.register_all ()
let () = Oclick_compile.register ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let parse_exn src =
  match Router.parse_string src with
  | Ok g -> g
  | Error e -> Alcotest.failf "parse: %s" e

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Two forwarding chains (one per direction of the two-port platform),
   each a multi-element push region so compile/fuse have something to
   collapse. Small enough that every objective evaluation is fast. *)
let graph_src =
  "pd0 :: PollDevice(eth0) -> Paint(1) -> Paint(2) -> q0 :: Queue(200) -> \
   td0 :: ToDevice(eth1);\n\
   pd1 :: PollDevice(eth1) -> Paint(3) -> Paint(4) -> q1 :: Queue(150) -> \
   td1 :: ToDevice(eth0);"

let graph () = parse_exn graph_src

let objective ?weights () =
  Tune.objective ~duration_ms:4 ~warmup_ms:2 ~drain_ms:2 ?weights
    ~platform:Platform.p1 ~graph:(graph ()) ~input_pps:50_000 ()

(* An 8-point space the default budget enumerates outright. *)
let small_space =
  {
    Tune.s_modes = [ Tune.Interpreted; Tune.Compiled ];
    Tune.s_batches = [ 1; 8 ];
    Tune.s_domains = [ 1; 2 ];
    Tune.s_rings = [ 128 ];
    Tune.s_queues = [ 0 ];
    Tune.s_earlies = [ None ];
    Tune.s_watchdogs = [ 1000 ];
  }

let search_exn ?seed ?budget ?extra_starts ob space =
  match Tune.search ?seed ?budget ?extra_starts ob space with
  | Ok t -> t
  | Error e -> Alcotest.failf "search: %s" e

(* --- search -------------------------------------------------------------- *)

let test_search_determinism () =
  let run () =
    let t = search_exn ~seed:3 ~budget:16 (objective ()) small_space in
    ( t.Tune.t_config,
      t.Tune.t_score,
      t.Tune.t_evals,
      t.Tune.t_exhaustive,
      t.Tune.t_log )
  in
  let c1, s1, e1, x1, l1 = run () in
  let c2, s2, e2, x2, l2 = run () in
  check_str "same config" (Tune.describe c1) (Tune.describe c2);
  check_bool "same score" true (s1 = s2);
  check "same evaluations" e1 e2;
  check_bool "both exhaustive" true (x1 && x2);
  Alcotest.(check (list string)) "same trace" l1 l2

let test_search_exhaustive_small_space () =
  let t = search_exn ~budget:16 (objective ()) small_space in
  check "eight points" 8 t.Tune.t_points;
  check_bool "enumerated outright" true t.Tune.t_exhaustive;
  check "one evaluation per point" 8 t.Tune.t_evals

let test_defaults_are_a_floor () =
  let ob = objective () in
  let defaults = Tune.single_knob_defaults Tune.default_space in
  check_bool "sweep is non-trivial" true (List.length defaults > 5);
  let scores =
    List.map
      (fun c ->
        match Tune.eval ob c with
        | Ok s -> s
        | Error e -> Alcotest.failf "default %s: %s" (Tune.describe c) e)
      defaults
  in
  let t =
    search_exn ~seed:1 ~budget:24 ~extra_starts:defaults ob Tune.default_space
  in
  List.iter2
    (fun c s ->
      check_bool
        (Printf.sprintf "tuned >= default %s" (Tune.describe c))
        false
        (Tune.better s t.Tune.t_score))
    defaults scores

(* --- replay -------------------------------------------------------------- *)

(* A tuned configuration must replay deterministically: the annotated
   graph plus the tuned knobs, run twice through the testbed, produces
   identical drain-complete outcome totals, drop reasons, and
   conservation ledgers. *)
let test_tuned_replay_lossless () =
  let c =
    {
      Tune.c_mode = Tune.Fused;
      Tune.c_batch = 8;
      Tune.c_domains = 2;
      Tune.c_ring = 256;
      Tune.c_queue = 777;
      Tune.c_early = Some { Tune.e_min = 50; Tune.e_max = 400; Tune.e_prob = 0.02 };
      Tune.c_watchdog_ms = 1000;
    }
  in
  let annotated = Tune.annotate c (graph ()) in
  let replay () =
    match
      Testbed.run ~duration_ms:6 ~warmup_ms:3 ~drain_ms:3 ~batch:c.Tune.c_batch
        ~compile:false ~fuse:true ~domains:c.Tune.c_domains
        ~ring_capacity:c.Tune.c_ring ~platform:Platform.p1 ~graph:annotated
        ~input_pps:50_000 ()
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "replay: %s" e
  in
  let a = replay () in
  let b = replay () in
  check_bool "forwarded traffic" true
    (a.Testbed.r_outcomes_total.Testbed.oc_sent > 0);
  check_bool "outcome totals identical" true
    (a.Testbed.r_outcomes_total = b.Testbed.r_outcomes_total);
  check_bool "drop reasons identical" true
    (a.Testbed.r_drop_reasons_total = b.Testbed.r_drop_reasons_total);
  check_bool "conservation identical" true
    (a.Testbed.r_conservation = b.Testbed.r_conservation)

(* --- annotation ---------------------------------------------------------- *)

let test_annotate_writes_capacities () =
  let c =
    {
      Tune.c_mode = Tune.Interpreted;
      Tune.c_batch = 1;
      Tune.c_domains = 1;
      Tune.c_ring = 128;
      Tune.c_queue = 1000;
      Tune.c_early = Some { Tune.e_min = 50; Tune.e_max = 400; Tune.e_prob = 0.02 };
      Tune.c_watchdog_ms = 1000;
    }
  in
  let s = Router.to_string (Tune.annotate c (graph ())) in
  check_bool "capacity written" true (contains s "Queue(1000, EARLY 50 400 0.02)");
  check_bool "original capacity gone" true (not (contains s "Queue(200"));
  check_bool "second queue rewritten too" true (not (contains s "Queue(150"))

let test_annotate_keep_is_identity () =
  let c =
    {
      Tune.c_mode = Tune.Fused;
      Tune.c_batch = 32;
      Tune.c_domains = 4;
      Tune.c_ring = 1024;
      Tune.c_queue = 0;
      Tune.c_early = None;
      Tune.c_watchdog_ms = 1000;
    }
  in
  let g = graph () in
  check_str "keep-configured annotation is byte-identical"
    (Router.to_string g)
    (Router.to_string (Tune.annotate c g))

let test_command_line () =
  let base =
    {
      Tune.c_mode = Tune.Interpreted;
      Tune.c_batch = 1;
      Tune.c_domains = 1;
      Tune.c_ring = 128;
      Tune.c_queue = 0;
      Tune.c_early = None;
      Tune.c_watchdog_ms = 1000;
    }
  in
  check_str "all defaults" "oclick-run tuned.click" (Tune.command_line base);
  check_str "tuned knobs"
    "oclick-run --fuse --batch 8 --domains 2 --ring-capacity 256 \
     --watchdog-ms 500 in.click"
    (Tune.command_line ~input:"in.click"
       {
         base with
         Tune.c_mode = Tune.Fused;
         Tune.c_batch = 8;
         Tune.c_domains = 2;
         Tune.c_ring = 256;
         Tune.c_watchdog_ms = 500;
       })

let test_mode_names () =
  List.iter
    (fun m ->
      check_bool (Tune.mode_name m) true
        (Tune.mode_of_name (Tune.mode_name m) = Some m))
    [ Tune.Interpreted; Tune.Compiled; Tune.Fused ];
  check_bool "unknown mode" true (Tune.mode_of_name "jit" = None)

(* --- measurement feedback ------------------------------------------------ *)

let test_profile_and_shares () =
  let g = graph () in
  let weights =
    match
      Tune.profile ~duration_ms:4 ~warmup_ms:2 ~drain_ms:2
        ~platform:Platform.p1 ~graph:g ~input_pps:50_000 ()
    with
    | Ok w -> w
    | Error e -> Alcotest.failf "profile: %s" e
  in
  (* The ledger covers the expanded runtime graph, so it is at least as
     long as the source graph's element list. *)
  check_bool "a weight slot for every source element" true
    (Array.length weights >= List.length (Router.indices g));
  check_bool "weights floored at one" true (Array.for_all (fun w -> w >= 1) weights);
  let shares =
    match Tune.region_shares ~weights g with
    | Ok s -> s
    | Error e -> Alcotest.failf "region_shares: %s" e
  in
  check_bool "regions found" true (List.length shares >= 2);
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 shares in
  check_bool "shares sum to one" true (abs_float (total -. 1.0) < 1e-9);
  (* Both forwarding chains are multi-element regions carrying nearly
     all the measured cost, so the mode axis stays. *)
  check_bool "fusion worthwhile here" true (Tune.fusion_worthwhile shares)

(* --- degenerate spaces --------------------------------------------------- *)

let test_budget_zero_is_clean () =
  match Tune.search ~budget:0 (objective ()) small_space with
  | Ok _ -> Alcotest.fail "budget 0 accepted"
  | Error e -> check_bool "diagnostic names the budget" true (contains e "budget")

let test_empty_axis_is_clean () =
  match
    Tune.search (objective ()) { small_space with Tune.s_modes = [] }
  with
  | Ok _ -> Alcotest.fail "empty axis accepted"
  | Error e -> check_bool "one-line diagnostic" true (not (contains e "\n"))

let test_bad_knob_is_clean () =
  match
    Tune.search (objective ()) { small_space with Tune.s_batches = [ 0 ] }
  with
  | Ok _ -> Alcotest.fail "non-positive batch accepted"
  | Error e -> check_bool "one-line diagnostic" true (not (contains e "\n"))

let test_single_point_space () =
  let space =
    {
      Tune.s_modes = [ Tune.Interpreted ];
      Tune.s_batches = [ 1 ];
      Tune.s_domains = [ 1 ];
      Tune.s_rings = [ 128 ];
      Tune.s_queues = [ 0 ];
      Tune.s_earlies = [ None ];
      Tune.s_watchdogs = [ 1000 ];
    }
  in
  let t = search_exn ~budget:4 (objective ()) space in
  check "one point" 1 t.Tune.t_points;
  check "one evaluation" 1 t.Tune.t_evals;
  check_bool "exhaustive" true t.Tune.t_exhaustive;
  check_str "the only config"
    "mode=interpreted batch=1 domains=1 ring=128 queue=0 early=- watchdog=1000"
    (Tune.describe t.Tune.t_config)

let () =
  Alcotest.run "tune"
    [
      ( "search",
        [
          Alcotest.test_case "seeded determinism" `Quick
            test_search_determinism;
          Alcotest.test_case "exhaustive small space" `Quick
            test_search_exhaustive_small_space;
          Alcotest.test_case "single-knob defaults floor" `Quick
            test_defaults_are_a_floor;
        ] );
      ( "replay",
        [
          Alcotest.test_case "tuned config lossless" `Quick
            test_tuned_replay_lossless;
        ] );
      ( "emission",
        [
          Alcotest.test_case "annotate capacities" `Quick
            test_annotate_writes_capacities;
          Alcotest.test_case "annotate keep is identity" `Quick
            test_annotate_keep_is_identity;
          Alcotest.test_case "command line" `Quick test_command_line;
          Alcotest.test_case "mode names" `Quick test_mode_names;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "profile and region shares" `Quick
            test_profile_and_shares;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "budget zero" `Quick test_budget_zero_is_clean;
          Alcotest.test_case "empty axis" `Quick test_empty_axis_is_clean;
          Alcotest.test_case "bad knob" `Quick test_bad_knob_is_clean;
          Alcotest.test_case "single point" `Quick test_single_point_space;
        ] );
    ]
