(* DIR-24-8 trie: differential equality against a reference linear scan,
   add/remove churn, batch-vs-scalar agreement, and the element-level
   wiring (linear == trie == compiled closure, duplicate-prefix
   semantics, multicore conservation with a big table). *)

module Lpm = Oclick_lpm.Dir24_8
module Routegen = Oclick_lpm.Routegen

(* --- reference model: longest-prefix-first linear scan, stable order
   (first-declared wins among equal addr/len) --- *)

type ref_route = { r_addr : int; r_len : int; r_gw : int; r_port : int }

let ref_table routes =
  (* Stable sort by descending prefix length; duplicates (same addr/len)
     keep declaration order, so the first one is hit first. *)
  List.stable_sort (fun a b -> compare b.r_len a.r_len) routes

let mask_of_len len =
  if len = 0 then 0 else 0xffff_ffff lsl (32 - len) land 0xffff_ffff

let ref_lookup table dst =
  List.find_opt
    (fun r -> dst land mask_of_len r.r_len = r.r_addr)
    table

(* Dedup like the trie does: first addr/len declaration wins. *)
let dedup routes =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      let key = (r.r_len lsl 32) lor r.r_addr in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    routes

let build_trie ?stride1 routes =
  let t = Lpm.create ?stride1 () in
  List.iter
    (fun r ->
      ignore (Lpm.add t ~addr:r.r_addr ~len:r.r_len ~gw:r.r_gw ~port:r.r_port))
    routes;
  t

let check_agree ~what table t dst =
  let r = Lpm.lookup t dst in
  match ref_lookup table dst with
  | None ->
    if Lpm.result_found r then
      Alcotest.failf "%s: dst %08x: trie found nh, reference missed" what dst
  | Some rr ->
    if not (Lpm.result_found r) then
      Alcotest.failf "%s: dst %08x: reference hit /%d, trie missed" what dst
        rr.r_len;
    let nh = Lpm.result_nh r in
    if Lpm.gw t nh <> rr.r_gw || Lpm.port t nh <> rr.r_port then
      Alcotest.failf "%s: dst %08x: trie (gw=%x,port=%d) reference (gw=%x,port=%d)"
        what dst (Lpm.gw t nh) (Lpm.port t nh) rr.r_gw rr.r_port

(* --- unit tests --- *)

let test_empty () =
  let t = Lpm.create ~stride1:16 () in
  Alcotest.(check bool) "miss" false (Lpm.result_found (Lpm.lookup t 0x01020304));
  Alcotest.(check int) "one touch" 1 (Lpm.result_touches (Lpm.lookup t 0));
  Alcotest.(check int) "no routes" 0 (Lpm.nroutes t);
  Alcotest.(check int) "no blocks" 0 (Lpm.leaf_blocks t)

let test_basic_lpm () =
  let t = Lpm.create ~stride1:16 () in
  ignore (Lpm.add t ~addr:0 ~len:0 ~gw:0 ~port:9);
  ignore (Lpm.add t ~addr:0x0a000000 ~len:8 ~gw:0 ~port:1);
  ignore (Lpm.add t ~addr:0x0a010000 ~len:16 ~gw:0 ~port:2);
  ignore (Lpm.add t ~addr:0x0a010200 ~len:24 ~gw:0xc0a80001 ~port:3);
  ignore (Lpm.add t ~addr:0x0a010203 ~len:32 ~gw:0 ~port:4);
  let port_of dst =
    let r = Lpm.lookup t dst in
    if Lpm.result_found r then Lpm.port t (Lpm.result_nh r) else -1
  in
  Alcotest.(check int) "default" 9 (port_of 0xc0000001);
  Alcotest.(check int) "/8" 1 (port_of 0x0aff0001);
  Alcotest.(check int) "/16" 2 (port_of 0x0a01ff01);
  Alcotest.(check int) "/24" 3 (port_of 0x0a010201);
  Alcotest.(check int) "/32" 4 (port_of 0x0a010203);
  let r = Lpm.lookup t 0x0a010203 in
  Alcotest.(check int) "gw carried" 0 (Lpm.gw t (Lpm.result_nh r));
  let r24 = Lpm.lookup t 0x0a010204 in
  Alcotest.(check int) "gw on /24" 0xc0a80001 (Lpm.gw t (Lpm.result_nh r24))

let test_touch_bounds () =
  (* stride1=24 is DIR-24-8: at most 2 touches even with /32s present. *)
  let t = Lpm.create ~stride1:24 () in
  ignore (Lpm.add t ~addr:0 ~len:0 ~gw:0 ~port:0);
  ignore (Lpm.add t ~addr:0x0a010203 ~len:32 ~gw:0 ~port:1);
  Alcotest.(check int) "stage-1 hit" 1 (Lpm.result_touches (Lpm.lookup t 0xc0000001));
  Alcotest.(check int) "leaf hit" 2 (Lpm.result_touches (Lpm.lookup t 0x0a010203));
  Alcotest.(check int) "leaf miss-range" 2
    (Lpm.result_touches (Lpm.lookup t 0x0a010204))

let test_duplicate_add () =
  let t = Lpm.create ~stride1:16 () in
  Alcotest.(check bool) "first added" true
    (Lpm.add t ~addr:0x0a000000 ~len:8 ~gw:0 ~port:1 = `Added);
  Alcotest.(check bool) "second refused" true
    (Lpm.add t ~addr:0x0a000000 ~len:8 ~gw:0 ~port:2 = `Duplicate);
  Alcotest.(check int) "one route" 1 (Lpm.nroutes t);
  let r = Lpm.lookup t 0x0a000001 in
  Alcotest.(check int) "first wins" 1 (Lpm.port t (Lpm.result_nh r))

let test_remove_restores () =
  let t = Lpm.create ~stride1:16 () in
  ignore (Lpm.add t ~addr:0x0a000000 ~len:8 ~gw:0 ~port:1);
  let blocks0 = Lpm.leaf_blocks t in
  ignore (Lpm.add t ~addr:0x0a010200 ~len:24 ~gw:0 ~port:2);
  ignore (Lpm.add t ~addr:0x0a010203 ~len:32 ~gw:0 ~port:3);
  Alcotest.(check bool) "remove /32" true (Lpm.remove t ~addr:0x0a010203 ~len:32);
  let r = Lpm.lookup t 0x0a010203 in
  Alcotest.(check int) "falls back to /24" 2 (Lpm.port t (Lpm.result_nh r));
  Alcotest.(check bool) "remove /24" true (Lpm.remove t ~addr:0x0a010200 ~len:24);
  let r = Lpm.lookup t 0x0a010203 in
  Alcotest.(check int) "falls back to /8" 1 (Lpm.port t (Lpm.result_nh r));
  Alcotest.(check int) "blocks compacted" blocks0 (Lpm.leaf_blocks t);
  Alcotest.(check bool) "remove absent" false
    (Lpm.remove t ~addr:0x0b000000 ~len:8)

(* --- QCheck generators --- *)

let gen_route =
  QCheck.Gen.(
    let* len = oneofl [ 0; 4; 7; 8; 12; 15; 16; 17; 20; 22; 24; 25; 28; 30; 31; 32 ] in
    let* a = int_bound 0xff and* b = int_bound 0xff in
    let* c = int_bound 0xff and* d = int_bound 0xff in
    let addr = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d in
    let addr = addr land mask_of_len len in
    let* gw = oneofl [ 0; 0x0a000001; 0xc0a80101 ] in
    let* port = int_bound 7 in
    return { r_addr = addr; r_len = len; r_gw = gw; r_port = port })

let gen_table = QCheck.Gen.(list_size (int_range 1 120) gen_route)

(* Probe near route boundaries as well as uniformly: edges of painted
   ranges are where off-by-ones live. *)
let probes_for routes rand_dsts =
  List.concat_map
    (fun r ->
      let m = mask_of_len r.r_len in
      let last = r.r_addr lor (lnot m land 0xffff_ffff) in
      [ r.r_addr; last; (r.r_addr - 1) land 0xffff_ffff; (last + 1) land 0xffff_ffff ])
    routes
  @ rand_dsts

let arb_case =
  QCheck.make
    ~print:(fun (routes, _) ->
      String.concat "; "
        (List.map
           (fun r -> Printf.sprintf "%08x/%d->%d" r.r_addr r.r_len r.r_port)
           routes))
    QCheck.Gen.(pair gen_table (list_size (return 64) (int_bound 0xffff_ffff)))

let prop_trie_equals_reference =
  QCheck.Test.make ~count:120 ~name:"trie == reference linear scan" arb_case
    (fun (routes, rand_dsts) ->
      let table = ref_table (dedup routes) in
      List.iter
        (fun stride1 ->
          let t = build_trie ~stride1 routes in
          List.iter
            (fun dst -> check_agree ~what:(Printf.sprintf "s%d" stride1) table t dst)
            (probes_for routes rand_dsts))
        [ 16; 24 ];
      true)

let prop_batch_equals_scalar =
  QCheck.Test.make ~count:80 ~name:"lookup_batch == scalar lookups" arb_case
    (fun (routes, rand_dsts) ->
      let t = build_trie ~stride1:16 routes in
      let dsts = Array.of_list (probes_for routes rand_dsts) in
      let n = Array.length dsts in
      let out = Array.make n 0 in
      let batch_touches = Lpm.lookup_batch t dsts out n in
      let scalar_touches = ref 0 in
      Array.iteri
        (fun i dst ->
          let r = Lpm.lookup t dst in
          scalar_touches := !scalar_touches + Lpm.result_touches r;
          let want = if Lpm.result_found r then Lpm.result_nh r else -1 in
          if out.(i) <> want then
            Alcotest.failf "batch dst %08x: batch nh %d scalar nh %d" dst out.(i)
              want)
        dsts;
      if batch_touches <> !scalar_touches then
        Alcotest.failf "touches: batch %d scalar %d" batch_touches !scalar_touches;
      true)

let prop_churn =
  (* Adding then removing a set of routes restores every lookup, and
     removals fall back to the surviving covering routes (checked via the
     reference on the surviving set). *)
  QCheck.Test.make ~count:80 ~name:"add/remove churn restores lookups"
    (QCheck.make
       QCheck.Gen.(
         triple gen_table gen_table
           (list_size (return 48) (int_bound 0xffff_ffff))))
    (fun (keep, churn, rand_dsts) ->
      let keep = dedup keep in
      let t = build_trie ~stride1:16 keep in
      let blocks0 = Lpm.leaf_blocks t in
      let nroutes0 = Lpm.nroutes t in
      (* Add the churn set (skipping duplicates of kept routes)... *)
      let added =
        List.filter
          (fun r ->
            Lpm.add t ~addr:r.r_addr ~len:r.r_len ~gw:r.r_gw ~port:r.r_port
            = `Added)
          churn
      in
      (* ...check combined equality while the churn set is live... *)
      let table_combined = ref_table (dedup (keep @ added)) in
      List.iter
        (fun dst -> check_agree ~what:"combined" table_combined t dst)
        (probes_for (keep @ added) rand_dsts);
      (* ...then remove it and check the original table is restored. *)
      List.iter
        (fun r ->
          if not (Lpm.remove t ~addr:r.r_addr ~len:r.r_len) then
            Alcotest.failf "remove %08x/%d failed" r.r_addr r.r_len)
        added;
      Alcotest.(check int) "route count restored" nroutes0 (Lpm.nroutes t);
      Alcotest.(check int) "blocks compacted" blocks0 (Lpm.leaf_blocks t);
      let table = ref_table keep in
      List.iter
        (fun dst -> check_agree ~what:"restored" table t dst)
        (probes_for (keep @ added) rand_dsts);
      true)

let test_routegen_deterministic () =
  let a = Routegen.generate ~seed:7 ~n:500 ~nports:4 () in
  let b = Routegen.generate ~seed:7 ~n:500 ~nports:4 () in
  Alcotest.(check bool) "same seed same table" true (a = b);
  let c = Routegen.generate ~seed:8 ~n:500 ~nports:4 () in
  Alcotest.(check bool) "different seed different table" true (a <> c);
  Alcotest.(check int) "count" 500 (Array.length a);
  Array.iter
    (fun (r : Routegen.route) ->
      if r.len <> 0 && (r.addr lsr 24) = 10 then
        Alcotest.fail "routegen produced a 10/8 route")
    a;
  let d1 = Routegen.probe_dsts ~seed:3 ~routes:a ~n:100 () in
  let d2 = Routegen.probe_dsts ~seed:3 ~routes:a ~n:100 () in
  Alcotest.(check bool) "same probes" true (d1 = d2)

let test_routegen_trie_agrees () =
  (* The generator's output drives the big benches; make sure a generated
     table agrees with the reference at a non-toy size. *)
  let routes = Routegen.generate ~seed:11 ~n:3000 ~nports:8 () in
  let as_ref =
    Array.to_list
      (Array.map
         (fun (r : Routegen.route) ->
           { r_addr = r.addr; r_len = r.len; r_gw = r.gw; r_port = r.port })
         routes)
  in
  let table = ref_table as_ref in
  let t = build_trie ~stride1:24 as_ref in
  Alcotest.(check int) "all inserted" 3000 (Lpm.nroutes t);
  let dsts = Routegen.probe_dsts ~seed:5 ~routes ~n:2000 () in
  Array.iter (fun dst -> check_agree ~what:"routegen" table t dst) dsts

(* --- element-level wiring: linear == trie == compiled closure --- *)

module Driver = Oclick_runtime.Driver
module Hooks = Oclick_runtime.Hooks
module Router = Oclick_graph.Router
module Packet = Oclick_packet.Packet
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform

let () = Oclick_elements.register_all ()
let () = Oclick_compile.register ()

let route_spec r =
  let dotted a =
    Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xff) ((a lsr 16) land 0xff)
      ((a lsr 8) land 0xff) (a land 0xff)
  in
  if r.r_gw = 0 then Printf.sprintf "%s/%d %d" (dotted r.r_addr) r.r_len r.r_port
  else
    Printf.sprintf "%s/%d %s %d" (dotted r.r_addr) r.r_len (dotted r.r_gw)
      r.r_port

let table_spec routes = String.concat ", " (List.map route_spec routes)

(* A route element with two connected outputs (and any higher route port
   exercising the unconnected-port drop), counters on each output, drop
   reasons captured via hooks. [Strip(0)] upstream so that pushing into
   [src] traverses a real connection — the one the graph compiler
   replaces — meaning [compile:true] runs the trie's fused closure. *)
type rig = {
  rig_driver : Driver.t;
  rig_drops : (string, int) Hashtbl.t;
}

let make_rig ~cls ~compile routes =
  let config =
    Printf.sprintf
      "feed :: Idle;\n\
       src :: Strip(0);\n\
       rt :: %s(%s);\n\
       feed -> src -> rt;\n\
       rt[0] -> c0 :: Counter; c0 -> d0 :: Discard;\n\
       rt[1] -> c1 :: Counter; c1 -> d1 :: Discard;\n"
      cls (table_spec routes)
  in
  let graph =
    match Router.parse_string config with
    | Ok g -> g
    | Error e -> Alcotest.failf "rig parse: %s" e
  in
  let drops = Hashtbl.create 8 in
  let hooks =
    {
      Hooks.null with
      Hooks.on_drop =
        (fun ~idx:_ ~cls:_ ~reason _ ->
          Hashtbl.replace drops reason
            (1 + Option.value ~default:0 (Hashtbl.find_opt drops reason)));
    }
  in
  match Driver.instantiate ~hooks ~compile graph with
  | Ok d -> { rig_driver = d; rig_drops = drops }
  | Error e -> Alcotest.failf "rig instantiate (%s): %s" cls e

let rig_element rig name =
  match Driver.element rig.rig_driver name with
  | Some e -> e
  | None -> Alcotest.failf "rig: no element %s" name

let rig_stat rig name key =
  match List.assoc_opt key (rig_element rig name)#stats with
  | Some v -> v
  | None -> Alcotest.failf "rig: %s has no stat %s" name key

(* Drive [dsts] through the rig (scalar pushes, or batches of [batch])
   and summarize: per-probe destination annotation after the lookup
   (sees every gateway rewrite), per-port totals, misses, drops. *)
let drive ?batch rig dsts =
  let src = rig_element rig "src" in
  let dst_after =
    match batch with
    | None ->
        let p = Packet.create 64 in
        Array.map
          (fun dst ->
            (Packet.anno p).Packet.dst_ip <- dst;
            src#push 0 p;
            (Packet.anno p).Packet.dst_ip)
          dsts
    | Some bn ->
        let out = Array.make (Array.length dsts) 0 in
        let i = ref 0 in
        while !i < Array.length dsts do
          let n = min bn (Array.length dsts - !i) in
          let batch = Array.init n (fun _ -> Packet.create 64) in
          Array.iteri
            (fun j p -> (Packet.anno p).Packet.dst_ip <- dsts.(!i + j))
            batch;
          let snapshot = Array.map (fun p -> p) batch in
          src#push_batch 0 batch;
          Array.iteri
            (fun j p -> out.(!i + j) <- (Packet.anno p).Packet.dst_ip)
            snapshot;
          i := !i + n
        done;
        out
  in
  ( dst_after,
    rig_stat rig "c0" "packets",
    rig_stat rig "c1" "packets",
    rig_stat rig "rt" "misses",
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) rig.rig_drops []) )

let gen_elt_route =
  (* Ports 0..3 against two connected outputs: high ports exercise the
     "route to unconnected port" drop path. *)
  QCheck.Gen.(
    let* r = gen_route in
    let* port = int_bound 3 in
    return { r with r_port = port })

let arb_elt_case =
  QCheck.make
    ~print:(fun (routes, _) -> table_spec routes)
    QCheck.Gen.(
      pair
        (list_size (int_range 1 40) gen_elt_route)
        (list_size (return 48) (int_bound 0xffff_ffff)))

let prop_element_modes_agree =
  QCheck.Test.make ~count:40
    ~name:"element: linear == trie == trie batch == compiled" arb_elt_case
    (fun (routes, rand_dsts) ->
      let dsts = Array.of_list (probes_for routes rand_dsts) in
      let reference =
        drive (make_rig ~cls:"LinearIPLookup" ~compile:false routes) dsts
      in
      List.iter
        (fun (what, result) ->
          if result <> reference then
            Alcotest.failf "%s disagrees with the linear reference" what)
        [
          ("trie", drive (make_rig ~cls:"LookupIPRoute" ~compile:false routes) dsts);
          ( "trie batch7",
            drive ~batch:7
              (make_rig ~cls:"LookupIPRoute" ~compile:false routes)
              dsts );
          ( "radix alias compiled",
            drive (make_rig ~cls:"RadixIPLookup" ~compile:true routes) dsts );
        ];
      true)

let prop_element_churn =
  (* Live adds then removes through the write handlers leave observable
     behaviour exactly where it started. *)
  QCheck.Test.make ~count:30 ~name:"element: add/remove churn restores routing"
    (QCheck.make
       QCheck.Gen.(
         triple
           (list_size (int_range 1 30) gen_elt_route)
           (list_size (int_range 1 30) gen_elt_route)
           (list_size (return 32) (int_bound 0xffff_ffff))))
    (fun (base, churn, rand_dsts) ->
      let rig = make_rig ~cls:"LookupIPRoute" ~compile:false base in
      let rt = rig_element rig "rt" in
      let dsts = Array.of_list (probes_for (base @ churn) rand_dsts) in
      let before = drive rig dsts in
      let added =
        List.filter
          (fun r -> rt#write_handler "add" (route_spec r) = Ok ())
          churn
      in
      List.iter
        (fun r ->
          let prefix =
            Printf.sprintf "%d.%d.%d.%d/%d"
              ((r.r_addr lsr 24) land 0xff)
              ((r.r_addr lsr 16) land 0xff)
              ((r.r_addr lsr 8) land 0xff)
              (r.r_addr land 0xff) r.r_len
          in
          match rt#write_handler "remove" prefix with
          | Ok () -> ()
          | Error e -> Alcotest.failf "remove %s: %s" prefix e)
        added;
      let after = drive rig dsts in
      (* Counters and drop tallies accumulate across the two passes:
         compare the per-pass deltas. *)
      let delta (d1, c0a, c1a, ma, dropsa) (_, c0b, c1b, mb, dropsb) =
        ( d1,
          c0a - c0b,
          c1a - c1b,
          ma - mb,
          List.filter
            (fun (_, v) -> v <> 0)
            (List.map
               (fun (k, v) ->
                 (k, v - Option.value ~default:0 (List.assoc_opt k dropsb)))
               dropsa) )
      in
      let b = delta before ([||], 0, 0, 0, [])
      and a = delta after before in
      let strip (d, a1, a2, a3, dr) = (Array.to_list d, a1, a2, a3, dr) in
      if strip a <> strip b then
        Alcotest.fail "element behaviour changed after add/remove churn";
      true)

let test_duplicate_prefix_first_wins () =
  List.iter
    (fun cls ->
      let routes =
        [
          { r_addr = 0x0a000000; r_len = 8; r_gw = 0; r_port = 0 };
          { r_addr = 0x0a000000; r_len = 8; r_gw = 0; r_port = 1 };
        ]
      in
      let rig = make_rig ~cls ~compile:false routes in
      let dsts = Array.make 5 0x0a123456 in
      let _, c0, c1, misses, _ = drive rig dsts in
      Alcotest.(check int) (cls ^ ": first route wins") 5 c0;
      Alcotest.(check int) (cls ^ ": later duplicate ignored") 0 c1;
      Alcotest.(check int) (cls ^ ": no misses") 0 misses;
      Alcotest.(check int) (cls ^ ": duplicate dropped from table") 1
        (rig_stat rig "rt" "routes"))
    [ "LookupIPRoute"; "LinearIPLookup" ];
  (* The live-add handler refuses duplicates the same way. *)
  let rig =
    make_rig ~cls:"LookupIPRoute" ~compile:false
      [ { r_addr = 0x0a000000; r_len = 8; r_gw = 0; r_port = 0 } ]
  in
  let rt = rig_element rig "rt" in
  Alcotest.(check bool) "live duplicate refused" true
    (Result.is_error (rt#write_handler "add" "10.0.0.0/8 1"));
  Alcotest.(check int) "table unchanged" 1 (rig_stat rig "rt" "routes")

let test_scratch_reset_on_configure () =
  (* Reconfigure between differently-sized batches: stale scratch sizing
     must not leak across the table swap (the PR's bugfix). *)
  let rig =
    make_rig ~cls:"LookupIPRoute" ~compile:false
      [ { r_addr = 0; r_len = 0; r_gw = 0; r_port = 0 } ]
  in
  let rt = rig_element rig "rt" in
  let big = Array.make 64 0x0a000001 in
  let _ = drive ~batch:64 rig big in
  (match rt#configure "0.0.0.0/0 1" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reconfigure: %s" e);
  let _, c0, c1, _, _ = drive ~batch:8 rig (Array.make 16 0x0a000001) in
  Alcotest.(check int) "pre-swap traffic on port 0" 64 c0;
  Alcotest.(check int) "post-swap traffic on port 1" 16 c1

(* --- multicore: conservation with a production-size table --- *)

let test_domains2_conservation_100k () =
  let extra =
    Array.to_list
      (Array.map Oclick_lpm.Routegen.route_to_string
         (Oclick_lpm.Routegen.generate ~seed:17 ~default_route:false
            ~n:100_000 ~nports:3 ()))
  in
  let graph =
    Oclick.Ip_router.graph
      (Oclick.Ip_router.config ~extra_routes:extra
         (Oclick.Ip_router.standard_interfaces 2))
  in
  let platform = { Platform.p0 with Platform.p_nports = 2 } in
  let flows =
    [
      { Testbed.fl_src = 0; Testbed.fl_dst = 1 };
      { Testbed.fl_src = 1; Testbed.fl_dst = 0 };
    ]
  in
  match
    Testbed.run ~duration_ms:15 ~warmup_ms:5 ~domains:2 ~platform ~flows
      ~graph ~input_pps:100_000 ()
  with
  | Error e -> Alcotest.failf "domains=2 with 100k routes: %s" e
  | Ok r ->
      (* Ok certifies packet conservation; check the table is the size we
         loaded and visible through the result. *)
      Alcotest.(check bool) "forwarding" true (r.Testbed.r_forwarded_pps > 0.);
      let rt_stats =
        match r.Testbed.r_route_tables with
        | [ (_, stats) ] -> stats
        | l -> Alcotest.failf "expected one route table, got %d" (List.length l)
      in
      Alcotest.(check bool) "big table loaded" true
        (List.assoc "routes" rt_stats >= 100_000);
      Alcotest.(check bool) "trie bytes visible" true
        (List.assoc "trie_bytes" rt_stats > 1 lsl 26)

let qt = QCheck_alcotest.to_alcotest

let library_tests =
  [
    Alcotest.test_case "empty table" `Quick test_empty;
    Alcotest.test_case "basic longest-prefix" `Quick test_basic_lpm;
    Alcotest.test_case "touch bounds (DIR-24-8)" `Quick test_touch_bounds;
    Alcotest.test_case "duplicate add refused" `Quick test_duplicate_add;
    Alcotest.test_case "remove restores covering" `Quick test_remove_restores;
    Alcotest.test_case "routegen deterministic" `Quick test_routegen_deterministic;
    Alcotest.test_case "routegen table == reference" `Quick test_routegen_trie_agrees;
    qt prop_trie_equals_reference;
    qt prop_batch_equals_scalar;
    qt prop_churn;
  ]

let element_tests =
  [
    Alcotest.test_case "duplicate prefix: first declared wins" `Quick
      test_duplicate_prefix_first_wins;
    Alcotest.test_case "scratch reset on reconfigure" `Quick
      test_scratch_reset_on_configure;
    qt prop_element_modes_agree;
    qt prop_element_churn;
  ]

let testbed_tests =
  [
    Alcotest.test_case "domains=2 conservation, 100k routes" `Slow
      test_domains2_conservation_100k;
  ]

let () =
  Alcotest.run "lpm"
    [
      ("library", library_tests);
      ("element", element_tests);
      ("testbed", testbed_tests);
    ]
