(** The interface between device elements and (simulated) network hardware.

    [PollDevice] and [ToDevice] elements look their device up by name at
    initialization. The pure runtime provides the in-memory {!queue_device};
    the hardware testbed provides Tulip NIC models with DMA rings and a
    PCI bus. *)

class type t = object
  method device_name : string

  method rx : unit -> Oclick_packet.Packet.t option
  (** The CPU takes the next received packet from the RX DMA ring,
      refilling the ring's descriptor. [None] when the ring is empty. *)

  method rx_batch : Oclick_packet.Packet.t array -> int
  (** Batched receive, mirroring Click's polling batch: fill the array
      from the front with up to [Array.length dst] frames in one call
      and return how many — amortizing per-frame ring bookkeeping. *)

  method tx : Oclick_packet.Packet.t -> bool
  (** Enqueue a packet on the TX DMA ring; [false] if the ring is full. *)

  method tx_ready : bool
  (** Whether the TX ring can accept another packet. *)

  method tx_space : int
  (** How many more packets the TX ring can accept right now — lets a
      batched [ToDevice] pull exactly what it can transmit. *)
end

(** A device backed by two in-memory queues, for tests and examples:
    {!queue_device.inject} feeds the RX side, {!queue_device.collect}
    drains what the router transmitted. *)
class queue_device :
  string
  -> ?tx_capacity:int
  -> unit
  -> object
       inherit t
       method inject : Oclick_packet.Packet.t -> unit
       method collect : Oclick_packet.Packet.t option

       method collect_into : Oclick_packet.Packet.t array -> int
       (** Batched {!collect}: fill the array from the front with up to
           [Array.length dst] transmitted frames, return how many —
           no option box per drained packet. *)

       method tx_count : int
     end
