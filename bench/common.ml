(* Shared setup for the benchmark harness: reference configurations,
   optimization variants, MR context, and table formatting. *)

module Router = Oclick_graph.Router
module Platform = Oclick_hw.Platform
module Testbed = Oclick_hw.Testbed
module Ethaddr = Oclick_packet.Ethaddr

let () = Oclick_elements.register_all ()

let base_graph n =
  Oclick.Ip_router.graph
    (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces n))

let simple_graph n =
  let pairs =
    if n >= 4 then List.init (n / 2) (fun i ->
        (Printf.sprintf "eth%d" i, Printf.sprintf "eth%d" (i + (n / 2))))
    else [ ("eth0", "eth1"); ("eth1", "eth0") ]
  in
  Oclick.Ip_router.graph (Oclick.Ip_router.simple_config pairs)

(* The MR context: the attached hosts described as Click configurations,
   and the point-to-point links, for click-combine (§7.2). *)
let mr_context n =
  let interfaces = Oclick.Ip_router.standard_interfaces n in
  let hosts =
    List.mapi
      (fun i (itf : Oclick.Ip_router.interface) ->
        let eth =
          Ethaddr.of_string_exn (Printf.sprintf "00:00:c0:bb:%02x:02" i)
        in
        ( Printf.sprintf "host%d" i,
          Oclick.Ip_router.graph
            (Oclick.Ip_router.host_config ~ip:(itf.if_net + 2) ~eth) ))
      interfaces
  in
  let links =
    List.concat
      (List.mapi
         (fun i (itf : Oclick.Ip_router.interface) ->
           let h = Printf.sprintf "host%d" i in
           [
             {
               Oclick_optim.Combine.lk_from_router = "router";
               lk_from_device = itf.if_device;
               lk_to_router = h;
               lk_to_device = "eth0";
             };
             {
               Oclick_optim.Combine.lk_from_router = h;
               lk_from_device = "eth0";
               lk_to_router = "router";
               lk_to_device = itf.if_device;
             };
           ])
         interfaces)
  in
  (hosts, links)

let variant_graph ?(n = 8) variant =
  let hosts, links = mr_context n in
  Oclick.Pipeline.optimize ~hosts ~links variant (base_graph n)

let run_testbed ?duration_ms ?warmup_ms ~platform ~graph input_pps =
  match
    Testbed.run ?duration_ms ?warmup_ms ~platform ~graph ~input_pps ()
  with
  | Ok r -> r
  | Error e -> failwith ("testbed: " ^ e)

let mlffr ~platform graph =
  match Testbed.mlffr ~platform ~graph () with
  | Ok v -> v
  | Error e -> failwith ("mlffr: " ^ e)

(* --- harness modes ----------------------------------------------------- *)

(* Set by main.ml from the command line. [smoke] caps the packet budget so
   the whole section finishes in well under a second (the @bench-smoke
   alias); [json] mirrors each supporting section's results into
   BENCH_<section>.json next to the terminal table. *)
let smoke = ref false
let json = ref false

type json_value =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_bool of bool
  | J_list of json_value list
  | J_obj of (string * json_value) list

let rec json_to_buf buf ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | J_int i -> Buffer.add_string buf (string_of_int i)
  | J_float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | J_bool b -> Buffer.add_string buf (string_of_bool b)
  | J_string s ->
      Buffer.add_char buf '"';
      String.iter
        (function
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | J_list [] -> Buffer.add_string buf "[]"
  | J_list items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          json_to_buf buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | J_obj [] -> Buffer.add_string buf "{}"
  | J_obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          json_to_buf buf ~indent:(indent + 2) (J_string k);
          Buffer.add_string buf ": ";
          json_to_buf buf ~indent:(indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

(* Write BENCH_<section>.json in the current directory when --json is on. *)
let write_json ~section v =
  if !json then begin
    let file = Printf.sprintf "BENCH_%s.json" section in
    let buf = Buffer.create 1024 in
    json_to_buf buf ~indent:0 v;
    Buffer.add_char buf '\n';
    let oc = open_out file in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote %s\n" file
  end

(* --- timing windows ---------------------------------------------------- *)

type windows = {
  w_reps : int;
  w_forwarded : int;  (** packets forwarded in the best window *)
  w_seconds : float;  (** wall-clock duration of the best window *)
  w_pps : float;  (** forwarded/seconds of the best window *)
  w_total_forwarded : int;  (** summed over every window *)
}

(* Best-of-[reps] wall-clock measurement: [window ()] runs one full
   repetition of the workload and returns the packets it forwarded; the
   repetition with the best per-packet time is reported. Wall-clock
   ratios on shared machines are noisy, and the best window is the one
   least disturbed by the scheduler — the quantity every
   variant-vs-variant comparison in this harness needs. *)
let best_of_windows ~reps window =
  let reps = max 1 reps in
  let total = ref 0 in
  let best = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let fwd = window () in
    let dt = Unix.gettimeofday () -. t0 in
    total := !total + fwd;
    let pps = if dt > 0.0 then float_of_int fwd /. dt else 0.0 in
    match !best with
    | Some (_, _, p) when p >= pps -> ()
    | _ -> best := Some (fwd, dt, pps)
  done;
  let fwd, dt, pps = Option.get !best in
  {
    w_reps = reps;
    w_forwarded = fwd;
    w_seconds = dt;
    w_pps = pps;
    w_total_forwarded = !total;
  }

(* --- output helpers --------------------------------------------------- *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n--- %s ---\n" title

let row fmt = Printf.printf fmt
let kpps v = v /. 1000.0
