test/test_integration.ml: Alcotest List Oclick Oclick_elements Oclick_graph Oclick_optim Oclick_packet Oclick_runtime Printf
