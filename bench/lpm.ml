(* Production-scale route lookup: the DIR-24-8 trie behind LookupIPRoute
   against the paper-era linear scan (LinearIPLookup), at table sizes the
   paper never had to face.

   Part one is an element-level lookup microbench: for each table size, a
   one-element rig (the route element with every output into a Discard)
   is driven with the same deterministic probe stream through all four
   datapath shapes — linear scan, trie scalar push, trie push_batch, and
   the trie's compiled (fused-closure) decision path. All four pay the
   same per-packet harness cost, so the ratios isolate the lookup
   structure. A differential pass (same probes through the linear and
   trie fused closures, comparing output port and gateway-rewritten
   destination) guards the numbers.

   Part two is the end-to-end check: the Fig. 8 two-interface router
   forwarding a UDP flow, with the routing table inflated by
   Routegen-generated DFZ-shaped ballast. DIR-24-8 lookups are
   table-size-independent, so forwarding pps should not care. *)

module Driver = Oclick_runtime.Driver
module E = Oclick_runtime.Element
module Netdevice = Oclick_runtime.Netdevice
module Router = Oclick_graph.Router
module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ethaddr = Oclick_packet.Ethaddr
module Ipaddr = Oclick_packet.Ipaddr
module Routegen = Oclick_lpm.Routegen

let nports = 8
let batch_size = 256

(* --- part one: the lookup rig --- *)

let lookup_rig cls routes =
  let buf = Buffer.create (64 + (Array.length routes * 24)) in
  Buffer.add_string buf ("rt :: " ^ cls ^ "(");
  Array.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Routegen.route_to_string r))
    routes;
  Buffer.add_string buf ");\nIdle -> rt;\n";
  for i = 0 to nports - 1 do
    Buffer.add_string buf (Printf.sprintf "rt[%d] -> Discard;\n" i)
  done;
  let graph =
    match Router.parse_string (Buffer.contents buf) with
    | Ok g -> g
    | Error e -> failwith ("lpm bench: parse: " ^ e)
  in
  match Driver.instantiate graph with
  | Ok d -> (
      match Driver.element d "rt" with
      | Some e -> e
      | None -> failwith "lpm bench: no rt element")
  | Error e -> failwith ("lpm bench: instantiate: " ^ e)

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let scalar_rate e probes reps =
  let p = Packet.create 64 in
  let n = Array.length probes in
  let dt =
    time (fun () ->
        for _ = 1 to reps do
          for i = 0 to n - 1 do
            (Packet.anno p).Packet.dst_ip <- probes.(i);
            e#push 0 p
          done
        done)
  in
  (reps * n, dt)

let batch_rate e probes reps =
  let batch = Array.init batch_size (fun _ -> Packet.create 64) in
  let n = Array.length probes in
  let chunks = n / batch_size in
  let dt =
    time (fun () ->
        for _ = 1 to reps do
          for c = 0 to chunks - 1 do
            for j = 0 to batch_size - 1 do
              (Packet.anno batch.(j)).Packet.dst_ip
              <- probes.((c * batch_size) + j)
            done;
            e#push_batch 0 batch
          done
        done)
  in
  (reps * chunks * batch_size, dt)

let fused e =
  match e#fuse { E.fc_out = (fun _ _ -> ()); E.fc_lean_work = true } with
  | Some f -> f
  | None -> failwith "lpm bench: element did not fuse"

let compiled_rate e probes reps =
  let f = fused e in
  let p = Packet.create 64 in
  let n = Array.length probes in
  let dt =
    time (fun () ->
        for _ = 1 to reps do
          for i = 0 to n - 1 do
            (Packet.anno p).Packet.dst_ip <- probes.(i);
            f p
          done
        done)
  in
  (reps * n, dt)

(* Same probes through both backends' fused closures, comparing output
   port and (gateway-rewritten) destination annotation. *)
let differential linear_e trie_e probes =
  let port = ref (-1) in
  let ctx = { E.fc_out = (fun o _ -> port := o); E.fc_lean_work = true } in
  let f_lin =
    match linear_e#fuse ctx with Some f -> f | None -> failwith "no fuse"
  and f_trie =
    match trie_e#fuse ctx with Some f -> f | None -> failwith "no fuse"
  in
  let p = Packet.create 64 in
  Array.for_all
    (fun dst ->
      (Packet.anno p).Packet.dst_ip <- dst;
      port := -1;
      f_lin p;
      let lin_port = !port and lin_dst = (Packet.anno p).Packet.dst_ip in
      (Packet.anno p).Packet.dst_ip <- dst;
      port := -1;
      f_trie p;
      !port = lin_port && (Packet.anno p).Packet.dst_ip = lin_dst)
    probes

let variant_json name extra (lookups, dt) =
  let mlps = float_of_int lookups /. dt /. 1e6 in
  ( mlps,
    Common.J_obj
      (( [
           ("name", Common.J_string name);
           ("lookups", Common.J_int lookups);
           ("seconds", Common.J_float dt);
           ("mlookups_per_s", Common.J_float mlps);
         ]
       @ extra )) )

let bench_size size =
  let routes = Routegen.generate ~seed:(42 + size) ~n:size ~nports () in
  let n_probes = if !Common.smoke then 8_192 else 262_144 in
  let probes = Routegen.probe_dsts ~seed:7 ~routes ~n:n_probes () in
  (* The linear scan is O(table size) per lookup: cap its probe count so
     big tables stay measurable, keeping a multiple of the batch size. *)
  let n_linear =
    min n_probes
      (max batch_size (256 * 1024 * 1024 / size / batch_size * batch_size))
  in
  let linear_probes = Array.sub probes 0 n_linear in
  let reps = if !Common.smoke then 1 else 4 in
  let linear_e = lookup_rig "LinearIPLookup" routes in
  let trie_e = lookup_rig "LookupIPRoute" routes in
  let diff_ok = differential linear_e trie_e linear_probes in
  let lin_mlps, lin_j =
    variant_json "linear" [] (scalar_rate linear_e linear_probes 1)
  in
  let trie_mlps, trie_j =
    variant_json "trie_scalar" [] (scalar_rate trie_e probes reps)
  in
  let _, trie_b_j =
    variant_json "trie_batch"
      [ ("batch", Common.J_int batch_size) ]
      (batch_rate trie_e probes reps)
  in
  let _, trie_c_j =
    variant_json "trie_compiled" [] (compiled_rate trie_e probes reps)
  in
  let speedup = trie_mlps /. lin_mlps in
  let stat k = List.assoc k trie_e#stats in
  Printf.printf "%9d %12.2f %12.2f %12.2f %12.2f %9.1fx %6s %11d %8d\n" size
    lin_mlps trie_mlps
    (match trie_b_j with
    | Common.J_obj kvs -> (
        match List.assoc "mlookups_per_s" kvs with
        | Common.J_float f -> f
        | _ -> 0.)
    | _ -> 0.)
    (match trie_c_j with
    | Common.J_obj kvs -> (
        match List.assoc "mlookups_per_s" kvs with
        | Common.J_float f -> f
        | _ -> 0.)
    | _ -> 0.)
    speedup
    (if diff_ok then "ok" else "FAIL")
    (stat "trie_bytes") (stat "leaf_blocks");
  Common.J_obj
    [
      ("routes", Common.J_int size);
      ("trie_bytes", Common.J_int (stat "trie_bytes"));
      ("leaf_blocks", Common.J_int (stat "leaf_blocks"));
      ("differential_ok", Common.J_bool diff_ok);
      ("speedup_trie_vs_linear", Common.J_float speedup);
      ("variants", Common.J_list [ lin_j; trie_j; trie_b_j; trie_c_j ]);
    ]

(* --- part two: end-to-end Fig. 8 with table ballast --- *)

let n_ifaces = 2
let burst = 256

let e2e_rig ~extra_routes =
  let extra =
    Array.to_list
      (Array.map Routegen.route_to_string
         (Routegen.generate ~seed:99 ~default_route:false ~n:extra_routes
            ~nports:(n_ifaces + 1) ()))
  in
  let graph =
    Oclick.Ip_router.graph
      (Oclick.Ip_router.config ~extra_routes:extra
         (Oclick.Ip_router.standard_interfaces n_ifaces))
  in
  let devs =
    Array.init n_ifaces (fun i ->
        new Netdevice.queue_device (Printf.sprintf "eth%d" i) ())
  in
  let devices = Array.to_list (Array.map (fun d -> (d :> Netdevice.t)) devs) in
  match Driver.instantiate ~devices ~batch:32 graph with
  | Ok d -> (d, devs)
  | Error e -> failwith ("lpm bench: e2e instantiate: " ^ e)

let template =
  Headers.Build.udp
    ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
    ~dst_eth:(Ethaddr.of_string_exn "00:00:c0:00:00:01")
    ~src_ip:(Ipaddr.of_octets 10 0 0 2)
    ~dst_ip:(Ipaddr.of_octets 10 0 1 2)
    ~ttl:64 ()

let answer_arp (dev : Netdevice.queue_device) host_eth =
  match dev#collect with
  | Some q when Headers.Ether.ethertype q = 0x806 ->
      dev#inject
        (Headers.Build.arp_reply ~src_eth:host_eth
           ~src_ip:(Headers.Arp.target_ip ~off:14 q)
           ~dst_eth:(Headers.Arp.sender_eth ~off:14 q)
           ~dst_ip:(Headers.Arp.sender_ip ~off:14 q))
  | Some _ -> failwith "lpm bench: expected an ARP query"
  | None -> failwith "lpm bench: no ARP query emitted"

let prime driver (devs : Netdevice.queue_device array) =
  devs.(0)#inject (Packet.clone template);
  ignore (Driver.run_until_idle driver);
  answer_arp devs.(1) (Ethaddr.of_string_exn "00:00:c0:bb:01:02");
  ignore (Driver.run_until_idle driver);
  let rec drain n =
    match devs.(1)#collect with Some _ -> drain (n + 1) | None -> n
  in
  if drain 0 < 1 then failwith "lpm bench: priming forward failed"

let run_burst driver (devs : Netdevice.queue_device array) =
  let len = Packet.length template in
  for _ = 1 to burst do
    let p = Packet.create len in
    Packet.blit ~src:template ~src_pos:0 ~dst:p ~dst_pos:0 ~len;
    devs.(0)#inject p
  done;
  ignore (Driver.run_until_idle driver);
  let rec drain n =
    match devs.(1)#collect with Some _ -> drain (n + 1) | None -> n
  in
  drain 0

let e2e_pps ~extra_routes ~packets =
  let driver, devs = e2e_rig ~extra_routes in
  prime driver devs;
  let bursts = max 1 (packets / burst) in
  for _ = 1 to max 1 (bursts / 10) do
    ignore (run_burst driver devs)
  done;
  let forwarded = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to bursts do
    forwarded := !forwarded + run_burst driver devs
  done;
  let dt = Unix.gettimeofday () -. t0 in
  (!forwarded, bursts * burst, float_of_int !forwarded /. dt)

let run () =
  Common.section "lpm: DIR-24-8 trie vs linear route lookup (wall clock)";
  let sizes =
    if !Common.smoke then [ 1_000; 10_000 ]
    else [ 1_000; 100_000; 1_000_000 ]
  in
  Printf.printf
    "route element rig, %d output ports, Mlookups/s (element push incl. \
     packet handling)\n\n"
    nports;
  Printf.printf "%9s %12s %12s %12s %12s %10s %6s %11s %8s\n" "routes"
    "linear" "trie" "trie+batch" "compiled" "speedup" "diff" "trie_bytes"
    "blocks";
  let size_rows = List.map bench_size sizes in
  let extra = if !Common.smoke then 512 else 100_000 in
  let packets = if !Common.smoke then 2_048 else 65_536 in
  let base_fwd, base_off, base_pps = e2e_pps ~extra_routes:0 ~packets in
  let big_fwd, big_off, big_pps = e2e_pps ~extra_routes:extra ~packets in
  Printf.printf
    "\nend-to-end fig8 (2 interfaces, batch 32): %.1f kpps baseline (%d/%d), \
     %.1f kpps with %d ballast routes (%d/%d)\n"
    (Common.kpps base_pps) base_fwd base_off (Common.kpps big_pps) extra
    big_fwd big_off;
  Common.write_json ~section:"lpm"
    (Common.J_obj
       [
         ("section", Common.J_string "lpm");
         ("smoke", Common.J_bool !Common.smoke);
         ("nports", Common.J_int nports);
         ("batch", Common.J_int batch_size);
         ("sizes", Common.J_list size_rows);
         ( "e2e",
           Common.J_obj
             [
               ("graph", Common.J_string "ip-router");
               ("interfaces", Common.J_int n_ifaces);
               ("extra_routes", Common.J_int extra);
               ("offered", Common.J_int big_off);
               ("forwarded", Common.J_int big_fwd);
               ("baseline_pps", Common.J_float base_pps);
               ("bigtable_pps", Common.J_float big_pps);
             ] );
       ])
