(** Cross-element match-action fusion over forwarding decision diagrams.

    The per-element compiler ({!Oclick_compile}) specializes each
    element's push body in isolation; a packet crossing a cascade of
    classifiers still pays one tree walk, one transfer, and one
    indirect call per hop. This pass collapses a whole push region into
    a single decision diagram, in the spirit of the NetKAT compiler's
    FDDs: every classifier tree met along the region is grafted into
    one hash-consed node set (offsets translated past Strips), paint
    writes and switches are constant-folded, and a terminal route
    lookup becomes a leaf action. The result is one compiled closure
    per region — one dispatch for the entire cascade.

    Exact replay is a hard requirement, not best effort: the fused
    closure reproduces the interpreted run's per-hop transfer reports,
    work charges (with the per-path visited counts the interpreted
    walks would have counted), drop reasons, quarantine checks, and
    fault containment, so observation ledgers are byte-identical
    between interpreted, compiled, and fused runs. *)

module Packet = Oclick_packet.Packet
module Element = Oclick_runtime.Element
module Hooks = Oclick_runtime.Hooks

type ctx = {
  fd_elements : Element.t array;  (** the instantiated graph, by index *)
  fd_out : (int * int) option array array;
      (** wiring: [fd_out.(i).(port)] is the downstream (element, port) *)
  fd_conn : int -> int -> Packet.t -> unit;
      (** the per-element compiler's connection closure for leaving the
          region through element [i]'s output [port]; handles transfer
          reporting, quarantine, containment, and unconnected drops *)
  fd_lean_transfer : bool;  (** transfer hook is the no-op default *)
  fd_lean_work : bool;  (** work hook is the no-op default *)
  fd_on_transfer : Hooks.transfer -> Packet.t -> unit;
}

type region = {
  rg_entry : string;  (** name of the element whose push the body replaces *)
  rg_members : string list;  (** absorbed downstream elements, by name *)
  rg_nodes : int;  (** decision nodes after hash-consing *)
  rg_actions : int;  (** distinct fused leaf actions *)
}

val build : ctx -> int -> ((Packet.t -> unit) * region) option
(** [build ctx entry] attempts to fuse the push region rooted at element
    [entry]. Returns the fused push body and a region summary, or [None]
    when fusion is not worthwhile or not sound here: the entry exposes
    no usable {!Oclick_runtime.Region.sem}, the region never absorbs a
    second element (the element's own [fuse] body is already the best
    form), a wire mangler is installed on a source inside the region
    (fault injection rewrites bytes mid-cascade, invalidating hoisted
    tests), or the diagram outgrew the node/action budgets. Callers
    fall back to per-element fusion; [None] never loses correctness,
    only the cross-element optimization. *)
