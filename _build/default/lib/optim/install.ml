module Router = Oclick_graph.Router
module Registry = Oclick_runtime.Registry
module Archive = Oclick_lang.Archive
module Spec = Oclick_graph.Spec

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let original_of_devirtualized cls =
  (* Devirtualize@@ORIG@@N, where ORIG may itself contain "@@"
     (e.g. a generated FastClassifier class): strip the prefix and the
     final "@@N". *)
  let prefix = "Devirtualize@@" in
  if not (starts_with prefix cls) then None
  else begin
    let body = String.sub cls (String.length prefix)
        (String.length cls - String.length prefix)
    in
    let rec last_sep i best =
      if i + 2 > String.length body then best
      else if String.sub body i 2 = "@@" then last_sep (i + 1) (Some i)
      else last_sep (i + 1) best
    in
    match last_sep 0 None with
    | Some i when i > 0 -> Some (String.sub body 0 i)
    | _ -> None
  end

let rec install_one router cls =
  if Registry.find cls <> None then Ok ()
  else if starts_with "FastClassifier@@" cls then begin
    match Archive.find (Router.archive router) (cls ^ ".tree") with
    | None ->
        Error
          (Printf.sprintf
             "class %s: no %s.tree archive member to install from" cls cls)
    | Some dump -> (
        match Oclick_classifier.Tree.of_string dump with
        | Error e -> Error (Printf.sprintf "class %s: bad tree dump: %s" cls e)
        | Ok tree ->
            Oclick_elements.register_fast_classifier ~class_name:cls tree;
            Ok ())
  end
  else if starts_with "Devirtualize@@" cls then begin
    match original_of_devirtualized cls with
    | None -> Error (Printf.sprintf "malformed generated class name %S" cls)
    | Some orig -> (
        (* the original may itself be a generated class *)
        match install_one router orig with
        | Error _ as e -> e
        | Ok () ->
        match (Registry.find orig, Registry.spec orig) with
        | Some ctor, Some spec ->
            Registry.register ~replace:true
              ~spec:{ spec with Spec.s_class = cls } cls
              (fun name ->
                let e = ctor name in
                e#set_code_class cls;
                e#set_direct_dispatch true;
                e);
            Ok ()
        | _ ->
            Error
              (Printf.sprintf "class %s: original class %S is not registered"
                 cls orig))
  end
  else Ok () (* not a generated class; the checker reports unknowns *)

let install router =
  let rec go = function
    | [] -> Ok ()
    | i :: rest -> (
        match install_one router (Router.class_of router i) with
        | Ok () -> go rest
        | Error _ as e -> e)
  in
  go (Router.indices router)
