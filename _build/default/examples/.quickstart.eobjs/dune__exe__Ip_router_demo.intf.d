examples/ip_router_demo.mli:
