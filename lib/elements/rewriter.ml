(* IPRewriter: flow-based address/port rewriting (NAT). A packet on input
   0 (the "forward" direction) is matched against the flow table; a new
   flow gets a mapping from the configured pattern, possibly allocating a
   source port from a range. Packets on input 1 (replies) are rewritten
   back through the reverse mapping. IP and transport checksums are kept
   correct.

   Configuration: "SADDR SPORT DADDR DPORT", each field an address /
   port / port range ("1024-65535") / "-" to leave the field alone, e.g.

     IPRewriter(18.26.4.24 1024-65535 - -)      // classic NAPT

   The flow table is bounded and age-evicted (comma keywords CAPACITY
   and TIMEOUT, in entries and milliseconds), so adversarial flow churn
   cannot grow it without bound:

     IPRewriter(18.26.4.24 1024-65535 - -, CAPACITY 4096, TIMEOUT 300000)

   Evicting a mapping removes both directions; replies to an evicted
   flow fall into the existing "no reverse mapping" drop. *)

open Prelude
module Ip = Headers.Ip
module Udp = Headers.Udp
module Tcp = Headers.Tcp

type field = Keep | Set of int | Port_range of int * int

type flow = {
  f_saddr : Ipaddr.t;
  f_sport : int;
  f_daddr : Ipaddr.t;
  f_dport : int;
  f_proto : int;
}

let parse_field ~is_port s =
  let s = String.trim s in
  if String.equal s "-" then Some Keep
  else if is_port then begin
    match String.index_opt s '-' with
    | Some i -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          )
        with
        | Some lo, Some hi when 0 < lo && lo <= hi && hi < 65536 ->
            Some (Port_range (lo, hi))
        | _ -> None)
    | None -> (
        match int_of_string_opt s with
        | Some p when p >= 0 && p < 65536 -> Some (Set p)
        | _ -> None)
  end
  else Option.map (fun a -> Set a) (Ipaddr.of_string s)

let default_flow_capacity = 4096
let default_flow_timeout_ms = 300_000

class ip_rewriter name =
  object (self)
    inherit E.base name
    val mutable pat_saddr = Keep
    val mutable pat_sport = Keep
    val mutable pat_daddr = Keep
    val mutable pat_dport = Keep
    val mutable next_port = 0

    (* forward: original flow -> (mapped flow, reverse key); reverse is
       a plain mirror maintained by the forward table's eviction hook,
       so both directions die together and the pair count stays bounded
       by CAPACITY. *)
    val forward : (flow, flow * flow) Aged_table.t =
      Aged_table.create ~capacity:default_flow_capacity
        ~max_age_ns:(default_flow_timeout_ms * 1_000_000)
        ()

    val reverse : (flow, flow * flow) Hashtbl.t = Hashtbl.create 64
    val mutable drops = 0
    method class_name = "IPRewriter"
    method! port_count = "2/1-2"
    method! processing = "h/h"
    method! flow_code = "xy/xy"

    method! set_clock f =
      clock <- f;
      Aged_table.set_clock forward f

    method! configure config =
      let positional, keywords = parse_positional_and_keywords config in
      let bad = ref None in
      let int_kw key default =
        match List.assoc_opt key keywords with
        | None -> default
        | Some v -> (
            match Args.parse_int v with
            | Some n when n >= 0 -> n
            | _ ->
                if !bad = None then
                  bad :=
                    Some
                      (Printf.sprintf "IPRewriter: bad %s %S (integer >= 0)"
                         key v);
                default)
      in
      Aged_table.set_capacity forward (int_kw "CAPACITY" default_flow_capacity);
      Aged_table.set_max_age_ns forward
        (int_kw "TIMEOUT" default_flow_timeout_ms * 1_000_000);
      List.iter
        (fun (k, _) ->
          if (not (List.mem k [ "CAPACITY"; "TIMEOUT" ])) && !bad = None then
            bad := Some (Printf.sprintf "IPRewriter: unknown keyword %s" k))
        keywords;
      Aged_table.set_on_evict forward (fun _ (_, rkey) _why ->
          Hashtbl.remove reverse rkey);
      match !bad with
      | Some msg -> Error msg
      | None -> (
          let parts =
            match positional with
            | [ pattern ] ->
                List.filter (( <> ) "")
                  (String.split_on_char ' ' (String.trim pattern))
            | _ -> []
          in
          match parts with
          | [ sa; sp; da; dp ] -> (
              match
                ( parse_field ~is_port:false sa,
                  parse_field ~is_port:true sp,
                  parse_field ~is_port:false da,
                  parse_field ~is_port:true dp )
              with
              | Some a, Some b, Some c, Some d ->
                  pat_saddr <- a;
                  pat_sport <- b;
                  pat_daddr <- c;
                  pat_dport <- d;
                  (match b with Port_range (lo, _) -> next_port <- lo | _ -> ());
                  Ok ()
              | _ -> Error "IPRewriter: bad pattern field")
          | _ -> Error "IPRewriter expects \"SADDR SPORT DADDR DPORT\"")

    method private flow_of p =
      if
        Packet.length p >= Ip.min_header_length + 4
        && Ip.fragment_offset p = 0
        && (Ip.protocol p = Ip.proto_tcp || Ip.protocol p = Ip.proto_udp)
      then begin
        let l4 = Ip.header_length p in
        Some
          {
            f_saddr = Ip.src p;
            f_sport = Packet.get_u16 p l4;
            f_daddr = Ip.dst p;
            f_dport = Packet.get_u16 p (l4 + 2);
            f_proto = Ip.protocol p;
          }
      end
      else None

    method private apply_field field current ~alloc =
      match field with
      | Keep -> current
      | Set v -> v
      | Port_range (lo, hi) ->
          if alloc then begin
            let p = next_port in
            next_port <- (if next_port >= hi then lo else next_port + 1);
            p
          end
          else current

    method private fresh_mapping flow =
      let mapped =
        {
          flow with
          f_saddr = self#apply_field pat_saddr flow.f_saddr ~alloc:false;
          f_sport = self#apply_field pat_sport flow.f_sport ~alloc:true;
          f_daddr = self#apply_field pat_daddr flow.f_daddr ~alloc:false;
          f_dport = self#apply_field pat_dport flow.f_dport ~alloc:false;
        }
      in
      (* the reply direction arrives with src/dst of the mapped flow
         swapped, and must be rewritten to the original, swapped *)
      let swap f =
        {
          f with
          f_saddr = f.f_daddr;
          f_sport = f.f_dport;
          f_daddr = f.f_saddr;
          f_dport = f.f_sport;
        }
      in
      let rkey = swap mapped in
      Aged_table.put forward flow (mapped, rkey);
      Hashtbl.replace reverse rkey (swap flow, flow);
      mapped

    method private rewrite p (target : flow) =
      let l4 = Ip.header_length p in
      Ip.set_src p target.f_saddr;
      Ip.set_dst p target.f_daddr;
      Packet.set_u16 p l4 target.f_sport;
      Packet.set_u16 p (l4 + 2) target.f_dport;
      Ip.update_checksum p;
      self#charge (Hooks.W_checksum (Packet.length p));
      if Ip.protocol p = Ip.proto_udp then Headers.L4.update_udp p ~ip_off:0
      else Headers.L4.update_tcp p ~ip_off:0;
      (Packet.anno p).Packet.dst_ip <- target.f_daddr

    method! push port p =
      match self#flow_of p with
      | None ->
          drops <- drops + 1;
          self#drop ~reason:"not a rewritable packet" p
      | Some flow ->
          if port = 0 then begin
            let mapped =
              match Aged_table.find forward flow with
              | Some (m, _) -> m
              | None -> self#fresh_mapping flow
            in
            self#rewrite p mapped;
            self#output 0 p
          end
          else begin
            (* Touch the forward entry so an active reply direction
               keeps the mapping alive; a just-aged-out mapping is gone
               in both directions. *)
            match Hashtbl.find_opt reverse flow with
            | Some (original, fkey) when Aged_table.find forward fkey <> None
              ->
                self#rewrite p original;
                self#output (min 1 (self#noutputs - 1)) p
            | Some _ | None ->
                drops <- drops + 1;
                self#drop ~reason:"no reverse mapping" p
          end

    method! write_handler handler value =
      match handler with
      | "capacity" -> (
          match Args.parse_int value with
          | Some n when n >= 0 ->
              Aged_table.set_capacity forward n;
              Ok ()
          | _ -> Error (name ^ ": capacity must be an integer >= 0"))
      | "timeout_ms" -> (
          match Args.parse_int value with
          | Some n when n >= 0 ->
              Aged_table.set_max_age_ns forward (n * 1_000_000);
              Ok ()
          | _ -> Error (name ^ ": timeout_ms must be an integer >= 0"))
      | h -> Error (Printf.sprintf "%s: no write handler %S" name h)

    method! stats =
      [
        ("flows", Aged_table.length forward);
        ("evictions", Aged_table.evicted forward);
        ("drops", drops);
      ]
  end

let register () =
  def "IPRewriter" ~ports:"2/1-2" ~processing:"h/h" ~flow:"xy/xy" (fun n ->
      (new ip_rewriter n :> E.t))
