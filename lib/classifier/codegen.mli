(** Source-code generation for [click-fastclassifier].

    Click's tool writes C++ element classes into the configuration archive
    and lets the router compile and dynamically link them (paper §4). This
    module plays the same role, emitting OCaml element-class source that
    mirrors Fig. 3b; the in-process registry hook installs the equivalent
    {!Compile}d implementation, standing in for Click's dynamic linker
    (see DESIGN.md §5). *)

val ocaml_source : class_name:string -> original_config:string -> Tree.t -> string
(** A complete, human-readable OCaml module implementing the specialized
    classifier: one [step_N] function per decision-tree node, constants
    inlined. *)

val closures :
  Tree.t ->
  leaf:(int -> Oclick_packet.Packet.t -> int -> unit) ->
  Oclick_packet.Packet.t ->
  unit
(** Closure backend for the whole-graph datapath compiler
    ({!Oclick_compile}): the decision tree as nested closures with
    shared-subtree dedup (§4.1's dominator sharing — DAG-shared nodes
    compile once). [leaf k], called once per distinct leaf target
    (including {!Tree.drop}), supplies the continuation; at run time it
    receives the packet and the number of nodes visited, exactly the
    count {!Tree.classify_count} reports, so work charges match the
    interpreted walk bit for bit. *)
