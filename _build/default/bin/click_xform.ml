(* click-xform: pattern-replacement optimization. Patterns come from a
   file (-p) or from the built-in combination-element set. *)

open Cmdliner

let run pattern_file use_combos input =
  let source = Tool_common.read_input input in
  let router = Tool_common.parse_router source in
  let patterns =
    match (pattern_file, use_combos) with
    | Some path, _ -> (
        match Oclick_optim.Xform.parse_patterns (Tool_common.read_input (Some path)) with
        | Ok p -> p
        | Error e -> Tool_common.die "%s: %s" path e)
    | None, _ -> Oclick_optim.Patterns.combos ()
  in
  match Oclick_optim.Xform.run ~patterns router with
  | Error e -> Tool_common.die "%s" e
  | Ok (router, count) ->
      Printf.eprintf "click-xform: %d replacements\n" count;
      Tool_common.output_router router

let pattern_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "p"; "patterns" ] ~docv:"FILE" ~doc:"Pattern file.")

let combos_arg =
  Arg.(value & flag & info [ "combos" ] ~doc:"Use the built-in combination-element patterns (default).")

let () =
  Tool_common.run_tool "click-xform"
    "Replace subgraphs of a configuration using pattern files."
    Term.(const run $ pattern_arg $ combos_arg $ Tool_common.input_arg)
