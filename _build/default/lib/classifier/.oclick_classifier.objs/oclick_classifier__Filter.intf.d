lib/classifier/filter.mli: Bexpr Tree
