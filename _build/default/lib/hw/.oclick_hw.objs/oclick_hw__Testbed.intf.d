lib/hw/testbed.mli: Oclick_graph Oclick_packet Platform Stdlib
