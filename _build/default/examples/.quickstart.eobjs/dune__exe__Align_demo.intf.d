examples/align_demo.mli:
