(* Schema validation for observability JSON, used by the @obs-smoke
   alias: reads an oclick-report --json document on stdin, checks every
   per-element report against the schema (shape, field types, costs
   summing to the stated total), and checks that each report's total_ns
   equals the testbed aggregate it was measured against. Exits 1 with a
   one-line diagnostic on the first violation. *)

module Json = Oclick_obs.Json

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit 1)
    fmt

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let check_report label v =
  (match Oclick_obs.Report.validate v with
  | Ok () -> ()
  | Error e -> die "%s: %s" label e);
  match (Json.member "total_ns" v, Json.member "aggregate_ns" v) with
  | Some (Json.Int total), Some (Json.Int aggregate)
    when abs (total - aggregate) > 1 ->
      die "%s: per-element total %d ns != aggregate %d ns" label total
        aggregate
  | _ -> ()

let () =
  let doc =
    match Json.of_string (read_all stdin) with
    | Ok v -> v
    | Error e -> die "not valid JSON: %s" e
  in
  (match Json.member "tool" doc with
  | Some (Json.String _) -> ()
  | _ -> die "missing \"tool\" field");
  (match Json.member "passes" doc with
  | Some (Json.List passes) ->
      List.iteri
        (fun i v ->
          let label =
            match Json.member "pass" v with
            | Some (Json.String s) -> s
            | _ -> Printf.sprintf "pass %d" i
          in
          check_report label v)
        passes
  | Some _ -> die "\"passes\" is not a list"
  | None -> check_report "report" doc);
  print_endline "ok"
