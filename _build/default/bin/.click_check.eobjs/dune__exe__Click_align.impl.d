bin/click_align.ml: Cmdliner Oclick_optim Printf Term Tool_common
