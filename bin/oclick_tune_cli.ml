(* oclick-tune: search the datapath knob space for a configuration,
   using the deterministic testbed as the objective. Output is a valid
   .click file: the annotated configuration (chosen Queue capacities
   written into element arguments) under comment lines carrying the
   tuned oclick-run command line — so the tool composes with pipes like
   the other passes, and the artifact documents how to run itself. *)

open Cmdliner
module Tune = Oclick_tune

let () = Oclick_compile.register ()

let platform_of_name name =
  match
    List.find_opt
      (fun p ->
        String.lowercase_ascii p.Oclick_hw.Platform.p_name
        = String.lowercase_ascii name)
      Oclick_hw.Platform.all
  with
  | Some p -> p
  | None -> Tool_common.die "unknown platform %S (want P0, P1, P2 or P3)" name

(* "uniform" | "scan:N" | "arp:N" | "burst:MEAN:ALPHA" *)
let workload_of_spec spec =
  let bad () = Tool_common.die "bad --workload %S" spec in
  match String.split_on_char ':' spec with
  | [ "uniform" ] -> Oclick_hw.Host.Uniform
  | [ "scan"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Oclick_hw.Host.Scan n
      | _ -> bad ())
  | [ "arp"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Oclick_hw.Host.Arp_storm n
      | _ -> bad ())
  | [ "burst"; mean; alpha ] -> (
      match (int_of_string_opt mean, float_of_string_opt alpha) with
      | Some m, Some a when m > 0 && a > 0.0 -> Oclick_hw.Host.Burst (m, a)
      | _ -> bad ())
  | _ -> bad ()

let json_of_config (c : Tune.config) =
  let open Oclick_obs.Json in
  Obj
    [
      ("mode", String (Tune.mode_name c.Tune.c_mode));
      ("batch", Int c.Tune.c_batch);
      ("domains", Int c.Tune.c_domains);
      ("ring", Int c.Tune.c_ring);
      ("queue", Int c.Tune.c_queue);
      ( "early",
        match c.Tune.c_early with
        | None -> Null
        | Some e ->
            Obj
              [
                ("min", Int e.Tune.e_min);
                ("max", Int e.Tune.e_max);
                ("prob", Float e.Tune.e_prob);
              ] );
      ("watchdog_ms", Int c.Tune.c_watchdog_ms);
    ]

let run pps platform workload budget seed no_profile no_baselines json verbose
    emit input =
  if pps < 1 then Tool_common.die "bad --pps %d (must be at least 1)" pps;
  if budget < 1 then
    Tool_common.die "bad --budget %d (must be at least 1)" budget;
  let source = Tool_common.read_input input in
  let router = Tool_common.parse_router source in
  let platform = platform_of_name platform in
  let workload = workload_of_spec workload in
  (* Measurement feedback: one single-domain profiling run supplies the
     per-element costs that (a) weight the partitioner's LPT balance in
     every multi-domain evaluation and (b) gate the compiled/fused modes
     on whether any push region is hot enough to be worth collapsing. *)
  let weights, shares =
    if no_profile then (None, None)
    else
      match
        Tune.profile ~workload ~platform ~graph:router ~input_pps:pps ()
      with
      | Error e -> Tool_common.die "profiling run failed: %s" e
      | Ok w -> (
          match Tune.region_shares ~weights:w router with
          | Error e -> Tool_common.die "%s" e
          | Ok s -> (Some w, Some s))
  in
  let space = Tune.default_space in
  let space =
    match shares with
    | Some s when not (Tune.fusion_worthwhile s) ->
        if verbose then
          prerr_endline
            "tune: no push region carries enough measured cost; \
             dropping compiled/fused modes";
        { space with Tune.s_modes = [ Tune.Interpreted ] }
    | _ -> space
  in
  let ob =
    Tune.objective ~workload ?weights ~platform ~graph:router ~input_pps:pps
      ()
  in
  let extra_starts =
    if no_baselines then [] else Tune.single_knob_defaults space
  in
  match Tune.search ~seed ~budget ~extra_starts ob space with
  | Error e -> Tool_common.die "%s" e
  | Ok t ->
      if verbose then
        List.iter (fun l -> prerr_endline ("tune: " ^ l)) t.Tune.t_log;
      let best = t.Tune.t_config in
      let annotated = Tune.annotate best router in
      let file = match emit with Some f -> f | None -> "tuned.click" in
      let cmd = Tune.command_line ~input:file best in
      let header =
        Printf.sprintf
          "// tuned by oclick-tune: seed %d, budget %d, %d evaluation%s over \
           %d points%s\n\
           // %s\n\
           // forwarded %.0f pps at %.1f ns/packet (simulated %s, %d pps \
           offered)\n\
           // %s\n"
          seed t.Tune.t_budget t.Tune.t_evals
          (if t.Tune.t_evals = 1 then "" else "s")
          t.Tune.t_points
          (if t.Tune.t_exhaustive then ", exhaustive" else "")
          (Tune.describe best) t.Tune.t_score.Tune.sc_pps
          t.Tune.t_score.Tune.sc_ns platform.Oclick_hw.Platform.p_name pps cmd
      in
      let text = header ^ Oclick_graph.Router.to_string annotated in
      (match emit with
      | None -> ()
      | Some f ->
          let oc = open_out f in
          output_string oc text;
          close_out oc);
      if json then begin
        let open Oclick_obs.Json in
        let j =
          Obj
            [
              ("tool", String "oclick-tune");
              ("seed", Int seed);
              ("budget", Int t.Tune.t_budget);
              ("evals", Int t.Tune.t_evals);
              ("points", Int t.Tune.t_points);
              ("exhaustive", Bool t.Tune.t_exhaustive);
              ("config", json_of_config best);
              ("forwarded_pps", Float t.Tune.t_score.Tune.sc_pps);
              ("ns_per_packet", Float t.Tune.t_score.Tune.sc_ns);
              ("command_line", String cmd);
            ]
        in
        print_endline (to_string j)
      end
      else print_string text

let pps_arg =
  Arg.(
    value & opt int 40_000
    & info [ "pps" ] ~docv:"N"
        ~doc:"Offered load for the objective, aggregate packets/second.")

let platform_arg =
  Arg.(
    value & opt string "P0"
    & info [ "platform" ] ~docv:"NAME"
        ~doc:"Simulated platform: P0, P1, P2 or P3 (see oclick-bench).")

let workload_arg =
  Arg.(
    value & opt string "uniform"
    & info [ "workload" ] ~docv:"SPEC"
        ~doc:
          "Traffic shape for the objective: $(b,uniform), $(b,scan:N), \
           $(b,arp:N) or $(b,burst:MEAN:ALPHA).")

let budget_arg =
  Arg.(
    value & opt int 64
    & info [ "budget" ] ~docv:"N"
        ~doc:
          "Objective evaluation budget. Baseline configurations count \
           against it; memoized repeats are free.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Search seed. The objective is deterministic, so seed plus \
           budget fully determine the tuned result.")

let no_profile_arg =
  Arg.(
    value & flag
    & info [ "no-profile" ]
        ~doc:
          "Skip the profiling pre-run: partition by static element \
           counts and keep every datapath mode in the space.")

let no_baselines_arg =
  Arg.(
    value & flag
    & info [ "no-baselines" ]
        ~doc:
          "Don't seed the search with the single-knob default \
           configurations (normally evaluated first so the tuned result \
           can never lose to a one-flag variant).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print the tuning result as a JSON object instead of the \
           annotated configuration.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ]
        ~doc:"Print the search trace to standard error.")

let emit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit" ] ~docv:"FILE"
        ~doc:
          "Also write the annotated configuration to $(docv); the tuned \
           command line references it (default name: tuned.click).")

let () =
  Tool_common.run_tool "oclick-tune"
    "Autotune datapath knobs for a Click configuration."
    Term.(
      const run $ pps_arg $ platform_arg $ workload_arg $ budget_arg
      $ seed_arg $ no_profile_arg $ no_baselines_arg $ json_arg $ verbose_arg
      $ emit_arg $ Tool_common.input_arg)
