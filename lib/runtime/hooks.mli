(** Instrumentation hooks.

    The runtime reports every packet transfer and every unit of element
    work through these callbacks. The pure runtime installs {!null}; the
    simulated hardware testbed installs callbacks that charge CPU cycles,
    model the branch-target buffer, and count outcomes. This is how one
    element graph serves both correctness testing and the paper's
    performance evaluation. *)

type transfer = {
  tr_src_idx : int;
  tr_src_class : string;
      (** the {e code} class of the source: elements sharing code share
          packet-transfer call sites, which is what the branch predictor
          keys on (paper §3, Fig. 2) *)
  tr_src_port : int;
  tr_dst_idx : int;
  tr_dst_class : string;
  tr_dst_port : int;
      (** for a push, the destination's input port; for a pull, the
          pulled element's output port *)
  tr_direct : bool;  (** true once [click-devirtualize] has specialized *)
  tr_pull : bool;
}

(** Data-dependent work units reported by elements. *)
type work =
  | W_classify_interp of int  (** decision-tree nodes visited, interpreted *)
  | W_classify_compiled of int  (** nodes visited in specialized code *)
  | W_checksum of int  (** bytes summed *)
  | W_copy of int  (** bytes copied (Align, fragmentation) *)
  | W_lookup of int  (** routing-table entries scanned *)
  | W_queue  (** one enqueue or dequeue *)
  | W_custom of string * int

type t = {
  on_transfer : transfer -> Oclick_packet.Packet.t -> unit;
      (** One packet moving over one hookup. The packet is the one being
          transferred; callbacks must not retain it past the call. *)
  on_transfer_batch : transfer -> Oclick_packet.Packet.t array -> int -> unit;
      (** One report for a whole batch of packets moving over the same
          hookup (the batched transfer path): the first [int] elements of
          the array are the packets, the [int] is the batch size. The
          array is the transfer's scratch storage — callbacks must not
          retain it. Amortizes per-packet observability cost — a batch of
          [n] stands for [n] scalar transfers. *)
  on_work : idx:int -> cls:string -> work -> unit;
  on_drop : idx:int -> cls:string -> reason:string ->
            Oclick_packet.Packet.t -> unit;
  on_spawn : idx:int -> cls:string -> Oclick_packet.Packet.t -> unit;
      (** A packet born inside the router (a [Tee] clone, an ICMP error,
          an IP fragment, an ARP query). Needed for packet conservation:
          every spawned packet is later delivered or dropped. *)
  on_fault : idx:int -> cls:string -> reason:string -> unit;
      (** An exception escaped element [idx]'s push/pull/task and was
          contained by the degradation layer. *)
  on_warn : src:string -> string -> unit;
      (** Non-fatal runtime warnings (quarantine, livelock suspicion). *)
}

val null : t
(** No-op hooks. *)
