(* Overload-resilience tests: the bounded aged table (unit + adversarial
   fuzz), the ARP querier's bounded/rate-limited state, the rewriter's
   bounded flow table, Queue early drop, the multi-domain runner's
   watchdog and backpressure, and testbed differentials proving the
   overload machinery is invisible on non-adversarial traffic and
   conserves packets exactly on adversarial traffic. *)

module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr
module Driver = Oclick_runtime.Driver
module Hooks = Oclick_runtime.Hooks
module Aged_table = Oclick_runtime.Aged_table
module Router = Oclick_graph.Router
module Runner = Oclick_parallel.Runner
module Partition = Oclick_parallel.Partition
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform
module Host = Oclick_hw.Host

let () = Oclick_elements.register_all ()
let () = Oclick_compile.register ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- jig ------------------------------------------------------------------ *)

(* Instantiate a configuration with drop reasons captured; configs
   connect their own Idle feeds. *)
let driver_capturing ?clock config =
  let drops : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let hooks =
    {
      Hooks.null with
      Hooks.on_drop =
        (fun ~idx:_ ~cls:_ ~reason _ ->
          match Hashtbl.find_opt drops reason with
          | Some r -> incr r
          | None -> Hashtbl.replace drops reason (ref 1));
    }
  in
  let graph =
    match Router.parse_string config with
    | Ok g -> g
    | Error e -> Alcotest.failf "parse: %s" e
  in
  match Driver.instantiate ~hooks ?clock graph with
  | Ok d -> (d, drops)
  | Error e -> Alcotest.failf "instantiate: %s" e

let dropped drops reason =
  match Hashtbl.find_opt drops reason with Some r -> !r | None -> 0

let el d name = Option.get (Driver.element d name)

let stat d name key =
  match List.assoc_opt key (el d name)#stats with
  | Some v -> v
  | None -> Alcotest.failf "element %s has no stat %s" name key

let ip_packet dst =
  let p = Headers.Build.udp ~src_ip:(Ipaddr.of_string_exn "10.0.0.9")
      ~dst_ip:(Ipaddr.of_string_exn dst) ()
  in
  Packet.pull p 14;
  (Packet.anno p).Packet.dst_ip <- Ipaddr.of_string_exn dst;
  p

(* --- Aged_table ----------------------------------------------------------- *)

let test_aged_capacity_lru () =
  let evicted = ref [] in
  let t =
    Aged_table.create ~capacity:3
      ~on_evict:(fun k _ why -> evicted := (k, why) :: !evicted)
      ()
  in
  Aged_table.put t "a" 1;
  Aged_table.put t "b" 2;
  Aged_table.put t "c" 3;
  check "at capacity" 3 (Aged_table.length t);
  (* touch "a" so "b" is now the LRU entry *)
  check_bool "find touches" true (Aged_table.find t "a" = Some 1);
  Aged_table.put t "d" 4;
  check "still at capacity" 3 (Aged_table.length t);
  check_bool "LRU entry evicted" true (!evicted = [ ("b", Aged_table.Capacity) ]);
  check_bool "touched entry survives" true (Aged_table.mem t "a");
  check "eviction counted" 1 (Aged_table.evicted_capacity t);
  (* updating an existing key at capacity evicts nothing *)
  Aged_table.put t "a" 10;
  check "update evicts nothing" 1 (Aged_table.evicted t);
  check_bool "update visible" true (Aged_table.find t "a" = Some 10)

let test_aged_age_sweep () =
  let now = ref 0 in
  let evicted = ref [] in
  let t =
    Aged_table.create ~max_age_ns:100
      ~on_evict:(fun k _ why -> evicted := (k, why) :: !evicted)
      ()
  in
  Aged_table.set_clock t (fun () -> !now);
  Aged_table.put t "a" 1;
  now := 60;
  Aged_table.put t "b" 2;
  (* at t=60 nothing has aged out *)
  check "both live" 2 (Aged_table.length t);
  now := 150;
  (* "a" (stamp 0) is past the age; "b" (stamp 60) is not *)
  Aged_table.sweep t;
  check "aged entry swept" 1 (Aged_table.length t);
  check_bool "aged eviction reported" true
    (!evicted = [ ("a", Aged_table.Age) ]);
  check "age eviction counted" 1 (Aged_table.evicted_age t);
  (* a find refreshes the stamp and keeps the entry alive *)
  check_bool "survivor found" true (Aged_table.find t "b" = Some 2);
  now := 220;
  Aged_table.sweep t;
  check_bool "refreshed entry still live (stamp 150 at t=220)" true
    (Aged_table.mem t "b")

let test_aged_remove_is_silent () =
  let calls = ref 0 in
  let t = Aged_table.create ~capacity:4 ~on_evict:(fun _ _ _ -> incr calls) () in
  Aged_table.put t 1 "x";
  Aged_table.remove t 1;
  check "no on_evict for remove" 0 !calls;
  check "no eviction counted" 0 (Aged_table.evicted t);
  check "empty" 0 (Aged_table.length t)

(* Adversarial fuzz: the capacity bound must hold after every single
   operation — never just eventually. *)
let prop_aged_capacity_bound =
  let op =
    QCheck.Gen.(
      pair (int_bound 30) (int_bound 2)
      >|= fun (k, o) -> (k, match o with 0 -> `Put | 1 -> `Find | _ -> `Remove))
  in
  QCheck.Test.make ~name:"aged table never exceeds capacity" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 200) op))
    (fun ops ->
      let t = Aged_table.create ~capacity:8 () in
      List.for_all
        (fun (k, o) ->
          (match o with
          | `Put -> Aged_table.put t k k
          | `Find -> ignore (Aged_table.find t k)
          | `Remove -> Aged_table.remove t k);
          Aged_table.length t <= 8)
        ops)

(* With aging on, a sweep leaves no entry whose last touch predates the
   age horizon (puts always refresh the stamp, so the model is exact). *)
let prop_aged_age_bound =
  let op = QCheck.Gen.(pair (int_bound 30) (int_bound 50)) in
  QCheck.Test.make ~name:"sweep leaves no over-age entry" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 200) op))
    (fun ops ->
      let now = ref 0 in
      let t = Aged_table.create ~max_age_ns:100 () in
      Aged_table.set_clock t (fun () -> !now);
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, dt) ->
          now := !now + dt;
          Aged_table.put t k ();
          Hashtbl.replace model k !now)
        ops;
      Aged_table.sweep t;
      (* expiry is strict (age > max_age), so a stamp exactly at the
         horizon survives *)
      Aged_table.fold t
        (fun k () acc -> acc && Hashtbl.find model k >= !now - 100)
        true)

(* --- ARPQuerier under overload ------------------------------------------- *)

let arp_config extra =
  Printf.sprintf
    "aq :: ARPQuerier(10.0.0.1, 00:00:c0:00:00:01%s) -> q :: Queue(50); \
     Idle -> aq; Idle -> [1] aq; q -> Discard;"
    extra

let test_arp_pending_overflow () =
  let d, drops = driver_capturing (arp_config ", PENDING 2") in
  for _ = 1 to 4 do
    (el d "aq")#push 0 (ip_packet "10.0.0.2")
  done;
  (* FIFO bounded at 2: the two oldest were shed, the freshest survive *)
  check "pending bounded" 2 (stat d "aq" "pending");
  check "overflow accounted" 2 (dropped drops "ARP pending overflow");
  check "one query" 1 (stat d "aq" "queries");
  check "repeats suppressed" 3 (stat d "aq" "suppressed")

let test_arp_cache_eviction_accounted () =
  let d, drops = driver_capturing (arp_config ", CAPACITY 2") in
  (el d "aq")#push 0 (ip_packet "10.0.0.2");
  (el d "aq")#push 0 (ip_packet "10.0.0.3");
  (el d "aq")#push 0 (ip_packet "10.0.0.4");
  (* inserting the third address evicted the first entry, turning its
     held packet into an accounted drop *)
  check "cache bounded" 2 (stat d "aq" "cached");
  check "eviction counted" 1 (stat d "aq" "evictions");
  check "held packet became a drop" 1 (dropped drops "ARP entry evicted");
  check "pending is exact after eviction" 2 (stat d "aq" "pending")

let test_arp_query_rate_limit_clock () =
  let now = ref 0 in
  let d, _ =
    driver_capturing ~clock:(fun () -> !now) (arp_config ", QUERY_INTERVAL 10")
  in
  (el d "aq")#push 0 (ip_packet "10.0.0.2");
  check "first query sent" 1 (stat d "aq" "queries");
  now := 5_000_000 (* 5 ms: inside the 10 ms interval *);
  (el d "aq")#push 0 (ip_packet "10.0.0.2");
  check "repeat inside interval suppressed" 1 (stat d "aq" "queries");
  check "suppression counted" 1 (stat d "aq" "suppressed");
  now := 12_000_000 (* past the interval: re-query allowed *);
  (el d "aq")#push 0 (ip_packet "10.0.0.2");
  check "re-query after interval" 2 (stat d "aq" "queries")

(* --- IPRewriter bounded flow table ---------------------------------------- *)

let nat_udp ~sport =
  let p =
    Headers.Build.udp ~src_ip:(Ipaddr.of_string_exn "192.168.0.5")
      ~dst_ip:(Ipaddr.of_string_exn "8.8.8.8") ~src_port:sport ~dst_port:53 ()
  in
  Packet.pull p 14;
  Headers.L4.update_udp p ~ip_off:0;
  p

let test_rewriter_flow_table_bounded () =
  let d, drops =
    driver_capturing
      "Idle -> rw :: IPRewriter(18.26.4.24 5000-5100 - -, CAPACITY 2); \
       Idle -> [1] rw; rw [0] -> Discard; rw [1] -> Discard;"
  in
  (el d "rw")#push 0 (nat_udp ~sport:1111);
  (el d "rw")#push 0 (nat_udp ~sport:2222);
  (el d "rw")#push 0 (nat_udp ~sport:3333);
  check "flow table bounded" 2 (stat d "rw" "flows");
  check "eviction counted" 1 (stat d "rw" "evictions");
  (* the evicted flow's reverse mapping is gone with it: a late reply to
     its public port is an accounted drop, not a mistranslation *)
  let reply =
    Headers.Build.udp ~src_ip:(Ipaddr.of_string_exn "8.8.8.8")
      ~dst_ip:(Ipaddr.of_string_exn "18.26.4.24") ~src_port:53 ~dst_port:5000
      ()
  in
  Packet.pull reply 14;
  Headers.L4.update_udp reply ~ip_off:0;
  (el d "rw")#push 1 reply;
  check "reply to evicted flow dropped" 1 (dropped drops "no reverse mapping")

(* --- Queue early drop ------------------------------------------------------ *)

let test_queue_early_drop_accounted () =
  let d, drops =
    driver_capturing
      "Idle -> q :: Queue(100, EARLY 1 2 1.0); q -> Discard;"
  in
  let q = el d "q" in
  for _ = 1 to 10 do
    q#push 0 (ip_packet "10.0.0.2")
  done;
  let early = stat d "q" "early_drops" in
  check_bool "early drop engaged above MAX threshold" true (early > 0);
  check "early drops are the only drops" early (stat d "q" "drops");
  check "reason accounted" early (dropped drops "early drop");
  check "conservation: enqueued + dropped = offered" 10
    (stat d "q" "length" + early);
  (* the write handler turns admission control off live *)
  (match q#write_handler "early" "off" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write early off: %s" e);
  for _ = 1 to 5 do
    q#push 0 (ip_packet "10.0.0.2")
  done;
  check "no early drops once off" early (stat d "q" "early_drops")

(* --- multi-domain watchdog -------------------------------------------------- *)

let parse_exn src =
  match Router.parse_string src with
  | Ok g -> g
  | Error e -> Alcotest.failf "parse: %s" e

let sum_drops drv =
  let total = ref 0 in
  for i = 0 to Driver.size drv - 1 do
    match List.assoc_opt "drops" (Driver.element_at drv i)#stats with
    | Some n -> total := !total + n
    | None -> ()
  done;
  !total

(* A deliberately wedged shard: Stall busy-waits 220 ms of wall clock on
   its first packet, while the watchdog deadline is 100 ms. The run must
   complete (not hang), report the consumer shard stalled, and drain its
   inbound ring to accounted drops — with the ledger still exact. *)
let test_watchdog_stalled_domain () =
  let g =
    parse_exn
      "s :: InfiniteSource(LIMIT 200) -> c :: Counter -> q :: Queue(64) -> \
       u :: Unqueue -> st :: Stall(220, AFTER 1) -> d :: Discard;"
  in
  match Runner.create ~ring_capacity:64 ~domains:2 g with
  | Error e -> Alcotest.failf "runner: %s" e
  | Ok r ->
      let rp = Runner.run_until_idle_report ~watchdog_ms:100 r in
      check_bool "degraded, not converged" false rp.Runner.rp_converged;
      check "one stalled domain" 1 (List.length rp.Runner.rp_stalled);
      (* the stalled shard is the cut's consumer side *)
      let part = Runner.partition r in
      let cut = List.hd part.Partition.pt_cuts in
      check "consumer shard stalled" cut.Partition.cut_to_shard
        (List.hd rp.Runner.rp_stalled);
      (* the 220 ms spin returns inside the 2x-deadline grace window, so
         the domain is joined, not leaked, and its ring drains *)
      check "no leaked domain" 0 (List.length rp.Runner.rp_leaked);
      check_bool "parked ring traffic drained" true (rp.Runner.rp_drained > 0);
      let drv = Runner.driver r in
      let delivered = List.assoc "count" (el drv "d")#stats in
      (* Drained packets report through hooks (reason "stalled domain
         drained"), not the Queue's tail-drop stat, so they enter the
         ledger via rp_drained. *)
      check "conservation: delivered + drops = born" 200
        (delivered + sum_drops drv + rp.Runner.rp_drained)

(* Ring pressure: the consumer wedges briefly (no watchdog at the default
   deadline), the producer slams the ring full — backpressure must
   engage at least once, and once the consumer wakes the run converges
   with every packet accounted. *)
let test_backpressure_under_ring_pressure () =
  let g =
    parse_exn
      "s :: InfiniteSource(LIMIT 5000) -> c :: Counter -> q :: Queue(32) -> \
       u :: Unqueue -> st :: Stall(150, AFTER 1) -> d :: Discard;"
  in
  match Runner.create ~ring_capacity:32 ~batch:8 ~domains:2 g with
  | Error e -> Alcotest.failf "runner: %s" e
  | Ok r ->
      let rp = Runner.run_until_idle_report r in
      check_bool "converged" true rp.Runner.rp_converged;
      check "nothing stalled" 0 (List.length rp.Runner.rp_stalled);
      check_bool "backpressure engaged" true
        (Array.fold_left ( + ) 0 rp.Runner.rp_pressure > 0);
      let drv = Runner.driver r in
      let delivered = List.assoc "count" (el drv "d")#stats in
      check "conservation under pressure" 5000 (delivered + sum_drops drv)

(* --- testbed differentials -------------------------------------------------- *)

let platform8 = { Platform.p2 with Platform.p_nports = 8 }

let flows8 =
  List.init 8 (fun i -> { Testbed.fl_src = i; Testbed.fl_dst = (i + 4) mod 8 })

let run_tb ?workload ~graph input_pps =
  match
    Testbed.run ~duration_ms:10 ~warmup_ms:5 ~platform:platform8 ~graph
      ~flows:flows8 ?workload ~input_pps ()
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "testbed: %s" e

(* Replace every "NEEDLE(" argument list with an augmented one. *)
let amend_configs src ~needle ~extra =
  let buf = Buffer.create (String.length src) in
  let nlen = String.length needle in
  let i = ref 0 in
  let n = String.length src in
  while !i < n do
    if !i + nlen <= n && String.sub src !i nlen = needle then begin
      let close = String.index_from src !i ')' in
      Buffer.add_string buf (String.sub src !i (close - !i));
      Buffer.add_string buf extra;
      Buffer.add_char buf ')';
      i := close + 1
    end
    else begin
      Buffer.add_char buf src.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* On non-adversarial traffic at a loss-free rate, turning the overload
   machinery on explicitly (bounded ARP state at its defaults, RED
   thresholds the queues never reach) must be invisible: identical
   outcome totals and drop reasons, conservation exact both ways
   (Testbed.run returns Error on any ledger leak). *)
let test_differential_overload_features_inert () =
  let src = Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 8) in
  let amended =
    amend_configs
      (amend_configs src ~needle:"ARPQuerier("
         ~extra:", CAPACITY 512, TIMEOUT 300000, QUERY_INTERVAL 1000, PENDING 4")
      ~needle:"Queue(" ~extra:", EARLY 150 199 0.05"
  in
  let graph s =
    match Router.parse_string s with
    | Ok g -> g
    | Error e -> Alcotest.failf "parse amended config: %s" e
  in
  let off = run_tb ~graph:(graph src) 60_000 in
  let on = run_tb ~graph:(graph amended) 60_000 in
  check_bool "traffic flowed" true (off.Testbed.r_outcomes_total.Testbed.oc_sent > 0);
  check_bool "same outcome totals" true
    (off.Testbed.r_outcomes_total = on.Testbed.r_outcomes_total);
  check_bool "same drop reasons" true
    (off.Testbed.r_drop_reasons_total = on.Testbed.r_drop_reasons_total)

(* Adversarial workloads at 2x saturation: the run must complete with the
   ledger exact (Testbed.run checks conservation including evictions and
   pending state, and returns Error on a leak) while still delivering
   goodput. *)
let test_adversarial_workloads_conserved () =
  let graph =
    Oclick.Ip_router.graph
      (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 8))
  in
  List.iter
    (fun (name, workload) ->
      let r = run_tb ~workload ~graph 2_000_000 in
      check_bool (name ^ ": goodput survived") true
        (r.Testbed.r_outcomes_total.Testbed.oc_sent > 0))
    [
      ("scan", Host.Scan 16);
      ("arp-storm", Host.Arp_storm 4);
      ("burst", Host.Burst (64, 1.5));
    ]

let () =
  Alcotest.run "overload"
    [
      ( "aged-table",
        [
          Alcotest.test_case "capacity evicts LRU" `Quick test_aged_capacity_lru;
          Alcotest.test_case "age sweep" `Quick test_aged_age_sweep;
          Alcotest.test_case "remove is silent" `Quick
            test_aged_remove_is_silent;
          QCheck_alcotest.to_alcotest prop_aged_capacity_bound;
          QCheck_alcotest.to_alcotest prop_aged_age_bound;
        ] );
      ( "arp-overload",
        [
          Alcotest.test_case "pending FIFO overflow" `Quick
            test_arp_pending_overflow;
          Alcotest.test_case "cache eviction accounted" `Quick
            test_arp_cache_eviction_accounted;
          Alcotest.test_case "query rate limit (clock)" `Quick
            test_arp_query_rate_limit_clock;
        ] );
      ( "rewriter-overload",
        [
          Alcotest.test_case "flow table bounded" `Quick
            test_rewriter_flow_table_bounded;
        ] );
      ( "queue-early-drop",
        [
          Alcotest.test_case "early drop accounted" `Quick
            test_queue_early_drop_accounted;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "stalled domain degrades, not hangs" `Quick
            test_watchdog_stalled_domain;
          Alcotest.test_case "backpressure under ring pressure" `Quick
            test_backpressure_under_ring_pressure;
        ] );
      ( "testbed",
        [
          Alcotest.test_case "overload features inert off-adversary" `Quick
            test_differential_overload_features_inert;
          Alcotest.test_case "adversarial workloads conserved" `Quick
            test_adversarial_workloads_conserved;
        ] );
    ]
