(* oclick-run: install a configuration in the user-level driver and run
   its tasks. Devices named in the configuration are backed by in-memory
   queue devices; element statistics print on exit. With --domains N the
   graph is partitioned at Queue boundaries and each shard runs on its
   own OCaml domain. *)

open Cmdliner

(* Make --compile (Driver.instantiate ~compile:true) available. *)
let () = Oclick_compile.register ()

let device_names router =
  let names = ref [] in
  List.iter
    (fun i ->
      match Oclick_graph.Router.class_of router i with
      | "PollDevice" | "FromDevice" | "ToDevice" -> (
          match Oclick_lang.Args.split (Oclick_graph.Router.config router i) with
          | d :: _ when not (List.mem d !names) -> names := d :: !names
          | _ -> ())
      | _ -> ())
    (Oclick_graph.Router.indices router);
  !names

(* "element.handler=value" *)
let parse_write spec =
  match String.index_opt spec '=' with
  | None -> Tool_common.die "bad --write %S (want ELEMENT.HANDLER=VALUE)" spec
  | Some eq -> (
      let path = String.sub spec 0 eq
      and value = String.sub spec (eq + 1) (String.length spec - eq - 1) in
      match String.rindex_opt path '.' with
      | None -> Tool_common.die "bad --write %S (want ELEMENT.HANDLER=VALUE)" spec
      | Some dot ->
          ( String.sub path 0 dot,
            String.sub path (dot + 1) (String.length path - dot - 1),
            value ))

let parse_read spec =
  match String.rindex_opt spec '.' with
  | None -> Tool_common.die "bad --read %S (want ELEMENT.HANDLER)" spec
  | Some dot ->
      ( String.sub spec 0 dot,
        String.sub spec (dot + 1) (String.length spec - dot - 1) )

let element driver name =
  match Oclick_runtime.Driver.element driver name with
  | Some e -> e
  | None -> Tool_common.die "no element named %S" name

let apply_writes driver writes =
  List.iter
    (fun spec ->
      let el, handler, value = parse_write spec in
      match (element driver el)#write_handler handler value with
      | Ok () -> ()
      | Error e -> Tool_common.die "%s" e)
    writes

let apply_reads driver reads =
  List.iter
    (fun spec ->
      let el, handler = parse_read spec in
      match (element driver el)#read_handler handler with
      | Some v -> Printf.printf "%s.%s = %s\n" el handler v
      | None -> Tool_common.die "%s: no read handler %S" el handler)
    reads

let print_stats driver =
  List.iter
    (fun i ->
      let e = Oclick_runtime.Driver.element_at driver i in
      match e#stats with
      | [] -> ()
      | st ->
          Printf.printf "%s (%s): %s\n" e#name e#class_name
            (String.concat ", "
               (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) st)))
    (List.init (Oclick_runtime.Driver.size driver) Fun.id)

let print_pool_stats (st : Oclick_packet.Packet.Pool.stats) =
  Printf.printf
    "pool: allocs=%d reuses=%d recycles=%d rejected=%d free=%d slab_free=%d \
     heap_bufs=%d\n"
    st.Oclick_packet.Packet.Pool.st_allocs st.st_reuses st.st_recycles
    st.st_rejected st.st_free st.st_slab_free st.st_heap_bufs

(* Any element exposing a "routes" stat is a routing table (LookupIPRoute
   and friends) — same discovery rule as the testbed's report. *)
let route_tables_of driver =
  let acc = ref [] in
  for i = Oclick_runtime.Driver.size driver - 1 downto 0 do
    let e = Oclick_runtime.Driver.element_at driver i in
    let stats = e#stats in
    if List.mem_assoc "routes" stats then acc := (e#name, stats) :: !acc
  done;
  !acc

let print_obs ~driver ~rounds ~batch ~report ~report_json ~warnings o =
  let ename idx =
    if idx < 0 then "-"
    else if idx < Oclick_runtime.Driver.size driver then
      (Oclick_runtime.Driver.element_at driver idx)#name
    else Printf.sprintf "e%d" idx
  in
  if report then (
    Printf.printf "per-element breakdown (wall clock):\n";
    print_string (Oclick_obs.Report.table Oclick_obs.Report.Wall o));
  if report_json then begin
    let open Oclick_obs in
    (* The degraded/warnings/route_tables sections are part of the report
       schema (same shapes as oclick-report's passes), present even when
       empty, so JSON consumers never need existence checks. *)
    let degraded =
      warnings <> [] || Oclick_runtime.Driver.fault_report driver <> []
    in
    let route_tables =
      Json.List
        (List.map
           (fun (name, stats) ->
             Json.Obj
               (("name", Json.String name)
               :: List.map (fun (k, v) -> (k, Json.Int v)) stats))
           (route_tables_of driver))
    in
    let j = Report.json Report.Wall o in
    let j =
      match j with
      | Json.Obj kvs ->
          Json.Obj
            (("tool", Json.String "oclick-run")
            :: ("rounds", Json.Int rounds)
            :: ("batch", Json.Int batch)
            :: ("degraded", Json.Bool degraded)
            :: ("warnings", Json.List (List.map (fun w -> Json.String w) warnings))
            :: ("route_tables", route_tables)
            :: kvs)
      | v -> v
    in
    print_endline (Json.to_string j)
  end;
  match Oclick_obs.trace o with
  | None -> ()
  | Some tr ->
      Printf.printf "trace (last %d of %d events):\n"
        (Oclick_obs.Trace.length tr)
        (Oclick_obs.Trace.seen tr);
      List.iter
        (fun (ev : Oclick_obs.Trace.event) ->
          let open Oclick_obs.Trace in
          match ev.ev_kind with
          | Push | Pull ->
              Printf.printf "%8d %10dns %-5s %s[%d] -> %s[%d] pkt %d\n"
                ev.ev_seq ev.ev_ns (kind_name ev.ev_kind)
                (ename ev.ev_src_idx) ev.ev_src_port (ename ev.ev_dst_idx)
                ev.ev_dst_port ev.ev_packet
          | Drop ->
              Printf.printf "%8d %10dns %-5s %s pkt %d (%s)\n" ev.ev_seq
                ev.ev_ns (kind_name ev.ev_kind) (ename ev.ev_src_idx)
                ev.ev_packet ev.ev_reason
          | Spawn ->
              Printf.printf "%8d %10dns %-5s %s pkt %d\n" ev.ev_seq ev.ev_ns
                (kind_name ev.ev_kind) (ename ev.ev_src_idx) ev.ev_packet)
        (Oclick_obs.Trace.events tr)

let set_meta obs router =
  List.iter
    (fun i ->
      Oclick_obs.set_meta obs ~idx:i
        ~name:(Oclick_graph.Router.name router i)
        ~cls:(Oclick_graph.Router.class_of router i))
    (Oclick_graph.Router.indices router)

(* The multi-domain path: every shard gets its own hook record and
   observability ledger (each mutated only by its owning domain), and the
   ledgers merge in shard order after the run, so the combined report is
   deterministic. --rounds bounds the *working* rounds per domain; the
   run otherwise stops when every shard quiesces and every cut ring
   drains. *)
let run_parallel ~rounds ~stats ~batch ~pool ~pool_bufsize ~compile ~fuse
    ~domains ~ring_capacity ~watchdog_ms ~profile_partition ~writes ~reads
    ~report ~report_json ~trace router devices =
  let want_obs = report || report_json || trace <> None in
  let t0 = Unix.gettimeofday () in
  let now () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  (* --profile-partition: a single-domain profiling pre-run over
     throwaway queue devices (same names, so the real run's devices see
     none of its traffic) measures per-element wall-clock cost; the
     partitioner's LPT balance then places shards by observed cost
     instead of element counts. *)
  let weights =
    if not profile_partition then None
    else begin
      let pdevices =
        List.map
          (fun d ->
            (new Oclick_runtime.Netdevice.queue_device d ()
              :> Oclick_runtime.Netdevice.t))
          (device_names router)
      in
      let obs = Oclick_obs.create () in
      let hooks = Oclick_obs.hooks ~now ~wall:true obs Oclick_runtime.Hooks.null in
      match
        Oclick_runtime.Driver.instantiate ~hooks ~devices:pdevices ~batch
          router
      with
      | Error e -> Tool_common.die "%s" e
      | Ok drv ->
          Oclick_runtime.Driver.run drv ~rounds;
          Printf.printf "profile-partition: measured %d elements over %d \
                         rounds\n"
            (Oclick_runtime.Driver.size drv)
            rounds;
          Some (Oclick_obs.cost_weights ~wall:true obs)
    end
  in
  let obs_shards =
    if want_obs then
      Some (Array.init domains (fun _ -> Oclick_obs.create ?trace ~recycles:pool ()))
    else None
  in
  (* Warnings feed the report's degraded/warnings sections; shard hooks
     fire from their own domains, so recording takes a lock. *)
  let warn_mutex = Mutex.create () in
  let warnings = ref [] in
  let record_warn w =
    Mutex.lock warn_mutex;
    warnings := w :: !warnings;
    Mutex.unlock warn_mutex
  in
  let base =
    {
      Oclick_runtime.Hooks.null with
      Oclick_runtime.Hooks.on_warn =
        (fun ~src msg ->
          record_warn (Printf.sprintf "%s: %s" src msg);
          Printf.eprintf "warning: %s: %s\n" src msg);
    }
  in
  let hooks_for shard =
    match obs_shards with
    | None -> base
    | Some a -> Oclick_obs.hooks ~now ~wall:true a.(shard) base
  in
  match
    Oclick_parallel.Runner.create ~hooks_for ~devices ~batch ~pool
      ~pool_buf_size:(if pool_bufsize = 0 then
                        Oclick_packet.Packet.Pool.default_buf_size
                      else pool_bufsize)
      ~pool_slab:(pool_bufsize > 0) ~compile ~fuse ~ring_capacity ?weights
      ~clock:now ~domains router
  with
  | Error e -> Tool_common.die "%s" e
  | Ok runner ->
      let driver = Oclick_parallel.Runner.driver runner in
      apply_writes driver writes;
      let rp =
        Oclick_parallel.Runner.run_until_idle_report ~max_rounds:rounds
          ~watchdog_ms runner
      in
      (* A stalled shard means the run completed degraded, not cleanly:
         say so, with the same fault-containment detail the sequential
         path prints, so scripts scraping the output can tell. *)
      if rp.Oclick_parallel.Runner.rp_stalled <> [] then begin
        let ints l = String.concat "," (List.map string_of_int l) in
        record_warn
          (Printf.sprintf "stalled domains [%s]; %d drained"
             (ints rp.Oclick_parallel.Runner.rp_stalled)
             rp.Oclick_parallel.Runner.rp_drained);
        Printf.printf
          "degraded run: stalled domains [%s]%s; %d packet%s drained from \
           their rings\n"
          (ints rp.Oclick_parallel.Runner.rp_stalled)
          (match rp.Oclick_parallel.Runner.rp_leaked with
          | [] -> ""
          | l -> Printf.sprintf " (leaked: [%s])" (ints l))
          rp.Oclick_parallel.Runner.rp_drained
          (if rp.Oclick_parallel.Runner.rp_drained = 1 then "" else "s");
        List.iter
          (fun (name, faults, quarantined) ->
            Printf.printf "element %s: %d fault%s contained%s\n" name faults
              (if faults = 1 then "" else "s")
              (if quarantined then " (quarantined)" else ""))
          (Oclick_runtime.Driver.fault_report driver)
      end;
      apply_reads driver reads;
      if stats then print_stats driver;
      if pool && stats then
        Array.iter print_pool_stats (Oclick_parallel.Runner.pool_stats runner);
      match obs_shards with
      | None -> ()
      | Some shards ->
          let merged = Oclick_obs.create ?trace ~recycles:pool () in
          (* The instantiated graph is the partition's transformed graph
             (inserted queue/unqueue stages included), not the source. *)
          let part = Oclick_parallel.Runner.partition runner in
          set_meta merged part.Oclick_parallel.Partition.pt_graph;
          Array.iter (fun o -> Oclick_obs.merge_into ~src:o ~dst:merged) shards;
          print_obs ~driver ~rounds ~batch ~report ~report_json
            ~warnings:(List.rev !warnings) merged

let run rounds stats batch pool pool_bufsize compile fuse fault fault_seed
    domains ring_capacity watchdog_ms profile_partition writes reads report
    report_json trace input =
  if pool_bufsize < 0 || (pool_bufsize > 0 && pool_bufsize < 16) then
    Tool_common.die "bad --pool-bufsize %d (must be 0 or >= 16)" pool_bufsize;
  if rounds < 0 then Tool_common.die "bad --rounds %d (must be >= 0)" rounds;
  if batch < 1 then Tool_common.die "bad --batch %d (must be at least 1)" batch;
  if domains < 1 then
    Tool_common.die "bad --domains %d (must be at least 1)" domains;
  if ring_capacity < 1 then
    Tool_common.die "bad --ring-capacity %d (must be at least 1)" ring_capacity;
  if watchdog_ms < 1 then
    Tool_common.die "bad --watchdog-ms %d (must be at least 1)" watchdog_ms;
  if domains > 1 && fault <> None then
    Tool_common.die
      "--fault requires --domains 1 (injection streams are sequential)";
  if profile_partition && domains < 2 then
    Tool_common.die
      "--profile-partition requires --domains > 1 (there is no placement \
       to weight)";
  (match trace with
  | Some n when n < 1 ->
      Tool_common.die "bad --trace %d (must be at least 1)" n
  | _ -> ());
  let source = Tool_common.read_input input in
  let router = Tool_common.parse_router source in
  let devices =
    List.map
      (fun d ->
        (new Oclick_runtime.Netdevice.queue_device d ()
          :> Oclick_runtime.Netdevice.t))
      (device_names router)
  in
  if domains > 1 then
    run_parallel ~rounds ~stats ~batch ~pool ~pool_bufsize ~compile ~fuse
      ~domains ~ring_capacity ~watchdog_ms ~profile_partition ~writes ~reads
      ~report ~report_json ~trace router devices
  else begin
  let injector =
    match fault with
    | None -> None
    | Some spec -> (
        match Oclick_fault.Plan.parse ?seed:fault_seed spec with
        | Ok plan -> Some (Oclick_fault.Injector.create plan)
        | Error e -> Tool_common.die "bad --fault spec: %s" e)
  in
  let mangle =
    Option.map
      (fun inj p -> Oclick_fault.Injector.mangle_wire inj ~stream:"run" p)
      injector
  in
  let quarantine =
    Option.map
      (fun inj -> (Oclick_fault.Injector.plan inj).Oclick_fault.Plan.p_quarantine)
      injector
  in
  let drops : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  let warnings = ref [] in
  let hooks =
    {
      Oclick_runtime.Hooks.null with
      Oclick_runtime.Hooks.on_drop =
        (fun ~idx:_ ~cls:_ ~reason _ ->
          match Hashtbl.find_opt drops reason with
          | Some r -> incr r
          | None -> Hashtbl.replace drops reason (ref 1));
      on_warn =
        (fun ~src msg ->
          warnings := Printf.sprintf "%s: %s" src msg :: !warnings;
          Printf.eprintf "warning: %s: %s\n" src msg);
    }
  in
  let pool =
    if pool then
      Some
        (if pool_bufsize = 0 then
           Oclick_packet.Packet.Pool.create ~slab:false ()
         else Oclick_packet.Packet.Pool.create ~buf_size:pool_bufsize ())
    else None
  in
  (* The observability layer wraps the drop-counting hooks only when
     asked for, so plain runs keep the bare hot path. Cost column is
     wall-clock ns (no cost model outside the testbed). *)
  let obs =
    if report || report_json || trace <> None then
      Some (Oclick_obs.create ?trace ~recycles:(pool <> None) ())
    else None
  in
  let hooks =
    match obs with
    | None -> hooks
    | Some o ->
        let t0 = Unix.gettimeofday () in
        let now () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
        Oclick_obs.hooks ~now ~wall:true o hooks
  in
  (* Live runs age element state (ARP cache, rewriter flows) on the wall
     clock, in ns since process start. *)
  let t0 = Unix.gettimeofday () in
  let clock () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  match
    Oclick_runtime.Driver.instantiate ~hooks ~devices ?mangle ?quarantine
      ~batch ?pool ~compile ~fuse ~clock router
  with
  | Error e -> Tool_common.die "%s" e
  | Ok driver ->
      (match obs with None -> () | Some o -> set_meta o router);
      apply_writes driver writes;
      Oclick_runtime.Driver.run driver ~rounds;
      apply_reads driver reads;
      if stats then print_stats driver;
      (match injector with
      | None -> ()
      | Some inj ->
          let pair (k, v) = Printf.sprintf "%s=%d" k v in
          Printf.printf "faults injected: %s\n"
            (match Oclick_fault.Injector.counters inj with
            | [] -> "none"
            | cs -> String.concat ", " (List.map pair cs));
          let dropped =
            Hashtbl.fold (fun k r acc -> (k, !r) :: acc) drops []
            |> List.sort compare
          in
          if dropped <> [] then
            Printf.printf "drops: %s\n"
              (String.concat ", " (List.map pair dropped));
          List.iter
            (fun (name, faults, quarantined) ->
              Printf.printf "element %s: %d fault%s contained%s\n" name faults
                (if faults = 1 then "" else "s")
                (if quarantined then " (quarantined)" else ""))
            (Oclick_runtime.Driver.fault_report driver));
      (match pool with
      | Some pl when stats ->
          print_pool_stats (Oclick_packet.Packet.Pool.stats pl)
      | _ -> ());
      match obs with
      | None -> ()
      | Some o ->
          print_obs ~driver ~rounds ~batch ~report ~report_json
            ~warnings:(List.rev !warnings) o
  end

let rounds_arg =
  Arg.(
    value & opt int 1000
    & info [ "rounds" ] ~docv:"N"
        ~doc:
          "Scheduler rounds to run. With $(b,--domains) > 1 this bounds \
           the $(i,working) rounds per domain instead; the run stops \
           early once every shard quiesces.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print element statistics.")

let batch_arg =
  Arg.(
    value & opt int 1
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Transfer batch size. With $(docv) > 1 device polling hands up \
           to $(docv) packets per task through the batched push/pull path; \
           1 (the default) runs the scalar path everywhere.")

let pool_arg =
  Arg.(
    value & flag
    & info [ "pool" ]
        ~doc:
          "Allocate packets from a recycling free-list pool backed by an \
           off-heap buffer arena: dropped and transmitted packets return \
           to the pool and later allocations reuse their buffers with no \
           copying (see README). With $(b,--domains) > 1 each domain gets \
           a private pool.")

let pool_bufsize_arg =
  Arg.(
    value
    & opt int Oclick_packet.Packet.Pool.default_buf_size
    & info [ "pool-bufsize" ] ~docv:"BYTES"
        ~doc:
          "Size of each off-heap arena buffer in the $(b,--pool) arena \
           (default 2048: an MTU frame plus head/tailroom). Allocations \
           that don't fit fall back to heap buffers. 0 disables the arena \
           entirely, keeping pooled packets on GC-managed buffers.")

let compile_arg =
  Arg.(
    value & flag
    & info [ "compile" ]
        ~doc:
          "Run the whole-graph datapath compiler after instantiation: \
           push connections become direct-call closures and fusable \
           element chains collapse into per-packet functions. Semantics \
           (outcomes, drop reasons, reports) are identical to the \
           interpreted path; composes with $(b,--batch), $(b,--pool) and \
           $(b,--fault).")

let fuse_arg =
  Arg.(
    value & flag
    & info [ "fuse" ]
        ~doc:
          "Run the cross-element FDD fusion pass inside compilation \
           (implies $(b,--compile)): whole push regions of classifiers, \
           paint writes/switches, header guards and route lookups \
           collapse into one decision-diagram closure per region. \
           Outcomes, drop reasons and reports stay identical; composes \
           with $(b,--batch), $(b,--pool) and $(b,--domains). With \
           $(b,--fault), regions crossing a wire-mangled transfer fall \
           back to per-element compiled closures.")

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Fault-injection plan, e.g. $(b,corrupt=0.01,truncate=0.005). \
           In-flight wire faults apply to every packet transfer; faulting \
           elements are contained and quarantined per the plan. A summary \
           prints on exit.")

let fault_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:"Override the fault plan's random seed.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Shard the router across $(docv) OCaml domains. The flattened \
           graph is partitioned at Queue boundaries (inserting \
           queue/unqueue stages where a source region meets the shared \
           core), cut Queues become lock-free single-producer rings, and \
           each shard runs its own scheduler until the whole router \
           quiesces. Incompatible with $(b,--fault).")

let ring_capacity_arg =
  Arg.(
    value & opt int 128
    & info [ "ring-capacity" ] ~docv:"N"
        ~doc:
          "Capacity of the SPSC rings backing queue/unqueue stages the \
           partitioner inserts (cut Queues that already existed keep \
           their configured capacity). A full ring drops like a full \
           Queue; size it above the expected burst for loss-free runs. \
           Only meaningful with $(b,--domains) > 1.")

let watchdog_ms_arg =
  Arg.(
    value & opt int 1000
    & info [ "watchdog-ms" ] ~docv:"MS"
        ~doc:
          "Watchdog deadline for $(b,--domains) > 1: a domain whose \
           heartbeat stops for $(docv) milliseconds of wall time is \
           declared stalled, the healthy domains stop waiting for it, \
           its inbound rings are drained into accounted drops, and the \
           run reports degraded instead of hanging.")

let profile_partition_arg =
  Arg.(
    value & flag
    & info [ "profile-partition" ]
        ~doc:
          "Before partitioning, run the configuration once on a single \
           domain with per-element wall-clock profiling (over throwaway \
           devices), and balance the shards by the measured per-element \
           cost instead of element counts. Requires $(b,--domains) > 1.")

let write_arg =
  Arg.(
    value & opt_all string []
    & info [ "write" ] ~docv:"ELEMENT.HANDLER=VALUE"
        ~doc:"Invoke a write handler before running (repeatable).")

let read_arg =
  Arg.(
    value & opt_all string []
    & info [ "read" ] ~docv:"ELEMENT.HANDLER"
        ~doc:"Print a read handler after running (repeatable).")

let report_arg =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:
          "Print the per-element breakdown table after running: packets \
           in/out, drops, and wall-clock cost attribution per element.")

let report_json_arg =
  Arg.(
    value & flag
    & info [ "report-json" ]
        ~doc:"Like $(b,--report), as a JSON object on standard output.")

let trace_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace" ] ~docv:"N"
        ~doc:
          "Keep the last $(docv) packet events (transfers, drops, spawns) \
           in a ring buffer and dump them after running.")

let () =
  Tool_common.run_tool "oclick-run"
    "Run a Click configuration in the user-level driver."
    Term.(
      const run $ rounds_arg $ stats_arg $ batch_arg $ pool_arg
      $ pool_bufsize_arg $ compile_arg $ fuse_arg $ fault_arg $ fault_seed_arg
      $ domains_arg $ ring_capacity_arg $ watchdog_ms_arg
      $ profile_partition_arg $ write_arg $ read_arg $ report_arg
      $ report_json_arg $ trace_arg $ Tool_common.input_arg)
