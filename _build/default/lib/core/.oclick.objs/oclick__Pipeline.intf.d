lib/core/pipeline.mli: Oclick_graph Oclick_optim
