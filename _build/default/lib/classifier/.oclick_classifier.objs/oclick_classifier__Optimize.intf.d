lib/classifier/optimize.mli: Tree
