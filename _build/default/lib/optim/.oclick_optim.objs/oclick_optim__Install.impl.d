lib/optim/install.ml: Oclick_classifier Oclick_elements Oclick_graph Oclick_lang Oclick_runtime Printf String
