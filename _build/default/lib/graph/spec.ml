type port_kind = Push | Pull | Agnostic

type t = {
  s_class : string;
  s_ports : string;
  s_processing : string;
  s_flow : string;
}

type table = string -> t option

let make ?(ports = "1/1") ?(processing = "a/a") ?(flow = "x/x") s_class =
  { s_class; s_ports = ports; s_processing = processing; s_flow = flow }

type range = { lo : int; hi : int option }

let parse_range s =
  let s = String.trim s in
  if String.equal s "-" then Some { lo = 0; hi = None }
  else
    match String.index_opt s '-' with
    | None -> (
        match int_of_string_opt s with
        | Some n when n >= 0 -> Some { lo = n; hi = Some n }
        | _ -> None)
    | Some i -> (
        let a = String.sub s 0 i in
        let b = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt a with
        | Some lo when lo >= 0 ->
            if String.equal b "" then Some { lo; hi = None }
            else (
              match int_of_string_opt b with
              | Some hi when hi >= lo -> Some { lo; hi = Some hi }
              | _ -> None)
        | _ -> None)

let parse_port_counts s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let ins = String.sub s 0 i in
      let outs = String.sub s (i + 1) (String.length s - i - 1) in
      match (parse_range ins, parse_range outs) with
      | Some a, Some b -> Some (a, b)
      | _ -> None)

let in_range r n =
  n >= r.lo && match r.hi with None -> true | Some hi -> n <= hi

let valid_processing_half h =
  String.length h > 0
  && String.for_all (fun c -> c = 'h' || c = 'l' || c = 'a') h

let parse_processing s =
  match String.index_opt s '/' with
  | None -> None
  | Some i ->
      let ins = String.sub s 0 i in
      let outs = String.sub s (i + 1) (String.length s - i - 1) in
      if valid_processing_half ins && valid_processing_half outs then
        Some (ins, outs)
      else None

let port_processing ~code i =
  let n = String.length code in
  let c = if n = 0 then 'a' else if i < n then code.[i] else code.[n - 1] in
  match c with 'h' -> Push | 'l' -> Pull | _ -> Agnostic

let halves spec =
  match parse_processing spec.s_processing with
  | Some (a, b) -> (a, b)
  | None -> ("a", "a")

let input_processing spec i = port_processing ~code:(fst (halves spec)) i
let output_processing spec i = port_processing ~code:(snd (halves spec)) i

let flow_halves spec =
  match String.index_opt spec.s_flow '/' with
  | None -> ("x", "x")
  | Some i ->
      let a = String.sub spec.s_flow 0 i in
      let b =
        String.sub spec.s_flow (i + 1) (String.length spec.s_flow - i - 1)
      in
      ((if a = "" then "x" else a), if b = "" then "x" else b)

let code_char code i =
  let n = String.length code in
  if n = 0 then 'x' else if i < n then code.[i] else code.[n - 1]

let flows_to spec ~input ~output =
  let ins, outs = flow_halves spec in
  code_char ins input = code_char outs output

let kind_to_string = function
  | Push -> "push"
  | Pull -> "pull"
  | Agnostic -> "agnostic"
