(* Bounded, age-evicted association table.

   The overload-resilience workhorse: stateful elements (ARP caches,
   rewriter flow tables) keep per-peer state here instead of in a bare
   Hashtbl, so adversarial traffic (address scans, ARP storms) costs a
   bounded amount of memory and old state ages out instead of
   accumulating forever.

   Implementation: a Hashtbl of intrusive nodes on a circular
   doubly-linked recency list threaded through a sentinel node, kept in
   least-recently-used order. Every operation is O(1) (sweeps are
   amortized). The circular-sentinel shape exists for the datapath:
   relinking a node on touch is four pointer writes with no option boxes
   (the previous head/tail representation consed [Some n] per touch), so
   a steady-state cache hit through [find_exn] allocates nothing — this
   table sits on the per-packet path of ARPQuerier and the rewriters.

   Time comes from a pluggable [clock] returning nanoseconds — the
   testbed installs its simulated clock, live tools install the wall
   clock, and the default of [fun () -> 0] disables aging entirely
   (every entry is forever young), which keeps unit tests deterministic
   unless they opt in. *)

type reason = Capacity | Age

(* An unlinked node points to itself; the sentinel's neighbours are the
   LRU (next) and MRU (prev) ends. The sentinel is manufactured from the
   first inserted key/value — only its link fields are ever read. *)
type ('k, 'v) node = {
  nd_key : 'k;
  mutable nd_value : 'v;
  mutable nd_stamp : int;  (* last-touch time, clock ns *)
  mutable nd_prev : ('k, 'v) node;
  mutable nd_next : ('k, 'v) node;
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable capacity : int;  (* 0 = unbounded *)
  mutable max_age_ns : int;  (* 0 = never ages *)
  mutable clock : unit -> int;
  mutable sentinel : ('k, 'v) node option;  (* None until the first put *)
  mutable on_evict : 'k -> 'v -> reason -> unit;
  mutable evicted_capacity : int;
  mutable evicted_age : int;
}

let create ?(capacity = 0) ?(max_age_ns = 0)
    ?(on_evict = fun _ _ _ -> ()) () =
  {
    tbl = Hashtbl.create 64;
    capacity = max 0 capacity;
    max_age_ns = max 0 max_age_ns;
    clock = (fun () -> 0);
    sentinel = None;
    on_evict;
    evicted_capacity = 0;
    evicted_age = 0;
  }

let set_clock t f = t.clock <- f
let set_capacity t n = t.capacity <- max 0 n
let set_max_age_ns t n = t.max_age_ns <- max 0 n
let set_on_evict t f = t.on_evict <- f
let capacity t = t.capacity
let max_age_ns t = t.max_age_ns
let length t = Hashtbl.length t.tbl
let evicted_capacity t = t.evicted_capacity
let evicted_age t = t.evicted_age
let evicted t = t.evicted_capacity + t.evicted_age

(* Unlink [n] from the recency ring (it must be linked). *)
let unlink n =
  n.nd_prev.nd_next <- n.nd_next;
  n.nd_next.nd_prev <- n.nd_prev;
  n.nd_prev <- n;
  n.nd_next <- n

(* Link [n] at the most-recently-used end (just before the sentinel). *)
let link_mru s n =
  n.nd_prev <- s.nd_prev;
  n.nd_next <- s;
  s.nd_prev.nd_next <- n;
  s.nd_prev <- n

let evict t n why =
  unlink n;
  Hashtbl.remove t.tbl n.nd_key;
  (match why with
  | Capacity -> t.evicted_capacity <- t.evicted_capacity + 1
  | Age -> t.evicted_age <- t.evicted_age + 1);
  t.on_evict n.nd_key n.nd_value why

(* Age out expired entries from the LRU end. The ring is ordered by
   last touch, so the first young entry terminates the walk: the cost
   of a sweep is the number of evictions it performs, amortized O(1).
   Top-level recursion, not an inner [let rec]: an inner closure would
   be allocated per sweep even when nothing is expired, and sweeps run
   on every datapath [find_exn]. *)
let rec sweep_from t s now =
  let n = s.nd_next in
  if n != s && now - n.nd_stamp > t.max_age_ns then begin
    evict t n Age;
    sweep_from t s now
  end

let sweep t =
  if t.max_age_ns > 0 then
    match t.sentinel with
    | None -> ()
    | Some s -> sweep_from t s (t.clock ())

let touch t s n =
  n.nd_stamp <- t.clock ();
  unlink n;
  link_mru s n

(* Allocation-free lookup for per-packet paths: a hit costs a hash probe
   plus four pointer writes. [Not_found] on a miss (a preallocated
   constant — raising it allocates nothing either). *)
let find_exn t k =
  sweep t;
  let n = Hashtbl.find t.tbl k in
  (match t.sentinel with Some s -> touch t s n | None -> assert false);
  n.nd_value

let find t k =
  match find_exn t k with v -> Some v | exception Not_found -> None

(* Non-touching lookup: reads the value without refreshing recency or
   stamp (and without sweeping), for bookkeeping paths that must not
   keep an entry alive. *)
let peek t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n -> Some n.nd_value
  | None -> None

let mem t k = Hashtbl.mem t.tbl k

let sentinel_of t k v =
  match t.sentinel with
  | Some s -> s
  | None ->
      (* Manufactured from the first real entry; only the links are ever
         read. *)
      let rec s =
        { nd_key = k; nd_value = v; nd_stamp = 0; nd_prev = s; nd_next = s }
      in
      t.sentinel <- Some s;
      s

let put t k v =
  sweep t;
  let s = sentinel_of t k v in
  match Hashtbl.find t.tbl k with
  | n ->
      n.nd_value <- v;
      touch t s n
  | exception Not_found ->
      (* Make room first so the table never exceeds capacity, even
         transiently. *)
      if t.capacity > 0 then
        while Hashtbl.length t.tbl >= t.capacity do
          let n = s.nd_next in
          if n == s then assert false else evict t n Capacity
        done;
      let rec n =
        { nd_key = k; nd_value = v; nd_stamp = t.clock ();
          nd_prev = n; nd_next = n }
      in
      Hashtbl.add t.tbl k n;
      link_mru s n

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      unlink n;
      Hashtbl.remove t.tbl k
  | None -> ()

let iter t f =
  match t.sentinel with
  | None -> ()
  | Some s ->
      let rec loop n =
        if n != s then begin
          let next = n.nd_next in
          f n.nd_key n.nd_value;
          loop next
        end
      in
      loop s.nd_next

let fold t f acc =
  match t.sentinel with
  | None -> acc
  | Some s ->
      let rec loop acc n =
        if n == s then acc
        else
          let next = n.nd_next in
          loop (f n.nd_key n.nd_value acc) next
      in
      loop acc s.nd_next

let clear t =
  Hashtbl.reset t.tbl;
  match t.sentinel with
  | None -> ()
  | Some s ->
      s.nd_prev <- s;
      s.nd_next <- s
