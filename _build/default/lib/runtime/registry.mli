(** The element-class registry.

    Static element classes register themselves here (class name,
    specification, constructor). Optimizer-generated classes —
    [FastClassifier@...], devirtualized specializations, combination
    elements — are registered dynamically at install time; the registry
    plays the role of Click's dynamic linker for archived element code
    (paper §4, DESIGN.md §5).

    The specification table exported to the optimizers is exactly the
    registered specification — tools and the router share one
    specification, as the paper requires (§5.3). *)

type constructor = string -> Element.t
(** Builds an element given its name. *)

val register :
  ?replace:bool -> spec:Oclick_graph.Spec.t -> string -> constructor -> unit
(** Raises [Invalid_argument] if the class exists and [replace] is false. *)

val unregister : string -> unit
val find : string -> constructor option
val spec : string -> Oclick_graph.Spec.t option
val spec_table : Oclick_graph.Spec.table
val all_classes : unit -> string list
(** Sorted. *)

val snapshot : unit -> (unit -> unit)
(** [let restore = snapshot () in ... ; restore ()] — scoped dynamic
    registration for tools and tests. *)
