bin/tool_common.ml: Arg Buffer Cmd Cmdliner Oclick_elements Oclick_graph Oclick_optim Printf
