// A standards-compliant IP router (paper Figure 1), 8 interfaces.
rt :: LookupIPRoute(10.0.0.1/32 0, 10.0.1.1/32 0, 10.0.2.1/32 0, 10.0.3.1/32 0, 10.0.4.1/32 0, 10.0.5.1/32 0, 10.0.6.1/32 0, 10.0.7.1/32 0, 10.0.0.0/24 1, 10.0.1.0/24 2, 10.0.2.0/24 3, 10.0.3.0/24 4, 10.0.4.0/24 5, 10.0.5.0/24 6, 10.0.6.0/24 7, 10.0.7.0/24 8);
rt [0] -> host :: Discard;  // packets for the router itself

// interface 0: eth0 (10.0.0.1, 00:00:c0:00:00:01)
pd0 :: PollDevice(eth0);
out0 :: Queue(200);
td0 :: ToDevice(eth0);
c0 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ar0 :: ARPResponder(10.0.0.1 00:00:c0:00:00:01);
aq0 :: ARPQuerier(10.0.0.1, 00:00:c0:00:00:01);
pd0 -> c0;
c0 [0] -> ar0 -> out0;
c0 [1] -> [1] aq0;
c0 [2] -> Paint(1) -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> rt;
c0 [3] -> Discard;
rt [1] -> DropBroadcasts -> cp0 :: CheckPaint(1) -> gio0 :: IPGWOptions(10.0.0.1) -> FixIPSrc(10.0.0.1) -> dt0 :: DecIPTTL -> fr0 :: IPFragmenter(1500) -> [0] aq0;
aq0 -> out0 -> td0;
cp0 [1] -> ICMPError(10.0.0.1, redirect, host) -> rt;
gio0 [1] -> ICMPError(10.0.0.1, parameterproblem) -> rt;
dt0 [1] -> ICMPError(10.0.0.1, timeexceeded) -> rt;
fr0 [1] -> ICMPError(10.0.0.1, unreachable, needfrag) -> rt;

// interface 1: eth1 (10.0.1.1, 00:00:c0:00:01:01)
pd1 :: PollDevice(eth1);
out1 :: Queue(200);
td1 :: ToDevice(eth1);
c1 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ar1 :: ARPResponder(10.0.1.1 00:00:c0:00:01:01);
aq1 :: ARPQuerier(10.0.1.1, 00:00:c0:00:01:01);
pd1 -> c1;
c1 [0] -> ar1 -> out1;
c1 [1] -> [1] aq1;
c1 [2] -> Paint(2) -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> rt;
c1 [3] -> Discard;
rt [2] -> DropBroadcasts -> cp1 :: CheckPaint(2) -> gio1 :: IPGWOptions(10.0.1.1) -> FixIPSrc(10.0.1.1) -> dt1 :: DecIPTTL -> fr1 :: IPFragmenter(1500) -> [0] aq1;
aq1 -> out1 -> td1;
cp1 [1] -> ICMPError(10.0.1.1, redirect, host) -> rt;
gio1 [1] -> ICMPError(10.0.1.1, parameterproblem) -> rt;
dt1 [1] -> ICMPError(10.0.1.1, timeexceeded) -> rt;
fr1 [1] -> ICMPError(10.0.1.1, unreachable, needfrag) -> rt;

// interface 2: eth2 (10.0.2.1, 00:00:c0:00:02:01)
pd2 :: PollDevice(eth2);
out2 :: Queue(200);
td2 :: ToDevice(eth2);
c2 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ar2 :: ARPResponder(10.0.2.1 00:00:c0:00:02:01);
aq2 :: ARPQuerier(10.0.2.1, 00:00:c0:00:02:01);
pd2 -> c2;
c2 [0] -> ar2 -> out2;
c2 [1] -> [1] aq2;
c2 [2] -> Paint(3) -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> rt;
c2 [3] -> Discard;
rt [3] -> DropBroadcasts -> cp2 :: CheckPaint(3) -> gio2 :: IPGWOptions(10.0.2.1) -> FixIPSrc(10.0.2.1) -> dt2 :: DecIPTTL -> fr2 :: IPFragmenter(1500) -> [0] aq2;
aq2 -> out2 -> td2;
cp2 [1] -> ICMPError(10.0.2.1, redirect, host) -> rt;
gio2 [1] -> ICMPError(10.0.2.1, parameterproblem) -> rt;
dt2 [1] -> ICMPError(10.0.2.1, timeexceeded) -> rt;
fr2 [1] -> ICMPError(10.0.2.1, unreachable, needfrag) -> rt;

// interface 3: eth3 (10.0.3.1, 00:00:c0:00:03:01)
pd3 :: PollDevice(eth3);
out3 :: Queue(200);
td3 :: ToDevice(eth3);
c3 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ar3 :: ARPResponder(10.0.3.1 00:00:c0:00:03:01);
aq3 :: ARPQuerier(10.0.3.1, 00:00:c0:00:03:01);
pd3 -> c3;
c3 [0] -> ar3 -> out3;
c3 [1] -> [1] aq3;
c3 [2] -> Paint(4) -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> rt;
c3 [3] -> Discard;
rt [4] -> DropBroadcasts -> cp3 :: CheckPaint(4) -> gio3 :: IPGWOptions(10.0.3.1) -> FixIPSrc(10.0.3.1) -> dt3 :: DecIPTTL -> fr3 :: IPFragmenter(1500) -> [0] aq3;
aq3 -> out3 -> td3;
cp3 [1] -> ICMPError(10.0.3.1, redirect, host) -> rt;
gio3 [1] -> ICMPError(10.0.3.1, parameterproblem) -> rt;
dt3 [1] -> ICMPError(10.0.3.1, timeexceeded) -> rt;
fr3 [1] -> ICMPError(10.0.3.1, unreachable, needfrag) -> rt;

// interface 4: eth4 (10.0.4.1, 00:00:c0:00:04:01)
pd4 :: PollDevice(eth4);
out4 :: Queue(200);
td4 :: ToDevice(eth4);
c4 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ar4 :: ARPResponder(10.0.4.1 00:00:c0:00:04:01);
aq4 :: ARPQuerier(10.0.4.1, 00:00:c0:00:04:01);
pd4 -> c4;
c4 [0] -> ar4 -> out4;
c4 [1] -> [1] aq4;
c4 [2] -> Paint(5) -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> rt;
c4 [3] -> Discard;
rt [5] -> DropBroadcasts -> cp4 :: CheckPaint(5) -> gio4 :: IPGWOptions(10.0.4.1) -> FixIPSrc(10.0.4.1) -> dt4 :: DecIPTTL -> fr4 :: IPFragmenter(1500) -> [0] aq4;
aq4 -> out4 -> td4;
cp4 [1] -> ICMPError(10.0.4.1, redirect, host) -> rt;
gio4 [1] -> ICMPError(10.0.4.1, parameterproblem) -> rt;
dt4 [1] -> ICMPError(10.0.4.1, timeexceeded) -> rt;
fr4 [1] -> ICMPError(10.0.4.1, unreachable, needfrag) -> rt;

// interface 5: eth5 (10.0.5.1, 00:00:c0:00:05:01)
pd5 :: PollDevice(eth5);
out5 :: Queue(200);
td5 :: ToDevice(eth5);
c5 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ar5 :: ARPResponder(10.0.5.1 00:00:c0:00:05:01);
aq5 :: ARPQuerier(10.0.5.1, 00:00:c0:00:05:01);
pd5 -> c5;
c5 [0] -> ar5 -> out5;
c5 [1] -> [1] aq5;
c5 [2] -> Paint(6) -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> rt;
c5 [3] -> Discard;
rt [6] -> DropBroadcasts -> cp5 :: CheckPaint(6) -> gio5 :: IPGWOptions(10.0.5.1) -> FixIPSrc(10.0.5.1) -> dt5 :: DecIPTTL -> fr5 :: IPFragmenter(1500) -> [0] aq5;
aq5 -> out5 -> td5;
cp5 [1] -> ICMPError(10.0.5.1, redirect, host) -> rt;
gio5 [1] -> ICMPError(10.0.5.1, parameterproblem) -> rt;
dt5 [1] -> ICMPError(10.0.5.1, timeexceeded) -> rt;
fr5 [1] -> ICMPError(10.0.5.1, unreachable, needfrag) -> rt;

// interface 6: eth6 (10.0.6.1, 00:00:c0:00:06:01)
pd6 :: PollDevice(eth6);
out6 :: Queue(200);
td6 :: ToDevice(eth6);
c6 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ar6 :: ARPResponder(10.0.6.1 00:00:c0:00:06:01);
aq6 :: ARPQuerier(10.0.6.1, 00:00:c0:00:06:01);
pd6 -> c6;
c6 [0] -> ar6 -> out6;
c6 [1] -> [1] aq6;
c6 [2] -> Paint(7) -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> rt;
c6 [3] -> Discard;
rt [7] -> DropBroadcasts -> cp6 :: CheckPaint(7) -> gio6 :: IPGWOptions(10.0.6.1) -> FixIPSrc(10.0.6.1) -> dt6 :: DecIPTTL -> fr6 :: IPFragmenter(1500) -> [0] aq6;
aq6 -> out6 -> td6;
cp6 [1] -> ICMPError(10.0.6.1, redirect, host) -> rt;
gio6 [1] -> ICMPError(10.0.6.1, parameterproblem) -> rt;
dt6 [1] -> ICMPError(10.0.6.1, timeexceeded) -> rt;
fr6 [1] -> ICMPError(10.0.6.1, unreachable, needfrag) -> rt;

// interface 7: eth7 (10.0.7.1, 00:00:c0:00:07:01)
pd7 :: PollDevice(eth7);
out7 :: Queue(200);
td7 :: ToDevice(eth7);
c7 :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
ar7 :: ARPResponder(10.0.7.1 00:00:c0:00:07:01);
aq7 :: ARPQuerier(10.0.7.1, 00:00:c0:00:07:01);
pd7 -> c7;
c7 [0] -> ar7 -> out7;
c7 [1] -> [1] aq7;
c7 [2] -> Paint(8) -> Strip(14) -> CheckIPHeader() -> GetIPAddress(16) -> rt;
c7 [3] -> Discard;
rt [8] -> DropBroadcasts -> cp7 :: CheckPaint(8) -> gio7 :: IPGWOptions(10.0.7.1) -> FixIPSrc(10.0.7.1) -> dt7 :: DecIPTTL -> fr7 :: IPFragmenter(1500) -> [0] aq7;
aq7 -> out7 -> td7;
cp7 [1] -> ICMPError(10.0.7.1, redirect, host) -> rt;
gio7 [1] -> ICMPError(10.0.7.1, parameterproblem) -> rt;
dt7 [1] -> ICMPError(10.0.7.1, timeexceeded) -> rt;
fr7 [1] -> ICMPError(10.0.7.1, unreachable, needfrag) -> rt;

