(** Compound-element elaboration (the [click-flatten] pass).

    Replaces every element whose class is a compound — either an anonymous
    inline compound or a name bound by [elementclass] — with the compound's
    body: body elements are renamed ["parent/child"], formal parameters are
    substituted into body configuration strings, and connections are spliced
    through the ["input"]/["output"] pseudo-elements. All other optimizers
    run this first (paper §6.2). *)

val flatten : Ast.t -> (Ast.t, string) result
(** The result contains no compound classes and no [elementclass]
    definitions. Fails on recursive element classes, on configuration
    arguments that do not match the compound's formals, and on connections
    to compound ports the body does not define. *)

val flatten_exn : Ast.t -> Ast.t
