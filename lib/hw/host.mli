(** A source/destination host (paper §8.1).

    Each host sits on a full-duplex point-to-point link to one router
    interface. It generates an even flow of 64-byte UDP packets at a
    configured rate, answers ARP queries for its address, and counts the
    UDP packets it receives.

    With an {!Oclick_fault.Injector.t} installed the host doubles as the
    testbed's fault source: generated frames are mangled (TTL=0, bad
    checksums, bad header lengths, runts) and wire-damaged (bit flips,
    truncation) according to the injector's plan, drawing only from this
    host's named random stream so the fault schedule is independent of
    router timing. *)

(** Adversarial traffic shapes for overload experiments; all preserve
    the configured mean rate. *)
type workload =
  | Uniform  (** one destination, jittered even pacing (the default) *)
  | Scan of int
      (** sweep this many consecutive destination addresses — only the
          first resolves, a worst-case ARP miss pattern *)
  | Arp_storm of int
      (** every k-th frame is an ARP request for the router's address *)
  | Burst of int * float
      (** [(mean, alpha)]: bounded-Pareto bursts at wire speed with
          mean-preserving OFF gaps (heavy-tailed ON/OFF) *)

class host :
  engine:Engine.t
  -> platform:Platform.t
  -> ip:Oclick_packet.Ipaddr.t
  -> eth:Oclick_packet.Ethaddr.t
  -> router_eth:Oclick_packet.Ethaddr.t
  -> ?injector:Oclick_fault.Injector.t
  -> ?fault_stream:string (* this host's stream label; default "host" *)
  -> unit
  -> object
       method set_wire : (Oclick_packet.Packet.t -> unit) -> unit
       (** How frames reach the router (the NIC's [wire_arrive]). *)

       method receive : Oclick_packet.Packet.t -> unit
       (** Called by the router NIC when it transmits a frame to us. *)

       method start_traffic :
         dst_ip:Oclick_packet.Ipaddr.t -> rate_pps:int ->
         ?payload_len:int -> until:int -> unit -> unit
       (** Generate UDP at [rate_pps] until simulation time [until] ns. *)

       method start_workload :
         workload:workload -> dst_ip:Oclick_packet.Ipaddr.t ->
         router_ip:Oclick_packet.Ipaddr.t -> rate_pps:int ->
         ?payload_len:int -> until:int -> unit -> unit
       (** Like [start_traffic] with a traffic shape. [router_ip] is the
           gateway address ARP-storm requests target (unused
           otherwise). [Uniform] is exactly [start_traffic]. *)

       method sent_udp : int
       method received_udp : int
       method received_icmp : int
       method received_other : int

       (** {2 Ledger counters — never reset} *)

       method sent_frames : int
       (** Every frame put on the wire, including ARP replies. *)

       method received_arp : int

       method received_total : int
       (** Every frame handed to {!receive}, parseable or not. *)

       method reset_counters : unit
       (** Resets the per-window counters ([sent_udp],
           [received_udp/icmp/other]) only; ledger counters are
           monotonic. *)
     end
