(** [click-align]: packet-data alignment analysis (paper §7.1).

    Computes, by forward data-flow analysis patterned on the compiler
    literature, the alignment [(modulus, offset)] of packet data arriving
    at every element; inserts [Align] elements wherever an element's
    required alignment is not guaranteed; removes [Align] elements that
    are redundant; and appends an [AlignmentInfo] element recording the
    result.

    Alignments form a lattice: [(m, o)] means the data offset is congruent
    to [o] modulo [m]; the join of two alignments is the coarsest
    consistent congruence (via gcd); [(1, 0)] is "unknown".

    Per-class alignment behaviour (how an element changes alignment, and
    what it requires) is built into the tool — the paper notes this
    explicitly as a specification the authors could not externalize. *)

type alignment = { modulus : int; offset : int }

val unknown : alignment
val join : alignment -> alignment -> alignment
val satisfies : alignment -> alignment -> bool
(** [satisfies have want]: every offset allowed by [have] is allowed by
    [want]. *)

val source_alignment : alignment
(** What devices and sources emit: [(4, 2)] — a 14-byte Ethernet header
    ahead of a word-aligned IP header, the usual driver convention. *)

val run :
  Oclick_graph.Router.t ->
  (Oclick_graph.Router.t * int * int, string) result
(** Returns (new graph, aligns inserted, aligns removed). The input graph
    is not modified. *)

val analyze :
  Oclick_graph.Router.t -> (int * alignment) list
(** The per-element input alignments the analysis computes (exposed for
    tests and for the [AlignmentInfo] configuration). *)
