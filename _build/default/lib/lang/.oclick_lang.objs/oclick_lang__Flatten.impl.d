lib/lang/flatten.ml: Args Ast List Printf String
