test/test_elements.mli:
