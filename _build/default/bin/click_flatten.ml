(* click-flatten: compile away compound element abstractions. *)

open Cmdliner

let run input =
  let source = Tool_common.read_input input in
  match Oclick_lang.Parser.parse source with
  | Error e ->
      prerr_endline e;
      exit 1
  | Ok ast -> (
      match Oclick_lang.Flatten.flatten ast with
      | Error e ->
          prerr_endline e;
          exit 1
      | Ok flat -> print_string (Oclick_lang.Printer.to_string flat))

let () =
  Tool_common.run_tool "click-flatten"
    "Expand compound elements in a Click configuration."
    Term.(const run $ Tool_common.input_arg)
