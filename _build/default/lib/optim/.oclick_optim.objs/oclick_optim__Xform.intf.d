lib/optim/xform.mli: Oclick_graph Oclick_lang
