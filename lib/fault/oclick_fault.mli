(** Seeded, deterministic fault injection.

    A {!Plan.t} — parsed from a compact spec string — describes {e what}
    can go wrong: malformed traffic generation (bad IP checksums, bad
    header lengths, TTL=0, runt frames), in-flight corruption and
    truncation, and NIC/PCI stall windows. An {!Injector.t} is a live
    instance of a plan: it owns the named random streams that make every
    decision reproducible, and counts each fault it injects by kind.

    Determinism contract: all randomness derives from the plan's seed
    through named sub-streams ({!Rng.split}), so two runs with the same
    plan and the same per-stream draw sequence make byte-identical
    decisions — independent of wall clock, of scheduling order between
    streams, and of the router configuration under test. *)

module Rng : sig
  type t

  val create : seed:int -> t
  (** A 62-bit xorshift generator. Any seed is accepted. *)

  val split : t -> string -> t
  (** [split t label] derives an independent child stream. Equal
      [(seed, label)] pairs yield identical streams. *)

  val bits : t -> int
  (** The next 62 pseudo-random bits (non-negative). *)

  val int : t -> int -> int
  (** [int t n] is uniform in [\[0, n)]. [n] must be positive. *)

  val float : t -> float
  (** Uniform in [\[0, 1)]. *)

  val coin : t -> float -> bool
  (** [coin t p] is true with probability [p]. Always consumes exactly
      one draw, even for [p <= 0.] or [p >= 1.] — stream positions stay
      aligned across plans that differ only in probabilities. *)
end

module Plan : sig
  type window = {
    w_dev : string;  (** device name ([nic-stall]) or bus id ([pci-stall]) *)
    w_start_ns : int;
    w_len_ns : int;
  }

  type t = {
    p_seed : int;
    p_corrupt : float;  (** per-frame single-bit wire corruption *)
    p_truncate : float;  (** per-frame tail truncation on the wire *)
    p_ttl0 : float;  (** generated IP packet with TTL = 0 *)
    p_badcksum : float;  (** generated IP packet with a wrong checksum *)
    p_badlen : float;  (** generated IP packet with header length < 20 *)
    p_runt : float;  (** generated frame shorter than an Ethernet header *)
    p_nic_stall : window list;  (** DMA stall windows, by device name *)
    p_pci_stall : window list;  (** bus arbitration stall windows *)
    p_quarantine : int;  (** consecutive faults before quarantine *)
  }

  val default : t
  (** Seed 1, no faults, quarantine threshold {!default_quarantine}. *)

  val default_quarantine : int

  val parse : ?seed:int -> string -> (t, string) result
  (** Parse a spec string: comma-separated [key=value] settings.

      Probabilities (in [0..1]): [corrupt], [truncate], [ttl0],
      [badcksum], [badlen], [runt].
      Stall windows (microseconds, repeatable):
      [nic-stall=DEV\@START:LEN], [pci-stall=BUS\@START:LEN].
      Integers: [seed] (overridden by the [?seed] argument), [quarantine].
      The empty string parses to a fault-free plan. *)

  val to_string : t -> string
  (** A spec string that reparses to the same plan (sans default seed). *)

  val is_null : t -> bool
  (** No fault of any kind can fire. *)

  val stall_until : window list -> dev:string -> now_ns:int -> int option
  (** If [now_ns] falls inside a stall window for [dev], the absolute
      time at which the longest such window ends. *)
end

module Counters : sig
  type t

  val create : unit -> t
  val bump : t -> string -> unit
  val to_list : t -> (string * int) list
  (** Sorted by kind name. *)

  val total : t -> int
end

module Injector : sig
  type t

  val create : Plan.t -> t
  val plan : t -> Plan.t
  val counters : t -> (string * int) list
  (** Faults injected so far, by kind, sorted. *)

  val total : t -> int

  val stream : t -> string -> Rng.t
  (** The named sub-stream for one decision source (e.g. one traffic
      host). Created on first use; stable thereafter. *)

  val mangle_tx : t -> stream:string -> Oclick_packet.Packet.t -> unit
  (** Generation-side faults on a well-formed Ethernet+IP frame: at most
      one of TTL=0 / bad checksum / bad header length / runt, chosen by
      the plan's probabilities. Draws exactly one coin plus any
      fault-specific randomness. Frames too short for an IP header only
      qualify for the runt fault. *)

  val mangle_wire : t -> stream:string -> Oclick_packet.Packet.t -> unit
  (** Wire faults: single-bit corruption and/or tail truncation,
      independent coins. *)
end
