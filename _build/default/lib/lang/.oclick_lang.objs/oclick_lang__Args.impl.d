lib/lang/args.ml: Buffer List String
