lib/optim/devirtualize.ml: Array Buffer Hashtbl Int List Oclick_graph Oclick_runtime Option Printf String
