(* Schema validation for observability JSON, used by the @obs-smoke
   alias: reads an oclick-report --json document on stdin, checks every
   per-element report against the schema (shape, field types, costs
   summing to the stated total), and checks that each report's total_ns
   equals the testbed aggregate it was measured against. Exits 1 with a
   one-line diagnostic on the first violation. *)

module Json = Oclick_obs.Json

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit 1)
    fmt

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

(* The degradation/fusion sections every report carries, populated or
   not: consumers key on them unconditionally, so an absent or
   wrongly-typed field is a schema violation even when the run was
   clean. *)
let check_sections label v =
  (match Json.member "degraded" v with
  | Some (Json.Bool _) -> ()
  | Some _ -> die "%s: \"degraded\" is not a bool" label
  | None -> die "%s: missing \"degraded\"" label);
  (match Json.member "warnings" v with
  | Some (Json.List ws) ->
      List.iter
        (function
          | Json.String _ -> ()
          | _ -> die "%s: non-string warning" label)
        ws
  | Some _ -> die "%s: \"warnings\" is not a list" label
  | None -> die "%s: missing \"warnings\"" label);
  (match Json.member "route_tables" v with
  | Some (Json.List ts) ->
      List.iter
        (fun t ->
          (match Json.member "name" t with
          | Some (Json.String _) -> ()
          | _ -> die "%s: route table without a string \"name\"" label);
          match t with
          | Json.Obj kvs ->
              List.iter
                (fun (k, stat) ->
                  match stat with
                  | Json.Int _ | Json.String _ -> ()
                  | _ -> die "%s: route table stat %S is not an int" label k)
                kvs
          | _ -> die "%s: route table entry is not an object" label)
        ts
  | Some _ -> die "%s: \"route_tables\" is not a list" label
  | None -> die "%s: missing \"route_tables\"" label);
  match Json.member "fused_regions" v with
  | Some (Json.List rs) ->
      List.iter
        (fun r ->
          (match Json.member "entry" r with
          | Some (Json.String _) -> ()
          | _ -> die "%s: fused region without a string \"entry\"" label);
          (match Json.member "members" r with
          | Some (Json.List (_ :: _)) -> ()
          | _ -> die "%s: fused region without members" label);
          match (Json.member "nodes" r, Json.member "actions" r) with
          | Some (Json.Int n), Some (Json.Int a) when n >= 0 && a >= 1 -> ()
          | _ -> die "%s: fused region with bad nodes/actions" label)
        rs
  | Some _ -> die "%s: \"fused_regions\" is not a list" label
  | None -> die "%s: missing \"fused_regions\"" label

let check_report label v =
  (match Oclick_obs.Report.validate v with
  | Ok () -> ()
  | Error e -> die "%s: %s" label e);
  check_sections label v;
  match (Json.member "total_ns" v, Json.member "aggregate_ns" v) with
  | Some (Json.Int total), Some (Json.Int aggregate)
    when abs (total - aggregate) > 1 ->
      die "%s: per-element total %d ns != aggregate %d ns" label total
        aggregate
  | _ -> ()

let () =
  let doc =
    match Json.of_string (read_all stdin) with
    | Ok v -> v
    | Error e -> die "not valid JSON: %s" e
  in
  (match Json.member "tool" doc with
  | Some (Json.String _) -> ()
  | _ -> die "missing \"tool\" field");
  (match Json.member "passes" doc with
  | Some (Json.List passes) ->
      List.iteri
        (fun i v ->
          let label =
            match Json.member "pass" v with
            | Some (Json.String s) -> s
            | _ -> Printf.sprintf "pass %d" i
          in
          check_report label v)
        passes
  | Some _ -> die "\"passes\" is not a list"
  | None -> check_report "report" doc);
  print_endline "ok"
