module Router = Oclick_graph.Router
module Testbed = Oclick_hw.Testbed
module Partition = Oclick_parallel.Partition
module Args = Oclick_lang.Args

(* ------------------------------------------------------------------ *)
(* Knobs *)

type mode = Interpreted | Compiled | Fused

let mode_name = function
  | Interpreted -> "interpreted"
  | Compiled -> "compiled"
  | Fused -> "fused"

let mode_of_name = function
  | "interpreted" -> Some Interpreted
  | "compiled" -> Some Compiled
  | "fused" -> Some Fused
  | _ -> None

type early = { e_min : int; e_max : int; e_prob : float }

type config = {
  c_mode : mode;
  c_batch : int;
  c_domains : int;
  c_ring : int;
  c_queue : int;
  c_early : early option;
  c_watchdog_ms : int;
}

let early_str = function
  | None -> "-"
  | Some e -> Printf.sprintf "%d:%d:%g" e.e_min e.e_max e.e_prob

let describe c =
  Printf.sprintf "mode=%s batch=%d domains=%d ring=%d queue=%d early=%s \
                  watchdog=%d"
    (mode_name c.c_mode) c.c_batch c.c_domains c.c_ring c.c_queue
    (early_str c.c_early) c.c_watchdog_ms

type space = {
  s_modes : mode list;
  s_batches : int list;
  s_domains : int list;
  s_rings : int list;
  s_queues : int list;
  s_earlies : early option list;
  s_watchdogs : int list;
}

let default_space =
  {
    s_modes = [ Interpreted; Compiled; Fused ];
    s_batches = [ 1; 8; 32 ];
    s_domains = [ 1; 2; 4 ];
    s_rings = [ 128; 1024 ];
    s_queues = [ 0; 1000 ];
    s_earlies = [ None; Some { e_min = 50; e_max = 400; e_prob = 0.02 } ];
    s_watchdogs = [ 1000 ];
  }

(* The space as setter axes: searching is index arithmetic over these,
   so one config type serves every knob uniformly. *)
let axes space =
  [|
    ("mode", List.map (fun v c -> { c with c_mode = v }) space.s_modes);
    ("batch", List.map (fun v c -> { c with c_batch = v }) space.s_batches);
    ("domains", List.map (fun v c -> { c with c_domains = v }) space.s_domains);
    ("ring", List.map (fun v c -> { c with c_ring = v }) space.s_rings);
    ("queue", List.map (fun v c -> { c with c_queue = v }) space.s_queues);
    ("early", List.map (fun v c -> { c with c_early = v }) space.s_earlies);
    ( "watchdog",
      List.map (fun v c -> { c with c_watchdog_ms = v }) space.s_watchdogs );
  |]

let points space =
  Array.fold_left
    (fun acc (_, ax) -> acc * List.length ax)
    1 (axes space)

let validate space =
  let pos name l =
    if l = [] then Error (Printf.sprintf "tune: empty %s axis" name)
    else if List.exists (fun v -> v < 1) l then
      Error (Printf.sprintf "tune: non-positive %s candidate" name)
    else Ok ()
  in
  let ( >>= ) r f = Result.bind r (fun () -> f ()) in
  (if space.s_modes = [] then Error "tune: empty mode axis" else Ok ())
  >>= fun () ->
  pos "batch" space.s_batches >>= fun () ->
  pos "domains" space.s_domains >>= fun () ->
  pos "ring" space.s_rings >>= fun () ->
  (if space.s_queues = [] then Error "tune: empty queue axis"
   else if List.exists (fun v -> v < 0) space.s_queues then
     Error "tune: negative queue candidate"
   else Ok ())
  >>= fun () ->
  (if space.s_earlies = [] then Error "tune: empty early axis" else Ok ())
  >>= fun () -> pos "watchdog" space.s_watchdogs

let base_config space =
  {
    c_mode = List.hd space.s_modes;
    c_batch = List.hd space.s_batches;
    c_domains = List.hd space.s_domains;
    c_ring = List.hd space.s_rings;
    c_queue = List.hd space.s_queues;
    c_early = List.hd space.s_earlies;
    c_watchdog_ms = List.hd space.s_watchdogs;
  }

let single_knob_defaults space =
  let base = base_config space in
  let variants =
    Array.to_list (axes space)
    |> List.concat_map (fun (_, setters) ->
           List.map (fun set -> set base) setters)
  in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.replace seen c ();
        true
      end)
    (base :: variants)

(* ------------------------------------------------------------------ *)
(* Annotation: write chosen capacities into element arguments *)

let starts_with_early s =
  String.length s >= 5 && String.equal (String.sub s 0 5) "EARLY"

(* Click keyword arguments lead with an uppercase word; positional
   arguments (a Queue's capacity) don't. *)
let is_keyword part =
  String.length part > 0 && part.[0] >= 'A' && part.[0] <= 'Z'

let annotate c graph =
  let g = Router.copy graph in
  List.iter
    (fun i ->
      if String.equal (Router.class_of g i) "Queue" then begin
        let parts = List.map String.trim (Args.split (Router.config g i)) in
        let parts = List.filter (fun p -> p <> "") parts in
        let positional, keywords = List.partition (fun p -> not (is_keyword p)) parts in
        let capacity =
          if c.c_queue > 0 then [ string_of_int c.c_queue ] else positional
        in
        let others = List.filter (fun p -> not (starts_with_early p)) keywords in
        let early =
          match c.c_early with
          | Some e ->
              [ Printf.sprintf "EARLY %d %d %g" e.e_min e.e_max e.e_prob ]
          | None -> List.filter starts_with_early keywords
        in
        Router.set_config g i (String.concat ", " (capacity @ others @ early))
      end)
    (Router.indices g);
  g

let command_line ?(input = "tuned.click") c =
  let b = Buffer.create 64 in
  Buffer.add_string b "oclick-run";
  (match c.c_mode with
  | Interpreted -> ()
  | Compiled -> Buffer.add_string b " --compile"
  | Fused -> Buffer.add_string b " --fuse");
  if c.c_batch > 1 then Buffer.add_string b (Printf.sprintf " --batch %d" c.c_batch);
  if c.c_domains > 1 then begin
    Buffer.add_string b (Printf.sprintf " --domains %d" c.c_domains);
    Buffer.add_string b (Printf.sprintf " --ring-capacity %d" c.c_ring);
    Buffer.add_string b (Printf.sprintf " --watchdog-ms %d" c.c_watchdog_ms)
  end;
  Buffer.add_char b ' ';
  Buffer.add_string b input;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Objective *)

type objective = {
  ob_platform : Oclick_hw.Platform.t;
  ob_graph : Router.t;
  ob_input_pps : int;
  ob_workload : Oclick_hw.Host.workload;
  ob_duration_ms : int option;
  ob_warmup_ms : int option;
  ob_drain_ms : int option;
  ob_weights : int array option;
}

let objective ?duration_ms ?warmup_ms ?drain_ms
    ?(workload = Oclick_hw.Host.Uniform) ?weights ~platform ~graph ~input_pps
    () =
  {
    ob_platform = platform;
    ob_graph = graph;
    ob_input_pps = input_pps;
    ob_workload = workload;
    ob_duration_ms = duration_ms;
    ob_warmup_ms = warmup_ms;
    ob_drain_ms = drain_ms;
    ob_weights = weights;
  }

type score = { sc_pps : float; sc_ns : float }

let better a b =
  a.sc_pps > b.sc_pps || (a.sc_pps = b.sc_pps && a.sc_ns < b.sc_ns)

let eval ob c =
  let graph = annotate c ob.ob_graph in
  match
    Testbed.run ?duration_ms:ob.ob_duration_ms ?warmup_ms:ob.ob_warmup_ms
      ?drain_ms:ob.ob_drain_ms ~batch:c.c_batch
      ~compile:(c.c_mode <> Interpreted)
      ~fuse:(c.c_mode = Fused) ~domains:c.c_domains ~ring_capacity:c.c_ring
      ?partition_weights:ob.ob_weights ~workload:ob.ob_workload
      ~platform:ob.ob_platform ~graph ~input_pps:ob.ob_input_pps ()
  with
  | Error e -> Error e
  | Ok r ->
      Ok
        {
          sc_pps = r.Testbed.r_forwarded_pps;
          sc_ns = r.Testbed.r_total_ns;
        }

(* ------------------------------------------------------------------ *)
(* Search *)

type tuned = {
  t_config : config;
  t_score : score;
  t_evals : int;
  t_budget : int;
  t_points : int;
  t_exhaustive : bool;
  t_log : string list;
}

exception Budget
exception Fail of string

(* Deterministic PRNG for the start point — the only randomness in the
   search, so seed + budget fully determine the result. *)
let lcg s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

let search ?(seed = 1) ?(budget = 64) ?(exhaustive_threshold = 32)
    ?(extra_starts = []) ob space =
  match validate space with
  | Error _ as e -> e
  | Ok () ->
      if budget < 1 then
        Error
          (Printf.sprintf
             "tune: search budget %d (need at least one evaluation)" budget)
      else begin
        let axes = axes space in
        let naxes = Array.length axes in
        let setters = Array.map (fun (_, ax) -> Array.of_list ax) axes in
        let base = base_config space in
        let config_of ix =
          let c = ref base in
          Array.iteri (fun k j -> c := setters.(k).(j) !c) ix;
          !c
        in
        let npoints = points space in
        let memo : (config, score) Hashtbl.t = Hashtbl.create 64 in
        let evals = ref 0 in
        let best = ref None in
        let log = ref [] in
        let note fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
        let eval_config c =
          match Hashtbl.find_opt memo c with
          | Some s -> s
          | None ->
              if !evals >= budget then raise Budget;
              incr evals;
              let s =
                match eval ob c with Error e -> raise (Fail e) | Ok s -> s
              in
              Hashtbl.replace memo c s;
              (match !best with
              | Some (_, bs) when not (better s bs) -> ()
              | _ -> best := Some (c, s));
              s
        in
        let eval_ix ix = eval_config (config_of ix) in
        let exhaustive = npoints <= min budget exhaustive_threshold in
        (try
           (* Baselines first: ties in the final argmax resolve toward
              the earliest evaluation, i.e. toward a named default. *)
           List.iter (fun c -> ignore (eval_config c)) extra_starts;
           if exhaustive then begin
             note "exhaustive: %d points" npoints;
             let ix = Array.make naxes 0 in
             let rec enum k =
               if k = naxes then ignore (eval_ix ix)
               else
                 for j = 0 to Array.length setters.(k) - 1 do
                   ix.(k) <- j;
                   enum (k + 1)
                 done
             in
             enum 0
           end
           else begin
             let rng = ref (max 1 seed) in
             let next () =
               rng := lcg !rng;
               !rng
             in
             let ix =
               Array.init naxes (fun k ->
                   next () mod Array.length setters.(k))
             in
             note "coordinate descent from seed %d: %s" seed
               (describe (config_of ix));
             let score_at ix = eval_ix ix in
             let improved = ref true in
             while !improved do
               improved := false;
               for k = 0 to naxes - 1 do
                 let len = Array.length setters.(k) in
                 let cands =
                   List.sort_uniq compare [ 0; len / 2; len - 1; ix.(k) ]
                 in
                 let cur = ref (score_at ix) in
                 List.iter
                   (fun j ->
                     if j <> ix.(k) then begin
                       let trial = Array.copy ix in
                       trial.(k) <- j;
                       let s = score_at trial in
                       if better s !cur then begin
                         ix.(k) <- j;
                         cur := s;
                         improved := true
                       end
                     end)
                   cands
               done
             done;
             note "coarse optimum: %s" (describe (config_of ix));
             let improved = ref true in
             while !improved do
               improved := false;
               for k = 0 to naxes - 1 do
                 let len = Array.length setters.(k) in
                 List.iter
                   (fun dj ->
                     let j = ix.(k) + dj in
                     if j >= 0 && j < len then begin
                       let trial = Array.copy ix in
                       trial.(k) <- j;
                       if better (score_at trial) (score_at ix) then begin
                         ix.(k) <- j;
                         improved := true
                       end
                     end)
                   [ -1; 1 ]
               done
             done;
             note "refined optimum: %s" (describe (config_of ix))
           end
         with Budget -> note "budget exhausted after %d evaluations" !evals);
        match !best with
        | None ->
            (* budget >= 1 and at least one point exists, so the only
               way here is an empty space — already rejected above. *)
            Error "tune: nothing evaluated"
        | Some (c, s) ->
            note "best: %s" (describe c);
            Ok
              {
                t_config = c;
                t_score = s;
                t_evals = !evals;
                t_budget = budget;
                t_points = npoints;
                t_exhaustive = exhaustive;
                t_log = List.rev !log;
              }
      end

let search ?seed ?budget ?exhaustive_threshold ?extra_starts ob space =
  try search ?seed ?budget ?exhaustive_threshold ?extra_starts ob space
  with Fail e -> Error (Printf.sprintf "tune: objective failed: %s" e)

(* ------------------------------------------------------------------ *)
(* Measurement feedback *)

let profile ?duration_ms ?warmup_ms ?drain_ms ?workload ~platform ~graph
    ~input_pps () =
  let obs = Oclick_obs.create () in
  match
    Testbed.run ?duration_ms ?warmup_ms ?drain_ms ?workload ~obs ~domains:1
      ~platform ~graph ~input_pps ()
  with
  | Error e -> Error e
  | Ok _ -> Ok (Oclick_obs.cost_weights obs)

let region_shares ~weights graph =
  match Partition.regions graph with
  | Error e -> Error e
  | Ok regions ->
      let weight_of i =
        if i < Array.length weights && weights.(i) > 0 then weights.(i) else 1
      in
      let region_w r = List.fold_left (fun a i -> a + weight_of i) 0 r in
      let total =
        List.fold_left (fun a r -> a + region_w r) 0 regions
      in
      Ok
        (List.map
           (fun r ->
             (r, if total = 0 then 0.0 else float_of_int (region_w r) /. float_of_int total))
           regions)

let fusion_worthwhile ?(threshold = 0.15) shares =
  List.exists
    (fun (region, share) -> List.length region > 1 && share >= threshold)
    shares
