lib/runtime/hooks.ml: Oclick_packet
