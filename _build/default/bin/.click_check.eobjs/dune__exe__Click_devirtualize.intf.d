bin/click_devirtualize.mli:
