(* Classic bounded SPSC ring over a power-of-two slot array.

   The producer owns [tail] (writes a slot, then publishes by bumping
   tail); the consumer owns [head] (reads a slot, clears it so the ring
   never retains a reference to a consumed element, then bumps head).
   OCaml's [Atomic.get]/[Atomic.set] are sequentially consistent, which
   gives the publish/consume ordering directly. Each index is read-mostly
   for one side and write-mostly for the other, so the two atomics are
   kept in separately allocated cells with a spacer array between the
   record fields to keep them off one cache line.

   Slots hold elements directly rather than ['a option]: empty slots
   hold a caller-supplied dummy value, so a push publishes the element
   itself with no [Some] box — on the packet handoff path the ring moves
   a descriptor between domains without allocating a single word. *)

type 'a t = {
  slots : 'a array;
  dummy : 'a;  (* fills empty slots; never returned *)
  mask : int;
  cap : int;  (* enforced capacity, <= Array.length slots *)
  head : int Atomic.t;  (* next slot to pop (consumer-owned) *)
  _pad : int array;  (* spacer: keeps head and tail allocations apart *)
  tail : int Atomic.t;  (* next slot to fill (producer-owned) *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~dummy capacity =
  if capacity <= 0 then invalid_arg "Spsc.create";
  let n = pow2 capacity 1 in
  {
    slots = Array.make n dummy;
    dummy;
    mask = n - 1;
    cap = capacity;
    head = Atomic.make 0;
    _pad = Array.make 15 0;
    tail = Atomic.make 0;
  }

let capacity t = t.cap

let push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head >= t.cap then false
  else begin
    t.slots.(tail land t.mask) <- x;
    Atomic.set t.tail (tail + 1);
    true
  end

let pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.slots.(i) in
    t.slots.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some x
  end

(* Batch drain: one [tail] read covers the whole run, and [head] is
   published once at the end — the consumer's drain loop costs two
   atomic operations per batch instead of two per element. *)
let pop_into t dst max =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  let n = min (tail - head) (min max (Array.length dst)) in
  if n <= 0 then 0
  else begin
    for k = 0 to n - 1 do
      let i = (head + k) land t.mask in
      dst.(k) <- t.slots.(i);
      t.slots.(i) <- t.dummy
    done;
    Atomic.set t.head (head + n);
    n
  end

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let is_empty t = length t = 0
