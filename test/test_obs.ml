(* Tests for the per-element observability layer: trace ring bounds,
   the JSON layer and report schema, counter semantics under the plain
   driver, per-element packet conservation at several batch sizes, the
   obs-totals == testbed-ledger regression, counter reset between
   consecutive runs sharing one accumulator, and a differential check
   that observation changes no forwarding outcome. *)

module Obs = Oclick_obs
module Hooks = Oclick_runtime.Hooks
module Driver = Oclick_runtime.Driver
module Netdevice = Oclick_runtime.Netdevice
module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform
module Fault = Oclick_fault

let () = Oclick_elements.register_all ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- trace ring ------------------------------------------------------------- *)

let transfer_to idx =
  {
    Hooks.tr_src_idx = 0;
    tr_src_class = "A";
    tr_src_port = 0;
    tr_dst_idx = idx;
    tr_dst_class = "B";
    tr_dst_port = 0;
    tr_direct = false;
    tr_pull = false;
  }

let test_trace_ring_bounds () =
  (try
     ignore (Obs.Trace.create 0);
     Alcotest.fail "capacity 0 accepted"
   with Invalid_argument _ -> ());
  let t = Obs.create ~trace:4 () in
  let hooks = Obs.hooks t Hooks.null in
  let p = Packet.create 64 in
  for i = 1 to 10 do
    hooks.Hooks.on_transfer (transfer_to i) p
  done;
  match Obs.trace t with
  | None -> Alcotest.fail "trace enabled but absent"
  | Some tr ->
      check "capacity" 4 (Obs.Trace.capacity tr);
      check "seen counts overwritten events" 10 (Obs.Trace.seen tr);
      check "length is bounded" 4 (Obs.Trace.length tr);
      let evs = Obs.Trace.events tr in
      check "retains the last capacity events" 4 (List.length evs);
      List.iteri
        (fun i (ev : Obs.Trace.event) ->
          check "oldest first" (6 + i) ev.Obs.Trace.ev_seq;
          check "records destination" (7 + i) ev.Obs.Trace.ev_dst_idx)
        evs;
      Obs.reset t;
      check "reset clears the ring" 0 (Obs.Trace.seen tr)

(* --- json ------------------------------------------------------------------- *)

let test_json_round_trip () =
  let open Obs.Json in
  let v =
    Obj
      [
        ("name", String "a \"quoted\"\nvalue");
        ("n", Int (-42));
        ("x", Float 1.5);
        ("ok", Bool true);
        ("nothing", Null);
        ("xs", List [ Int 1; Obj [ ("y", Int 2) ]; List [] ]);
      ]
  in
  (match of_string (to_string v) with
  | Ok v' -> check_bool "round trip" true (v = v')
  | Error e -> Alcotest.failf "reparse: %s" e);
  List.iter
    (fun s ->
      check_bool
        (Printf.sprintf "rejects %S" s)
        true
        (Result.is_error (of_string s)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "{\"a\":1} trailing"; "'a'" ];
  match of_string "{\"a\": {\"b\": [1, 2]}}" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v -> (
      match Option.bind (member "a" v) (member "b") with
      | Some (List [ Int 1; Int 2 ]) -> ()
      | _ -> Alcotest.fail "member lookup")

(* --- counters under the plain driver ----------------------------------------- *)

let run_counted config =
  let obs = Obs.create () in
  let hooks = Obs.hooks obs Hooks.null in
  match Driver.of_string ~hooks config with
  | Error e -> Alcotest.failf "instantiate: %s" e
  | Ok d ->
      List.iter
        (fun i ->
          Obs.set_meta obs ~idx:i
            ~name:(Driver.element_at d i)#name
            ~cls:(Driver.element_at d i)#class_name)
        (List.init (Driver.size d) Fun.id);
      check_bool "idle" true (Driver.run_until_idle d);
      (obs, d)

let stats_of obs name =
  match List.find_opt (fun s -> s.Obs.s_name = name) (Obs.snapshot obs) with
  | Some s -> s
  | None -> Alcotest.failf "no stats for %s" name

let test_driver_counters () =
  let obs, _ =
    run_counted "src :: InfiniteSource(LIMIT 20) -> c :: Counter -> d :: Discard;"
  in
  let src = stats_of obs "src" and c = stats_of obs "c" and d = stats_of obs "d" in
  check "source emits" 20 src.Obs.s_out;
  check "source takes nothing in" 0 src.Obs.s_in;
  check "counter in" 20 c.Obs.s_in;
  check "counter out" 20 c.Obs.s_out;
  check "counter pushes" 20 c.Obs.s_pushes;
  check "discard in" 20 d.Obs.s_in;
  check "discard drops" 20 d.Obs.s_drops;
  check_bool "drop reason recorded" true
    (List.mem_assoc "discarded" d.Obs.s_drop_reasons);
  check_bool "global drop table matches" true
    (Obs.drop_reasons obs = [ ("discarded", 20) ]);
  check "port totals match" 20 (List.assoc 0 c.Obs.s_in_ports);
  check "total drops" 20 (Obs.total_drops obs)

(* --- per-element conservation through the IP router --------------------------- *)

let host_udp ~src_if ~dst_ip =
  Headers.Build.udp
    ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
    ~dst_eth:
      (Ethaddr.of_string_exn (Printf.sprintf "00:00:c0:00:%02x:01" src_if))
    ~src_ip:(Ipaddr.of_octets 10 0 src_if 2)
    ~dst_ip:(Ipaddr.of_string_exn dst_ip)
    ()

(* Every element's books must balance: packets in (hooked transfers in,
   spawns, and packets sourced from a device or thin air) equal packets
   out (hooked transfers out, drops, packets still held, and packets
   handed to a device). Checked per element from the observability
   snapshot plus the element's own statistics — at several batch sizes,
   since scalar and batched transfers take different accounting paths. *)
let conservation_round ~batch =
  let obs = Obs.create () in
  let hooks = Obs.hooks obs Hooks.null in
  let devs =
    Array.init 2 (fun i ->
        new Netdevice.queue_device (Printf.sprintf "eth%d" i) ())
  in
  let devices = Array.to_list (Array.map (fun d -> (d :> Netdevice.t)) devs) in
  let graph =
    Oclick.Ip_router.graph
      (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 2))
  in
  let d =
    match Driver.instantiate ~hooks ~devices ~batch graph with
    | Ok d -> d
    | Error e -> Alcotest.failf "instantiate: %s" e
  in
  List.iter
    (fun i ->
      Obs.set_meta obs ~idx:i
        ~name:(Driver.element_at d i)#name
        ~cls:(Driver.element_at d i)#class_name)
    (List.init (Driver.size d) Fun.id);
  let injected = ref 0 in
  for k = 1 to 60 do
    let iface = k mod 2 in
    let dst_ip = if k mod 3 = 0 then "10.0.0.2" else "10.0.1.2" in
    incr injected;
    devs.(iface)#inject (host_udp ~src_if:iface ~dst_ip);
    if k mod 5 = 0 then ignore (Driver.run_tasks_once d)
  done;
  check_bool "router goes idle" true (Driver.run_until_idle d);
  let collected = ref 0 in
  Array.iter
    (fun dev ->
      let rec drain () =
        match dev#collect with Some _ -> incr collected; drain () | None -> ()
      in
      drain ())
    devs;
  let spawns = ref 0 and residual = ref 0 in
  List.iter
    (fun s ->
      spawns := !spawns + s.Obs.s_spawns;
      let st = (Driver.element_at d s.Obs.s_idx)#stats in
      let stat k = Option.value ~default:0 (List.assoc_opt k st) in
      let sourced =
        match s.Obs.s_class with
        | "PollDevice" | "FromDevice" -> stat "received"
        | "InfiniteSource" | "RatedSource" -> stat "sent"
        | _ -> 0
      in
      let transmitted =
        match s.Obs.s_class with "ToDevice" -> stat "sent" | _ -> 0
      in
      let held = stat "length" + stat "pending" in
      residual := !residual + held;
      let inflow = s.Obs.s_in + s.Obs.s_spawns + sourced in
      let outflow = s.Obs.s_out + s.Obs.s_drops + held + transmitted in
      if inflow <> outflow then
        Alcotest.failf
          "batch %d: %s (%s): %d in + %d spawned + %d sourced <> %d out + %d \
           dropped + %d held + %d transmitted"
          batch s.Obs.s_name s.Obs.s_class s.Obs.s_in s.Obs.s_spawns sourced
          s.Obs.s_out s.Obs.s_drops held transmitted)
    (Obs.snapshot obs);
  (* and globally: every injected or spawned packet was delivered,
     dropped through the hooks, or is still held in some element *)
  check
    (Printf.sprintf "batch %d: global conservation" batch)
    (!injected + !spawns)
    (!collected + Obs.total_drops obs + !residual)

let test_element_conservation () =
  List.iter (fun batch -> conservation_round ~batch) [ 1; 8; 32 ]

(* --- obs totals vs the testbed ledger ----------------------------------------- *)

let router_graph n =
  Oclick.Ip_router.graph
    (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces n))

let testbed_run ?obs ?fault ?(batch = 1) () =
  match
    Testbed.run ~duration_ms:15 ~warmup_ms:0 ?obs ?fault ~batch
      ~platform:Platform.p0 ~graph:(router_graph 8) ~input_pps:150_000 ()
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "testbed: %s" e

(* With no warmup the observation window is the whole run, so the
   per-element columns must reproduce the ledger totals exactly — at
   every batch size, since scalar and batched transfers are charged
   through different code paths. *)
let test_obs_matches_ledger () =
  List.iter
    (fun batch ->
      let obs = Obs.create () in
      let r = testbed_run ~obs ~batch () in
      let tag fmt = Printf.sprintf ("batch %d: " ^^ fmt) batch in
      check (tag "per-element ns sum to the aggregate")
        (int_of_float r.Testbed.r_model_ns)
        (Obs.total_sim_ns obs);
      check_bool
        (tag "drop tables agree")
        true
        (Obs.drop_reasons obs = r.Testbed.r_drop_reasons_total);
      check (tag "hook-counted drops equal the ledger's")
        r.Testbed.r_conservation.Testbed.cv_hook_drops
        (Obs.total_drops obs))
    [ 1; 8; 32 ]

(* An optimizer pass can leave dead slots in the router it returns, so
   its indices differ from the dense ones the driver instantiates (and
   every hook reports). Regression: on such a graph the metadata and
   the NIC cost attribution must land on the same rows as the transfer
   counters — each device element carries both its packets and its
   cycles, on one row with the right class. *)
let test_sparse_graph_attribution () =
  let opt =
    Oclick.Pipeline.devirtualize (Oclick.Pipeline.fastclassify (router_graph 8))
  in
  let obs = Obs.create () in
  (match
     Testbed.run ~duration_ms:15 ~warmup_ms:0 ~obs ~platform:Platform.p0
       ~graph:opt ~input_pps:150_000 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "testbed: %s" e);
  let polls =
    List.filter
      (fun s ->
        Oclick_hw.Cost_model.strip_generated s.Obs.s_class = "PollDevice")
      (Obs.snapshot obs)
  in
  check "all poll devices have rows" 8 (List.length polls);
  List.iter
    (fun s ->
      check_bool
        (Printf.sprintf "%s moved packets" s.Obs.s_name)
        true (s.Obs.s_out > 0);
      check_bool
        (Printf.sprintf "%s was charged its NIC work" s.Obs.s_name)
        true
        (s.Obs.s_sim_ns > 0))
    polls

(* --- reset between consecutive runs ------------------------------------------- *)

let test_reset_between_runs () =
  let obs = Obs.create () in
  let _ = testbed_run ~obs () in
  let first = Obs.snapshot obs in
  let first_ns = Obs.total_sim_ns obs in
  let r = testbed_run ~obs () in
  check_bool "second run's snapshot is identical, not accumulated" true
    (Obs.snapshot obs = first);
  check "second run's total is identical" first_ns (Obs.total_sim_ns obs);
  check "still equal to the aggregate" (int_of_float r.Testbed.r_model_ns)
    (Obs.total_sim_ns obs)

(* --- observation is free of side effects --------------------------------------- *)

let test_observation_changes_nothing () =
  let bare = testbed_run () in
  let obs = Obs.create ~trace:64 () in
  let observed = testbed_run ~obs () in
  check_bool "identical results with observation on" true (bare = observed);
  let plan =
    match
      Fault.Plan.parse
        "seed=42,corrupt=0.01,truncate=0.005,ttl0=0.02,badcksum=0.03"
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  let bare_f = testbed_run ~fault:plan () in
  let obs' = Obs.create ~trace:64 () in
  let observed_f = testbed_run ~obs:obs' ~fault:plan () in
  check_bool "identical results under a fault plan" true (bare_f = observed_f);
  check_bool "faults actually fired" true (bare_f.Testbed.r_fault_counts <> [])

(* --- report rendering and schema ----------------------------------------------- *)

let test_report_schema () =
  let obs = Obs.create () in
  let r = testbed_run ~obs () in
  let mhz = float_of_int Platform.p0.Platform.p_cpu_mhz in
  let j = Obs.Report.json (Obs.Report.Sim mhz) obs in
  (match Obs.Report.validate j with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  (* the schema check catches a tampered total *)
  (match j with
  | Obs.Json.Obj kvs ->
      let broken =
        Obs.Json.Obj
          (List.map
             (function
               | "total_cost", _ -> ("total_cost", Obs.Json.Float 1.0)
               | kv -> kv)
             kvs)
      in
      check_bool "tampered total rejected" true
        (Result.is_error (Obs.Report.validate broken))
  | _ -> Alcotest.fail "report is not an object");
  (match Obs.Json.member "total_ns" j with
  | Some (Obs.Json.Int ns) ->
      check "json total equals the aggregate" (int_of_float r.Testbed.r_model_ns)
        ns
  | _ -> Alcotest.fail "total_ns missing");
  let table = Obs.Report.table (Obs.Report.Sim mhz) obs in
  check_bool "table has a total row" true
    (List.exists
       (fun l -> String.length l >= 5 && String.sub l 0 5 = "total")
       (String.split_on_char '\n' table))

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [ Alcotest.test_case "ring bounds" `Quick test_trace_ring_bounds ] );
      ("json", [ Alcotest.test_case "round trip" `Quick test_json_round_trip ]);
      ( "counters",
        [
          Alcotest.test_case "driver counters" `Quick test_driver_counters;
          Alcotest.test_case "per-element conservation at batch 1/8/32" `Quick
            test_element_conservation;
        ] );
      ( "testbed",
        [
          Alcotest.test_case "obs totals equal the ledger" `Quick
            test_obs_matches_ledger;
          Alcotest.test_case "attribution on a sparse optimized graph" `Quick
            test_sparse_graph_attribution;
          Alcotest.test_case "reset between runs" `Quick test_reset_between_runs;
          Alcotest.test_case "observation changes nothing" `Quick
            test_observation_changes_nothing;
        ] );
      ( "report",
        [ Alcotest.test_case "schema" `Quick test_report_schema ] );
    ]
