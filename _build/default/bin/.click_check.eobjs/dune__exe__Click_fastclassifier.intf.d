bin/click_fastclassifier.mli:
