(* A binary min-heap of (time, seq, thunk); seq breaks ties so the queue
   is stable. *)

type event = { ev_time : int; ev_seq : int; ev_fn : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : int;
  mutable seq : int;
}

let dummy = { ev_time = 0; ev_seq = 0; ev_fn = ignore }
let create () = { heap = Array.make 256 dummy; size = 0; clock = 0; seq = 0 }
let now t = t.clock

let before a b =
  a.ev_time < b.ev_time || (a.ev_time = b.ev_time && a.ev_seq < b.ev_seq)

let swap t i j =
  let x = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule t ~at fn =
  let at = max at t.clock in
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- { ev_time = at; ev_seq = t.seq; ev_fn = fn };
  t.seq <- t.seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let schedule_after t ~delay fn = schedule t ~at:(t.clock + max 0 delay) fn

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  sift_down t 0;
  top

let run_until t horizon =
  let continue = ref true in
  while !continue do
    if t.size = 0 || t.heap.(0).ev_time > horizon then continue := false
    else begin
      let ev = pop t in
      t.clock <- max t.clock ev.ev_time;
      ev.ev_fn ()
    end
  done;
  t.clock <- max t.clock horizon

let pending t = t.size
