(** The CPU cycle-cost model.

    Maps runtime instrumentation events (packet transfers, element entry,
    data-dependent work) to Pentium III cycles. The constants are
    calibrated against the paper's published measurements — the 1160-cycle
    / 1657 ns base forwarding path, the 701/547 ns device interactions, the
    7-cycle predicted and multi-dozen-cycle mispredicted virtual calls, the
    112 ns memory fetch (§3, §8.2) — while all *relative* effects (which
    optimization saves what) emerge from the model's structure: the BTB
    decides transfer cost, tree size decides classification cost, the
    element graph decides transfer count.

    An instruction-cache model charges extra misses when the configuration's
    code footprint exceeds the L1 instruction cache: this is the paper's
    caveat that "code expansion may make complete devirtualization
    impractical" (§6.1). *)

(** Accounting categories of Figure 8. *)
type category = Receive | Forward | Transmit

type t

val create : ?l1i_bytes:int -> unit -> t
(** [l1i_bytes] defaults to the Pentium III's 16 KB. *)

val btb : t -> Btb.t

val transfer_cycles : t -> Oclick_runtime.Hooks.transfer -> int
(** Consults and updates the BTB. *)

val work_cycles : Oclick_runtime.Hooks.work -> int

val element_cycles : t -> cls:string -> int
(** Per-packet cost of one element's specialized or generic code, charged
    when a packet enters it. Devirtualized class names resolve to their
    original class. Includes i-cache pressure once the footprint of the
    classes seen so far exceeds L1i. *)

val strip_generated : string -> string
(** Resolve a generated class name ([FastClassifier@@...],
    [Devirtualize@@ORIG@@N]) to the original class whose semantics it
    carries; other names pass through. *)

val category_of_class : string -> category

val structural_miss_cycles : category -> int
(** The paper's four per-packet cache misses: one RX-descriptor fetch
    (receive), two header fetches (forward), one TX-descriptor cleanup
    (transmit); each costs the 112 ns memory fetch. *)

val memory_fetch_cycles : int
val instructions_of_class : string -> int
(** Rough retired-instruction footprint per element per packet, for the
    §8.2 "988 instructions" report. *)

val note_code_class : t -> string -> unit
(** Record that a code class is part of the installed configuration (for
    the i-cache footprint). *)

val code_footprint_bytes : t -> int
