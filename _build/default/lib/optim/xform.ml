module Ast = Oclick_lang.Ast
module Args = Oclick_lang.Args
module Router = Oclick_graph.Router

type pair = {
  xf_name : string;
  xf_formals : string list;
  xf_pattern : Ast.t;
  xf_replacement : Ast.t;
}

(* --- pattern parsing --------------------------------------------------- *)

let strip_suffix s suffix =
  let n = String.length s and m = String.length suffix in
  if n > m && String.sub s (n - m) m = suffix then Some (String.sub s 0 (n - m))
  else None

let parse_patterns text =
  match Oclick_lang.Parser.parse text with
  | Error e -> Error e
  | Ok ast -> (
      let classes = ast.Ast.classes in
      let pattern_classes =
        List.filter_map
          (fun (name, c) ->
            match strip_suffix name "Pattern" with
            | Some base -> Some (base, c)
            | None -> None)
          classes
      in
      let build (base, (pat : Ast.compound)) =
        match List.assoc_opt (base ^ "Replacement") classes with
        | None ->
            Error (Printf.sprintf "pattern %S has no %sReplacement" base base)
        | Some rep -> (
            match
              ( Oclick_lang.Flatten.flatten pat.Ast.body,
                Oclick_lang.Flatten.flatten rep.Ast.body )
            with
            | Ok pbody, Ok rbody ->
                Ok
                  {
                    xf_name = base;
                    xf_formals = pat.Ast.formals;
                    xf_pattern = pbody;
                    xf_replacement = rbody;
                  }
            | Error e, _ | _, Error e ->
                Error (Printf.sprintf "pattern %S: %s" base e))
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | pc :: rest -> (
            match build pc with
            | Ok p -> go (p :: acc) rest
            | Error e -> Error e)
      in
      match go [] pattern_classes with
      | Ok [] -> Error "no ...Pattern element classes found"
      | r -> r)

(* --- configuration matching ------------------------------------------- *)

let is_var tok = String.length tok > 1 && tok.[0] = '$'

let tokens s = List.filter (( <> ) "") (String.split_on_char ' ' (String.trim s))

let bind bindings var value =
  match List.assoc_opt var bindings with
  | Some existing -> if String.equal existing value then Some bindings else None
  | None -> Some ((var, value) :: bindings)

let match_config_arg ~bindings ~pattern ~subject =
  match tokens pattern with
  | [ v ] when is_var v -> bind bindings v (String.trim subject)
  | ptoks ->
      let stoks = tokens subject in
      if List.length ptoks <> List.length stoks then None
      else
        List.fold_left2
          (fun acc pt st ->
            match acc with
            | None -> None
            | Some bindings ->
                if is_var pt then bind bindings pt st
                else if String.equal pt st then Some bindings
                else None)
          (Some bindings) ptoks stoks

let match_config ~bindings ~pattern ~subject =
  let pargs = Args.split pattern and sargs = Args.split subject in
  match pargs with
  | [ v ] when is_var (String.trim v) && tokens v = [ String.trim v ] ->
      (* A pattern configuration that is a single bare variable captures
         the whole subject configuration, whatever its arity. *)
      bind bindings (String.trim v) (String.trim subject)
  | _ ->
  if List.length sargs > List.length pargs then None
  else begin
    (* Missing trailing subject arguments match variable pattern args as
       the empty string. *)
    let sargs =
      sargs @ List.init (List.length pargs - List.length sargs) (fun _ -> "")
    in
    List.fold_left2
      (fun acc parg sarg ->
        match acc with
        | None -> None
        | Some bindings -> match_config_arg ~bindings ~pattern:parg ~subject:sarg)
      (Some bindings) pargs sargs
  end

(* --- compiled patterns ------------------------------------------------- *)

type pconn = { pc_from : int; pc_from_port : int; pc_to : int; pc_to_port : int }

type compiled = {
  c_pair : pair;
  c_names : string array;
  c_classes : string array;
  c_configs : string array;
  c_conns : pconn list;
  c_in : (int * int * int) list; (* pattern input port, elem, elem port *)
  c_out : (int * int * int) list; (* elem, elem port, pattern output port *)
  c_order : int array;
}

let compile (p : pair) =
  let body = p.xf_pattern in
  let elems = Array.of_list body.Ast.elements in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i (e : Ast.element) -> Hashtbl.replace index e.e_name i) elems;
  let conns = ref [] and ins = ref [] and outs = ref [] in
  List.iter
    (fun (c : Ast.connection) ->
      match (c.c_from, c.c_to) with
      | "input", "output" ->
          invalid_arg
            (Printf.sprintf "pattern %s: input->output passthrough unsupported"
               p.xf_name)
      | "input", other ->
          ins := (c.c_from_port, Hashtbl.find index other, c.c_to_port) :: !ins
      | other, "output" ->
          outs := (Hashtbl.find index other, c.c_from_port, c.c_to_port) :: !outs
      | a, b ->
          conns :=
            {
              pc_from = Hashtbl.find index a;
              pc_from_port = c.c_from_port;
              pc_to = Hashtbl.find index b;
              pc_to_port = c.c_to_port;
            }
            :: !conns)
    body.Ast.connections;
  (* Assignment order: breadth-first over pattern adjacency so each new
     element (after the first) is adjacent to an assigned one — the
     adjacency check then prunes candidates immediately. *)
  let n = Array.length elems in
  let adj = Array.make n [] in
  List.iter
    (fun c ->
      adj.(c.pc_from) <- c.pc_to :: adj.(c.pc_from);
      adj.(c.pc_to) <- c.pc_from :: adj.(c.pc_to))
    !conns;
  let order = ref [] and seen = Array.make n false in
  let rec bfs queue =
    match queue with
    | [] -> ()
    | i :: rest ->
        if seen.(i) then bfs rest
        else begin
          seen.(i) <- true;
          order := i :: !order;
          bfs (rest @ adj.(i))
        end
  in
  for i = 0 to n - 1 do
    if not seen.(i) then bfs [ i ]
  done;
  {
    c_pair = p;
    c_names = Array.map (fun (e : Ast.element) -> e.e_name) elems;
    c_classes =
      Array.map (fun (e : Ast.element) -> Ast.class_name e.e_class) elems;
    c_configs = Array.map (fun (e : Ast.element) -> e.e_config) elems;
    c_conns = !conns;
    c_in = !ins;
    c_out = !outs;
    c_order = Array.of_list (List.rev !order);
  }

(* --- matching ---------------------------------------------------------- *)

type match_result = {
  m_assignment : int array; (* pattern index -> subject index *)
  m_bindings : (string * string) list;
}

let subject_has_conn router ~from_idx ~from_port ~to_idx ~to_port =
  List.exists
    (fun (p, j, jp) -> p = from_port && j = to_idx && jp = to_port)
    (Router.outputs_of router from_idx)

let find_match router (cp : compiled) : match_result option =
  let n = Array.length cp.c_names in
  let assignment = Array.make n (-1) in
  let used = Hashtbl.create 8 in
  let exception Found of match_result in
  (* Verification of a complete assignment: internal closure and allowed
     external attachment points. *)
  let verify bindings =
    let inv = Hashtbl.create 8 in
    Array.iteri (fun pi si -> Hashtbl.replace inv si pi) assignment;
    let matched si = Hashtbl.mem inv si in
    let ok = ref true in
    (* Every subject connection among matched elements must appear in the
       pattern; every boundary connection must hit an attachment point. *)
    Array.iter
      (fun si ->
        List.iter
          (fun (port, tj, tport) ->
            if matched tj then begin
              let pi = Hashtbl.find inv si and pj = Hashtbl.find inv tj in
              if
                not
                  (List.exists
                     (fun c ->
                       c.pc_from = pi && c.pc_from_port = port && c.pc_to = pj
                       && c.pc_to_port = tport)
                     cp.c_conns)
              then ok := false
            end
            else if
              not
                (List.exists
                   (fun (pe, pport, _m) ->
                     pe = Hashtbl.find inv si && pport = port)
                   cp.c_out)
            then ok := false)
          (Router.outputs_of router si);
        List.iter
          (fun (port, fj, _fport) ->
            if not (matched fj) then
              if
                not
                  (List.exists
                     (fun (_m, pe, pport) ->
                       pe = Hashtbl.find inv si && pport = port)
                     cp.c_in)
              then ok := false)
          (Router.inputs_of router si))
      assignment;
    (* Pattern connections must all be present (multiplicity: presence was
       checked during assignment; duplicates in patterns are not used). *)
    if !ok then Some { m_assignment = Array.copy assignment; m_bindings = bindings }
    else None
  in
  let rec assign k bindings =
    if k = n then begin
      match verify bindings with
      | Some m -> raise (Found m)
      | None -> ()
    end
    else begin
      let pi = cp.c_order.(k) in
      List.iter
        (fun si ->
          if
            (not (Hashtbl.mem used si))
            && String.equal (Router.class_of router si) cp.c_classes.(pi)
          then begin
            match
              match_config ~bindings ~pattern:cp.c_configs.(pi)
                ~subject:(Router.config router si)
            with
            | None -> ()
            | Some bindings' ->
                (* Adjacency consistency with already-assigned elements. *)
                let consistent =
                  List.for_all
                    (fun c ->
                      let check from_pi from_port to_pi to_port =
                        let fs = if from_pi = pi then si else assignment.(from_pi)
                        and ts = if to_pi = pi then si else assignment.(to_pi) in
                        if fs < 0 || ts < 0 then true
                        else
                          subject_has_conn router ~from_idx:fs
                            ~from_port ~to_idx:ts ~to_port
                      in
                      if c.pc_from = pi || c.pc_to = pi then
                        check c.pc_from c.pc_from_port c.pc_to c.pc_to_port
                      else true)
                    cp.c_conns
                in
                if consistent then begin
                  assignment.(pi) <- si;
                  Hashtbl.add used si ();
                  assign (k + 1) bindings';
                  Hashtbl.remove used si;
                  assignment.(pi) <- -1
                end
          end)
        (Router.indices router)
    end
  in
  match assign 0 [] with () -> None | exception Found m -> Some m

(* --- replacement -------------------------------------------------------- *)

exception Apply_error of string

let apply router (cp : compiled) (m : match_result) =
  let inv = Hashtbl.create 8 in
  Array.iteri (fun pi si -> Hashtbl.replace inv si pi) m.m_assignment;
  let matched si = Hashtbl.mem inv si in
  (* External connections, grouped by attachment port. *)
  let ext_in = ref [] (* (pattern input port, src idx, src port) *)
  and ext_out = ref [] (* (pattern output port, dst idx, dst port) *) in
  Array.iter
    (fun si ->
      let pi = Hashtbl.find inv si in
      List.iter
        (fun (port, fj, fport) ->
          if not (matched fj) then begin
            match
              List.find_opt (fun (_m, pe, pp) -> pe = pi && pp = port) cp.c_in
            with
            | Some (mport, _, _) -> ext_in := (mport, fj, fport) :: !ext_in
            | None -> raise (Apply_error "unattached external input")
          end)
        (Router.inputs_of router si);
      List.iter
        (fun (port, tj, tport) ->
          if not (matched tj) then begin
            match
              List.find_opt (fun (pe, pp, _m) -> pe = pi && pp = port) cp.c_out
            with
            | Some (_, _, mport) -> ext_out := (mport, tj, tport) :: !ext_out
            | None -> raise (Apply_error "unattached external output")
          end)
        (Router.outputs_of router si))
    m.m_assignment;
  (* Remove the matched subgraph. *)
  Array.iter (fun si -> Router.remove_element router si) m.m_assignment;
  (* Instantiate the replacement. *)
  let rep = cp.c_pair.xf_replacement in
  let name_map = Hashtbl.create 8 in
  List.iter
    (fun (e : Ast.element) ->
      let fresh = Router.fresh_name router e.e_name in
      let config = Args.substitute m.m_bindings e.e_config in
      let idx =
        Router.add_element router ~name:fresh
          ~cls:(Ast.class_name e.e_class)
          ~config
      in
      Hashtbl.replace name_map e.e_name idx)
    rep.Ast.elements;
  let relem name =
    match Hashtbl.find_opt name_map name with
    | Some i -> i
    | None -> raise (Apply_error (Printf.sprintf "unknown replacement element %S" name))
  in
  List.iter
    (fun (c : Ast.connection) ->
      match (c.Ast.c_from, c.Ast.c_to) with
      | "input", "output" ->
          (* join externals straight through *)
          List.iter
            (fun (mi, src, sport) ->
              if mi = c.c_from_port then
                List.iter
                  (fun (mo, dst, dport) ->
                    if mo = c.c_to_port then
                      Router.add_hookup router
                        {
                          Router.from_idx = src;
                          from_port = sport;
                          to_idx = dst;
                          to_port = dport;
                        })
                  !ext_out)
            !ext_in
      | "input", other ->
          List.iter
            (fun (mi, src, sport) ->
              if mi = c.c_from_port then
                Router.add_hookup router
                  {
                    Router.from_idx = src;
                    from_port = sport;
                    to_idx = relem other;
                    to_port = c.c_to_port;
                  })
            !ext_in
      | other, "output" ->
          List.iter
            (fun (mo, dst, dport) ->
              if mo = c.c_to_port then
                Router.add_hookup router
                  {
                    Router.from_idx = relem other;
                    from_port = c.c_from_port;
                    to_idx = dst;
                    to_port = dport;
                  })
            !ext_out
      | a, b ->
          Router.add_hookup router
            {
              Router.from_idx = relem a;
              from_port = c.c_from_port;
              to_idx = relem b;
              to_port = c.c_to_port;
            })
    rep.Ast.connections

(* --- driver -------------------------------------------------------------- *)

let run ~patterns ?(max_replacements = 10_000) source =
  let router = Router.copy source in
  match List.map compile patterns with
  | exception Invalid_argument msg -> Error msg
  | compiled -> (
      let count = ref 0 in
      let rec loop () =
        if !count < max_replacements then begin
          let progress =
            List.exists
              (fun cp ->
                match find_match router cp with
                | Some m ->
                    apply router cp m;
                    incr count;
                    true
                | None -> false)
              compiled
          in
          if progress then loop ()
        end
      in
      match loop () with
      | () -> Ok (router, !count)
      | exception Apply_error msg -> Error msg)

module Internal = struct
  let match_config_arg = match_config_arg
end
