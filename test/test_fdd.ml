(* Differential tests for the cross-element FDD fusion pass (lib/fdd):
   the fused datapath must be observationally identical to the compiled
   and the interpreted one — same emitted frames in order, same drop
   reasons, same spawns and contained faults, same conservation ledger,
   same per-element obs ledger — across batch sizes, domain counts, and
   seeded fault injection. Plus the live route add/remove semantics the
   fused Route leaf must track, and the fused-region stats surface. *)

module Fault = Oclick_fault
module Driver = Oclick_runtime.Driver
module Hooks = Oclick_runtime.Hooks
module Netdevice = Oclick_runtime.Netdevice
module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr
module Router = Oclick_graph.Router
module Testbed = Oclick_hw.Testbed
module Platform = Oclick_hw.Platform
module Obs = Oclick_obs
module Fdd = Oclick_fdd

let () = Oclick_elements.register_all ()
let () = Oclick_compile.register ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let batches = [ 1; 8; 32 ]

(* The three datapaths under comparison. [`Fuse] deliberately passes
   [~compile:false ~fuse:true] to exercise fuse-implies-compile. *)
let modes = [ `Interp; `Compile; `Fuse ]

let mode_name = function
  | `Interp -> "interp"
  | `Compile -> "compiled"
  | `Fuse -> "fused"

let mode_flags = function
  | `Interp -> (false, false)
  | `Compile -> (true, false)
  | `Fuse -> (false, true)

let ip_router_graph ?(n = 2) () =
  Oclick.Ip_router.graph
    (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces n))

(* --- generic outcome harness over any device-fed configuration --------- *)

(* Replays one deterministic traffic script against a graph instantiated
   in any of the three modes and snapshots every observable outcome. *)

type outcome = {
  o_emitted : string list array;  (** raw frames per device, in order *)
  o_drops : (string * int) list;
  o_spawns : int;
  o_faults : int;
  o_residual : int;
  o_injected : int;
}

let frame_bytes p = Packet.to_string p

(* Same rule oclick-run uses to decide which simulated devices a
   configuration needs. *)
let device_names graph =
  let names = ref [] in
  List.iter
    (fun i ->
      match Router.class_of graph i with
      | "PollDevice" | "FromDevice" | "ToDevice" -> (
          match Oclick_lang.Args.split (Router.config graph i) with
          | d :: _ when not (List.mem d !names) -> names := d :: !names
          | _ -> ())
      | _ -> ())
    (Router.indices graph);
  List.rev !names

let play ~ctx ~batch ~mode ~script graph =
  let compile, fuse = mode_flags mode in
  let drops = Hashtbl.create 8 and spawns = ref 0 and faults = ref 0 in
  let hooks =
    {
      Hooks.null with
      Hooks.on_drop =
        (fun ~idx:_ ~cls:_ ~reason _ ->
          Hashtbl.replace drops reason
            (1 + Option.value ~default:0 (Hashtbl.find_opt drops reason)));
      on_spawn = (fun ~idx:_ ~cls:_ _ -> incr spawns);
      on_fault = (fun ~idx:_ ~cls:_ ~reason:_ -> incr faults);
    }
  in
  let devs =
    Array.of_list
      (List.map
         (fun name -> new Netdevice.queue_device name ())
         (device_names graph))
  in
  let devices =
    Array.to_list (Array.map (fun d -> (d :> Netdevice.t)) devs)
  in
  let d =
    match Driver.instantiate ~hooks ~devices ~batch ~compile ~fuse graph with
    | Ok d -> d
    | Error e -> Alcotest.failf "%s: instantiate (%s): %s" ctx (mode_name mode) e
  in
  let injected = ref 0 in
  List.iter
    (fun (iface, p) ->
      incr injected;
      devs.(iface mod Array.length devs)#inject (Packet.clone p))
    script;
  check_bool
    (Printf.sprintf "%s (%s): router goes idle" ctx (mode_name mode))
    true (Driver.run_until_idle d);
  let emitted =
    Array.map
      (fun (dev : Netdevice.queue_device) ->
        let rec drain acc =
          match dev#collect with
          | Some p -> drain (frame_bytes p :: acc)
          | None -> List.rev acc
        in
        drain [])
      devs
  in
  let residual = ref 0 in
  for i = 0 to Driver.size d - 1 do
    List.iter
      (fun (k, v) ->
        if k = "length" || k = "pending" then residual := !residual + v)
      (Driver.element_at d i)#stats
  done;
  {
    o_emitted = emitted;
    o_drops =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) drops []);
    o_spawns = !spawns;
    o_faults = !faults;
    o_residual = !residual;
    o_injected = !injected;
  }

let check_outcomes_equal ~ctx a b =
  let label s = Printf.sprintf "%s: %s" ctx s in
  Alcotest.(check (list (pair string int))) (label "drop reasons") a.o_drops
    b.o_drops;
  check (label "spawns") a.o_spawns b.o_spawns;
  check (label "contained faults") a.o_faults b.o_faults;
  check (label "residual") a.o_residual b.o_residual;
  Array.iteri
    (fun i frames ->
      Alcotest.(check (list string))
        (label (Printf.sprintf "frames out dev%d" i))
        frames b.o_emitted.(i))
    a.o_emitted;
  List.iter
    (fun (o : outcome) ->
      let births = o.o_injected + o.o_spawns in
      let drops = List.fold_left (fun a (_, n) -> a + n) 0 o.o_drops in
      let emitted =
        Array.fold_left (fun a l -> a + List.length l) 0 o.o_emitted
      in
      check (label "conservation") births (emitted + drops + o.o_residual))
    [ a; b ]

(* Three-way comparison: interpreted is ground truth, compiled and fused
   must each replay it exactly (hence fused == compiled by transitivity,
   checked once more directly to localize failures). *)
let check_three_way ~ctx ~batch ~script graph =
  let out mode = play ~ctx:(Printf.sprintf "%s b%d" ctx batch) ~batch ~mode ~script graph in
  let interp = out `Interp and compiled = out `Compile and fused = out `Fuse in
  check_outcomes_equal
    ~ctx:(Printf.sprintf "%s b%d interp/compiled" ctx batch)
    interp compiled;
  check_outcomes_equal
    ~ctx:(Printf.sprintf "%s b%d interp/fused" ctx batch)
    interp fused;
  check_outcomes_equal
    ~ctx:(Printf.sprintf "%s b%d compiled/fused" ctx batch)
    compiled fused

(* --- seeded traffic scripts -------------------------------------------- *)

(* A deterministic mix of well-formed UDP (injector-mangled) and raw
   random bytes, addressed for the standard n-interface IP router
   configurations. *)
let make_script ~seed ~ndev =
  let plan =
    match
      Fault.Plan.parse ~seed
        "ttl0=0.15,badcksum=0.15,badlen=0.1,runt=0.1,corrupt=0.3,truncate=0.2"
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  let inj = Fault.Injector.create plan in
  let rng = Fault.Injector.stream inj "fuzz-bytes" in
  let steps = ref [] in
  for _ = 1 to 40 do
    let iface = Fault.Rng.int rng ndev in
    let p =
      if Fault.Rng.coin rng 0.3 then begin
        let len = 1 + Fault.Rng.int rng 200 in
        let p = Packet.create len in
        for i = 0 to len - 1 do
          Packet.set_u8 p i (Fault.Rng.int rng 256)
        done;
        p
      end
      else begin
        let dst = Fault.Rng.int rng ndev in
        let p =
          Headers.Build.udp
            ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
            ~dst_eth:
              (Ethaddr.of_string_exn
                 (Printf.sprintf "00:00:c0:00:%02x:01" iface))
            ~src_ip:(Ipaddr.of_octets 10 0 iface 2)
            ~dst_ip:(Ipaddr.of_octets 10 0 dst 2)
            ()
        in
        Fault.Injector.mangle_tx inj ~stream:"fuzz-tx" p;
        Fault.Injector.mangle_wire inj ~stream:"fuzz-tx" p;
        p
      end
    in
    steps := (iface, p) :: !steps
  done;
  List.rev !steps

(* Short frames only: every length from empty to just past the Ethernet
   header plus a band around the deep classifier offsets, so tree tests
   read bytes at and beyond the truncated end on every path. *)
let short_packet_script ~seed =
  let rng = Fault.Rng.create ~seed in
  let steps = ref [] in
  for len = 0 to 48 do
    for variant = 0 to 2 do
      let p = Packet.create len in
      for i = 0 to len - 1 do
        Packet.set_u8 p i (Fault.Rng.int rng 256)
      done;
      (* bias some frames toward the interesting branches *)
      if len > 13 && variant > 0 then begin
        Packet.set_u8 p 12 0x08;
        Packet.set_u8 p 13 0x00
      end;
      if len > 30 && variant = 2 then Packet.set_u8 p 30 (1 + Fault.Rng.int rng 2);
      (* all into eth0 — the cascade reads from one device only *)
      steps := (0, p) :: !steps
    done
  done;
  List.rev !steps

(* --- pure-runtime fuzz differential on the standard router ------------- *)

let test_fuzz_differential () =
  List.iter
    (fun batch ->
      for seed = 1 to 6 do
        check_three_way
          ~ctx:(Printf.sprintf "ip-router seed %d" seed)
          ~batch
          ~script:(make_script ~seed ~ndev:2)
          (ip_router_graph ())
      done)
    batches

(* --- every example configuration --------------------------------------- *)

let example_configs () =
  (* cwd is test/ under `dune runtest`, the workspace root under
     `dune exec test/test_fdd.exe`. *)
  let dir =
    if Sys.file_exists "../examples/configs" then "../examples/configs"
    else "examples/configs"
  in
  Sys.readdir dir
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".click")
  |> List.sort compare
  |> List.map (fun f ->
         let ic = open_in_bin (Filename.concat dir f) in
         let len = in_channel_length ic in
         let s = really_input_string ic len in
         close_in ic;
         (f, s))

let parse_exn name src =
  match Router.parse_string src with
  | Ok g -> g
  | Error e -> Alcotest.failf "%s: %s" name e

let test_example_configs_differential () =
  let configs = example_configs () in
  check_bool "found example configs" true (configs <> []);
  List.iter
    (fun (name, src) ->
      let graph = parse_exn name src in
      let ndev = max 1 (List.length (device_names graph)) in
      List.iter
        (fun batch ->
          for seed = 1 to 2 do
            check_three_way
              ~ctx:(Printf.sprintf "%s seed %d" name seed)
              ~batch
              ~script:(make_script ~seed ~ndev)
              graph
          done)
        batches)
    configs

(* --- truncated packets through cascaded classifiers -------------------- *)

(* The classifier spec (satellite of PR 8): a tree test whose span lies
   at or beyond the end of a truncated packet must behave as if the
   missing bytes were zero, identically on the interpreted tree walk,
   the per-element compiled closures, and the hoisted FDD tests —
   including the shift translation after the FromDevice edge. *)
let cascade_config =
  "FromDevice(eth0) -> c1 :: Classifier(12/0800, -);\n\
   c1 [0] -> c2 :: Classifier(30/01, 30/02, -);\n\
   c1 [1] -> Discard;\n\
   c2 [0] -> Queue(64) -> ToDevice(eth0);\n\
   c2 [1] -> Queue(64) -> ToDevice(eth1);\n\
   c2 [2] -> Discard;"

let test_short_packet_differential () =
  let graph = parse_exn "cascade" cascade_config in
  List.iter
    (fun batch ->
      for seed = 1 to 3 do
        check_three_way
          ~ctx:(Printf.sprintf "short-packets seed %d" seed)
          ~batch
          ~script:(short_packet_script ~seed)
          graph
      done)
    batches

(* --- testbed differential: obs ledger, faults, domains ----------------- *)

let testbed_plan =
  "seed=42,corrupt=0.01,truncate=0.005,ttl0=0.02,badcksum=0.03,badlen=0.01,\
   runt=0.01,nic-stall=eth1@35000:2000,pci-stall=0@40000:1000"

let testbed_run ?obs ~domains ~batch ~mode () =
  let compile, fuse = mode_flags mode in
  let plan =
    match Fault.Plan.parse testbed_plan with
    | Ok p -> p
    | Error e -> Alcotest.failf "plan: %s" e
  in
  match
    Testbed.run ~duration_ms:20 ~warmup_ms:10 ~batch ~compile ~fuse ?obs
      ~domains ~platform:Platform.p0
      ~graph:(ip_router_graph ~n:8 ())
      ~fault:plan ~input_pps:100_000 ()
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "testbed (%s): %s" (mode_name mode) e

(* The fused datapath reports the identical per-hop event sequence to
   the cost hooks, so the *entire* result record — forwarding rate,
   modeled nanoseconds, outcome totals, drop reasons, fault counts,
   conservation ledger, route-table stats — must be equal, not merely
   close; and that must hold whether the graph runs on one simulated
   CPU or sharded across two. *)
let test_testbed_differential () =
  List.iter
    (fun domains ->
      List.iter
        (fun batch ->
          let ctx = Printf.sprintf "domains %d batch %d" domains batch in
          let i = testbed_run ~domains ~batch ~mode:`Interp () in
          let c = testbed_run ~domains ~batch ~mode:`Compile () in
          let f = testbed_run ~domains ~batch ~mode:`Fuse () in
          check_bool (ctx ^ ": interp = compiled") true (i = c);
          check_bool (ctx ^ ": compiled = fused") true (c = f);
          check_bool (ctx ^ ": faults were injected") true
            (f.Testbed.r_fault_counts <> []))
        [ 1; 32 ])
    [ 1; 2 ]

let test_obs_ledger_equality () =
  List.iter
    (fun batch ->
      let obs_c = Obs.create () and obs_f = Obs.create () in
      let rc = testbed_run ~obs:obs_c ~domains:1 ~batch ~mode:`Compile () in
      let rf = testbed_run ~obs:obs_f ~domains:1 ~batch ~mode:`Fuse () in
      let ctx = Printf.sprintf "batch %d" batch in
      check_bool (ctx ^ ": results equal") true (rc = rf);
      check
        (ctx ^ ": total attributed sim ns")
        (Obs.total_sim_ns obs_c) (Obs.total_sim_ns obs_f);
      check_bool
        (ctx ^ ": per-element snapshots equal")
        true
        (Obs.snapshot obs_c = Obs.snapshot obs_f);
      check_bool (ctx ^ ": ledger is non-trivial") true
        (Obs.total_sim_ns obs_c > 0))
    batches

(* --- live route add/remove through the fused Route leaf ---------------- *)

(* Satellite: a removed prefix must fall through to the next
   less-specific route (or a miss) on the very next lookup, a duplicate
   prefix must be refused, and all of it must behave identically on the
   interpreted, compiled, and FDD-fused datapaths — the fused leaf reads
   the live table, never a stale snapshot. *)

let routing_config backend =
  Printf.sprintf
    "Idle -> t :: Tee(1);\n\
     t -> rt :: %s(10.0.0.0/8 0, 10.0.4.0/24 1, 0.0.0.0/0 2);\n\
     rt [0] -> a :: Counter -> Discard;\n\
     rt [1] -> b :: Counter -> Discard;\n\
     rt [2] -> def :: Counter -> Discard;"
    backend

let bare_ip dst =
  let p =
    Headers.Build.udp ~src_ip:(Ipaddr.of_string_exn "10.9.9.9")
      ~dst_ip:(Ipaddr.of_string_exn dst) ()
  in
  Packet.pull p 14;
  (Packet.anno p).Packet.dst_ip <- Ipaddr.of_string_exn dst;
  p

let test_route_remove_falls_through () =
  List.iter
    (fun backend ->
      List.iter
        (fun mode ->
          let compile, fuse = mode_flags mode in
          let ctx = Printf.sprintf "%s (%s)" backend (mode_name mode) in
          let d =
            match
              Driver.of_string ~compile ~fuse (routing_config backend)
            with
            | Ok d -> d
            | Error e -> Alcotest.failf "%s: %s" ctx e
          in
          let el name = Option.get (Driver.element d name) in
          let stat name key = List.assoc key (el name)#stats in
          (* route through the Tee so the fused region body (entered on
             the t -> rt edge) is the code under test, not rt#push *)
          let route dst = (el "t")#push 0 (bare_ip dst) in
          let write h v =
            match (el "rt")#write_handler h v with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: write %s %S: %s" ctx h v e
          in
          route "10.0.4.9";
          check (ctx ^ ": longest prefix first") 1 (stat "b" "packets");
          (* duplicate prefix refused — shadowing can never arise *)
          check_bool
            (ctx ^ ": duplicate add refused")
            true
            (Result.is_error ((el "rt")#write_handler "add" "10.0.4.0/24 0"));
          check (ctx ^ ": table unchanged by refused add") 3
            (stat "rt" "routes");
          (* removal falls through to the covering /8 immediately *)
          write "remove" "10.0.4.0/24";
          route "10.0.4.9";
          check (ctx ^ ": falls through to /8") 1 (stat "a" "packets");
          check (ctx ^ ": /24 no longer matches") 1 (stat "b" "packets");
          (* then to the default route *)
          write "remove" "10.0.0.0/8";
          route "10.0.4.9";
          check (ctx ^ ": falls through to default") 1 (stat "def" "packets");
          (* and removing the default leaves an honest miss *)
          write "remove" "0.0.0.0/0";
          route "10.0.4.9";
          check (ctx ^ ": miss counted") 1 (stat "rt" "misses");
          check (ctx ^ ": no resurrection via stale scratch") 1
            (stat "a" "packets");
          check_bool
            (ctx ^ ": removing a missing prefix errors")
            true
            (Result.is_error ((el "rt")#write_handler "remove" "10.0.4.0/24"));
          (* re-add restores matching through the same fused leaf *)
          write "add" "10.0.4.0/24 1";
          route "10.0.4.9";
          check (ctx ^ ": re-added route matches") 2 (stat "b" "packets"))
        modes)
    [ "LinearIPLookup"; "LookupIPRoute" ]

(* --- fused-region stats surface ---------------------------------------- *)

let test_install_region_stats () =
  let devices =
    List.init 2 (fun i ->
        (new Netdevice.queue_device (Printf.sprintf "eth%d" i) ()
          :> Netdevice.t))
  in
  let fresh () =
    match Driver.instantiate ~devices (ip_router_graph ()) with
    | Error e -> Alcotest.failf "instantiate: %s" e
    | Ok d -> d
  in
  (match Oclick_compile.install (fresh ()) with
  | Error e -> Alcotest.failf "install: %s" e
  | Ok st ->
      check_bool "no regions without ~fuse" true
        (st.Oclick_compile.st_regions = []));
  match Oclick_compile.install ~fuse:true (fresh ()) with
  | Error e -> Alcotest.failf "install ~fuse: %s" e
  | Ok st ->
      let regions = st.Oclick_compile.st_regions in
      check_bool "fused at least one region" true (regions <> []);
      List.iter
        (fun (r : Fdd.region) ->
          let ctx = r.Fdd.rg_entry in
          check_bool (ctx ^ ": absorbed a member") true (r.Fdd.rg_members <> []);
          (* a straight-line region (no classifier branch) has one leaf
             and zero interior nodes; a branching one must have nodes *)
          check_bool (ctx ^ ": has actions") true (r.Fdd.rg_actions >= 1))
        regions;
      check_bool "some region has decision nodes" true
        (List.exists (fun (r : Fdd.region) -> r.Fdd.rg_nodes >= 1) regions);
      (match Oclick_compile.last_stats () with
      | Some st' -> check_bool "last_stats reflects the install" true (st' == st)
      | None -> Alcotest.fail "last_stats empty after install");
      check_bool "per-element fusion still reported" true
        (st.Oclick_compile.st_fused > 0)

let () =
  Alcotest.run "fdd"
    [
      ( "differential",
        [
          Alcotest.test_case "pure-runtime fuzz" `Quick test_fuzz_differential;
          Alcotest.test_case "example configurations" `Quick
            test_example_configs_differential;
          Alcotest.test_case "truncated packets" `Quick
            test_short_packet_differential;
          Alcotest.test_case "testbed across domains" `Quick
            test_testbed_differential;
          Alcotest.test_case "obs ledger equality" `Quick
            test_obs_ledger_equality;
        ] );
      ( "routing",
        [
          Alcotest.test_case "remove falls through live" `Quick
            test_route_remove_falls_through;
        ] );
      ( "surface",
        [
          Alcotest.test_case "install region stats" `Quick
            test_install_region_stats;
        ] );
    ]
