bin/click_mkmindriver.ml: Arg Cmdliner List Oclick_optim Term Tool_common
