lib/packet/trace.mli: Buffer Packet
