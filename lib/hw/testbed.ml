module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr
module Hooks = Oclick_runtime.Hooks
module Driver = Oclick_runtime.Driver
module Router = Oclick_graph.Router
module Fault = Oclick_fault
module Obs = Oclick_obs
module Partition = Oclick_parallel.Partition

type port_spec = {
  ps_device : string;
  ps_router_ip : Ipaddr.t;
  ps_router_eth : Ethaddr.t;
  ps_host_ip : Ipaddr.t;
  ps_host_eth : Ethaddr.t;
}

let standard_ports n =
  List.init n (fun i ->
      {
        ps_device = Printf.sprintf "eth%d" i;
        ps_router_ip = Ipaddr.of_octets 10 0 i 1;
        ps_router_eth =
          Ethaddr.of_string_exn (Printf.sprintf "00:00:c0:00:%02x:01" i);
        ps_host_ip = Ipaddr.of_octets 10 0 i 2;
        ps_host_eth =
          Ethaddr.of_string_exn (Printf.sprintf "00:00:c0:bb:%02x:02" i);
      })

type flow = { fl_src : int; fl_dst : int }

let standard_flows (p : Platform.t) =
  let n = p.Platform.p_nports in
  if n >= 4 && n mod 2 = 0 then
    List.init (n / 2) (fun i -> { fl_src = i; fl_dst = i + (n / 2) })
  else if n = 2 then [ { fl_src = 0; fl_dst = 1 }; { fl_src = 1; fl_dst = 0 } ]
  else List.init n (fun i -> { fl_src = i; fl_dst = (i + 1) mod n })

type outcome_counts = {
  oc_sent : int;
  oc_fifo_overflow : int;
  oc_missed_frame : int;
  oc_queue_drop : int;
  oc_element_fault : int;
  oc_other_drop : int;
}

type conservation = {
  cv_births : int;
  cv_deliveries : int;
  cv_nic_drops : int;
  cv_hook_drops : int;
  cv_residual : int;
}

type result = {
  r_offered_pps : float;
  r_forwarded_pps : float;
  r_outcomes : outcome_counts;
  r_receive_ns : float;
  r_forward_ns : float;
  r_transmit_ns : float;
  r_total_ns : float;
  r_model_ns : float;
  r_instructions : float;
  r_cache_misses : float;
  r_btb_mispredicts : float;
  r_pci_utilization : float;
  r_cpu_utilization : float;
  r_code_footprint : int;
  r_drop_reasons : (string * int) list;
  r_fault_counts : (string * int) list;
  r_element_faults : (string * int) list;
  r_warnings : string list;
  r_outcomes_total : outcome_counts;
  r_drop_reasons_total : (string * int) list;
  r_conservation : conservation;
  r_route_tables : (string * (string * int) list) list;
}

(* Programmed-I/O cost per packet for the Pro/1000 (paper §8.5): the
   driver issues I/O instructions per batch; amortized here per packet. *)
let pio_ns_per_packet (p : Platform.t) =
  match p.Platform.p_nic with Platform.Tulip_100 -> 0 | Platform.Pro1000 -> 150

let ms n = n * 1_000_000

let run ?(duration_ms = 60) ?(warmup_ms = 30) ?(drain_ms = 10) ?ports ?flows
    ?(payload_len = 14) ?fault ?(batch = 1) ?compile ?fuse ?obs ?(domains = 1)
    ?ring_capacity ?partition_weights ?(workload = Host.Uniform) ~platform
    ~graph ~input_pps () =
  (* A caller may reuse one observability accumulator across consecutive
     runs (oclick-report's before/after passes, the MLFFR search); stale
     counters and element metadata from the previous run — possibly of a
     different graph — must never leak into this one. *)
  Option.iter Obs.clear obs;
  let nports = platform.Platform.p_nports in
  let ports =
    match ports with Some p -> p | None -> standard_ports nports
  in
  let flows = match flows with Some f -> f | None -> standard_flows platform in
  (* Simulated multicore: partition the graph exactly as the real
     multi-domain runner would, then give each shard its own CPU tick
     loop — every shard's simulated clock advances only by the cycles
     that shard's round consumed, so the shards progress concurrently in
     simulated time on one wall-clock thread. Cut queues stay ordinary
     queues (the event engine serializes the rounds, so no ring is
     needed); [domains = 1] leaves the graph and schedule untouched. *)
  let partition =
    if domains = 1 then Ok None
    else
      Result.map Option.some
        (Partition.compute ?ring_capacity ?weights:partition_weights ~domains
           graph)
  in
  match partition with
  | Error e -> Error e
  | Ok partition ->
  let graph =
    match partition with Some p -> p.Partition.pt_graph | None -> graph
  in
  if List.length ports < nports then Error "not enough port specs"
  else begin
    let engine = Engine.create () in
    let injector = Option.map Fault.Injector.create fault in
    let quarantine =
      Option.map (fun pl -> pl.Fault.Plan.p_quarantine) fault
    in
    let windows_for sel dev =
      match fault with
      | None -> []
      | Some pl ->
          List.filter_map
            (fun w ->
              if w.Fault.Plan.w_dev = dev then
                Some (w.Fault.Plan.w_start_ns, w.Fault.Plan.w_len_ns)
              else None)
            (sel pl)
    in
    let cm = Cost_model.create () in
    let ns_of_cycles c = Platform.ns_of_cycles platform c in
    (* Per-category CPU time, in ns. *)
    let receive_ns = ref 0.0
    and forward_ns = ref 0.0
    and transmit_ns = ref 0.0
    and instructions = ref 0
    and cache_misses = ref 0
    and queue_drops = ref 0
    and other_drops = ref 0 in
    let charge_cat cat ns =
      match cat with
      | Cost_model.Receive -> receive_ns := !receive_ns +. float_of_int ns
      | Cost_model.Forward -> forward_ns := !forward_ns +. float_of_int ns
      | Cost_model.Transmit -> transmit_ns := !transmit_ns +. float_of_int ns
    in
    (* Every aggregate charge is mirrored per element, so the sum of the
       observability layer's element columns equals the aggregate cost
       exactly — no double- or under-charging at any batch size. *)
    let charge_cat_at idx cat ns =
      charge_cat cat ns;
      match obs with
      | Some o -> Obs.charge_sim_ns o ~idx ns
      | None -> ()
    in
    let pio = pio_ns_per_packet platform in
    (* PCI buses; NIC i sits on bus (i mod buses). Per-transaction
       overhead (arbitration, address phase, bridge latency) depends on
       the card's DMA behaviour: the Tulip issues short non-burst
       transactions; the Pro/1000 bursts much more effectively. *)
    let overhead_ns =
      match (platform.Platform.p_nic, platform.Platform.p_pci_mhz >= 66) with
      | Platform.Tulip_100, false -> 490
      | Platform.Tulip_100, true -> 245
      | Platform.Pro1000, false -> 150
      | Platform.Pro1000, true -> 75
    in
    let buses =
      Array.init platform.Platform.p_pci_buses (fun b ->
          Pci.create engine
            ~bytes_per_sec:(Platform.pci_bytes_per_sec platform)
            ~overhead_ns
            ~stall_windows:
              (windows_for
                 (fun pl -> pl.Fault.Plan.p_pci_stall)
                 (string_of_int b))
            ())
    in
    (* Hosts and NICs. *)
    let port_arr = Array.of_list ports in
    let hosts =
      Array.init nports (fun i ->
          let ps = port_arr.(i) in
          new Host.host ~engine ~platform ~ip:ps.ps_host_ip ~eth:ps.ps_host_eth
            ~router_eth:ps.ps_router_eth ?injector
            ~fault_stream:("tx:" ^ ps.ps_device) ())
    in
    (* CPU-side rx/tx driver work is attributed to the graph's device
       elements (PollDevice/FromDevice and ToDevice) in the per-element
       breakdown; the mapping is resolved once the driver exists. *)
    let rx_attr = Array.make nports (-1) and tx_attr = Array.make nports (-1) in
    let nics =
      Array.init nports (fun i ->
          let ps = port_arr.(i) in
          new Nic.tulip ~engine ~pci:buses.(i mod Array.length buses)
            ~platform ~name:ps.ps_device ~bus_id:i
            ~dma_stall:
              (windows_for (fun pl -> pl.Fault.Plan.p_nic_stall) ps.ps_device)
            ~deliver:(fun p -> hosts.(i)#receive p)
            ~on_cpu_rx:(fun () ->
              charge_cat_at rx_attr.(i) Cost_model.Receive
                (ns_of_cycles
                   (Cost_model.element_cycles cm ~cls:"PollDevice"
                   + Cost_model.structural_miss_cycles Cost_model.Receive)
                + pio);
              instructions :=
                !instructions + Cost_model.instructions_of_class "PollDevice";
              incr cache_misses)
            ~on_cpu_tx:(fun () ->
              charge_cat_at tx_attr.(i) Cost_model.Transmit
                (ns_of_cycles
                   (Cost_model.element_cycles cm ~cls:"ToDevice"
                   + Cost_model.structural_miss_cycles Cost_model.Transmit)
                + pio);
              instructions :=
                !instructions + Cost_model.instructions_of_class "ToDevice";
              incr cache_misses)
            ())
    in
    Array.iteri (fun i h -> h#set_wire (fun p -> nics.(i)#wire_arrive p)) hosts;
    (* Packet-conservation ledger: births (host frames + in-router
       spawns) must equal deaths (host receptions + NIC drops + hooked
       drops) plus whatever is still buffered when the run ends. All
       ledger counters are monotonic from t=0; measurement windows are
       snapshot differences. *)
    let drops_total : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
    let bump_drop reason =
      match Hashtbl.find_opt drops_total reason with
      | Some r -> incr r
      | None -> Hashtbl.replace drops_total reason (ref 1)
    in
    let drops_snapshot () =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) drops_total []
      |> List.sort compare
    in
    let drops_sum snap = List.fold_left (fun a (_, n) -> a + n) 0 snap in
    (* window = later snapshot minus earlier, per reason *)
    let drops_diff ~from:earlier later =
      List.filter_map
        (fun (k, n) ->
          let n = n - Option.value ~default:0 (List.assoc_opt k earlier) in
          if n > 0 then Some (k, n) else None)
        later
    in
    let spawns_total = ref 0 in
    let element_faults = Fault.Counters.create () in
    let warnings = ref [] in
    (* Instrumentation hooks: the cost model prices every transfer and
       every unit of element work. *)
    let hooks =
      {
        Hooks.on_transfer =
          (fun tr _p ->
            let cycles =
              Cost_model.transfer_cycles cm tr
              + Cost_model.element_cycles cm ~cls:tr.Hooks.tr_dst_class
            in
            let cat = Cost_model.category_of_class tr.Hooks.tr_src_class in
            (* Transfers out of the receive path carry the packet into the
               forwarding path; header fetch misses land there. The
               per-element share goes to the element whose code runs —
               the transfer's destination (for a pull, the pulled
               element), whose element cycles dominate the charge. *)
            (match cat with
            | Cost_model.Receive ->
                charge_cat_at tr.Hooks.tr_dst_idx Cost_model.Forward
                  (ns_of_cycles
                     (cycles
                     + Cost_model.structural_miss_cycles Cost_model.Forward));
                cache_misses := !cache_misses + 2
            | _ ->
                charge_cat_at tr.Hooks.tr_dst_idx Cost_model.Forward
                  (ns_of_cycles cycles));
            instructions :=
              !instructions
              + Cost_model.instructions_of_class tr.Hooks.tr_dst_class);
        Hooks.on_transfer_batch =
          (fun tr _batch n ->
            (* A batch of [n] stands for [n] scalar transfers, but the
               dispatch overhead and the branch/cache boundary misses are
               paid once per batch — that amortization is the point of
               the batched path. Element work is still charged per
               packet. *)
            let cycles =
              Cost_model.transfer_cycles cm tr
              + (n * Cost_model.element_cycles cm ~cls:tr.Hooks.tr_dst_class)
            in
            let cat = Cost_model.category_of_class tr.Hooks.tr_src_class in
            (match cat with
            | Cost_model.Receive ->
                charge_cat_at tr.Hooks.tr_dst_idx Cost_model.Forward
                  (ns_of_cycles
                     (cycles
                     + Cost_model.structural_miss_cycles Cost_model.Forward));
                cache_misses := !cache_misses + 2
            | _ ->
                charge_cat_at tr.Hooks.tr_dst_idx Cost_model.Forward
                  (ns_of_cycles cycles));
            instructions :=
              !instructions
              + (n * Cost_model.instructions_of_class tr.Hooks.tr_dst_class));
        Hooks.on_work =
          (fun ~idx ~cls w ->
            charge_cat_at idx
              (Cost_model.category_of_class cls)
              (ns_of_cycles (Cost_model.work_cycles w)));
        Hooks.on_drop =
          (fun ~idx:_ ~cls:_ ~reason _p ->
            if String.equal reason "queue full" then incr queue_drops
            else incr other_drops;
            bump_drop reason);
        Hooks.on_spawn = (fun ~idx:_ ~cls:_ _p -> incr spawns_total);
        Hooks.on_fault =
          (fun ~idx:_ ~cls ~reason:_ -> Fault.Counters.bump element_faults cls);
        Hooks.on_warn =
          (fun ~src msg -> warnings := Printf.sprintf "%s: %s" src msg :: !warnings);
      }
    in
    (* With observation on, wrap the cost hooks with the counting and
       tracing layer; trace timestamps are simulated time. *)
    let hooks =
      match obs with
      | Some o -> Obs.hooks ~now:(fun () -> Engine.now engine) o hooks
      | None -> hooks
    in
    let devices =
      Array.to_list (Array.map (fun n -> (n :> Oclick_runtime.Netdevice.t)) nics)
    in
    match
      Driver.instantiate ~hooks ~devices ?quarantine ~batch ?compile ?fuse
        ~clock:(fun () -> Engine.now engine)
        graph
    with
    | Error e -> Error e
    | Ok driver ->
        List.iter
          (fun i -> Cost_model.note_code_class cm (Router.class_of graph i))
          (Router.indices graph);
        (match obs with
        | None -> ()
        | Some o ->
            (* The driver normalizes its graph to dense, declaration-order
               indices before instantiating, and every hook reports those
               indices. A graph straight out of an optimizer pass can
               have dead slots, so normalize the same way here or the
               metadata and NIC attribution would label the wrong rows. *)
            let graph = Router.of_ast_exn (Router.to_ast graph) in
            let first_arg cfg =
              match String.split_on_char ',' cfg with
              | a :: _ -> String.trim a
              | [] -> ""
            in
            List.iter
              (fun i ->
                let cls = Router.class_of graph i in
                Obs.set_meta o ~idx:i ~name:(Router.name graph i) ~cls;
                (* Map each NIC's CPU-side rx/tx charges onto the device
                   element driving it. *)
                let dev = first_arg (Router.config graph i) in
                Array.iteri
                  (fun n ps ->
                    if String.equal ps.ps_device dev then
                      (* Optimizers rename device classes to generated
                         names (Devirtualize@@ToDevice@@3...); resolve
                         back before matching. *)
                      match Cost_model.strip_generated cls with
                      | "PollDevice" | "FromDevice" ->
                          if rx_attr.(n) < 0 then rx_attr.(n) <- i
                      | "ToDevice" -> if tx_attr.(n) < 0 then tx_attr.(n) <- i
                      | _ -> ())
                  port_arr)
              (Router.indices graph));
        (* The CPU(s): run scheduler rounds, advancing time by the cycles
           each round consumed. With [domains > 1] every shard gets its
           own tick loop over its own slice of the task schedule, and its
           clock advances only by what its own round consumed — the
           single-threaded event engine interleaves the loops, simulating
           [domains] CPUs running their shards concurrently. *)
        let total_ns () = !receive_ns +. !forward_ns +. !transmit_ns in
        let cpu_busy = Array.make domains 0.0 in
        let stop_at = ms (warmup_ms + duration_ms) in
        (* The CPU keeps scheduling through the drain phase so queued
           packets reach their terminal outcome after traffic stops. *)
        let drain_end = stop_at + ms drain_ms in
        (match partition with
        | None ->
            let rec cpu_tick () =
              if Engine.now engine < drain_end then begin
                let before = total_ns () in
                let did_work = Driver.run_tasks_once driver in
                let consumed = total_ns () -. before in
                cpu_busy.(0) <- cpu_busy.(0) +. consumed;
                let advance =
                  if did_work then max 1 (int_of_float consumed)
                  else 800 (* polling all quiet devices once *)
                in
                Engine.schedule_after engine ~delay:advance cpu_tick
              end
            in
            cpu_tick ()
        | Some part ->
            let all_tasks = Driver.tasks driver in
            let shard_tasks =
              Array.init domains (fun s ->
                  Array.of_list
                    (List.filter
                       (fun (e : Oclick_runtime.Element.t) ->
                         part.Partition.pt_shard_of.(e#index) = s)
                       (Array.to_list all_tasks)))
            in
            let rrs = Array.make domains 0 in
            for s = 0 to domains - 1 do
              let rec cpu_tick () =
                if Engine.now engine < drain_end then begin
                  let tasks = shard_tasks.(s) in
                  let n = Array.length tasks in
                  let before = total_ns () in
                  let did_work =
                    n > 0 && Driver.run_task_array tasks ~start:rrs.(s)
                  in
                  if n > 0 then rrs.(s) <- (rrs.(s) + 1) mod n;
                  (* All charges during this round came from this shard's
                     elements (the engine is single-threaded), so the
                     delta is this simulated CPU's consumption. *)
                  let consumed = total_ns () -. before in
                  cpu_busy.(s) <- cpu_busy.(s) +. consumed;
                  let advance =
                    if did_work then max 1 (int_of_float consumed)
                    else 800 (* polling all quiet devices once *)
                  in
                  Engine.schedule_after engine ~delay:advance cpu_tick
                end
              in
              cpu_tick ()
            done);
        (* Traffic: each flow gets an equal share of the offered load. *)
        let per_flow = input_pps / max 1 (List.length flows) in
        List.iter
          (fun f ->
            hosts.(f.fl_src)#start_workload ~workload
              ~dst_ip:port_arr.(f.fl_dst).ps_host_ip
              ~router_ip:port_arr.(f.fl_src).ps_router_ip ~rate_pps:per_flow
              ~payload_len ~until:stop_at ())
          flows;
        (* Warmup (ARP resolution), then snapshot the monotonic counters
           and measure; per-CPU cost accumulators are simply zeroed (the
           ledger does not use them). *)
        Engine.run_until engine (ms warmup_ms);
        let host_snapshot () =
          Array.map (fun h -> (h#sent_udp, h#received_udp)) hosts
        in
        let nic_snapshot () =
          Array.map
            (fun (n : Nic.tulip) ->
              (n#outcomes.Nic.o_fifo_overflow, n#outcomes.Nic.o_missed_frame))
            nics
        in
        let warm_hosts = host_snapshot () in
        let warm_nics = nic_snapshot () in
        let warm_drops = drops_snapshot () in
        receive_ns := 0.0;
        forward_ns := 0.0;
        transmit_ns := 0.0;
        instructions := 0;
        cache_misses := 0;
        queue_drops := 0;
        other_drops := 0;
        Array.fill cpu_busy 0 domains 0.0;
        (* The per-element columns cover the same window as the aggregate
           accumulators just zeroed (measurement plus drain), so obs
           totals and the aggregate remain directly comparable. Reset
           keeps element metadata. *)
        Option.iter Obs.reset obs;
        Array.iter (fun b -> Pci.reset_counters b) buses;
        Btb.reset_counters (Cost_model.btb cm);
        Engine.run_until engine stop_at;
        let stop_hosts = host_snapshot () in
        let stop_nics = nic_snapshot () in
        let stop_drops = drops_snapshot () in
        let seconds = float_of_int duration_ms /. 1000.0 in
        let sum2 fst_or_snd a b =
          let acc = ref 0 in
          Array.iteri
            (fun i x -> acc := !acc + fst_or_snd x - fst_or_snd b.(i))
            a;
          !acc
        in
        let offered = float_of_int (sum2 fst stop_hosts warm_hosts) /. seconds in
        let sent = sum2 snd stop_hosts warm_hosts in
        let forwarded = float_of_int sent /. seconds in
        let fifo_overflow = sum2 fst stop_nics warm_nics
        and missed_frame = sum2 snd stop_nics warm_nics in
        let drop_reasons = drops_diff ~from:warm_drops stop_drops in
        let per_packet x =
          if sent = 0 then 0.0 else x /. float_of_int sent
        in
        let busiest_bus =
          Array.fold_left (fun acc b -> max acc (Pci.busy_ns b)) 0 buses
        in
        let outcome_counts_of ~sent ~fifo ~missed reasons =
          let n key =
            Option.value ~default:0 (List.assoc_opt key reasons)
          in
          let queue = n "queue full" in
          let elt_fault = n "element fault" + n "quarantined element" in
          let other = drops_sum reasons - queue - elt_fault in
          {
            oc_sent = sent;
            oc_fifo_overflow = fifo;
            oc_missed_frame = missed;
            oc_queue_drop = queue;
            oc_element_fault = elt_fault;
            oc_other_drop = other;
          }
        in
        (* Drain: let in-flight packets reach a terminal outcome, then
           settle any events scheduled just past the horizon. *)
        Engine.run_until engine drain_end;
        let settle = ref 0 in
        while Engine.pending engine > 0 && !settle < 1000 do
          incr settle;
          Engine.run_until engine (Engine.now engine + ms 1)
        done;
        (* The conservation invariant, over the whole run. *)
        let births =
          Array.fold_left (fun a h -> a + h#sent_frames) 0 hosts
          + !spawns_total
        in
        let deliveries =
          Array.fold_left (fun a h -> a + h#received_total) 0 hosts
        in
        let nic_drops =
          Array.fold_left
            (fun a (n : Nic.tulip) ->
              a + n#outcomes.Nic.o_fifo_overflow
              + n#outcomes.Nic.o_missed_frame)
            0 nics
        in
        let final_drops = drops_snapshot () in
        let hook_drops = drops_sum final_drops in
        let residual =
          let acc = ref 0 in
          Array.iter (fun (n : Nic.tulip) -> acc := !acc + n#buffered) nics;
          for i = 0 to Driver.size driver - 1 do
            List.iter
              (fun (k, v) ->
                if String.equal k "length" || String.equal k "pending" then
                  acc := !acc + v)
              (Driver.element_at driver i)#stats
          done;
          !acc
        in
        let route_tables =
          (* Any element exposing a "routes" stat is a routing table
             (LookupIPRoute and friends); surface its stats so table
             growth is observable alongside every other element stat. *)
          let acc = ref [] in
          for i = Driver.size driver - 1 downto 0 do
            let e = Driver.element_at driver i in
            let stats = e#stats in
            if List.mem_assoc "routes" stats then
              acc := (e#name, stats) :: !acc
          done;
          !acc
        in
        let conservation =
          {
            cv_births = births;
            cv_deliveries = deliveries;
            cv_nic_drops = nic_drops;
            cv_hook_drops = hook_drops;
            cv_residual = residual;
          }
        in
        if births <> deliveries + nic_drops + hook_drops + residual then
          Error
            (Printf.sprintf
               "packet conservation violated: %d born <> %d delivered + %d \
                NIC drops + %d accounted drops + %d residual (leak of %d)"
               births deliveries nic_drops hook_drops residual
               (births - (deliveries + nic_drops + hook_drops + residual)))
        else
          let sent_total =
            Array.fold_left (fun a h -> a + h#received_udp) 0 hosts
          in
          let fifo_total =
            Array.fold_left
              (fun a (n : Nic.tulip) -> a + n#outcomes.Nic.o_fifo_overflow)
              0 nics
          and missed_total =
            Array.fold_left
              (fun a (n : Nic.tulip) -> a + n#outcomes.Nic.o_missed_frame)
              0 nics
          in
          Ok
            {
              r_offered_pps = offered;
              r_forwarded_pps = forwarded;
              r_outcomes =
                outcome_counts_of ~sent ~fifo:fifo_overflow
                  ~missed:missed_frame drop_reasons;
              r_receive_ns = per_packet !receive_ns;
              r_forward_ns = per_packet !forward_ns;
              r_transmit_ns = per_packet !transmit_ns;
              r_total_ns = per_packet (total_ns ());
              r_model_ns = total_ns ();
              r_instructions = per_packet (float_of_int !instructions);
              r_cache_misses = per_packet (float_of_int !cache_misses);
              r_btb_mispredicts =
                per_packet
                  (float_of_int (Btb.mispredictions (Cost_model.btb cm)));
              r_pci_utilization =
                float_of_int busiest_bus /. (float_of_int duration_ms *. 1e6);
              r_cpu_utilization =
                (* The busiest simulated CPU — the one that saturates
                   first and caps the forwarding rate. *)
                Array.fold_left max 0.0 cpu_busy
                /. (float_of_int duration_ms *. 1e6);
              r_code_footprint = Cost_model.code_footprint_bytes cm;
              r_drop_reasons = drop_reasons;
              r_fault_counts =
                (match injector with
                | Some inj -> Fault.Injector.counters inj
                | None -> []);
              r_element_faults = Fault.Counters.to_list element_faults;
              r_warnings = List.rev !warnings;
              r_outcomes_total =
                outcome_counts_of ~sent:sent_total ~fifo:fifo_total
                  ~missed:missed_total final_drops;
              r_drop_reasons_total = final_drops;
              r_conservation = conservation;
              r_route_tables = route_tables;
            }
  end

let mlffr ?ports ?flows ?(loss_tolerance = 0.002) ?domains ~platform ~graph ()
    =
  let flows_v =
    match flows with Some f -> f | None -> standard_flows platform
  in
  let nflows = List.length flows_v in
  let max_rate = nflows * Platform.max_host_rate_pps platform in
  let loss_free rate =
    match
      run ?ports ?flows ?domains ~platform ~graph ~input_pps:rate ()
    with
    | Error e -> failwith e
    | Ok r ->
        r.r_offered_pps > 0.0
        && (r.r_offered_pps -. r.r_forwarded_pps) /. r.r_offered_pps
           <= loss_tolerance
  in
  match
    let rec search lo hi =
      (* invariant: lo is loss-free, hi is not (or is the cap) *)
      if hi - lo <= 4000 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if loss_free mid then search mid hi else search lo mid
      end
    in
    if loss_free max_rate then max_rate else search 20_000 max_rate
  with
  | rate -> Ok rate
  | exception Failure e -> Error e
