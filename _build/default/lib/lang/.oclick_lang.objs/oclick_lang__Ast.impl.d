lib/lang/ast.ml: Hashtbl List String
