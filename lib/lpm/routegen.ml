(* Deterministic synthetic routing tables with a realistic prefix-length
   mix. Real BGP snapshots are dominated by /24s, with /22-/23
   deaggregation, a body of /16-/21 allocations, a thin tail of short
   classful blocks and (usually) a default route; we sample from that
   shape so large-table benchmarks stress the trie the way a DFZ feed
   would — most routes land as single stage-1 slots, a minority spill
   into leaf blocks.

   Everything is driven by one 64-bit LCG from the caller's seed: same
   seed, same table, same probe stream, on every run and every host. *)

type route = { addr : int; len : int; gw : int; port : int }

(* Numerical Recipes LCG; high bits are the good ones. *)
let lcg_a = 6364136223846793005L
let lcg_c = 1442695040888963407L

type rng = { mutable s : int64 }

let rng_of_seed seed = { s = Int64.of_int (seed lxor 0x9e3779b9) }

let bits r n =
  r.s <- Int64.add (Int64.mul r.s lcg_a) lcg_c;
  Int64.to_int (Int64.shift_right_logical r.s (64 - n))

let below r n = if n <= 1 then 0 else bits r 30 mod n

(* Cumulative prefix-length distribution, per mille. The /25-/32 tail
   (~3.5%, like the more-specifics that leak into real feeds plus IGP
   host routes) is what exercises the trie's leaf-block stage at the
   production stride. *)
let len_table =
  [|
    (520, 24); (* the /24 wall *)
    (620, 23);
    (720, 22);
    (760, 21);
    (800, 20);
    (840, 19);
    (870, 18);
    (895, 17);
    (925, 16);
    (940, 14);
    (950, 12);
    (960, 10);
    (965, 8);
    (980, 28);
    (990, 30);
    (1000, 32);
  |]

let pick_len r =
  let d = below r 1000 in
  let rec go i =
    let c, l = len_table.(i) in
    if d < c then l else go (i + 1)
  in
  go 0

(* First octet in 16..223, skipping 10 (the testbed's own addressing)
   — keeps generated tables from shadowing interface routes. *)
let pick_octet1 r =
  let o = 16 + below r 208 in
  if o = 10 then 11 else o

let pick_addr r len =
  let a =
    (pick_octet1 r lsl 24) lor (below r 256 lsl 16) lor (below r 256 lsl 8)
    lor below r 256
  in
  if len = 0 then 0 else a land (0xffff_ffff lsl (32 - len)) land 0xffff_ffff

let generate ?(seed = 1) ?(default_route = true) ~n ~nports () =
  let r = rng_of_seed seed in
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n { addr = 0; len = 0; gw = 0; port = 0 } in
  let i = ref 0 in
  if default_route && n > 0 then begin
    Hashtbl.add seen 0 ();
    out.(0) <- { addr = 0; len = 0; gw = 0; port = below r nports };
    incr i
  end;
  while !i < n do
    let len = pick_len r in
    let addr = pick_addr r len in
    let key = (len lsl 32) lor addr in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      (* ~30% of routes go via a gateway, like an IGP-learned next hop. *)
      let gw = if below r 10 < 3 then 0x0a00_0001 + below r 254 else 0 in
      out.(!i) <- { addr; len; gw; port = below r nports };
      incr i
    end
  done;
  out

let probe_dsts ?(seed = 2) ~routes ~n () =
  let r = rng_of_seed seed in
  let nr = Array.length routes in
  Array.init n (fun _ ->
      if nr > 0 && below r 10 < 8 then begin
        (* 80% of probes land inside some route's range: pick a route and
           randomise its host bits. *)
        let rt = routes.(below r nr) in
        let host_bits = 32 - rt.len in
        let jitter = if host_bits = 0 then 0 else bits r host_bits in
        (rt.addr lor jitter) land 0xffff_ffff
      end
      else (bits r 32) land 0xffff_ffff)

let addr_to_string a =
  Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xff) ((a lsr 16) land 0xff)
    ((a lsr 8) land 0xff) (a land 0xff)

let route_to_string rt =
  if rt.gw = 0 then
    Printf.sprintf "%s/%d %d" (addr_to_string rt.addr) rt.len rt.port
  else
    Printf.sprintf "%s/%d %s %d" (addr_to_string rt.addr) rt.len
      (addr_to_string rt.gw) rt.port

let to_config routes =
  String.concat ", " (Array.to_list (Array.map route_to_string routes))
