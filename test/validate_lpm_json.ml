(* Schema validation for the LPM benchmark's JSON, used by the
   @lpm-smoke alias: reads BENCH_lpm.json (path argument, or stdin) and
   checks the shape the plotting/CI side depends on — every table size
   carries the four lookup variants with positive rates, certifies the
   trie-vs-linear differential, and clears the speedup bar (>= 10x at
   100k+ routes, the issue's acceptance criterion; >= 2x below that).
   Full (non-smoke) runs must include the 100k and 1M-route tables and
   an end-to-end number that shows forwarding did not collapse under
   table ballast. Exits 1 with a one-line diagnostic on the first
   violation. *)

module Json = Oclick_obs.Json

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit 1)
    fmt

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let number label = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> die "%s: not a number" label

let get label obj field =
  match Json.member field obj with
  | Some v -> v
  | None -> die "%s: missing %S" label field

let check_variant ~label v =
  let name =
    match get label v "name" with
    | Json.String s -> s
    | _ -> die "%s: variant name is not a string" label
  in
  let label = Printf.sprintf "%s/%s" label name in
  let lookups = number label (get label v "lookups") in
  if lookups < 1.0 then die "%s: no lookups measured" label;
  let rate = number label (get label v "mlookups_per_s") in
  if rate <= 0.0 then die "%s: non-positive lookup rate" label;
  name

let check_size v =
  let routes =
    match get "size" v "routes" with
    | Json.Int r when r > 0 -> r
    | _ -> die "size: bad routes count"
  in
  let label = Printf.sprintf "%d routes" routes in
  if number label (get label v "trie_bytes") <= 0.0 then
    die "%s: trie_bytes not positive" label;
  if number label (get label v "leaf_blocks") < 0.0 then
    die "%s: negative leaf_blocks" label;
  (match get label v "differential_ok" with
  | Json.Bool true -> ()
  | _ -> die "%s: trie-vs-linear differential not certified" label);
  let names =
    match get label v "variants" with
    | Json.List vs -> List.map (check_variant ~label) vs
    | _ -> die "%s: variants is not a list" label
  in
  List.iter
    (fun want ->
      if not (List.mem want names) then die "%s: missing variant %s" label want)
    [ "linear"; "trie_scalar"; "trie_batch"; "trie_compiled" ];
  let speedup = number label (get label v "speedup_trie_vs_linear") in
  let bar = if routes >= 100_000 then 10.0 else 2.0 in
  if speedup < bar then
    die "%s: trie speedup %.1fx below the %.0fx bar" label speedup bar;
  routes

let check_e2e doc =
  let v = get "doc" doc "e2e" in
  let label = "e2e" in
  let offered = number label (get label v "offered") in
  let forwarded = number label (get label v "forwarded") in
  if offered < 1.0 then die "%s: nothing offered" label;
  if forwarded < 1.0 then die "%s: nothing forwarded" label;
  if number label (get label v "extra_routes") < 1.0 then
    die "%s: no table ballast" label;
  let baseline = number label (get label v "baseline_pps") in
  let bigtable = number label (get label v "bigtable_pps") in
  if baseline <= 0.0 || bigtable <= 0.0 then die "%s: non-positive pps" label;
  (* DIR-24-8 lookups are table-size independent; ballast must not
     collapse end-to-end forwarding. Generous margin for timer noise. *)
  if bigtable < 0.3 *. baseline then
    die "%s: big-table pps %.0f collapsed vs baseline %.0f" label bigtable
      baseline

let () =
  let input =
    if Array.length Sys.argv > 1 then (
      let ic = open_in Sys.argv.(1) in
      let s = read_all ic in
      close_in ic;
      s)
    else read_all stdin
  in
  let doc =
    match Json.of_string input with
    | Ok v -> v
    | Error e -> die "not valid JSON: %s" e
  in
  (match Json.member "section" doc with
  | Some (Json.String "lpm") -> ()
  | _ -> die "missing section=\"lpm\"");
  let smoke =
    match get "doc" doc "smoke" with
    | Json.Bool b -> b
    | _ -> die "smoke is not a bool"
  in
  let sizes =
    match get "doc" doc "sizes" with
    | Json.List [] -> die "sizes is empty"
    | Json.List sizes -> List.map check_size sizes
    | _ -> die "sizes is not a list"
  in
  if not smoke then begin
    if not (List.exists (fun r -> r >= 100_000) sizes) then
      die "full run missing the 100k-route table";
    if not (List.exists (fun r -> r >= 1_000_000) sizes) then
      die "full run missing the 1M-route table"
  end;
  check_e2e doc;
  print_endline "ok"
