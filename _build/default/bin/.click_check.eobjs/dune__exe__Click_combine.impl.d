bin/click_combine.ml: Arg Cmdliner List Oclick_optim Str_split String Term Tool_common
