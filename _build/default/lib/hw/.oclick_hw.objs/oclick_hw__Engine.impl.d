lib/hw/engine.ml: Array
