(* The IP forwarding-path elements of the paper's Figure 1 router. *)

open Prelude
module Ip = Headers.Ip
module Icmp = Headers.Icmp
module Ether = Headers.Ether

class paint name =
  object (self)
    inherit E.simple_action name
    val mutable color = 0
    method class_name = "Paint"

    method! configure config =
      match Args.parse_int config with
      | Some c when c >= 0 -> Ok (color <- c)
      | _ -> Error "Paint expects a color"

    method! private inplace p =
      (Packet.anno p).Packet.paint <- color;
      E.V_keep

    method private action p = self#action_of_inplace p
    method! region_sem = Some (Region.Set_paint color)
  end

(* CheckPaint (Click's PaintTee): forwards on 0; a painted packet also
   sends a clone to output 1 — the ICMP-redirect path in the IP router. *)
class check_paint name =
  object (self)
    inherit E.simple_action name
    val mutable color = 0
    method class_name = "CheckPaint"
    method! port_count = "1/1-2"
    method! processing = "a/ah"

    method! configure config =
      match Args.parse_int config with
      | Some c when c >= 0 -> Ok (color <- c)
      | _ -> Error "CheckPaint expects a color"

    method private tee p =
      if (Packet.anno p).Packet.paint = color && self#noutputs > 1 then begin
        let c = Packet.clone p in
        self#spawn c;
        self#output 1 c
      end

    method! private inplace p =
      self#tee p;
      E.V_keep

    method private action p = self#action_of_inplace p

    method! region_sem = Some (Region.Mutate (fun p -> self#tee p))
  end

class strip name =
  object (self)
    inherit E.simple_action name
    val mutable nbytes = 0
    method class_name = "Strip"

    method! configure config =
      match Args.parse_int config with
      | Some n when n >= 0 -> Ok (nbytes <- n)
      | _ -> Error "Strip expects a byte count"

    method! private inplace p =
      if Packet.length p >= nbytes then begin
        Packet.pull p nbytes;
        E.V_keep
      end
      else begin
        self#drop ~reason:"too short to strip" p;
        E.V_drop
      end

    method private action p = self#action_of_inplace p

    method! region_sem =
      (* The shift lets the fusion pass translate downstream tree
         offsets: reading [off] after the pull sees the same bytes as
         [off + nbytes] before it (both through the shared zero-fill
         reader), so hoisting those tests above the pull is exact. *)
      Some
        (Region.Guard
           {
             gd_shift = nbytes;
             gd_barrier = false;
             gd_run = (fun p -> self#inplace p = E.V_keep);
           })
  end

class unstrip name =
  object (self)
    inherit E.simple_action name
    val mutable nbytes = 0
    method class_name = "Unstrip"

    method! configure config =
      match Args.parse_int config with
      | Some n when n >= 0 -> Ok (nbytes <- n)
      | _ -> Error "Unstrip expects a byte count"

    method! private inplace p =
      Packet.push p nbytes;
      E.V_keep

    method private action p = self#action_of_inplace p
  end

(* CheckIPHeader: validates version, header length, total length, and the
   header checksum; optionally rejects packets whose source address is in a
   bad-address list. Bad packets go to output 1 if connected, else they
   are dropped — as in Click. *)
class check_ip_header name =
  object (self)
    inherit E.simple_action name
    val mutable bad_src : Ipaddr.t list = []
    val mutable drops = 0
    method class_name = "CheckIPHeader"
    method! port_count = "1/1-2"
    method! processing = "a/ah"

    method! configure config =
      match Args.split config with
      | [] -> Ok ()
      | [ addrs ] -> (
          let parts =
            List.filter (( <> ) "") (String.split_on_char ' ' addrs)
          in
          let parsed = List.map Ipaddr.of_string parts in
          if List.exists Option.is_none parsed then
            Error (Printf.sprintf "CheckIPHeader: bad address list %S" addrs)
          else begin
            bad_src <- List.filter_map Fun.id parsed;
            Ok ()
          end)
      | _ -> Error "CheckIPHeader takes an address list"

    method private check p =
      Packet.length p >= Ip.min_header_length
      && Ip.version p = 4
      && Ip.header_length p >= Ip.min_header_length
      && Ip.header_length p <= Packet.length p
      && Ip.total_length p >= Ip.header_length p
      && Ip.total_length p <= Packet.length p
      && begin
           if not self#lean_work then
             self#charge (Hooks.W_checksum (Ip.header_length p));
           Ip.checksum_valid p
         end
      && not (List.mem (Ip.src p) bad_src)

    method private handle_bad p =
      drops <- drops + 1;
      if self#noutputs > 1 then self#output 1 p
      else self#drop ~reason:"bad IP header" p

    method! private inplace p =
      if self#check p then begin
        (* Trim link-layer padding beyond the IP length, like Click. *)
        let excess = Packet.length p - Ip.total_length p in
        if excess > 0 then Packet.take p excess;
        E.V_keep
      end
      else begin
        self#handle_bad p;
        E.V_drop
      end

    method private action p = self#action_of_inplace p

    method! stats = [ ("drops", drops) ]

    method! region_sem =
      (* Barrier: [Packet.take] trims the padding bytes beyond the IP
         length, so byte tests hoisted from below could read trimmed
         bytes as nonzero that the interpreted walk reads as zero-fill.
         Non-test stages (paint, address extraction, the route lookup)
         still fuse past it. *)
      Some
        (Region.Guard
           {
             gd_shift = 0;
             gd_barrier = true;
             gd_run = (fun p -> self#inplace p = E.V_keep);
           })
  end

class get_ip_address name =
  object (self)
    inherit E.simple_action name
    val mutable offset = 16
    method class_name = "GetIPAddress"

    method! configure config =
      match Args.parse_int config with
      | Some n when n >= 0 -> Ok (offset <- n)
      | _ -> Error "GetIPAddress expects a byte offset"

    method! private inplace p =
      if Packet.length p >= offset + 4 then begin
        (Packet.anno p).Packet.dst_ip <- Packet.get_u32 p offset;
        E.V_keep
      end
      else begin
        self#drop ~reason:"too short for address" p;
        E.V_drop
      end

    method private action p = self#action_of_inplace p

    method! region_sem =
      Some
        (Region.Guard
           {
             gd_shift = 0;
             gd_barrier = false;
             gd_run = (fun p -> self#inplace p = E.V_keep);
           })
  end

class set_ip_address name =
  object (self)
    inherit E.simple_action name
    val mutable addr = 0
    method class_name = "SetIPAddress"

    method! configure config =
      match Ipaddr.of_string (String.trim config) with
      | Some a -> Ok (addr <- a)
      | None -> Error "SetIPAddress expects an IP address"

    method! private inplace p =
      (Packet.anno p).Packet.dst_ip <- addr;
      E.V_keep

    method private action p = self#action_of_inplace p

    method! region_sem =
      Some (Region.Mutate (fun p -> (Packet.anno p).Packet.dst_ip <- addr))
  end

class drop_broadcasts name =
  object (self)
    inherit E.simple_action name
    val mutable drops = 0
    method class_name = "DropBroadcasts"

    method! private inplace p =
      match (Packet.anno p).Packet.link_type with
      | Packet.Broadcast | Packet.Multicast ->
          drops <- drops + 1;
          self#drop ~reason:"link-level broadcast" p;
          E.V_drop
      | Packet.To_host | Packet.To_other -> E.V_keep

    method private action p = self#action_of_inplace p

    method! stats = [ ("drops", drops) ]
  end

(* IPGWOptions: router handling of IP options. Headers without options
   pass untouched; RR and TS options are accepted (a router would update
   them), anything else is a parameter problem and exits on output 1. *)
class ip_gw_options name =
  object (self)
    inherit E.simple_action name
    val mutable my_addr = 0
    val mutable problems = 0
    method class_name = "IPGWOptions"
    method! port_count = "1/1-2"
    method! processing = "a/ah"

    method! configure config =
      match Ipaddr.of_string (String.trim config) with
      | Some a -> Ok (my_addr <- a)
      | None -> Error "IPGWOptions expects the router's IP address"

    (* Recursion via a method, not an inner [let rec]: an inner closure
       would be allocated per packet even for the optionless common case
       (closure creation is eager, before the short-circuit). *)
    method private scan_options p hl off =
      if off >= hl then true
      else
        match Packet.get_u8 p off with
        | 0 -> true (* end of options *)
        | 1 -> self#scan_options p hl (off + 1) (* no-op *)
        | 7 | 68 ->
            (* record route / timestamp: length-checked skip *)
            let optlen = if off + 1 < hl then Packet.get_u8 p (off + 1) else 0 in
            if optlen < 2 || off + optlen > hl then false
            else begin
              self#charge (Hooks.W_custom ("ip-option", optlen));
              self#scan_options p hl (off + optlen)
            end
        | _ -> false

    method private options_ok p =
      let hl = Ip.header_length p in
      hl = Ip.min_header_length || self#scan_options p hl Ip.min_header_length

    method! private inplace p =
      if self#options_ok p then E.V_keep
      else begin
        problems <- problems + 1;
        (if self#noutputs > 1 then self#output 1 p
         else self#drop ~reason:"bad IP options" p);
        E.V_drop
      end

    method private action p = self#action_of_inplace p

    method! stats = [ ("problems", problems) ]
  end

class fix_ip_src name =
  object (self)
    inherit E.simple_action name
    val mutable my_addr = 0
    method class_name = "FixIPSrc"

    method! configure config =
      match Ipaddr.of_string (String.trim config) with
      | Some a -> Ok (my_addr <- a)
      | None -> Error "FixIPSrc expects the interface's IP address"

    method! private inplace p =
      let anno = Packet.anno p in
      if anno.Packet.fix_ip_src then begin
        anno.Packet.fix_ip_src <- false;
        Ip.set_src p my_addr;
        if not self#lean_work then
          self#charge (Hooks.W_checksum (Ip.header_length p));
        Ip.update_checksum p
      end;
      E.V_keep

    method private action p = self#action_of_inplace p
  end

class dec_ip_ttl name =
  object (self)
    inherit E.simple_action name
    val mutable expired = 0
    method class_name = "DecIPTTL"
    method! port_count = "1/1-2"
    method! processing = "a/ah"

    method! private inplace p =
      if Ip.ttl p <= 1 then begin
        expired <- expired + 1;
        (if self#noutputs > 1 then self#output 1 p
         else self#drop ~reason:"TTL expired" p);
        E.V_drop
      end
      else begin
        Ip.decrement_ttl p;
        E.V_keep
      end

    method private action p = self#action_of_inplace p

    method! stats = [ ("expired", expired) ]
  end

class ip_fragmenter name =
  object (self)
    inherit E.base name
    val mutable mtu = 1500
    val mutable fragments = 0
    val mutable too_big = 0
    method class_name = "IPFragmenter"
    method! port_count = "1/1-2"
    method! processing = "h/h"

    method! configure config =
      match Args.parse_int config with
      | Some m when m >= 68 -> Ok (mtu <- m)
      | _ -> Error "IPFragmenter expects an MTU of at least 68"

    method! push _ p =
      if Packet.length p <= mtu then self#output 0 p
      else if Ip.dont_fragment p then begin
        too_big <- too_big + 1;
        if self#noutputs > 1 then self#output 1 p
        else self#drop ~reason:"DF set and too big" p
      end
      else begin
        (* Split the payload into MTU-sized fragments on 8-byte bounds. *)
        let hl = Ip.header_length p in
        let payload_len = Packet.length p - hl in
        let chunk = (mtu - hl) land lnot 7 in
        let base_frag_off = Ip.fragment_offset p in
        let more_after = Ip.more_fragments p in
        let header = Packet.get_string p ~pos:0 ~len:hl in
        let rec emit off =
          if off < payload_len then begin
            let this_len = min chunk (payload_len - off) in
            let last = off + this_len >= payload_len in
            let frag = Packet.create ~headroom:36 (hl + this_len) in
            Packet.set_string frag ~pos:0 header;
            Packet.set_string frag ~pos:hl
              (Packet.get_string p ~pos:(hl + off) ~len:this_len);
            self#charge (Hooks.W_copy (hl + this_len));
            Ip.set_total_length frag (hl + this_len);
            Ip.set_flags_fragment frag ~df:false
              ~mf:((not last) || more_after)
              ~frag:(base_frag_off + (off / 8));
            Ip.update_checksum frag;
            let anno = Packet.anno frag and orig = Packet.anno p in
            anno.Packet.dst_ip <- orig.Packet.dst_ip;
            anno.Packet.paint <- orig.Packet.paint;
            anno.Packet.device <- orig.Packet.device;
            fragments <- fragments + 1;
            self#spawn frag;
            self#output 0 frag;
            emit (off + this_len)
          end
        in
        emit 0;
        (* The original is consumed; its payload lives on in the
           fragments, which are accounted as spawns. *)
        self#drop ~reason:"fragmented" p
      end

    method! push_batch _ batch =
      (* The common case is a whole batch of frames already under the
         MTU: compact those and forward them in one transfer; anything
         needing fragmentation takes the scalar slow path. *)
      let n = Array.length batch in
      let m = ref 0 in
      for i = 0 to n - 1 do
        let p = batch.(i) in
        if Packet.length p <= mtu && not self#is_quarantined then begin
          batch.(!m) <- p;
          incr m
        end
        else self#guard (self#push 0) p
      done;
      if !m > 0 then self#output_batch 0 (self#sub_batch batch !m)

    method! stats = [ ("fragments", fragments); ("too_big", too_big) ]
  end

(* ICMPError: manufactures an ICMP error packet for the offending packet,
   addressed to its source, and marks it with the Fix-IP-Source annotation
   so FixIPSrc fills in the outgoing interface's address (as in Click). *)
class icmp_error name =
  object (self)
    inherit E.base name
    val mutable my_addr = 0
    val mutable icmp_type = 0
    val mutable icmp_code = 0
    val mutable sent = 0
    method class_name = "ICMPError"

    method! configure config =
      match Args.split config with
      | addr :: type_s :: rest -> (
          match Ipaddr.of_string addr with
          | None -> Error "ICMPError expects an IP address first"
          | Some a -> (
              my_addr <- a;
              let type_v =
                match String.trim type_s with
                | "unreachable" -> Some Icmp.type_dst_unreachable
                | "redirect" -> Some Icmp.type_redirect
                | "timeexceeded" -> Some Icmp.type_time_exceeded
                | "parameterproblem" -> Some Icmp.type_parameter_problem
                | s -> int_of_string_opt s
              in
              let code_v =
                match rest with
                | [] -> Some 0
                | [ code_s ] -> (
                    match String.trim code_s with
                    | "net" -> Some 0
                    | "host" -> Some 1
                    | "protocol" -> Some 2
                    | "port" -> Some 3
                    | "needfrag" -> Some 4
                    | "transittime" -> Some 0
                    | s -> int_of_string_opt s)
                | _ -> None
              in
              match (type_v, code_v) with
              | Some t, Some c ->
                  icmp_type <- t;
                  icmp_code <- c;
                  Ok ()
              | _ -> Error "ICMPError: bad type or code"))
      | _ -> Error "ICMPError expects IP, TYPE [, CODE]"

    method! push _ p =
      (* Do not generate errors about ICMP errors, fragments, broadcasts. *)
      let is_icmp_error =
        Packet.length p >= Ip.min_header_length + 1
        && Ip.protocol p = Ip.proto_icmp
        && Ip.header_length p + 1 <= Packet.length p
        &&
        let t = Packet.get_u8 p (Ip.header_length p) in
        t = Icmp.type_dst_unreachable || t = Icmp.type_time_exceeded
        || t = Icmp.type_parameter_problem || t = Icmp.type_redirect
      in
      if
        Packet.length p < Ip.min_header_length
        || Ip.fragment_offset p > 0
        || is_icmp_error
        || (Packet.anno p).Packet.link_type <> Packet.To_host
      then self#drop ~reason:"no ICMP error for this packet" p
      else begin
        let quoted = min (Ip.header_length p + 8) (Packet.length p) in
        let icmp_len = 8 + quoted in
        let total = Ip.min_header_length + icmp_len in
        (* Headroom of 36 leaves the IP header word-aligned: ARM-safe
           without an Align element (cf. click-align). *)
        let e = Packet.create ~headroom:36 total in
        Ip.write_header e ~src:my_addr ~dst:(Ip.src p) ~protocol:Ip.proto_icmp
          ~total_length:total ();
        let ioff = Ip.min_header_length in
        Icmp.set_type ~off:ioff e icmp_type;
        Icmp.set_code ~off:ioff e icmp_code;
        Packet.set_string e ~pos:(ioff + 8)
          (Packet.get_string p ~pos:0 ~len:quoted);
        Icmp.update_checksum ~off:ioff e ~len:icmp_len;
        self#charge (Hooks.W_checksum icmp_len);
        let anno = Packet.anno e in
        anno.Packet.dst_ip <- Ip.src p;
        anno.Packet.fix_ip_src <- true;
        sent <- sent + 1;
        self#spawn e;
        self#output 0 e;
        self#drop ~reason:"ICMP error generated" p
      end

    method! stats = [ ("sent", sent) ]
  end

class ether_encap name =
  object (self)
    inherit E.simple_action name
    val mutable ethertype = 0
    val mutable src = Ethaddr.zero
    val mutable dst = Ethaddr.zero
    method class_name = "EtherEncap"

    method! configure config =
      match Args.split config with
      | [ t; s; d ] -> (
          let t = String.trim t in
          let type_v =
            if String.length t > 2 && t.[0] = '0' && (t.[1] = 'x' || t.[1] = 'X')
            then int_of_string_opt t
            else int_of_string_opt ("0x" ^ t)
          in
          match (type_v, Ethaddr.of_string s, Ethaddr.of_string d) with
          | Some t, Some s, Some d ->
              ethertype <- t;
              src <- s;
              dst <- d;
              Ok ()
          | _ -> Error "EtherEncap expects ETHERTYPE, SRC, DST")
      | _ -> Error "EtherEncap expects ETHERTYPE, SRC, DST"

    method! private inplace p =
      Ether.encap p ~dst ~src ~ethertype;
      E.V_keep

    method private action p = self#action_of_inplace p
  end

let register () =
  def "Paint" (fun n -> (new paint n :> E.t));
  def "CheckPaint" ~ports:"1/1-2" ~processing:"a/ah" (fun n ->
      (new check_paint n :> E.t));
  def "PaintTee" ~ports:"1/1-2" ~processing:"a/ah" (fun n ->
      (new check_paint n :> E.t));
  def "Strip" (fun n -> (new strip n :> E.t));
  def "Unstrip" (fun n -> (new unstrip n :> E.t));
  def "CheckIPHeader" ~ports:"1/1-2" ~processing:"a/ah" (fun n ->
      (new check_ip_header n :> E.t));
  def "GetIPAddress" (fun n -> (new get_ip_address n :> E.t));
  def "SetIPAddress" (fun n -> (new set_ip_address n :> E.t));
  def "DropBroadcasts" (fun n -> (new drop_broadcasts n :> E.t));
  def "IPGWOptions" ~ports:"1/1-2" ~processing:"a/ah" (fun n ->
      (new ip_gw_options n :> E.t));
  def "FixIPSrc" (fun n -> (new fix_ip_src n :> E.t));
  def "DecIPTTL" ~ports:"1/1-2" ~processing:"a/ah" (fun n ->
      (new dec_ip_ttl n :> E.t));
  def "IPFragmenter" ~ports:"1/1-2" ~processing:"h/h" (fun n ->
      (new ip_fragmenter n :> E.t));
  def "ICMPError" (fun n -> (new icmp_error n :> E.t));
  def "EtherEncap" (fun n -> (new ether_encap n :> E.t))
