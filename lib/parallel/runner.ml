module Driver = Oclick_runtime.Driver
module Element = Oclick_runtime.Element
module Hooks = Oclick_runtime.Hooks
module Netdevice = Oclick_runtime.Netdevice
module Packet = Oclick_packet.Packet

type t = {
  part : Partition.t;
  drv : Driver.t;
  shard_tasks : Element.t array array;
  pools : Packet.Pool.t array;
  ndomains : int;
  warn_hooks : Hooks.t;  (* shard 0's hooks, for runner-level warnings *)
}

(* Wrap a shard's hooks so accounted drops recycle into that shard's
   pool — the same contract Driver.instantiate provides for the
   single-pool case. *)
let wrap_pool_recycle hooks pool =
  let user_on_drop = hooks.Hooks.on_drop in
  {
    hooks with
    Hooks.on_drop =
      (fun ~idx ~cls ~reason p ->
        user_on_drop ~idx ~cls ~reason p;
        Packet.Pool.recycle pool p);
  }

let queue_capacity e =
  match List.assoc_opt "capacity" e#stats with Some c -> c | None -> 1000

let create ?(hooks_for = fun _ -> Hooks.null) ?(devices = []) ?(batch = 1)
    ?(pool = false) ?(pool_capacity = 1024)
    ?(pool_buf_size = Packet.Pool.default_buf_size) ?(pool_slab = true)
    ?(compile = false) ?(fuse = false) ?ring_capacity ?weights ?clock ~domains
    graph =
  let make_pool () =
    Packet.Pool.create ~capacity:pool_capacity ~buf_size:pool_buf_size
      ~slab:pool_slab ()
  in
  if domains < 1 then
    Error (Printf.sprintf "runner: bad domain count %d" domains)
  else if domains = 1 then begin
    (* Degenerate case: exactly the unsharded driver, so single-domain
       results are byte-identical to not using the runner at all. *)
    let hooks = hooks_for 0 in
    let pl = if pool then Some (make_pool ()) else None in
    match
      Driver.instantiate ~hooks ~devices ~batch ?pool:pl ~compile ~fuse ?clock
        graph
    with
    | Error e -> Error e
    | Ok drv ->
        Ok
          {
            part = (match Partition.compute ~domains:1 graph with
                   | Ok p -> p
                   | Error e -> invalid_arg e);
            drv;
            shard_tasks = [| Driver.tasks drv |];
            pools = (match pl with Some p -> [| p |] | None -> [||]);
            ndomains = 1;
            warn_hooks = hooks;
          }
  end
  else begin
    match Partition.compute ?ring_capacity ?weights ~domains graph with
    | Error e -> Error e
    | Ok part -> (
        let pools =
          if pool then Array.init domains (fun _ -> make_pool ()) else [||]
        in
        let shard_hooks =
          Array.init domains (fun s ->
              let h = hooks_for s in
              if pool then wrap_pool_recycle h pools.(s) else h)
        in
        match
          Driver.instantiate ~hooks:Hooks.null ~devices ~batch ~compile:false
            ?clock part.Partition.pt_graph
        with
        | Error e -> Error e
        | Ok drv ->
            (* Every element reports through — and recycles into — its
               own shard's hooks and pool; a cut Queue uses its producer
               shard's, because push (and its drops) runs there. *)
            let hook_shard_of = Array.copy part.Partition.pt_shard_of in
            List.iter
              (fun (c : Partition.cut) ->
                hook_shard_of.(c.Partition.cut_queue) <-
                  c.Partition.cut_from_shard)
              part.Partition.pt_cuts;
            let n = Driver.size drv in
            let setup_err = ref None in
            for i = 0 to n - 1 do
              let e = Driver.element_at drv i in
              let s = hook_shard_of.(i) in
              e#set_hooks shard_hooks.(s);
              if pool then e#set_pool (Some pools.(s))
            done;
            (* Switch cut Queues to ring mode at their configured
               capacity. Must precede compilation: fused closures bind
               element state at compile time. *)
            List.iter
              (fun (c : Partition.cut) ->
                let e = Driver.element_at drv c.Partition.cut_queue in
                let cap = queue_capacity e in
                match e#write_handler "spsc" (string_of_int cap) with
                | Ok () -> ()
                | Error msg ->
                    if !setup_err = None then
                      setup_err := Some (e#name ^ ": " ^ msg))
              part.Partition.pt_cuts;
            match !setup_err with
            | Some e -> Error e
            | None -> (
                let finish () =
                  (* Shared lazies must not be forced concurrently. *)
                  Element.force_scratch_placeholder ();
                  let tasks = Driver.tasks drv in
                  let shard_tasks =
                    Array.init domains (fun s ->
                        Array.of_list
                          (List.filter
                             (fun (e : Element.t) ->
                               part.Partition.pt_shard_of.(e#index) = s)
                             (Array.to_list tasks)))
                  in
                  {
                    part;
                    drv;
                    shard_tasks;
                    pools;
                    ndomains = domains;
                    warn_hooks = shard_hooks.(0);
                  }
                in
                if compile || fuse then
                  match Driver.compile ~fuse drv with
                  | Error e -> Error e
                  | Ok () -> Ok (finish ())
                else Ok (finish ())))
  end

let driver t = t.drv
let partition t = t.part
let domains t = t.ndomains
let pool_stats t = Array.map Packet.Pool.stats t.pools

(* How many consecutive idle rounds before a domain votes quiet, and how
   many all-quiet-but-ring-not-empty polls before declaring a stall
   (packets parked in a ring nobody will drain, e.g. a full device TX
   ring with no consumer). The stall abort is additionally wall-clock
   gated to twice the watchdog deadline: a domain wedged inside an
   element call still holds the quiet vote it cast while idle, so
   "everyone quiet, ring not empty" is exactly what a wedge looks like —
   the watchdog must get its chance to diagnose it before the abort
   hammer falls. *)
let idle_threshold = 32
let stall_threshold = 100_000

(* Backpressure: how often a domain samples its outbound cut rings
   (in loop iterations), and the occupancy fractions that trigger and
   release the shrunk-batch mode. *)
let pressure_check_interval = 64

type report = {
  rp_converged : bool;
  rp_stalled : int list;
  rp_leaked : int list;
  rp_drained : int;
  rp_pressure : int array;
}

let clean_report ~domains converged =
  {
    rp_converged = converged;
    rp_stalled = [];
    rp_leaked = [];
    rp_drained = 0;
    rp_pressure = Array.make domains 0;
  }

let run_until_idle_report ?(max_rounds = 1_000_000) ?(watchdog_ms = 1_000) t =
  if t.ndomains = 1 then
    clean_report ~domains:1 (Driver.run_until_idle ~max_rounds t.drv)
  else begin
    (* Pools may still be claimed by the previous run's (now dead)
       domains; each new domain re-claims on first use. *)
    Array.iter Packet.Pool.detach t.pools;
    let cut_elt (c : Partition.cut) =
      Driver.element_at t.drv c.Partition.cut_queue
    in
    let cuts = t.part.Partition.pt_cuts in
    let work_stamp = Atomic.make 0 in
    let quiet = Atomic.make 0 in
    let stop = Atomic.make false in
    let aborted = Atomic.make false in
    (* Watchdog state. [hb] is bumped by its domain once per scheduler
       iteration; the supervisor (the calling thread) marks a domain
       [stalled] when its heartbeat sits still for [watchdog_ms] of wall
       time and bumps [nstalled], which the healthy domains subtract
       from the quorum so they can reach the termination condition
       without it. (The stalled domain's own quiet vote — cast while
       idle, stale once it wedged — must not be double-counted, which is
       why the supervisor does not vote on its behalf.) A marked domain
       checks the flag at the top of its loop: if its wedged element
       call ever returns, it withdraws any stale quiet vote, sets
       [exited] and leaves. *)
    let hb = Array.init t.ndomains (fun _ -> Atomic.make 0) in
    let stalled = Array.init t.ndomains (fun _ -> Atomic.make false) in
    let nstalled = Atomic.make 0 in
    let exited = Array.init t.ndomains (fun _ -> Atomic.make false) in
    let deadline_s = float_of_int (max 1 watchdog_ms) /. 1000.0 in
    let pressure = Array.make t.ndomains 0 in
    let ring_len (e : Element.t) =
      match List.assoc_opt "length" e#stats with Some l -> l | None -> 0
    in
    let rings_empty () =
      (* Rings consumed by a stalled shard are excluded: nobody will
         drain them, and waiting for them would turn the stall back into
         a hang. They are drained to accounted drops after the run. *)
      List.for_all
        (fun (c : Partition.cut) ->
          Atomic.get stalled.(c.Partition.cut_to_shard)
          || ring_len (cut_elt c) = 0)
        cuts
    in
    let run_shard d =
      let tasks = t.shard_tasks.(d) in
      let n = Array.length tasks in
      let rr = ref 0 in
      let budget = ref max_rounds in
      let idle = ref 0 in
      let in_quiet = ref false in
      let stalls = ref 0 in
      let stall_t0 = ref 0.0 in
      (* This shard's outbound cut rings, with trigger/release
         occupancy levels. *)
      let outbound =
        List.filter_map
          (fun (c : Partition.cut) ->
            if c.Partition.cut_from_shard = d then begin
              let e = cut_elt c in
              let cap = queue_capacity e in
              Some (e, max 1 (cap * 7 / 8), cap / 2)
            end
            else None)
          cuts
      in
      let shrunk = ref false in
      let saved_batch = Array.map (fun (e : Element.t) -> e#batch_size) tasks in
      let check_pressure () =
        (* Livelock avoidance under sustained ring pressure: drop the
           effective batch to 1 (the producer stops slamming full rings
           with whole batches whose tails become drops) and yield, until
           the consumer drains below the release level. *)
        let over =
          List.exists (fun (e, high, _) -> ring_len e >= high) outbound
        in
        let clear =
          (not over) && List.for_all (fun (e, _, low) -> ring_len e <= low) outbound
        in
        if over && not !shrunk then begin
          shrunk := true;
          pressure.(d) <- pressure.(d) + 1;
          Array.iter (fun (e : Element.t) -> e#set_batch_size 1) tasks
        end
        else if clear && !shrunk then begin
          shrunk := false;
          Array.iteri
            (fun i (e : Element.t) -> e#set_batch_size saved_batch.(i))
            tasks
        end;
        if over then Domain.cpu_relax ()
      in
      let iters = ref 0 in
      let enter_quiet () =
        if (not !in_quiet) && not (Atomic.get stalled.(d)) then begin
          in_quiet := true;
          Atomic.incr quiet
        end
      in
      let leave_quiet () =
        if !in_quiet then begin
          in_quiet := false;
          Atomic.decr quiet
        end
      in
      while not (Atomic.get stop || Atomic.get stalled.(d)) do
        Atomic.incr hb.(d);
        incr iters;
        if outbound <> [] && !iters mod pressure_check_interval = 0 then
          check_pressure ();
        let did = n > 0 && Driver.run_task_array tasks ~start:!rr in
        if n > 0 then rr := (!rr + 1) mod n;
        if did then begin
          leave_quiet ();
          idle := 0;
          stalls := 0;
          Atomic.incr work_stamp;
          decr budget;
          if !budget <= 0 then begin
            Atomic.set aborted true;
            Atomic.set stop true
          end
        end
        else begin
          incr idle;
          if !idle >= idle_threshold then enter_quiet ();
          if !in_quiet then begin
            (* Termination: everyone quiet and nothing in flight. The
               stamp re-read rules out a peer that grabbed work between
               our two checks. *)
            let stamp = Atomic.get work_stamp in
            if Atomic.get quiet >= t.ndomains - Atomic.get nstalled then begin
              if rings_empty () && Atomic.get work_stamp = stamp then
                Atomic.set stop true
              else begin
                if !stalls = 0 then stall_t0 := Unix.gettimeofday ();
                incr stalls;
                if
                  !stalls >= stall_threshold
                  && Unix.gettimeofday () -. !stall_t0 >= 2.0 *. deadline_s
                then begin
                  Atomic.set aborted true;
                  Atomic.set stop true
                end
              end
            end
            else stalls := 0;
            if not (Atomic.get stop) then Domain.cpu_relax ()
          end
        end
      done;
      leave_quiet ();
      if !shrunk then
        Array.iteri
          (fun i (e : Element.t) -> e#set_batch_size saved_batch.(i))
          tasks;
      Atomic.set exited.(d) true
    in
    (* All shards run on spawned domains; the calling thread is the
       supervisor. (Running shard 0 inline would leave nobody to detect
       shard 0 stalling.) *)
    let spawned =
      Array.init t.ndomains (fun d -> Domain.spawn (fun () -> run_shard d))
    in
    let last_hb = Array.map Atomic.get hb in
    let last_change = Array.make t.ndomains (Unix.gettimeofday ()) in
    while not (Atomic.get stop) do
      Unix.sleepf 0.001;
      let now = Unix.gettimeofday () in
      for d = 0 to t.ndomains - 1 do
        if not (Atomic.get stalled.(d) || Atomic.get exited.(d)) then begin
          let h = Atomic.get hb.(d) in
          if h <> last_hb.(d) then begin
            last_hb.(d) <- h;
            last_change.(d) <- now
          end
          else if now -. last_change.(d) >= deadline_s then begin
            Atomic.set stalled.(d) true;
            Atomic.incr nstalled;
            t.warn_hooks.Hooks.on_warn ~src:"parallel"
              (Printf.sprintf
                 "watchdog: domain %d stalled (no heartbeat for %d ms); \
                  quarantining its shard" d watchdog_ms)
          end
        end
      done;
      (* Every domain stalled: nobody is left to decide termination. *)
      if Array.for_all Atomic.get stalled then Atomic.set stop true
    done;
    (* Join the domains that exited on their own; give stalled domains a
       grace period to notice the flag once their wedged call returns.
       A domain that never returns is leaked — joining it would be the
       very hang the watchdog exists to avoid. *)
    let joined = Array.make t.ndomains false in
    let join_if_exited d =
      if (not joined.(d)) && Atomic.get exited.(d) then begin
        Domain.join spawned.(d);
        joined.(d) <- true
      end
    in
    for d = 0 to t.ndomains - 1 do
      if not (Atomic.get stalled.(d)) then begin
        Domain.join spawned.(d);
        joined.(d) <- true
      end
    done;
    let grace_until = Unix.gettimeofday () +. (2.0 *. deadline_s) in
    let all_joined () = Array.for_all Fun.id joined in
    while (not (all_joined ())) && Unix.gettimeofday () < grace_until do
      Unix.sleepf 0.001;
      for d = 0 to t.ndomains - 1 do
        join_if_exited d
      done
    done;
    for d = 0 to t.ndomains - 1 do
      join_if_exited d
    done;
    (* Drain the stalled shards' inbound rings to accounted drops — but
       only rings whose producer and consumer domains have both
       terminated, so the SPSC single-consumer contract (and the
       per-domain ownership of hooks) still holds. The drop reports
       through the cut Queue, i.e. the producer shard's hooks, like
       every other drop at that queue. *)
    let drained = ref 0 in
    List.iter
      (fun (c : Partition.cut) ->
        let consumer = c.Partition.cut_to_shard in
        let producer = c.Partition.cut_from_shard in
        if Atomic.get stalled.(consumer) && joined.(consumer) && joined.(producer)
        then begin
          let e = cut_elt c in
          let continue = ref true in
          while !continue do
            match e#pull 0 with
            | Some p ->
                incr drained;
                e#drop ~reason:"stalled domain drained" p
            | None -> continue := false
          done
        end)
      cuts;
    let stalled_l =
      List.filter
        (fun d -> Atomic.get stalled.(d))
        (List.init t.ndomains Fun.id)
    in
    let leaked = List.filter (fun d -> not joined.(d)) stalled_l in
    let converged = (not (Atomic.get aborted)) && stalled_l = [] in
    if Atomic.get aborted then
      t.warn_hooks.Hooks.on_warn ~src:"parallel"
        (Printf.sprintf
           "run_until_idle: aborted after %d working rounds on some domain \
            (possible livelock or stranded ring traffic)"
           max_rounds);
    if !drained > 0 then
      t.warn_hooks.Hooks.on_warn ~src:"parallel"
        (Printf.sprintf
           "watchdog: drained %d packet(s) from stalled shards' rings to \
            accounted drops" !drained);
    {
      rp_converged = converged;
      rp_stalled = stalled_l;
      rp_leaked = leaked;
      rp_drained = !drained;
      rp_pressure = pressure;
    }
  end

let run_until_idle ?max_rounds ?watchdog_ms t =
  (run_until_idle_report ?max_rounds ?watchdog_ms t).rp_converged
