lib/classifier/compile.mli: Oclick_packet Tree
