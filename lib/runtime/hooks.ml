type transfer = {
  tr_src_idx : int;
  tr_src_class : string;
  tr_src_port : int;
  tr_dst_idx : int;
  tr_dst_class : string;
  tr_dst_port : int;
  tr_direct : bool;
  tr_pull : bool;
}

type work =
  | W_classify_interp of int
  | W_classify_compiled of int
  | W_checksum of int
  | W_copy of int
  | W_lookup of int
  | W_queue
  | W_custom of string * int

type t = {
  on_transfer : transfer -> Oclick_packet.Packet.t -> unit;
  on_transfer_batch : transfer -> Oclick_packet.Packet.t array -> int -> unit;
  on_work : idx:int -> cls:string -> work -> unit;
  on_drop : idx:int -> cls:string -> reason:string ->
            Oclick_packet.Packet.t -> unit;
  on_spawn : idx:int -> cls:string -> Oclick_packet.Packet.t -> unit;
  on_fault : idx:int -> cls:string -> reason:string -> unit;
  on_warn : src:string -> string -> unit;
}

let null =
  {
    on_transfer = (fun _ _ -> ());
    on_transfer_batch = (fun _ _ _ -> ());
    on_work = (fun ~idx:_ ~cls:_ _ -> ());
    on_drop = (fun ~idx:_ ~cls:_ ~reason:_ _ -> ());
    on_spawn = (fun ~idx:_ ~cls:_ _ -> ());
    on_fault = (fun ~idx:_ ~cls:_ ~reason:_ -> ());
    on_warn = (fun ~src:_ _ -> ());
  }
