lib/optim/install.mli: Oclick_graph
