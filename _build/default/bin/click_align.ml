(* click-align: insert/remove Align elements so every element sees the
   packet alignment it requires. *)

open Cmdliner

let run input =
  let source = Tool_common.read_input input in
  let router = Tool_common.parse_router source in
  match Oclick_optim.Align.run router with
  | Error e -> Tool_common.die "%s" e
  | Ok (router, inserted, removed) ->
      Printf.eprintf "click-align: %d Aligns inserted, %d removed\n" inserted
        removed;
      Tool_common.output_router router

let () =
  Tool_common.run_tool "click-align"
    "Adjust packet data alignment in a configuration."
    Term.(const run $ Tool_common.input_arg)
