type resolved = {
  input_kind : Spec.port_kind array array;
  output_kind : Spec.port_kind array array;
}

let spec_or_default (table : Spec.table) cls =
  match table cls with
  | Some s -> s
  | None -> Spec.make ~ports:"-/-" ~processing:"a/a" cls

(* Initial per-port kinds from the specification table. Arrays are sized by
   the ports actually used in the graph. *)
let initial_kinds router table =
  let n = List.fold_left max 0 (Router.indices router) + 1 in
  let input_kind = Array.make n [||] and output_kind = Array.make n [||] in
  List.iter
    (fun i ->
      let spec = spec_or_default table (Router.class_of router i) in
      input_kind.(i) <-
        Array.init (Router.input_port_count router i) (fun p ->
            Spec.input_processing spec p);
      output_kind.(i) <-
        Array.init (Router.output_port_count router i) (fun p ->
            Spec.output_processing spec p))
    (Router.indices router);
  { input_kind; output_kind }

let resolve_processing router table =
  let r = initial_kinds router table in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Remember which ports were agnostic in the spec: only those may change. *)
  let was_agnostic_in = Array.map (Array.map (( = ) Spec.Agnostic)) r.input_kind
  and was_agnostic_out =
    Array.map (Array.map (( = ) Spec.Agnostic)) r.output_kind
  in
  let changed = ref true in
  let assign_element i kind =
    (* All agnostic ports of one element resolve alike. *)
    Array.iteri
      (fun p was ->
        if was && r.input_kind.(i).(p) = Spec.Agnostic then begin
          r.input_kind.(i).(p) <- kind;
          changed := true
        end)
      was_agnostic_in.(i);
    Array.iteri
      (fun p was ->
        if was && r.output_kind.(i).(p) = Spec.Agnostic then begin
          r.output_kind.(i).(p) <- kind;
          changed := true
        end)
      was_agnostic_out.(i)
  in
  while !changed do
    changed := false;
    List.iter
      (fun (h : Router.hookup) ->
        let ok = r.output_kind.(h.from_idx).(h.from_port)
        and ik = r.input_kind.(h.to_idx).(h.to_port) in
        match (ok, ik) with
        | Spec.Push, Spec.Pull | Spec.Pull, Spec.Push ->
            err "%s[%d] -> [%d]%s: %s output connected to %s input"
              (Router.name router h.from_idx)
              h.from_port h.to_port
              (Router.name router h.to_idx)
              (Spec.kind_to_string ok) (Spec.kind_to_string ik)
        | Spec.Agnostic, (Spec.Push | Spec.Pull) ->
            assign_element h.from_idx ik
        | (Spec.Push | Spec.Pull), Spec.Agnostic ->
            assign_element h.to_idx ok
        | Spec.Push, Spec.Push | Spec.Pull, Spec.Pull
        | Spec.Agnostic, Spec.Agnostic ->
            ())
      (Router.hookups router)
  done;
  (* Remaining agnostic chains default to push, as in Click. *)
  List.iter
    (fun i ->
      Array.iteri
        (fun p k ->
          if k = Spec.Agnostic then r.input_kind.(i).(p) <- Spec.Push)
        r.input_kind.(i);
      Array.iteri
        (fun p k ->
          if k = Spec.Agnostic then r.output_kind.(i).(p) <- Spec.Push)
        r.output_kind.(i))
    (Router.indices router);
  if !errors = [] then Ok r else Error (List.rev !errors)

let check router table =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Classes and port counts. *)
  List.iter
    (fun i ->
      let cls = Router.class_of router i in
      match table cls with
      | None -> err "%s: unknown element class %S" (Router.name router i) cls
      | Some spec -> (
          match Spec.parse_port_counts spec.Spec.s_ports with
          | None ->
              err "class %s: malformed port-count spec %S" cls
                spec.Spec.s_ports
          | Some (ins, outs) ->
              let nin = Router.input_port_count router i
              and nout = Router.output_port_count router i in
              if not (Spec.in_range ins nin) then
                err "%s: %d input ports, but class %s allows %s"
                  (Router.name router i) nin cls spec.Spec.s_ports;
              if not (Spec.in_range outs nout) then
                err "%s: %d output ports, but class %s allows %s"
                  (Router.name router i) nout cls spec.Spec.s_ports;
              (* No gaps: every port below the max used must be connected,
                 and at least the class's minimum must be present. *)
              let have_out = Array.make nout false
              and have_in = Array.make nin false in
              List.iter
                (fun (p, _, _) -> have_out.(p) <- true)
                (Router.outputs_of router i);
              List.iter
                (fun (p, _, _) -> have_in.(p) <- true)
                (Router.inputs_of router i);
              Array.iteri
                (fun p c ->
                  if not c then
                    err "%s: output port %d unconnected" (Router.name router i) p)
                have_out;
              Array.iteri
                (fun p c ->
                  if not c then
                    err "%s: input port %d unconnected" (Router.name router i) p)
                have_in;
              if nin < ins.Spec.lo then
                err "%s: input ports %d..%d unconnected" (Router.name router i)
                  nin (ins.Spec.lo - 1);
              if nout < outs.Spec.lo then
                err "%s: output ports %d..%d unconnected" (Router.name router i)
                  nout (outs.Spec.lo - 1)))
    (Router.indices router);
  (* Push outputs and pull inputs are used exactly once. *)
  (match resolve_processing router table with
  | Error msgs -> List.iter (fun m -> errors := m :: !errors) msgs
  | Ok r ->
      List.iter
        (fun i ->
          let count_out = Array.make (Router.output_port_count router i) 0
          and count_in = Array.make (Router.input_port_count router i) 0 in
          List.iter
            (fun (p, _, _) -> count_out.(p) <- count_out.(p) + 1)
            (Router.outputs_of router i);
          List.iter
            (fun (p, _, _) -> count_in.(p) <- count_in.(p) + 1)
            (Router.inputs_of router i);
          Array.iteri
            (fun p c ->
              if c > 1 && r.output_kind.(i).(p) = Spec.Push then
                err "%s: push output port %d connected %d times"
                  (Router.name router i) p c)
            count_out;
          Array.iteri
            (fun p c ->
              if c > 1 && r.input_kind.(i).(p) = Spec.Pull then
                err "%s: pull input port %d connected %d times"
                  (Router.name router i) p c)
            count_in)
        (Router.indices router));
  List.rev !errors
