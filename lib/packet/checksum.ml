type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Unsafe fixed-width loads: compiler primitives that become single
   native load instructions (no per-byte composition, no per-access
   bounds check — callers hoist one range check over the whole region).
   The 16-bit loads are native-endian; the one's-complement sum is
   byte-order independent up to a byte swap of the final folded result
   (RFC 1071 §2(B)), so the inner loop runs entirely in native order and
   pays a single [bswap16] at the end on little-endian machines. *)
external by_get16u : bytes -> int -> int = "%caml_bytes_get16u"
external bs_get16u : bigstring -> int -> int = "%caml_bigstring_get16u"
external swap16 : int -> int = "%bswap16"

let fold16 sum =
  let s = (sum land 0xffff) + (sum lsr 16) in
  (s land 0xffff) + (s lsr 16)

(* Finish a native-order partial sum: fold to 16 bits, then swap into
   network order on little-endian hosts. *)
let finish_native sum = if Sys.big_endian then fold16 sum else swap16 (fold16 sum)

(* An odd trailing byte is padded with zero on its right in network
   order; in a native-order (little-endian) word that pad occupies the
   high byte, so the data byte contributes unshifted. *)
let tail_byte c = if Sys.big_endian then Char.code c lsl 8 else Char.code c

(* Word-at-a-time inner loop: one bounds check at entry covers the whole
   region, then unsafe 16-bit loads, unrolled four words (8 bytes) per
   iteration. Partial sums stay well below [max_int] for any realistic
   packet (len < 2^46 on 64-bit), so no intermediate folding is needed
   before the final fold. *)
let ones_complement_sum buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum.ones_complement_sum";
  let sum = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  while !i + 8 <= stop do
    let o = !i in
    sum :=
      !sum + by_get16u buf o + by_get16u buf (o + 2) + by_get16u buf (o + 4)
      + by_get16u buf (o + 6);
    i := o + 8
  done;
  while !i + 2 <= stop do
    sum := !sum + by_get16u buf !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + tail_byte (Bytes.unsafe_get buf !i);
  finish_native !sum

(* The same loop over an off-heap (bigstring) buffer — the slab-backed
   packet representation's checksum path. *)
let ones_complement_sum_big (buf : bigstring) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim buf then
    invalid_arg "Checksum.ones_complement_sum";
  let sum = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  while !i + 8 <= stop do
    let o = !i in
    sum :=
      !sum + bs_get16u buf o + bs_get16u buf (o + 2) + bs_get16u buf (o + 4)
      + bs_get16u buf (o + 6);
    i := o + 8
  done;
  while !i + 2 <= stop do
    sum := !sum + bs_get16u buf !i;
    i := !i + 2
  done;
  if !i < stop then
    sum := !sum + tail_byte (Bigarray.Array1.unsafe_get buf !i);
  finish_native !sum

let checksum buf ~pos ~len = lnot (ones_complement_sum buf ~pos ~len) land 0xffff

let checksum_big buf ~pos ~len =
  lnot (ones_complement_sum_big buf ~pos ~len) land 0xffff

let combine a b = fold16 (a + b)
let finish sum = lnot sum land 0xffff

let ip_header_valid buf ~pos ~ihl =
  ihl >= 5
  && pos >= 0
  && pos + (ihl * 4) <= Bytes.length buf
  && checksum buf ~pos ~len:(ihl * 4) = 0
