(* LookupIPRoute: a static routing table with longest-prefix match.

   Configuration: one argument per route, "ADDR/MASK [GW] PORT", e.g.
   "18.26.4.0/24 1" or "0.0.0.0/0 18.26.4.1 1". The lookup reads the
   destination-address annotation (set by GetIPAddress) and, when the
   route has a gateway, rewrites the annotation so ARPQuerier resolves the
   gateway — exactly Click's LookupIPRoute/StaticIPLookup behaviour. *)

open Prelude

type route = { rt_addr : Ipaddr.t; rt_mask : Ipaddr.t; rt_gw : Ipaddr.t; rt_port : int }

let parse_route arg =
  let parts = List.filter (( <> ) "") (String.split_on_char ' ' arg) in
  match parts with
  | [ prefix; port ] -> (
      match (Ipaddr.parse_prefix prefix, Args.parse_int port) with
      | Some (addr, mask), Some port when port >= 0 ->
          Some { rt_addr = addr land mask; rt_mask = mask; rt_gw = 0; rt_port = port }
      | _ -> None)
  | [ prefix; gw; port ] -> (
      match
        (Ipaddr.parse_prefix prefix, Ipaddr.of_string gw, Args.parse_int port)
      with
      | Some (addr, mask), Some gw, Some port when port >= 0 ->
          Some { rt_addr = addr land mask; rt_mask = mask; rt_gw = gw; rt_port = port }
      | _ -> None)
  | _ -> None

class lookup_ip_route name =
  object (self)
    inherit E.base name
    val mutable routes : route array = [||]
    val mutable misses = 0
    val mutable port_scratch : int array = [||]
    method class_name = "LookupIPRoute"
    method! port_count = "1/-"
    method! processing = "h/h"

    method! configure config =
      let args = Args.split config in
      let parsed = List.map parse_route args in
      if List.exists Option.is_none parsed then
        Error "LookupIPRoute: bad route (want ADDR/MASK [GW] PORT)"
      else begin
        let rs = List.filter_map Fun.id parsed in
        (* Longest prefix first so a linear scan is longest-prefix match. *)
        let more_specific a b = Int.compare b.rt_mask a.rt_mask in
        routes <- Array.of_list (List.stable_sort more_specific rs);
        Ok ()
      end

    method! push _ p =
      let dst = (Packet.anno p).Packet.dst_ip in
      let n = Array.length routes in
      let rec scan i =
        if i >= n then None
        else
          let r = routes.(i) in
          if dst land r.rt_mask = r.rt_addr then Some (r, i + 1) else scan (i + 1)
      in
      match scan 0 with
      | Some (r, scanned) ->
          self#charge (Hooks.W_lookup scanned);
          if r.rt_gw <> 0 then (Packet.anno p).Packet.dst_ip <- r.rt_gw;
          if r.rt_port < self#noutputs then self#output r.rt_port p
          else self#drop ~reason:"route to unconnected port" p
      | None ->
          self#charge (Hooks.W_lookup n);
          misses <- misses + 1;
          self#drop ~reason:"no route" p

    method! push_batch _ batch =
      (* Look the whole batch up first (one summed W_lookup charge —
         entries scanned is additive), rewriting gateway annotations as
         we go, then emit contiguous same-port runs as single
         transfers. *)
      let bn = Array.length batch in
      if Array.length port_scratch < bn then port_scratch <- Array.make bn 0;
      let ports = port_scratch in
      let n = Array.length routes in
      let scanned_total = ref 0 in
      for i = 0 to bn - 1 do
        let p = batch.(i) in
        if self#is_quarantined then begin
          self#drop ~reason:"quarantined element" p;
          ports.(i) <- consumed
        end
        else begin
          let dst = (Packet.anno p).Packet.dst_ip in
          let rec scan j =
            if j >= n then None
            else
              let r = routes.(j) in
              if dst land r.rt_mask = r.rt_addr then Some (r, j + 1)
              else scan (j + 1)
          in
          match scan 0 with
          | Some (r, scanned) ->
              scanned_total := !scanned_total + scanned;
              self#note_ok;
              if r.rt_gw <> 0 then (Packet.anno p).Packet.dst_ip <- r.rt_gw;
              ports.(i) <- r.rt_port
          | None ->
              scanned_total := !scanned_total + n;
              misses <- misses + 1;
              self#drop ~reason:"no route" p;
              ports.(i) <- consumed
        end
      done;
      if !scanned_total > 0 then self#charge (Hooks.W_lookup !scanned_total);
      emit_runs self ports batch bn ~on_invalid:(fun p ->
          self#drop ~reason:"route to unconnected port" p)

    method! fuse ctx =
      (* The scalar push, with each route's output port resolved to its
         compiled connection up front. The W_lookup charge (identical
         scanned counts) is kept whenever the hooks might read it. *)
      let nout = self#noutputs in
      let outs = Array.init nout ctx.E.fc_out in
      let lean = ctx.E.fc_lean_work in
      Some
        (fun p ->
          let dst = (Packet.anno p).Packet.dst_ip in
          let n = Array.length routes in
          let rec scan i =
            if i >= n then None
            else
              let r = routes.(i) in
              if dst land r.rt_mask = r.rt_addr then Some (r, i + 1)
              else scan (i + 1)
          in
          match scan 0 with
          | Some (r, scanned) ->
              if not lean then self#charge (Hooks.W_lookup scanned);
              if r.rt_gw <> 0 then (Packet.anno p).Packet.dst_ip <- r.rt_gw;
              if r.rt_port < nout then outs.(r.rt_port) p
              else self#drop ~reason:"route to unconnected port" p
          | None ->
              if not lean then self#charge (Hooks.W_lookup n);
              misses <- misses + 1;
              self#drop ~reason:"no route" p)

    method! stats = [ ("routes", Array.length routes); ("misses", misses) ]
  end

(* A binary trie keyed by address bits, for longest-prefix match in
   O(prefix length) instead of O(table size). *)
module Radix = struct
  type node = {
    mutable zero : node option;
    mutable one : node option;
    mutable value : (Ipaddr.t * int) option; (* gateway, port *)
  }

  let make () = { zero = None; one = None; value = None }
  let bit addr i = (addr lsr (31 - i)) land 1

  let insert root ~addr ~prefix_len ~gw ~port =
    let rec go node i =
      if i = prefix_len then begin
        (* first route wins among duplicates, like the linear table *)
        if node.value = None then node.value <- Some (gw, port)
      end
      else begin
        let next =
          if bit addr i = 0 then (
            match node.zero with
            | Some n -> n
            | None ->
                let n = make () in
                node.zero <- Some n;
                n)
          else
            match node.one with
            | Some n -> n
            | None ->
                let n = make () in
                node.one <- Some n;
                n
        in
        go next (i + 1)
      end
    in
    go root 0

  (* Returns (best match, nodes visited). *)
  let lookup root addr =
    let rec go node i best steps =
      let best = match node.value with Some v -> Some v | None -> best in
      if i >= 32 then (best, steps)
      else
        match if bit addr i = 0 then node.zero else node.one with
        | Some next -> go next (i + 1) best (steps + 1)
        | None -> (best, steps)
    in
    go root 0 None 1
end

(* RadixIPLookup: same configuration and behaviour as LookupIPRoute, with
   a trie instead of a linear scan — the kind of
   specialized-vs-general-purpose trade the paper discusses in §3. *)
class radix_ip_lookup name =
  object (self)
    inherit E.base name
    val root = Radix.make ()
    val mutable nroutes = 0
    val mutable misses = 0
    method class_name = "RadixIPLookup"
    method! port_count = "1/-"
    method! processing = "h/h"

    method! configure config =
      let args = Args.split config in
      let parsed = List.map parse_route args in
      if List.exists Option.is_none parsed then
        Error "RadixIPLookup: bad route (want ADDR/MASK [GW] PORT)"
      else begin
        List.iter
          (fun r ->
            let r = Option.get r in
            match Ipaddr.prefix_length_of_netmask r.rt_mask with
            | Some len ->
                nroutes <- nroutes + 1;
                Radix.insert root ~addr:r.rt_addr ~prefix_len:len ~gw:r.rt_gw
                  ~port:r.rt_port
            | None -> ())
          parsed;
        if nroutes < List.length parsed then
          Error "RadixIPLookup: non-contiguous netmask"
        else Ok ()
      end

    method! push _ p =
      let dst = (Packet.anno p).Packet.dst_ip in
      let best, steps = Radix.lookup root dst in
      self#charge (Hooks.W_lookup steps);
      match best with
      | Some (gw, port) ->
          if gw <> 0 then (Packet.anno p).Packet.dst_ip <- gw;
          if port < self#noutputs then self#output port p
          else self#drop ~reason:"route to unconnected port" p
      | None ->
          misses <- misses + 1;
          self#drop ~reason:"no route" p

    method! stats = [ ("routes", nroutes); ("misses", misses) ]
  end

let register () =
  def "LookupIPRoute" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new lookup_ip_route n :> E.t));
  def "StaticIPLookup" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new lookup_ip_route n :> E.t));
  def "RadixIPLookup" ~ports:"1/-" ~processing:"h/h" (fun n ->
      (new radix_ip_lookup n :> E.t))
