(** Bounded lock-free single-producer/single-consumer ring.

    The cross-domain handoff primitive of the sharded datapath: when the
    partitioner cuts the router graph at a Queue, the queue's push half
    runs on the producing domain and its pull half on the consuming
    domain, exchanging packets through one of these rings — a push/pull
    pair with no locks on the hot path.

    Exactly one domain may call {!push} and exactly one domain may call
    {!pop} (they may be the same domain). The indices are [Atomic.t]
    cells allocated with padding between them, so the producer's and the
    consumer's counters do not share a cache line (OCaml gives no hard
    layout guarantee, but separately-allocated atomics with a dead
    spacer between them do not false-share in practice). *)

type 'a t

val create : int -> 'a t
(** [create capacity] — a ring holding at most [capacity] elements
    (rounded up to a power of two internally; the stated capacity is
    still enforced exactly). Raises [Invalid_argument] if
    [capacity <= 0]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> bool
(** Producer side: enqueue, or return [false] if the ring is full. *)

val pop : 'a t -> 'a option
(** Consumer side: dequeue the oldest element, or [None] if empty. *)

val length : 'a t -> int
(** Racy but bounded estimate of the occupancy — exact when read from
    either endpoint with the other side quiescent; monitoring only. *)

val is_empty : 'a t -> bool
(** [length t = 0]; same caveat as {!length}. *)
