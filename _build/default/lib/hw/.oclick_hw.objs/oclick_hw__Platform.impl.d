lib/hw/platform.ml:
