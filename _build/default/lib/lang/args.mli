(** Configuration-string argument handling.

    Element configuration strings are comma-separated argument lists;
    commas inside parentheses, brackets, braces, or double quotes do not
    separate arguments. *)

val split : string -> string list
(** Split a configuration string into trimmed top-level arguments.
    [""] yields [[]]. *)

val unsplit : string list -> string
(** Inverse of {!split}: joins with [", "]. *)

val substitute : (string * string) list -> string -> string
(** [substitute bindings s] replaces every occurrence of a variable
    [$name] (or [${name}]) appearing in [bindings] with its value.
    Variable references are recognized only at word boundaries. *)

val keyword : string -> (string * string) option
(** Parses a ["KEYWORD value"] argument: if the argument's first word is
    all-uppercase, returns [(keyword, rest)]. *)

val parse_bool : string -> bool option
val parse_int : string -> int option
