module Packet = Oclick_packet.Packet

type outcomes = {
  mutable o_wire_rx : int;
  mutable o_fifo_overflow : int;
  mutable o_missed_frame : int;
  mutable o_rx_dma : int;
  mutable o_tx_sent : int;
}

let descriptor_bytes = 16

class tulip ~engine ~pci ~platform ~name ?(bus_id = 0) ?(rx_ring = 32)
  ?(tx_ring = 32) ?(fifo_bytes = 4096) ?(dma_stall = []) ~deliver ~on_cpu_rx
  ~on_cpu_tx () =
  object (self)
    val fifo : Packet.t Queue.t = Queue.create ()
    val mutable fifo_fill = 0
    val rx_q : Packet.t Queue.t = Queue.create () (* the RX DMA ring *)
    val tx_q : Packet.t Queue.t = Queue.create () (* the TX DMA ring *)
    val tx_card : Packet.t Queue.t = Queue.create () (* on-card TX FIFO *)
    val mutable rx_dma_busy = false
    val mutable tx_dma_busy = false
    val mutable tx_wire_busy = false
    val mutable stall_resume_scheduled = false
    val outcomes =
      {
        o_wire_rx = 0;
        o_fifo_overflow = 0;
        o_missed_frame = 0;
        o_rx_dma = 0;
        o_tx_sent = 0;
      }

    method device_name : string = name
    method outcomes = outcomes

    method buffered =
      Queue.length fifo + Queue.length rx_q + Queue.length tx_q
      + Queue.length tx_card

    (* Injected DMA stalls ([dma_stall] windows, (start_ns, len_ns)): the
       DMA engines do nothing inside a window; frames pile up in the
       on-card FIFO (overflow bursts) and the TX ring backs up. Resume is
       scheduled once per window. *)
    method private stalled_until =
      let now = Engine.now engine in
      List.fold_left
        (fun acc (start, len) ->
          if now >= start && now < start + len then
            match acc with
            | Some u when u >= start + len -> acc
            | _ -> Some (start + len)
          else acc)
        None dma_stall

    method private defer_until_stall_end until =
      if not stall_resume_scheduled then begin
        stall_resume_scheduled <- true;
        Engine.schedule engine ~at:until (fun () ->
            stall_resume_scheduled <- false;
            self#kick_rx_dma;
            self#kick_tx_dma)
      end

    (* --- wire RX -> FIFO -> (PCI) -> RX ring --- *)

    method wire_arrive p =
      outcomes.o_wire_rx <- outcomes.o_wire_rx + 1;
      let size = Packet.length p in
      if fifo_fill + size > fifo_bytes then
        (* Dropped on the card: no PCI or memory impact at all. *)
        outcomes.o_fifo_overflow <- outcomes.o_fifo_overflow + 1
      else begin
        Queue.add p fifo;
        fifo_fill <- fifo_fill + size;
        self#kick_rx_dma
      end

    method private kick_rx_dma =
      match self#stalled_until with
      | Some until -> self#defer_until_stall_end until
      | None ->
      if (not rx_dma_busy) && not (Queue.is_empty fifo) then begin
        rx_dma_busy <- true;
        (* First descriptor fetch. *)
        Pci.request pci ~requester:bus_id ~bytes:descriptor_bytes (fun () ->
            if Queue.length rx_q < rx_ring then self#rx_dma_data
            else
              (* Not ready: try once more (the second PCI fetch), then
                 flush the frame as a missed frame. *)
              Pci.request pci ~requester:bus_id ~bytes:descriptor_bytes (fun () ->
                  if Queue.length rx_q < rx_ring then self#rx_dma_data
                  else begin
                    let p = Queue.pop fifo in
                    fifo_fill <- fifo_fill - Packet.length p;
                    outcomes.o_missed_frame <- outcomes.o_missed_frame + 1;
                    rx_dma_busy <- false;
                    self#kick_rx_dma
                  end))
      end

    method private rx_dma_data =
      let p = Queue.peek fifo in
      let size = Packet.length p in
      (* Packet data, then the descriptor write-back. *)
      Pci.request pci ~requester:bus_id ~bytes:size (fun () ->
          Pci.request pci ~requester:bus_id ~bytes:descriptor_bytes (fun () ->
              let p = Queue.pop fifo in
              fifo_fill <- fifo_fill - Packet.length p;
              Queue.add p rx_q;
              outcomes.o_rx_dma <- outcomes.o_rx_dma + 1;
              rx_dma_busy <- false;
              self#kick_rx_dma))

    (* --- CPU side (the Netdevice interface) --- *)

    method rx () =
      match Queue.take_opt rx_q with
      | Some p ->
          on_cpu_rx ();
          (* Taking the packet frees its descriptor; a stalled DMA engine
             may proceed on the next frame. *)
          self#kick_rx_dma;
          Some p
      | None -> None

    method rx_batch (dst : Packet.t array) =
      (* Click's polling batch: drain up to a full array of frames from
         the RX ring in one call. Per-frame CPU receive cost is still
         charged ([on_cpu_rx] per frame), but the freed descriptors are
         handed back to the DMA engine with a single kick at the end. *)
      let want = min (Array.length dst) (Queue.length rx_q) in
      for i = 0 to want - 1 do
        let p = Queue.take rx_q in
        on_cpu_rx ();
        dst.(i) <- p
      done;
      if want > 0 then self#kick_rx_dma;
      want

    method tx p =
      if Queue.length tx_q >= tx_ring then false
      else begin
        on_cpu_tx ();
        Queue.add p tx_q;
        self#kick_tx_dma;
        true
      end

    method tx_ready = Queue.length tx_q < tx_ring
    method tx_space = tx_ring - Queue.length tx_q

    (* --- TX ring -> (PCI) -> on-card FIFO -> wire ---

       DMA and transmission are pipelined: the card prefetches the next
       frame over PCI while the current one is on the wire, buffering up
       to two frames on card. The status write-back after transmission
       frees the ring slot. *)

    method private kick_tx_dma =
      match self#stalled_until with
      | Some until -> self#defer_until_stall_end until
      | None ->
      if
        (not tx_dma_busy)
        && (not (Queue.is_empty tx_q))
        && Queue.length tx_card < 2
      then begin
        tx_dma_busy <- true;
        let size = Packet.length (Queue.peek tx_q) in
        Pci.request pci ~requester:bus_id ~bytes:descriptor_bytes (fun () ->
            Pci.request pci ~requester:bus_id ~bytes:size (fun () ->
                Queue.add (Queue.pop tx_q) tx_card;
                tx_dma_busy <- false;
                self#kick_tx_dma;
                self#kick_tx_wire))
      end

    method private kick_tx_wire =
      if (not tx_wire_busy) && not (Queue.is_empty tx_card) then begin
        tx_wire_busy <- true;
        let p = Queue.pop tx_card in
        let wire_ns =
          Platform.wire_ns_per_frame platform ~frame_bytes:(Packet.length p)
        in
        Engine.schedule_after engine ~delay:wire_ns (fun () ->
            outcomes.o_tx_sent <- outcomes.o_tx_sent + 1;
            deliver p;
            (* status write-back; the bus time matters, not completion *)
            Pci.request pci ~requester:bus_id ~bytes:descriptor_bytes
              (fun () -> ());
            tx_wire_busy <- false;
            self#kick_tx_wire;
            self#kick_tx_dma)
      end
  end
