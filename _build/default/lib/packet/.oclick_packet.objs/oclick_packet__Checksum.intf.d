lib/packet/checksum.mli:
