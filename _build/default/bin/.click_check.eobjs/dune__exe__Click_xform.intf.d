bin/click_xform.mli:
