(* Tests for the simulated hardware: event engine, PCI bus, BTB, NIC
   model, cost model, and testbed-level invariants. *)

module Engine = Oclick_hw.Engine
module Pci = Oclick_hw.Pci
module Btb = Oclick_hw.Btb
module Cost_model = Oclick_hw.Cost_model
module Platform = Oclick_hw.Platform
module Nic = Oclick_hw.Nic
module Testbed = Oclick_hw.Testbed
module Hooks = Oclick_runtime.Hooks
module Packet = Oclick_packet.Packet

let () = Oclick_elements.register_all ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- engine ------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:30 (fun () -> log := 3 :: !log);
  Engine.schedule e ~at:10 (fun () -> log := 1 :: !log);
  Engine.schedule e ~at:20 (fun () -> log := 2 :: !log);
  Engine.run_until e 100;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check "clock at horizon" 100 (Engine.now e)

let test_engine_ties_stable () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~at:7 (fun () -> log := i :: !log)
  done;
  Engine.run_until e 7;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_horizon () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~at:50 (fun () -> fired := true);
  Engine.run_until e 49;
  check_bool "not yet" false !fired;
  check "pending" 1 (Engine.pending e);
  Engine.run_until e 50;
  check_bool "fired" true !fired

let test_engine_cascade () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      Engine.schedule_after e ~delay:1 (fun () ->
          incr count;
          chain (n - 1))
  in
  chain 10;
  Engine.run_until e 100;
  check "cascaded events" 10 !count

(* --- pci ------------------------------------------------------------------ *)

let test_pci_serializes () =
  let e = Engine.create () in
  let bus = Pci.create e ~bytes_per_sec:100_000_000 ~overhead_ns:100 () in
  let finished = ref [] in
  (* two transactions of 100 bytes each: 100ns overhead + 1000ns data *)
  Pci.request bus ~requester:0 ~bytes:100 (fun () -> finished := Engine.now e :: !finished);
  Pci.request bus ~requester:0 ~bytes:100 (fun () -> finished := Engine.now e :: !finished);
  Engine.run_until e 10_000;
  Alcotest.(check (list int)) "serialized" [ 1100; 2200 ] (List.rev !finished);
  check "busy time" 2200 (Pci.busy_ns bus);
  check "bytes" 200 (Pci.bytes_moved bus);
  check "transactions" 2 (Pci.transactions bus)

(* --- btb ------------------------------------------------------------------- *)

let test_btb_prediction () =
  let b = Btb.create () in
  check_bool "cold miss" false (Btb.access b ~site:("x", 0, false) ~target:1);
  check_bool "warm hit" true (Btb.access b ~site:("x", 0, false) ~target:1);
  check_bool "retarget miss" false (Btb.access b ~site:("x", 0, false) ~target:2);
  check_bool "other site independent" false
    (Btb.access b ~site:("y", 0, false) ~target:2);
  check "mispredictions" 3 (Btb.mispredictions b);
  check "lookups" 4 (Btb.lookups b)

let test_btb_alternation () =
  (* The paper's Figure 2: alternating targets through one call site
     always mispredict. *)
  let b = Btb.create () in
  Btb.reset_counters b;
  for _ = 1 to 10 do
    ignore (Btb.access b ~site:("ARPQuerier", 0, false) ~target:1);
    ignore (Btb.access b ~site:("ARPQuerier", 0, false) ~target:2)
  done;
  check "every call mispredicts" 20 (Btb.mispredictions b)

(* --- cost model ---------------------------------------------------------------- *)

let test_cost_model_transfer_kinds () =
  let cm = Cost_model.create () in
  let tr direct target =
    {
      Hooks.tr_src_idx = 0;
      tr_src_class = "Queue";
      tr_src_port = 0;
      tr_dst_idx = target;
      tr_dst_class = "Counter";
      tr_dst_port = 0;
      tr_direct = direct;
      tr_pull = false;
    }
  in
  let cold = Cost_model.transfer_cycles cm (tr false 1) in
  let warm = Cost_model.transfer_cycles cm (tr false 1) in
  let direct = Cost_model.transfer_cycles cm (tr true 1) in
  check_bool "mispredicted is dozens of cycles" true (cold >= 30);
  check "predicted is ~7 cycles" 7 warm;
  check_bool "direct call cheapest" true (direct < warm)

let test_cost_model_simple_action_shared_site () =
  let cm = Cost_model.create () in
  let tr cls target =
    {
      Hooks.tr_src_idx = 0;
      tr_src_class = cls;
      tr_src_port = 0;
      tr_dst_idx = target;
      tr_dst_class = "Counter";
      tr_dst_port = 0;
      tr_direct = false;
      tr_pull = false;
    }
  in
  ignore (Cost_model.transfer_cycles cm (tr "Paint" 1));
  (* a different simple_action class retargets the shared site *)
  let second = Cost_model.transfer_cycles cm (tr "Strip" 2) in
  check_bool "shared site mispredicts" true (second >= 30);
  (* non-simple-action classes have their own sites *)
  ignore (Cost_model.transfer_cycles cm (tr "Queue" 3));
  let own = Cost_model.transfer_cycles cm (tr "Queue" 3) in
  check "own site predicts" 7 own

let test_cost_model_devirtualized_class_names () =
  let cm = Cost_model.create () in
  check "devirtualized costs like the original"
    (Cost_model.element_cycles cm ~cls:"Counter")
    (Cost_model.element_cycles cm ~cls:"Devirtualize@@Counter@@3");
  check "fastclassifier generated"
    (Cost_model.element_cycles cm ~cls:"FastClassifier")
    (Cost_model.element_cycles cm ~cls:"FastClassifier@@c0")

let test_cost_model_icache_pressure () =
  let cm = Cost_model.create ~l1i_bytes:2000 () in
  let before = Cost_model.element_cycles cm ~cls:"Counter" in
  (* Load many distinct specialized classes: the footprint overflows L1i
     and per-entry cost rises (the paper's devirtualization caveat). *)
  for i = 1 to 40 do
    Cost_model.note_code_class cm (Printf.sprintf "Devirtualize@@Counter@@%d" i)
  done;
  let after = Cost_model.element_cycles cm ~cls:"Counter" in
  check_bool "pressure costs cycles" true (after > before);
  check_bool "footprint grows" true (Cost_model.code_footprint_bytes cm > 2000)

let test_platform_wire_rate () =
  (* 64-byte frames on 100 Mbit Ethernet: 148,800 per second (§8.1). *)
  let ns = Platform.wire_ns_per_frame Platform.p0 ~frame_bytes:60 in
  let pps = 1_000_000_000 / ns in
  check_bool "~148.8k pps" true (pps > 147_000 && pps < 149_500)

(* --- nic ------------------------------------------------------------------------ *)

let nic_rig ?(rx_ring = 4) ?(fifo_bytes = 256) () =
  let e = Engine.create () in
  let bus = Pci.create e ~bytes_per_sec:133_000_000 ~overhead_ns:100 () in
  let delivered = ref [] in
  let nic =
    new Nic.tulip ~engine:e ~pci:bus ~platform:Platform.p0 ~name:"eth0"
      ~rx_ring ~tx_ring:4 ~fifo_bytes
      ~deliver:(fun p -> delivered := p :: !delivered)
      ~on_cpu_rx:(fun () -> ())
      ~on_cpu_tx:(fun () -> ())
      ()
  in
  (e, nic, delivered)

let frame () = Packet.create 60

let test_nic_rx_path () =
  let e, nic, _ = nic_rig () in
  nic#wire_arrive (frame ());
  Engine.run_until e 100_000;
  check "dma'd to ring" 1 nic#outcomes.Nic.o_rx_dma;
  check_bool "cpu can take it" true (nic#rx () <> None);
  check_bool "ring now empty" true (nic#rx () = None)

let test_nic_missed_frames () =
  let e, nic, _ = nic_rig ~rx_ring:2 () in
  (* fill the ring; the CPU never drains it *)
  for _ = 1 to 6 do
    nic#wire_arrive (frame ())
  done;
  Engine.run_until e 1_000_000;
  check "ring filled" 2 nic#outcomes.Nic.o_rx_dma;
  check_bool "missed frames counted" true
    (nic#outcomes.Nic.o_missed_frame >= 1)

let test_nic_fifo_overflow () =
  let e, nic, _ = nic_rig ~rx_ring:1 ~fifo_bytes:128 () in
  (* burst faster than the FIFO can drain: 128 bytes hold only 2 frames *)
  for _ = 1 to 10 do
    nic#wire_arrive (frame ())
  done;
  check_bool "overflow before any pci" true
    (nic#outcomes.Nic.o_fifo_overflow >= 7);
  Engine.run_until e 1_000_000;
  check "offered" 10 nic#outcomes.Nic.o_wire_rx

let test_nic_tx_path () =
  let e, nic, delivered = nic_rig () in
  check_bool "accepts" true (nic#tx (frame ()));
  check_bool "accepts more" true (nic#tx (frame ()));
  Engine.run_until e 100_000;
  check "transmitted" 2 (List.length !delivered);
  check "sent outcome" 2 nic#outcomes.Nic.o_tx_sent

let test_nic_tx_ring_full () =
  let e, nic, _ = nic_rig () in
  (* tx_ring = 4: the fifth immediate tx is refused *)
  let accepted = ref 0 in
  for _ = 1 to 5 do
    if nic#tx (frame ()) then incr accepted
  done;
  check "ring bound" 4 !accepted;
  check_bool "not ready" false nic#tx_ready;
  Engine.run_until e 1_000_000;
  check_bool "ready after drain" true nic#tx_ready

(* --- testbed -------------------------------------------------------------------- *)

let base_graph () =
  Oclick.Ip_router.graph
    (Oclick.Ip_router.config (Oclick.Ip_router.standard_interfaces 8))

let test_testbed_forwards_at_low_rate () =
  match
    Testbed.run ~duration_ms:20 ~warmup_ms:10 ~platform:Platform.p0
      ~graph:(base_graph ()) ~input_pps:50_000 ()
  with
  | Error e -> Alcotest.failf "testbed: %s" e
  | Ok r ->
      check_bool "no loss at 50k" true
        (r.Testbed.r_forwarded_pps >= 0.99 *. r.Testbed.r_offered_pps);
      check_bool "four misses per packet" true
        (abs_float (r.Testbed.r_cache_misses -. 4.0) < 0.3);
      check_bool "breakdown sums" true
        (abs_float
           (r.Testbed.r_receive_ns +. r.Testbed.r_forward_ns
           +. r.Testbed.r_transmit_ns -. r.Testbed.r_total_ns)
        < 1.0)

let test_testbed_base_is_cpu_limited () =
  match
    Testbed.run ~duration_ms:30 ~warmup_ms:15 ~platform:Platform.p0
      ~graph:(base_graph ()) ~input_pps:560_000 ()
  with
  | Error e -> Alcotest.failf "testbed: %s" e
  | Ok r ->
      check_bool "saturated" true (r.Testbed.r_cpu_utilization > 0.97);
      check_bool "drops are missed frames" true
        (r.Testbed.r_outcomes.Testbed.oc_missed_frame
         > 10 * r.Testbed.r_outcomes.Testbed.oc_fifo_overflow);
      check_bool "forwards around 340k" true
        (r.Testbed.r_forwarded_pps > 300_000.
        && r.Testbed.r_forwarded_pps < 380_000.)

let test_testbed_simple_is_io_limited () =
  let simple =
    Oclick.Ip_router.graph
      (Oclick.Ip_router.simple_config
         [ ("eth0", "eth4"); ("eth1", "eth5"); ("eth2", "eth6"); ("eth3", "eth7") ])
  in
  match
    Testbed.run ~duration_ms:30 ~warmup_ms:15 ~platform:Platform.p0
      ~graph:simple ~input_pps:560_000 ()
  with
  | Error e -> Alcotest.failf "testbed: %s" e
  | Ok r ->
      check_bool "cpu not saturated" true (r.Testbed.r_cpu_utilization < 0.95);
      check_bool "drops happen at the card, not as missed frames" true
        (r.Testbed.r_outcomes.Testbed.oc_fifo_overflow
         > 10 * (1 + r.Testbed.r_outcomes.Testbed.oc_missed_frame));
      check_bool "pci saturated" true (r.Testbed.r_pci_utilization > 0.95)

let test_testbed_optimized_beats_base () =
  let base = base_graph () in
  let all = Oclick.Pipeline.optimize Oclick.Pipeline.All (base_graph ()) in
  let run g =
    match
      Testbed.run ~duration_ms:20 ~warmup_ms:10 ~platform:Platform.p0 ~graph:g
        ~input_pps:300_000 ()
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "testbed: %s" e
  in
  let rb = run base and ra = run all in
  check_bool "optimized forwarding path is faster" true
    (ra.Testbed.r_forward_ns < rb.Testbed.r_forward_ns);
  check_bool "receive/transmit costs unchanged" true
    (abs_float (ra.Testbed.r_receive_ns -. rb.Testbed.r_receive_ns) < 30.
    && abs_float (ra.Testbed.r_transmit_ns -. rb.Testbed.r_transmit_ns) < 30.)

let test_mlffr_monotone_in_optimization () =
  let base = base_graph () in
  let all = Oclick.Pipeline.optimize Oclick.Pipeline.All (base_graph ()) in
  let m g =
    match Testbed.mlffr ~platform:Platform.p0 ~graph:g () with
    | Ok v -> v
    | Error e -> Alcotest.failf "mlffr: %s" e
  in
  let mb = m base and ma = m all in
  check_bool "optimization raises MLFFR" true (ma > mb);
  check_bool "base near 340k" true (mb > 310_000 && mb < 380_000);
  check_bool "all near 440k" true (ma > 400_000 && ma < 480_000)

let () =
  Alcotest.run "hw"
    [
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "stable ties" `Quick test_engine_ties_stable;
          Alcotest.test_case "horizon" `Quick test_engine_horizon;
          Alcotest.test_case "cascade" `Quick test_engine_cascade;
        ] );
      ("pci", [ Alcotest.test_case "serializes" `Quick test_pci_serializes ]);
      ( "btb",
        [
          Alcotest.test_case "prediction" `Quick test_btb_prediction;
          Alcotest.test_case "alternation" `Quick test_btb_alternation;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "transfer kinds" `Quick
            test_cost_model_transfer_kinds;
          Alcotest.test_case "simple_action site" `Quick
            test_cost_model_simple_action_shared_site;
          Alcotest.test_case "generated classes" `Quick
            test_cost_model_devirtualized_class_names;
          Alcotest.test_case "icache pressure" `Quick
            test_cost_model_icache_pressure;
          Alcotest.test_case "wire rate" `Quick test_platform_wire_rate;
        ] );
      ( "nic",
        [
          Alcotest.test_case "rx path" `Quick test_nic_rx_path;
          Alcotest.test_case "missed frames" `Quick test_nic_missed_frames;
          Alcotest.test_case "fifo overflow" `Quick test_nic_fifo_overflow;
          Alcotest.test_case "tx path" `Quick test_nic_tx_path;
          Alcotest.test_case "tx ring full" `Quick test_nic_tx_ring_full;
        ] );
      ( "testbed",
        [
          Alcotest.test_case "low rate lossless" `Slow
            test_testbed_forwards_at_low_rate;
          Alcotest.test_case "base cpu limited" `Slow
            test_testbed_base_is_cpu_limited;
          Alcotest.test_case "simple io limited" `Slow
            test_testbed_simple_is_io_limited;
          Alcotest.test_case "optimized beats base" `Slow
            test_testbed_optimized_beats_base;
          Alcotest.test_case "mlffr ordering" `Slow
            test_mlffr_monotone_in_optimization;
        ] );
    ]
