(** The oclick packet abstraction.

    A packet is a window onto a byte buffer, with headroom before the window
    and tailroom after it — the same model as Click's [Packet]/Linux's
    [sk_buff]. Prepending a header ({!push}) or stripping one ({!pull})
    moves the window without copying, as long as room remains.

    Since the zero-copy rework the buffer itself has two storage classes.
    Pooled packets live {e off-heap}: each {!Pool} owns a [Bigarray] char
    slab carved into fixed-size buffers, and a packet is a descriptor
    (slab reference, base offset, window) the GC never has to trace or
    move. Non-pooled packets ({!create}, {!of_bytes}, …), and pooled
    packets that outgrow their slab buffer class ({!push} past a slab
    buffer's capacity, {!realign}), use a GC-managed [Bytes] buffer. The
    two representations are behaviourally identical; {!is_off_heap}
    reports which one a packet currently uses.

    All multi-byte accessors are big-endian (network order), implemented
    as fixed-width word loads/stores under a single hoisted bounds check,
    and all offsets are relative to the start of the live data window. *)

(** Per-packet annotations, carried alongside the data. These mirror the
    Click annotations the standard IP router uses. *)
type anno = {
  mutable paint : int;  (** set by [Paint], read by [CheckPaint]; -1 unset *)
  mutable dst_ip : Ipaddr.t;
      (** destination-address annotation: set by [GetIPAddress], read by
          [LookupIPRoute] and [ARPQuerier] *)
  mutable fix_ip_src : bool;  (** set by [ICMPError], read by [FixIPSrc] *)
  mutable device : int;  (** input device number; -1 unset *)
  mutable timestamp_ns : int;
      (** simulated arrival time, integer nanoseconds — an immediate
          [int], so stamping a packet on the hot path never allocates a
          boxed float *)
  mutable link_type : link_type;
      (** link-layer addressing of the received frame, set by devices;
          read by [DropBroadcasts] *)
}

and link_type = To_host | Broadcast | Multicast | To_other

type t
(** A mutable packet. *)

val default_headroom : int
(** 34 bytes — like Click, room for link-layer headers. *)

val create : ?headroom:int -> ?tailroom:int -> int -> t
(** [create len] allocates a zero-filled packet of [len] data bytes.
    Default headroom is {!default_headroom} bytes and default tailroom
    the same. *)

val of_bytes : ?headroom:int -> ?tailroom:int -> bytes -> t
(** Packet whose data is a copy of the given bytes. *)

val of_string : ?headroom:int -> ?tailroom:int -> string -> t

val grab : ?headroom:int -> bytes -> t
(** [grab data] takes ownership of [data] as the packet's buffer — no
    copy. The data window is [data] past the first [headroom] bytes
    (default 0). The caller must not use [data] afterwards. *)

val length : t -> int
val anno : t -> anno

val id : t -> int
(** Process-global serial number identifying this packet. Every packet
    that comes into existence — via {!create}, {!clone}, or
    {!Pool.alloc} (including buffer reuse) — gets a fresh id, so traces
    can follow one packet through the graph even across pool recycling. *)

val clone : t -> t
(** Deep copy: buffer and annotations are duplicated (the copy gets its
    own {!id}). Cloning an off-heap packet allocates a sibling buffer in
    the same arena and performs one slab-to-slab blit of the used region;
    if the arena is exhausted the clone degrades to a heap [Bytes]
    buffer. Safe from any domain. *)

val is_off_heap : t -> bool
(** Whether the payload currently lives in a pool's off-heap slab (as
    opposed to the GC-managed [Bytes] fallback). *)

val headroom : t -> int
val tailroom : t -> int

(** {2 Window adjustment} *)

val push : t -> int -> unit
(** [push p n] prepends [n] uninitialized bytes (reallocating if headroom is
    short, again like Click — an off-heap packet that outgrows its slab
    buffer demotes to a heap [Bytes] buffer). *)

val pull : t -> int -> unit
(** [pull p n] strips [n] bytes from the front. Raises [Invalid_argument]
    if [n > length p]. *)

val put : t -> int -> unit
(** [put p n] extends the data window by [n] zero bytes at the tail. *)

val take : t -> int -> unit
(** [take p n] trims [n] bytes from the tail. *)

(** {2 Data access} *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_string : t -> pos:int -> len:int -> string
val set_string : t -> pos:int -> string -> unit

val to_string : t -> string
(** The live data window as a string. *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** [blit ~src ~src_pos ~dst ~dst_pos ~len] copies [len] bytes between
    data windows, dispatching on each side's storage class (slab-to-slab
    is a single memmove). Offsets are window-relative, like the
    accessors. *)

val data_offset : t -> int
(** Byte offset of the data window within the underlying buffer (for
    off-heap packets, within the arena slab). Exposed for alignment
    tracking; there is deliberately no way to reach the raw buffer. *)

val checksum : t -> pos:int -> len:int -> int
(** Internet checksum over a region of the data window. *)

val ones_complement_sum : t -> pos:int -> len:int -> int
(** Folded 16-bit one's-complement sum over a region of the data window
    (the building block for incremental/pseudo-header checksums). *)

(** {2 Alignment}

    Alignment is the data window's offset within the machine word, the
    property tracked by the [click-align] tool. *)

val alignment : t -> int
(** [data_offset] modulo 4. *)

val realign : t -> modulus:int -> offset:int -> unit
(** Move the data (copying within or into a fresh buffer) so that
    [data_offset mod modulus = offset]. Used by the [Align] element.
    Realigning an off-heap packet demotes it to a heap [Bytes] buffer
    (a slab buffer's base offset is fixed). *)

(** {2 Recycling pool}

    A free list of dead packet descriptors backed by an off-heap buffer
    arena, so the forwarding hot path neither allocates per packet nor
    leaves buffers to the GC. {!recycle} pushes the descriptor — slot and
    all — onto a free-list array (no copy); {!alloc} pops one and re-zeros
    only its data window. Correctness relies on buffers never being
    shared: {!Packet.clone} deep-copies, so no live packet aliases a
    recycled one's storage, and {!recycle} marks packets so
    double-recycling is a safe no-op.

    Pools are single-domain-owned: the descriptor free list is
    unsynchronized, so the sharded runtime gives every domain its own
    pool. A pool claims the first domain that operates on it and asserts
    (in debug builds) that every later {!alloc}/{!recycle} comes from
    that same domain — a recycled packet can never be resurrected
    concurrently by another domain. Use {!detach} to hand an idle pool
    over to a different domain.

    The arena's {e slot} free list, by contrast, is lock-free: packets
    handed across domains through SPSC rings carry their off-heap payload
    with them and may be recycled into the consuming domain's pool, where
    the foreign slot simply keeps circulating; slots freed by clone
    fallbacks or descriptor finalizers return to the owning arena
    atomically. Cross-domain handoff therefore moves no packet data. *)
module Pool : sig
  type packet = t
  type t

  type stats = {
    st_allocs : int;  (** fresh descriptor allocations (free list empty) *)
    st_reuses : int;  (** allocations served from the free list *)
    st_recycles : int;  (** packets accepted back into the pool *)
    st_rejected : int;  (** recycles refused (pool full or double-recycle) *)
    st_free : int;  (** packets currently on the free list *)
    st_slab_free : int;  (** arena buffers currently unallocated *)
    st_heap_bufs : int;
        (** allocations that fell back to a heap [Bytes] buffer (request
            larger than [buf_size], or arena exhausted) *)
  }

  val default_buf_size : int
  (** Default slab buffer class: 2048 bytes, enough for an MTU-sized
      frame plus default head/tailroom. *)

  val create :
    ?capacity:int -> ?buf_size:int -> ?slab_bufs:int -> ?slab:bool -> unit -> t
  (** A pool holding at most [capacity] (default 1024) free packets,
      backed by an off-heap arena of [slab_bufs] (default [capacity])
      buffers of [buf_size] (default {!default_buf_size}) bytes each.
      [~slab:false] disables the arena entirely — every allocation uses
      the heap [Bytes] representation (the pre-arena behaviour, kept as a
      measurement baseline and escape hatch). *)

  val alloc : t -> ?headroom:int -> ?tailroom:int -> int -> packet
  (** Like {!Packet.create}, but serves the packet from the pool: a
      recycled descriptor when one is available (re-zeroing its data
      window and resetting annotations), an arena slab buffer when the
      request fits [buf_size] and a slot is free, and a heap [Bytes]
      buffer otherwise. *)

  val recycle : t -> packet -> unit
  (** Return a dead packet to the pool. The caller must not touch the
      packet afterwards. Recycling the same packet twice, or into a full
      pool, is a no-op counted in [st_rejected]. *)

  val detach : t -> unit
  (** Release the pool's domain claim so the next domain that touches it
      becomes the owner — for handing a (typically empty) pool to the
      domain that will run it. The pool must be quiescent: detaching
      does not make concurrent use safe. *)

  val stats : t -> stats
end
