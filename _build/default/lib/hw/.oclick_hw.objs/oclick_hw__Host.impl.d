lib/hw/host.ml: Engine Hashtbl Oclick_packet Platform
