module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ethaddr = Oclick_packet.Ethaddr
module Fault = Oclick_fault

let arp_reply_delay_ns = 5_000

(* Adversarial traffic shapes for overload experiments. All preserve the
   configured mean rate; what varies is where the packets aim and how
   they cluster:
   - [Scan n]: UDP destinations sweep [n] consecutive addresses in the
     destination subnet. Only the first (the real attached host)
     resolves, so the router's ARP querier sees a worst-case miss
     pattern — the address-scan state explosion.
   - [Arp_storm k]: every [k]-th frame is an ARP request for the
     router's own address, amplifying the control path (each request
     spawns a reply).
   - [Burst (mean, alpha)]: heavy-tailed ON/OFF traffic — back-to-back
     frames at wire speed in bursts whose length is bounded-Pareto with
     the given mean and shape, separated by mean-preserving gaps. *)
type workload =
  | Uniform
  | Scan of int
  | Arp_storm of int
  | Burst of int * float

class host ~engine ~platform ~ip ~eth ~router_eth ?injector
  ?(fault_stream = "host") () =
  object (self)
    val mutable wire : Packet.t -> unit = ignore
    val mutable sent_udp = 0
    val mutable sent_frames = 0
    val mutable received_udp = 0
    val mutable received_icmp = 0
    val mutable received_arp = 0
    val mutable received_other = 0
    val mutable received_total = 0
    (* Deterministic per-host jitter stream: "even" flows still have
       phase drift and burstiness in practice, which is what lets a
       nearly-saturated PCI bus overflow NIC FIFOs transiently. *)
    val jitter = ref (Hashtbl.hash ip land 0x3fffffff)
    method set_wire w = wire <- w

    method private next_jittered interval =
      let s = ((!jitter * 1103515245) + 12345) land 0x3fffffff in
      jitter := s;
      (* uniform in [0.6, 1.4) of the interval; the mean is preserved *)
      interval * (60 + (s mod 80)) / 100

    method private transmit p =
      sent_frames <- sent_frames + 1;
      (* The frame occupies the host->router wire; generation rates are
         paced below so a busy wire never reorders frames. *)
      Engine.schedule_after engine
        ~delay:(Platform.wire_ns_per_frame platform ~frame_bytes:(Packet.length p))
        (fun () -> wire p)

    method receive p =
      (* Every frame handed to the host is accounted: the ledger treats
         reception — even of a runt or an unparseable frame — as a packet
         death. *)
      received_total <- received_total + 1;
      if Packet.length p < Headers.Ether.header_length then
        received_other <- received_other + 1
      else begin
        match Headers.Ether.ethertype p with
        | t when t = Headers.Ether.ethertype_arp ->
            received_arp <- received_arp + 1;
            if
              Packet.length p
              >= Headers.Ether.header_length + Headers.Arp.packet_length
              && Headers.Arp.op ~off:14 p = Headers.Arp.op_request
              && Headers.Arp.target_ip ~off:14 p = ip
            then begin
              let reply =
                Headers.Build.arp_reply ~src_eth:eth ~src_ip:ip
                  ~dst_eth:(Headers.Arp.sender_eth ~off:14 p)
                  ~dst_ip:(Headers.Arp.sender_ip ~off:14 p)
              in
              Engine.schedule_after engine ~delay:arp_reply_delay_ns (fun () ->
                  self#transmit reply)
            end
        | t
          when t = Headers.Ether.ethertype_ip
               && Packet.length p
                  >= Headers.Ether.header_length + Headers.Ip.min_header_length
          -> (
            match Headers.Ip.protocol ~off:14 p with
            | 17 -> received_udp <- received_udp + 1
            | 1 -> received_icmp <- received_icmp + 1
            | _ -> received_other <- received_other + 1)
        | _ -> received_other <- received_other + 1
      end

    (* Bounded Pareto draw from the host's deterministic stream: minimum
       1, shape [alpha], scaled so the mean is about [mean], capped at
       100x the mean so a single draw cannot freeze the run. *)
    method private draw_burst mean alpha =
      let s = ((!jitter * 1103515245) + 12345) land 0x3fffffff in
      jitter := s;
      let u = (float_of_int s +. 1.0) /. 1073741825.0 in
      let xm = float_of_int mean *. (alpha -. 1.0) /. alpha in
      let x = xm /. (u ** (1.0 /. alpha)) in
      max 1 (min (mean * 100) (int_of_float x))

    method start_workload ~workload ~dst_ip ~router_ip ~rate_pps
        ?(payload_len = 14) ~until () =
      if rate_pps > 0 then begin
        let interval = 1_000_000_000 / rate_pps in
        let wire_floor =
          Platform.wire_ns_per_frame platform
            ~frame_bytes:(Headers.Ether.header_length + 20 + 8 + payload_len)
        in
        (* Never offer faster than the wire can carry. *)
        let interval = max interval wire_floor in
        (* Jittered pacing with a debt counter: sends clamped to the wire
           rate repay the clamped time later, so the mean rate is exact. *)
        let debt = ref 0 in
        let seq = ref 0 in
        let burst_left = ref 0 in
        let rec tick () =
          if Engine.now engine < until then begin
            let i = !seq in
            incr seq;
            let arp =
              match workload with
              | Arp_storm k when k > 0 && i mod k = 0 -> true
              | _ -> false
            in
            if arp then
              self#transmit
                (Headers.Build.arp_query ~src_eth:eth ~src_ip:ip
                   ~target_ip:router_ip)
            else begin
              let dst_ip =
                match workload with
                | Scan n when n > 1 -> dst_ip + (i mod n)
                | _ -> dst_ip
              in
              let p =
                Headers.Build.udp ~src_eth:eth ~dst_eth:router_eth ~src_ip:ip
                  ~dst_ip ~payload_len ()
              in
              (* Fault injection draws only from this host's own stream,
                 so the fault schedule is a function of (plan, seed,
                 host) — independent of router timing, which is what
                 makes differential runs comparable. ARP-storm frames
                 are left intact: the storm itself is the fault. *)
              (match injector with
              | Some inj ->
                  Fault.Injector.mangle_tx inj ~stream:fault_stream p;
                  Fault.Injector.mangle_wire inj ~stream:fault_stream p
              | None -> ());
              sent_udp <- sent_udp + 1;
              self#transmit p
            end;
            let delay =
              match workload with
              | Burst (mean, alpha) ->
                  if !burst_left = 0 then
                    burst_left := self#draw_burst mean alpha;
                  decr burst_left;
                  if !burst_left > 0 then begin
                    (* In-burst: wire speed, banking the time owed to
                       the mean rate; the bank is paid out as the OFF
                       gap when the burst ends. *)
                    debt := !debt + (interval - wire_floor);
                    wire_floor
                  end
                  else begin
                    let d = max wire_floor (interval + !debt) in
                    debt := interval + !debt - d;
                    d
                  end
              | _ ->
                  let wanted = self#next_jittered interval + !debt in
                  let actual = max wire_floor wanted in
                  debt := wanted - actual;
                  actual
            in
            Engine.schedule_after engine ~delay tick
          end
        in
        tick ()
      end

    method start_traffic ~dst_ip ~rate_pps ?payload_len ~until () =
      self#start_workload ~workload:Uniform ~dst_ip ~router_ip:0 ~rate_pps
        ?payload_len ~until ()

    method sent_udp = sent_udp
    method sent_frames = sent_frames
    method received_udp = received_udp
    method received_icmp = received_icmp
    method received_arp = received_arp
    method received_other = received_other
    method received_total = received_total

    method reset_counters =
      sent_udp <- 0;
      received_udp <- 0;
      received_icmp <- 0;
      received_other <- 0
  end
