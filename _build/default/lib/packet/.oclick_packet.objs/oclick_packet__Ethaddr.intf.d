lib/packet/ethaddr.mli: Format
