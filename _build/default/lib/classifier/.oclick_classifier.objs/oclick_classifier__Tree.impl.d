lib/classifier/tree.ml: Array Buffer Hashtbl List Oclick_packet Printf Scanf String
