lib/graph/router.ml: Array Hashtbl Int List Oclick_lang Printf String
