(* Shared plumbing for the click-* command-line tools: read a
   configuration from a file or standard input, write the result to
   standard output — so the tools compose with pipes, like compiler
   passes (paper §5). *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let read_input = function
  | None | Some "-" -> read_all stdin
  | Some path ->
      let ic = open_in_bin path in
      let s = read_all ic in
      close_in ic;
      s

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let parse_router ?(check = true) source =
  if String.trim source = "" then die "empty configuration";
  Oclick_elements.register_all ();
  match Oclick_graph.Router.parse_string source with
  | Ok router ->
      (* Install any generated classes the archive carries (the analogue
         of Click compiling and linking archived element code). *)
      (match Oclick_optim.Install.install router with
      | Ok () -> ()
      | Error e -> die "%s" e);
      (* Reject invalid graphs (out-of-range ports, unknown classes...)
         with a one-line diagnostic before any tool transforms them.
         click-check opts out: listing every error is its whole job. *)
      (if check then
         match
           Oclick_graph.Check.check router Oclick_runtime.Registry.spec_table
         with
         | [] -> ()
         | [ e ] -> die "%s" e
         | e :: rest ->
             die "%s (and %d more error%s)" e (List.length rest)
               (if List.length rest = 1 then "" else "s"));
      router
  | Error e -> die "%s" e

let output_router router = print_string (Oclick_graph.Router.to_string router)

open Cmdliner

let input_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"CONFIG" ~doc:"Configuration file (default: stdin).")

let run_tool name doc term =
  let cmd = Cmd.v (Cmd.info name ~doc) term in
  (* Command-line errors (unknown flag, missing or unparseable option
     argument) follow the same convention as every other tool failure:
     one diagnostic line on stderr and exit 1 — not cmdliner's
     multi-line usage dump and exit 124. *)
  let buf = Buffer.create 256 in
  let err = Format.formatter_of_buffer buf in
  Format.pp_set_margin err 10_000;
  let code = Cmd.eval ~err cmd in
  Format.pp_print_flush err ();
  let msg = Buffer.contents buf in
  if code = Cmd.Exit.cli_error then begin
    (match String.split_on_char '\n' (String.trim msg) with
    | line :: _ when String.trim line <> "" -> prerr_endline (String.trim line)
    | _ -> prerr_endline (name ^ ": bad command line"));
    exit 1
  end
  else begin
    if msg <> "" then prerr_string msg;
    exit code
  end
