type t = string (* exactly 6 raw bytes *)

let of_bytes s =
  if String.length s <> 6 then invalid_arg "Ethaddr.of_bytes" else s

let to_bytes t = t

let of_string s =
  match String.split_on_char ':' s with
  | [ _; _; _; _; _; _ ] as parts ->
      let buf = Buffer.create 6 in
      let ok =
        List.for_all
          (fun p ->
            match int_of_string_opt ("0x" ^ p) with
            | Some v when v >= 0 && v <= 255 && String.length p <= 2 ->
                Buffer.add_char buf (Char.chr v);
                true
            | _ -> false)
          parts
      in
      if ok then Some (Buffer.contents buf) else None
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ethaddr.of_string_exn: %S" s)

let to_string t =
  String.concat ":"
    (List.init 6 (fun i -> Printf.sprintf "%02x" (Char.code t.[i])))

let broadcast = String.make 6 '\xff'
let zero = String.make 6 '\x00'
let is_broadcast t = t = broadcast
let is_group t = Char.code t.[0] land 1 = 1
let compare = String.compare
let equal = String.equal
let pp fmt t = Format.pp_print_string fmt (to_string t)
