bin/click_uncombine.mli:
