lib/core/pipeline.ml: Oclick_graph Oclick_optim Printf
