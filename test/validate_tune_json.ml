(* Schema validation for the autotuning benchmark's JSON, used by the
   @tune-smoke alias: reads BENCH_tune.json (path argument, or stdin)
   and checks the two acceptance bars. Every tuning cell must record
   its search budget and the evaluations actually spent within it, and
   the tuned configuration must forward at least as much as the best
   single-knob default of the same cell (the tuner feeds the default
   sweep in as extra starts, so anything less means the argmax broke).
   The placement object must show measured-cost partitioning strictly
   reducing the busiest shard's measured cost against static LPT on
   the skew config. Both properties come from the deterministic
   simulated testbed, so they are enforced on smoke and full budgets
   alike. Exits 1 with a one-line diagnostic on the first violation. *)

module Json = Oclick_obs.Json

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      exit 1)
    fmt

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let get label obj field =
  match Json.member field obj with
  | Some v -> v
  | None -> die "%s: missing %S" label field

let number label = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> die "%s: not a number" label

let int_field label obj field =
  match get label obj field with
  | Json.Int i -> i
  | _ -> die "%s: %S is not an integer" label field

let string_field label obj field =
  match get label obj field with
  | Json.String s -> s
  | _ -> die "%s: %S is not a string" label field

let check_scored ~label obj =
  let pps = number (label ^ "/pps") (get label obj "pps") in
  let ns = number (label ^ "/ns_per_pkt") (get label obj "ns_per_pkt") in
  if pps <= 0.0 then die "%s: non-positive forwarding rate" label;
  if ns <= 0.0 then die "%s: non-positive CPU cost" label;
  if string_field label obj "config" = "" then die "%s: empty config" label;
  pps

let check_cell cell =
  let name = string_field "cell" cell "name" in
  let label = Printf.sprintf "cell/%s" name in
  (* The search budget must be recorded, and respected. *)
  let budget = int_field label cell "budget" in
  if budget < 1 then die "%s: search budget %d not recorded" label budget;
  let evals = int_field label cell "evals" in
  if evals < 1 || evals > budget then
    die "%s: %d evaluations outside budget %d" label evals budget;
  if int_field label cell "points" < 1 then die "%s: empty knob space" label;
  ignore (string_field label cell "workload");
  let tuned = get label cell "tuned" in
  if string_field (label ^ "/tuned") tuned "command" = "" then
    die "%s: tuned cell without a command line" label;
  let tuned_pps = check_scored ~label:(label ^ "/tuned") tuned in
  let bd_pps =
    check_scored ~label:(label ^ "/best_default")
      (get label cell "best_default")
  in
  (* The bar: the tuner starts from the single-knob sweep, so the tuned
     point can never forward less than the best default. *)
  if tuned_pps < bd_pps then
    die "%s: tuned %.0f pps below best single-knob default %.0f" label
      tuned_pps bd_pps;
  (match get label cell "defaults" with
  | Json.List (_ :: _) -> ()
  | _ -> die "%s: no single-knob default sweep recorded" label);
  name

let check_placement doc =
  let label = "placement" in
  let p = get "doc" doc "placement" in
  let domains = int_field label p "domains" in
  if domains < 2 then die "%s: %d domains is not a placement" label domains;
  let regions = int_field label p "regions" in
  if regions <= domains then
    die "%s: %d regions over %d domains leaves LPT no choices" label regions
      domains;
  let static = int_field label p "static_busiest_cost" in
  let measured = int_field label p "measured_busiest_cost" in
  if static <= 0 || measured <= 0 then
    die "%s: non-positive busiest-shard cost" label;
  (* The bar: profiled weights must strictly reduce the busiest shard's
     measured cost against static (count-weighted) LPT. *)
  if measured >= static then
    die "%s: measured-cost placement (busiest %d) does not beat static LPT \
         (busiest %d)"
      label measured static;
  if number label (get label p "reduction") <= 0.0 then
    die "%s: non-positive reduction" label;
  let util field =
    let v = number (label ^ "/" ^ field) (get label p field) in
    if v <= 0.0 then die "%s: non-positive %s" label field
  in
  util "static_cpu_utilization";
  util "measured_cpu_utilization"

let () =
  let input =
    if Array.length Sys.argv > 1 then (
      let ic = open_in Sys.argv.(1) in
      let s = read_all ic in
      close_in ic;
      s)
    else read_all stdin
  in
  let doc =
    match Json.of_string input with
    | Ok v -> v
    | Error e -> die "not valid JSON: %s" e
  in
  (match Json.member "section" doc with
  | Some (Json.String "tune") -> ()
  | _ -> die "missing section=\"tune\"");
  (match Json.member "smoke" doc with
  | Some (Json.Bool _) -> ()
  | _ -> die "missing smoke flag");
  if int_field "doc" doc "budget" < 1 then die "search budget not recorded";
  let names =
    match get "doc" doc "cells" with
    | Json.List cs -> List.map check_cell cs
    | _ -> die "cells is not a list"
  in
  if List.length names < 2 then
    die "only %d tuning cell(s); need at least two config x workload cells"
      (List.length names);
  List.iter
    (fun want ->
      if not (List.mem want names) then die "missing cell %S" want)
    [ "ip2/uniform"; "cascade6/burst" ];
  check_placement doc;
  print_endline "ok"
