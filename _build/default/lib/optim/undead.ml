module Router = Oclick_graph.Router

let source_classes =
  [ "PollDevice"; "FromDevice"; "InfiniteSource"; "UDPSource"; "RatedSource" ]

let sink_classes = [ "ToDevice"; "Discard" ]

(* Elements with no ports at all (information elements) are never dead. *)
let portless router i =
  Router.outputs_of router i = [] && Router.inputs_of router i = []

let replace_static_switches router =
  let removed = ref 0 in
  let rec loop () =
    let switch =
      List.find_opt
        (fun i -> String.equal (Router.class_of router i) "StaticSwitch")
        (Router.indices router)
    in
    match switch with
    | None -> ()
    | Some i ->
        let target = Oclick_lang.Args.parse_int (Router.config router i) in
        let ins = Router.inputs_of router i
        and outs = Router.outputs_of router i in
        (* Wire each input source to the live branch; other branches lose
           their feed and die in the reachability pass. *)
        (match target with
        | Some k when k >= 0 ->
            List.iter
              (fun (_, src, sport) ->
                List.iter
                  (fun (p, dst, dport) ->
                    if p = k then
                      Router.add_hookup router
                        {
                          Router.from_idx = src;
                          from_port = sport;
                          to_idx = dst;
                          to_port = dport;
                        })
                  outs)
              ins
        | _ -> ());
        Router.remove_element router i;
        incr removed;
        loop ()
  in
  loop ();
  !removed

let reachability router =
  let max_idx = List.fold_left max 0 (Router.indices router) in
  let forward = Array.make (max_idx + 1) false
  and backward = Array.make (max_idx + 1) false in
  let rec walk mark next i =
    if not mark.(i) then begin
      mark.(i) <- true;
      List.iter (walk mark next) (next i)
    end
  in
  let fwd_next i = List.map (fun (_, j, _) -> j) (Router.outputs_of router i)
  and bwd_next i = List.map (fun (_, j, _) -> j) (Router.inputs_of router i) in
  List.iter
    (fun i ->
      let cls = Router.class_of router i in
      if List.mem cls source_classes then walk forward fwd_next i;
      if List.mem cls sink_classes then walk backward bwd_next i)
    (Router.indices router);
  (forward, backward)

let run source =
  let router = Router.copy source in
  let removed = ref (replace_static_switches router) in
  let forward, backward = reachability router in
  let dead =
    List.filter
      (fun i ->
        let cls = Router.class_of router i in
        (not (portless router i))
        && (not (String.equal cls "AlignmentInfo"))
        && ((not forward.(i)) || not backward.(i)))
      (Router.indices router)
  in
  (* Remember which live ports the dead elements fed or drained. *)
  let orphans = ref [] in
  let is_dead = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace is_dead i ()) dead;
  List.iter
    (fun i ->
      List.iter
        (fun (_, j, jp) ->
          if not (Hashtbl.mem is_dead j) then orphans := `In (j, jp) :: !orphans)
        (Router.outputs_of router i);
      List.iter
        (fun (_, j, jp) ->
          if not (Hashtbl.mem is_dead j) then orphans := `Out (j, jp) :: !orphans)
        (Router.inputs_of router i))
    dead;
  List.iter
    (fun i ->
      Router.remove_element router i;
      incr removed)
    dead;
  (* Idle elements that became (or already were) disconnected die too;
     ports orphaned by the removals get a fresh shared Idle. *)
  if !orphans <> [] then begin
    let idle =
      Router.add_element router
        ~name:(Router.fresh_name router "Idle@undead")
        ~cls:"Idle" ~config:""
    in
    (* Each orphan gets its own Idle port: a push output may only be
       connected once. *)
    let next_out = ref 0 and next_in = ref 0 in
    List.iter
      (function
        | `In (j, jp) ->
            let p = !next_out in
            incr next_out;
            Router.add_hookup router
              { Router.from_idx = idle; from_port = p; to_idx = j; to_port = jp }
        | `Out (j, jp) ->
            let p = !next_in in
            incr next_in;
            Router.add_hookup router
              { Router.from_idx = j; from_port = jp; to_idx = idle; to_port = p })
      !orphans
  end;
  List.iter
    (fun i ->
      if
        String.equal (Router.class_of router i) "Idle"
        && Router.outputs_of router i = []
        && Router.inputs_of router i = []
      then begin
        Router.remove_element router i;
        incr removed
      end)
    (Router.indices router);
  Ok (router, !removed)
