lib/graph/spec.ml: String
