let combo_text =
  {|
// Figure 4: the input-path combination. Two variants: CheckIPHeader
// rejects dropped internally, or sent to an explicit bad-packet output.
elementclass IPInputComboPattern { $color, $bad |
  input -> Paint($color)
        -> Strip(14)
        -> CheckIPHeader($bad)
        -> GetIPAddress(16)
        -> output;
}
elementclass IPInputComboReplacement { $color, $bad |
  input -> ic :: IPInputCombo($color, $bad) -> output;
}

elementclass IPInputComboBadPattern { $color, $bad |
  input -> Paint($color)
        -> Strip(14)
        -> ck :: CheckIPHeader($bad)
        -> GetIPAddress(16)
        -> output;
  ck [1] -> [1] output;
}
elementclass IPInputComboBadReplacement { $color, $bad |
  input -> ic :: IPInputCombo($color, $bad) -> output;
  ic [1] -> [1] output;
}

// The output-path combination: five general-purpose elements fused.
elementclass IPOutputComboPattern { $color, $ip |
  input -> DropBroadcasts
        -> cp :: CheckPaint($color)
        -> gio :: IPGWOptions($ip)
        -> FixIPSrc($ip)
        -> dt :: DecIPTTL
        -> output;
  cp [1] -> [1] output;
  gio [1] -> [2] output;
  dt [1] -> [3] output;
}
elementclass IPOutputComboReplacement { $color, $ip |
  input -> oc :: IPOutputCombo($color, $ip) -> output;
  oc [1] -> [1] output;
  oc [2] -> [2] output;
  oc [3] -> [3] output;
}
|}

let arp_elimination_text =
  {|
// Removes ARP on a point-to-point link exposed by click-combine
// (paper §7.2, Fig. 7). The A-side ARPQuerier is replaced by a static
// EtherEncap using the B side's address, taken from B's ARPResponder.
// Dead stubs (Idle, Discard) are left for click-undead to collect.
elementclass ARPEliminationPattern { $aip, $aeth, $bip, $beth, $cap, $lc |
  input -> aq :: ARPQuerier($aip, $aeth)
        -> q :: Queue($cap)
        -> link :: RouterLink($lc)
        -> cl :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
  input [1] -> [1] aq;
  input [2] -> q;
  ar :: ARPResponder($bip $beth);
  cl [0] -> ar;
  ar -> [1] output;
  cl [1] -> [2] output;
  cl [2] -> [3] output;
  cl [3] -> [4] output;
}
elementclass ARPEliminationReplacement { $aip, $aeth, $bip, $beth, $cap, $lc |
  input -> ee :: EtherEncap(0800, $aeth, $beth)
        -> q :: Queue($cap)
        -> link :: RouterLink($lc)
        -> cl :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);
  input [1] -> Discard;
  input [2] -> q;
  cl [0] -> Discard;
  Idle -> [1] output;
  cl [1] -> [2] output;
  cl [2] -> [3] output;
  cl [3] -> [4] output;
}
|}

let parse_exn what text =
  match Xform.parse_patterns text with
  | Ok pairs -> pairs
  | Error e -> failwith (Printf.sprintf "builtin %s patterns: %s" what e)

let combos () = parse_exn "combo" combo_text
let arp_elimination () = parse_exn "ARP-elimination" arp_elimination_text
