bin/click_undead.mli:
