bench/figures.ml: Buffer Common List Oclick Oclick_classifier Oclick_graph Oclick_hw Oclick_optim Oclick_packet Oclick_runtime Option Printf String Unix
