test/test_elements.ml: Alcotest Char List Oclick_elements Oclick_graph Oclick_packet Oclick_runtime Option String
