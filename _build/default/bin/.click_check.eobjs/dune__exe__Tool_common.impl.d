bin/tool_common.ml: Arg Buffer Cmd Cmdliner List Oclick_elements Oclick_graph Oclick_optim Oclick_runtime Printf String
