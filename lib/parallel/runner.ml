module Driver = Oclick_runtime.Driver
module Element = Oclick_runtime.Element
module Hooks = Oclick_runtime.Hooks
module Netdevice = Oclick_runtime.Netdevice
module Packet = Oclick_packet.Packet

type t = {
  part : Partition.t;
  drv : Driver.t;
  shard_tasks : Element.t array array;
  pools : Packet.Pool.t array;
  ndomains : int;
  warn_hooks : Hooks.t;  (* shard 0's hooks, for runner-level warnings *)
}

(* Wrap a shard's hooks so accounted drops recycle into that shard's
   pool — the same contract Driver.instantiate provides for the
   single-pool case. *)
let wrap_pool_recycle hooks pool =
  let user_on_drop = hooks.Hooks.on_drop in
  {
    hooks with
    Hooks.on_drop =
      (fun ~idx ~cls ~reason p ->
        user_on_drop ~idx ~cls ~reason p;
        Packet.Pool.recycle pool p);
  }

let queue_capacity e =
  match List.assoc_opt "capacity" e#stats with Some c -> c | None -> 1000

let create ?(hooks_for = fun _ -> Hooks.null) ?(devices = []) ?(batch = 1)
    ?(pool = false) ?(pool_capacity = 1024) ?(compile = false) ?ring_capacity
    ~domains graph =
  if domains < 1 then
    Error (Printf.sprintf "runner: bad domain count %d" domains)
  else if domains = 1 then begin
    (* Degenerate case: exactly the unsharded driver, so single-domain
       results are byte-identical to not using the runner at all. *)
    let hooks = hooks_for 0 in
    let pl = if pool then Some (Packet.Pool.create ~capacity:pool_capacity ()) else None in
    match Driver.instantiate ~hooks ~devices ~batch ?pool:pl ~compile graph with
    | Error e -> Error e
    | Ok drv ->
        Ok
          {
            part = (match Partition.compute ~domains:1 graph with
                   | Ok p -> p
                   | Error e -> invalid_arg e);
            drv;
            shard_tasks = [| Driver.tasks drv |];
            pools = (match pl with Some p -> [| p |] | None -> [||]);
            ndomains = 1;
            warn_hooks = hooks;
          }
  end
  else begin
    match Partition.compute ?ring_capacity ~domains graph with
    | Error e -> Error e
    | Ok part -> (
        let pools =
          if pool then
            Array.init domains (fun _ ->
                Packet.Pool.create ~capacity:pool_capacity ())
          else [||]
        in
        let shard_hooks =
          Array.init domains (fun s ->
              let h = hooks_for s in
              if pool then wrap_pool_recycle h pools.(s) else h)
        in
        match
          Driver.instantiate ~hooks:Hooks.null ~devices ~batch ~compile:false
            part.Partition.pt_graph
        with
        | Error e -> Error e
        | Ok drv ->
            (* Every element reports through — and recycles into — its
               own shard's hooks and pool; a cut Queue uses its producer
               shard's, because push (and its drops) runs there. *)
            let hook_shard_of = Array.copy part.Partition.pt_shard_of in
            List.iter
              (fun (c : Partition.cut) ->
                hook_shard_of.(c.Partition.cut_queue) <-
                  c.Partition.cut_from_shard)
              part.Partition.pt_cuts;
            let n = Driver.size drv in
            let setup_err = ref None in
            for i = 0 to n - 1 do
              let e = Driver.element_at drv i in
              let s = hook_shard_of.(i) in
              e#set_hooks shard_hooks.(s);
              if pool then e#set_pool (Some pools.(s))
            done;
            (* Switch cut Queues to ring mode at their configured
               capacity. Must precede compilation: fused closures bind
               element state at compile time. *)
            List.iter
              (fun (c : Partition.cut) ->
                let e = Driver.element_at drv c.Partition.cut_queue in
                let cap = queue_capacity e in
                match e#write_handler "spsc" (string_of_int cap) with
                | Ok () -> ()
                | Error msg ->
                    if !setup_err = None then
                      setup_err := Some (e#name ^ ": " ^ msg))
              part.Partition.pt_cuts;
            match !setup_err with
            | Some e -> Error e
            | None -> (
                let finish () =
                  (* Shared lazies must not be forced concurrently. *)
                  Element.force_scratch_placeholder ();
                  let tasks = Driver.tasks drv in
                  let shard_tasks =
                    Array.init domains (fun s ->
                        Array.of_list
                          (List.filter
                             (fun (e : Element.t) ->
                               part.Partition.pt_shard_of.(e#index) = s)
                             (Array.to_list tasks)))
                  in
                  {
                    part;
                    drv;
                    shard_tasks;
                    pools;
                    ndomains = domains;
                    warn_hooks = shard_hooks.(0);
                  }
                in
                if compile then
                  match Driver.compile drv with
                  | Error e -> Error e
                  | Ok () -> Ok (finish ())
                else Ok (finish ())))
  end

let driver t = t.drv
let partition t = t.part
let domains t = t.ndomains
let pool_stats t = Array.map Packet.Pool.stats t.pools

(* How many consecutive idle rounds before a domain votes quiet, and how
   many all-quiet-but-ring-not-empty polls before declaring a stall
   (packets parked in a ring nobody will drain, e.g. a full device TX
   ring with no consumer). *)
let idle_threshold = 32
let stall_threshold = 100_000

let run_until_idle ?(max_rounds = 1_000_000) t =
  if t.ndomains = 1 then Driver.run_until_idle ~max_rounds t.drv
  else begin
    (* Pools may still be claimed by the previous run's (now dead)
       domains; each new domain re-claims on first use. *)
    Array.iter Packet.Pool.detach t.pools;
    let cut_queues =
      List.map
        (fun (c : Partition.cut) -> Driver.element_at t.drv c.Partition.cut_queue)
        t.part.Partition.pt_cuts
    in
    let rings_empty () =
      List.for_all
        (fun (e : Element.t) ->
          match List.assoc_opt "length" e#stats with
          | Some l -> l = 0
          | None -> true)
        cut_queues
    in
    let work_stamp = Atomic.make 0 in
    let quiet = Atomic.make 0 in
    let stop = Atomic.make false in
    let aborted = Atomic.make false in
    let run_shard d =
      let tasks = t.shard_tasks.(d) in
      let n = Array.length tasks in
      let rr = ref 0 in
      let budget = ref max_rounds in
      let idle = ref 0 in
      let in_quiet = ref false in
      let stalls = ref 0 in
      let enter_quiet () =
        if not !in_quiet then begin
          in_quiet := true;
          Atomic.incr quiet
        end
      in
      let leave_quiet () =
        if !in_quiet then begin
          in_quiet := false;
          Atomic.decr quiet
        end
      in
      while not (Atomic.get stop) do
        let did = n > 0 && Driver.run_task_array tasks ~start:!rr in
        if n > 0 then rr := (!rr + 1) mod n;
        if did then begin
          leave_quiet ();
          idle := 0;
          stalls := 0;
          Atomic.incr work_stamp;
          decr budget;
          if !budget <= 0 then begin
            Atomic.set aborted true;
            Atomic.set stop true
          end
        end
        else begin
          incr idle;
          if !idle >= idle_threshold then enter_quiet ();
          if !in_quiet then begin
            (* Termination: everyone quiet and nothing in flight. The
               stamp re-read rules out a peer that grabbed work between
               our two checks. *)
            let stamp = Atomic.get work_stamp in
            if Atomic.get quiet = t.ndomains then begin
              if rings_empty () && Atomic.get work_stamp = stamp then
                Atomic.set stop true
              else begin
                incr stalls;
                if !stalls >= stall_threshold then begin
                  Atomic.set aborted true;
                  Atomic.set stop true
                end
              end
            end
            else stalls := 0;
            if not (Atomic.get stop) then Domain.cpu_relax ()
          end
        end
      done
    in
    let spawned =
      Array.init (t.ndomains - 1) (fun i ->
          Domain.spawn (fun () -> run_shard (i + 1)))
    in
    run_shard 0;
    Array.iter Domain.join spawned;
    let converged = not (Atomic.get aborted) in
    if not converged then
      t.warn_hooks.Hooks.on_warn ~src:"parallel"
        (Printf.sprintf
           "run_until_idle: aborted after %d working rounds on some domain \
            (possible livelock or stranded ring traffic)"
           max_rounds);
    converged
  end
