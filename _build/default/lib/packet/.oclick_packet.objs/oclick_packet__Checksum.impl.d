lib/packet/checksum.ml: Bytes Char
