lib/runtime/registry.ml: Element Hashtbl List Oclick_graph Option Printf String
