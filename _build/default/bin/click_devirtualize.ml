(* click-devirtualize: specialize packet-transfer virtual calls into
   direct calls. *)

open Cmdliner

let run exclude input =
  let source = Tool_common.read_input input in
  let router = Tool_common.parse_router source in
  match Oclick_optim.Devirtualize.run ~install:false ~exclude router with
  | Error e -> Tool_common.die "%s" e
  | Ok (router, specialized) ->
      Printf.eprintf "click-devirtualize: %d specialized classes\n"
        (List.length specialized);
      Tool_common.output_router router

let exclude_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "x"; "exclude" ] ~docv:"ELEMENT"
        ~doc:"Do not devirtualize this element (repeatable).")

let () =
  Tool_common.run_tool "click-devirtualize"
    "Replace virtual packet-transfer calls with direct calls."
    Term.(const run $ exclude_arg $ Tool_common.input_arg)
