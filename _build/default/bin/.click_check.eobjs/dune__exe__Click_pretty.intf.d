bin/click_pretty.mli:
