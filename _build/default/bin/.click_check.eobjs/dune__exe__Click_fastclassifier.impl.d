bin/click_fastclassifier.ml: Cmdliner List Oclick_optim Printf Term Tool_common
