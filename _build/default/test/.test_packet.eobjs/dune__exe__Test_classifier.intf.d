test/test_classifier.mli:
