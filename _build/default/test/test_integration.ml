(* End-to-end behavioural equivalence: the optimizers must not change what
   the router does to packets — only what it costs. The same traffic is
   pushed through every optimization variant of the Figure 1 router and
   the forwarded frames are compared byte for byte. *)

module Packet = Oclick_packet.Packet
module Headers = Oclick_packet.Headers
module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr
module Router = Oclick_graph.Router
module Driver = Oclick_runtime.Driver
module Netdevice = Oclick_runtime.Netdevice

let () = Oclick_elements.register_all ()
let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let interfaces = Oclick.Ip_router.standard_interfaces 2
let base_config = Oclick.Ip_router.config interfaces
let base_graph () = Oclick.Ip_router.graph base_config

let hosts_and_links () =
  let hosts =
    List.mapi
      (fun i (itf : Oclick.Ip_router.interface) ->
        let eth =
          Ethaddr.of_string_exn (Printf.sprintf "00:00:c0:bb:%02x:02" i)
        in
        ( Printf.sprintf "host%d" i,
          Oclick.Ip_router.graph
            (Oclick.Ip_router.host_config ~ip:(itf.if_net + 2) ~eth) ))
      interfaces
  in
  let links =
    List.concat
      (List.mapi
         (fun i (itf : Oclick.Ip_router.interface) ->
           let h = Printf.sprintf "host%d" i in
           [
             {
               Oclick_optim.Combine.lk_from_router = "router";
               lk_from_device = itf.if_device;
               lk_to_router = h;
               lk_to_device = "eth0";
             };
             {
               Oclick_optim.Combine.lk_from_router = h;
               lk_from_device = "eth0";
               lk_to_router = "router";
               lk_to_device = itf.if_device;
             };
           ])
         interfaces)
  in
  (hosts, links)

(* A deterministic little traffic mix. *)
let traffic () =
  let udp ?(ttl = 64) ?(payload = 14) dst =
    Headers.Build.udp
      ~src_eth:(Ethaddr.of_string_exn "00:00:c0:aa:00:02")
      ~dst_eth:(Ethaddr.of_string_exn "00:00:c0:00:00:01")
      ~src_ip:(Ipaddr.of_octets 10 0 0 2)
      ~dst_ip:(Ipaddr.of_string_exn dst) ~ttl ~payload_len:payload ()
  in
  [
    udp "10.0.1.2";
    udp ~ttl:1 "10.0.1.2" (* generates an ICMP time exceeded *);
    udp "10.0.1.77";
    udp ~payload:100 "10.0.1.2";
    udp "99.99.99.99" (* no route: dropped *);
  ]

(* Run a variant: warm the ARP cache (so held-packet displacement during
   cold resolution does not make ARP-ful and ARP-less variants differ),
   then inject the traffic on eth0, answer ARP queries like the attached
   hosts would, and collect everything both devices emit. *)
let run_variant graph =
  let dev0 = new Netdevice.queue_device "eth0" () in
  let dev1 = new Netdevice.queue_device "eth1" () in
  let driver =
    match
      Driver.instantiate
        ~devices:[ (dev0 :> Netdevice.t); (dev1 :> Netdevice.t) ]
        graph
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "instantiate: %s" e
  in
  let collected0 = ref [] and collected1 = ref [] in
  let host_eth = function
    | 0 -> Ethaddr.of_string_exn "00:00:c0:bb:00:02"
    | _ -> Ethaddr.of_string_exn "00:00:c0:bb:01:02"
  in
  let service ~collect =
    for _ = 1 to 60 do
      Driver.run driver ~rounds:5;
      List.iteri
        (fun i (dev : Netdevice.queue_device) ->
          let rec drain () =
            match dev#collect with
            | None -> ()
            | Some f ->
                if
                  Headers.Ether.ethertype f = Headers.Ether.ethertype_arp
                  && Headers.Arp.op ~off:14 f = Headers.Arp.op_request
                then
                  dev#inject
                    (Headers.Build.arp_reply ~src_eth:(host_eth i)
                       ~src_ip:(Headers.Arp.target_ip ~off:14 f)
                       ~dst_eth:(Headers.Arp.sender_eth ~off:14 f)
                       ~dst_ip:(Headers.Arp.sender_ip ~off:14 f))
                else if collect then begin
                  let acc = if i = 0 then collected0 else collected1 in
                  acc := Packet.to_string f :: !acc
                end;
                drain ()
          in
          drain ())
        [ dev0; dev1 ]
    done
  in
  (* Warmup: resolve every destination (including the ICMP return path
     via a TTL-1 packet) and discard the output. *)
  List.iter (fun p -> dev0#inject (Packet.clone p)) (traffic ());
  service ~collect:false;
  (* Measured phase. *)
  List.iter (fun p -> dev0#inject (Packet.clone p)) (traffic ());
  service ~collect:true;
  (List.rev !collected0, List.rev !collected1)

let normalize frames = List.sort compare frames

let test_variant_equivalence () =
  let hosts, links = hosts_and_links () in
  let base0, base1 = run_variant (base_graph ()) in
  check_bool "base forwarded something" true (List.length base1 >= 3);
  check_bool "base sent an ICMP error back" true (List.length base0 >= 1);
  let variants =
    [
      ("XF", Oclick.Pipeline.transform (base_graph ()));
      ("FC", Oclick.Pipeline.fastclassify (base_graph ()));
      ("DV", Oclick.Pipeline.devirtualize (base_graph ()));
      ("All", Oclick.Pipeline.optimize Oclick.Pipeline.All (base_graph ()));
      ( "MR",
        Oclick.Pipeline.optimize ~hosts ~links Oclick.Pipeline.Mr
          (base_graph ()) );
      ( "MR+All",
        Oclick.Pipeline.optimize ~hosts ~links Oclick.Pipeline.Mr_all
          (base_graph ()) );
    ]
  in
  List.iter
    (fun (name, graph) ->
      let v0, v1 = run_variant graph in
      Alcotest.(check (list string))
        (name ^ " emits identical frames on eth1")
        (normalize base1) (normalize v1);
      Alcotest.(check (list string))
        (name ^ " emits identical frames on eth0")
        (normalize base0) (normalize v0))
    variants

let test_optimized_router_element_budget () =
  (* Paper Figs. 5/6: ten general-purpose elements on the forwarding path
     become three. Whole-router: 22 elements per interface side shrink
     by 7 per interface under click-xform. *)
  let base = base_graph () in
  let xf = Oclick.Pipeline.transform (base_graph ()) in
  check "seven elements saved per interface"
    (Router.size base - 14)
    (Router.size xf)

let test_pipeline_composition_order () =
  (* Tools compose like Unix filters; All = XF | FC | DV. *)
  let by_steps =
    Oclick.Pipeline.devirtualize
      (Oclick.Pipeline.fastclassify (Oclick.Pipeline.transform (base_graph ())))
  in
  let by_all = Oclick.Pipeline.optimize Oclick.Pipeline.All (base_graph ()) in
  Alcotest.(check (list string))
    "same classes"
    (List.sort compare (List.map (Router.class_of by_steps) (Router.indices by_steps)))
    (List.sort compare (List.map (Router.class_of by_all) (Router.indices by_all)))

let test_all_variants_check_clean () =
  let hosts, links = hosts_and_links () in
  List.iter
    (fun v ->
      let g = Oclick.Pipeline.optimize ~hosts ~links v (base_graph ()) in
      Alcotest.(check (list string))
        (Oclick.Pipeline.variant_name v ^ " checks clean")
        []
        (Oclick_graph.Check.check g Oclick_runtime.Registry.spec_table))
    Oclick.Pipeline.variants

let () =
  Alcotest.run "integration"
    [
      ( "equivalence",
        [
          Alcotest.test_case "all variants forward identically" `Slow
            test_variant_equivalence;
        ] );
      ( "structure",
        [
          Alcotest.test_case "element budget" `Quick
            test_optimized_router_element_budget;
          Alcotest.test_case "pipeline composition" `Quick
            test_pipeline_composition_order;
          Alcotest.test_case "variants check clean" `Quick
            test_all_variants_check_clean;
        ] );
    ]
