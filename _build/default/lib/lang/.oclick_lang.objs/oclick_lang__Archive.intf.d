lib/lang/archive.mli:
