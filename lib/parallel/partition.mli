(** Graph partitioning for the multicore datapath.

    Cuts a flattened router configuration into [domains] shards along
    Queue boundaries — the only places in a Click graph where packet
    handoff is already asynchronous, so a cut changes scheduling but not
    semantics. A Queue whose producers and consumer land on different
    shards becomes a {e cut queue}: at run time its storage is swapped
    for a lock-free SPSC ring ({!Oclick_runtime.Spsc}) and the push half
    executes on the producing domain while the pull half executes on the
    consuming one.

    Configurations written for a uniprocessor often have long push paths
    with no Queue at all between the receive devices and the forwarding
    core; cutting only at existing Queues would leave everything in one
    shard. When the existing boundaries cannot spread the work over
    [domains] shards, the pass {e creates} boundaries the way
    [click-combine] does — by splicing a [Queue -> Unqueue] pair into
    push edges where a single-source private region meets the shared
    core. The inserted pair is semantically a no-op (every packet pushed
    in is pushed out in order); it exists to give the scheduler a place
    to cut.

    Shard balance is longest-processing-time greedy over the regions.
    By default every element weighs 1, so LPT balances element counts —
    the static heuristic. A profiling run can do better: pass the
    per-element costs measured by an {!Oclick_obs.t} ledger as
    [?weights] and LPT balances shards by observed cycles instead, so a
    region of few expensive elements no longer shares a shard with
    another heavy region just because both look small.

    The partition is a pure function of its inputs — graph, domain
    count, ring capacity, and weights — independent of element state:
    identical inputs produce byte-identical outputs (same transformed
    graph text, same [pt_shard_of], same cut list, in the same order).
    Usable both by the real multi-domain runner ({!Runner}) and by the
    simulated testbed. *)

type owner =
  | Unowned  (** not reachable from any push-task source *)
  | One of int  (** reachable from exactly one source element (index) *)
  | Shared  (** reachable from two or more sources *)

type cut = {
  cut_queue : int;  (** element index of the cut Queue in {!t.pt_graph} *)
  cut_queue_name : string;
  cut_from_shard : int;  (** shard executing the push (producer) half *)
  cut_to_shard : int;  (** shard executing the pull (consumer) half *)
  cut_inserted : bool;  (** [true] if the pass spliced this Queue in *)
}

type t = {
  pt_domains : int;
  pt_graph : Oclick_graph.Router.t;
      (** the transformed graph to instantiate — the input graph
          normalized, plus any inserted [Queue -> Unqueue] stages *)
  pt_shard_of : int array;  (** element index -> shard, total *)
  pt_shards : int list array;
      (** shard -> element indices, ascending; length [pt_domains] *)
  pt_cuts : cut list;
  pt_inserted : (int * int) list;
      (** [(queue, unqueue)] element index pairs the pass inserted *)
}

val compute :
  ?ring_capacity:int ->
  ?weights:int array ->
  domains:int ->
  Oclick_graph.Router.t ->
  (t, string) result
(** [compute ~domains g] partitions [g] into [domains] shards.

    [ring_capacity] (default 128) is the capacity given to inserted
    Queues; pre-existing Queues keep their configured capacity.

    [weights] supplies measured per-element costs for the LPT balance,
    indexed by the {e normalized} graph's dense declaration-order
    indices — the indices {!Oclick_runtime.Driver.instantiate} reports
    to hooks for this same graph, so a ledger from a single-domain
    profiling run lines up directly ({!Oclick_obs.cost_weights}).
    Missing indices (e.g. stages this pass inserts) and non-positive
    entries weigh 1. Omitted, every element weighs 1 and the balance
    degenerates to the static region-size heuristic.

    [domains = 1] returns the trivial partition (everything in shard 0,
    no cuts, no insertion) without transforming the graph. Errors if
    [domains < 1] or if the graph fails processing resolution. Requires
    the element registry to be populated
    ([Oclick_elements.register_all]). *)

val regions : Oclick_graph.Router.t -> (int list list, string) result
(** The Queue-bounded regions of the {e normalized} graph, without any
    boundary insertion: each region is the ascending element indices of
    one group that a cut can never separate, sorted by least member.
    These are exactly the push regions whole-region optimizations (the
    datapath compiler, FDD fusion) collapse, so a measured ledger's
    per-region cost share says which regions such a pass can pay off
    on. Errors if processing resolution fails. *)

val shard_counts : t -> int array
(** Elements per shard. *)

val shard_weights : ?weights:int array -> t -> int array
(** Total weight per shard under the same weight convention as
    {!compute} (1 per element when [weights] is omitted) — the load the
    LPT balance distributed. *)

val cut_of_queue : t -> int -> cut option
(** The cut at a given element index, if that Queue is cut. *)
