# Convenience wrappers around dune. `make bench-smoke` (also run as part
# of `make test` via the @bench-smoke alias) is the sub-second sanity run
# of the wall-clock batch benchmark; `make bench` regenerates every
# section, and `make bench-json` refreshes the committed BENCH_batch.json
# baseline in the repo root.

.PHONY: all build test bench bench-smoke bench-json clean

all: build

build:
	dune build

test:
	dune runtest

bench: build
	dune exec bench/main.exe

bench-smoke:
	dune build @bench-smoke

bench-json: build
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- batch --json

clean:
	dune clean
