bin/click_uncombine.ml: Arg Cmdliner Oclick_optim Term Tool_common
