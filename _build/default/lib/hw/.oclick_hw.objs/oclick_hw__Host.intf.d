lib/hw/host.mli: Engine Oclick_fault Oclick_packet Platform
