# Convenience wrappers around dune. `make bench-smoke` (also run as part
# of `make test` via the @bench-smoke alias) is the sub-second sanity run
# of the wall-clock batch benchmark; `make compile-smoke` is the same for
# the interpreted-vs-compiled datapath section; `make bench` regenerates
# every section, and `make bench-json` refreshes the committed
# BENCH_batch.json, BENCH_compile.json, and BENCH_obs.json baselines in
# the repo root. `make obs-smoke` (also part of `dune runtest`) validates
# oclick-report's JSON output against the report schema on the example
# configurations.

.PHONY: all build test bench bench-smoke compile-smoke bench-json obs-smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench: build
	dune exec bench/main.exe

bench-smoke:
	dune build @bench-smoke

compile-smoke:
	dune build @compile-smoke

bench-json: build
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- batch --json
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- compile --json
	cd $(CURDIR) && dune exec --no-build bench/main.exe -- obs --json

obs-smoke:
	dune build @obs-smoke

clean:
	dune clean
