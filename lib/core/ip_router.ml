module Ipaddr = Oclick_packet.Ipaddr
module Ethaddr = Oclick_packet.Ethaddr

type interface = {
  if_device : string;
  if_ip : Ipaddr.t;
  if_eth : Ethaddr.t;
  if_net : Ipaddr.t;
  if_mask : Ipaddr.t;
}

let interface ~device ~ip ~eth ~net =
  match (Ipaddr.of_string ip, Ethaddr.of_string eth, Ipaddr.parse_prefix net)
  with
  | Some if_ip, Some if_eth, Some (if_net, if_mask) ->
      { if_device = device; if_ip; if_eth; if_net = if_net land if_mask; if_mask }
  | _ -> invalid_arg "Ip_router.interface: malformed address"

let standard_interfaces n =
  List.init n (fun i ->
      interface
        ~device:(Printf.sprintf "eth%d" i)
        ~ip:(Printf.sprintf "10.0.%d.1" i)
        ~eth:(Printf.sprintf "00:00:c0:00:%02x:01" i)
        ~net:(Printf.sprintf "10.0.%d.0/24" i))

let prefix_string net mask =
  match Ipaddr.prefix_length_of_netmask mask with
  | Some len -> Printf.sprintf "%s/%d" (Ipaddr.to_string net) len
  | None ->
      Printf.sprintf "%s/%s" (Ipaddr.to_string net) (Ipaddr.to_string mask)

let arp_classifier = "12/0806 20/0001, 12/0806 20/0002, 12/0800, -"

let config ?(extra_routes = []) interfaces =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "// A standards-compliant IP router (paper Figure 1), %d interfaces.\n"
    (List.length interfaces);
  (* The shared routing table: local addresses to output 0 (the host),
     each interface's subnet to output i+1, then any extra routes —
     interface routes first, so they win where prefixes collide. *)
  let routes =
    String.concat ", "
      (List.map
         (fun itf -> Printf.sprintf "%s/32 0" (Ipaddr.to_string itf.if_ip))
         interfaces
      @ List.mapi
          (fun i itf ->
            Printf.sprintf "%s %d" (prefix_string itf.if_net itf.if_mask)
              (i + 1))
          interfaces
      @ extra_routes)
  in
  add "rt :: LookupIPRoute(%s);\n" routes;
  add "rt [0] -> host :: Discard;  // packets for the router itself\n\n";
  List.iteri
    (fun i itf ->
      let ip = Ipaddr.to_string itf.if_ip and eth = Ethaddr.to_string itf.if_eth in
      add "// interface %d: %s (%s, %s)\n" i itf.if_device ip eth;
      add "pd%d :: PollDevice(%s);\n" i itf.if_device;
      add "out%d :: Queue(200);\n" i;
      add "td%d :: ToDevice(%s);\n" i itf.if_device;
      add "c%d :: Classifier(%s);\n" i arp_classifier;
      add "ar%d :: ARPResponder(%s %s);\n" i ip eth;
      add "aq%d :: ARPQuerier(%s, %s);\n" i ip eth;
      add "pd%d -> c%d;\n" i i;
      add "c%d [0] -> ar%d -> out%d;\n" i i i;
      add "c%d [1] -> [1] aq%d;\n" i i;
      add "c%d [2] -> Paint(%d) -> Strip(14) -> CheckIPHeader() \
           -> GetIPAddress(16) -> rt;\n"
        i (i + 1);
      add "c%d [3] -> Discard;\n" i;
      add "rt [%d] -> DropBroadcasts -> cp%d :: CheckPaint(%d) \
           -> gio%d :: IPGWOptions(%s) -> FixIPSrc(%s) -> dt%d :: DecIPTTL \
           -> fr%d :: IPFragmenter(1500) -> [0] aq%d;\n"
        (i + 1) i (i + 1) i ip ip i i i;
      add "aq%d -> out%d -> td%d;\n" i i i;
      add "cp%d [1] -> ICMPError(%s, redirect, host) -> rt;\n" i ip;
      add "gio%d [1] -> ICMPError(%s, parameterproblem) -> rt;\n" i ip;
      add "dt%d [1] -> ICMPError(%s, timeexceeded) -> rt;\n" i ip;
      add "fr%d [1] -> ICMPError(%s, unreachable, needfrag) -> rt;\n\n" i ip)
    interfaces;
  Buffer.contents buf

let simple_config pairs =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "// The \"Simple\" configuration: device handling and a queue.\n";
  List.iteri
    (fun i (in_dev, out_dev) ->
      add "PollDevice(%s) -> sq%d :: Queue(200) -> ToDevice(%s);\n" in_dev i
        out_dev)
    pairs;
  Buffer.contents buf

let host_config ~ip ~eth =
  let ip = Ipaddr.to_string ip and eth = Ethaddr.to_string eth in
  Printf.sprintf
    {|// An end host: answers ARP, counts received IP packets.
pd :: PollDevice(eth0);
cl :: Classifier(%s);
outq :: Queue(200);
td :: ToDevice(eth0);
ar :: ARPResponder(%s %s);
pd -> cl;
cl [0] -> ar -> outq -> td;
cl [1] -> Discard;
cl [2] -> sink :: Counter -> Discard;
cl [3] -> Discard;
|}
    arp_classifier ip eth

let graph source =
  match Oclick_graph.Router.parse_string source with
  | Ok g -> g
  | Error e -> failwith ("Ip_router.graph: " ^ e)
