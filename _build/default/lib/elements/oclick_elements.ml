(** The standard element library.

    Call {!register_all} once at program start to make every class
    available to the driver and the optimizers (the explicit analogue of
    Click linking its element object files). *)

module Basic = Basic
module Ip = Ip
module Routing = Routing
module Arp = Arp
module Classify = Classify
module Devices = Devices
module Combos = Combos
module Misc = Misc
module Extras = Extras
module Rewriter = Rewriter
module Trace_io = Trace_io

let registered = ref false

let register_all () =
  if not !registered then begin
    registered := true;
    Basic.register ();
    Ip.register ();
    Routing.register ();
    Arp.register ();
    Classify.register ();
    Devices.register ();
    Combos.register ();
    Misc.register ();
    Extras.register ();
    Rewriter.register ();
    Trace_io.register ()
  end

(** The runtime half of [click-fastclassifier]: installs a generated
    classifier class running compiled code. *)
let register_fast_classifier = Classify.register_fast_classifier
