lib/elements/routing.ml: Args Array E Fun Hooks Int Ipaddr List Option Packet Prelude String
