(** [click-undead]: dead-code elimination for router configurations
    (paper §6.3).

    The passes:
    - [StaticSwitch] elements are replaced by a wire to their selected
      branch; the unselected branches become unreachable;
    - elements that are not both downstream of a packet source and
      upstream of a packet sink are removed;
    - ports that lose their peers are reconnected to [Idle] so the
      remaining elements stay well-formed (as the real tool does);
    - [Idle] elements with no remaining connections are removed.

    Sources and sinks are identified by class ([PollDevice],
    [InfiniteSource], [ToDevice], [Discard], ...); [Idle] is neither. *)

val run : Oclick_graph.Router.t -> (Oclick_graph.Router.t * int, string) result
(** Returns the cleaned graph and the number of elements removed. The
    input graph is not modified. *)
