lib/hw/nic.ml: Engine List Oclick_packet Pci Platform Queue
