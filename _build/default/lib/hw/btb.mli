(** The branch-target-buffer model (paper §3, Fig. 2).

    The Pentium caches the targets of indirect branch instructions per call
    site. Elements that share code share packet-transfer call sites, so two
    same-class elements transferring to different downstream elements fight
    over one BTB entry: alternating packets always mispredict. Sites are
    keyed by (code class, port, pull?); the prediction is the last target
    that site jumped to. *)

type t

val create : unit -> t

val access : t -> site:string * int * bool -> target:int -> bool
(** Record a dynamic dispatch; returns whether the target was predicted
    (site seen before with the same target). *)

val lookups : t -> int
val mispredictions : t -> int
val reset_counters : t -> unit
