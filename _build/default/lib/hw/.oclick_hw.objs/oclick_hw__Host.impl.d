lib/hw/host.ml: Engine Hashtbl Oclick_fault Oclick_packet Platform
