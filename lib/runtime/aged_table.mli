(** Bounded, age-evicted association table (overload resilience).

    An LRU-ordered hash table with two eviction triggers: a hard
    [capacity] (inserting into a full table evicts the least recently
    used entry first, so the table {e never} exceeds its bound, even
    transiently) and a [max_age_ns] (entries untouched for longer than
    the age are swept out, amortized O(1), on the next [find]/[put]).

    Evictions call [on_evict] with the reason, so elements can account
    evicted state — held packets become explicit drops, obs counters
    bump — and the packet-conservation ledger balances exactly.

    Time comes from a pluggable nanosecond [clock]
    ({!Element.base.set_clock} threads the driver-wide one through):
    the simulated testbed installs its event-engine clock, live tools
    the wall clock. The default clock returns [0], which disables
    aging — capacity bounds still hold. *)

type reason =
  | Capacity  (** evicted to make room for a new entry *)
  | Age  (** untouched for longer than [max_age_ns] *)

type ('k, 'v) t

val create :
  ?capacity:int ->
  ?max_age_ns:int ->
  ?on_evict:('k -> 'v -> reason -> unit) ->
  unit ->
  ('k, 'v) t
(** [capacity = 0] (default) means unbounded; [max_age_ns = 0]
    (default) means entries never age out. *)

val set_clock : ('k, 'v) t -> (unit -> int) -> unit
val set_capacity : ('k, 'v) t -> int -> unit
(** Takes effect on subsequent insertions; does not evict immediately. *)

val set_max_age_ns : ('k, 'v) t -> int -> unit
val set_on_evict : ('k, 'v) t -> ('k -> 'v -> reason -> unit) -> unit
val capacity : ('k, 'v) t -> int
val max_age_ns : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Sweeps expired entries, then looks up [k], refreshing its recency
    and stamp on a hit. *)

val find_exn : ('k, 'v) t -> 'k -> 'v
(** Like {!find} but raises [Not_found] on a miss. A hit performs no
    allocation — for per-packet datapaths (ARP cache, flow tables)
    where the option box of {!find} is measurable GC pressure. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without sweeping or refreshing — for bookkeeping that must
    not keep an entry alive. *)

val mem : ('k, 'v) t -> 'k -> bool

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or update (updates refresh recency). Sweeps first; then, if
    inserting into a table at capacity, evicts from the LRU end. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Removes without counting an eviction or calling [on_evict] — the
    caller is disposing of the entry itself. *)

val sweep : ('k, 'v) t -> unit
(** Force an age sweep now (normally implicit in [find]/[put]). *)

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** LRU-to-MRU order. [f] may [remove] the visited key. *)

val fold : ('k, 'v) t -> ('k -> 'v -> 'a -> 'a) -> 'a -> 'a
val clear : ('k, 'v) t -> unit

val evicted_capacity : ('k, 'v) t -> int
val evicted_age : ('k, 'v) t -> int
val evicted : ('k, 'v) t -> int
(** Lifetime eviction counts, for element [stats]. *)
