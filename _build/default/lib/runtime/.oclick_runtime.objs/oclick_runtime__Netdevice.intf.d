lib/runtime/netdevice.mli: Oclick_packet
