examples/quickstart.ml: List Oclick_elements Oclick_packet Oclick_runtime Printf
