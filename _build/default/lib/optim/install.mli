(** Installing a configuration's generated element classes.

    Optimized configurations arrive as archives whose members carry the
    code the tools generated ([FastClassifier@@...], [Devirtualize@@...]).
    Click compiles and dynamically links that code before parsing the
    configuration (paper §4, §5.2); here, {!install} reconstructs each
    generated class and registers it with the runtime:

    - [FastClassifier@@X] classes are rebuilt from their decision-tree
      dumps ([...tree] archive members) and run compiled classification;
    - [Devirtualize@@Orig@@N] classes wrap the original class's
      constructor with direct dispatch.

    Run this after parsing any configuration that may have passed through
    the optimizers (the [click-*] tools and [oclick-run] do). *)

val install : Oclick_graph.Router.t -> (unit, string) result
(** Registers every generated class the configuration instantiates.
    Classes already registered are left alone. *)
