bin/oclick_run.mli:
